#!/usr/bin/env python3
"""Project-invariant linter: repo-specific rules no generic tool checks.

Rules (each is a machine check of an invariant a PR established in prose):

  kernel-internal-linkage
      Every symbol defined by the SIMD row-kernel translation units
      (src/dtw/kernels/*.cc) and by src/dtw/row_kernel.h must have
      internal linkage, except the per-variant ops table each kernel TU
      deliberately exports (sdtw::dtw::internal::k*RowKernelOps, declared
      extern in dtw/kernel_dispatch.h). Kernel TUs are compiled with
      per-file arch flags; an external (strong OR weak/COMDAT) symbol
      leaking out of one lets the linker keep a single arbitrary copy —
      possibly the AVX-512 encoding — and hand it to TUs meant to stay
      portable (the ODR rule PR 6 established). Checked precisely: the
      linter compiles each TU with the same arch flags the build uses,
      plus an anchor TU that odr-uses every row_kernel.h helper, and
      inspects the object's symbol table with nm.

  fp-contract
      No build file or source may enable value-changing floating-point
      modes: -ffast-math, -funsafe-math-optimizations,
      -ffp-contract=fast/on, or the FP_CONTRACT/fast-math pragmas. The
      kernels' bitwise-determinism contract (portable == AVX2 == AVX-512
      == scalar reference, hit lists pinned across builds) requires every
      TU to round `min(...) + cost` identically; one contracted FMA in
      one TU silently breaks it. (-ffp-contract=off stays legal.)

  naked-new
      No naked `new` / C allocation calls (malloc family) in src/: every
      allocation goes through containers or smart pointers so the DP hot
      paths stay allocation-auditable and exception-safe. Suppress a
      deliberate exception with a trailing `lint:allow(naked-new)`
      comment plus a rationale.

Usage:
  scripts/lint_invariants.py [--root DIR] [--only RULE ...]
                             [--objects BUILD_DIR] [--compiler CXX]
                             [--jobs N] [--list-rules]

Default --root is the repository this script lives in. --objects
additionally verifies the kernel objects an existing build produced (the
belt to the compile-probe braces; CI runs it after the build). --jobs N
runs the kernel compile probes concurrently (findings stay in source
order regardless). Exit code: 0 clean, 1 findings, 2 usage error,
69 (EX_UNAVAILABLE) when a probe tool (compiler / nm) is missing and
every rule that did run came back clean — mirrors scripts/tidy.sh and
scripts/sdtw_lint so callers can skip gracefully.
"""

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
import tempfile

EX_OK = 0
EX_FINDINGS = 1
EX_USAGE = 2
EX_UNAVAILABLE = 69

FIXTURE_DIR_MARKERS = (os.path.join("tests", "lint", "fixtures"),)
SKIP_DIR_NAMES = {".git", "_deps", "CMakeFiles"}

ALLOWED_KERNEL_EXPORT = re.compile(
    r"^sdtw::dtw::internal::k\w*RowKernelOps$")

# nm symbol-type letters: uppercase (plus 'u'/'v'/'w') means the symbol is
# visible outside the TU; weak definitions (W/V/u) are exactly the COMDAT
# copies the ODR rule exists to forbid.
EXTERNAL_NM_TYPES = set("ABCDGIRSTUVW") | {"u", "v", "w"}

FP_CONTRACT_PATTERNS = [
    (re.compile(r"-ffast-math"), "-ffast-math"),
    (re.compile(r"-funsafe-math-optimizations"),
     "-funsafe-math-optimizations"),
    (re.compile(r"-ffp-contract=(fast|on)\b"), "-ffp-contract=fast/on"),
    (re.compile(r"pragma\s+STDC\s+FP_CONTRACT\s+ON"),
     "#pragma STDC FP_CONTRACT ON"),
    (re.compile(r"pragma\s+GCC\s+optimize[^\n]*fast-math"),
     "#pragma GCC optimize fast-math"),
    (re.compile(r"float_control\s*\(\s*precise\s*,\s*off"),
     "#pragma float_control(precise, off)"),
]

NAKED_NEW_PATTERNS = [
    (re.compile(r"\bnew\b"), "new expression"),
    (re.compile(r"\b(?:malloc|calloc|realloc|aligned_alloc|strdup)\s*\("),
     "C allocation call"),
]

ALLOW_MARKER = re.compile(r"lint:allow\(([a-z-]+)\)")


class Findings:
    def __init__(self):
        self.items = []

    def add(self, rule, location, message):
        self.items.append((rule, location, message))

    def report(self):
        for rule, location, message in self.items:
            print(f"{location}: [{rule}] {message}")
        return 1 if self.items else 0


def iter_files(root, rel_dirs, suffixes):
    """Yields repo-relative paths under root/rel_dirs with the given
    suffixes, skipping build trees, VCS internals, and the deliberately-
    violating lint fixtures."""
    for rel_dir in rel_dirs:
        base = os.path.join(root, rel_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIR_NAMES and not d.startswith("build"))
            rel_dirpath = os.path.relpath(dirpath, root)
            if any(marker in rel_dirpath for marker in FIXTURE_DIR_MARKERS):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if any(name.endswith(s) for s in suffixes) or \
                        name == "CMakeLists.txt" and "CMakeLists.txt" in suffixes:
                    yield os.path.join(rel_dirpath, name)


def strip_cxx_comments(text, keep_strings=True):
    """Removes // and /* */ comments; string/char literals are blanked
    (same length) unless keep_strings. Line structure is preserved so
    match positions still map to line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dq"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "sq"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("dq", "sq"):
            quote = '"' if state == "dq" else "'"
            if c == "\\" and nxt:
                out.append(c if keep_strings else " ")
                out.append(nxt if keep_strings else " ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated literal; fail open
                state = "code"
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
        i += 1
    return "".join(out)


def strip_cmake_comments(text):
    return "\n".join(line.split("#", 1)[0] for line in text.split("\n"))


def allowed_lines(text, rule):
    allowed = set()
    for lineno, line in enumerate(text.split("\n"), 1):
        for m in ALLOW_MARKER.finditer(line):
            if m.group(1) == rule:
                allowed.add(lineno)
    return allowed


def scan_patterns(root, rel_path, stripped, patterns, rule, allow, findings):
    for lineno, line in enumerate(stripped.split("\n"), 1):
        if lineno in allow:
            continue
        for pattern, what in patterns:
            if pattern.search(line):
                findings.add(rule, f"{rel_path}:{lineno}", what)


def check_fp_contract(root, findings):
    cmake_files = list(iter_files(
        root, ["."], ("CMakeLists.txt", ".cmake")))
    for rel in cmake_files:
        text = read_text(os.path.join(root, rel))
        allow = allowed_lines(text, "fp-contract")
        scan_patterns(root, rel, strip_cmake_comments(text),
                      FP_CONTRACT_PATTERNS, "fp-contract", allow, findings)
    for rel in iter_files(root, ["src", "tests", "bench", "examples"],
                          (".cc", ".h")):
        text = read_text(os.path.join(root, rel))
        allow = allowed_lines(text, "fp-contract")
        # Comments stripped (docs legitimately discuss the forbidden
        # flags); strings kept (pragmas smuggle flags inside literals).
        scan_patterns(root, rel, strip_cxx_comments(text),
                      FP_CONTRACT_PATTERNS, "fp-contract", allow, findings)


def check_naked_new(root, findings):
    for rel in iter_files(root, ["src"], (".cc", ".h")):
        text = read_text(os.path.join(root, rel))
        allow = allowed_lines(text, "naked-new")
        stripped = strip_cxx_comments(text, keep_strings=False)
        scan_patterns(root, rel, stripped, NAKED_NEW_PATTERNS, "naked-new",
                      allow, findings)


def read_text(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def find_tool(*names):
    for name in names:
        path = shutil.which(name)
        if path:
            return path
    return None


def arch_flags_for(filename):
    """The per-file arch flags src/CMakeLists.txt applies, keyed the same
    way: by variant name in the file name."""
    if "avx512" in filename:
        return ["-mavx512f"]
    if "avx2" in filename:
        return ["-mavx2"]
    if "neon" in filename:
        return ["-march=armv8-a"]
    return []


def compiler_supports(compiler, flags, tmpdir):
    probe = os.path.join(tmpdir, "flag_probe.cc")
    with open(probe, "w", encoding="utf-8") as f:
        f.write("int main() { return 0; }\n")
    r = subprocess.run(
        [compiler, "-std=c++20", *flags, "-fsyntax-only", probe],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, check=False)
    return r.returncode == 0


ROW_KERNEL_ANCHOR = """\
// Generated by lint_invariants.py: odr-uses every row_kernel.h helper so
// any definition that loses its internal linkage is emitted into this
// TU's symbol table, where the nm check below will see it. Compiled with
// the widest arch flags available, modelling the worst-case variant TU.
#include "dtw/row_kernel.h"

namespace {
using sdtw::dtw::AbsCost;
using sdtw::dtw::SquaredCost;
namespace rk = sdtw::dtw::internal;
[[maybe_unused]] auto* kAnchor0 = &rk::FillBandRowScalar<AbsCost>;
[[maybe_unused]] auto* kAnchor1 = &rk::FillBandRowScalar<SquaredCost>;
[[maybe_unused]] auto* kAnchor2 = &rk::FillBandRowTwoPass<AbsCost>;
[[maybe_unused]] auto* kAnchor3 = &rk::FillBandRowTwoPass<SquaredCost>;
[[maybe_unused]] auto* kAnchor4 = &rk::WriteRowPads;
[[maybe_unused]] auto* kAnchor5 = &rk::ArmOriginRow;
[[maybe_unused]] auto* kAnchor6 = &rk::ResolveLeftDependency;
}  // namespace
"""


def external_symbols(nm, obj):
    """(type_letter, demangled_name) for every defined symbol with
    external visibility."""
    r = subprocess.run([nm, "-C", "--defined-only", obj],
                       capture_output=True, text=True, check=False)
    if r.returncode != 0:
        raise RuntimeError(f"nm failed on {obj}: {r.stderr.strip()}")
    out = []
    for line in r.stdout.splitlines():
        parts = line.split(None, 2)
        if len(parts) < 3:
            continue
        _, sym_type, name = parts
        if sym_type in EXTERNAL_NM_TYPES:
            out.append((sym_type, name.strip()))
    return out


def check_object_exports(nm, obj, label, findings, weak_ok=False):
    try:
        symbols = external_symbols(nm, obj)
    except RuntimeError as e:
        findings.add("kernel-internal-linkage", label, str(e))
        return
    for sym_type, name in symbols:
        if ALLOWED_KERNEL_EXPORT.match(name):
            continue
        if weak_ok and sym_type in ("W", "V", "w", "v"):
            continue
        findings.add(
            "kernel-internal-linkage", label,
            f"external symbol leaks from an arch-flagged TU: "
            f"'{name}' (nm type {sym_type}) — give it internal linkage "
            f"(static / anonymous namespace); only the "
            f"k<Variant>RowKernelOps table may be exported")


def check_kernel_linkage(root, compiler, findings, verbose, jobs=1):
    """Returns None when the rule ran (findings hold the verdict) or a
    human-readable reason when a probe tool is missing (caller exits 69)."""
    kernels_dir = os.path.join(root, "src", "dtw", "kernels")
    row_kernel = os.path.join(root, "src", "dtw", "row_kernel.h")
    sources = []
    if os.path.isdir(kernels_dir):
        sources = [os.path.join(kernels_dir, f)
                   for f in sorted(os.listdir(kernels_dir))
                   if f.endswith(".cc")]
    if not sources and not os.path.isfile(row_kernel):
        return None  # nothing to check in this tree (fixture roots)

    nm = find_tool("nm", "llvm-nm")
    if nm is None:
        return "no nm/llvm-nm found (apt: binutils) — cannot verify kernel linkage"
    if compiler is None:
        return "no C++ compiler found — cannot verify kernel linkage"
    if shutil.which(compiler) is None and not (
            os.path.isfile(compiler) and os.access(compiler, os.X_OK)):
        return (f"compiler '{compiler}' not found — "
                "cannot verify kernel linkage")

    base_flags = ["-std=c++20", "-O1", "-ffp-contract=off",
                  "-I", os.path.join(root, "src"), "-c"]
    with tempfile.TemporaryDirectory(prefix="sdtw_lint_") as tmpdir:
        # Probe arch-flag support once, serially, so the parallel phase
        # below never races on the shared flag_probe.cc.
        arch_sets = {tuple(arch_flags_for(os.path.basename(s)))
                     for s in sources}
        arch_sets |= {("-mavx512f",), ("-mavx2",)}
        supported = {flags: (not flags or
                             compiler_supports(compiler, list(flags), tmpdir))
                     for flags in sorted(arch_sets)}

        # (label, arch, source_path, is_anchor) in deterministic order.
        tasks = []
        for src in sources:
            rel = os.path.relpath(src, root)
            arch = arch_flags_for(os.path.basename(src))
            if arch and not supported[tuple(arch)]:
                if verbose:
                    print(f"note: {rel}: compiler lacks {arch}, skipped")
                continue
            tasks.append((rel, arch, src, False))

        if os.path.isfile(row_kernel):
            anchor = os.path.join(tmpdir, "row_kernel_anchor.cc")
            with open(anchor, "w", encoding="utf-8") as f:
                f.write(ROW_KERNEL_ANCHOR)
            arch = []
            for candidate in (("-mavx512f",), ("-mavx2",)):
                if supported[candidate]:
                    arch = list(candidate)
                    break
            tasks.append(("src/dtw/row_kernel.h", arch, anchor, True))

        def probe(idx, label, arch, src, is_anchor):
            """Compiles one TU and nm-checks it; returns Findings items."""
            local = Findings()
            obj = os.path.join(tmpdir, f"probe_{idx}.o")
            r = subprocess.run(
                [compiler, *base_flags, *arch, src, "-o", obj],
                capture_output=True, text=True, check=False)
            if r.returncode != 0:
                if is_anchor:
                    local.add(
                        "kernel-internal-linkage", label,
                        "anchor TU no longer compiles — row_kernel.h's "
                        "helper set changed; update ROW_KERNEL_ANCHOR in "
                        "lint_invariants.py:\n" + r.stderr.strip())
                else:
                    local.add(
                        "kernel-internal-linkage", label,
                        "kernel TU does not compile standalone with its "
                        f"arch flags ({' '.join(arch) or 'baseline'}):\n"
                        + r.stderr.strip())
                return local.items
            check_object_exports(nm, obj, label, local)
            return local.items

        if jobs <= 1 or len(tasks) <= 1:
            for idx, (label, arch, src, is_anchor) in enumerate(tasks):
                for item in probe(idx, label, arch, src, is_anchor):
                    findings.items.append(item)
        else:
            # Futures are collected in submission order, so findings come
            # out identical to the serial run whatever the completion
            # order was.
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=jobs) as pool:
                futures = [
                    pool.submit(probe, idx, label, arch, src, is_anchor)
                    for idx, (label, arch, src, is_anchor)
                    in enumerate(tasks)]
                for future in futures:
                    findings.items.extend(future.result())
    return None


def check_built_objects(root, build_dir, findings, verbose):
    """Post-build mode: nm over the kernel objects the real build
    produced, catching flag drift between the linter's probe compile and
    the build system. Returns None, or an unavailability reason (exit 69
    at the caller)."""
    nm = find_tool("nm", "llvm-nm")
    if nm is None:
        return "no nm/llvm-nm found (apt: binutils) — cannot verify built objects"
    matched = []
    for dirpath, dirnames, filenames in os.walk(build_dir):
        dirnames[:] = [d for d in dirnames if d != "_deps"]
        # Only the real kernel TUs (src/dtw/kernels/) are constrained —
        # test TUs like row_kernel_property_test.cc legitimately emit
        # gtest/libstdc++ COMDAT symbols.
        if os.path.basename(dirpath) != "kernels":
            continue
        for name in filenames:
            if re.match(r"row_kernel_\w+\.cc\.(o|obj)$", name):
                matched.append(os.path.join(dirpath, name))
    if not matched:
        findings.add(
            "kernel-internal-linkage", build_dir,
            "no row_kernel_*.cc objects found under the build dir — wrong "
            "--objects path, or the build layout changed")
        return None
    for obj in sorted(matched):
        rel = os.path.relpath(obj, build_dir)
        # The portable TU is compiled with baseline flags everywhere, so
        # COMDAT instantiations it emits are identical in every TU; weak
        # symbols are only fatal in arch-flagged objects.
        weak_ok = "portable" in os.path.basename(obj)
        if verbose:
            print(f"note: checking built object {rel}")
        check_object_exports(nm, obj, rel, findings, weak_ok=weak_ok)


RULES = ["kernel-internal-linkage", "fp-contract", "naked-new"]


def main(argv):
    parser = argparse.ArgumentParser(
        description="sdtw project-invariant linter (see module docstring)")
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: the repo containing "
                             "this script)")
    parser.add_argument("--only", action="append", choices=RULES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--objects", metavar="BUILD_DIR",
                        help="additionally nm-check the kernel objects of "
                             "an existing build")
    parser.add_argument("--compiler", default=None,
                        help="C++ compiler for the linkage probe "
                             "(default: $CXX, else c++/g++/clang++)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="concurrent kernel compile probes "
                             "(default: 1; findings order is identical "
                             "at any N)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return EX_OK
    if args.jobs < 1:
        print("lint_invariants: --jobs must be >= 1", file=sys.stderr)
        return EX_USAGE

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(root):
        print(f"lint_invariants: --root {root} is not a directory",
              file=sys.stderr)
        return EX_USAGE

    rules = args.only or RULES
    findings = Findings()
    unavailable = []

    if "fp-contract" in rules:
        check_fp_contract(root, findings)
    if "naked-new" in rules:
        check_naked_new(root, findings)
    if "kernel-internal-linkage" in rules:
        compiler = (args.compiler or os.environ.get("CXX")
                    or find_tool("c++", "g++", "clang++"))
        reason = check_kernel_linkage(root, compiler, findings,
                                      args.verbose, jobs=args.jobs)
        if reason:
            unavailable.append(reason)
        if args.objects:
            if not os.path.isdir(args.objects):
                print(f"lint_invariants: --objects {args.objects} is not "
                      "a directory", file=sys.stderr)
                return EX_USAGE
            reason = check_built_objects(root, args.objects, findings,
                                         args.verbose)
            if reason:
                unavailable.append(reason)

    status = findings.report()
    if status != 0:
        print(f"lint_invariants: {len(findings.items)} finding(s)",
              file=sys.stderr)
        return EX_FINDINGS
    if unavailable:
        # Every rule that could run came back clean, but a probe tool is
        # missing: report EX_UNAVAILABLE so callers skip instead of
        # trusting a verdict the linter could not fully earn.
        for reason in unavailable:
            print(f"lint_invariants: {reason}; skipping", file=sys.stderr)
        return EX_UNAVAILABLE
    print(f"lint_invariants: clean ({', '.join(rules)})")
    return EX_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
