#!/usr/bin/env sh
# clang-tidy runner for the sdtw tree (config: .clang-tidy at the repo
# root; WarningsAsErrors promotes every finding to a failure).
#
# Usage: scripts/tidy.sh [--build-dir DIR] [--changed [REF]] [--fix] [file...]
#
#   full-tree (default)  lint every library TU under src/
#   --changed [REF]      lint only TUs touched since REF (default:
#                        origin/main when it exists, else HEAD) — changed
#                        headers pull in the src/ TUs that include them
#   --fix                apply clang-tidy's suggested fixes in place
#   file...              lint exactly these files
#
# Needs compile_commands.json in the build dir (every configure writes it:
# CMAKE_EXPORT_COMPILE_COMMANDS is ON by default). Exits non-zero on any
# finding, missing tool, or missing compilation database.
set -eu

BUILD_DIR=build
MODE=full
REF=
FIX=
FILES=

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)
      BUILD_DIR="$2"
      shift 2
      ;;
    --changed)
      MODE=changed
      shift
      if [ $# -gt 0 ] && [ "${1#-}" = "$1" ]; then
        REF="$1"
        shift
      fi
      ;;
    --fix)
      FIX="-fix"
      shift
      ;;
    -h|--help)
      sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      MODE=files
      FILES="$FILES $1"
      shift
      ;;
  esac
done

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
              clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "tidy.sh: clang-tidy not found (set CLANG_TIDY=... or install it)" >&2
  exit 69  # EX_UNAVAILABLE
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy.sh: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 66  # EX_NOINPUT
fi

case "$MODE" in
  full)
    FILES="$(git ls-files 'src/*.cc' 'src/**/*.cc')"
    ;;
  changed)
    if [ -z "$REF" ]; then
      if git rev-parse --verify -q origin/main >/dev/null; then
        REF=origin/main
      else
        REF=HEAD
      fi
    fi
    CHANGED="$( { git diff --name-only "$REF" --; git diff --name-only --cached --; } | sort -u)"
    FILES="$(printf '%s\n' "$CHANGED" | grep '^src/.*\.cc$' || true)"
    # A changed header is linted through every src/ TU that includes it.
    HDRS="$(printf '%s\n' "$CHANGED" | grep '^src/.*\.h$' || true)"
    for h in $HDRS; do
      rel="${h#src/}"
      FILES="$FILES
$(git grep -l "#include \"$rel\"" -- 'src/*.cc' 'src/**/*.cc' || true)"
    done
    FILES="$(printf '%s\n' $FILES | sort -u)"
    ;;
esac

# Drop files that no longer exist (deletes show up in git diff too).
EXISTING=
for f in $FILES; do
  [ -f "$f" ] && EXISTING="$EXISTING $f"
done
FILES="$EXISTING"

if [ -z "$(echo "$FILES" | tr -d ' \n')" ]; then
  echo "tidy.sh: no files to lint"
  exit 0
fi

echo "tidy.sh: linting$(echo "$FILES" | wc -w | tr -d ' ') TU(s) with $TIDY" | \
  sed 's/linting/linting /'

JOBS="${TIDY_JOBS:-$(nproc 2>/dev/null || echo 1)}"
NFILES="$(echo "$FILES" | wc -w | tr -d ' ')"

if [ -n "$FIX" ] || [ "$JOBS" -le 1 ] || [ "$NFILES" -le 1 ]; then
  # Serial: --fix must not race itself rewriting shared headers.
  # shellcheck disable=SC2086 — word splitting of $FILES is intended.
  "$TIDY" -p "$BUILD_DIR" --quiet $FIX $FILES
else
  # One clang-tidy process per TU, $JOBS at a time (TIDY_JOBS=N to cap).
  # Each TU's output is captured to its own file and replayed in input
  # order afterwards, so parallel runs never interleave diagnostics.
  TMP="$(mktemp -d "${TMPDIR:-/tmp}/sdtw-tidy.XXXXXX")"
  trap 'rm -rf "$TMP"' EXIT INT TERM
  export TIDY BUILD_DIR TMP
  # shellcheck disable=SC2086 — word splitting of $FILES is intended.
  printf '%s\n' $FILES | nl -ba -n rz -w 6 -s ' ' | \
    xargs -P "$JOBS" -L 1 sh -c '
      idx="$1"; f="$2"
      if ! "$TIDY" -p "$BUILD_DIR" --quiet "$f" \
          >"$TMP/$idx.log" 2>&1; then
        : >"$TMP/$idx.fail"
      fi' tidy-tu || true
  for log in "$TMP"/*.log; do
    [ -s "$log" ] && cat "$log"
  done
  if [ -n "$(find "$TMP" -name '*.fail' -print -quit)" ]; then
    exit 1
  fi
fi
echo "tidy.sh: clean"
