#!/usr/bin/env sh
# Clang Static Analyzer runner for the sdtw tree.
#
# Usage: scripts/scan_build.sh [--build-dir DIR] [--report-dir DIR] [--jobs N]
#
# Does a fresh configure + full-tree build under scan-build so every TU
# (src/, bench/, tests/) passes through the analyzer, writing plist +
# HTML reports into the report dir. Then gates on scripts/csa_gate.py:
# any diagnostic not matched by scripts/csa_suppressions.txt fails.
#
# Exit codes: 0 clean, 1 unsuppressed findings (or broken build),
# 69 (EX_UNAVAILABLE) when scan-build is not installed (apt: clang-tools)
# — mirrors scripts/tidy.sh so callers can skip gracefully.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-csa"
REPORT_DIR=
JOBS="$(nproc 2>/dev/null || echo 4)"

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir)
      BUILD_DIR="$2"
      shift 2
      ;;
    --report-dir)
      REPORT_DIR="$2"
      shift 2
      ;;
    --jobs)
      JOBS="$2"
      shift 2
      ;;
    -h|--help)
      sed -n '2,14p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *)
      echo "scan_build.sh: unknown argument: $1" >&2
      exit 2
      ;;
  esac
done
[ -n "$REPORT_DIR" ] || REPORT_DIR="$BUILD_DIR/csa-report"

SCAN="${SCAN_BUILD:-}"
if [ -z "$SCAN" ]; then
  for cand in scan-build scan-build-20 scan-build-19 scan-build-18 \
              scan-build-17 scan-build-16 scan-build-15 scan-build-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      SCAN="$cand"
      break
    fi
  done
fi
if [ -z "$SCAN" ]; then
  echo "scan_build.sh: scan-build not found (set SCAN_BUILD=... or apt install clang-tools)" >&2
  exit 69  # EX_UNAVAILABLE
fi

# Always analyze from a clean slate: an incremental build only re-analyzes
# the TUs it recompiles, which silently shrinks coverage.
rm -rf "$BUILD_DIR"
mkdir -p "$REPORT_DIR"

echo "scan_build.sh: analyzing with $SCAN ($JOBS jobs) -> $REPORT_DIR"
# Configure under scan-build so CMake records the analyzer's compiler
# wrappers; build under it so every TU is analyzed. -plist-html emits the
# machine-readable plists csa_gate.py consumes next to the human HTML
# pages CI uploads as an artifact.
"$SCAN" -plist-html -o "$REPORT_DIR" \
  cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo
"$SCAN" -plist-html -o "$REPORT_DIR" \
  cmake --build "$BUILD_DIR" -j "$JOBS"

exec python3 "$ROOT/scripts/csa_gate.py" \
  --report-dir "$REPORT_DIR" \
  --suppressions "$ROOT/scripts/csa_suppressions.txt" \
  --root "$ROOT"
