"""Cursor/type helpers over clang.cindex.

Import this module only after engine.load_cindex() succeeded — it imports
clang.cindex at module scope.
"""

import os

from clang.cindex import CursorKind, StorageClass, TypeKind

# Cursor kinds that introduce a function body scope.
FUNCTION_KINDS = frozenset((
    CursorKind.FUNCTION_DECL,
    CursorKind.CXX_METHOD,
    CursorKind.CONSTRUCTOR,
    CursorKind.DESTRUCTOR,
    CursorKind.CONVERSION_FUNCTION,
    CursorKind.FUNCTION_TEMPLATE,
    CursorKind.LAMBDA_EXPR,
))

RECORD_KINDS = frozenset((
    CursorKind.CLASS_DECL,
    CursorKind.STRUCT_DECL,
    CursorKind.CLASS_TEMPLATE,
    CursorKind.CLASS_TEMPLATE_PARTIAL_SPECIALIZATION,
))

_REF_KINDS = (TypeKind.LVALUEREFERENCE, TypeKind.RVALUEREFERENCE)

# Inline/versioned std sub-namespaces that would defeat exact name
# matching ("std::__1::mutex" on libc++, "std::__cxx11::basic_string"
# on libstdc++).
_STD_NOISE = ("::__1::", "::__cxx11::", "::__cxx20::", "::__detail::")


def normalize(spelling):
    for noise in _STD_NOISE:
        spelling = spelling.replace(noise, "::")
    return spelling


def canonical(type_obj):
    """Normalized canonical spelling of a type; '' when unavailable."""
    if type_obj is None:
        return ""
    try:
        return normalize(type_obj.get_canonical().spelling)
    except Exception:
        return ""


def deref(type_obj):
    """Peels reference types (T& / T&& -> T)."""
    if type_obj is not None and type_obj.kind in _REF_KINDS:
        return type_obj.get_pointee()
    return type_obj


def canonical_deref(type_obj):
    return canonical(deref(type_obj))


def qualified_name(cursor):
    """'ns::Class::member' via semantic parents, normalized. Template
    arguments are not included (class template spellings are bare)."""
    parts = []
    c = cursor
    while c is not None and c.kind != CursorKind.TRANSLATION_UNIT:
        spelling = c.spelling
        if spelling:
            parts.append(spelling)
        c = c.semantic_parent
    return normalize("::".join(reversed(parts)))


def parent_qualified_name(cursor):
    parent = cursor.semantic_parent if cursor is not None else None
    if parent is None:
        return ""
    return qualified_name(parent)


def location_path(cursor):
    loc = cursor.location
    if loc is None or loc.file is None:
        return None
    return os.path.abspath(loc.file.name)


def is_local_var(cursor):
    """True for a VAR_DECL declared inside a function body (any nesting),
    excluding statics."""
    if cursor is None or cursor.kind != CursorKind.VAR_DECL:
        return False
    try:
        if cursor.storage_class in (StorageClass.STATIC,
                                    StorageClass.EXTERN):
            return False
    except Exception:
        pass
    c = cursor.semantic_parent
    while c is not None and c.kind != CursorKind.TRANSLATION_UNIT:
        if c.kind in FUNCTION_KINDS:
            return True
        c = c.semantic_parent
    return False


def is_const_type(type_obj):
    try:
        return deref(type_obj).get_canonical().is_const_qualified()
    except Exception:
        return False


def walk_in_root(ctx, tu):
    """Preorder walk of every cursor located under ctx.root, pruning
    subtrees rooted in out-of-root files (system headers). Namespace
    blocks re-open per file, so pruning a std:: block from a system
    header never hides in-root code."""
    stack = list(reversed(list(tu.cursor.get_children())))
    while stack:
        cursor = stack.pop()
        path = location_path(cursor)
        if path is None or not ctx.in_root(path):
            continue
        yield cursor
        stack.extend(reversed(list(cursor.get_children())))


def subtree(cursor, skip_lambdas=True):
    """Preorder walk below `cursor` (exclusive), optionally skipping
    lambda bodies (their code runs later, under different locks)."""
    stack = list(reversed(list(cursor.get_children())))
    while stack:
        node = stack.pop()
        if skip_lambdas and node.kind == CursorKind.LAMBDA_EXPR:
            continue
        yield node
        stack.extend(reversed(list(node.get_children())))


def has_token(cursor, *names):
    """True when the raw source tokens of `cursor`'s extent contain any of
    `names` — macro-name-accurate annotation detection."""
    wanted = set(names)
    try:
        for tok in cursor.get_tokens():
            if tok.spelling in wanted:
                return True
    except Exception:
        pass
    return False
