"""CLI for the sdtw semantic AST linter.

Usage:
  python3 scripts/sdtw_lint [--root DIR] [--build-dir DIR]
                            [--only RULE ...] [--list-rules] [--probe]
                            [--verbose]

Parses every TU recorded in `<build-dir>/compile_commands.json` that
lives under src/, bench/ or tests/ (falling back to `src/**/*.cc` with
default flags when no database exists — fixture trees take this path) and
runs the rule registry over each. Findings deduplicate across TUs, so a
header violation reports once however many TUs include it.

Exit codes: 0 clean, 1 findings, 2 usage/environment error,
69 (EX_UNAVAILABLE) when the libclang Python bindings are missing —
mirrors scripts/tidy.sh so callers can skip gracefully.
"""

import argparse
import os
import sys

import engine


def main(argv):
    parser = argparse.ArgumentParser(
        prog="sdtw_lint",
        description="semantic AST lint suite for the sdtw tree "
                    "(see scripts/sdtw_lint/__init__.py)")
    parser.add_argument("--root", default=None,
                        help="tree to lint (default: the repo containing "
                             "this script)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json "
                             "(default: <root>/build when present)")
    parser.add_argument("--only", action="append",
                        choices=list(engine.RULE_NAMES), metavar="RULE",
                        help="run only this rule (repeatable); one of: "
                             + ", ".join(engine.RULE_NAMES))
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    parser.add_argument("--probe", action="store_true",
                        help="exit 0 when libclang is usable, 69 when not")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, summary in engine.RULE_INFO:
            print(f"{name}\t{summary}")
        return engine.EX_OK

    cindex, reason = engine.load_cindex()
    if cindex is None:
        print(f"sdtw_lint: {reason}; skipping semantic lint",
              file=sys.stderr)
        return engine.EX_UNAVAILABLE
    if args.probe:
        print("sdtw_lint: libclang usable")
        return engine.EX_OK

    root = os.path.abspath(
        args.root
        or os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
    if not os.path.isdir(root):
        print(f"sdtw_lint: --root {root} is not a directory",
              file=sys.stderr)
        return engine.EX_USAGE

    build_dir = args.build_dir
    if build_dir is None:
        default_build = os.path.join(root, "build")
        if os.path.isfile(os.path.join(default_build,
                                       "compile_commands.json")):
            build_dir = default_build
    elif not os.path.isdir(build_dir):
        print(f"sdtw_lint: --build-dir {build_dir} is not a directory",
              file=sys.stderr)
        return engine.EX_USAGE

    import rules  # imports clang.cindex — only valid past load_cindex()

    selected = [rules.BY_NAME[name]
                for name in (args.only or engine.RULE_NAMES)]

    ctx = engine.LintContext(root, verbose=args.verbose)
    units, mode = engine.translation_units(ctx, build_dir)
    if not units:
        print(f"sdtw_lint: no translation units found under {root}",
              file=sys.stderr)
        return engine.EX_USAGE
    if args.verbose:
        print(f"sdtw_lint: {len(units)} TU(s) via {mode}")

    index = cindex.Index.create()
    findings = []
    parsed = 0
    for path, parse_args in units:
        try:
            tu = index.parse(path, args=parse_args)
        except Exception as e:
            print(f"sdtw_lint: failed to parse {path}: {e}",
                  file=sys.stderr)
            continue
        if tu is None:
            print(f"sdtw_lint: failed to parse {path}", file=sys.stderr)
            continue
        parsed += 1
        if args.verbose:
            fatals = [d for d in tu.diagnostics if d.severity >= 4]
            for d in fatals:
                print(f"sdtw_lint: note: {path}: {d.spelling}",
                      file=sys.stderr)
        for rule in selected:
            for finding in rule.check(ctx, tu):
                if not ctx.in_scope(finding.path, rule.DIRS):
                    continue
                if ctx.is_allowed(finding.path, finding.line,
                                  rule.SUPPRESS):
                    continue
                findings.append(finding)

    if parsed == 0:
        print("sdtw_lint: every translation unit failed to parse",
              file=sys.stderr)
        return engine.EX_USAGE

    findings = engine.dedupe(findings)
    for finding in findings:
        print(finding.render(root))
    rule_names = ", ".join(r.NAME for r in selected)
    if findings:
        print(f"sdtw_lint: {len(findings)} finding(s) "
              f"({parsed} TU(s), rules: {rule_names})", file=sys.stderr)
        return engine.EX_FINDINGS
    print(f"sdtw_lint: clean ({parsed} TU(s), rules: {rule_names})")
    return engine.EX_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
