"""Clang-independent engine for sdtw_lint.

Everything here must import without the libclang bindings present, so the
CLI can probe for them and exit 69 (EX_UNAVAILABLE) gracefully. The
clang-dependent cursor helpers live in cxx.py; the rules live in rules/.
"""

import glob
import json
import os
import re
import shlex
import sys

EX_OK = 0
EX_FINDINGS = 1
EX_USAGE = 2
EX_UNAVAILABLE = 69

# Rule metadata lives here (not in the rule modules) so --list-rules works
# without libclang. rules/__init__.py asserts the two stay in sync.
RULE_INFO = (
    ("lock-discipline",
     "no blocking/I-O/raw-wait calls while holding a core::Mutex"),
    ("guarded-member-coverage",
     "mutable members of mutex-owning classes carry SDTW_GUARDED_BY"),
    ("raw-sync-primitives",
     "no bare std:: sync primitives outside core/mutex.h"),
    ("span-lifetime",
     "no std::span/std::string_view views over locals or temporaries"),
    ("determinism",
     "no result-feeding iteration / FP reduction over unordered containers"),
)
RULE_NAMES = tuple(name for name, _ in RULE_INFO)

# Suppression marker: `lint:allow(<key>)` or `lint:allow(<key>: rationale)`
# on the finding's line or the line directly above it. Keys are per-rule
# (see each rule module's SUPPRESS attribute) and deliberately short —
# e.g. the guarded-member rule uses `unguarded`.
ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+)(?:\s*:[^)]*)?\)")

SCAN_DIRS = ("src", "bench", "tests")
FIXTURE_MARKER = os.path.join("tests", "lint", "fixtures")
SKIP_DIR_NAMES = {".git", "_deps", "CMakeFiles"}


def load_cindex(extra_search=True):
    """Returns (cindex_module, None) or (None, human-readable reason).

    Tries a plain import first; when the module is importable but the
    libclang shared library is not on the default search path (common for
    distro LLVM installs), retries with every libclang.so it can find.
    """
    cindex = None
    try:
        from clang import cindex  # noqa: F401  (re-imported below)
        import clang.cindex as cindex
    except ImportError:
        if extra_search:
            # Distro LLVM sometimes ships the bindings outside site-packages.
            for pattern in ("/usr/lib/llvm-*/lib/python3*/site-packages",
                            "/usr/lib/llvm-*/lib/python3*/dist-packages"):
                for path in sorted(glob.glob(pattern), reverse=True):
                    if path not in sys.path:
                        sys.path.append(path)
            try:
                import clang.cindex as cindex
            except ImportError:
                cindex = None
        if cindex is None:
            return None, ("python libclang bindings (clang.cindex) not "
                          "installed — apt: python3-clang, pip: libclang")

    try:
        cindex.Index.create()
        return cindex, None
    except Exception as first_error:  # cindex.LibclangError, usually
        candidates = []
        for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                        "/usr/lib/llvm-*/lib/libclang-*.so*",
                        "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                        "/usr/lib/*/libclang.so*",
                        "/usr/local/lib/libclang*.so*"):
            candidates.extend(sorted(glob.glob(pattern), reverse=True))
        for lib in candidates:
            if "libclang-cpp" in os.path.basename(lib):
                continue  # the C++ library, not the C API the bindings wrap
            try:
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                return cindex, None
            except Exception:
                continue
        return None, (f"libclang shared library not loadable "
                      f"({first_error}) — apt: libclang1 / libclang-dev")


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("rule", "path", "line", "col", "message", "priority")

    def __init__(self, rule, path, line, col, message, priority=0):
        self.rule = rule
        self.path = path
        self.line = int(line)
        self.col = int(col)
        self.message = message
        # When two findings of one rule land on the same line, the higher
        # priority one wins the dedupe (e.g. the determinism rule prefers
        # its range-for classification over the raw begin() call).
        self.priority = priority

    def key(self):
        return (self.rule, self.path, self.line)

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class LintContext:
    """Per-run state shared by every rule: root, file cache, suppressions."""

    def __init__(self, root, verbose=False):
        self.root = os.path.abspath(root)
        self.verbose = verbose
        self._lines = {}

    def file_lines(self, path):
        path = os.path.abspath(path)
        if path not in self._lines:
            try:
                with open(path, "r", encoding="utf-8",
                          errors="replace") as f:
                    self._lines[path] = f.read().split("\n")
            except OSError:
                self._lines[path] = []
        return self._lines[path]

    def is_allowed(self, path, line, key):
        """True when `lint:allow(<key>[: why])` sits on `line` or the line
        directly above it."""
        lines = self.file_lines(path)
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(lines):
                for m in ALLOW_RE.finditer(lines[lineno - 1]):
                    if m.group(1) == key:
                        return True
        return False

    def in_root(self, path):
        rel = os.path.relpath(os.path.abspath(path), self.root)
        return not rel.startswith("..") and not os.path.isabs(rel)

    def in_scope(self, path, dirs):
        """True when `path` lives under one of the repo-relative `dirs`
        and is not a deliberately-violating lint fixture."""
        rel = os.path.relpath(os.path.abspath(path), self.root)
        if rel.startswith("..") or os.path.isabs(rel):
            return False
        if FIXTURE_MARKER in rel:
            # Only skip fixtures when linting the real tree; a fixture
            # being the root itself never hits this (rel is inside it).
            return False
        top = rel.split(os.sep, 1)[0]
        return top in dirs or rel in dirs


# Parse-argument extraction from a compile_commands.json entry: keep the
# flags that shape the AST (includes, defines, dialect, arch, warnings),
# drop everything about outputs. Unknown keepers are harmless to libclang.
_KEEP_PREFIXES = ("-I", "-D", "-U", "-std=", "-m", "-f", "-W", "-O", "-g",
                  "--sysroot", "-nostdinc", "-pthread", "--target=")
_KEEP_WITH_VALUE = ("-isystem", "-iquote", "-idirafter", "-include",
                    "-imacros")


def _absolutize(path, directory):
    if path and directory and not os.path.isabs(path):
        return os.path.normpath(os.path.join(directory, path))
    return path


def extract_parse_args(argv, directory):
    out = []
    i = 1  # skip the compiler
    while i < len(argv):
        arg = argv[i]
        if arg in ("-c", "-S", "-E"):
            i += 1
            continue
        if arg == "-o":
            i += 2
            continue
        if arg == "-I":
            val = argv[i + 1] if i + 1 < len(argv) else None
            out.extend(["-I", _absolutize(val, directory)])
            i += 2
            continue
        if arg in _KEEP_WITH_VALUE:
            val = argv[i + 1] if i + 1 < len(argv) else None
            out.extend([arg, _absolutize(val, directory)])
            i += 2
            continue
        if arg.startswith("-I") and len(arg) > 2:
            out.append("-I" + _absolutize(arg[2:], directory))
            i += 1
            continue
        if any(arg.startswith(p) for p in _KEEP_PREFIXES):
            out.append(arg)
            i += 1
            continue
        i += 1
    return [a for a in out if a is not None]


def translation_units(ctx, build_dir):
    """Returns ([(source_path, parse_args)], mode_string).

    Preferred source: `build_dir/compile_commands.json` (every configure
    writes one), restricted to TUs under src/, bench/, tests/. Fallback
    when there is no database (e.g. fixture trees): every .cc under
    `root/src` parsed with `-std=c++20 -I root/src`.
    """
    db_path = os.path.join(build_dir, "compile_commands.json") \
        if build_dir else None
    if db_path and os.path.isfile(db_path):
        with open(db_path, "r", encoding="utf-8") as f:
            entries = json.load(f)
        units = []
        seen = set()
        for entry in entries:
            directory = entry.get("directory", ".")
            path = _absolutize(entry.get("file", ""), directory)
            if not path or path in seen:
                continue
            if not ctx.in_scope(path, SCAN_DIRS):
                continue
            seen.add(path)
            if "arguments" in entry:
                argv = list(entry["arguments"])
            else:
                argv = shlex.split(entry.get("command", ""))
            units.append((path, extract_parse_args(argv, directory)))
        if units:
            units.sort()
            return units, f"compile database ({db_path})"

    src = os.path.join(ctx.root, "src")
    units = []
    for dirpath, dirnames, filenames in os.walk(src):
        dirnames[:] = sorted(d for d in dirnames
                             if d not in SKIP_DIR_NAMES
                             and not d.startswith("build"))
        for name in sorted(filenames):
            if name.endswith(".cc") or name.endswith(".cpp"):
                units.append((os.path.join(dirpath, name),
                              ["-std=c++20", "-I", src]))
    return units, "fallback (-std=c++20 -I src; no compile database)"


def dedupe(findings):
    """Stable dedupe on (rule, path, line), keeping the highest-priority
    finding per key, then sorts for deterministic output."""
    best = {}
    for f in findings:
        k = f.key()
        if k not in best or f.priority > best[k].priority:
            best[k] = f
    return sorted(best.values(),
                  key=lambda f: (f.path, f.line, f.rule, f.col))
