"""Rule guarded-member-coverage: mutex-owning classes annotate every
mutable member.

Clang's thread-safety analysis only checks members that already carry
SDTW_GUARDED_BY — a member someone forgot to annotate is silently
unchecked, which is exactly the hole unannotated shared state hides in.
This rule closes it structurally: in any class that owns a core::Mutex,
every mutable data member must either

  * carry SDTW_GUARDED_BY(...) / SDTW_PT_GUARDED_BY(...), or
  * state why it needs no guard: `// lint:allow(unguarded: <why>)`.

Exempt by construction: const members, the mutexes themselves,
core::CondVar (internally synchronized by contract), and std::atomic<>
members (their synchronization *is* the type).
"""

from clang.cindex import CursorKind

import cxx
from engine import Finding

NAME = "guarded-member-coverage"
SUPPRESS = "unguarded"
DIRS = ("src",)

MUTEX_TYPE = "sdtw::core::Mutex"
EXEMPT_EXACT = frozenset((
    "sdtw::core::Mutex",
    "sdtw::core::CondVar",
))
EXEMPT_PREFIXES = ("std::atomic<",)


def _is_exempt_type(spelling):
    return (spelling in EXEMPT_EXACT
            or any(spelling.startswith(p) for p in EXEMPT_PREFIXES))


def check(ctx, tu):
    out = []
    for cursor in cxx.walk_in_root(ctx, tu):
        if cursor.kind not in cxx.RECORD_KINDS:
            continue
        try:
            if not cursor.is_definition():
                continue
        except Exception:
            continue
        fields = [c for c in cursor.get_children()
                  if c.kind == CursorKind.FIELD_DECL]
        owns_mutex = any(cxx.canonical(f.type) == MUTEX_TYPE
                         for f in fields)
        if not owns_mutex:
            continue
        class_name = cursor.spelling or "<anonymous>"
        for field in fields:
            spelling = cxx.canonical(field.type)
            if _is_exempt_type(spelling):
                continue
            if cxx.is_const_type(field.type):
                continue
            if cxx.has_token(field, "SDTW_GUARDED_BY",
                             "SDTW_PT_GUARDED_BY"):
                continue
            path = cxx.location_path(field)
            if path is None:
                continue
            out.append(Finding(
                NAME, path, field.location.line, field.location.column,
                f"mutable member '{field.spelling}' of mutex-owning class "
                f"'{class_name}' has no SDTW_GUARDED_BY / "
                f"SDTW_PT_GUARDED_BY — annotate it, or state why it needs "
                f"no guard with // lint:allow(unguarded: <why>)"))
    return out
