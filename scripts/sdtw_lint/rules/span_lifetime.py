"""Rule span-lifetime: no views over storage that dies.

The API is std::span end-to-end, and the planned mmap'd on-disk index
(ROADMAP open item 1) makes every hot path a zero-copy view chain — one
span derived from a function-local vector is a use-after-free the type
system never sees. This rule flags the two shapes that matter:

  * a function whose return type is std::span / std::string_view
    returning a view derived from a function-local owning container, a
    by-value owning parameter, or an owning temporary;
  * a method storing such a view into a data member (the member outlives
    the local by construction).

Views over members, reference parameters, statics, and other views are
fine — ownership lives elsewhere.

Suppress with `// lint:allow(span-lifetime: <why>)`.
"""

from clang.cindex import CursorKind, TypeKind

import cxx
from engine import Finding

NAME = "span-lifetime"
SUPPRESS = "span-lifetime"
DIRS = ("src",)

VIEW_PREFIXES = ("std::span<", "std::basic_string_view<")
VIEW_EXACT = frozenset(("std::string_view",))

OWNING_PREFIXES = ("std::vector<", "std::basic_string<", "std::array<",
                   "std::deque<", "std::initializer_list<")
OWNING_EXACT = frozenset(("std::string",))


def _is_view(spelling):
    return (spelling in VIEW_EXACT
            or any(spelling.startswith(p) for p in VIEW_PREFIXES))


def _is_owning(spelling):
    return (spelling in OWNING_EXACT
            or any(spelling.startswith(p) for p in OWNING_PREFIXES))


def _is_by_value(type_obj):
    if type_obj is None:
        return False
    return type_obj.kind not in (TypeKind.LVALUEREFERENCE,
                                 TypeKind.RVALUEREFERENCE,
                                 TypeKind.POINTER)


def _dying_source(expr):
    """Returns a description of the doomed storage the expression derives
    a view from, or None when every source outlives the function."""
    nodes = [expr]
    nodes.extend(cxx.subtree(expr, skip_lambdas=True))
    for node in nodes:
        kind = node.kind
        if kind == CursorKind.DECL_REF_EXPR:
            ref = node.referenced
            if ref is None:
                continue
            if (ref.kind == CursorKind.VAR_DECL and cxx.is_local_var(ref)
                    and _is_owning(cxx.canonical_deref(ref.type))):
                return f"function-local '{ref.spelling}'"
            if (ref.kind == CursorKind.PARM_DECL
                    and _is_by_value(ref.type)
                    and _is_owning(cxx.canonical(ref.type))):
                return f"by-value parameter '{ref.spelling}'"
        elif kind in (CursorKind.CALL_EXPR,
                      CursorKind.CXX_FUNCTIONAL_CAST_EXPR):
            # A call/materialization producing an owning container inside
            # the view expression is a temporary: the view outlives it by
            # the end of the full-expression.
            if _is_owning(cxx.canonical(node.type)):
                return "an owning temporary"
    return None


def _check_returns(func, out):
    result_type = None
    try:
        result_type = func.result_type
    except Exception:
        pass
    if result_type is None or not _is_view(cxx.canonical(result_type)):
        return
    for node in cxx.subtree(func, skip_lambdas=True):
        if node.kind != CursorKind.RETURN_STMT:
            continue
        children = list(node.get_children())
        if not children:
            continue
        source = _dying_source(children[0])
        if source is None:
            continue
        path = cxx.location_path(node)
        if path is None:
            continue
        out.append(Finding(
            NAME, path, node.location.line, node.location.column,
            f"returns a {cxx.canonical(result_type)} viewing {source} — "
            f"the storage dies at function exit; return the container, "
            f"take the storage by reference, or add "
            f"// lint:allow(span-lifetime: <why>)"))


def _member_store_parts(node):
    """For an assignment whose target is a view-typed member, returns
    (member_name, rhs_nodes); otherwise None. Handles both the builtin
    assignment form (BINARY_OPERATOR) and the operator= call form class
    types lower to (CALL_EXPR)."""
    if node.kind == CursorKind.BINARY_OPERATOR:
        if not _is_view(cxx.canonical(node.type)):
            return None
        children = list(node.get_children())
        if len(children) != 2:
            return None
        lhs, rhs = children
        if lhs.kind != CursorKind.MEMBER_REF_EXPR:
            return None
        return lhs.spelling, [rhs]
    if node.kind == CursorKind.CALL_EXPR:
        ref = node.referenced
        if ref is None or ref.spelling != "operator=":
            return None
        if not _is_view(cxx.canonical_deref(node.type)):
            return None
        children = list(node.get_children())
        member = None
        rhs = []
        for child in children:
            if member is None and child.kind == CursorKind.MEMBER_REF_EXPR:
                member = child.spelling
            elif member is not None:
                rhs.append(child)
        if member is None or not rhs:
            return None
        return member, rhs
    return None


def _check_member_stores(func, out):
    for node in cxx.subtree(func, skip_lambdas=True):
        parts = _member_store_parts(node)
        if parts is None:
            continue
        member, rhs_nodes = parts
        source = None
        for rhs in rhs_nodes:
            source = _dying_source(rhs)
            if source is not None:
                break
        if source is None:
            continue
        path = cxx.location_path(node)
        if path is None:
            continue
        out.append(Finding(
            NAME, path, node.location.line, node.location.column,
            f"stores a view of {source} into member '{member}' — the "
            f"member outlives the storage; keep the owning container "
            f"alongside, or add // lint:allow(span-lifetime: <why>)"))


def _check_ctor_inits(ctor, out):
    """Constructor member-initializer form: MEMBER_REF of view type
    followed by its initializer expression."""
    children = list(ctor.get_children())
    for i, child in enumerate(children):
        if child.kind != CursorKind.MEMBER_REF:
            continue
        if not _is_view(cxx.canonical_deref(child.type)):
            continue
        if i + 1 >= len(children):
            continue
        source = _dying_source(children[i + 1])
        if source is None:
            continue
        path = cxx.location_path(child)
        if path is None:
            continue
        out.append(Finding(
            NAME, path, child.location.line, child.location.column,
            f"initializes view member '{child.spelling}' from {source} — "
            f"the member outlives the storage; keep the owning container "
            f"alongside, or add // lint:allow(span-lifetime: <why>)"))


def check(ctx, tu):
    out = []
    for cursor in cxx.walk_in_root(ctx, tu):
        if cursor.kind not in cxx.FUNCTION_KINDS:
            continue
        try:
            if not cursor.is_definition():
                continue
        except Exception:
            continue
        _check_returns(cursor, out)
        _check_member_stores(cursor, out)
        if cursor.kind == CursorKind.CONSTRUCTOR:
            _check_ctor_inits(cursor, out)
    return out
