"""Rule raw-sync-primitives: no bare std:: synchronization primitives
outside core/mutex.h.

libstdc++'s std::mutex carries no capability attributes, so any state
guarded by one is invisible to -Wthread-safety: the analysis sees neither
the acquire nor the guarded access. core/mutex.h exists precisely to wrap
the raw primitives once, with the attributes attached; everything else in
src/, bench/ and tests/ must go through core::Mutex / core::MutexLock /
core::UniqueLock / core::CondVar.

Suppress a deliberate exception with `// lint:allow(raw-sync: <why>)`.
"""

import os
import re

from clang.cindex import CursorKind

import cxx
from engine import Finding

NAME = "raw-sync-primitives"
SUPPRESS = "raw-sync"
DIRS = ("src", "bench", "tests")

# The one file allowed to touch the raw primitives: the annotated wrapper.
EXEMPT_FILE_SUFFIXES = (os.path.join("src", "core", "mutex.h"),)

RAW_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")

DECL_KINDS = frozenset((
    CursorKind.VAR_DECL,
    CursorKind.FIELD_DECL,
    CursorKind.PARM_DECL,
    CursorKind.TYPEDEF_DECL,
    CursorKind.TYPE_ALIAS_DECL,
))


def check(ctx, tu):
    out = []
    for cursor in cxx.walk_in_root(ctx, tu):
        if cursor.kind not in DECL_KINDS:
            continue
        path = cxx.location_path(cursor)
        if path is None or path.endswith(EXEMPT_FILE_SUFFIXES):
            continue
        spelling = cxx.canonical_deref(cursor.type)
        m = RAW_RE.search(spelling)
        if m is None:
            continue
        out.append(Finding(
            NAME, path, cursor.location.line, cursor.location.column,
            f"raw std::{m.group(1)} in '{cursor.spelling}' — invisible to "
            f"thread-safety analysis; use core::Mutex / core::MutexLock / "
            f"core::UniqueLock / core::CondVar (core/mutex.h), or add "
            f"// lint:allow(raw-sync: <why>)"))
    return out
