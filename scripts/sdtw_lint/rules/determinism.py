"""Rule determinism: no ordering-dependent accumulation over unordered
containers.

The repo's headline invariant is bitwise-identical hits under any thread
count, kernel variant, and build. std::unordered_map / std::unordered_set
iteration order is unspecified and varies with libstdc++ version, seed,
and insertion history — any result that *feeds from* such an iteration
(above all a floating-point reduction, where (a+b)+c != a+(b+c)) silently
breaks the invariant while passing every single-configuration test.

Flagged:
  * range-for over an unordered container (classified as a floating-point
    reduction when the body compound-assigns a float/double);
  * explicit iteration via .begin()/.cbegin() on an unordered container
    (find()/count()/end()-comparison idioms are untouched);
  * floating-point accumulation on std::atomic<float/double>
    (fetch_add-style and compound-assignment) — cross-thread arrival
    order is nondeterministic by construction.

Fix by sorting keys first, iterating a vector, or accumulating into an
order-independent structure; suppress a provably order-insensitive site
with `// lint:allow(determinism: <why>)`.
"""

from clang.cindex import CursorKind

import cxx
from engine import Finding

NAME = "determinism"
SUPPRESS = "determinism"
DIRS = ("src", "bench")

UNORDERED_PREFIXES = ("std::unordered_map<", "std::unordered_set<",
                      "std::unordered_multimap<",
                      "std::unordered_multiset<")

FP_SPELLINGS = frozenset(("float", "double", "long double"))

ATOMIC_FP_PREFIXES = ("std::atomic<float", "std::atomic<double",
                      "std::atomic<long double")


def _is_unordered(spelling):
    return any(spelling.startswith(p) for p in UNORDERED_PREFIXES)


def _has_fp_reduction(body):
    nodes = [body]
    nodes.extend(cxx.subtree(body, skip_lambdas=True))
    for node in nodes:
        if node.kind != CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            continue
        if cxx.canonical_deref(node.type) in FP_SPELLINGS:
            return True
    return False


def _check_range_for(node, out):
    children = list(node.get_children())
    ranges_unordered = any(
        _is_unordered(cxx.canonical_deref(child.type))
        for child in children)
    if not ranges_unordered:
        return
    path = cxx.location_path(node)
    if path is None:
        return
    body = children[-1] if children else None
    if body is not None and _has_fp_reduction(body):
        message = ("floating-point reduction over an unordered container "
                   "— iteration order is unspecified and FP addition is "
                   "not associative, so the result is "
                   "configuration-dependent; sort the keys first or "
                   "add // lint:allow(determinism: <why>)")
    else:
        message = ("result-feeding iteration over an unordered container "
                   "— iteration order is unspecified, so anything "
                   "accumulated from it is ordering-dependent; sort the "
                   "keys first or add // lint:allow(determinism: <why>)")
    out.append(Finding(NAME, path, node.location.line,
                       node.location.column, message, priority=2))


def _check_begin_call(node, out):
    ref = node.referenced
    if ref is None or ref.spelling not in ("begin", "cbegin"):
        return
    parent_q = cxx.parent_qualified_name(ref)
    if not parent_q.startswith("std::unordered_"):
        return
    path = cxx.location_path(node)
    if path is None:
        return
    out.append(Finding(
        NAME, path, node.location.line, node.location.column,
        "iterator walk over an unordered container (.begin()) — "
        "iteration order is unspecified; sort the keys first or add "
        "// lint:allow(determinism: <why>)", priority=1))


def _check_atomic_fp(node, out):
    flagged = None
    if node.kind == CursorKind.CALL_EXPR:
        ref = node.referenced
        if ref is not None and ref.spelling in ("fetch_add", "fetch_sub"):
            children = list(node.get_children())
            if children:
                obj = cxx.canonical_deref(children[0].type)
                if any(obj.startswith(p) for p in ATOMIC_FP_PREFIXES):
                    flagged = f"'{ref.spelling}'"
    elif node.kind == CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
        children = list(node.get_children())
        if children:
            lhs = cxx.canonical_deref(children[0].type)
            if any(lhs.startswith(p) for p in ATOMIC_FP_PREFIXES):
                flagged = "compound assignment"
    if flagged is None:
        return
    path = cxx.location_path(node)
    if path is None:
        return
    out.append(Finding(
        NAME, path, node.location.line, node.location.column,
        f"floating-point accumulation on a std::atomic ({flagged}) — "
        f"cross-thread arrival order is nondeterministic and FP addition "
        f"is not associative; accumulate per-thread and reduce in a fixed "
        f"order, or add // lint:allow(determinism: <why>)", priority=2))


def check(ctx, tu):
    out = []
    for cursor in cxx.walk_in_root(ctx, tu):
        kind = cursor.kind
        if kind == CursorKind.CXX_FOR_RANGE_STMT:
            _check_range_for(cursor, out)
        elif kind == CursorKind.CALL_EXPR:
            _check_begin_call(cursor, out)
            _check_atomic_fp(cursor, out)
        elif kind == CursorKind.COMPOUND_ASSIGNMENT_OPERATOR:
            _check_atomic_fp(cursor, out)
    return out
