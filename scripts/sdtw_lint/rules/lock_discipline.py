"""Rule lock-discipline: no blocking calls while holding a core::Mutex.

The repo's locking contract (stated in core/mutex.h) is leaf locks held
for O(1) critical sections. A call that can block — sleeping, stream or C
I/O, a raw condvar wait, joining a thread, waiting on a future, or
re-entering a blocking service entry point like QueryService::Submit /
WorkerPool::Execute — inside a scope that holds a core::MutexLock or
core::UniqueLock turns the lock into a convoy (or a deadlock, for the
re-entrant cases). Clang's thread-safety analysis cannot express this: it
tracks which capabilities are held, not what the held region does.

core::CondVar::Wait/WaitUntil are the blessed waits (they release the
lock atomically) and are not flagged.

Suppress with `// lint:allow(lock-discipline: <why>)`.
"""

from clang.cindex import CursorKind

import cxx
from engine import Finding

NAME = "lock-discipline"
SUPPRESS = "lock-discipline"
DIRS = ("src", "bench", "tests")

LOCK_TYPES = frozenset((
    "sdtw::core::MutexLock",
    "sdtw::core::UniqueLock",
))

# Fully-qualified free/namespace-scope functions that block.
BLOCKING_EXACT = {
    "std::this_thread::sleep_for": "sleeps",
    "std::this_thread::sleep_until": "sleeps",
    "sleep": "sleeps",
    "usleep": "sleeps",
    "nanosleep": "sleeps",
    "std::system": "runs a subprocess",
    "system": "runs a subprocess",
}

# Blocking members, keyed by the owning class's qualified name.
BLOCKING_METHODS = {
    "std::condition_variable": ("wait", "wait_for", "wait_until"),
    "std::condition_variable_any": ("wait", "wait_for", "wait_until"),
    "std::thread": ("join",),
    "std::future": ("get", "wait", "wait_for", "wait_until"),
    "std::shared_future": ("get", "wait", "wait_for", "wait_until"),
}

# C stdio — any of these under a lock is I/O in a critical section.
C_IO = frozenset((
    "printf", "fprintf", "vprintf", "vfprintf", "puts", "fputs", "putchar",
    "fwrite", "fread", "fopen", "fclose", "fflush", "fgets", "getchar",
    "scanf", "fscanf", "getline", "perror",
))

STREAM_CLASS_PREFIXES = ("std::basic_ostream", "std::basic_istream",
                         "std::basic_iostream", "std::basic_fstream",
                         "std::basic_ofstream", "std::basic_ifstream")

# Blocking service entry points: calling these while holding any lock
# risks deadlock against the service's own mutex/condvars.
SDTW_BLOCKING_METHOD_NAMES = frozenset(("Submit", "Execute", "Shutdown",
                                        "Query"))
SDTW_BLOCKING_SCOPE = "sdtw::retrieval::"


def _param_types(decl):
    try:
        return [cxx.canonical(a.type) for a in decl.get_arguments()]
    except Exception:
        return []


def _classify_call(call):
    """Returns a short 'what it does' string when `call` is blocking."""
    ref = call.referenced
    if ref is None:
        return None
    name = ref.spelling or ""
    qname = cxx.qualified_name(ref)
    if qname in BLOCKING_EXACT:
        return f"'{qname}' {BLOCKING_EXACT[qname]}"

    parent_q = cxx.parent_qualified_name(ref)
    blocked = BLOCKING_METHODS.get(parent_q)
    if blocked and name in blocked:
        if parent_q.startswith("std::condition_variable"):
            return (f"raw '{parent_q}::{name}' — use core::CondVar with a "
                    f"core::UniqueLock instead")
        return f"'{parent_q}::{name}' blocks"

    # Stream I/O: member operator<< / operator>> of a std stream, or a
    # free operator<< / operator>> whose first parameter is a stream.
    if any(parent_q.startswith(p) for p in STREAM_CLASS_PREFIXES):
        return f"stream I/O ('{parent_q}::{name}')"
    if name in ("operator<<", "operator>>"):
        params = _param_types(ref)
        if params and any(params[0].find(marker) != -1
                          for marker in ("basic_ostream", "basic_istream",
                                         "basic_iostream")):
            return f"stream I/O ('{name}')"

    if name in C_IO and ("::" not in qname or qname.startswith("std::")):
        return f"C I/O ('{name}')"

    if (name in SDTW_BLOCKING_METHOD_NAMES
            and parent_q.startswith(SDTW_BLOCKING_SCOPE)):
        return (f"'{parent_q}::{name}' is a blocking service entry point "
                f"(bounded-queue admission / broadcast join)")
    return None


def _scan(node, held, out):
    """Walks a statement with the list of locks currently held. held is
    (lock_name, acquire_line) tuples; compound statements fork it so a
    lock dies with its scope."""
    kind = node.kind
    if kind == CursorKind.LAMBDA_EXPR:
        return  # runs later, under whatever locks its caller holds then

    if kind == CursorKind.COMPOUND_STMT:
        local_held = list(held)
        for child in node.get_children():
            if child.kind == CursorKind.DECL_STMT:
                # Initializer expressions run with the locks held on
                # entry (the new lock's own constructor call never
                # matches the denylist, so scanning it too is harmless).
                for sub in child.get_children():
                    _scan(sub, local_held, out)
                for d in child.get_children():
                    if (d.kind == CursorKind.VAR_DECL
                            and cxx.canonical_deref(d.type) in LOCK_TYPES):
                        local_held.append(
                            (d.spelling or "<lock>", d.location.line))
            else:
                _scan(child, local_held, out)
        return

    if kind == CursorKind.CALL_EXPR and held:
        what = _classify_call(node)
        if what is not None:
            lock_name, lock_line = held[-1]
            path = cxx.location_path(node)
            if path is not None:
                out.append(Finding(
                    NAME, path, node.location.line, node.location.column,
                    f"blocking call under lock: {what}, while "
                    f"'{lock_name}' (acquired line {lock_line}) holds a "
                    f"core::Mutex — move it outside the critical section "
                    f"or add // lint:allow(lock-discipline: <why>)"))
    for child in node.get_children():
        _scan(child, held, out)


def check(ctx, tu):
    out = []
    for cursor in cxx.walk_in_root(ctx, tu):
        if cursor.kind not in cxx.FUNCTION_KINDS:
            continue
        try:
            if not cursor.is_definition():
                continue
        except Exception:
            continue
        for child in cursor.get_children():
            if child.kind == CursorKind.COMPOUND_STMT:
                _scan(child, [], out)
    return out
