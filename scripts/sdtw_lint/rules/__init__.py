"""Rule registry for sdtw_lint.

Import this package only after engine.load_cindex() succeeded: the rule
modules import clang.cindex at module scope. Each rule module exports

  NAME      rule id (what --only and finding tags use)
  SUPPRESS  the lint:allow(...) key that silences it
  DIRS      repo-relative top-level dirs whose findings count
  check(ctx, tu) -> list[Finding]
"""

import engine

from . import (determinism, guarded_members, lock_discipline, raw_sync,
               span_lifetime)

ALL_RULES = (lock_discipline, guarded_members, raw_sync, span_lifetime,
             determinism)
BY_NAME = {rule.NAME: rule for rule in ALL_RULES}

# engine.RULE_INFO powers --list-rules without libclang; keep it honest.
assert set(BY_NAME) == set(engine.RULE_NAMES), (
    "rules/__init__.py and engine.RULE_INFO disagree on the rule set")
