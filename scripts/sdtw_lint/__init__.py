"""sdtw_lint — semantic AST lint suite for the sdtw tree.

A `compile_commands.json`-driven linter built on the libclang Python
bindings (`clang.cindex`). It enforces the concurrency and determinism
invariants that neither clang-tidy nor the regex-based
`scripts/lint_invariants.py` can express, because they require real
type/scope information:

  lock-discipline          no blocking, I/O, or raw-wait calls in a scope
                           holding a core::Mutex via MutexLock/UniqueLock
  guarded-member-coverage  every mutable member of a mutex-owning class
                           carries SDTW_GUARDED_BY / SDTW_PT_GUARDED_BY
                           (or an explicit rationale)
  raw-sync-primitives      no bare std::mutex / std::lock_guard /
                           std::condition_variable outside core/mutex.h
  span-lifetime            no std::span / std::string_view returned from
                           (or stored over) locals and temporaries
  determinism              no result-feeding iteration or floating-point
                           reduction over unordered containers

Run as a directory:  python3 scripts/sdtw_lint [--help]

Exit codes follow scripts/tidy.sh conventions: 0 clean, 1 findings,
2 usage/environment error, 69 (EX_UNAVAILABLE) when the libclang
bindings are not installed — callers treat 69 as a graceful skip.
"""
