#!/usr/bin/env python3
"""Gate on Clang Static Analyzer plist reports.

Reads every ``*.plist`` under a scan-build report directory, drops the
diagnostics matched by a documented suppressions file, and fails when any
diagnostic survives. scan-build itself only reports; this turns its
output into a pass/fail CI signal with an audit trail for every accepted
finding.

Suppressions file format (see scripts/csa_suppressions.txt): one entry
per line, ``<checker-glob> <path-glob>  # rationale``. The rationale is
mandatory — an entry without one is a usage error, so every suppression
says *why* the finding is acceptable. Paths are repo-relative, matched
with fnmatch (``*`` does not cross ``/``; use ``src/dtw/*`` per dir).

Exit codes: 0 clean (including "no reports found" — scan-build deletes
empty report dirs), 1 unsuppressed findings, 2 usage error.
"""

import argparse
import fnmatch
import os
import plistlib
import sys

EX_OK, EX_FINDINGS, EX_USAGE = 0, 1, 2


class Suppression:
    __slots__ = ("checker_glob", "path_glob", "rationale", "lineno", "used")

    def __init__(self, checker_glob, path_glob, rationale, lineno):
        self.checker_glob = checker_glob
        self.path_glob = path_glob
        self.rationale = rationale
        self.lineno = lineno
        self.used = False

    def matches(self, checker, rel_path):
        return (fnmatch.fnmatchcase(checker, self.checker_glob)
                and fnmatch.fnmatchcase(rel_path, self.path_glob))


def load_suppressions(path):
    """Parses the suppressions file; raises ValueError on malformed lines."""
    entries = []
    if not os.path.isfile(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            spec, sep, rationale = line.partition("#")
            rationale = rationale.strip()
            if not sep or not rationale:
                raise ValueError(
                    f"{path}:{lineno}: suppression without a rationale "
                    f"(format: <checker-glob> <path-glob>  # why)")
            fields = spec.split()
            if len(fields) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected exactly "
                    f"'<checker-glob> <path-glob>', got {len(fields)} field(s)")
            entries.append(Suppression(fields[0], fields[1],
                                       rationale, lineno))
    return entries


def iter_plists(report_dir):
    for dirpath, dirnames, filenames in os.walk(report_dir):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith(".plist"):
                yield os.path.join(dirpath, name)


def collect_diagnostics(report_dir):
    """Yields (source_path, line, col, checker, description) tuples."""
    for plist_path in iter_plists(report_dir):
        try:
            with open(plist_path, "rb") as f:
                doc = plistlib.load(f)
        except Exception as e:
            print(f"csa_gate: warning: unreadable plist {plist_path}: {e}",
                  file=sys.stderr)
            continue
        files = doc.get("files", [])
        for diag in doc.get("diagnostics", []):
            loc = diag.get("location", {})
            file_index = loc.get("file")
            if file_index is None or not (0 <= file_index < len(files)):
                continue
            checker = (diag.get("check_name")
                       or f"{diag.get('category', '?')}/"
                          f"{diag.get('type', '?')}")
            yield (files[file_index], loc.get("line", 0), loc.get("col", 0),
                   checker, diag.get("description", "(no description)"))


def main(argv):
    parser = argparse.ArgumentParser(
        prog="csa_gate", description=__doc__.split("\n", 1)[0])
    parser.add_argument("--report-dir", required=True,
                        help="scan-build output dir (searched recursively "
                             "for *.plist)")
    parser.add_argument("--suppressions", default=None,
                        help="suppressions file (default: none)")
    parser.add_argument("--root", default=os.getcwd(),
                        help="repo root for relative paths (default: cwd)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    try:
        suppressions = (load_suppressions(args.suppressions)
                        if args.suppressions else [])
    except ValueError as e:
        print(f"csa_gate: {e}", file=sys.stderr)
        return EX_USAGE

    if not os.path.isdir(args.report_dir):
        # scan-build removes the run dir when it found nothing.
        print(f"csa_gate: no report dir at {args.report_dir} — "
              f"treating as clean (scan-build deletes empty reports)")
        return EX_OK

    seen = set()
    unsuppressed = []
    suppressed_count = 0
    for path, line, col, checker, description in \
            collect_diagnostics(args.report_dir):
        rel = os.path.relpath(os.path.abspath(path), root)
        rel = rel.replace(os.sep, "/")
        key = (rel, line, col, checker, description)
        if key in seen:  # headers repeat across TUs
            continue
        seen.add(key)
        matched = None
        for entry in suppressions:
            if entry.matches(checker, rel):
                matched = entry
                entry.used = True
                break
        if matched is not None:
            suppressed_count += 1
        else:
            unsuppressed.append((rel, line, col, checker, description))

    for entry in suppressions:
        if not entry.used:
            print(f"csa_gate: note: unused suppression at line "
                  f"{entry.lineno}: {entry.checker_glob} {entry.path_glob}",
                  file=sys.stderr)

    unsuppressed.sort()
    for rel, line, col, checker, description in unsuppressed:
        print(f"{rel}:{line}:{col}: [{checker}] {description}")

    total = len(unsuppressed) + suppressed_count
    if unsuppressed:
        print(f"csa_gate: {len(unsuppressed)} unsuppressed finding(s) "
              f"of {total} total", file=sys.stderr)
        return EX_FINDINGS
    print(f"csa_gate: clean ({total} diagnostic(s), "
          f"{suppressed_count} suppressed)")
    return EX_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
