#!/usr/bin/env bash
# Smoke-runs every bench_fig* binary plus bench_batch_retrieval at --smoke
# scale to catch bench bit-rot (benches are not covered by ctest).
# bench_batch_retrieval additionally verifies that sequential,
# index-ordered, and LB-ordered retrieval all return bitwise-identical hit
# lists and prints DPs-run / prune-rate for both visit orders; any
# divergence makes it exit non-zero, which fails this script.
# Usage: bench_smoke.sh [build_dir]
set -euo pipefail

build_dir="${1:-build}"
if [ ! -d "${build_dir}/bench" ]; then
  echo "error: ${build_dir}/bench not found (configure and build first)" >&2
  exit 1
fi

status=0
ran=0
for bench in "${build_dir}"/bench/bench_fig* \
             "${build_dir}"/bench/bench_batch_retrieval; do
  [ -x "${bench}" ] || continue
  echo "== smoke: ${bench}"
  if ! "${bench}" --smoke > /dev/null; then
    echo "FAILED: ${bench}" >&2
    status=1
  fi
  ran=$((ran + 1))
done
if [ "${ran}" -eq 0 ]; then
  echo "error: no bench_fig* executables found in ${build_dir}/bench" >&2
  exit 1
fi
exit "${status}"
