#!/usr/bin/env bash
# Smoke-runs every bench_fig* binary plus bench_batch_retrieval at --smoke
# scale to catch bench bit-rot (benches are not covered by ctest).
# bench_batch_retrieval additionally verifies that sequential,
# index-ordered, LB-ordered, and globally-LB-ordered retrieval all return
# bitwise-identical hit lists, prints DPs-run / prune-rate for each visit
# order, and writes the machine-readable perf baseline
# ${build_dir}/BENCH_retrieval.json (queries/s, DP counts, prune rates,
# banded-kernel cells/s) that CI uploads as an artifact, so future perf
# PRs have a number to diff against. Any hit divergence makes it exit
# non-zero, which fails this script.
# Usage: bench_smoke.sh [build_dir]
set -euo pipefail

build_dir="${1:-build}"
if [ ! -d "${build_dir}/bench" ]; then
  echo "error: ${build_dir}/bench not found (configure and build first)" >&2
  exit 1
fi

status=0
ran=0
for bench in "${build_dir}"/bench/bench_fig*; do
  [ -x "${bench}" ] || continue
  echo "== smoke: ${bench}"
  if ! "${bench}" --smoke > /dev/null; then
    echo "FAILED: ${bench}" >&2
    status=1
  fi
  ran=$((ran + 1))
done
if [ -x "${build_dir}/bench/bench_batch_retrieval" ]; then
  echo "== smoke: ${build_dir}/bench/bench_batch_retrieval"
  if ! "${build_dir}/bench/bench_batch_retrieval" --smoke \
       "--json=${build_dir}/BENCH_retrieval.json" > /dev/null; then
    echo "FAILED: ${build_dir}/bench/bench_batch_retrieval" >&2
    status=1
  fi
  ran=$((ran + 1))
fi
# bench_service amends the service block (latency percentiles, cache hit
# rate, fault-injection survival stats) into the same BENCH_retrieval.json
# and verifies service hits bitwise against direct scans; --faults re-runs
# the stream with seeded worker/cache-fill faults armed and fails unless
# the service survives with bitwise-identical OK hits.
if [ -x "${build_dir}/bench/bench_service" ]; then
  echo "== smoke: ${build_dir}/bench/bench_service"
  if ! "${build_dir}/bench/bench_service" --smoke --faults \
       "--json=${build_dir}/BENCH_retrieval.json" > /dev/null; then
    echo "FAILED: ${build_dir}/bench/bench_service" >&2
    status=1
  fi
  ran=$((ran + 1))
fi
if [ "${ran}" -eq 0 ]; then
  echo "error: no bench_fig* executables found in ${build_dir}/bench" >&2
  exit 1
fi
exit "${status}"
