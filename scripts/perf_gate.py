#!/usr/bin/env python3
"""CI perf regression gate over BENCH_retrieval.json baselines.

Compares the current run's perf baseline (written by
`bench_batch_retrieval --json=...`) against the previous run's artifact
and fails when the banded DP kernel slows down by more than the allowed
ratio, or when any cascade order starts running MORE DP evaluations (the
DP counts are deterministic for a fixed scale and seed, so any increase
is a real pruning regression, not noise).

The gate only trusts like-for-like comparisons. It SKIPS (exit 0, with a
message) instead of failing when the baseline is missing or was produced
by a different schema, benchmark scale, kernel variant, or CPU feature
set — e.g. the previous run landed on an AVX-512 runner and this one did
not, or a schema bump changed what the numbers mean.

Usage: perf_gate.py BASELINE_JSON CURRENT_JSON [--min-ratio=0.85]
Exit codes: 0 = pass or skip, 1 = perf regression, 2 = usage/parse error.
"""

import json
import sys

DEFAULT_MIN_RATIO = 0.85


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def skip(reason):
    print(f"perf gate: SKIP ({reason})")
    sys.exit(0)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    min_ratio = DEFAULT_MIN_RATIO
    for a in argv[1:]:
        if a.startswith("--min-ratio="):
            min_ratio = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    baseline_path, current_path = args
    try:
        current = load(current_path)
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read current baseline {current_path}: {e}",
              file=sys.stderr)
        return 2
    try:
        baseline = load(baseline_path)
    except OSError:
        skip(f"no previous baseline at {baseline_path}")
    except ValueError as e:
        skip(f"previous baseline unparseable: {e}")

    # Like-for-like guards: refuse to compare across schema revisions,
    # benchmark scales, kernel variants, or CPU feature sets.
    if baseline.get("schema") != current.get("schema"):
        skip(f"schema changed: {baseline.get('schema')} -> "
             f"{current.get('schema')}")
    if baseline.get("scale") != current.get("scale"):
        skip("benchmark scale changed")
    bk, ck = baseline.get("kernel", {}), current.get("kernel", {})
    for key in ("variant", "cpu_features", "band_half_width"):
        if bk.get(key) != ck.get(key):
            skip(f"kernel {key} changed: {bk.get(key)!r} -> {ck.get(key)!r}")

    # Past this point comparisons have begun: a missing entry only skips
    # that entry (it may have been added/removed between runs), never the
    # whole gate — exiting 0 here would discard failures already found.
    failures = []

    # 1. Banded-kernel throughput: the number the SIMD kernel work moves.
    for key in ("banded_cells_per_second_abs",
                "banded_cells_per_second_squared"):
        old, new = bk.get(key), ck.get(key)
        if not old or new is None:
            print(f"  {key}: skipped (missing from baseline or current)")
            continue
        ratio = new / old
        line = (f"  {key}: {old / 1e6:.1f} -> {new / 1e6:.1f} M cells/s "
                f"(ratio {ratio:.3f}, floor {min_ratio:.2f})")
        print(line)
        if ratio < min_ratio:
            failures.append(f"{key} regressed: {line.strip()}")

    # 2. DP-evaluation counts per mode and visit order: deterministic at
    # fixed scale/seed, so strictly more DPs means the cascade got worse.
    for mode, mdata in sorted(current.get("modes", {}).items()):
        bmode = baseline.get("modes", {}).get(mode)
        if bmode is None:
            print(f"  {mode}: skipped (absent from previous baseline)")
            continue
        for order, odata in sorted(mdata.get("orders", {}).items()):
            border = bmode.get("orders", {}).get(order)
            if border is None:
                print(f"  {mode}/{order}: skipped "
                      "(absent from previous baseline)")
                continue
            old, new = border.get("dp_evaluations"), odata.get("dp_evaluations")
            if old is None or new is None:
                print(f"  {mode}/{order}: skipped (dp_evaluations missing)")
                continue
            print(f"  {mode}/{order}: dp_evaluations {old} -> {new}")
            if new > old:
                failures.append(
                    f"{mode}/{order} dp_evaluations increased: {old} -> {new}")

    if failures:
        print("perf gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
