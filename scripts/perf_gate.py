#!/usr/bin/env python3
"""CI perf regression gate over BENCH_retrieval.json baselines.

Compares the current run's perf baseline (written by
`bench_batch_retrieval --json=...`) against the previous run's artifact
and fails when the banded DP kernel slows down by more than the allowed
ratio, or when any cascade order starts running MORE DP evaluations (the
DP counts are deterministic for a fixed scale and seed, so any increase
is a real pruning regression, not noise).

Since schema v3 the baseline may carry a "service" block (written by
`bench_service --json=...`); its p95 submit->complete latency is gated
too: the current p95 must stay under baseline * --max-p95-ratio plus a
fixed 2ms slack (wall-clock latency on shared CI runners is noisy in a
way the deterministic DP counts are not). The rule self-skips when
either run has no service block or the service workload changed.

Schema v4 adds a "faults" sub-block to the service block (shed/retry
rates from `bench_service --faults`); it is informational — survival and
hit identity are asserted by the bench itself, not gated here. A v3
baseline against a v4 run skips via the schema check below.

The gate only trusts like-for-like comparisons. It SKIPS (exit 0, with a
message) instead of failing when the baseline is missing or was produced
by a different schema, benchmark scale, kernel variant, or CPU feature
set — e.g. the previous run landed on an AVX-512 runner and this one did
not, or a schema bump changed what the numbers mean (in particular, a
pre-v3 baseline without service numbers never fails the v3 gate).

Usage: perf_gate.py BASELINE_JSON CURRENT_JSON [--min-ratio=0.85]
                    [--max-p95-ratio=1.5]
Exit codes: 0 = pass or skip, 1 = perf regression, 2 = usage/parse error.
"""

import json
import sys

DEFAULT_MIN_RATIO = 0.85
DEFAULT_MAX_P95_RATIO = 1.5
P95_SLACK_US = 2000.0


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def skip(reason):
    print(f"perf gate: SKIP ({reason})")
    sys.exit(0)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    min_ratio = DEFAULT_MIN_RATIO
    max_p95_ratio = DEFAULT_MAX_P95_RATIO
    for a in argv[1:]:
        if a.startswith("--min-ratio="):
            min_ratio = float(a.split("=", 1)[1])
        elif a.startswith("--max-p95-ratio="):
            max_p95_ratio = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    baseline_path, current_path = args
    try:
        current = load(current_path)
    except (OSError, ValueError) as e:
        print(f"perf gate: cannot read current baseline {current_path}: {e}",
              file=sys.stderr)
        return 2
    try:
        baseline = load(baseline_path)
    except OSError:
        skip(f"no previous baseline at {baseline_path}")
    except ValueError as e:
        skip(f"previous baseline unparseable: {e}")

    # Like-for-like guards: refuse to compare across schema revisions,
    # benchmark scales, kernel variants, or CPU feature sets.
    if baseline.get("schema") != current.get("schema"):
        skip(f"schema changed: {baseline.get('schema')} -> "
             f"{current.get('schema')}")
    if baseline.get("scale") != current.get("scale"):
        skip("benchmark scale changed")
    bk, ck = baseline.get("kernel", {}), current.get("kernel", {})
    for key in ("variant", "cpu_features", "band_half_width"):
        if bk.get(key) != ck.get(key):
            skip(f"kernel {key} changed: {bk.get(key)!r} -> {ck.get(key)!r}")

    # Past this point comparisons have begun: a missing entry only skips
    # that entry (it may have been added/removed between runs), never the
    # whole gate — exiting 0 here would discard failures already found.
    failures = []

    # 1. Banded-kernel throughput: the number the SIMD kernel work moves.
    for key in ("banded_cells_per_second_abs",
                "banded_cells_per_second_squared"):
        old, new = bk.get(key), ck.get(key)
        if not old or new is None:
            print(f"  {key}: skipped (missing from baseline or current)")
            continue
        ratio = new / old
        line = (f"  {key}: {old / 1e6:.1f} -> {new / 1e6:.1f} M cells/s "
                f"(ratio {ratio:.3f}, floor {min_ratio:.2f})")
        print(line)
        if ratio < min_ratio:
            failures.append(f"{key} regressed: {line.strip()}")

    # 2. DP-evaluation counts per mode and visit order: deterministic at
    # fixed scale/seed, so strictly more DPs means the cascade got worse.
    for mode, mdata in sorted(current.get("modes", {}).items()):
        bmode = baseline.get("modes", {}).get(mode)
        if bmode is None:
            print(f"  {mode}: skipped (absent from previous baseline)")
            continue
        for order, odata in sorted(mdata.get("orders", {}).items()):
            border = bmode.get("orders", {}).get(order)
            if border is None:
                print(f"  {mode}/{order}: skipped "
                      "(absent from previous baseline)")
                continue
            old, new = border.get("dp_evaluations"), odata.get("dp_evaluations")
            if old is None or new is None:
                print(f"  {mode}/{order}: skipped (dp_evaluations missing)")
                continue
            print(f"  {mode}/{order}: dp_evaluations {old} -> {new}")
            if new > old:
                failures.append(
                    f"{mode}/{order} dp_evaluations increased: {old} -> {new}")

    # 3. Service p95 latency: wall-clock, so gated with a generous ratio
    # plus absolute slack rather than the exact rules above.
    bsvc, csvc = baseline.get("service"), current.get("service")
    if bsvc is None or csvc is None:
        print("  service/p95: skipped (no service block in baseline or "
              "current)")
    elif bsvc.get("scale") != csvc.get("scale"):
        print("  service/p95: skipped (service workload changed)")
    else:
        old = bsvc.get("latency", {}).get("p95_us")
        new = csvc.get("latency", {}).get("p95_us")
        if not old or new is None:
            print("  service/p95: skipped (p95_us missing)")
        else:
            ceiling = old * max_p95_ratio + P95_SLACK_US
            line = (f"  service/p95: {old:.0f} -> {new:.0f} us "
                    f"(ceiling {ceiling:.0f} = x{max_p95_ratio:.2f} "
                    f"+ {P95_SLACK_US:.0f}us slack)")
            print(line)
            if new > ceiling:
                failures.append(f"service p95 latency regressed: "
                                f"{line.strip()}")

    if failures:
        print("perf gate: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print("perf gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
