#!/usr/bin/env sh
# Mirrors the tier-1 verify command: configure, build, run every test suite.
#
# Usage: scripts/check.sh [--lint] [build-dir]   (default build dir: build)
#
#   --lint   run the static-analysis pass first: the project-invariant
#            linter (scripts/lint_invariants.py), the semantic AST linter
#            (scripts/sdtw_lint — lock discipline, guarded members, raw
#            sync primitives, view lifetimes, determinism), then
#            clang-tidy over the TUs changed since origin/main
#            (scripts/tidy.sh --changed). Each tool that exits 69
#            (EX_UNAVAILABLE: missing compiler/nm, python libclang
#            bindings, or clang-tidy) is skipped with a warning; any
#            other failure stops the run.
set -eu

LINT=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --lint) LINT=1 ;;
    -h|--help)
      sed -n '2,11p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

NPROC="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .

# Runs "$@"; exit 69 (EX_UNAVAILABLE) becomes a warning + skip, any
# other failure exits check.sh with that status.
run_or_skip() {
  label="$1"
  shift
  if "$@"; then
    :
  else
    status=$?
    if [ "$status" = 69 ]; then
      echo "check.sh: $label unavailable on this host; skipped" >&2
    else
      exit "$status"
    fi
  fi
}

if [ "$LINT" = 1 ]; then
  run_or_skip "lint_invariants (compiler/nm)" \
    python3 scripts/lint_invariants.py --jobs "$NPROC"
  run_or_skip "sdtw_lint (python libclang bindings)" \
    python3 scripts/sdtw_lint --build-dir "$BUILD_DIR"
  run_or_skip "clang-tidy" \
    scripts/tidy.sh --build-dir "$BUILD_DIR" --changed
fi

cmake --build "$BUILD_DIR" -j "$NPROC"
cd "$BUILD_DIR" && ctest --output-on-failure -j "$NPROC"
