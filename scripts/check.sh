#!/usr/bin/env sh
# Mirrors the tier-1 verify command: configure, build, run every test suite.
#
# Usage: scripts/check.sh [--lint] [build-dir]   (default build dir: build)
#
#   --lint   run the static-analysis pass first: the project-invariant
#            linter (scripts/lint_invariants.py), then clang-tidy over the
#            TUs changed since origin/main (scripts/tidy.sh --changed).
#            clang-tidy is skipped with a warning when not installed; the
#            invariant linter always runs (it needs only a C++ compiler
#            and nm, which a buildable host has by definition).
set -eu

LINT=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --lint) LINT=1 ;;
    -h|--help)
      sed -n '2,11p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

NPROC="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .

if [ "$LINT" = 1 ]; then
  python3 scripts/lint_invariants.py
  if scripts/tidy.sh --build-dir "$BUILD_DIR" --changed; then
    :
  else
    status=$?
    if [ "$status" = 69 ]; then
      echo "check.sh: clang-tidy not installed; tidy pass skipped" >&2
    else
      exit "$status"
    fi
  fi
fi

cmake --build "$BUILD_DIR" -j "$NPROC"
cd "$BUILD_DIR" && ctest --output-on-failure -j "$NPROC"
