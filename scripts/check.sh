#!/usr/bin/env sh
# Mirrors the tier-1 verify command: configure, build, run every test suite.
# Usage: scripts/check.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)"
