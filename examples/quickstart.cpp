// Quickstart: compute an sDTW distance between two warped copies of a
// series and compare against the exact DTW distance.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the core public API: feature extraction, comparison, the
// resulting band, alignments and stage timings.

#include <cstdio>

#include "core/sdtw.h"
#include "data/generators.h"
#include "dtw/dtw.h"
#include "ts/random.h"
#include "ts/transforms.h"

int main() {
  using namespace sdtw;

  // 1. Make a smooth series and a warped, noisy copy of it.
  ts::Rng rng(7);
  const ts::TimeSeries x =
      ts::ZNormalize(data::patterns::RandomSmooth(200, 12, rng));
  data::DeformationOptions deform;
  deform.warp_strength = 0.25;
  deform.noise_sigma = 0.02;
  const ts::TimeSeries y = ts::ZNormalize(data::Deform(x, deform, rng));

  // 2. Configure the sDTW engine: adaptive core & adaptive width with
  //    neighbour averaging (the paper's best-performing ac2,aw variant).
  core::SdtwOptions options;
  options.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  options.constraint.width_average_radius = 1;
  core::Sdtw engine(options);

  // 3. Extract salient features once per series (cache these in a real
  //    application) and compare.
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  const core::SdtwResult result = engine.Compare(x, fx, y, fy);

  // 4. Compare against exact DTW.
  const dtw::DtwResult exact = dtw::Dtw(x, y);

  std::printf("series lengths        : %zu / %zu\n", x.size(), y.size());
  std::printf("salient features      : %zu / %zu\n", fx.size(), fy.size());
  std::printf("aligned feature pairs : %zu\n", result.alignments.size());
  std::printf("aligned intervals     : %zu\n", result.intervals.size());
  std::printf("band coverage         : %.1f%% of the full grid\n",
              100.0 * result.band.Coverage());
  std::printf("cells filled          : %zu (full DTW: %zu)\n",
              result.cells_filled, exact.cells_filled);
  std::printf("sDTW distance         : %.6f\n", result.distance);
  std::printf("exact DTW distance    : %.6f\n", exact.distance);
  std::printf("relative error        : %.2f%%\n",
              exact.distance > 0.0
                  ? 100.0 * (result.distance - exact.distance) / exact.distance
                  : 0.0);
  std::printf("matching time         : %.3f ms\n",
              1e3 * result.timing.matching_seconds);
  std::printf("DP time               : %.3f ms\n",
              1e3 * result.timing.dp_seconds);
  return 0;
}
