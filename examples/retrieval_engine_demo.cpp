// Retrieval-engine demo: index a data set with cached salient features and
// envelopes, then run kNN queries through the lower-bound cascade — the
// deployment the paper's §3.4 cost model describes (extract once, reuse for
// every comparison).
//
//   $ ./build/examples/retrieval_engine_demo [num_series] [length]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "data/generators.h"
#include "retrieval/batch.h"
#include "retrieval/feature_store.h"
#include "retrieval/knn.h"

int main(int argc, char** argv) {
  using namespace sdtw;

  data::GeneratorOptions gopt;
  gopt.num_series = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  gopt.length = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  std::printf("indexed data set: %s, %zu series, %zu classes\n",
              ds.name().c_str(), ds.size(), ds.NumClasses());

  // Exact-DTW engine with the full pruning cascade.
  retrieval::KnnOptions exact;
  exact.distance = retrieval::DistanceKind::kFullDtw;
  retrieval::KnnEngine exact_engine(exact);
  exact_engine.Index(ds);

  // sDTW engine (features cached at indexing time).
  retrieval::KnnOptions sdtw_opts;
  sdtw_opts.distance = retrieval::DistanceKind::kSdtw;
  sdtw_opts.sdtw.constraint.type =
      core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  sdtw_opts.sdtw.constraint.width_average_radius = 1;
  retrieval::KnnEngine sdtw_engine(sdtw_opts);
  sdtw_engine.Index(ds);

  // One query with cascade statistics.
  retrieval::QueryStats stats;
  const auto hits = exact_engine.Query(ds[0], 5, 0, &stats);
  std::printf("\nexact-DTW query, top-5 neighbours of series 0:\n");
  for (const auto& h : hits) {
    std::printf("  #%zu (class %d) distance %.4f\n", h.index, h.label,
                h.distance);
  }
  std::printf("cascade: %zu candidates, %zu pruned by LB_Kim, %zu by "
              "LB_Keogh, %zu early-abandoned, %zu full DPs\n",
              stats.candidates, stats.pruned_by_kim, stats.pruned_by_keogh,
              stats.pruned_by_early_abandon, stats.dp_evaluations);

  // Leave-one-out classification accuracy, both engines — one batched
  // pass over the whole index (hardware-concurrency workers), timed.
  auto timed = [](retrieval::KnnEngine& engine, const char* label) {
    const auto t0 = std::chrono::steady_clock::now();
    const double acc = engine.LeaveOneOutAccuracy(1);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-10s 1-NN leave-one-out accuracy %.3f  (%.0f ms)\n", label,
                acc, 1e3 * sec);
  };
  std::printf("\n");
  timed(exact_engine, "full DTW");
  timed(sdtw_engine, "sDTW");

  // The same workload phrased as an explicit batch: every indexed series
  // queried at once, per-query cascade counters merged across workers.
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.end());
  const retrieval::BatchKnnEngine batch(exact_engine);
  std::vector<retrieval::QueryStats> batch_stats;
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch_hits = batch.QueryBatch(queries, 5, &batch_stats);
  const double batch_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  retrieval::QueryStats total;
  for (const retrieval::QueryStats& s : batch_stats) total.Merge(s);
  std::printf(
      "\nbatched top-5 over all %zu series: %.0f ms (%.0f queries/s), "
      "%zu of %zu candidate DPs executed (%.1f%% pruned)\n",
      batch_hits.size(), 1e3 * batch_sec,
      static_cast<double>(queries.size()) / batch_sec, total.dp_evaluations,
      total.candidates, 100.0 * total.prune_rate());

  // Candidate visit order: by default each work chunk is scanned in
  // ascending cached LB_Kim order, which tightens the best-so-far sooner
  // than index order and prunes more DPs — with bitwise-identical hits.
  retrieval::KnnOptions index_order_opts = exact;
  index_order_opts.visit_order = retrieval::VisitOrder::kIndexOrder;
  retrieval::KnnEngine index_order_engine(index_order_opts);
  index_order_engine.Index(ds);
  std::vector<retrieval::QueryStats> index_order_stats;
  retrieval::BatchKnnEngine(index_order_engine)
      .QueryBatch(queries, 5, &index_order_stats);
  retrieval::QueryStats index_order_total;
  for (const auto& s : index_order_stats) index_order_total.Merge(s);
  std::printf(
      "visit order: %zu DPs in index order vs %zu LB_Kim-ordered "
      "(identical hits by construction)\n",
      index_order_total.dp_evaluations, total.dp_evaluations);

  // Alignment recovery: the batch stays distance-only (full pruning), and
  // only the final k winners are re-aligned for their warp paths.
  const std::size_t shown = std::min<std::size_t>(3, queries.size());
  const auto aligned = batch.QueryBatchWithAlignments(
      std::span<const ts::TimeSeries>(queries.data(), shown), 3);
  std::printf("\nwarp paths of the top-3 neighbours (first %zu queries):\n",
              shown);
  for (std::size_t q = 0; q < aligned.size(); ++q) {
    for (const retrieval::AlignedHit& a : aligned[q]) {
      std::printf("  query %zu -> #%zu: distance %.4f, path %zu steps\n", q,
                  a.hit.index, a.hit.distance, a.path.size());
    }
  }
  return 0;
}
