// Retrieval-engine demo: index a data set with cached salient features and
// envelopes, then run kNN queries through the lower-bound cascade — the
// deployment the paper's §3.4 cost model describes (extract once, reuse for
// every comparison).
//
//   $ ./build/examples/retrieval_engine_demo [num_series] [length]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "data/generators.h"
#include "retrieval/batch.h"
#include "retrieval/feature_store.h"
#include "retrieval/knn.h"

int main(int argc, char** argv) {
  using namespace sdtw;

  data::GeneratorOptions gopt;
  gopt.num_series = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  gopt.length = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  std::printf("indexed data set: %s, %zu series, %zu classes\n",
              ds.name().c_str(), ds.size(), ds.NumClasses());

  // Exact-DTW engine with the full pruning cascade.
  retrieval::KnnOptions exact;
  exact.distance = retrieval::DistanceKind::kFullDtw;
  retrieval::KnnEngine exact_engine(exact);
  exact_engine.Index(ds);

  // sDTW engine (features cached at indexing time).
  retrieval::KnnOptions sdtw_opts;
  sdtw_opts.distance = retrieval::DistanceKind::kSdtw;
  sdtw_opts.sdtw.constraint.type =
      core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  sdtw_opts.sdtw.constraint.width_average_radius = 1;
  retrieval::KnnEngine sdtw_engine(sdtw_opts);
  sdtw_engine.Index(ds);

  // One query with cascade statistics.
  retrieval::QueryStats stats;
  const auto hits = exact_engine.Query(ds[0], 5, 0, &stats);
  std::printf("\nexact-DTW query, top-5 neighbours of series 0:\n");
  for (const auto& h : hits) {
    std::printf("  #%zu (class %d) distance %.4f\n", h.index, h.label,
                h.distance);
  }
  std::printf("cascade: %zu candidates, %zu pruned by LB_Kim, %zu by "
              "LB_Keogh, %zu early-abandoned, %zu full DPs\n",
              stats.candidates, stats.pruned_by_kim, stats.pruned_by_keogh,
              stats.pruned_by_early_abandon, stats.dp_evaluations);

  // Leave-one-out classification accuracy, both engines — one batched
  // pass over the whole index (hardware-concurrency workers), timed.
  auto timed = [](retrieval::KnnEngine& engine, const char* label) {
    const auto t0 = std::chrono::steady_clock::now();
    const double acc = engine.LeaveOneOutAccuracy(1);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-10s 1-NN leave-one-out accuracy %.3f  (%.0f ms)\n", label,
                acc, 1e3 * sec);
  };
  std::printf("\n");
  timed(exact_engine, "full DTW");
  timed(sdtw_engine, "sDTW");

  // The same workload phrased as an explicit batch: every indexed series
  // queried at once, per-query cascade counters merged across workers.
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.end());
  const retrieval::BatchKnnEngine batch(exact_engine);
  std::vector<retrieval::QueryStats> batch_stats;
  const auto t0 = std::chrono::steady_clock::now();
  const auto batch_hits = batch.QueryBatch(queries, 5, &batch_stats);
  const double batch_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::size_t dp = 0;
  std::size_t candidates = 0;
  for (const retrieval::QueryStats& s : batch_stats) {
    dp += s.dp_evaluations;
    candidates += s.candidates;
  }
  std::printf(
      "\nbatched top-5 over all %zu series: %.0f ms (%.0f queries/s), "
      "%zu of %zu candidate DPs executed (%.1f%% pruned)\n",
      batch_hits.size(), 1e3 * batch_sec,
      static_cast<double>(queries.size()) / batch_sec, dp, candidates,
      100.0 * (1.0 - static_cast<double>(dp) /
                         static_cast<double>(candidates)));
  return 0;
}
