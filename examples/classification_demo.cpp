// Classification demo: 1-NN classification on a GunLike train/test split
// using full DTW vs sDTW distances — the paper's §4.2 classification task
// in a leave-one-out form.
//
//   $ ./build/examples/classification_demo [num_series] [length]

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/sdtw.h"
#include "data/generators.h"
#include "dtw/dtw.h"
#include "eval/confusion.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"

namespace {

// Leave-one-out 1-NN accuracy under a pairwise distance functor.
template <typename DistFn>
double LeaveOneOutAccuracy(const sdtw::ts::Dataset& ds, DistFn&& dist) {
  std::size_t correct = 0;
  for (std::size_t q = 0; q < ds.size(); ++q) {
    double best = std::numeric_limits<double>::infinity();
    int best_label = -1;
    for (std::size_t j = 0; j < ds.size(); ++j) {
      if (j == q) continue;
      const double d = dist(q, j);
      if (d < best) {
        best = d;
        best_label = ds[j].label();
      }
    }
    if (best_label == ds[q].label()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdtw;

  data::GeneratorOptions gopt;
  gopt.num_series = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
  gopt.length = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;
  const ts::Dataset ds = data::MakeGunLike(gopt);
  std::printf("data set: %s, %zu series, %zu classes\n", ds.name().c_str(),
              ds.size(), ds.NumClasses());

  // Full DTW 1-NN.
  const double acc_dtw = LeaveOneOutAccuracy(ds, [&](std::size_t a,
                                                     std::size_t b) {
    return dtw::DtwDistance(ds[a], ds[b]);
  });
  std::printf("1-NN accuracy, full DTW : %.3f\n", acc_dtw);

  // sDTW 1-NN with cached features (the paper's intended deployment: extract
  // once, reuse for every comparison).
  core::SdtwOptions opt;
  opt.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  opt.constraint.width_average_radius = 1;
  core::Sdtw engine(opt);
  std::vector<std::vector<sift::Keypoint>> features;
  features.reserve(ds.size());
  for (const auto& s : ds) features.push_back(engine.ExtractFeatures(s));
  const double acc_sdtw = LeaveOneOutAccuracy(ds, [&](std::size_t a,
                                                      std::size_t b) {
    return engine.Compare(ds[a], features[a], ds[b], features[b]).distance;
  });
  std::printf("1-NN accuracy, sDTW     : %.3f (ac2,aw)\n", acc_sdtw);

  // Narrow fixed band for contrast.
  core::SdtwOptions narrow;
  narrow.constraint.type = core::ConstraintType::kFixedCoreFixedWidth;
  narrow.constraint.fixed_width_fraction = 0.06;
  core::Sdtw narrow_engine(narrow);
  const double acc_narrow = LeaveOneOutAccuracy(ds, [&](std::size_t a,
                                                        std::size_t b) {
    return narrow_engine.Compare(ds[a], features[a], ds[b], features[b])
        .distance;
  });
  std::printf("1-NN accuracy, fc,fw 6%% : %.3f\n", acc_narrow);

  // Confusion matrix of the sDTW classifier (leave-one-out 1-NN), served
  // by the batched retrieval engine: one indexed engine, the whole data
  // set as one query batch with per-query self-exclusion, work-stolen
  // across hardware threads.
  retrieval::KnnOptions knn_opt;
  knn_opt.distance = retrieval::DistanceKind::kSdtw;
  knn_opt.sdtw = opt;
  retrieval::KnnEngine knn(knn_opt);
  knn.Index(ds);
  const retrieval::BatchKnnEngine batch(knn);
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.end());
  std::vector<std::optional<std::size_t>> excludes(ds.size());
  for (std::size_t q = 0; q < ds.size(); ++q) excludes[q] = q;
  const std::vector<int> predicted = batch.ClassifyBatch(queries, 1, excludes);
  eval::ConfusionMatrix cm;
  for (std::size_t q = 0; q < ds.size(); ++q) {
    cm.Add(ds[q].label(), predicted[q]);
  }
  std::printf("\nsDTW confusion matrix (rows=truth, cols=predicted):\n%s",
              cm.ToString().c_str());
  std::printf("macro recall: %.3f\n", cm.MacroRecall());
  return 0;
}
