// Feature explorer: visualises (as ASCII) the salient features found on two
// series, the matched pairs surviving inconsistency pruning, and the shape
// of each sDTW constraint band — a textual rendition of the paper's
// Figures 4, 7 and 10.
//
//   $ ./build/examples/feature_explorer [length]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/sdtw.h"
#include "data/generators.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace {

// Renders a series as a fixed-height ASCII strip chart.
void PlotSeries(const sdtw::ts::TimeSeries& s, const char* title,
                std::size_t height = 8, std::size_t width = 76) {
  std::printf("%s\n", title);
  const sdtw::ts::TimeSeries r = sdtw::ts::MinMaxScale(
      sdtw::ts::Resample(s, width), 0.0, static_cast<double>(height - 1));
  for (std::size_t row = height; row-- > 0;) {
    std::string line(width, ' ');
    for (std::size_t i = 0; i < width; ++i) {
      if (static_cast<std::size_t>(r[i] + 0.5) == row) line[i] = '*';
    }
    std::printf("|%s|\n", line.c_str());
  }
}

// Marks feature scopes on a scaled axis.
void PlotFeatures(const std::vector<sdtw::sift::Keypoint>& kps,
                  std::size_t series_len, std::size_t width = 76) {
  std::string centers(width, '.');
  std::string scopes(width, ' ');
  for (const auto& kp : kps) {
    const double scale =
        static_cast<double>(width - 1) / static_cast<double>(series_len - 1);
    const std::size_t c = static_cast<std::size_t>(kp.position * scale);
    const std::size_t lo = static_cast<std::size_t>(
        std::max(0.0, kp.scope_start()) * scale);
    const std::size_t hi = std::min(
        width - 1, static_cast<std::size_t>(kp.scope_end() * scale));
    for (std::size_t i = lo; i <= hi && i < width; ++i) scopes[i] = '-';
    if (c < width) centers[c] = '^';
  }
  std::printf(" %s\n %s\n", scopes.c_str(), centers.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdtw;
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;

  ts::Rng rng(21);
  const ts::TimeSeries x =
      ts::ZNormalize(data::patterns::RandomSmooth(n, 8, rng));
  data::DeformationOptions deform;
  deform.warp_strength = 0.3;
  deform.shift_fraction = 0.06;
  const ts::TimeSeries y = ts::ZNormalize(data::Deform(x, deform, rng));

  core::Sdtw engine;
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);

  PlotSeries(x, "series X:");
  PlotFeatures(fx, x.size());
  PlotSeries(y, "series Y (warped copy):");
  PlotFeatures(fy, y.size());
  std::printf("\nsalient features: %zu on X, %zu on Y\n", fx.size(),
              fy.size());

  const core::SdtwResult r = engine.Compare(x, fx, y, fy);
  std::printf("aligned pairs after inconsistency pruning: %zu\n",
              r.alignments.size());
  for (const auto& ap : r.alignments) {
    std::printf("  X[%6.1f, %6.1f]  <->  Y[%6.1f, %6.1f]   (mu_comb %.3f)\n",
                ap.start_x, ap.end_x, ap.start_y, ap.end_y, ap.mu_comb);
  }

  // Render the four constraint bands of Figure 10 on a coarse grid.
  const std::size_t grid = 38;
  const ts::TimeSeries xs = ts::Resample(x, grid);
  const ts::TimeSeries ys = ts::Resample(y, grid);
  for (core::ConstraintType type :
       {core::ConstraintType::kFixedCoreFixedWidth,
        core::ConstraintType::kAdaptiveCoreFixedWidth,
        core::ConstraintType::kFixedCoreAdaptiveWidth,
        core::ConstraintType::kAdaptiveCoreAdaptiveWidth}) {
    core::SdtwOptions opt;
    opt.constraint.type = type;
    opt.constraint.fixed_width_fraction = 0.15;
    core::Sdtw e(opt);
    const core::SdtwResult rr = e.Compare(xs, ys);
    std::printf("\nband shape, %s (coverage %.0f%%):\n",
                core::ConstraintTypeName(type), 100.0 * rr.band.Coverage());
    std::printf("%s", rr.band.ToAscii().c_str());
  }
  return 0;
}
