// Retrieval demo: top-k retrieval on a TraceLike data set, comparing full
// DTW against Sakoe-Chiba (fc,fw) and sDTW (ac2,aw) rankings — the workload
// the paper's introduction motivates (time series retrieval).
//
//   $ ./build/examples/retrieval_demo [num_series] [length]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/sdtw.h"
#include "data/generators.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;

  data::GeneratorOptions gopt;
  gopt.num_series = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
  gopt.length = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 150;
  gopt.deform.shift_fraction = 0.12;
  const ts::Dataset dataset = data::MakeTraceLike(gopt);
  std::printf("data set: %s, %zu series of length %zu, %zu classes\n\n",
              dataset.name().c_str(), dataset.size(), dataset[0].size(),
              dataset.NumClasses());

  // Reference: exact DTW distances.
  const eval::DistanceMatrix reference = eval::ComputeFullDtwMatrix(dataset);

  // Candidate 1: narrow Sakoe-Chiba band.
  core::SdtwOptions sakoe;
  sakoe.constraint.type = core::ConstraintType::kFixedCoreFixedWidth;
  sakoe.constraint.fixed_width_fraction = 0.06;

  // Candidate 2: sDTW adaptive core & adaptive width with averaging.
  core::SdtwOptions adaptive;
  adaptive.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  adaptive.constraint.width_average_radius = 1;

  for (const auto& [label, options] :
       {std::pair<std::string, core::SdtwOptions>{"fc,fw 6%", sakoe},
        {"ac2,aw", adaptive}}) {
    const eval::DistanceMatrix m = eval::ComputeSdtwMatrix(dataset, options);
    const eval::AlgorithmMetrics metrics =
        eval::ComputeMetrics(label, dataset, reference, m);
    std::printf("%-10s top-5 acc %.3f | top-10 acc %.3f | dist err %.3f | "
                "time gain %.3f\n",
                label.c_str(), metrics.retrieval_accuracy_top5,
                metrics.retrieval_accuracy_top10, metrics.distance_error,
                metrics.time_gain);
  }

  // Show one concrete query: nearest neighbours of series 0 under each
  // measure.
  std::printf("\nnearest neighbours of %s (class %d):\n",
              dataset[0].name().c_str(), dataset[0].label());
  std::vector<double> row(reference.distance.begin(),
                          reference.distance.begin() +
                              static_cast<long>(dataset.size()));
  const auto top = eval::TopK(row, 5, 0);
  for (std::size_t idx : top) {
    std::printf("  %-16s class %d  dtw=%.4f\n", dataset[idx].name().c_str(),
                dataset[idx].label(), reference.At(0, idx));
  }
  return 0;
}
