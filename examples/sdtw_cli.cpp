// sdtw_cli: command-line front-end to the library.
//
//   sdtw_cli distance <ucr_file> <row_a> <row_b> [--constraint=ac2,aw]
//       Compute full DTW and sDTW distances between two rows of a UCR file.
//   sdtw_cli features <ucr_file> <out_file>
//       Extract salient features for every row and store them
//       (retrieval::WriteFeaturesFile format).
//   sdtw_cli band <ucr_file> <row_a> <row_b>
//       Render the sDTW band between two rows as ASCII.
//   sdtw_cli find <ucr_file> <query_row> <target_row>
//       Subsequence search: locate the best window of the target row
//       matching the query row under open-begin/open-end DTW.
//   sdtw_cli demo
//       Run on a bundled synthetic data set (no input file needed).
//
// All commands accept --options="key=value ..." (see core/config.h for the
// full key list), e.g. --options="constraint=ac,fw width=0.1 descriptor=32".

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/config.h"
#include "core/sdtw.h"
#include "data/generators.h"
#include "dtw/dtw.h"
#include "dtw/subsequence.h"
#include "retrieval/feature_store.h"
#include "ts/io.h"
#include "ts/transforms.h"

namespace {

using namespace sdtw;

// Resolves --constraint= shorthand and --options= specs into SdtwOptions.
core::SdtwOptions OptionsFor(const std::string& constraint,
                             const std::string& spec = "") {
  core::SdtwOptions opt;
  std::string full_spec = "constraint=" + constraint;
  if (constraint == "fc,aw") full_spec += " min_width=0.20";  // paper §4.3
  if (!spec.empty()) full_spec += " " + spec;
  std::string error;
  const auto parsed = core::ParseOptions(full_spec, opt, &error);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(1);
  }
  return *parsed;
}

ts::Dataset LoadOrDie(const std::string& path) {
  auto ds = ts::ReadUcrFile(path);
  if (!ds.has_value() || ds->empty()) {
    std::fprintf(stderr, "error: cannot read UCR file %s\n", path.c_str());
    std::exit(1);
  }
  return *ds;
}

int CmdDistance(const std::string& path, std::size_t a, std::size_t b,
                const std::string& constraint, const std::string& spec) {
  const ts::Dataset ds = LoadOrDie(path);
  if (a >= ds.size() || b >= ds.size()) {
    std::fprintf(stderr, "error: row out of range (file has %zu rows)\n",
                 ds.size());
    return 1;
  }
  const ts::TimeSeries x = ts::ZNormalize(ds[a]);
  const ts::TimeSeries y = ts::ZNormalize(ds[b]);
  core::Sdtw engine(OptionsFor(constraint, spec));
  const core::SdtwResult r = engine.Compare(x, y);
  const double exact = dtw::DtwDistance(x, y);
  std::printf("rows %zu (label %d) vs %zu (label %d)\n", a, ds[a].label(), b,
              ds[b].label());
  std::printf("full DTW distance : %.6f\n", exact);
  std::printf("sDTW distance     : %.6f  (%s)\n", r.distance,
              constraint.c_str());
  std::printf("relative error    : %.2f%%\n",
              exact > 0.0 ? 100.0 * (r.distance - exact) / exact : 0.0);
  std::printf("band coverage     : %.1f%%\n", 100.0 * r.band.Coverage());
  std::printf("aligned pairs     : %zu\n", r.alignments.size());
  return 0;
}

int CmdFeatures(const std::string& path, const std::string& out_path) {
  const ts::Dataset ds = LoadOrDie(path);
  core::Sdtw engine;
  retrieval::FeatureSets features;
  features.reserve(ds.size());
  std::size_t total = 0;
  for (const ts::TimeSeries& s : ds) {
    features.push_back(engine.ExtractFeatures(ts::ZNormalize(s)));
    total += features.back().size();
  }
  if (!retrieval::WriteFeaturesFile(out_path, features)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("extracted %zu keypoints over %zu series -> %s\n", total,
              ds.size(), out_path.c_str());
  return 0;
}

int CmdBand(const std::string& path, std::size_t a, std::size_t b) {
  const ts::Dataset ds = LoadOrDie(path);
  if (a >= ds.size() || b >= ds.size()) {
    std::fprintf(stderr, "error: row out of range\n");
    return 1;
  }
  // Render on a coarse grid so the band fits a terminal.
  const std::size_t grid = 48;
  const ts::TimeSeries x = ts::Resample(ts::ZNormalize(ds[a]), grid);
  const ts::TimeSeries y = ts::Resample(ts::ZNormalize(ds[b]), grid);
  core::Sdtw engine(OptionsFor("ac2,aw"));
  const core::SdtwResult r = engine.Compare(x, y);
  std::printf("sDTW band, rows %zu vs %zu (coverage %.0f%%):\n", a, b,
              100.0 * r.band.Coverage());
  std::printf("%s", r.band.ToAscii().c_str());
  return 0;
}

int CmdDemo() {
  data::GeneratorOptions gopt;
  gopt.num_series = 6;
  gopt.length = 150;
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  core::Sdtw engine(OptionsFor("ac2,aw"));
  std::printf("synthetic TraceLike demo (6 series):\n");
  for (std::size_t i = 1; i < ds.size(); ++i) {
    const double exact = dtw::DtwDistance(ds[0], ds[i]);
    const double approx = engine.Compare(ds[0], ds[i]).distance;
    std::printf("  0 vs %zu: dtw=%8.3f  sdtw=%8.3f  (+%.1f%%)\n", i, exact,
                approx,
                exact > 0.0 ? 100.0 * (approx - exact) / exact : 0.0);
  }
  return 0;
}

int CmdFind(const std::string& path, std::size_t query_row,
            std::size_t target_row) {
  const ts::Dataset ds = LoadOrDie(path);
  if (query_row >= ds.size() || target_row >= ds.size()) {
    std::fprintf(stderr, "error: row out of range\n");
    return 1;
  }
  // Use the first third of the query row as the pattern to locate.
  const ts::TimeSeries& full_query = ds[query_row];
  const ts::TimeSeries query =
      full_query.Slice(0, std::max<std::size_t>(8, full_query.size() / 3));
  const auto matches = dtw::FindTopKSubsequences(query, ds[target_row], 3);
  std::printf("query: first %zu samples of row %zu; target: row %zu\n",
              query.size(), query_row, target_row);
  for (std::size_t i = 0; i < matches.size(); ++i) {
    std::printf("  match %zu: window [%zu, %zu], distance %.4f\n", i + 1,
                matches[i].begin, matches[i].end, matches[i].distance);
  }
  return 0;
}

void Usage(std::FILE* out = stderr) {
  std::fprintf(out,
               "usage:\n"
               "  sdtw_cli distance <ucr_file> <row_a> <row_b> "
               "[--constraint=<fc,fw|fc,aw|ac,fw|ac,aw|ac2,aw>] "
               "[--options=\"key=value ...\"]\n"
               "  sdtw_cli features <ucr_file> <out_file>\n"
               "  sdtw_cli band <ucr_file> <row_a> <row_b>\n"
               "  sdtw_cli find <ucr_file> <query_row> <target_row>\n"
               "  sdtw_cli demo\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    Usage(stdout);
    return 0;
  }
  if (cmd == "demo") return CmdDemo();
  if (cmd == "distance" && argc >= 5) {
    std::string constraint = "ac2,aw";
    std::string spec;
    for (int i = 5; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--constraint=", 0) == 0) constraint = arg.substr(13);
      if (arg.rfind("--options=", 0) == 0) spec = arg.substr(10);
    }
    return CmdDistance(argv[2], std::strtoul(argv[3], nullptr, 10),
                       std::strtoul(argv[4], nullptr, 10), constraint, spec);
  }
  if (cmd == "features" && argc >= 4) return CmdFeatures(argv[2], argv[3]);
  if (cmd == "band" && argc >= 5) {
    return CmdBand(argv[2], std::strtoul(argv[3], nullptr, 10),
                   std::strtoul(argv[4], nullptr, 10));
  }
  if (cmd == "find" && argc >= 5) {
    return CmdFind(argv[2], std::strtoul(argv[3], nullptr, 10),
                   std::strtoul(argv[4], nullptr, 10));
  }
  Usage();
  return 1;
}
