#ifndef SDTW_BENCH_BENCH_COMMON_H_
#define SDTW_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// \brief Shared plumbing of the table/figure reproduction benches.
///
/// Every bench accepts:
///   --full            paper-scale data set sizes (Table 1); default is a
///                     reduced scale that preserves the structural profiles
///                     but keeps a full run in seconds rather than minutes
///   --smoke           tiny data sets (CI smoke runs: exercise every code
///                     path in well under a second; numbers meaningless)
///   --seed=<u64>      generator seed
///   --ucr_dir=<path>  directory containing real UCR files (Gun_Point,
///                     Trace, 50words in "<label>,v1,v2,..." format); when
///                     given, real data replaces the synthetic generators
///   --dataset=<name>  restrict to one of gun/trace/50words

#include <cstdint>
#include <string>
#include <vector>

#include "dtw/band.h"
#include "ts/time_series.h"

namespace sdtw {
namespace bench {

struct BenchConfig {
  bool full_scale = false;
  bool smoke = false;  // overrides full_scale
  std::uint64_t seed = 17;
  std::string ucr_dir;
  std::string only_dataset;  // empty = all three
};

/// Parses the common flags; unrecognised flags are ignored (benches may add
/// their own on top).
BenchConfig ParseArgs(int argc, char** argv);

/// Loads the three paper data sets (or the requested subset) at the
/// configured scale. Synthetic by default; real UCR files when ucr_dir is
/// set and readable.
std::vector<ts::Dataset> LoadDatasets(const BenchConfig& config);

/// Prints the Table 1 style overview of the loaded data sets.
void PrintDatasetTable(const std::vector<ts::Dataset>& datasets);

/// A diagonal band of fixed absolute half-width, independent of n — the
/// regime where band-compressed storage matters (band area grows linearly
/// in n while the grid grows quadratically). One definition shared by
/// bench_kernels' BM_DtwBandedNarrow* and bench_batch_retrieval's kernel
/// cells/s probe so both measure the same band shape.
dtw::Band FixedWidthDiagonalBand(std::size_t n, std::size_t m,
                                 std::size_t half_width);

}  // namespace bench
}  // namespace sdtw

#endif  // SDTW_BENCH_BENCH_COMMON_H_
