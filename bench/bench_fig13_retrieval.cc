// Reproduces Figure 13: top-5 and top-10 retrieval accuracy and the
// corresponding time gains for every algorithm of §4.3 (dtw; fc,fw at
// 6/10/20%; fc,aw; ac,fw at 6/10/20%; ac,aw; ac2,aw) on the three data sets.
//
// Shape to reproduce (paper §4.4):
//  (a) for fc,fw, accuracy grows with w;
//  (b) adapting the core (ac,fw) lifts accuracy significantly, adapting the
//      width too (ac,aw / ac2,aw) lifts it further;
//  (c) adaptive variants retain large time gains relative to full DTW.

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  const auto roster = core::PaperAlgorithmRoster();
  for (const ts::Dataset& ds : datasets) {
    const eval::ExperimentResult result = eval::RunExperiment(ds, roster);
    std::printf("== Figure 13, %s: retrieval accuracy vs time gain ==\n",
                ds.name().c_str());
    std::printf("%-12s %10s %10s %10s\n", "algorithm", "acc@top5",
                "acc@top10", "time_gain");
    for (const eval::AlgorithmMetrics& a : result.algorithms) {
      std::printf("%-12s %10.4f %10.4f %10.4f\n", a.label.c_str(),
                  a.retrieval_accuracy_top5, a.retrieval_accuracy_top10,
                  a.time_gain);
    }
    std::printf("\n");
  }
  return 0;
}
