// Reproduces Table 2: average numbers of salient points at three different
// (fine, medium, rough) scales in the three data sets, under the paper's
// default extractor (o = floor(log2 N) - 6 octaves, s = 2 levels,
// epsilon = 0.0096, 64-bin descriptors).
//
// Paper reference (Table 2, full-scale UCR data):
//   Gun     fine 221.2, medium 165.4, rough 58.9, total 445.5
//   Trace   fine 122.1, medium 140.0, rough 46.6, total 308.7
//   50Words fine 202.1, medium  90.3, rough 18.9, total 311.3
// The shape to reproduce: fine >> rough everywhere; Gun is richest in
// large-scale (rough) features, 50Words the poorest.

#include <cstdio>

#include "bench_common.h"
#include "sift/extractor.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  std::printf("Table 2: average salient point counts per scale class\n");
  std::printf("%-12s %8s %8s %8s %8s %12s\n", "data_set", "fine", "medium",
              "rough", "total", "rough_share");
  // The density analysis runs the relaxed detector uncapped (Table 2 counts
  // every accepted scale-space point; the |S| << N top-K cap of §3.4 is a
  // separate retrieval-time concern).
  sift::ExtractorOptions opt;
  opt.max_keypoints_fraction = 0.0;
  sift::SalientExtractor extractor(opt);
  for (const ts::Dataset& ds : datasets) {
    sift::ScaleHistogram sum;
    for (const ts::TimeSeries& s : ds) {
      const sift::ScaleHistogram h =
          sift::CountByScale(extractor.Extract(s));
      sum.fine += h.fine;
      sum.medium += h.medium;
      sum.rough += h.rough;
    }
    const double n = static_cast<double>(ds.size());
    const double total = sum.total() / n;
    std::printf("%-12s %8.1f %8.1f %8.1f %8.1f %11.1f%%\n",
                ds.name().c_str(), sum.fine / n, sum.medium / n,
                sum.rough / n, total,
                total > 0.0 ? 100.0 * (sum.rough / n) / total : 0.0);
  }
  std::printf(
      "\nexpected shape (paper Table 2): fine >> rough on every set; the\n"
      "Gun-like set carries the largest share of big (rough) features, the\n"
      "50Words-like set the smallest.\n");
  return 0;
}
