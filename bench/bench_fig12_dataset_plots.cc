// Reproduces Figure 12: plots of the time series in the three data sets
// used in the experiments (rendered as ASCII strip charts, a few series per
// class). The point of the figure is the structural contrast the analysis
// relies on: Gun's few large features, Trace's shifted transients, 50Words'
// many small features — visible directly in the charts.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "ts/transforms.h"

namespace {

using namespace sdtw;

void Plot(const ts::TimeSeries& s, std::size_t height = 7,
          std::size_t width = 72) {
  const ts::TimeSeries r = ts::MinMaxScale(
      ts::Resample(s, width), 0.0, static_cast<double>(height - 1));
  for (std::size_t row = height; row-- > 0;) {
    std::string line(width, ' ');
    for (std::size_t i = 0; i < width; ++i) {
      if (static_cast<std::size_t>(r[i] + 0.5) == row) line[i] = '*';
    }
    std::printf("  |%s|\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  for (const ts::Dataset& ds : datasets) {
    std::printf("== Figure 12, %s ==\n", ds.name().c_str());
    // One representative series for each of the first few classes.
    std::size_t plotted = 0;
    for (int label : ds.Labels()) {
      if (plotted >= 4) break;
      const auto idx = ds.IndicesOfClass(label);
      if (idx.empty()) continue;
      std::printf(" class %d (%s):\n", label, ds[idx[0]].name().c_str());
      Plot(ds[idx[0]]);
      ++plotted;
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper Fig 12): Gun-profile series show one broad\n"
      "rise-plateau-fall structure; Trace-profile series show shifted\n"
      "step/ramp transients; Words-profile series are busy with many small\n"
      "features and no single dominant one.\n");
  return 0;
}
