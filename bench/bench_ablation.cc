// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure): each section toggles one knob of the pipeline and reports
// distance error / retrieval accuracy / time gain on the Trace-like set.
//
//  A. epsilon relaxation of the extremum test (paper fixes 0.0096)
//  B. adaptive-width lower bound (paper uses 20% for fc,aw)
//  C. symmetric combined band (paper §3.3.3 suggestion)
//  D. width-averaging radius r (paper evaluates r=0 and r=1 only)
//  E. Itakura parallelogram as an additional fixed baseline (related work
//     the paper contrasts against in Figure 2(c))

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "dtw/band.h"
#include "eval/experiment.h"

namespace {

using namespace sdtw;

void Report(const char* label, const ts::Dataset& ds,
            const eval::DistanceMatrix& reference,
            const core::SdtwOptions& options) {
  const eval::DistanceMatrix m = eval::ComputeSdtwMatrix(ds, options);
  const eval::AlgorithmMetrics a =
      eval::ComputeMetrics(label, ds, reference, m);
  std::printf("%-26s %12.4f %10.4f %10.4f\n", label, a.distance_error,
              a.retrieval_accuracy_top10, a.time_gain);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::ParseArgs(argc, argv);
  config.only_dataset =
      config.only_dataset.empty() ? "trace" : config.only_dataset;
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);
  const ts::Dataset& ds = datasets.front();
  const eval::DistanceMatrix reference = eval::ComputeFullDtwMatrix(ds);

  std::printf("%-26s %12s %10s %10s\n", "configuration", "dist_error",
              "acc@top10", "time_gain");

  std::printf("-- A. extremum relaxation epsilon (ac,aw) --\n");
  for (const double eps : {0.0, 0.0096, 0.05, 0.2}) {
    core::SdtwOptions opt;
    opt.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
    opt.extractor.epsilon = eps;
    char label[64];
    std::snprintf(label, sizeof(label), "epsilon=%.4f", eps);
    Report(label, ds, reference, opt);
  }

  std::printf("-- B. adaptive width lower bound (fc,aw) --\n");
  for (const double lb : {0.0, 0.10, 0.20, 0.40}) {
    core::SdtwOptions opt;
    opt.constraint.type = core::ConstraintType::kFixedCoreAdaptiveWidth;
    opt.constraint.adaptive_width_min_fraction = lb;
    char label[64];
    std::snprintf(label, sizeof(label), "width_lb=%.0f%%", 100.0 * lb);
    Report(label, ds, reference, opt);
  }

  std::printf("-- C. symmetric combined band (ac,aw) --\n");
  for (const bool sym : {false, true}) {
    core::SdtwOptions opt;
    opt.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
    opt.constraint.symmetric = sym;
    Report(sym ? "symmetric=on" : "symmetric=off", ds, reference, opt);
  }

  std::printf("-- D. width averaging radius r (ac,aw) --\n");
  for (const std::size_t r : {0u, 1u, 2u, 4u}) {
    core::SdtwOptions opt;
    opt.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
    opt.constraint.width_average_radius = r;
    char label[64];
    std::snprintf(label, sizeof(label), "radius=%zu", static_cast<size_t>(r));
    Report(label, ds, reference, opt);
  }
  std::printf("-- E. Itakura parallelogram baseline --\n");
  {
    // Evaluate the Itakura band through the generic banded kernel.
    eval::DistanceMatrix m;
    m.n = ds.size();
    m.distance.assign(m.n * m.n, 0.0);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < m.n; ++i) {
      for (std::size_t j = i + 1; j < m.n; ++j) {
        const dtw::Band band =
            dtw::ItakuraBand(ds[i].size(), ds[j].size(), 2.0);
        const double d = dtw::DtwBandedDistance(ds[i], ds[j], band);
        m.distance[i * m.n + j] = d;
        m.distance[j * m.n + i] = d;
      }
    }
    m.dp_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    const eval::AlgorithmMetrics a =
        eval::ComputeMetrics("itakura s=2", ds, reference, m);
    std::printf("%-26s %12.4f %10.4f %10.4f\n", a.label.c_str(),
                a.distance_error, a.retrieval_accuracy_top10, a.time_gain);
  }
  return 0;
}
