// Batched multi-query retrieval throughput: N sequential KnnEngine::Query
// calls versus one BatchKnnEngine::QueryBatch over the same index, with
// the candidate visit order measured both ways (index order vs ascending
// cached LB_Kim).
//
// The batch path wins on three axes: per-query derivatives (summary,
// envelope, features) are computed once up front, every worker reuses one
// pre-sized rolling DP scratch instead of allocating per call, and the
// query×candidate grid is work-stolen across threads with a shared
// per-query best-so-far, so the cascade tightens as workers race.
// LB-ordered visiting then multiplies the cascade's prune rate: cheap
// near neighbours run first, the best-so-far tightens early, and most of
// the expensive tail never reaches the DP. The bench prints DPs run and
// prune rate for both orders and FAILS (exit 1) if the LB-ordered hit
// lists diverge from the index-ordered or sequential ones — they are
// bitwise identical by construction.
//
// Default scale pins the acceptance setup: a 64-query batch over 1 000
// indexed series at 4 worker threads, exact-DTW and sDTW modes. Results
// are checked identical across all paths before timing is reported.
//
//   --queries=N --series=N --length=N --threads=N   override the scale
//   --smoke                                         tiny CI scale
//   --seed=S                                        generator seed

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/generators.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Scale {
  std::size_t num_series = 1000;
  std::size_t num_queries = 64;
  std::size_t length = 128;
  std::size_t threads = 4;
  std::size_t k = 5;
};

bool SameHits(const std::vector<std::vector<sdtw::retrieval::Hit>>& a,
              const std::vector<std::vector<sdtw::retrieval::Hit>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].index != b[q][i].index ||
          a[q][i].distance != b[q][i].distance) {
        return false;
      }
    }
  }
  return true;
}

sdtw::retrieval::QueryStats Totals(
    const std::vector<sdtw::retrieval::QueryStats>& stats) {
  sdtw::retrieval::QueryStats t;
  for (const sdtw::retrieval::QueryStats& s : stats) t.Merge(s);
  return t;
}

// One engine mode, measured sequentially and batched under both visit
// orders. Returns false when any pair of hit lists disagrees (sequential,
// index-ordered, and LB-ordered must all be bitwise identical).
bool RunMode(const char* label, const sdtw::retrieval::KnnOptions& options,
             const sdtw::ts::Dataset& index_set,
             const std::vector<sdtw::ts::TimeSeries>& queries,
             const Scale& scale) {
  using namespace sdtw;

  retrieval::KnnOptions lb_options = options;
  lb_options.visit_order = retrieval::VisitOrder::kLowerBound;
  retrieval::KnnOptions index_options = options;
  index_options.visit_order = retrieval::VisitOrder::kIndexOrder;

  retrieval::KnnEngine engine(lb_options);
  const auto t_index = std::chrono::steady_clock::now();
  engine.Index(index_set);
  const double index_seconds = Seconds(t_index);
  retrieval::KnnEngine index_order_engine(index_options);
  index_order_engine.Index(index_set);

  // Sequential baseline: one Query call per query, single-threaded.
  const auto t_seq = std::chrono::steady_clock::now();
  std::vector<std::vector<retrieval::Hit>> sequential;
  sequential.reserve(queries.size());
  for (const ts::TimeSeries& q : queries) {
    sequential.push_back(engine.Query(q, scale.k));
  }
  const double seq_seconds = Seconds(t_seq);

  // Batched, LB-ordered visiting (the default).
  retrieval::BatchOptions batch_options;
  batch_options.num_threads = scale.threads;
  const retrieval::BatchKnnEngine batch(engine, batch_options);
  std::vector<retrieval::QueryStats> lb_stats;
  const auto t_batch = std::chrono::steady_clock::now();
  const std::vector<std::vector<retrieval::Hit>> batched =
      batch.QueryBatch(queries, scale.k, &lb_stats);
  const double batch_seconds = Seconds(t_batch);

  // Batched, index-ordered visiting (the PR-3 baseline schedule).
  const retrieval::BatchKnnEngine index_order_batch(index_order_engine,
                                                    batch_options);
  std::vector<retrieval::QueryStats> index_stats;
  const auto t_index_batch = std::chrono::steady_clock::now();
  const std::vector<std::vector<retrieval::Hit>> index_batched =
      index_order_batch.QueryBatch(queries, scale.k, &index_stats);
  const double index_batch_seconds = Seconds(t_index_batch);

  const bool identical =
      SameHits(batched, sequential) && SameHits(batched, index_batched);
  const retrieval::QueryStats lb = Totals(lb_stats);
  const retrieval::QueryStats idx = Totals(index_stats);

  const double seq_qps =
      seq_seconds > 0.0 ? static_cast<double>(queries.size()) / seq_seconds
                        : 0.0;
  const double batch_qps =
      batch_seconds > 0.0
          ? static_cast<double>(queries.size()) / batch_seconds
          : 0.0;
  std::printf("%-10s %9.3f %12.3f %10.1f %12.3f %10.1f %9.2fx  %s\n", label,
              index_seconds, seq_seconds, seq_qps, batch_seconds, batch_qps,
              seq_seconds > 0.0 && batch_seconds > 0.0
                  ? seq_seconds / batch_seconds
                  : 0.0,
              identical ? "ok" : "MISMATCH");
  std::printf(
      "  visit order: index %8zu of %8zu DPs (prune %5.1f%%, %8.3f s)  "
      "lb %8zu DPs (prune %5.1f%%, %8.3f s)  dp_saved %.1f%%%s\n",
      idx.dp_evaluations, idx.candidates, 100.0 * idx.prune_rate(),
      index_batch_seconds, lb.dp_evaluations, 100.0 * lb.prune_rate(),
      batch_seconds,
      idx.dp_evaluations > 0
          ? 100.0 * (1.0 - static_cast<double>(lb.dp_evaluations) /
                               static_cast<double>(idx.dp_evaluations))
          : 0.0,
      lb.dp_evaluations <= idx.dp_evaluations ? "" : "  (LB ran MORE DPs)");
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  Scale scale;
  if (config.smoke) {
    scale.num_series = 40;
    scale.num_queries = 8;
    scale.length = 48;
    scale.threads = 2;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queries=", 0) == 0) {
      scale.num_queries = std::strtoul(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--series=", 0) == 0) {
      scale.num_series = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--length=", 0) == 0) {
      scale.length = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      scale.threads = std::strtoul(arg.c_str() + 10, nullptr, 10);
    }
  }

  data::GeneratorOptions gopt;
  gopt.seed = config.seed;
  gopt.num_series = scale.num_series;
  gopt.length = scale.length;
  const ts::Dataset index_set = data::MakeTraceLike(gopt);

  // Queries drawn from the same generator family with a different seed:
  // realistic near-misses, not indexed duplicates.
  data::GeneratorOptions qopt = gopt;
  qopt.seed = config.seed + 1;
  qopt.num_series = scale.num_queries;
  const ts::Dataset query_set = data::MakeTraceLike(qopt);
  const std::vector<ts::TimeSeries> queries(query_set.begin(),
                                            query_set.end());

  std::printf(
      "batched retrieval: %zu indexed series (len %zu), %zu queries, "
      "k=%zu, %zu worker threads\n\n",
      index_set.size(), scale.length, queries.size(), scale.k,
      scale.threads);
  std::printf("%-10s %9s %12s %10s %12s %10s %9s\n", "mode", "index_s",
              "seq_s", "seq_q/s", "batch_s", "batch_q/s", "speedup");

  bool ok = true;

  retrieval::KnnOptions exact;
  exact.distance = retrieval::DistanceKind::kFullDtw;
  ok &= RunMode("dtw", exact, index_set, queries, scale);

  retrieval::KnnOptions sdtw_opts;
  sdtw_opts.distance = retrieval::DistanceKind::kSdtw;
  sdtw_opts.sdtw.constraint.type =
      core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  sdtw_opts.sdtw.constraint.width_average_radius = 1;
  ok &= RunMode("sdtw", sdtw_opts, index_set, queries, scale);

  if (!ok) {
    std::fprintf(stderr,
                 "FAILED: sequential, index-ordered, and LB-ordered hit "
                 "lists disagree\n");
    return 1;
  }
  return 0;
}
