// Batched multi-query retrieval throughput: N sequential KnnEngine::Query
// calls versus one BatchKnnEngine::QueryBatch over the same index.
//
// The batch path wins on three axes: per-query derivatives (summary,
// envelope, features) are computed once up front, every worker reuses one
// pre-sized rolling DP scratch instead of allocating per call, and the
// query×candidate grid is work-stolen across threads with a shared
// per-query best-so-far, so the cascade tightens as workers race.
//
// Default scale pins the acceptance setup: a 64-query batch over 1 000
// indexed series at 4 worker threads, exact-DTW and sDTW modes. Results
// are checked identical between the two paths before timing is reported.
//
//   --queries=N --series=N --length=N --threads=N   override the scale
//   --smoke                                         tiny CI scale
//   --seed=S                                        generator seed

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/generators.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Scale {
  std::size_t num_series = 1000;
  std::size_t num_queries = 64;
  std::size_t length = 128;
  std::size_t threads = 4;
  std::size_t k = 5;
};

// One engine mode, measured both ways. Returns false when the batch and
// sequential hit lists disagree (they must be identical).
bool RunMode(const char* label, const sdtw::retrieval::KnnOptions& options,
             const sdtw::ts::Dataset& index_set,
             const std::vector<sdtw::ts::TimeSeries>& queries,
             const Scale& scale) {
  using namespace sdtw;

  retrieval::KnnEngine engine(options);
  const auto t_index = std::chrono::steady_clock::now();
  engine.Index(index_set);
  const double index_seconds = Seconds(t_index);

  // Sequential baseline: one Query call per query, single-threaded.
  const auto t_seq = std::chrono::steady_clock::now();
  std::vector<std::vector<retrieval::Hit>> sequential;
  sequential.reserve(queries.size());
  for (const ts::TimeSeries& q : queries) {
    sequential.push_back(engine.Query(q, scale.k));
  }
  const double seq_seconds = Seconds(t_seq);

  // Batched path: one QueryBatch over the same index.
  retrieval::BatchOptions batch_options;
  batch_options.num_threads = scale.threads;
  const retrieval::BatchKnnEngine batch(engine, batch_options);
  const auto t_batch = std::chrono::steady_clock::now();
  const std::vector<std::vector<retrieval::Hit>> batched =
      batch.QueryBatch(queries, scale.k);
  const double batch_seconds = Seconds(t_batch);

  bool identical = batched.size() == sequential.size();
  for (std::size_t q = 0; identical && q < batched.size(); ++q) {
    identical = batched[q].size() == sequential[q].size();
    for (std::size_t i = 0; identical && i < batched[q].size(); ++i) {
      identical = batched[q][i].index == sequential[q][i].index &&
                  batched[q][i].distance == sequential[q][i].distance;
    }
  }

  const double seq_qps =
      seq_seconds > 0.0 ? static_cast<double>(queries.size()) / seq_seconds
                        : 0.0;
  const double batch_qps =
      batch_seconds > 0.0
          ? static_cast<double>(queries.size()) / batch_seconds
          : 0.0;
  std::printf("%-10s %9.3f %12.3f %10.1f %12.3f %10.1f %9.2fx  %s\n", label,
              index_seconds, seq_seconds, seq_qps, batch_seconds, batch_qps,
              seq_seconds > 0.0 && batch_seconds > 0.0
                  ? seq_seconds / batch_seconds
                  : 0.0,
              identical ? "ok" : "MISMATCH");
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  Scale scale;
  if (config.smoke) {
    scale.num_series = 40;
    scale.num_queries = 8;
    scale.length = 48;
    scale.threads = 2;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queries=", 0) == 0) {
      scale.num_queries = std::strtoul(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--series=", 0) == 0) {
      scale.num_series = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--length=", 0) == 0) {
      scale.length = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      scale.threads = std::strtoul(arg.c_str() + 10, nullptr, 10);
    }
  }

  data::GeneratorOptions gopt;
  gopt.seed = config.seed;
  gopt.num_series = scale.num_series;
  gopt.length = scale.length;
  const ts::Dataset index_set = data::MakeTraceLike(gopt);

  // Queries drawn from the same generator family with a different seed:
  // realistic near-misses, not indexed duplicates.
  data::GeneratorOptions qopt = gopt;
  qopt.seed = config.seed + 1;
  qopt.num_series = scale.num_queries;
  const ts::Dataset query_set = data::MakeTraceLike(qopt);
  const std::vector<ts::TimeSeries> queries(query_set.begin(),
                                            query_set.end());

  std::printf(
      "batched retrieval: %zu indexed series (len %zu), %zu queries, "
      "k=%zu, %zu worker threads\n\n",
      index_set.size(), scale.length, queries.size(), scale.k,
      scale.threads);
  std::printf("%-10s %9s %12s %10s %12s %10s %9s\n", "mode", "index_s",
              "seq_s", "seq_q/s", "batch_s", "batch_q/s", "speedup");

  bool ok = true;

  retrieval::KnnOptions exact;
  exact.distance = retrieval::DistanceKind::kFullDtw;
  ok &= RunMode("dtw", exact, index_set, queries, scale);

  retrieval::KnnOptions sdtw_opts;
  sdtw_opts.distance = retrieval::DistanceKind::kSdtw;
  sdtw_opts.sdtw.constraint.type =
      core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  sdtw_opts.sdtw.constraint.width_average_radius = 1;
  ok &= RunMode("sdtw", sdtw_opts, index_set, queries, scale);

  if (!ok) {
    std::fprintf(stderr,
                 "FAILED: batch and sequential hit lists disagree\n");
    return 1;
  }
  return 0;
}
