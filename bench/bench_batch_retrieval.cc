// Batched multi-query retrieval throughput: N sequential KnnEngine::Query
// calls versus one BatchKnnEngine::QueryBatch over the same index, with
// the candidate visit order measured three ways (index order, per-chunk
// ascending cached LB_Kim, and the whole-index LB_Kim presort of
// VisitOrder::kGlobalLowerBound).
//
// The batch path wins on three axes: per-query derivatives (summary,
// envelope, features) are computed once up front, every worker reuses one
// pre-sized rolling DP scratch instead of allocating per call, and the
// query×candidate grid is work-stolen across threads with a shared
// per-query best-so-far, so the cascade tightens as workers race.
// LB-ordered visiting then multiplies the cascade's prune rate: cheap
// near neighbours run first, the best-so-far tightens early, and most of
// the expensive tail never reaches the DP. The bench prints DPs run and
// prune rate for all three orders and FAILS (exit 1) if any hit list
// diverges from the sequential one — they are bitwise identical by
// construction.
//
// Default scale pins the acceptance setup: a 64-query batch over 1 000
// indexed series at 4 worker threads, exact-DTW and sDTW modes. Results
// are checked identical across all paths before timing is reported.
//
//   --queries=N --series=N --length=N --threads=N   override the scale
//   --smoke                                         tiny CI scale
//   --seed=S                                        generator seed
//   --json=FILE  write a machine-readable perf baseline (queries/s, DP
//                counts, prune rates, Keogh abandons, and banded-kernel
//                cells/s) for CI artifact tracking across perf PRs
//
// scripts/bench_smoke.sh passes --json so CI uploads BENCH_retrieval.json
// as the perf-trajectory artifact.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/generators.h"
#include "dtw/dtw.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Scale {
  std::size_t num_series = 1000;
  std::size_t num_queries = 64;
  std::size_t length = 128;
  std::size_t threads = 4;
  std::size_t k = 5;
};

// Per-visit-order measurements of one engine mode.
struct OrderMetrics {
  sdtw::retrieval::QueryStats stats;
  double seconds = 0.0;
};

// One engine mode's full measurement set (for the table and the JSON).
struct ModeMetrics {
  double index_seconds = 0.0;
  double seq_seconds = 0.0;
  double batch_seconds = 0.0;  // default (LB-ordered) batch
  OrderMetrics orders[3];      // indexed by VisitOrder
  bool identical = false;
};

bool SameHits(const std::vector<std::vector<sdtw::retrieval::Hit>>& a,
              const std::vector<std::vector<sdtw::retrieval::Hit>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].index != b[q][i].index ||
          a[q][i].distance != b[q][i].distance) {
        return false;
      }
    }
  }
  return true;
}

sdtw::retrieval::QueryStats Totals(
    const std::vector<sdtw::retrieval::QueryStats>& stats) {
  sdtw::retrieval::QueryStats t;
  for (const sdtw::retrieval::QueryStats& s : stats) t.Merge(s);
  return t;
}

// One engine mode, measured sequentially and batched under all three
// visit orders. Returns false when any hit list disagrees with the
// sequential scan (all four must be bitwise identical).
bool RunMode(const char* label, const sdtw::retrieval::KnnOptions& options,
             const sdtw::ts::Dataset& index_set,
             const std::vector<sdtw::ts::TimeSeries>& queries,
             const Scale& scale, ModeMetrics* out) {
  using namespace sdtw;
  using retrieval::VisitOrder;

  constexpr VisitOrder kOrders[3] = {VisitOrder::kIndexOrder,
                                     VisitOrder::kLowerBound,
                                     VisitOrder::kGlobalLowerBound};

  // One engine per visit order (the option is fixed at engine level);
  // sequential baseline runs on the default (LB-ordered) engine.
  std::vector<retrieval::KnnEngine> engines;
  engines.reserve(3);
  double index_seconds = 0.0;
  for (const VisitOrder order : kOrders) {
    retrieval::KnnOptions o = options;
    o.visit_order = order;
    engines.emplace_back(o);
    const auto t0 = std::chrono::steady_clock::now();
    engines.back().Index(index_set);
    if (order == VisitOrder::kLowerBound) index_seconds = Seconds(t0);
  }
  retrieval::KnnEngine& lb_engine = engines[1];

  // Sequential baseline: one Query call per query, single-threaded.
  const auto t_seq = std::chrono::steady_clock::now();
  std::vector<std::vector<retrieval::Hit>> sequential;
  sequential.reserve(queries.size());
  for (const ts::TimeSeries& q : queries) {
    sequential.push_back(lb_engine.Query(q, scale.k));
  }
  const double seq_seconds = Seconds(t_seq);

  retrieval::BatchOptions batch_options;
  batch_options.num_threads = scale.threads;

  ModeMetrics metrics;
  metrics.index_seconds = index_seconds;
  metrics.seq_seconds = seq_seconds;
  bool identical = true;
  for (int oi = 0; oi < 3; ++oi) {
    const retrieval::BatchKnnEngine batch(engines[oi], batch_options);
    std::vector<retrieval::QueryStats> stats;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::vector<retrieval::Hit>> hits =
        batch.QueryBatch(queries, scale.k, &stats);
    metrics.orders[oi].seconds = Seconds(t0);
    metrics.orders[oi].stats = Totals(stats);
    identical = identical && SameHits(hits, sequential);
  }
  metrics.batch_seconds = metrics.orders[1].seconds;
  metrics.identical = identical;

  const double seq_qps =
      seq_seconds > 0.0 ? static_cast<double>(queries.size()) / seq_seconds
                        : 0.0;
  const double batch_qps =
      metrics.batch_seconds > 0.0
          ? static_cast<double>(queries.size()) / metrics.batch_seconds
          : 0.0;
  std::printf("%-10s %9.3f %12.3f %10.1f %12.3f %10.1f %9.2fx  %s\n", label,
              index_seconds, seq_seconds, seq_qps, metrics.batch_seconds,
              batch_qps,
              seq_seconds > 0.0 && metrics.batch_seconds > 0.0
                  ? seq_seconds / metrics.batch_seconds
                  : 0.0,
              identical ? "ok" : "MISMATCH");
  const retrieval::QueryStats& idx = metrics.orders[0].stats;
  const retrieval::QueryStats& lb = metrics.orders[1].stats;
  const retrieval::QueryStats& glb = metrics.orders[2].stats;
  std::printf(
      "  visit order: index %8zu of %8zu DPs (prune %5.1f%%)  "
      "lb %8zu DPs (prune %5.1f%%, dp_saved %.1f%%)  "
      "global_lb %8zu DPs (prune %5.1f%%, dp_saved %.1f%%)\n",
      idx.dp_evaluations, idx.candidates, 100.0 * idx.prune_rate(),
      lb.dp_evaluations, 100.0 * lb.prune_rate(),
      idx.dp_evaluations > 0
          ? 100.0 * (1.0 - static_cast<double>(lb.dp_evaluations) /
                               static_cast<double>(idx.dp_evaluations))
          : 0.0,
      glb.dp_evaluations, 100.0 * glb.prune_rate(),
      idx.dp_evaluations > 0
          ? 100.0 * (1.0 - static_cast<double>(glb.dp_evaluations) /
                               static_cast<double>(idx.dp_evaluations))
          : 0.0);
  if (lb.pruned_by_keogh > 0 || lb.lb_keogh_abandoned > 0) {
    std::printf("  lb_keogh: %zu pruned, %zu bound passes abandoned early\n",
                lb.pruned_by_keogh, lb.lb_keogh_abandoned);
  }
  if (out != nullptr) *out = metrics;
  return identical;
}

// Throughput of the banded rolling DP kernel itself (the cascade's miss
// path) on the BM_DtwBandedNarrowDistance band shape, in cells/s — the
// number the two-pass kernel work moves and the JSON baseline tracks.
double KernelCellsPerSecond(std::size_t n, sdtw::dtw::CostKind cost) {
  using namespace sdtw;
  ts::Rng rng1(1), rng2(2);
  const ts::TimeSeries x =
      ts::ZNormalize(data::patterns::RandomSmooth(n, 12, rng1));
  const ts::TimeSeries y =
      ts::ZNormalize(data::patterns::RandomSmooth(n, 12, rng2));
  const dtw::Band band = bench::FixedWidthDiagonalBand(n, n, 16);
  const double cells = static_cast<double>(band.CellCount());
  dtw::DtwScratch scratch;
  volatile double sink = 0.0;
  // Warm-up, then measure for a fixed wall budget.
  sink = sink + dtw::DtwBandedDistance(x, y, band, cost, scratch);
  std::size_t reps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    sink = sink + dtw::DtwBandedDistance(x, y, band, cost, scratch);
    ++reps;
    elapsed = Seconds(t0);
  } while (elapsed < 0.2);
  return static_cast<double>(reps) * cells / elapsed;
}

void WriteJson(const char* path, const Scale& scale, bool smoke,
               double kernel_abs, double kernel_sq,
               const ModeMetrics& dtw_metrics,
               const ModeMetrics& sdtw_metrics) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path);
    return;
  }
  auto mode = [f](const char* name, const ModeMetrics& m, bool last) {
    std::fprintf(f, "    \"%s\": {\n", name);
    std::fprintf(f, "      \"seq_seconds\": %.6f,\n", m.seq_seconds);
    std::fprintf(f, "      \"batch_seconds\": %.6f,\n", m.batch_seconds);
    std::fprintf(f, "      \"index_seconds\": %.6f,\n", m.index_seconds);
    std::fprintf(f, "      \"hits_identical\": %s,\n",
                 m.identical ? "true" : "false");
    static const char* kOrderNames[3] = {"index", "lb", "global_lb"};
    std::fprintf(f, "      \"orders\": {\n");
    for (int oi = 0; oi < 3; ++oi) {
      const auto& s = m.orders[oi].stats;
      std::fprintf(f,
                   "        \"%s\": {\"seconds\": %.6f, \"candidates\": %zu, "
                   "\"dp_evaluations\": %zu, \"prune_rate\": %.6f, "
                   "\"pruned_by_kim\": %zu, \"pruned_by_keogh\": %zu, "
                   "\"pruned_by_early_abandon\": %zu, "
                   "\"lb_keogh_abandoned\": %zu}%s\n",
                   kOrderNames[oi], m.orders[oi].seconds, s.candidates,
                   s.dp_evaluations, s.prune_rate(), s.pruned_by_kim,
                   s.pruned_by_keogh, s.pruned_by_early_abandon,
                   s.lb_keogh_abandoned, oi < 2 ? "," : "");
    }
    std::fprintf(f, "      }\n");
    std::fprintf(f, "    }%s\n", last ? "" : ",");
  };
  std::fprintf(f, "{\n");
  // v3: bench_service may append a "service" block (latency percentiles,
  // throughput, cache hit rate) after this bench writes the base file.
  std::fprintf(f, "  \"schema\": \"sdtw-bench-retrieval-v4\",\n");
  std::fprintf(f,
               "  \"scale\": {\"series\": %zu, \"queries\": %zu, \"length\": "
               "%zu, \"threads\": %zu, \"k\": %zu, \"smoke\": %s},\n",
               scale.num_series, scale.num_queries, scale.length,
               scale.threads, scale.k, smoke ? "true" : "false");
  // Variant + CPU features make the baseline self-describing so the CI
  // perf gate can refuse apples-to-oranges comparisons (e.g. a previous
  // run on an AVX-512 host versus a current run forced to portable).
  std::fprintf(f,
               "  \"kernel\": {\"band_half_width\": 16, "
               "\"variant\": \"%s\", "
               "\"cpu_features\": \"%s\", "
               "\"banded_cells_per_second_abs\": %.0f, "
               "\"banded_cells_per_second_squared\": %.0f},\n",
               sdtw::dtw::ActiveRowKernelOps().name,
               sdtw::dtw::DetectedCpuFeatures().c_str(), kernel_abs,
               kernel_sq);
  std::fprintf(f, "  \"modes\": {\n");
  mode("dtw", dtw_metrics, false);
  mode("sdtw", sdtw_metrics, true);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("perf baseline written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  Scale scale;
  if (config.smoke) {
    scale.num_series = 40;
    scale.num_queries = 8;
    scale.length = 48;
    scale.threads = 2;
  }
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--queries=", 0) == 0) {
      scale.num_queries = std::strtoul(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--series=", 0) == 0) {
      scale.num_series = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--length=", 0) == 0) {
      scale.length = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      scale.threads = std::strtoul(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }

  data::GeneratorOptions gopt;
  gopt.seed = config.seed;
  gopt.num_series = scale.num_series;
  gopt.length = scale.length;
  const ts::Dataset index_set = data::MakeTraceLike(gopt);

  // Queries drawn from the same generator family with a different seed:
  // realistic near-misses, not indexed duplicates.
  data::GeneratorOptions qopt = gopt;
  qopt.seed = config.seed + 1;
  qopt.num_series = scale.num_queries;
  const ts::Dataset query_set = data::MakeTraceLike(qopt);
  const std::vector<ts::TimeSeries> queries(query_set.begin(),
                                            query_set.end());

  std::printf(
      "batched retrieval: %zu indexed series (len %zu), %zu queries, "
      "k=%zu, %zu worker threads\n\n",
      index_set.size(), scale.length, queries.size(), scale.k,
      scale.threads);
  std::printf("%-10s %9s %12s %10s %12s %10s %9s\n", "mode", "index_s",
              "seq_s", "seq_q/s", "batch_s", "batch_q/s", "speedup");

  bool ok = true;

  retrieval::KnnOptions exact;
  exact.distance = retrieval::DistanceKind::kFullDtw;
  ModeMetrics dtw_metrics;
  ok &= RunMode("dtw", exact, index_set, queries, scale, &dtw_metrics);

  retrieval::KnnOptions sdtw_opts;
  sdtw_opts.distance = retrieval::DistanceKind::kSdtw;
  sdtw_opts.sdtw.constraint.type =
      core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  sdtw_opts.sdtw.constraint.width_average_radius = 1;
  ModeMetrics sdtw_metrics;
  ok &= RunMode("sdtw", sdtw_opts, index_set, queries, scale, &sdtw_metrics);

  if (!json_path.empty()) {
    const std::size_t kernel_n = config.smoke ? 256 : 2048;
    const double kernel_abs =
        KernelCellsPerSecond(kernel_n, dtw::CostKind::kAbsolute);
    const double kernel_sq =
        KernelCellsPerSecond(kernel_n, dtw::CostKind::kSquared);
    std::printf(
        "banded kernel (half-width 16, n=%zu, variant=%s): %.1f M cells/s "
        "abs, %.1f M cells/s squared\n",
        kernel_n, dtw::ActiveRowKernelOps().name, kernel_abs / 1e6,
        kernel_sq / 1e6);
    WriteJson(json_path.c_str(), scale, config.smoke, kernel_abs, kernel_sq,
              dtw_metrics, sdtw_metrics);
  }

  if (!ok) {
    std::fprintf(stderr,
                 "FAILED: sequential, index-ordered, LB-ordered, and "
                 "globally-LB-ordered hit lists disagree\n");
    return 1;
  }
  return 0;
}
