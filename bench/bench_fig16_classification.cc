// Reproduces Figure 16: top-5 and top-10 kNN classification accuracy (vs
// time gain) on the 50Words data set — the hardest set: 50 classes, so
// nearest-neighbour label sets are most sensitive to ranking errors.
//
// Shape to reproduce (paper §4.4): adaptive core and adaptive width
// algorithms improve the classification accuracy over fixed-core bands.

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  bench::BenchConfig config = bench::ParseArgs(argc, argv);
  config.only_dataset =
      config.only_dataset.empty() ? "50words" : config.only_dataset;
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  const auto roster = core::PaperAlgorithmRoster();
  for (const ts::Dataset& ds : datasets) {
    const eval::ExperimentResult result = eval::RunExperiment(ds, roster);
    std::printf(
        "== Figure 16, %s: kNN classification accuracy vs time gain ==\n",
        ds.name().c_str());
    std::printf("%-12s %10s %10s %10s\n", "algorithm", "cls@top5",
                "cls@top10", "time_gain");
    for (const eval::AlgorithmMetrics& a : result.algorithms) {
      std::printf("%-12s %10.4f %10.4f %10.4f\n", a.label.c_str(),
                  a.classification_accuracy_top5,
                  a.classification_accuracy_top10, a.time_gain);
    }
    std::printf("\n");
  }
  return 0;
}
