// Kernel micro-benchmarks (google-benchmark): throughput of the DTW DP
// kernels, band construction, feature extraction and matching — the raw
// primitives behind the table/figure benches.

#include <benchmark/benchmark.h>

#include <string>

#include "align/consistency.h"
#include "align/matching.h"
#include "bench_common.h"
#include "core/sdtw.h"
#include "data/generators.h"
#include "dtw/band_matrix.h"
#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "dtw/multiscale.h"
#include "dtw/row_kernel.h"
#include "sift/extractor.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace {

using namespace sdtw;

ts::TimeSeries MakeSeries(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  return ts::ZNormalize(data::patterns::RandomSmooth(n, 12, rng));
}

void BM_DtwFull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwDistance(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_DtwFull)->Arg(128)->Arg(256)->Arg(512);

void BM_DtwFullWithPath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::Dtw(x, y).distance);
  }
}
BENCHMARK(BM_DtwFullWithPath)->Arg(128)->Arg(256);

void BM_DtwSakoeChiba(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double w = static_cast<double>(state.range(1)) / 100.0;
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  const dtw::Band band = dtw::SakoeChibaBand(n, n, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwBandedDistance(x, y, band));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(band.CellCount()));
}
BENCHMARK(BM_DtwSakoeChiba)
    ->Args({256, 6})
    ->Args({256, 10})
    ->Args({256, 20})
    ->Args({512, 10});

// The fixed-half-width diagonal band (bench::FixedWidthDiagonalBand) is
// the regime where band-compressed storage matters: the band area grows
// linearly in n while the grid grows quadratically.
using bench::FixedWidthDiagonalBand;

// Distance-only banded DP over a narrow fixed-width band at growing n.
// With band-compressed rolling rows, time per item (= per band cell)
// should stay flat as n grows; an O(n*m) buffer would make it grow
// linearly with n.
void BM_DtwBandedNarrowDistance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  const dtw::Band band = FixedWidthDiagonalBand(n, n, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwBandedDistance(x, y, band));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(band.CellCount()));
}
BENCHMARK(BM_DtwBandedNarrowDistance)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

// One row per runnable SIMD variant (portable always, avx2/avx512 when
// the binary and CPU both have them), pinned through DtwScratch so the
// runtime dispatcher's choice is taken out of the measurement. The plain
// BM_DtwBandedNarrowDistance rows above show the dispatched default;
// these rows show what each ISA level buys on this machine.
void BM_DtwBandedNarrowDistanceVariant(benchmark::State& state,
                                       const dtw::RowKernelOps* ops) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  const dtw::Band band = FixedWidthDiagonalBand(n, n, 16);
  dtw::DtwScratch scratch;
  scratch.set_kernel(ops);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dtw::DtwBandedDistance(x, y, band, dtw::CostKind::kAbsolute, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(band.CellCount()));
}

const bool kVariantRowsRegistered = [] {
  for (const dtw::RowKernelOps* ops : dtw::SupportedRowKernels()) {
    const std::string name =
        std::string("BM_DtwBandedNarrowDistance/kernel:") + ops->name;
    benchmark::RegisterBenchmark(name.c_str(),
                                 BM_DtwBandedNarrowDistanceVariant, ops)
        ->Arg(1024)
        ->Arg(4096);
  }
  return true;
}();

// The retained scalar row kernel driven over the same narrow bands — the
// pre-vectorisation baseline, kept measurable so the two-pass speedup
// (README "two-pass DP row kernel" table) can be re-derived on any
// machine. Distances are bitwise identical to BM_DtwBandedNarrowDistance
// by the row_kernel property suite.
void BM_DtwBandedNarrowDistanceScalarRef(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  const dtw::Band band = FixedWidthDiagonalBand(n, n, 16);
  const std::size_t m = y.size();
  const std::size_t width = dtw::MaxDpRowWidth(band);
  std::vector<double> prev_buf(width + 1), cur_buf(width + 1);
  for (auto _ : state) {
    double* prev = prev_buf.data();
    double* cur = cur_buf.data();
    std::size_t plo = 0;
    std::size_t phi = 0;
    prev[0] = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
      const auto [clo, chi] = dtw::DpWindow(band.row(i - 1), m);
      if (clo <= chi) {
        // cells = nullptr exactly like the two-pass comparison target
        // (DtwBandedDistance skips counting), so neither side pays
        // per-cell counting the other does not.
        dtw::internal::FillBandRowScalar(prev, plo, phi, cur, clo, chi,
                                         x[i - 1], y.values().data(),
                                         dtw::AbsCost{}, nullptr);
      }
      std::swap(prev, cur);
      plo = clo;
      phi = chi;
    }
    benchmark::DoNotOptimize(prev[m - plo]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(band.CellCount()));
}
BENCHMARK(BM_DtwBandedNarrowDistanceScalarRef)->Arg(1024)->Arg(4096);

// Path-preserving banded DP on the same narrow bands: storage is
// Σ band-row widths (~33 n doubles), so n = 16384 stays in the ~4 MB
// range instead of the 2 GB a full (n+1)^2 matrix would need.
void BM_DtwBandedNarrowPath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  const dtw::Band band = FixedWidthDiagonalBand(n, n, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwBanded(x, y, band).path.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(band.CellCount()));
}
BENCHMARK(BM_DtwBandedNarrowPath)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SdtwBandedCompare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  core::SdtwOptions opt;
  opt.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  opt.dtw.want_path = false;
  core::Sdtw engine(opt);
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Compare(x, fx, y, fy).distance);
  }
}
BENCHMARK(BM_SdtwBandedCompare)->Arg(128)->Arg(256)->Arg(512);

void BM_FeatureExtraction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 3);
  sift::SalientExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(x).size());
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(150)->Arg(275)->Arg(1024);

void BM_MatchingAndPruning(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 4);
  const ts::TimeSeries y = MakeSeries(n, 5);
  sift::SalientExtractor extractor;
  const auto fx = extractor.Extract(x);
  const auto fy = extractor.Extract(y);
  for (auto _ : state) {
    const auto pairs = align::FindDominantPairs(fx, fy);
    benchmark::DoNotOptimize(
        align::PruneInconsistent(x, y, fx, fy, pairs).size());
  }
}
BENCHMARK(BM_MatchingAndPruning)->Arg(150)->Arg(275)->Arg(1024);

void BM_BandConstruction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 6);
  const ts::TimeSeries y = MakeSeries(n, 7);
  core::Sdtw engine;
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.BuildBand(x, fx, y, fy).CellCount());
  }
}
BENCHMARK(BM_BandConstruction)->Arg(150)->Arg(512);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 8);
  const ts::TimeSeries y = MakeSeries(n, 9);
  const dtw::Envelope env = dtw::MakeEnvelope(y, n / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::LbKeogh(x, env));
  }
}
BENCHMARK(BM_LbKeogh)->Arg(256)->Arg(1024);

void BM_MultiscaleDtw(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 10);
  const ts::TimeSeries y = MakeSeries(n, 11);
  dtw::MultiscaleOptions opt;
  opt.want_path = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::MultiscaleDtw(x, y, opt).distance);
  }
}
BENCHMARK(BM_MultiscaleDtw)->Arg(256)->Arg(1024);

}  // namespace
