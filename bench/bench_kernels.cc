// Kernel micro-benchmarks (google-benchmark): throughput of the DTW DP
// kernels, band construction, feature extraction and matching — the raw
// primitives behind the table/figure benches.

#include <benchmark/benchmark.h>

#include "align/consistency.h"
#include "align/matching.h"
#include "core/sdtw.h"
#include "data/generators.h"
#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "dtw/multiscale.h"
#include "sift/extractor.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace {

using namespace sdtw;

ts::TimeSeries MakeSeries(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  return ts::ZNormalize(data::patterns::RandomSmooth(n, 12, rng));
}

void BM_DtwFull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwDistance(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_DtwFull)->Arg(128)->Arg(256)->Arg(512);

void BM_DtwFullWithPath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::Dtw(x, y).distance);
  }
}
BENCHMARK(BM_DtwFullWithPath)->Arg(128)->Arg(256);

void BM_DtwSakoeChiba(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double w = static_cast<double>(state.range(1)) / 100.0;
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  const dtw::Band band = dtw::SakoeChibaBand(n, n, w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::DtwBandedDistance(x, y, band));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(band.CellCount()));
}
BENCHMARK(BM_DtwSakoeChiba)
    ->Args({256, 6})
    ->Args({256, 10})
    ->Args({256, 20})
    ->Args({512, 10});

void BM_SdtwBandedCompare(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 1);
  const ts::TimeSeries y = MakeSeries(n, 2);
  core::SdtwOptions opt;
  opt.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  opt.dtw.want_path = false;
  core::Sdtw engine(opt);
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Compare(x, fx, y, fy).distance);
  }
}
BENCHMARK(BM_SdtwBandedCompare)->Arg(128)->Arg(256)->Arg(512);

void BM_FeatureExtraction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 3);
  sift::SalientExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(x).size());
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(150)->Arg(275)->Arg(1024);

void BM_MatchingAndPruning(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 4);
  const ts::TimeSeries y = MakeSeries(n, 5);
  sift::SalientExtractor extractor;
  const auto fx = extractor.Extract(x);
  const auto fy = extractor.Extract(y);
  for (auto _ : state) {
    const auto pairs = align::FindDominantPairs(fx, fy);
    benchmark::DoNotOptimize(
        align::PruneInconsistent(x, y, fx, fy, pairs).size());
  }
}
BENCHMARK(BM_MatchingAndPruning)->Arg(150)->Arg(275)->Arg(1024);

void BM_BandConstruction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 6);
  const ts::TimeSeries y = MakeSeries(n, 7);
  core::Sdtw engine;
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.BuildBand(x, fx, y, fy).CellCount());
  }
}
BENCHMARK(BM_BandConstruction)->Arg(150)->Arg(512);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 8);
  const ts::TimeSeries y = MakeSeries(n, 9);
  const dtw::Envelope env = dtw::MakeEnvelope(y, n / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::LbKeogh(x, env));
  }
}
BENCHMARK(BM_LbKeogh)->Arg(256)->Arg(1024);

void BM_MultiscaleDtw(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ts::TimeSeries x = MakeSeries(n, 10);
  const ts::TimeSeries y = MakeSeries(n, 11);
  dtw::MultiscaleOptions opt;
  opt.want_path = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::MultiscaleDtw(x, y, opt).distance);
  }
}
BENCHMARK(BM_MultiscaleDtw)->Arg(256)->Arg(1024);

}  // namespace
