// Reproduces Figure 18: impact of the descriptor length (4..128) on
// distance error, top-10 retrieval accuracy and time gain, per data set,
// for the adaptive algorithms (fc,aw / ac,fw / ac,aw / ac2,aw).
//
// Shape to reproduce (paper §4.4):
//  * ac,fw functions poorly with very small descriptors; on Gun/Trace-like
//    sets mid-size descriptors (~32) suffice, while a 50Words-like set —
//    lacking large discriminating features — keeps improving with longer
//    descriptors that add temporal context;
//  * fc,aw reaches its best accuracy with the smallest descriptors at the
//    cost of time gain;
//  * ac,aw / ac2,aw provide the best accuracy/speed-up trade-offs.

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  const std::size_t lengths[] = {4, 8, 16, 32, 64, 128};
  for (const ts::Dataset& ds : datasets) {
    const eval::DistanceMatrix reference = eval::ComputeFullDtwMatrix(ds);
    std::printf("== Figure 18, %s: descriptor length sweep ==\n",
                ds.name().c_str());
    std::printf("%-12s %6s %12s %10s %10s\n", "algorithm", "bins",
                "dist_error", "acc@top10", "time_gain");
    for (const std::size_t len : lengths) {
      const auto roster = core::PaperAlgorithmRoster(len);
      for (const core::NamedConfig& cfg : roster) {
        if (cfg.full_dtw) continue;
        // Figure 18 shows only the adaptive algorithms; skip pure
        // Sakoe-Chiba rows (no descriptors involved).
        if (cfg.options.constraint.type ==
            core::ConstraintType::kFixedCoreFixedWidth) {
          continue;
        }
        const eval::DistanceMatrix m =
            eval::ComputeSdtwMatrix(ds, cfg.options);
        const eval::AlgorithmMetrics a =
            eval::ComputeMetrics(cfg.label, ds, reference, m);
        std::printf("%-12s %6zu %12.4f %10.4f %10.4f\n", a.label.c_str(),
                    len, a.distance_error, a.retrieval_accuracy_top10,
                    a.time_gain);
      }
    }
    std::printf("\n");
  }
  return 0;
}
