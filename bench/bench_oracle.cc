// Oracle-band headroom analysis (extension, not a paper figure): compares
// each constraint strategy's band against the *oracle* band — the tightest
// band containing the true optimal warp path. Reports
//   * containment: fraction of the optimal path inside the strategy's band
//     (1.0 means the strategy would recover the exact distance),
//   * coverage: band size relative to the grid (smaller = faster), and
//   * oracle coverage: the lower bound any constraint could achieve.
// This quantifies how much of the pruning opportunity the salient-feature
// evidence actually captures.

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "dtw/path_analysis.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  const auto roster = core::PaperAlgorithmRoster();
  for (const ts::Dataset& ds : datasets) {
    std::printf("== oracle-band analysis, %s ==\n", ds.name().c_str());
    std::printf("%-12s %13s %10s %14s\n", "algorithm", "containment",
                "coverage", "oracle_cov");
    const std::size_t probe = std::min<std::size_t>(ds.size(), 16);
    for (const core::NamedConfig& cfg : roster) {
      if (cfg.full_dtw) continue;
      core::Sdtw engine(cfg.options);
      eval::MeanAccumulator containment, coverage, oracle_cov;
      for (std::size_t i = 0; i < probe; ++i) {
        for (std::size_t j = i + 1; j < probe; ++j) {
          const dtw::DtwResult exact = dtw::Dtw(ds[i], ds[j]);
          const dtw::Band band =
              engine.BuildBand(ds[i], engine.ExtractFeatures(ds[i]), ds[j],
                               engine.ExtractFeatures(ds[j]));
          containment.Add(dtw::PathContainment(exact.path, band));
          coverage.Add(band.Coverage());
          oracle_cov.Add(
              dtw::OracleBand(exact.path, ds[i].size(), ds[j].size())
                  .Coverage());
        }
      }
      std::printf("%-12s %13.3f %10.3f %14.3f\n", cfg.label,
                  containment.mean(), coverage.mean(), oracle_cov.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "reading: containment -> accuracy headroom; coverage vs oracle_cov ->\n"
      "how much pruning opportunity the salient-feature evidence captures.\n");
  return 0;
}
