// Retrieval service throughput and latency: a repeat-heavy stream of
// single-query requests answered three ways over the same index —
//
//   seq-loop   one thread, one KnnEngine::Query call per request (every
//              request pays derivative extraction + a full cascade scan);
//   loop@T     T submitter threads doing the same direct Query calls
//              (the strongest no-service baseline at T clients);
//   service    T submitter threads pushing the same requests through
//              QueryService: bounded admission, size-or-deadline
//              micro-batching, persistent workers with reused scratch,
//              content-keyed derivative caching, in-batch duplicate
//              coalescing.
//
// The service wins even on a single core because it removes *work*, not
// just wall time: duplicate requests inside one micro-batch share a
// single scan (truncated per request), and repeated queries across
// batches skip derivative extraction via the cache. The workload models
// a hot-key serving mix: `requests` draws over `unique` distinct
// queries, so each distinct query is requested many times.
//
// Every service result is checked bitwise against a direct
// BatchKnnEngine scan of that query alone; any divergence exits 1. At
// full (non-smoke) scale the run FAILS unless the service clears 2x the
// loop@T baseline's throughput — the PR's acceptance bar.
//
//   --requests=N --unique=N --series=N --length=N     workload scale
//   --submitters=N                                    client threads
//   --smoke                                           tiny CI scale
//   --seed=S                                          generator seed
//   --faults     re-run the stream against a second service instance with
//                deterministic fault injection armed (seeded worker and
//                derivative-cache-fill faults, equivalent to a fixed
//                SDTW_FAULT spec) and a slice of tight per-request
//                deadlines. The run FAILS unless the service survives —
//                every future resolves, Shutdown returns — and every
//                request that completed OK is bitwise identical to the
//                direct scan. Shed/retry/fault rates land in the JSON.
//   --json=FILE  amend the bench_batch_retrieval baseline (adds a
//                "service" block with p50/p95/p99 latency, throughput,
//                cache hit rate) or write a standalone file when the
//                baseline is missing
//
// scripts/bench_smoke.sh runs this after bench_batch_retrieval against
// the same BENCH_retrieval.json so CI's perf artifact carries the
// service numbers too.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/fault_injector.h"
#include "data/generators.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"
#include "retrieval/service.h"
#include "ts/random.h"

namespace {

using sdtw::retrieval::Hit;

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Scale {
  std::size_t num_series = 400;
  std::size_t length = 128;
  std::size_t unique_queries = 16;
  std::size_t requests = 512;
  std::size_t k = 5;
  std::size_t submitters = 8;
  std::size_t max_batch = 64;
  std::size_t max_delay_us = 2000;
  std::size_t cache_capacity = 256;
};

bool SameHits(const std::vector<Hit>& a, const std::vector<Hit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index || a[i].distance != b[i].distance) {
      return false;
    }
  }
  return true;
}

// [first, last) slice of the request stream owned by submitter `t`.
std::pair<std::size_t, std::size_t> Slice(std::size_t total,
                                          std::size_t threads, std::size_t t) {
  const std::size_t per = total / threads;
  const std::size_t extra = total % threads;
  const std::size_t first = t * per + std::min(t, extra);
  return {first, first + per + (t < extra ? 1 : 0)};
}

// Amends the bench_batch_retrieval baseline in place: drops the final
// closing brace and splices the service block in, so one JSON artifact
// carries the whole perf trajectory. Returns false when the file is
// missing or not in the expected shape (caller falls back to standalone).
bool AmendJson(const char* path, const std::string& service_block) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  while (!content.empty() &&
         (content.back() == '\n' || content.back() == ' ')) {
    content.pop_back();
  }
  if (content.empty() || content.back() != '}') return false;
  if (content.find("\"schema\": \"sdtw-bench-retrieval-v4\"") ==
          std::string::npos ||
      content.find("\"service\":") != std::string::npos) {
    return false;
  }
  content.pop_back();  // the final '}'
  while (!content.empty() && content.back() == '\n') content.pop_back();
  content += ",\n  \"service\": ";
  content += service_block;
  content += "\n}\n";
  f = std::fopen(path, "wb");
  if (f == nullptr) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  Scale scale;
  if (config.smoke) {
    scale.num_series = 40;
    scale.length = 48;
    scale.unique_queries = 6;
    scale.requests = 48;
    scale.submitters = 4;
    scale.max_batch = 16;
  }
  std::string json_path;
  bool run_faults = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--faults") {
      run_faults = true;
    } else if (arg.rfind("--requests=", 0) == 0) {
      scale.requests = std::strtoul(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--unique=", 0) == 0) {
      scale.unique_queries = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--series=", 0) == 0) {
      scale.num_series = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--length=", 0) == 0) {
      scale.length = std::strtoul(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--submitters=", 0) == 0) {
      scale.submitters = std::strtoul(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  if (scale.submitters == 0) scale.submitters = 1;
  if (scale.unique_queries == 0) scale.unique_queries = 1;

  data::GeneratorOptions gopt;
  gopt.seed = config.seed;
  gopt.num_series = scale.num_series;
  gopt.length = scale.length;
  const ts::Dataset index_set = data::MakeTraceLike(gopt);

  data::GeneratorOptions qopt = gopt;
  qopt.seed = config.seed + 1;
  qopt.num_series = scale.unique_queries;
  const ts::Dataset query_set = data::MakeTraceLike(qopt);
  const std::vector<ts::TimeSeries> uniques(query_set.begin(),
                                            query_set.end());

  // The request stream: `requests` draws over the distinct queries, fixed
  // by the seed so every mode answers the identical stream.
  ts::Rng stream_rng(config.seed + 99);
  std::vector<std::size_t> stream(scale.requests);
  for (std::size_t& r : stream) {
    r = static_cast<std::size_t>(stream_rng.UniformInt(
        0, static_cast<std::int64_t>(scale.unique_queries) - 1));
  }

  retrieval::KnnOptions kopt;  // default: sDTW, LB-ordered cascade
  retrieval::KnnEngine engine(kopt);
  engine.Index(index_set);

  // Ground truth per distinct query: a direct one-query batch scan.
  const retrieval::BatchKnnEngine direct(engine);
  std::vector<std::vector<Hit>> expected;
  expected.reserve(uniques.size());
  for (const ts::TimeSeries& q : uniques) {
    const std::vector<ts::TimeSeries> one{q};
    expected.push_back(direct.QueryBatch(one, scale.k)[0]);
  }

  std::printf(
      "retrieval service: %zu requests over %zu distinct queries, "
      "%zu indexed series (len %zu), k=%zu, %zu submitters, "
      "max_batch=%zu, max_delay=%zuus\n\n",
      scale.requests, scale.unique_queries, index_set.size(), scale.length,
      scale.k, scale.submitters, scale.max_batch, scale.max_delay_us);

  // --- Baseline 1: sequential single-query loop. --------------------------
  const auto t_seq = std::chrono::steady_clock::now();
  for (const std::size_t r : stream) {
    volatile std::size_t sink = engine.Query(uniques[r], scale.k).size();
    (void)sink;
  }
  const double seq_seconds = Seconds(t_seq);
  const double seq_qps = static_cast<double>(scale.requests) / seq_seconds;
  std::printf("%-14s %10.3fs %12.1f req/s\n", "seq-loop", seq_seconds,
              seq_qps);

  // --- Baseline 2: the same direct calls from `submitters` threads. -------
  const auto t_loop = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < scale.submitters; ++t) {
      threads.emplace_back([&, t]() {
        const auto [first, last] = Slice(scale.requests, scale.submitters, t);
        for (std::size_t i = first; i < last; ++i) {
          volatile std::size_t sink =
              engine.Query(uniques[stream[i]], scale.k).size();
          (void)sink;
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  const double loop_seconds = Seconds(t_loop);
  const double loop_qps = static_cast<double>(scale.requests) / loop_seconds;
  std::printf("%-14s %10.3fs %12.1f req/s\n", "loop@threads", loop_seconds,
              loop_qps);

  // --- The service. --------------------------------------------------------
  retrieval::ServiceOptions sopt;
  sopt.max_batch = scale.max_batch;
  sopt.max_delay = std::chrono::microseconds(scale.max_delay_us);
  sopt.queue_capacity = std::max<std::size_t>(scale.requests, 64);
  sopt.cache_capacity = scale.cache_capacity;
  retrieval::QueryService service(engine, sopt);

  bool identical = true;
  const auto t_service = std::chrono::steady_clock::now();
  double service_seconds = 0.0;
  {
    std::vector<std::thread> threads;
    std::vector<bool> thread_ok(scale.submitters, true);
    for (std::size_t t = 0; t < scale.submitters; ++t) {
      threads.emplace_back([&, t]() {
        const auto [first, last] = Slice(scale.requests, scale.submitters, t);
        std::vector<std::future<retrieval::QueryService::Result>> futures;
        futures.reserve(last - first);
        // Submit the whole slice before collecting: a real client fleet
        // keeps many requests in flight, which is what lets batches fill.
        for (std::size_t i = first; i < last; ++i) {
          auto f = service.Submit(uniques[stream[i]], scale.k);
          if (!f.has_value()) {
            thread_ok[t] = false;
            continue;
          }
          futures.push_back(std::move(*f));
        }
        std::size_t fi = 0;
        for (std::size_t i = first; i < last; ++i) {
          if (fi >= futures.size()) break;
          const auto result = futures[fi++].get();
          if (!result.ok() || !SameHits(*result, expected[stream[i]])) {
            thread_ok[t] = false;
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    service_seconds = Seconds(t_service);
    for (const bool ok : thread_ok) identical = identical && ok;
  }
  const double service_qps =
      static_cast<double>(scale.requests) / service_seconds;
  const double speedup = loop_seconds > 0.0 && service_seconds > 0.0
                             ? loop_seconds / service_seconds
                             : 0.0;
  std::printf("%-14s %10.3fs %12.1f req/s %8.2fx vs loop  %s\n", "service",
              service_seconds, service_qps, speedup,
              identical ? "ok" : "MISMATCH");

  service.Shutdown();
  const retrieval::ServiceMetrics m = service.metrics();
  const double cache_lookups =
      static_cast<double>(m.cache.hits + m.cache.misses);
  const double cache_hit_rate =
      cache_lookups > 0.0 ? static_cast<double>(m.cache.hits) / cache_lookups
                          : 0.0;
  const double coalesce_rate =
      m.completed > 0
          ? static_cast<double>(m.coalesced) / static_cast<double>(m.completed)
          : 0.0;
  std::printf(
      "\n  batches %zu (avg size %.1f), coalesced %zu/%zu requests "
      "(%.1f%%), derivative cache hit rate %.1f%%\n",
      m.batches,
      m.batches > 0
          ? static_cast<double>(m.completed) / static_cast<double>(m.batches)
          : 0.0,
      m.coalesced, m.completed, 100.0 * coalesce_rate,
      100.0 * cache_hit_rate);
  std::printf(
      "  submit->complete latency: p50 %.0fus  p95 %.0fus  p99 %.0fus  "
      "mean %.0fus  max %.0fus\n",
      m.latency.p50_us, m.latency.p95_us, m.latency.p99_us, m.latency.mean_us,
      m.latency.max_us);

  // --- Fault-injection survival run (--faults). ----------------------------
  // The same stream against a fresh service instance, but with seeded
  // deterministic faults armed (equivalent to
  // SDTW_FAULT="retrieval.worker:R:1201,retrieval.cache_fill:R:1202") and
  // every 8th request carrying a tight deadline. Worker faults poison whole
  // micro-batches, which the service must isolate and retry; fill faults
  // degrade the derivative cache, which must never change results. The bar:
  // the service survives (every future resolves, Shutdown returns) and every
  // request that reports OK is bitwise identical to the direct scan.
  // Rates are high enough that faults reliably fire even at smoke scale
  // (a handful of batches), yet low enough that bounded retries recover
  // most poisoned batches. The faulted instance pins num_workers so the
  // per-batch draw count (one per worker per execution phase) does not
  // depend on the host's core count.
  constexpr double kWorkerFaultRate = 0.10;
  constexpr double kFillFaultRate = 0.30;
  constexpr std::size_t kFaultWorkers = 4;
  struct FaultStats {
    bool ran = false;
    bool survived = false;
    bool ok_hits_identical = true;
    retrieval::ServiceMetrics metrics;
  } fstats;
  if (run_faults) {
    fstats.ran = true;
    core::ScopedFault worker_fault(retrieval::kFaultSiteWorker,
                                   kWorkerFaultRate, 1201);
    core::ScopedFault fill_fault(retrieval::kFaultSiteCacheFill,
                                 kFillFaultRate, 1202);
    retrieval::ServiceOptions fopt = sopt;
    fopt.num_workers = kFaultWorkers;
    retrieval::QueryService faulted(engine, fopt);
    std::vector<std::thread> threads;
    std::vector<bool> thread_ok(scale.submitters, true);
    for (std::size_t t = 0; t < scale.submitters; ++t) {
      threads.emplace_back([&, t]() {
        const auto [first, last] = Slice(scale.requests, scale.submitters, t);
        std::vector<std::pair<std::size_t,
                              std::future<retrieval::QueryService::Result>>>
            futures;
        futures.reserve(last - first);
        for (std::size_t i = first; i < last; ++i) {
          retrieval::RequestOptions ropt;
          if (i % 8 == 7) {
            ropt = retrieval::RequestOptions::WithTimeout(
                std::chrono::microseconds(500));
          }
          auto f = faulted.Submit(uniques[stream[i]], scale.k, ropt);
          if (!f.has_value()) continue;  // admission full: counted as rejected
          futures.emplace_back(i, std::move(*f));
        }
        for (auto& [i, f] : futures) {
          const auto result = f.get();
          if (result.ok() && !SameHits(*result, expected[stream[i]])) {
            thread_ok[t] = false;
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    faulted.Shutdown();
    fstats.survived = true;  // every future resolved, Shutdown returned
    for (const bool ok : thread_ok) {
      fstats.ok_hits_identical = fstats.ok_hits_identical && ok;
    }
    fstats.metrics = faulted.metrics();
    const auto& fm = fstats.metrics;
    std::printf(
        "\n  faults (worker %.0f%%, cache fill %.0f%%): %zu ok, %zu failed, "
        "%zu shed, %zu worker faults, %zu retries  %s\n",
        100.0 * kWorkerFaultRate, 100.0 * kFillFaultRate, fm.ok, fm.failed,
        fm.shed, fm.worker_faults, fm.retries,
        fstats.ok_hits_identical ? "ok-hits identical" : "MISMATCH");
  }

  if (!json_path.empty()) {
    const auto& fm = fstats.metrics;
    const double fault_requests = static_cast<double>(scale.requests);
    char faults_block[1024];
    if (fstats.ran) {
      std::snprintf(
          faults_block, sizeof(faults_block),
          "{\"ran\": true, \"worker_rate\": %.4f, "
          "\"cache_fill_rate\": %.4f, \"ok\": %zu, \"failed\": %zu, "
          "\"shed\": %zu, \"deadline_exceeded\": %zu, "
          "\"worker_faults\": %zu, \"retries\": %zu, "
          "\"shed_rate\": %.4f, \"retry_rate\": %.4f, "
          "\"survived\": %s, \"ok_hits_identical\": %s}",
          kWorkerFaultRate, kFillFaultRate, fm.ok, fm.failed, fm.shed,
          fm.deadline_exceeded, fm.worker_faults, fm.retries,
          static_cast<double>(fm.shed) / fault_requests,
          static_cast<double>(fm.retries) / fault_requests,
          fstats.survived ? "true" : "false",
          fstats.ok_hits_identical ? "true" : "false");
    } else {
      std::snprintf(faults_block, sizeof(faults_block), "{\"ran\": false}");
    }
    char block[4096];
    std::snprintf(
        block, sizeof(block),
        "{\n"
        "    \"scale\": {\"series\": %zu, \"length\": %zu, "
        "\"unique_queries\": %zu, \"requests\": %zu, \"k\": %zu, "
        "\"submitters\": %zu, \"max_batch\": %zu, \"max_delay_us\": %zu, "
        "\"cache_capacity\": %zu, \"smoke\": %s},\n"
        "    \"seq_loop_seconds\": %.6f,\n"
        "    \"loop_seconds\": %.6f,\n"
        "    \"service_seconds\": %.6f,\n"
        "    \"seq_loop_qps\": %.1f,\n"
        "    \"loop_qps\": %.1f,\n"
        "    \"service_qps\": %.1f,\n"
        "    \"speedup_vs_loop\": %.3f,\n"
        "    \"batches\": %zu,\n"
        "    \"coalesce_rate\": %.4f,\n"
        "    \"cache_hit_rate\": %.4f,\n"
        "    \"latency\": {\"count\": %zu, \"p50_us\": %.1f, "
        "\"p95_us\": %.1f, \"p99_us\": %.1f, \"mean_us\": %.1f, "
        "\"max_us\": %.1f},\n"
        "    \"hits_identical\": %s,\n"
        "    \"faults\": %s\n"
        "  }",
        scale.num_series, scale.length, scale.unique_queries, scale.requests,
        scale.k, scale.submitters, scale.max_batch, scale.max_delay_us,
        scale.cache_capacity, config.smoke ? "true" : "false", seq_seconds,
        loop_seconds, service_seconds, seq_qps, loop_qps, service_qps,
        speedup, m.batches, coalesce_rate, cache_hit_rate, m.latency.count,
        m.latency.p50_us, m.latency.p95_us, m.latency.p99_us,
        m.latency.mean_us, m.latency.max_us, identical ? "true" : "false",
        faults_block);
    if (AmendJson(json_path.c_str(), block)) {
      std::printf("service block amended into %s\n", json_path.c_str());
    } else {
      // No (or incompatible) bench_batch_retrieval baseline to amend:
      // write a standalone file so the numbers are never dropped.
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f != nullptr) {
        std::fprintf(f, "{\n  \"schema\": \"sdtw-bench-service-v1\",\n");
        std::fprintf(f, "  \"service\": %s\n}\n", block);
        std::fclose(f);
        std::printf("standalone service baseline written to %s\n",
                    json_path.c_str());
      } else {
        std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
      }
    }
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAILED: service hits diverge from direct single-query "
                 "scans\n");
    return 1;
  }
  if (fstats.ran && (!fstats.survived || !fstats.ok_hits_identical)) {
    std::fprintf(stderr,
                 "FAILED: faulted service run %s\n",
                 !fstats.survived ? "did not survive"
                                  : "returned OK hits that diverge from "
                                    "direct single-query scans");
    return 1;
  }
  if (!config.smoke && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAILED: service speedup %.2fx vs %zu-thread query loop "
                 "is below the 2x acceptance bar\n",
                 speedup, scale.submitters);
    return 1;
  }
  return 0;
}
