// Reproduces Figure 14: DTW distance error vs time gain for every §4.3
// algorithm on the three data sets.
//
// Shape to reproduce (paper §4.4): fixed core & fixed width bands produce
// by far the largest errors (worst on the Gun-like set); adaptive-core
// variants bring the error down by an order of magnitude while keeping
// most of the time gain; fc,aw is relatively best on the 50Words-like set,
// which has no major shifts.

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  const auto roster = core::PaperAlgorithmRoster();
  for (const ts::Dataset& ds : datasets) {
    const eval::ExperimentResult result = eval::RunExperiment(ds, roster);
    std::printf("== Figure 14, %s: distance error vs time gain ==\n",
                ds.name().c_str());
    std::printf("%-12s %12s %10s %12s\n", "algorithm", "dist_error",
                "time_gain", "cells_ratio");
    for (const eval::AlgorithmMetrics& a : result.algorithms) {
      std::printf("%-12s %12.4f %10.4f %12.4f\n", a.label.c_str(),
                  a.distance_error, a.time_gain, a.cell_fraction);
    }
    std::printf("\n");
  }
  return 0;
}
