// Reproduces Figure 17: the split of the per-pair computation time between
// (a) matching + inconsistency removal (+ band construction) and (b) the
// dynamic programming step, for the adaptive algorithms.
//
// Shape to reproduce (paper §4.4): matching is a small proportion of the
// overall work; time is spent mostly in the dynamic programming step.

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  const auto roster = core::PaperAlgorithmRoster();
  for (const ts::Dataset& ds : datasets) {
    std::printf("== Figure 17, %s: matching vs DP time ==\n",
                ds.name().c_str());
    std::printf("%-12s %12s %12s %14s %12s\n", "algorithm", "match_ms",
                "dp_ms", "match_share", "dp_peak_kb");
    // dp_peak_kb: largest band-compressed DP allocation of any pair — the
    // memory the locally relevant constraints save over a full matrix.
    const auto peak_kb = [](std::size_t cells) {
      return 8.0 * static_cast<double>(cells) / 1024.0;
    };
    for (const core::NamedConfig& cfg : roster) {
      if (cfg.full_dtw) {
        const eval::DistanceMatrix m = eval::ComputeFullDtwMatrix(ds);
        std::printf("%-12s %12.2f %12.2f %13.1f%% %12.1f\n", cfg.label, 0.0,
                    1e3 * m.dp_seconds, 0.0, peak_kb(m.peak_dp_cells));
        continue;
      }
      const eval::DistanceMatrix m = eval::ComputeSdtwMatrix(ds, cfg.options);
      const double total = m.matching_seconds + m.dp_seconds;
      std::printf("%-12s %12.2f %12.2f %13.1f%% %12.1f\n", cfg.label,
                  1e3 * m.matching_seconds, 1e3 * m.dp_seconds,
                  total > 0.0 ? 100.0 * m.matching_seconds / total : 0.0,
                  peak_kb(m.peak_dp_cells));
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper Fig 17): the matching/inconsistency share is a\n"
      "small proportion of total pairwise time; DP dominates.\n");
  return 0;
}
