#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "data/generators.h"
#include "ts/io.h"

namespace sdtw {
namespace bench {

BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      config.full_scale = true;
    } else if (arg == "--smoke") {
      config.smoke = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      config.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--ucr_dir=", 0) == 0) {
      config.ucr_dir = arg.substr(10);
    } else if (arg.rfind("--dataset=", 0) == 0) {
      config.only_dataset = arg.substr(10);
    }
  }
  return config;
}

namespace {

bool Wanted(const BenchConfig& config, const std::string& name) {
  return config.only_dataset.empty() || config.only_dataset == name;
}

ts::Dataset Generate(const BenchConfig& config, const std::string& name,
                     std::size_t full_len, std::size_t full_count,
                     std::size_t small_len, std::size_t small_count,
                     std::size_t smoke_count, std::uint64_t seed_offset) {
  data::GeneratorOptions opt;
  opt.seed = config.seed + seed_offset;
  if (config.smoke) {
    // Tiny but structurally intact (classes preserved): every bench
    // finishes in well under a second, catching bit-rot, not measuring.
    opt.length = 48;
    opt.num_series = smoke_count;
  } else {
    opt.length = config.full_scale ? full_len : small_len;
    opt.num_series = config.full_scale ? full_count : small_count;
  }
  return data::MakeByName(name, opt);
}

}  // namespace

std::vector<ts::Dataset> LoadDatasets(const BenchConfig& config) {
  std::vector<ts::Dataset> sets;
  if (!config.ucr_dir.empty()) {
    for (const char* file : {"Gun_Point", "Trace", "50words"}) {
      const auto ds = ts::ReadUcrFile(config.ucr_dir + "/" + file);
      if (ds.has_value() && Wanted(config, file)) sets.push_back(*ds);
    }
    if (!sets.empty()) return sets;
    std::fprintf(stderr,
                 "warning: --ucr_dir=%s yielded no data, falling back to "
                 "synthetic generators\n",
                 config.ucr_dir.c_str());
  }
  // Reduced scale keeps every bench in seconds while preserving the profile:
  // Gun-like keeps its 2 classes, Trace-like its 4, Words-like its 50 (so
  // the "many classes, few per class" difficulty survives scaling).
  if (Wanted(config, "gun")) {
    sets.push_back(Generate(config, "gun", 150, 50, 128, 30, 8, 0));
  }
  if (Wanted(config, "trace")) {
    sets.push_back(Generate(config, "trace", 275, 100, 160, 36, 8, 1));
  }
  if (Wanted(config, "50words")) {
    sets.push_back(Generate(config, "50words", 270, 450, 150, 100, 50, 2));
  }
  return sets;
}

void PrintDatasetTable(const std::vector<ts::Dataset>& datasets) {
  std::printf("%-12s %8s %10s %10s   (Table 1 overview)\n", "data_set",
              "length", "n_series", "n_classes");
  for (const ts::Dataset& ds : datasets) {
    std::printf("%-12s %8zu %10zu %10zu\n", ds.name().c_str(),
                ds.MaxLength(), ds.size(), ds.NumClasses());
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace sdtw

namespace sdtw {
namespace bench {

dtw::Band FixedWidthDiagonalBand(std::size_t n, std::size_t m,
                                 std::size_t half_width) {
  std::vector<dtw::BandRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t diag = n > 1 ? i * (m - 1) / (n - 1) : 0;
    rows[i].lo = diag > half_width ? diag - half_width : 0;
    rows[i].hi = std::min(diag + half_width, m - 1);
  }
  dtw::Band band = dtw::Band::FromRows(std::move(rows), m);
  band.MakeFeasible();
  return band;
}

}  // namespace bench
}  // namespace sdtw
