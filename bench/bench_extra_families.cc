// Extension bench (not a paper figure): runs the full §4.3 algorithm roster
// on two additional classic synthetic families — CBF and TwoPatterns — to
// probe how the sDTW constraints generalise beyond the three UCR profiles:
// CBF has one dominant macro-feature per instance (favourable for salient
// alignment), TwoPatterns has two sharply localised transients at widely
// varying positions (large shifts, the adaptive-core regime).

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "data/extra_families.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  const bench::BenchConfig config = bench::ParseArgs(argc, argv);

  data::GeneratorOptions gopt;
  gopt.seed = config.seed;
  gopt.num_series = config.full_scale ? 120 : 40;
  std::vector<ts::Dataset> datasets;
  datasets.push_back(data::MakeCbf(gopt));
  gopt.seed = config.seed + 1;
  datasets.push_back(data::MakeTwoPatterns(gopt));
  bench::PrintDatasetTable(datasets);

  const auto roster = core::PaperAlgorithmRoster();
  for (const ts::Dataset& ds : datasets) {
    const eval::ExperimentResult result = eval::RunExperiment(ds, roster);
    eval::PrintExperiment(result);
  }
  std::printf(
      "expected shape: adaptive-core variants dominate fixed-core on\n"
      "TwoPatterns (large transient shifts); all constrained variants do\n"
      "well on CBF (single macro-feature, mild shifts).\n");
  return 0;
}
