// Reproduces Figure 15: intra-class distance errors on the Trace data set
// (4 classes, ~25 series each). Since same-class series are much more
// similar to each other than the set at large, accurate estimation is
// harder here: the paper reports fixed-core errors of up to ~1000% while
// adaptive-core algorithms stay in the ~10% range.

#include <cstdio>

#include "bench_common.h"
#include "core/sdtw.h"
#include "eval/experiment.h"

int main(int argc, char** argv) {
  using namespace sdtw;
  bench::BenchConfig config = bench::ParseArgs(argc, argv);
  config.only_dataset = config.only_dataset.empty() ? "trace"
                                                    : config.only_dataset;
  const auto datasets = bench::LoadDatasets(config);
  bench::PrintDatasetTable(datasets);

  const auto roster = core::PaperAlgorithmRoster();
  for (const ts::Dataset& ds : datasets) {
    const eval::ExperimentResult result = eval::RunExperiment(ds, roster);
    std::printf(
        "== Figure 15, %s: intra-class distance error (%% of optimal) ==\n",
        ds.name().c_str());
    std::printf("%-12s %16s %14s\n", "algorithm", "intra_err(%%)",
                "overall_err(%%)");
    for (const eval::AlgorithmMetrics& a : result.algorithms) {
      std::printf("%-12s %16.1f %14.1f\n", a.label.c_str(),
                  100.0 * a.intra_class_distance_error,
                  100.0 * a.distance_error);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape (paper Fig 15): fixed-core algorithms are especially\n"
      "error prone intra-class; adaptive-core algorithms reduce the error\n"
      "by roughly an order of magnitude.\n");
  return 0;
}
