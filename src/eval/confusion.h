#ifndef SDTW_EVAL_CONFUSION_H_
#define SDTW_EVAL_CONFUSION_H_

/// \file confusion.h
/// \brief Confusion matrix and per-class accuracy for classification
/// experiments.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace sdtw {
namespace eval {

/// \brief A label-indexed confusion matrix.
class ConfusionMatrix {
 public:
  /// Records one (truth, prediction) observation.
  void Add(int truth, int predicted);

  /// Count of (truth, predicted) cells.
  std::size_t Count(int truth, int predicted) const;

  /// Total observations.
  std::size_t total() const { return total_; }

  /// Overall accuracy (0 when empty).
  double Accuracy() const;

  /// Recall of one class: correct / total with that truth label (0 when the
  /// class never appears).
  double Recall(int label) const;

  /// Precision of one class: correct / total predicted as that label.
  double Precision(int label) const;

  /// Macro-averaged recall over all truth labels seen.
  double MacroRecall() const;

  /// All truth labels seen, ascending.
  std::vector<int> Labels() const;

  /// Multi-line fixed-width rendering (rows = truth, cols = predicted).
  std::string ToString() const;

 private:
  std::map<std::pair<int, int>, std::size_t> cells_;
  std::map<int, std::size_t> truth_totals_;
  std::map<int, std::size_t> predicted_totals_;
  std::size_t correct_ = 0;
  std::size_t total_ = 0;
};

}  // namespace eval
}  // namespace sdtw

#endif  // SDTW_EVAL_CONFUSION_H_
