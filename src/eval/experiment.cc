#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "retrieval/batch.h"

namespace sdtw {
namespace eval {

namespace {

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

DistanceMatrix ComputeFullDtwMatrix(const ts::Dataset& dataset,
                                    dtw::CostKind cost) {
  DistanceMatrix m;
  m.n = dataset.size();
  m.distance.assign(m.n * m.n, 0.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < m.n; ++i) {
    for (std::size_t j = i + 1; j < m.n; ++j) {
      const double d = dtw::DtwDistance(dataset[i], dataset[j], cost);
      m.distance[i * m.n + j] = d;
      m.distance[j * m.n + i] = d;
      m.cells_filled += dataset[i].size() * dataset[j].size();
      // DtwDistance keeps two rolling rows of the full grid width.
      m.peak_dp_cells =
          std::max(m.peak_dp_cells, 2 * (dataset[j].size() + 1));
    }
  }
  m.dp_seconds = Seconds(t0);
  return m;
}

DistanceMatrix ComputeSdtwMatrix(const ts::Dataset& dataset,
                                 const core::SdtwOptions& options) {
  DistanceMatrix m;
  m.n = dataset.size();
  m.distance.assign(m.n * m.n, 0.0);

  core::SdtwOptions opts = options;
  opts.dtw.want_path = false;
  core::Sdtw engine(opts);

  // One-time per-series feature extraction (outside timing, §4.2).
  std::vector<std::vector<sift::Keypoint>> features;
  features.reserve(m.n);
  for (std::size_t i = 0; i < m.n; ++i) {
    features.push_back(engine.ExtractFeatures(dataset[i]));
  }

  for (std::size_t i = 0; i < m.n; ++i) {
    for (std::size_t j = i + 1; j < m.n; ++j) {
      const core::SdtwResult r =
          engine.Compare(dataset[i], features[i], dataset[j], features[j]);
      m.distance[i * m.n + j] = r.distance;
      m.distance[j * m.n + i] = r.distance;
      m.matching_seconds += r.timing.matching_seconds;
      m.dp_seconds += r.timing.dp_seconds;
      m.cells_filled += r.cells_filled;
      m.peak_dp_cells = std::max(m.peak_dp_cells, r.cells_allocated);
    }
  }
  return m;
}

AlgorithmMetrics ComputeMetrics(const std::string& label,
                                const ts::Dataset& dataset,
                                const DistanceMatrix& reference,
                                const DistanceMatrix& candidate) {
  AlgorithmMetrics out;
  out.label = label;
  const std::size_t n = dataset.size();
  if (n == 0 || reference.n != n || candidate.n != n) return out;

  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = dataset[i].label();

  MeanAccumulator ret5, ret10, derr, intra_derr, cls5, cls10;
  for (std::size_t q = 0; q < n; ++q) {
    std::vector<double> ref_row(reference.distance.begin() +
                                    static_cast<long>(q * n),
                                reference.distance.begin() +
                                    static_cast<long>((q + 1) * n));
    std::vector<double> cand_row(candidate.distance.begin() +
                                     static_cast<long>(q * n),
                                 candidate.distance.begin() +
                                     static_cast<long>((q + 1) * n));
    const std::vector<std::size_t> ref5 = TopK(ref_row, 5, q);
    const std::vector<std::size_t> ref10 = TopK(ref_row, 10, q);
    const std::vector<std::size_t> cand5 = TopK(cand_row, 5, q);
    const std::vector<std::size_t> cand10 = TopK(cand_row, 10, q);
    ret5.Add(TopKOverlap(ref5, cand5, 5));
    ret10.Add(TopKOverlap(ref10, cand10, 10));
    cls5.Add(LabelSetJaccard(KnnLabelSet(ref5, labels),
                             KnnLabelSet(cand5, labels)));
    cls10.Add(LabelSetJaccard(KnnLabelSet(ref10, labels),
                              KnnLabelSet(cand10, labels)));
    for (std::size_t j = q + 1; j < n; ++j) {
      const double e = DistanceError(ref_row[j], cand_row[j]);
      if (std::isfinite(e)) {
        derr.Add(e);
        if (labels[q] >= 0 && labels[q] == labels[j]) intra_derr.Add(e);
      }
    }
  }
  out.retrieval_accuracy_top5 = ret5.mean();
  out.retrieval_accuracy_top10 = ret10.mean();
  out.distance_error = derr.mean();
  out.intra_class_distance_error = intra_derr.mean();
  out.classification_accuracy_top5 = cls5.mean();
  out.classification_accuracy_top10 = cls10.mean();
  out.time_gain =
      TimeGain(reference.total_seconds(), candidate.total_seconds());
  out.matching_seconds = candidate.matching_seconds;
  out.dp_seconds = candidate.dp_seconds;
  out.cell_fraction =
      reference.cells_filled > 0
          ? static_cast<double>(candidate.cells_filled) /
                static_cast<double>(reference.cells_filled)
          : 0.0;
  return out;
}

double BatchLooAccuracy(const ts::Dataset& dataset,
                        const core::NamedConfig& config,
                        std::size_t num_threads,
                        retrieval::QueryStats* aggregate) {
  retrieval::KnnOptions options;
  if (config.full_dtw) {
    options.distance = retrieval::DistanceKind::kFullDtw;
  } else {
    options.distance = retrieval::DistanceKind::kSdtw;
    options.sdtw = config.options;
  }
  retrieval::KnnEngine engine(options);
  engine.Index(dataset);
  retrieval::BatchOptions batch_options;
  batch_options.num_threads = num_threads;
  return retrieval::BatchKnnEngine(engine, batch_options)
      .LeaveOneOutAccuracy(1, aggregate);
}

ExperimentResult RunExperiment(const ts::Dataset& dataset,
                               const std::vector<core::NamedConfig>& roster) {
  ExperimentResult result;
  result.dataset_name = dataset.name();

  const DistanceMatrix reference = ComputeFullDtwMatrix(dataset);
  for (const core::NamedConfig& config : roster) {
    DistanceMatrix m = config.full_dtw
                           ? reference
                           : ComputeSdtwMatrix(dataset, config.options);
    AlgorithmMetrics metrics =
        ComputeMetrics(config.label, dataset, reference, m);
    // Matrix timings above stay single-threaded for paper comparability;
    // the served 1-NN accuracy goes through the batched engine (untimed),
    // whose cascade counters yield the prune-rate column. One worker: the
    // accuracy is thread-count-independent, but the prune/DP split races
    // with the shared best-so-far, and a printed table should reproduce.
    retrieval::QueryStats cascade;
    metrics.loo_accuracy_1nn = BatchLooAccuracy(dataset, config, 1, &cascade);
    metrics.prune_rate = cascade.prune_rate();
    result.algorithms.push_back(std::move(metrics));
  }
  return result;
}

void PrintExperiment(const ExperimentResult& result) {
  std::printf("== %s ==\n", result.dataset_name.c_str());
  std::printf(
      "%-12s %8s %8s %10s %12s %8s %8s %8s %7s %9s %9s %9s\n", "algorithm",
      "acc@5", "acc@10", "dist_err", "intra_err", "cls@5", "cls@10",
      "loo@1", "prune", "timegain", "match_s", "dp_s");
  for (const AlgorithmMetrics& a : result.algorithms) {
    std::printf(
        "%-12s %8.4f %8.4f %10.4f %12.4f %8.4f %8.4f %8.4f %7.4f %9.4f "
        "%9.4f %9.4f\n",
        a.label.c_str(), a.retrieval_accuracy_top5,
        a.retrieval_accuracy_top10, a.distance_error,
        a.intra_class_distance_error, a.classification_accuracy_top5,
        a.classification_accuracy_top10, a.loo_accuracy_1nn, a.prune_rate,
        a.time_gain, a.matching_seconds, a.dp_seconds);
  }
  std::printf("\n");
}

}  // namespace eval
}  // namespace sdtw
