#ifndef SDTW_EVAL_METRICS_H_
#define SDTW_EVAL_METRICS_H_

/// \file metrics.h
/// \brief Effectiveness metrics of paper §4.2: top-k retrieval accuracy,
/// distance error, and kNN classification label accuracy.

#include <cstddef>
#include <vector>

namespace sdtw {
namespace eval {

/// \brief A (distance, index) entry of a ranking.
struct Ranked {
  double distance = 0.0;
  std::size_t index = 0;
};

/// Returns the indices of the k smallest distances (ties broken by index,
/// self-matches excluded by the caller). `distances[i]` is the distance of
/// candidate i.
std::vector<std::size_t> TopK(const std::vector<double>& distances,
                              std::size_t k,
                              std::size_t exclude_index);

/// Top-k retrieval accuracy acc_ret(k): |top_dtw ∩ top_approx| / k for one
/// query (paper §4.2). Both argument lists must contain at most k entries.
double TopKOverlap(const std::vector<std::size_t>& top_reference,
                   const std::vector<std::size_t>& top_candidate,
                   std::size_t k);

/// Distance error of one pair: (d_approx − d_dtw) / d_dtw; 0 when the
/// reference distance is ~0 and the approximation agrees, +inf when the
/// reference is ~0 but the approximation is not.
double DistanceError(double d_reference, double d_approx);

/// kNN label sets: all labels achieving the maximum count among the labels
/// of the k nearest neighbours (paper §4.2 — the classifier can attach more
/// than one label when counts tie). `labels[i]` is the label of candidate i.
std::vector<int> KnnLabelSet(const std::vector<std::size_t>& top_k,
                             const std::vector<int>& labels);

/// Jaccard overlap |A ∩ B| / |A ∪ B| of two label sets (1.0 when both are
/// empty).
double LabelSetJaccard(const std::vector<int>& a, const std::vector<int>& b);

/// \brief Streaming mean accumulator.
class MeanAccumulator {
 public:
  void Add(double v) {
    sum_ += v;
    ++count_;
  }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::size_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

/// Time gain (paper §4.2): (t_dtw − t_approx) / t_dtw.
inline double TimeGain(double t_dtw, double t_approx) {
  return t_dtw > 0.0 ? (t_dtw - t_approx) / t_dtw : 0.0;
}

}  // namespace eval
}  // namespace sdtw

#endif  // SDTW_EVAL_METRICS_H_
