#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace sdtw {
namespace eval {

std::vector<std::size_t> TopK(const std::vector<double>& distances,
                              std::size_t k, std::size_t exclude_index) {
  std::vector<std::size_t> order;
  order.reserve(distances.size());
  for (std::size_t i = 0; i < distances.size(); ++i) {
    if (i != exclude_index) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&distances](std::size_t a, std::size_t b) {
                     if (distances[a] != distances[b]) {
                       return distances[a] < distances[b];
                     }
                     return a < b;
                   });
  if (order.size() > k) order.resize(k);
  return order;
}

double TopKOverlap(const std::vector<std::size_t>& top_reference,
                   const std::vector<std::size_t>& top_candidate,
                   std::size_t k) {
  if (k == 0) return 0.0;
  const std::set<std::size_t> ref(top_reference.begin(), top_reference.end());
  std::size_t hits = 0;
  for (std::size_t i : top_candidate) {
    if (ref.count(i)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double DistanceError(double d_reference, double d_approx) {
  constexpr double kTiny = 1e-12;
  if (std::abs(d_reference) < kTiny) {
    return std::abs(d_approx) < kTiny
               ? 0.0
               : std::numeric_limits<double>::infinity();
  }
  return (d_approx - d_reference) / d_reference;
}

std::vector<int> KnnLabelSet(const std::vector<std::size_t>& top_k,
                             const std::vector<int>& labels) {
  std::map<int, std::size_t> counts;
  for (std::size_t i : top_k) {
    if (i < labels.size()) ++counts[labels[i]];
  }
  std::size_t best = 0;
  for (const auto& [label, count] : counts) best = std::max(best, count);
  std::vector<int> result;
  for (const auto& [label, count] : counts) {
    if (count == best && best > 0) result.push_back(label);
  }
  return result;
}

double LabelSetJaccard(const std::vector<int>& a, const std::vector<int>& b) {
  const std::set<int> sa(a.begin(), a.end());
  const std::set<int> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  std::size_t inter = 0;
  for (int v : sa) {
    if (sb.count(v)) ++inter;
  }
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

}  // namespace eval
}  // namespace sdtw
