#include "eval/confusion.h"

#include <iomanip>
#include <set>
#include <sstream>

namespace sdtw {
namespace eval {

void ConfusionMatrix::Add(int truth, int predicted) {
  ++cells_[{truth, predicted}];
  ++truth_totals_[truth];
  ++predicted_totals_[predicted];
  if (truth == predicted) ++correct_;
  ++total_;
}

std::size_t ConfusionMatrix::Count(int truth, int predicted) const {
  const auto it = cells_.find({truth, predicted});
  return it == cells_.end() ? 0 : it->second;
}

double ConfusionMatrix::Accuracy() const {
  return total_ > 0
             ? static_cast<double>(correct_) / static_cast<double>(total_)
             : 0.0;
}

double ConfusionMatrix::Recall(int label) const {
  const auto it = truth_totals_.find(label);
  if (it == truth_totals_.end() || it->second == 0) return 0.0;
  return static_cast<double>(Count(label, label)) /
         static_cast<double>(it->second);
}

double ConfusionMatrix::Precision(int label) const {
  const auto it = predicted_totals_.find(label);
  if (it == predicted_totals_.end() || it->second == 0) return 0.0;
  return static_cast<double>(Count(label, label)) /
         static_cast<double>(it->second);
}

double ConfusionMatrix::MacroRecall() const {
  if (truth_totals_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [label, count] : truth_totals_) sum += Recall(label);
  return sum / static_cast<double>(truth_totals_.size());
}

std::vector<int> ConfusionMatrix::Labels() const {
  std::set<int> labels;
  for (const auto& [label, count] : truth_totals_) labels.insert(label);
  for (const auto& [label, count] : predicted_totals_) labels.insert(label);
  return std::vector<int>(labels.begin(), labels.end());
}

std::string ConfusionMatrix::ToString() const {
  const std::vector<int> labels = Labels();
  std::ostringstream out;
  out << std::setw(8) << "truth\\pr";
  for (int l : labels) out << std::setw(7) << l;
  out << '\n';
  for (int t : labels) {
    out << std::setw(8) << t;
    for (int p : labels) out << std::setw(7) << Count(t, p);
    out << '\n';
  }
  return out.str();
}

}  // namespace eval
}  // namespace sdtw
