#ifndef SDTW_EVAL_EXPERIMENT_H_
#define SDTW_EVAL_EXPERIMENT_H_

/// \file experiment.h
/// \brief Shared experiment runner behind the table/figure benches.
///
/// For a data set and an algorithm roster, the runner
///  1. extracts salient features once per series (excluded from timing, as
///     in paper §4.2),
///  2. computes the full pairwise distance matrix per algorithm with
///     per-pair stage timings,
///  3. derives the §4.2 metrics against the full-DTW reference: top-k
///     retrieval accuracy, distance error (overall and intra-class), kNN
///     classification label accuracy, and time gain.

#include <cstddef>
#include <string>
#include <vector>

#include "core/sdtw.h"
#include "eval/metrics.h"
#include "retrieval/knn.h"
#include "ts/time_series.h"

namespace sdtw {
namespace eval {

/// \brief Pairwise distances and timings of one algorithm over one set.
struct DistanceMatrix {
  std::size_t n = 0;
  /// Row-major n×n distances; diagonal is 0.
  std::vector<double> distance;
  /// Total matching (pair search + pruning + band build) seconds.
  double matching_seconds = 0.0;
  /// Total DP seconds.
  double dp_seconds = 0.0;
  /// Total filled DP cells.
  std::size_t cells_filled = 0;
  /// Largest DP storage (doubles) any single pair allocated — with the
  /// band-compressed kernels this tracks the band, not the grid.
  std::size_t peak_dp_cells = 0;

  double At(std::size_t i, std::size_t j) const {
    return distance[i * n + j];
  }
  double total_seconds() const { return matching_seconds + dp_seconds; }
};

/// Computes the full-DTW reference matrix (paper's `dtw`).
DistanceMatrix ComputeFullDtwMatrix(const ts::Dataset& dataset,
                                    dtw::CostKind cost =
                                        dtw::CostKind::kAbsolute);

/// Computes an sDTW-constrained matrix. Features are extracted once per
/// series before timing starts.
DistanceMatrix ComputeSdtwMatrix(const ts::Dataset& dataset,
                                 const core::SdtwOptions& options);

/// \brief All §4.2 metrics of one algorithm against the reference.
struct AlgorithmMetrics {
  std::string label;
  double retrieval_accuracy_top5 = 0.0;
  double retrieval_accuracy_top10 = 0.0;
  double distance_error = 0.0;            ///< avg (d* − d)/d over pairs.
  double intra_class_distance_error = 0.0;///< same, pairs within one class.
  double classification_accuracy_top5 = 0.0;
  double classification_accuracy_top10 = 0.0;
  double time_gain = 0.0;                 ///< (t_dtw − t*) / t_dtw.
  double matching_seconds = 0.0;
  double dp_seconds = 0.0;
  double cell_fraction = 0.0;             ///< filled cells / full-grid cells.
  /// Leave-one-out 1-NN label accuracy, computed through the batched
  /// retrieval engine (retrieval::BatchKnnEngine) with its full pruning
  /// cascade — the served-workload counterpart of the matrix metrics
  /// above. Deterministic regardless of worker count.
  double loo_accuracy_1nn = 0.0;
  /// Fraction of that LOO run's candidates the cascade resolved without
  /// running a DP (pruned by LB_Kim, LB_Keogh, or early abandon):
  /// 1 − dp_evaluations / candidates.
  double prune_rate = 0.0;
};

/// Leave-one-out 1-NN accuracy of one roster entry on a data set, served
/// by the batched engine (`num_threads` workers, 0 = hardware
/// concurrency). Exposed for benches that want the retrieval-engine view
/// without a full experiment run. `aggregate` (when non-null) receives
/// the cascade counters summed over all queries of the run.
double BatchLooAccuracy(const ts::Dataset& dataset,
                        const core::NamedConfig& config,
                        std::size_t num_threads = 0,
                        retrieval::QueryStats* aggregate = nullptr);

/// Derives the metrics of `candidate` against `reference` on `dataset`.
AlgorithmMetrics ComputeMetrics(const std::string& label,
                                const ts::Dataset& dataset,
                                const DistanceMatrix& reference,
                                const DistanceMatrix& candidate);

/// \brief One fully evaluated experiment: the reference matrix plus metrics
/// for every roster entry.
struct ExperimentResult {
  std::string dataset_name;
  std::vector<AlgorithmMetrics> algorithms;
};

/// Runs the full §4.3 roster (or any custom roster) over a data set.
ExperimentResult RunExperiment(const ts::Dataset& dataset,
                               const std::vector<core::NamedConfig>& roster);

/// Prints an ExperimentResult as an aligned text table to stdout.
void PrintExperiment(const ExperimentResult& result);

}  // namespace eval
}  // namespace sdtw

#endif  // SDTW_EVAL_EXPERIMENT_H_
