#ifndef SDTW_RETRIEVAL_QUERY_CACHE_H_
#define SDTW_RETRIEVAL_QUERY_CACHE_H_

/// \file query_cache.h
/// \brief Content-hash-keyed LRU cache of per-query derivatives.
///
/// Deriving a query's context (SeriesStats, Keogh envelope, salient SIFT
/// features — see QueryContext in scratch.h) is a pure function of the
/// query's sample values and the engine configuration. Serving traffic is
/// heavily repetitive — the same hot queries arrive again and again from
/// many clients — so a service front-end can skip the derivation entirely
/// for a repeated query by keying contexts on the query *content*:
///
///  * the key is a 64-bit FNV-1a hash over the length and the raw bit
///    patterns of the samples (ContentHash);
///  * every entry also stores a copy of the sample values, and a lookup
///    verifies them against the probe before returning — a hash collision
///    (or a bit-different series hashing alike, which FNV cannot produce,
///    but belt and braces) degrades to a miss, never to a wrong context;
///  * eviction is least-recently-used at a fixed entry capacity.
///
/// Correctness: a hit returns a context bit-identical to what a fresh
/// derivation would produce (same pure function, same inputs), so cached
/// and uncached execution of the same query yield bitwise-identical hits.
/// Thread-safe; every operation takes one internal lock (annotated
/// core::Mutex, checked under -DSDTW_THREAD_SAFETY=ON).

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "retrieval/scratch.h"
#include "ts/time_series.h"

namespace sdtw {
namespace retrieval {

/// 64-bit FNV-1a over the sample count and the raw IEEE-754 bit patterns
/// of the samples. Bitwise content identity: +0.0 and -0.0 hash apart
/// (they compare equal, so a lookup across them just misses — a lost
/// reuse opportunity, never an error).
std::uint64_t ContentHash(std::span<const double> values);

/// \brief Thread-safe LRU of query-content -> derived QueryContext.
class QueryDerivativeCache {
 public:
  /// Capacity 0 disables the cache: lookups miss without counting,
  /// inserts are dropped.
  explicit QueryDerivativeCache(std::size_t capacity);

  bool enabled() const { return capacity_ > 0; }
  std::size_t capacity() const { return capacity_; }

  /// The cached context of a query with exactly these sample values, or
  /// nullptr (counted as hit/miss). A hit refreshes the entry's recency.
  std::shared_ptr<const QueryContext> Lookup(const ts::TimeSeries& query)
      SDTW_EXCLUDES(mu_);

  /// Caches `context` as the derivation of `query` (the caller guarantees
  /// context == MakeQueryContext(query)), evicting the least recently
  /// used entry when full. Inserting over an existing entry with the same
  /// content hash replaces it.
  void Insert(const ts::TimeSeries& query,
              std::shared_ptr<const QueryContext> context)
      SDTW_EXCLUDES(mu_);

  /// \brief Monotone counters (all-time, not per-window).
  struct Counters {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
  };
  Counters counters() const SDTW_EXCLUDES(mu_);
  std::size_t size() const SDTW_EXCLUDES(mu_);

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::vector<double> values;  // collision guard: verified on lookup
    std::shared_ptr<const QueryContext> context;
  };

  const std::size_t capacity_;
  mutable core::Mutex mu_;
  /// Front = most recently used; map points into the list.
  std::list<Entry> lru_ SDTW_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> by_hash_
      SDTW_GUARDED_BY(mu_);
  Counters counters_ SDTW_GUARDED_BY(mu_);
};

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_QUERY_CACHE_H_
