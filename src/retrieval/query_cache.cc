#include "retrieval/query_cache.h"

#include <bit>
#include <cstring>
#include <utility>

namespace sdtw {
namespace retrieval {

namespace {

/// FNV-1a 64-bit offset basis / prime (public-domain constants).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

inline std::uint64_t FnvMix(std::uint64_t h, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (word >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

bool SameValues(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return false;
  // Bitwise comparison (memcmp semantics), matching ContentHash: NaNs with
  // equal payloads compare equal here, and -0.0 != +0.0. Content identity,
  // not numeric equality.
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

std::uint64_t ContentHash(std::span<const double> values) {
  std::uint64_t h = FnvMix(kFnvOffset, values.size());
  for (double v : values) h = FnvMix(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

QueryDerivativeCache::QueryDerivativeCache(std::size_t capacity)
    : capacity_(capacity) {}

std::shared_ptr<const QueryContext> QueryDerivativeCache::Lookup(
    const ts::TimeSeries& query) {
  if (capacity_ == 0) return nullptr;
  const std::uint64_t hash = ContentHash(query.values());
  core::MutexLock lock(mu_);
  auto it = by_hash_.find(hash);
  if (it == by_hash_.end() || !SameValues(it->second->values, query.values())) {
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++counters_.hits;
  return it->second->context;
}

void QueryDerivativeCache::Insert(const ts::TimeSeries& query,
                                  std::shared_ptr<const QueryContext> context) {
  if (capacity_ == 0) return;
  const std::uint64_t hash = ContentHash(query.values());
  Entry entry;
  entry.hash = hash;
  entry.values.assign(query.values().begin(), query.values().end());
  entry.context = std::move(context);

  core::MutexLock lock(mu_);
  if (auto it = by_hash_.find(hash); it != by_hash_.end()) {
    // Same content re-derived by racing misses (or a colliding key —
    // either way the newest wins): replace in place, refresh recency.
    *it->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.insertions;
    return;
  }
  if (lru_.size() >= capacity_) {
    by_hash_.erase(lru_.back().hash);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(std::move(entry));
  by_hash_[hash] = lru_.begin();
  ++counters_.insertions;
}

QueryDerivativeCache::Counters QueryDerivativeCache::counters() const {
  core::MutexLock lock(mu_);
  return counters_;
}

std::size_t QueryDerivativeCache::size() const {
  core::MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace retrieval
}  // namespace sdtw
