#include "retrieval/service.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "retrieval/query_cache.h"

namespace sdtw {
namespace retrieval {

namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kNoDeadline = Clock::time_point::max();

BatchOptions WithExecutor(BatchOptions options, BatchExecutor* executor) {
  options.executor = executor;
  return options;
}

/// Bitwise content identity, matching query_cache.h's ContentHash /
/// lookup semantics (memcmp: NaN payloads equal-by-bits match, -0 != +0).
bool BitwiseEqual(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(std::size_t num_workers) {
  std::size_t n = num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    core::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Execute(const std::function<void(ScratchArena&)>& fn) {
  std::exception_ptr error;
  {
    core::UniqueLock lock(mu_);
    job_ = &fn;
    error_ = nullptr;
    running_ = threads_.size();
    ++generation_;
    work_cv_.NotifyAll();
    while (running_ > 0) done_cv_.Wait(lock);
    job_ = nullptr;
    error = std::exchange(error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void WorkerPool::WorkerMain() {
  // The arena is constructed on — and confined to — this worker thread
  // (scratch.h ownership model); it persists across Execute calls, which
  // is the whole point of the pool.
  ScratchArena arena;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(ScratchArena&)>* job = nullptr;
    {
      core::UniqueLock lock(mu_);
      while (!stop_ && generation_ == seen) work_cv_.Wait(lock);
      if (generation_ == seen) return;  // stopped with no unseen job
      seen = generation_;
      job = job_;
    }
    // An exception out of the job (organic, or injected at the worker
    // site) is captured for Execute to rethrow after every worker
    // finished — a faulting job can never kill a worker thread, and the
    // pool stays fully reusable for the next Execute.
    try {
      core::FaultInjector& faults = core::FaultInjector::Global();
      if (faults.armed()) {
        if (faults.ShouldFail(kFaultSiteWorkerStall)) {
          // Long enough for a watchdog configured with a small
          // watchdog_stall to observe the batch as stalled; short enough
          // to keep fault-matrix test runs quick.
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
        }
        if (faults.ShouldFail(kFaultSiteWorker)) {
          throw core::InjectedFault("injected fault at retrieval.worker");
        }
      }
      (*job)(arena);
    } catch (...) {
      core::MutexLock lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    {
      core::MutexLock lock(mu_);
      if (--running_ == 0) done_cv_.NotifyAll();
    }
  }
}

// ---------------------------------------------------------------------------
// QueryService

QueryService::QueryService(const KnnEngine& index, ServiceOptions options)
    : options_(std::move(options)),
      init_status_(ValidateOptions(options_)),
      pool_(options_.num_workers),
      engine_(index, WithExecutor(options_.batch, &pool_)),
      cache_(options_.cache_capacity),
      latency_(options_.latency_window),
      dispatcher_([this]() { DispatcherMain(); }) {
  if (options_.watchdog_interval.count() > 0) {
    watchdog_ = std::thread([this]() { WatchdogMain(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

core::Status QueryService::ValidateOptions(const ServiceOptions& options) {
  if (options.queue_capacity == 0) {
    return core::Status(
        core::StatusCode::kInvalidArgument,
        "ServiceOptions::queue_capacity must be >= 1 (a zero-capacity "
        "admission queue can never admit a request)");
  }
  if (options.max_batch == 0) {
    return core::Status(
        core::StatusCode::kInvalidArgument,
        "ServiceOptions::max_batch must be >= 1 (a zero-size batch can "
        "never ship a request)");
  }
  return core::Status::Ok();
}

std::optional<std::future<QueryService::Result>> QueryService::Submit(
    ts::TimeSeries query, std::size_t k, RequestOptions request) {
  // Fault site: a drawn failure refuses this admission outright —
  // exercised before any queue state is touched, like a resource check
  // that fails ahead of enqueueing.
  if (core::FaultInjector::Global().ShouldFail(kFaultSiteAdmission)) {
    core::MutexLock lock(mu_);
    ++rejected_;
    return std::nullopt;
  }

  Request req;
  req.query = std::move(query);
  req.k = k;
  req.submit_time = Clock::now();
  req.deadline = request.deadline;
  req.priority = request.priority;
  std::future<Result> future = req.promise.get_future();
  {
    core::UniqueLock lock(mu_);
    if (!init_status_.ok() || closed_) {
      ++rejected_;
      return std::nullopt;
    }
    if (options_.admission == AdmissionPolicy::kReject) {
      if (queue_.size() >= options_.queue_capacity) {
        ++rejected_;
        return std::nullopt;
      }
    } else {
      // Bounded park: backpressure, but never forever — a stalled
      // dispatcher must not wedge every client thread.
      const auto park_deadline = Clock::now() + options_.park_timeout;
      while (!closed_ && queue_.size() >= options_.queue_capacity) {
        if (space_cv_.WaitUntil(lock, park_deadline) ==
                std::cv_status::timeout &&
            queue_.size() >= options_.queue_capacity && !closed_) {
          ++park_timeouts_;
          ++rejected_;
          return std::nullopt;
        }
      }
      if (closed_) {
        ++rejected_;
        return std::nullopt;
      }
    }
    req.seq = next_seq_++;
    // EDF insert: ascending (deadline, -priority, seq). No-deadline
    // requests carry time_point::max() and therefore sort after every
    // dated one; all-default submissions degenerate to pure seq order,
    // i.e. exact FIFO. Expired requests cluster at the front, which is
    // what lets NextBatch shed them by popping the head.
    const auto edf_before = [](const Request& a, const Request& b) {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq < b.seq;
    };
    queue_.insert(
        std::upper_bound(queue_.begin(), queue_.end(), req, edf_before),
        std::move(req));
    ++submitted_;
  }
  queue_cv_.NotifyOne();
  return future;
}

QueryService::Result QueryService::Query(const ts::TimeSeries& query,
                                         std::size_t k,
                                         RequestOptions request) {
  auto future = Submit(query, k, request);
  if (!future.has_value()) {
    if (!init_status_.ok()) return init_status_;
    return core::Status(core::StatusCode::kUnavailable,
                        "request was not admitted");
  }
  return future->get();
}

void QueryService::Shutdown() {
  {
    core::MutexLock lock(mu_);
    closed_ = true;
  }
  queue_cv_.NotifyAll();  // wake the dispatcher to drain and exit
  space_cv_.NotifyAll();  // release blocked submitters
  if (dispatcher_.joinable()) dispatcher_.join();
  // Only after the drain: in-flight batches must stay watched.
  {
    core::MutexLock lock(mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.NotifyAll();
  if (watchdog_.joinable()) watchdog_.join();
}

ServiceMetrics QueryService::metrics() const {
  ServiceMetrics m;
  {
    core::MutexLock lock(mu_);
    m.submitted = submitted_;
    m.rejected = rejected_;
    m.completed = completed_;
    m.ok = ok_;
    m.failed = failed_;
    m.batches = batches_;
    m.coalesced = coalesced_;
    m.shed = shed_;
    m.deadline_exceeded = deadline_exceeded_;
    m.worker_faults = worker_faults_;
    m.retries = retries_;
    m.park_timeouts = park_timeouts_;
    m.watchdog_stalls = watchdog_stalls_;
  }
  m.latency = latency_.Snapshot();
  m.cache = cache_.counters();
  return m;
}

void QueryService::DispatcherMain() {
  for (;;) {
    std::vector<Request> batch = NextBatch();
    if (batch.empty()) return;  // closed and fully drained
    ExecuteBatch(std::move(batch));
  }
}

void QueryService::WatchdogMain() {
  core::UniqueLock lock(mu_);
  while (!watchdog_stop_) {
    const auto wake = Clock::now() + options_.watchdog_interval;
    while (!watchdog_stop_ &&
           watchdog_cv_.WaitUntil(lock, wake) != std::cv_status::timeout) {
    }
    if (watchdog_stop_) return;
    // One count per in-flight batch: a batch that stays stalled across
    // several scan periods is one stall, not one per scan.
    if (executing_batch_ != 0 && executing_batch_ != last_stalled_batch_ &&
        Clock::now() - executing_since_ >= options_.watchdog_stall) {
      ++watchdog_stalls_;
      last_stalled_batch_ = executing_batch_;
    }
  }
}

std::vector<QueryService::Request> QueryService::NextBatch() {
  for (;;) {
    std::vector<Request> shed;
    std::vector<Request> batch;
    bool drained = false;
    {
      core::UniqueLock lock(mu_);
      while (!closed_ && queue_.empty()) queue_cv_.Wait(lock);
      if (queue_.empty()) {
        drained = true;  // closed_, nothing left to drain
      } else {
        // Shed-without-scanning: EDF order clusters expired requests at
        // the queue head, so shedding is pop-while-expired. Their futures
        // resolve with kDeadlineExceeded below, outside the lock; no DP
        // evaluation ever runs for them.
        const auto expired = [](const Request& r, Clock::time_point now) {
          return r.deadline != kNoDeadline && r.deadline <= now;
        };
        const auto shed_head = [&]() SDTW_REQUIRES(mu_) {
          const auto now = Clock::now();
          while (!queue_.empty() && expired(queue_.front(), now)) {
            shed.push_back(std::move(queue_.front()));
            queue_.pop_front();
          }
        };
        shed_head();
        if (!queue_.empty() && !closed_) {
          // The batch ships when it fills, when the oldest queued request
          // has waited max_delay, or when the most urgent queued deadline
          // is within max_delay of now — an imminent deadline must not
          // sit out the full age trigger. After close we skip straight to
          // the cut; draining must not dawdle.
          const auto cut_deadline = [&]() SDTW_REQUIRES(mu_) {
            const std::size_t probe =
                std::min(queue_.size(), options_.max_batch);
            auto oldest = queue_.front().submit_time;
            for (std::size_t i = 1; i < probe; ++i) {
              oldest = std::min(oldest, queue_[i].submit_time);
            }
            auto cut = oldest + options_.max_delay;
            if (queue_.front().deadline != kNoDeadline) {
              cut = std::min(cut, queue_.front().deadline - options_.max_delay);
            }
            return cut;
          };
          while (!closed_ && queue_.size() < options_.max_batch) {
            if (queue_cv_.WaitUntil(lock, cut_deadline()) ==
                std::cv_status::timeout) {
              break;
            }
          }
          shed_head();  // deadlines that lapsed while we coalesced
        }
        const std::size_t take =
            std::min(queue_.size(), options_.max_batch);
        for (std::size_t i = 0; i < take; ++i) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        if (!batch.empty()) ++batches_;
        shed_ += shed.size();
        deadline_exceeded_ += shed.size();
        completed_ += shed.size();
        if (!shed.empty() || !batch.empty()) space_cv_.NotifyAll();
      }
    }
    // Fulfilment outside the lock: set_value can run caller continuations
    // we must not execute under mu_.
    for (Request& r : shed) {
      r.promise.set_value(core::Status(
          core::StatusCode::kDeadlineExceeded,
          "deadline passed while queued; request shed before evaluation"));
    }
    if (drained) return {};
    if (!batch.empty()) return batch;
    // Everything queued had expired and was shed; wait for new work.
  }
}

core::StatusOr<QueryService::Hits> QueryService::RunGroupIsolated(
    const ts::TimeSeries& rep, const QueryContext* context,
    std::size_t kmax) {
  const QueryContext* contexts[1] = {context};
  std::chrono::microseconds prev = options_.retry_base;
  core::Status last(core::StatusCode::kWorkerFault, "no attempt ran");
  for (std::size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter (sleep ~ U(base, 3 * previous), capped):
      // repeated offenders spread out instead of hammering in lockstep.
      // Timing only — results never depend on the draw. No lock is held
      // across this sleep.
      const auto base = options_.retry_base.count();
      const auto cap = options_.retry_cap.count();
      std::uniform_int_distribution<std::chrono::microseconds::rep> jitter(
          base, std::max(base, 3 * prev.count()));
      prev = std::chrono::microseconds(
          std::min(cap, jitter(backoff_rng_)));
      if (prev.count() > 0) std::this_thread::sleep_for(prev);
    }
    {
      core::MutexLock lock(mu_);
      ++retries_;
    }
    auto result = engine_.TryQueryBatchWithContexts(
        std::span<const ts::TimeSeries>(&rep, 1),
        std::span<const QueryContext* const>(contexts, 1), kmax);
    if (result.ok()) return std::move((*result)[0]);
    last = result.status();
    core::MutexLock lock(mu_);
    ++worker_faults_;
  }
  return core::Status(
      core::StatusCode::kWorkerFault,
      "retries exhausted isolating a poisoned batch; last error: " +
          last.ToString());
}

void QueryService::ExecuteBatch(std::vector<Request> batch) {
  {
    core::MutexLock lock(mu_);
    executing_batch_ = batches_;  // NextBatch bumped it; unique, nonzero
    executing_since_ = Clock::now();
  }

  // Coalesce bitwise-identical queries: one scan per distinct content at
  // the largest k requested in the batch, truncated per request below.
  // Hash buckets hold group ids; equality is verified by value so a
  // collision splits into separate groups, never merges distinct queries.
  struct Group {
    std::size_t rep;                   // first occurrence, index into batch
    std::vector<std::size_t> members;  // all occurrences, in arrival order
  };
  std::vector<Group> groups;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  std::size_t kmax = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    kmax = std::max(kmax, batch[i].k);
    const std::uint64_t hash = ContentHash(batch[i].query.values());
    std::vector<std::size_t>& bucket = by_hash[hash];
    std::size_t gid = groups.size();
    for (std::size_t candidate : bucket) {
      if (BitwiseEqual(batch[groups[candidate].rep].query.values(),
                       batch[i].query.values())) {
        gid = candidate;
        break;
      }
    }
    if (gid == groups.size()) {
      bucket.push_back(gid);
      groups.push_back(Group{i, {}});
    }
    groups[gid].members.push_back(i);
  }

  // One Result per group; every member shares its group's fate.
  std::vector<core::StatusOr<Hits>> group_results;
  group_results.reserve(groups.size());
  if (kmax > 0) {
    // One representative query per group; cached derivative contexts are
    // replayed (and misses derived + inserted) so repeated queries skip
    // phase-1 work across batches too, not just within one.
    std::vector<ts::TimeSeries> reps;
    reps.reserve(groups.size());
    for (const Group& g : groups) reps.push_back(batch[g.rep].query);
    std::vector<std::shared_ptr<const QueryContext>> keep_alive(groups.size());
    std::vector<const QueryContext*> contexts(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      keep_alive[g] = cache_.Lookup(reps[g]);
      if (keep_alive[g] == nullptr &&
          !core::FaultInjector::Global().ShouldFail(kFaultSiteCacheFill)) {
        auto fresh = std::make_shared<const QueryContext>(
            engine_.MakeQueryContext(reps[g]));
        cache_.Insert(reps[g], fresh);
        keep_alive[g] = std::move(fresh);
      }
      // A faulted fill degrades, never corrupts: nothing was inserted
      // (the cache cannot serve a context from a faulted fill) and the
      // null entry makes the engine derive internally — same hits,
      // phase-1 work paid once more.
      contexts[g] = keep_alive[g].get();
    }
    auto result = engine_.TryQueryBatchWithContexts(reps, contexts, kmax);
    if (result.ok()) {
      for (auto& hits : *result) group_results.push_back(std::move(hits));
    } else {
      // Poisoned batch: one faulting worker voided every group's scan.
      // Isolate by re-running each group individually — the engine holds
      // no state across calls and every completed scan is bitwise
      // deterministic, so a retried group returns exactly what a
      // fault-free batch would have; only repeat offenders fail, and
      // they fail alone.
      {
        core::MutexLock lock(mu_);
        ++worker_faults_;
      }
      for (std::size_t g = 0; g < groups.size(); ++g) {
        group_results.push_back(
            RunGroupIsolated(reps[g], contexts[g], kmax));
      }
    }
  } else {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      group_results.push_back(Hits{});
    }
  }

  // Book-keeping first, fulfilment second: a caller whose future has
  // resolved must already be visible in metrics() (completed count,
  // latency sample), so counters never lag behind delivered results.
  // Latency samples cover successful requests only — failure-path timing
  // (retry backoff above all) says nothing about serving latency.
  const auto done = Clock::now();
  std::size_t n_ok = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!group_results[g].ok()) continue;
    for (std::size_t member : groups[g].members) {
      latency_.Record(std::chrono::duration<double, std::micro>(
                          done - batch[member].submit_time)
                          .count());
      ++n_ok;
    }
  }
  {
    core::MutexLock lock(mu_);
    completed_ += batch.size();
    ok_ += n_ok;
    failed_ += batch.size() - n_ok;
    coalesced_ += batch.size() - groups.size();
    executing_batch_ = 0;  // watchdog: nothing in flight
  }

  // Fulfil every request with the first min(k, |hits|) of its group's
  // list — bitwise what a dedicated scan at that k would return, because
  // the k smallest (distance, index) pairs are a prefix of the kmax
  // smallest — or with its group's failure status.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t member : groups[g].members) {
      Request& req = batch[member];
      if (!group_results[g].ok()) {
        req.promise.set_value(group_results[g].status());
        continue;
      }
      const Hits& hits = *group_results[g];
      const std::size_t take = std::min(req.k, hits.size());
      Hits result(hits.begin(),
                  hits.begin() + static_cast<std::ptrdiff_t>(take));
      req.promise.set_value(std::move(result));
    }
  }
}

}  // namespace retrieval
}  // namespace sdtw
