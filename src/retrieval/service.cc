#include "retrieval/service.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "retrieval/query_cache.h"

namespace sdtw {
namespace retrieval {

namespace {

using Clock = std::chrono::steady_clock;

ServiceOptions NormalizeOptions(ServiceOptions options) {
  if (options.max_batch == 0) options.max_batch = 1;
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  return options;
}

BatchOptions WithExecutor(BatchOptions options, BatchExecutor* executor) {
  options.executor = executor;
  return options;
}

/// Bitwise content identity, matching query_cache.h's ContentHash /
/// lookup semantics (memcmp: NaN payloads equal-by-bits match, -0 != +0).
bool BitwiseEqual(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(std::size_t num_workers) {
  std::size_t n = num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this]() { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    core::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Execute(const std::function<void(ScratchArena&)>& fn) {
  core::UniqueLock lock(mu_);
  job_ = &fn;
  running_ = threads_.size();
  ++generation_;
  work_cv_.NotifyAll();
  while (running_ > 0) done_cv_.Wait(lock);
  job_ = nullptr;
}

void WorkerPool::WorkerMain() {
  // The arena is constructed on — and confined to — this worker thread
  // (scratch.h ownership model); it persists across Execute calls, which
  // is the whole point of the pool.
  ScratchArena arena;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(ScratchArena&)>* job = nullptr;
    {
      core::UniqueLock lock(mu_);
      while (!stop_ && generation_ == seen) work_cv_.Wait(lock);
      if (generation_ == seen) return;  // stopped with no unseen job
      seen = generation_;
      job = job_;
    }
    (*job)(arena);
    {
      core::MutexLock lock(mu_);
      if (--running_ == 0) done_cv_.NotifyAll();
    }
  }
}

// ---------------------------------------------------------------------------
// QueryService

QueryService::QueryService(const KnnEngine& index, ServiceOptions options)
    : options_(NormalizeOptions(std::move(options))),
      pool_(options_.num_workers),
      engine_(index, WithExecutor(options_.batch, &pool_)),
      cache_(options_.cache_capacity),
      latency_(options_.latency_window),
      dispatcher_([this]() { DispatcherMain(); }) {}

QueryService::~QueryService() { Shutdown(); }

std::optional<std::future<QueryService::Result>> QueryService::Submit(
    ts::TimeSeries query, std::size_t k) {
  Request req;
  req.query = std::move(query);
  req.k = k;
  req.submit_time = Clock::now();
  std::future<Result> future = req.promise.get_future();
  {
    core::UniqueLock lock(mu_);
    if (options_.admission == AdmissionPolicy::kReject) {
      if (closed_ || queue_.size() >= options_.queue_capacity) {
        ++rejected_;
        return std::nullopt;
      }
    } else {
      while (!closed_ && queue_.size() >= options_.queue_capacity) {
        space_cv_.Wait(lock);
      }
      if (closed_) {
        ++rejected_;
        return std::nullopt;
      }
    }
    queue_.push_back(std::move(req));
    ++submitted_;
  }
  queue_cv_.NotifyOne();
  return future;
}

QueryService::Result QueryService::Query(const ts::TimeSeries& query,
                                         std::size_t k) {
  auto future = Submit(query, k);
  if (!future.has_value()) return {};
  return future->get();
}

void QueryService::Shutdown() {
  {
    core::MutexLock lock(mu_);
    closed_ = true;
  }
  queue_cv_.NotifyAll();  // wake the dispatcher to drain and exit
  space_cv_.NotifyAll();  // release blocked submitters
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServiceMetrics QueryService::metrics() const {
  ServiceMetrics m;
  {
    core::MutexLock lock(mu_);
    m.submitted = submitted_;
    m.rejected = rejected_;
    m.completed = completed_;
    m.batches = batches_;
    m.coalesced = coalesced_;
  }
  m.latency = latency_.Snapshot();
  m.cache = cache_.counters();
  return m;
}

void QueryService::DispatcherMain() {
  for (;;) {
    std::vector<Request> batch = NextBatch();
    if (batch.empty()) return;  // closed and fully drained
    ExecuteBatch(std::move(batch));
  }
}

std::vector<QueryService::Request> QueryService::NextBatch() {
  core::UniqueLock lock(mu_);
  while (!closed_ && queue_.empty()) queue_cv_.Wait(lock);
  if (queue_.empty()) return {};  // closed_, nothing left to drain
  if (!closed_) {
    // Deadline trigger: the batch ships when the *oldest* request has
    // waited max_delay, so no admitted query ever waits longer than that
    // for dispatch; the size trigger cuts earlier under pressure. After
    // close we skip straight to the cut — draining must not dawdle.
    const auto deadline = queue_.front().submit_time + options_.max_delay;
    while (!closed_ && queue_.size() < options_.max_batch &&
           queue_cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
    }
  }
  const std::size_t take = std::min(queue_.size(), options_.max_batch);
  std::vector<Request> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++batches_;
  space_cv_.NotifyAll();
  return batch;
}

void QueryService::ExecuteBatch(std::vector<Request> batch) {
  // Coalesce bitwise-identical queries: one scan per distinct content at
  // the largest k requested in the batch, truncated per request below.
  // Hash buckets hold group ids; equality is verified by value so a
  // collision splits into separate groups, never merges distinct queries.
  struct Group {
    std::size_t rep;                   // first occurrence, index into batch
    std::vector<std::size_t> members;  // all occurrences, in arrival order
  };
  std::vector<Group> groups;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_hash;
  std::size_t kmax = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    kmax = std::max(kmax, batch[i].k);
    const std::uint64_t hash = ContentHash(batch[i].query.values());
    std::vector<std::size_t>& bucket = by_hash[hash];
    std::size_t gid = groups.size();
    for (std::size_t candidate : bucket) {
      if (BitwiseEqual(batch[groups[candidate].rep].query.values(),
                       batch[i].query.values())) {
        gid = candidate;
        break;
      }
    }
    if (gid == groups.size()) {
      bucket.push_back(gid);
      groups.push_back(Group{i, {}});
    }
    groups[gid].members.push_back(i);
  }

  std::vector<std::vector<Hit>> hits(groups.size());
  if (kmax > 0) {
    // One representative query per group; cached derivative contexts are
    // replayed (and misses derived + inserted) so repeated queries skip
    // phase-1 work across batches too, not just within one.
    std::vector<ts::TimeSeries> reps;
    reps.reserve(groups.size());
    for (const Group& g : groups) reps.push_back(batch[g.rep].query);
    std::vector<std::shared_ptr<const QueryContext>> keep_alive(groups.size());
    std::vector<const QueryContext*> contexts(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
      keep_alive[g] = cache_.Lookup(reps[g]);
      if (keep_alive[g] == nullptr) {
        auto fresh =
            std::make_shared<const QueryContext>(engine_.MakeQueryContext(reps[g]));
        cache_.Insert(reps[g], fresh);
        keep_alive[g] = std::move(fresh);
      }
      contexts[g] = keep_alive[g].get();
    }
    hits = engine_.QueryBatchWithContexts(reps, contexts, kmax);
  }

  // Book-keeping first, fulfilment second: a caller whose future has
  // resolved must already be visible in metrics() (completed count,
  // latency sample), so counters never lag behind delivered results.
  const auto done = Clock::now();
  for (const Request& req : batch) {
    latency_.Record(
        std::chrono::duration<double, std::micro>(done - req.submit_time)
            .count());
  }
  {
    core::MutexLock lock(mu_);
    completed_ += batch.size();
    coalesced_ += batch.size() - groups.size();
  }

  // Fulfil every request with the first min(k, |hits|) of its group's
  // list — bitwise what a dedicated scan at that k would return, because
  // the k smallest (distance, index) pairs are a prefix of the kmax
  // smallest.
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::size_t member : groups[g].members) {
      Request& req = batch[member];
      const std::size_t take = std::min(req.k, hits[g].size());
      Result result(hits[g].begin(),
                    hits[g].begin() + static_cast<std::ptrdiff_t>(take));
      req.promise.set_value(std::move(result));
    }
  }
}

}  // namespace retrieval
}  // namespace sdtw
