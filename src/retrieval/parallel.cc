#include "retrieval/parallel.h"

#include <atomic>
#include <thread>

namespace sdtw {
namespace retrieval {

std::vector<double> ParallelPairwiseMatrix(std::size_t n,
                                           const PairDistanceFn& distance,
                                           std::size_t num_threads) {
  std::vector<double> matrix(n * n, 0.0);
  if (n < 2) return matrix;

  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Flatten the upper triangle into a single work counter.
  const std::size_t total_pairs = n * (n - 1) / 2;
  std::atomic<std::size_t> next{0};

  auto worker = [&]() {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= total_pairs) return;
      // Invert the triangular index t -> (i, j), j > i.
      // Row i holds (n-1-i) pairs; walk rows until t fits.
      std::size_t i = 0;
      std::size_t remaining = t;
      std::size_t row_len = n - 1;
      while (remaining >= row_len) {
        remaining -= row_len;
        ++i;
        --row_len;
      }
      const std::size_t j = i + 1 + remaining;
      const double d = distance(i, j);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  };

  if (num_threads == 1) {
    worker();
    return matrix;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) t.join();
  return matrix;
}

}  // namespace retrieval
}  // namespace sdtw
