#include "retrieval/parallel.h"

#include <atomic>
#include <cmath>
#include <thread>

namespace sdtw {
namespace retrieval {

namespace {

// Number of strict-upper-triangle pairs in rows before row i (row-major):
// B(i) = sum_{r<i} (n-1-r) = i*(2n-i-1)/2.
std::size_t PairsBeforeRow(std::size_t n, std::size_t i) {
  return i * (2 * n - i - 1) / 2;
}

// Closed-form inverse of the flattened triangular index: the row of pair t
// is the largest i with B(i) <= t, i.e. the floor of the smaller root of
// i^2 - (2n-1)i + 2t = 0. The sqrt is exact enough in double for any
// realistic n ((2n-1)^2 < 2^53); the one-step correction loops absorb
// rounding at the boundaries.
std::pair<std::size_t, std::size_t> UnflattenPairIndex(std::size_t n,
                                                       std::size_t t) {
  const double b = static_cast<double>(2 * n - 1);
  const double disc = std::sqrt(b * b - 8.0 * static_cast<double>(t));
  std::size_t i = static_cast<std::size_t>((b - disc) / 2.0);
  if (i > n - 2) i = n - 2;
  while (i > 0 && PairsBeforeRow(n, i) > t) --i;
  while (i < n - 2 && PairsBeforeRow(n, i + 1) <= t) ++i;
  const std::size_t j = i + 1 + (t - PairsBeforeRow(n, i));
  return {i, j};
}

}  // namespace

std::vector<double> ParallelPairwiseMatrix(std::size_t n,
                                           const PairDistanceFn& distance,
                                           std::size_t num_threads) {
  std::vector<double> matrix(n * n, 0.0);
  if (n < 2) return matrix;

  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Flatten the upper triangle into a single work counter. Concurrency
  // model: the atomic counter hands every pair index t to exactly one
  // worker, and distinct t map to distinct (i, j) cells (UnflattenPairIndex
  // is a bijection onto the strict upper triangle), so all matrix writes
  // are disjoint — no lock, nothing for a guarded_by annotation to guard;
  // the joins below publish the writes to the caller.
  const std::size_t total_pairs = n * (n - 1) / 2;
  std::atomic<std::size_t> next{0};

  auto worker = [&]() {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= total_pairs) return;
      const auto [i, j] = UnflattenPairIndex(n, t);
      const double d = distance(i, j);
      matrix[i * n + j] = d;
      matrix[j * n + i] = d;
    }
  };

  if (num_threads == 1) {
    worker();
    return matrix;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back(worker);
  }
  for (std::thread& t : threads) t.join();
  return matrix;
}

}  // namespace retrieval
}  // namespace sdtw
