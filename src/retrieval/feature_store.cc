#include "retrieval/feature_store.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace sdtw {
namespace retrieval {

namespace {
constexpr char kHeader[] = "sdtw-features v1";
}  // namespace

void WriteFeatures(std::ostream& out, const FeatureSets& features) {
  out << kHeader << '\n';
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < features.size(); ++i) {
    out << "series " << i << ' ' << features[i].size() << '\n';
    for (const sift::Keypoint& kp : features[i]) {
      out << "kp " << kp.position << ' ' << kp.sigma << ' ' << kp.octave
          << ' ' << kp.level << ' ' << kp.response << ' ' << kp.amplitude;
      for (double d : kp.descriptor) out << ' ' << d;
      out << '\n';
    }
  }
  out << "end\n";
}

std::optional<FeatureSets> ReadFeatures(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;
  FeatureSets features;
  std::size_t expected = 0;   // keypoints still expected in current series
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream iss(line);
    std::string tag;
    iss >> tag;
    if (tag == "series") {
      if (expected != 0) return std::nullopt;  // previous record truncated
      std::size_t index = 0, count = 0;
      if (!(iss >> index >> count)) return std::nullopt;
      if (index != features.size()) return std::nullopt;
      features.emplace_back();
      features.back().reserve(count);
      expected = count;
    } else if (tag == "kp") {
      if (features.empty() || expected == 0) return std::nullopt;
      sift::Keypoint kp;
      if (!(iss >> kp.position >> kp.sigma >> kp.octave >> kp.level >>
            kp.response >> kp.amplitude)) {
        return std::nullopt;
      }
      double v = 0.0;
      while (iss >> v) kp.descriptor.push_back(v);
      if (!iss.eof()) return std::nullopt;  // malformed number
      features.back().push_back(std::move(kp));
      --expected;
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_end || expected != 0) return std::nullopt;
  return features;
}

bool WriteFeaturesFile(const std::string& path, const FeatureSets& features) {
  std::ofstream out(path);
  if (!out) return false;
  WriteFeatures(out, features);
  return static_cast<bool>(out);
}

std::optional<FeatureSets> ReadFeaturesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ReadFeatures(in);
}

}  // namespace retrieval
}  // namespace sdtw
