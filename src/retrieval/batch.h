#ifndef SDTW_RETRIEVAL_BATCH_H_
#define SDTW_RETRIEVAL_BATCH_H_

/// \file batch.h
/// \brief Batched multi-query kNN retrieval over a KnnEngine index.
///
/// The single-query engine answers one query at a time and pays the
/// cascade set-up (query summary, envelope, feature extraction) plus DP
/// scratch allocation per call. BatchKnnEngine executes a whole batch of
/// queries against one index in a single pass:
///
///  * per-query derivatives (SeriesStats, Keogh envelope, salient
///    features) are computed exactly once up front (QueryContext);
///  * each worker thread owns one ScratchArena whose rolling DTW rows are
///    sized once to the widest requirement across the index — the hot
///    query×candidate loop performs no DP allocation;
///  * the query×candidate grid is chunked and distributed over workers by
///    an atomic work counter (the same work-stealing scheme as
///    ParallelPairwiseMatrix), and every query's best-so-far is a shared
///    atomic that tightens as workers race, so the LB_Kim → LB_Keogh →
///    early-abandoning-DP cascade prunes across threads;
///  * within each chunk, candidates are visited in ascending cached LB_Kim
///    order by default (KnnOptions::visit_order): the O(1) bound for every
///    candidate of the chunk is computed first, the chunk is sorted, and
///    the Keogh→DP cascade then runs cheapest-first, so near neighbours
///    tighten the shared best-so-far before the expensive tail is visited
///    and most DPs are pruned before they start.
///    VisitOrder::kGlobalLowerBound instead presorts each query's whole
///    candidate set once in phase 1 and lets chunks slice that global
///    schedule — same hits, one O(N log N) sort per query, ordering that
///    survives arbitrarily small chunks;
///  * LB_Keogh passes accumulate with cumulative abandoning against the
///    best-so-far (dtw::LbKeoghAbandoning): identical prune decisions,
///    but the O(n) bound computation itself stops once settled (counted
///    in QueryStats::lb_keogh_abandoned).
///
/// Thread-safety model (statically checked under -DSDTW_THREAD_SAFETY=ON
/// with Clang — see core/thread_annotations.h): each in-flight query owns
/// one core::Mutex guarding its top-k heap and cascade counters, its
/// best-so-far is a monotone atomic readable without the lock, per-query
/// derivatives are written in phase 1 and read-only once the workers
/// rejoin, and every worker thread exclusively owns one ScratchArena
/// (scratch.h) for the lifetime of the batch. BatchKnnEngine itself is
/// const/stateless per call, so concurrent QueryBatch calls on one engine
/// are safe.
///
/// Results are deterministic regardless of thread count, completion order,
/// and visit order: hits are the k smallest (distance, index) pairs,
/// exactly what the sequential in-index-order scan produces — every prune
/// is conservative (a candidate is only discarded when a sound lower bound
/// of its distance, or its exact distance, already exceeds the racing
/// best-so-far, which is itself an upper bound of the final k-th best), so
/// reordering changes only *how many* DPs run, never the hit lists. The
/// single-query KnnEngine::Query is a batch-of-one wrapper over this
/// engine, so the cascade logic lives here and only here.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/status.h"
#include "retrieval/knn.h"
#include "retrieval/scratch.h"

namespace sdtw {
namespace retrieval {

/// \brief How the phase-2 scheduler splits one query's candidate schedule
/// into work chunks.
enum class ChunkBalance {
  /// Equal candidate *count* per chunk (the PR-3 scheme). Under a sorted
  /// global schedule this is systematically unbalanced: the first chunk
  /// holds the near (low-LB_Kim) candidates, which are exactly the ones
  /// that survive the cascade into full DPs, so one worker does most of
  /// the DP work while the rest race through cheap prunes.
  kCandidateCount,
  /// Equal expected *cost* per chunk under VisitOrder::kGlobalLowerBound:
  /// each candidate is weighted by a monotone-decreasing function of its
  /// LB_Kim (near candidates are the expensive ones) and chunk boundaries
  /// are placed where cumulative weight crosses equal fractions of the
  /// total. Orders without a precomputed global schedule fall back to
  /// kCandidateCount. Pure scheduling: hit lists are bitwise identical to
  /// kCandidateCount under any thread count — only which worker does which
  /// work moves.
  kLbMass,
};

/// \brief Execution knobs of the batch engine.
struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency. 1 runs inline on the
  /// calling thread (no thread is spawned). Ignored when `executor` is
  /// set (the executor supplies the workers).
  std::size_t num_threads = 0;
  /// Candidates per work unit; 0 derives a chunking that yields at least
  /// ~4 units per worker while never splitting a query that does not need
  /// splitting for load balance.
  std::size_t chunk_size = 0;
  /// Chunk boundary placement within one query's schedule; see
  /// ChunkBalance. Scheduling only, never results.
  ChunkBalance chunk_balance = ChunkBalance::kLbMass;
  /// Row-kernel variant every worker's DP runs with; nullptr selects the
  /// process-wide ActiveRowKernelOps(). Variants are bit-identical, so
  /// hit lists do not depend on this — it exists for benchmarking and for
  /// the forced-variant test matrix.
  const dtw::RowKernelOps* kernel = nullptr;
  /// Persistent worker supply (non-owning; must outlive the engine's
  /// calls). When set, every phase runs on the executor's workers and
  /// their long-lived arenas instead of freshly spawned threads — the
  /// cross-batch scratch-reuse hook the retrieval service is built on.
  BatchExecutor* executor = nullptr;
};

/// \brief One retrieval hit with its recovered warp path.
///
/// Produced by QueryBatchWithAlignments: the batch runs distance-only (so
/// the cascade prunes at full strength), then only the final k winners per
/// query are re-aligned — full DTW with backtracking for kFullDtw,
/// core::Sdtw::CompareEarlyAbandon in path mode for kSdtw (same band, same
/// DP values, abandon threshold pinned to the already-known distance so the
/// re-run can never abandon), and the pointwise diagonal for the
/// equal-length kEuclidean / kL1 baselines.
struct AlignedHit {
  Hit hit;
  std::vector<dtw::PathPoint> path;
};

/// \brief A batch executor over an indexed KnnEngine.
///
/// Holds a non-owning view of the engine: the engine must outlive the
/// executor, and re-indexing the engine invalidates it. Construction is
/// O(1); all state lives per call.
class BatchKnnEngine {
 public:
  explicit BatchKnnEngine(const KnnEngine& index, BatchOptions options = {});

  const BatchOptions& options() const { return options_; }
  /// Number of indexed candidate series.
  std::size_t size() const;

  /// Returns, for every query, its k nearest indexed series in ascending
  /// (distance, index) order. `stats` (when non-null) receives one
  /// QueryStats per query with the cascade counters summing exactly to
  /// the candidates scanned for that query.
  std::vector<std::vector<Hit>> QueryBatch(
      std::span<const ts::TimeSeries> queries, std::size_t k,
      std::vector<QueryStats>* stats = nullptr) const;

  /// As above with a per-query exclusion (leave-one-out evaluation):
  /// excludes[q], when set, is an index never reported for query q.
  /// `excludes` must be empty or match the batch size.
  std::vector<std::vector<Hit>> QueryBatch(
      std::span<const ts::TimeSeries> queries, std::size_t k,
      std::span<const std::optional<std::size_t>> excludes,
      std::vector<QueryStats>* stats = nullptr) const;

  /// The per-query derivative work of phase 1 (SeriesStats, Keogh
  /// envelope, salient features), exposed so a caching front-end can
  /// compute a query's context once and replay it across batches. Pure
  /// function of the query values and the engine configuration: a cached
  /// context is bit-identical to a freshly derived one, so replaying it
  /// cannot change hits.
  QueryContext MakeQueryContext(const ts::TimeSeries& query) const;

  /// QueryBatch with caller-supplied derivative contexts: contexts[q],
  /// when non-null, must be MakeQueryContext(queries[q]) (possibly cached
  /// from an earlier batch) and is used in place of the phase-1
  /// derivation; null entries (or an empty span) are derived internally
  /// as usual. Pointees must stay valid for the duration of the call.
  /// Hits are bitwise identical to the plain QueryBatch.
  std::vector<std::vector<Hit>> QueryBatchWithContexts(
      std::span<const ts::TimeSeries> queries,
      std::span<const QueryContext* const> contexts, std::size_t k,
      std::vector<QueryStats>* stats = nullptr) const;

  /// QueryBatchWithContexts with failures as values instead of
  /// exceptions: anything thrown during the scan — a worker fault on a
  /// caller-supplied BatchExecutor (e.g. one injected at the service's
  /// retrieval.worker site), or an exception transported out of an
  /// internally spawned worker — comes back as
  /// StatusCode::kWorkerFault (kUnknown for a non-std::exception throw).
  /// The engine is stateless per call, so a failed call leaves it fully
  /// usable; on ok() the hits are exactly QueryBatchWithContexts'.
  core::StatusOr<std::vector<std::vector<Hit>>> TryQueryBatchWithContexts(
      std::span<const ts::TimeSeries> queries,
      std::span<const QueryContext* const> contexts, std::size_t k,
      std::vector<QueryStats>* stats = nullptr) const;

  /// QueryBatch plus alignment recovery: identical hits (same distances,
  /// same cascade, same pruning — the batch itself runs distance-only),
  /// each carrying the optimal warp path of the query against that
  /// candidate. Paths are recomputed for the final k winners only, so the
  /// extra cost is at most num_queries × k path-mode comparisons — nearly
  /// free next to the pruned scan. `stats` counters cover the distance
  /// scan; the recovery re-runs are not counted as extra DP evaluations.
  std::vector<std::vector<AlignedHit>> QueryBatchWithAlignments(
      std::span<const ts::TimeSeries> queries, std::size_t k,
      std::vector<QueryStats>* stats = nullptr) const;
  std::vector<std::vector<AlignedHit>> QueryBatchWithAlignments(
      std::span<const ts::TimeSeries> queries, std::size_t k,
      std::span<const std::optional<std::size_t>> excludes,
      std::vector<QueryStats>* stats = nullptr) const;

  /// Majority-vote kNN classification of every query (VoteLabel over the
  /// QueryBatch hits); -1 for a query with no hits. Deterministic: ties
  /// resolve by the smaller summed distance, then the smaller label,
  /// regardless of worker completion order.
  std::vector<int> ClassifyBatch(std::span<const ts::TimeSeries> queries,
                                 std::size_t k) const;
  std::vector<int> ClassifyBatch(
      std::span<const ts::TimeSeries> queries, std::size_t k,
      std::span<const std::optional<std::size_t>> excludes,
      std::vector<QueryStats>* stats = nullptr) const;

  /// Leave-one-out classification accuracy over the indexed set — the
  /// whole index is one batch, each series excluding itself. `aggregate`
  /// (when non-null) receives the cascade counters summed over all
  /// queries, e.g. for prune-rate reporting.
  double LeaveOneOutAccuracy(std::size_t k,
                             QueryStats* aggregate = nullptr) const;

 private:
  QueryContext MakeContext(const ts::TimeSeries& query) const;

  /// QueryBatch body; when `contexts_out` is non-null it receives the
  /// per-query contexts (moved) so alignment recovery can reuse the cached
  /// query features instead of re-extracting them. `preset_contexts`
  /// (empty, or one pointer per query with nulls meaning "derive here")
  /// replaces phase-1 derivation per query; it is mutually exclusive with
  /// `contexts_out` (preset contexts are borrowed and cannot be moved
  /// out).
  std::vector<std::vector<Hit>> QueryBatchImpl(
      std::span<const ts::TimeSeries> queries, std::size_t k,
      std::span<const std::optional<std::size_t>> excludes,
      std::span<const QueryContext* const> preset_contexts,
      std::vector<QueryStats>* stats,
      std::vector<QueryContext>* contexts_out) const;

  /// The shared lower-bound cascade: LB_Kim (precomputed by the chunk
  /// scheduler) → LB_Keogh (both directions) → (early-abandoning) DP,
  /// against candidate `candidate` with the caller's best-so-far. Returns
  /// +infinity when pruned. The one copy of the cascade logic;
  /// single-query Query routes through it too.
  double CascadeDistance(const ts::TimeSeries& query,
                         const QueryContext& context, std::size_t candidate,
                         double kim_lb, double best_so_far,
                         ScratchArena& scratch, QueryStats* stats) const;

  const KnnEngine& index_;
  BatchOptions options_;
};

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_BATCH_H_
