#ifndef SDTW_RETRIEVAL_FEATURE_STORE_H_
#define SDTW_RETRIEVAL_FEATURE_STORE_H_

/// \file feature_store.h
/// \brief Persistence for extracted salient features.
///
/// Paper §3.4: "extraction of salient features is a one-time process. Once
/// these features are extracted, they can be stored and indexed along with
/// the time series and can be re-used repeatedly." This module provides
/// that storage: a plain-text, line-oriented format that serialises the
/// keypoints of a whole data set and reads them back bit-for-bit (values
/// are written with max_digits10 round-trip precision).
///
/// Format (one record per line):
///   sdtw-features v1          # header
///   series <index> <count>    # per-series record
///   kp <position> <sigma> <octave> <level> <response> <amplitude> <d0> ...
///   end

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sift/keypoint.h"

namespace sdtw {
namespace retrieval {

/// All features of one data set, parallel to the series order.
using FeatureSets = std::vector<std::vector<sift::Keypoint>>;

/// Writes `features` to the stream in the sdtw-features v1 format.
void WriteFeatures(std::ostream& out, const FeatureSets& features);

/// Parses a stream written by WriteFeatures. Returns std::nullopt on any
/// structural error (bad header, truncated records, malformed numbers).
std::optional<FeatureSets> ReadFeatures(std::istream& in);

/// File convenience wrappers; return false / nullopt on I/O failure.
bool WriteFeaturesFile(const std::string& path, const FeatureSets& features);
std::optional<FeatureSets> ReadFeaturesFile(const std::string& path);

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_FEATURE_STORE_H_
