#include "retrieval/scratch.h"

namespace sdtw {
namespace retrieval {

void ScratchArena::SizeForTargets(std::size_t max_target_length) {
  dp_.EnsureWidth(max_target_length + 1);
}

}  // namespace retrieval
}  // namespace sdtw
