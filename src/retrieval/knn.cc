#include "retrieval/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace sdtw {
namespace retrieval {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pointwise L1 distance on equal-length series; +inf otherwise.
double L1Distance(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  if (a.size() != b.size()) return kInf;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

// True Euclidean distance (sqrt of summed squared differences) on
// equal-length series; +inf otherwise.
double EuclideanDistance(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  if (a.size() != b.size()) return kInf;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

KnnEngine::KnnEngine(KnnOptions options) : options_(std::move(options)) {
  core::SdtwOptions opts = options_.sdtw;
  opts.dtw.want_path = false;
  engine_ = core::Sdtw(opts);
}

void KnnEngine::Index(const ts::Dataset& dataset) {
  series_.clear();
  features_.clear();
  envelopes_.clear();
  stats_.clear();
  series_.reserve(dataset.size());
  features_.reserve(dataset.size());
  envelopes_.reserve(dataset.size());
  stats_.reserve(dataset.size());

  keogh_radius_ = static_cast<std::size_t>(std::ceil(
      options_.keogh_radius_fraction *
      static_cast<double>(dataset.MaxLength())));
  for (const ts::TimeSeries& s : dataset) {
    series_.push_back(s);
    // One-time per-series extraction (paper §3.4).
    if (options_.distance == DistanceKind::kSdtw) {
      features_.push_back(engine_.ExtractFeatures(s));
    } else {
      features_.emplace_back();
    }
    envelopes_.push_back(options_.use_lb_keogh
                             ? dtw::MakeEnvelope(s, keogh_radius_)
                             : dtw::Envelope{});
    stats_.push_back(dtw::MakeSeriesStats(s));
  }
}

double KnnEngine::Distance(const ts::TimeSeries& query,
                           const dtw::SeriesStats& query_stats,
                           const std::vector<sift::Keypoint>& query_features,
                           std::size_t candidate, double best_so_far,
                           QueryStats* stats) const {
  const ts::TimeSeries& target = series_[candidate];

  // Cascade stage 1: LB_Kim over cached summaries — genuinely O(1) per
  // candidate (the query summary is computed once per query, the candidate
  // summary once at Index() time). LB_Kim is a max of absolute pointwise
  // differences: a valid lower bound for absolute-cost DTW (the kFullDtw
  // mode always uses it), the L1 norm, and the Euclidean norm — but NOT
  // for squared-cost distances (|d| > d^2 when |d| < 1), so it must stay
  // off when the sDTW engine ranks by squared cost.
  const bool lb_kim_sound =
      options_.distance != DistanceKind::kSdtw ||
      engine_.options().dtw.cost == dtw::CostKind::kAbsolute;
  if (options_.use_lb_kim && lb_kim_sound && std::isfinite(best_so_far)) {
    if (dtw::LbKim(query_stats, stats_[candidate]) > best_so_far) {
      if (stats != nullptr) ++stats->pruned_by_kim;
      return kInf;
    }
  }
  // Cascade stage 2: LB_Keogh against the cached envelope (valid lower
  // bound for the full DTW; for sDTW distances it is only a heuristic since
  // the sDTW band may be narrower than the Keogh window, so it is applied
  // to the exact-DTW mode only).
  if (options_.use_lb_keogh && options_.distance == DistanceKind::kFullDtw &&
      std::isfinite(best_so_far) &&
      query.size() == envelopes_[candidate].upper.size()) {
    if (dtw::LbKeogh(query, envelopes_[candidate]) > best_so_far) {
      if (stats != nullptr) ++stats->pruned_by_keogh;
      return kInf;
    }
  }

  if (stats != nullptr) ++stats->dp_evaluations;
  switch (options_.distance) {
    case DistanceKind::kEuclidean:
      return EuclideanDistance(query, target);
    case DistanceKind::kL1:
      return L1Distance(query, target);
    case DistanceKind::kFullDtw:
      if (options_.use_early_abandon && std::isfinite(best_so_far)) {
        const double d =
            dtw::DtwDistanceEarlyAbandon(query, target, best_so_far);
        if (!std::isfinite(d) && stats != nullptr) {
          ++stats->pruned_by_early_abandon;
          --stats->dp_evaluations;
        }
        return d;
      }
      return dtw::DtwDistance(query, target);
    case DistanceKind::kSdtw: {
      if (options_.use_early_abandon && std::isfinite(best_so_far)) {
        // Band pruning and best-so-far pruning compose: build the locally
        // relevant band, then abandon the banded DP once a whole row
        // exceeds the current k-th best distance.
        const dtw::Band band = engine_.BuildBand(
            query, query_features, target, features_[candidate]);
        const double d = dtw::DtwBandedDistanceEarlyAbandon(
            query, target, band, best_so_far, engine_.options().dtw.cost);
        if (!std::isfinite(d) && stats != nullptr) {
          ++stats->pruned_by_early_abandon;
          --stats->dp_evaluations;
        }
        return d;
      }
      return engine_
          .Compare(query, query_features, target, features_[candidate])
          .distance;
    }
  }
  return kInf;
}

std::vector<Hit> KnnEngine::Query(const ts::TimeSeries& query, std::size_t k,
                                  std::optional<std::size_t> exclude,
                                  QueryStats* stats) const {
  std::vector<Hit> heap;  // max-heap on distance, size <= k
  auto cmp = [](const Hit& a, const Hit& b) { return a.distance < b.distance; };
  const std::vector<sift::Keypoint> query_features =
      options_.distance == DistanceKind::kSdtw
          ? engine_.ExtractFeatures(query)
          : std::vector<sift::Keypoint>{};
  const dtw::SeriesStats query_stats = dtw::MakeSeriesStats(query);

  if (stats != nullptr) *stats = QueryStats{};
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (exclude.has_value() && *exclude == i) continue;
    if (stats != nullptr) ++stats->candidates;
    const double best_so_far =
        heap.size() == k && k > 0 ? heap.front().distance : kInf;
    const double d =
        Distance(query, query_stats, query_features, i, best_so_far, stats);
    if (!std::isfinite(d) || (heap.size() == k && d >= best_so_far)) {
      continue;
    }
    Hit hit{i, d, series_[i].label()};
    if (heap.size() < k) {
      heap.push_back(hit);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = hit;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

int KnnEngine::Classify(const ts::TimeSeries& query, std::size_t k,
                        std::optional<std::size_t> exclude) const {
  const std::vector<Hit> hits = Query(query, k, exclude);
  if (hits.empty()) return -1;
  // Count votes; resolve count ties by the smaller summed distance.
  std::map<int, std::pair<std::size_t, double>> votes;  // label -> (n, sum)
  for (const Hit& h : hits) {
    auto& v = votes[h.label];
    ++v.first;
    v.second += h.distance;
  }
  int best_label = hits[0].label;
  std::size_t best_count = 0;
  double best_sum = kInf;
  for (const auto& [label, v] : votes) {
    if (v.first > best_count ||
        (v.first == best_count && v.second < best_sum)) {
      best_label = label;
      best_count = v.first;
      best_sum = v.second;
    }
  }
  return best_label;
}

double KnnEngine::LeaveOneOutAccuracy(std::size_t k) const {
  if (series_.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (Classify(series_[i], k, i) == series_[i].label()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(series_.size());
}

}  // namespace retrieval
}  // namespace sdtw
