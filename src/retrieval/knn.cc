#include "retrieval/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "retrieval/batch.h"

namespace sdtw {
namespace retrieval {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

int VoteLabel(const std::vector<Hit>& hits) {
  if (hits.empty()) return -1;
  // Count votes; resolve count ties by the smaller summed distance (the
  // ordered map makes the final smaller-label tie-break deterministic).
  std::map<int, std::pair<std::size_t, double>> votes;  // label -> (n, sum)
  for (const Hit& h : hits) {
    auto& v = votes[h.label];
    ++v.first;
    v.second += h.distance;
  }
  int best_label = hits[0].label;
  std::size_t best_count = 0;
  double best_sum = kInf;
  for (const auto& [label, v] : votes) {
    if (v.first > best_count ||
        (v.first == best_count && v.second < best_sum)) {
      best_label = label;
      best_count = v.first;
      best_sum = v.second;
    }
  }
  return best_label;
}

KnnEngine::KnnEngine(KnnOptions options) : options_(std::move(options)) {
  core::SdtwOptions opts = options_.sdtw;
  opts.dtw.want_path = false;
  engine_ = core::Sdtw(opts);
}

void KnnEngine::Index(const ts::Dataset& dataset) {
  series_.clear();
  features_.clear();
  envelopes_.clear();
  stats_.clear();
  lengths_.clear();
  series_.reserve(dataset.size());
  features_.reserve(dataset.size());
  envelopes_.reserve(dataset.size());
  stats_.reserve(dataset.size());

  max_length_ = dataset.MaxLength();
  // LB_Keogh envelopes are only consumed by the exact-DTW cascade, and
  // only the full-span (global min/max) envelope is a sound bound for
  // unconstrained DTW — see KnnOptions::use_lb_keogh.
  const bool want_envelopes =
      options_.use_lb_keogh && options_.distance == DistanceKind::kFullDtw;
  for (const ts::TimeSeries& s : dataset) {
    series_.push_back(s);
    // One-time per-series extraction (paper §3.4).
    if (options_.distance == DistanceKind::kSdtw) {
      features_.push_back(engine_.ExtractFeatures(s));
    } else {
      features_.emplace_back();
    }
    envelopes_.push_back(want_envelopes ? dtw::MakeEnvelope(s, s.size())
                                        : dtw::Envelope{});
    stats_.push_back(dtw::MakeSeriesStats(s));
    lengths_.insert(s.size());
  }
}

std::vector<Hit> KnnEngine::Query(const ts::TimeSeries& query, std::size_t k,
                                  std::optional<std::size_t> exclude,
                                  QueryStats* stats) const {
  // Batch of one, inline on the calling thread — the cascade itself lives
  // in BatchKnnEngine::CascadeDistance.
  BatchOptions batch_options;
  batch_options.num_threads = 1;
  const BatchKnnEngine batch(*this, batch_options);
  std::vector<QueryStats> batch_stats;
  std::vector<std::vector<Hit>> hits = batch.QueryBatch(
      std::span<const ts::TimeSeries>(&query, 1), k,
      std::span<const std::optional<std::size_t>>(&exclude, 1),
      stats != nullptr ? &batch_stats : nullptr);
  if (stats != nullptr) *stats = batch_stats[0];
  return std::move(hits[0]);
}

int KnnEngine::Classify(const ts::TimeSeries& query, std::size_t k,
                        std::optional<std::size_t> exclude) const {
  return VoteLabel(Query(query, k, exclude));
}

double KnnEngine::LeaveOneOutAccuracy(std::size_t k,
                                      std::size_t num_threads) const {
  BatchOptions batch_options;
  batch_options.num_threads = num_threads;
  return BatchKnnEngine(*this, batch_options).LeaveOneOutAccuracy(k);
}

}  // namespace retrieval
}  // namespace sdtw
