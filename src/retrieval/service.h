#ifndef SDTW_RETRIEVAL_SERVICE_H_
#define SDTW_RETRIEVAL_SERVICE_H_

/// \file service.h
/// \brief Concurrent retrieval front-end: admission control, deadline
/// micro-batching, derivative caching, latency observability.
///
/// BatchKnnEngine amortizes per-query overheads *within* one batch, but a
/// serving workload does not arrive as batches — it arrives as a stream of
/// single queries from many client threads. QueryService closes that gap:
///
///  * **Admission.** Submit enqueues a request into a bounded queue; at
///    capacity, AdmissionPolicy::kBlock parks the submitter until space
///    frees, kReject fails fast. Shutdown stops admitting immediately but
///    drains everything already admitted before returning, so no accepted
///    query is ever dropped.
///  * **Micro-batching.** A dispatcher thread coalesces queued requests
///    into batches cut by whichever fires first: the batch reaches
///    `max_batch` requests, or the oldest queued request has waited
///    `max_delay`. Duplicate queries inside one batch (bitwise-equal
///    sample values) are coalesced into a single scan at the largest
///    requested k and the result is truncated per request — the k smallest
///    (distance, index) pairs at k are exactly the first k of the list at
///    k' >= k, so coalescing is invisible in the results.
///  * **Worker reuse.** Batches execute on a persistent WorkerPool whose
///    threads — and their ScratchArenas, above all the rolling DP rows —
///    live across batches, so steady-state scans allocate nothing.
///  * **Derivative caching.** Per-query derivatives (SeriesStats, Keogh
///    envelope, SIFT features) are looked up in a content-hash-keyed LRU
///    (query_cache.h) and only derived on miss; contexts are replayed into
///    the engine via QueryBatchWithContexts.
///  * **Observability.** Every request's submit→complete wall time feeds a
///    LatencyRecorder; metrics() reports p50/p95/p99, throughput inputs
///    (counts), coalescing and cache hit rates.
///
/// Determinism: a query's hit list is bitwise identical to a direct
/// BatchKnnEngine::QueryBatch of that query alone — independent of batch
/// composition (1 or 64 riders), trigger (size or deadline), cache state
/// (hit or miss), and submitter interleaving. Batching, caching and
/// scheduling only move *where and when* the same arithmetic runs.
///
/// Thread-safety: all shared state is guarded by annotated core::Mutex
/// (checked under -DSDTW_THREAD_SAFETY=ON); condition waits go through
/// core::CondVar predicate loops. Submit is safe from any number of
/// threads concurrently with Shutdown.

#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"
#include "retrieval/latency.h"
#include "retrieval/query_cache.h"
#include "retrieval/scratch.h"
#include "ts/time_series.h"

namespace sdtw {
namespace retrieval {

/// \brief Persistent worker threads implementing BatchExecutor.
///
/// Threads are spawned once at construction; each constructs its own
/// ScratchArena inside its thread function (single-owner, per scratch.h)
/// and keeps it for the pool's lifetime, so consecutive Execute calls
/// reuse fully sized DP buffers. Execute broadcasts one job per the
/// BatchExecutor contract: every worker runs it exactly once, the call
/// returns when all finished. One Execute at a time (the contract); the
/// service's single dispatcher thread guarantees that by construction.
class WorkerPool final : public BatchExecutor {
 public:
  /// `num_workers` 0 = hardware concurrency (min 1).
  explicit WorkerPool(std::size_t num_workers = 0);
  /// Joins the workers. Must not race an in-flight Execute.
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_workers() const override { return threads_.size(); }
  void Execute(const std::function<void(ScratchArena&)>& fn) override
      SDTW_EXCLUDES(mu_);

 private:
  void WorkerMain() SDTW_EXCLUDES(mu_);

  core::Mutex mu_;
  core::CondVar work_cv_;  ///< Signals a new generation (or stop).
  core::CondVar done_cv_;  ///< Signals running_ reaching zero.
  /// Broadcast job of the current generation; null between Executes.
  /// Borrowed from the Execute caller, valid while running_ > 0.
  const std::function<void(ScratchArena&)>* job_ SDTW_GUARDED_BY(mu_) =
      nullptr;
  /// Bumped once per Execute; a worker runs the job iff it has not seen
  /// the current generation yet, so no worker can run one job twice.
  std::uint64_t generation_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t running_ SDTW_GUARDED_BY(mu_) = 0;
  bool stop_ SDTW_GUARDED_BY(mu_) = false;

  /// Written by the constructor before any worker can observe it, read
  /// again only by the joining destructor.
  std::vector<std::thread> threads_;  // lint:allow(unguarded: ctor-set, dtor-joined)
};

/// \brief What happens to a Submit that finds the queue at capacity.
enum class AdmissionPolicy {
  /// Park the submitting thread until space frees (backpressure).
  kBlock,
  /// Fail the submit immediately (load shedding); Submit returns nullopt.
  kReject,
};

/// \brief QueryService configuration.
struct ServiceOptions {
  /// Batch cut when this many requests are queued...
  std::size_t max_batch = 32;
  /// ...or when the oldest queued request has waited this long, whichever
  /// comes first. 0 cuts as soon as the dispatcher wakes (no coalescing
  /// beyond what queue pressure provides).
  std::chrono::microseconds max_delay{2000};
  /// Bounded admission queue; at capacity `admission` applies.
  std::size_t queue_capacity = 1024;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Persistent pool width; 0 = hardware concurrency.
  std::size_t num_workers = 0;
  /// Entries in the derivative LRU; 0 disables caching.
  std::size_t cache_capacity = 256;
  /// Samples in the latency percentile window.
  std::size_t latency_window = 4096;
  /// Engine knobs for the scans; `executor` and `num_threads` are
  /// overridden by the service (the pool supplies the workers).
  BatchOptions batch;
};

/// \brief Service counters + latency snapshot, via QueryService::metrics().
struct ServiceMetrics {
  std::size_t submitted = 0;  ///< Accepted into the queue.
  std::size_t rejected = 0;   ///< Refused (capacity under kReject, or closed).
  std::size_t completed = 0;  ///< Results delivered.
  std::size_t batches = 0;    ///< Micro-batches executed.
  /// Requests answered by another identical request's scan in the same
  /// batch (in-batch coalescing).
  std::size_t coalesced = 0;
  LatencySnapshot latency;                  ///< Submit→complete, microseconds.
  QueryDerivativeCache::Counters cache;     ///< Derivative LRU counters.
};

/// \brief Concurrent micro-batching retrieval service over one index.
///
/// Holds a non-owning view of the KnnEngine index, which must outlive the
/// service and not be re-indexed while it runs.
class QueryService {
 public:
  using Result = std::vector<Hit>;

  explicit QueryService(const KnnEngine& index, ServiceOptions options = {});
  /// Shutdown() then joins everything.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one query for its k nearest neighbours. Returns the future
  /// delivering the hits, or nullopt when the request was not admitted
  /// (queue at capacity under kReject, or service shut down). Safe from
  /// any number of threads. Under kBlock this parks at capacity until
  /// space frees or the service closes.
  std::optional<std::future<Result>> Submit(ts::TimeSeries query,
                                            std::size_t k)
      SDTW_EXCLUDES(mu_);

  /// Submit-and-wait convenience; empty result when not admitted.
  Result Query(const ts::TimeSeries& query, std::size_t k);

  /// Stops admission, drains every already-admitted request (their futures
  /// all complete), then stops the dispatcher and workers. Idempotent;
  /// concurrent Submits fail cleanly with nullopt.
  void Shutdown() SDTW_EXCLUDES(mu_);

  ServiceMetrics metrics() const SDTW_EXCLUDES(mu_);
  const ServiceOptions& options() const { return options_; }

 private:
  struct Request {
    ts::TimeSeries query;
    std::size_t k = 0;
    std::chrono::steady_clock::time_point submit_time;
    std::promise<Result> promise;
  };

  void DispatcherMain();
  /// Blocks until a batch is due (size or deadline trigger) and pops it;
  /// empty return = closed and fully drained (dispatcher exits).
  std::vector<Request> NextBatch() SDTW_EXCLUDES(mu_);
  /// Coalesce → cache → scan → truncate → fulfil. Runs without mu_.
  void ExecuteBatch(std::vector<Request> batch);

  const ServiceOptions options_;
  /// The four collaborators below are deliberately outside mu_: pool_,
  /// cache_ and latency_ each own their own core::Mutex (internally
  /// synchronized), and engine_ is configured once in the constructor and
  /// then only read by the single dispatcher thread.
  WorkerPool pool_;          // lint:allow(unguarded: internally synchronized)
  BatchKnnEngine engine_;    // lint:allow(unguarded: ctor-set, dispatcher-only)
  QueryDerivativeCache cache_;    // lint:allow(unguarded: internally synchronized)
  LatencyRecorder latency_;  // lint:allow(unguarded: internally synchronized)

  mutable core::Mutex mu_;
  core::CondVar queue_cv_;  ///< Work available / closed.
  core::CondVar space_cv_;  ///< Queue space freed / closed.
  std::deque<Request> queue_ SDTW_GUARDED_BY(mu_);
  bool closed_ SDTW_GUARDED_BY(mu_) = false;
  std::size_t submitted_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t rejected_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t completed_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t batches_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t coalesced_ SDTW_GUARDED_BY(mu_) = 0;

  /// Started last in the constructor, joined by Shutdown; never touched
  /// in between.
  std::thread dispatcher_;  // lint:allow(unguarded: ctor-set, Shutdown-joined)
};

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_SERVICE_H_
