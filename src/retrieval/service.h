#ifndef SDTW_RETRIEVAL_SERVICE_H_
#define SDTW_RETRIEVAL_SERVICE_H_

/// \file service.h
/// \brief Concurrent retrieval front-end: admission control, deadline-aware
/// micro-batching, fault isolation, derivative caching, observability.
///
/// BatchKnnEngine amortizes per-query overheads *within* one batch, but a
/// serving workload does not arrive as batches — it arrives as a stream of
/// single queries from many client threads, some of which will time out,
/// and some of which will hit a failure. QueryService closes both gaps:
///
///  * **Admission.** Submit enqueues a request into a bounded queue; at
///    capacity, AdmissionPolicy::kBlock parks the submitter — for at most
///    ServiceOptions::park_timeout — until space frees, kReject fails
///    fast. Shutdown stops admitting immediately but drains everything
///    already admitted before returning, so no accepted query is ever
///    left unresolved.
///  * **Deadlines + EDF.** Every Submit can carry RequestOptions: an
///    absolute completion deadline and a priority. The queue is kept in
///    earliest-deadline-first order (deadline, then priority, then
///    arrival), which degrades to exact FIFO when nobody sets either —
///    and clusters the most urgent requests at the front, so the
///    dispatcher sheds already-expired requests by popping the head, not
///    by scanning. A shed request's future completes with
///    StatusCode::kDeadlineExceeded before any DP evaluation runs for it.
///    Batch cutting respects the earliest queued deadline: a deadline
///    closer than max_delay cuts the batch immediately instead of
///    waiting out the age trigger.
///  * **Micro-batching.** A dispatcher thread coalesces queued requests
///    into batches cut by whichever fires first: the batch reaches
///    `max_batch` requests, the oldest queued request has waited
///    `max_delay`, or a queued deadline is imminent. Duplicate queries
///    inside one batch (bitwise-equal sample values) are coalesced into a
///    single scan at the largest requested k and the result is truncated
///    per request.
///  * **Fault isolation.** Results are core::StatusOr<Hits>: a worker
///    exception fails only the affected requests, never the process. A
///    poisoned batch is isolated by re-running its requests individually,
///    each with a bounded retry budget under decorrelated-jitter backoff;
///    a repeat offender is failed permanently with
///    StatusCode::kWorkerFault while every other request in the batch
///    completes with hits bitwise identical to a fault-free run. A
///    watchdog thread detects batches stuck in execution longer than
///    ServiceOptions::watchdog_stall and counts them (metrics().
///    watchdog_stalls) for the operator.
///  * **Fault injection.** The failure paths above are deterministically
///    testable through core::FaultInjector sites (kFaultSite* below):
///    worker execution, derivative-cache fill, queue admission, and a
///    worker stall used to exercise the watchdog.
///  * **Worker reuse.** Batches execute on a persistent WorkerPool whose
///    threads — and their ScratchArenas, above all the rolling DP rows —
///    live across batches, so steady-state scans allocate nothing.
///  * **Derivative caching.** Per-query derivatives (SeriesStats, Keogh
///    envelope, SIFT features) are looked up in a content-hash-keyed LRU
///    (query_cache.h) and only derived on miss. A faulted fill degrades
///    gracefully: nothing is inserted (the cache can never serve a
///    context from a faulted fill) and the engine derives internally.
///  * **Observability.** metrics() reports p50/p95/p99 submit→complete
///    latency over successful requests, throughput counters, coalescing
///    and cache hit rates, and the failure-path counters
///    (deadline_exceeded / worker_faults / retries / shed /
///    park_timeouts / watchdog_stalls).
///
/// Determinism: a query's hit list — whenever its request completes OK —
/// is bitwise identical to a direct BatchKnnEngine::QueryBatch of that
/// query alone, independent of batch composition, trigger, cache state,
/// submitter interleaving, injected faults, and retry count. Failure
/// handling only decides *whether* a request completes, never what a
/// completed request returns.
///
/// Thread-safety: all shared state is guarded by annotated core::Mutex
/// (checked under -DSDTW_THREAD_SAFETY=ON); condition waits go through
/// core::CondVar predicate loops. Submit is safe from any number of
/// threads concurrently with Shutdown.

#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <future>
#include <optional>
#include <random>
#include <string_view>
#include <thread>
#include <vector>

#include "core/fault_injector.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"
#include "retrieval/latency.h"
#include "retrieval/query_cache.h"
#include "retrieval/scratch.h"
#include "ts/time_series.h"

namespace sdtw {
namespace retrieval {

/// core::FaultInjector sites the service consults. Arm programmatically
/// (core::ScopedFault in tests) or via SDTW_FAULT=site:rate:seed.
/// A drawn failure at:
///  * kFaultSiteWorker throws inside a WorkerPool worker before it runs
///    its job — the "worker crashed mid-batch" path;
///  * kFaultSiteWorkerStall makes a worker sleep ~25ms before its job —
///    the "stalled worker" path the watchdog exists to catch;
///  * kFaultSiteCacheFill skips one derivative-cache fill — the request
///    still completes (the engine derives internally) and the cache is
///    guaranteed to never hold a context from a faulted fill;
///  * kFaultSiteAdmission refuses one admission (Submit returns nullopt,
///    counted in ServiceMetrics::rejected).
inline constexpr std::string_view kFaultSiteWorker = "retrieval.worker";
inline constexpr std::string_view kFaultSiteWorkerStall =
    "retrieval.worker_stall";
inline constexpr std::string_view kFaultSiteCacheFill =
    "retrieval.cache_fill";
inline constexpr std::string_view kFaultSiteAdmission =
    "retrieval.admission";

/// \brief Persistent worker threads implementing BatchExecutor.
///
/// Threads are spawned once at construction; each constructs its own
/// ScratchArena inside its thread function (single-owner, per scratch.h)
/// and keeps it for the pool's lifetime, so consecutive Execute calls
/// reuse fully sized DP buffers. Execute broadcasts one job per the
/// BatchExecutor contract: every worker runs it exactly once, the call
/// returns when all finished. One Execute at a time (the contract); the
/// service's single dispatcher thread guarantees that by construction.
///
/// Fault tolerance: an exception escaping a worker's job (including one
/// injected at kFaultSiteWorker) is captured and rethrown by Execute on
/// the calling thread after every worker finished — a faulting job can
/// never take down a worker thread or the process, and the pool is fully
/// reusable for the next Execute.
class WorkerPool final : public BatchExecutor {
 public:
  /// `num_workers` 0 = hardware concurrency (min 1).
  explicit WorkerPool(std::size_t num_workers = 0);
  /// Joins the workers. Must not race an in-flight Execute.
  ~WorkerPool() override;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t num_workers() const override { return threads_.size(); }
  /// Runs fn once per worker; rethrows the first exception any worker's
  /// run raised (after all workers finished, so the pool stays
  /// consistent).
  void Execute(const std::function<void(ScratchArena&)>& fn) override
      SDTW_EXCLUDES(mu_);

 private:
  void WorkerMain() SDTW_EXCLUDES(mu_);

  core::Mutex mu_;
  core::CondVar work_cv_;  ///< Signals a new generation (or stop).
  core::CondVar done_cv_;  ///< Signals running_ reaching zero.
  /// Broadcast job of the current generation; null between Executes.
  /// Borrowed from the Execute caller, valid while running_ > 0.
  const std::function<void(ScratchArena&)>* job_ SDTW_GUARDED_BY(mu_) =
      nullptr;
  /// Bumped once per Execute; a worker runs the job iff it has not seen
  /// the current generation yet, so no worker can run one job twice.
  std::uint64_t generation_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t running_ SDTW_GUARDED_BY(mu_) = 0;
  bool stop_ SDTW_GUARDED_BY(mu_) = false;
  /// First exception a worker's job raised in the current generation;
  /// cleared by Execute before the broadcast, rethrown after the join.
  std::exception_ptr error_ SDTW_GUARDED_BY(mu_);

  /// Written by the constructor before any worker can observe it, read
  /// again only by the joining destructor.
  std::vector<std::thread> threads_;  // lint:allow(unguarded: ctor-set, dtor-joined)
};

/// \brief What happens to a Submit that finds the queue at capacity.
enum class AdmissionPolicy {
  /// Park the submitting thread until space frees (backpressure), for at
  /// most ServiceOptions::park_timeout.
  kBlock,
  /// Fail the submit immediately (load shedding); Submit returns nullopt.
  kReject,
};

/// \brief Per-request service-level options for QueryService::Submit.
struct RequestOptions {
  /// Absolute completion deadline; time_point::max() (the default) means
  /// none. A request still queued when its deadline passes is shed: its
  /// future completes with StatusCode::kDeadlineExceeded and no DP
  /// evaluation ever runs for it. A deadline also promotes the request
  /// in the admission queue (EDF) and cuts the batch early when closer
  /// than max_delay.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Tie-break among equal deadlines (and among no-deadline requests):
  /// higher priority is served earlier. Equal (deadline, priority) keeps
  /// arrival order, so the all-default queue is exact FIFO.
  int priority = 0;

  /// Convenience: a deadline `timeout` from now.
  static RequestOptions WithTimeout(std::chrono::microseconds timeout,
                                    int priority = 0) {
    return RequestOptions{std::chrono::steady_clock::now() + timeout,
                          priority};
  }
};

/// \brief QueryService configuration.
struct ServiceOptions {
  /// Batch cut when this many requests are queued...
  std::size_t max_batch = 32;
  /// ...or when the oldest queued request has waited this long, whichever
  /// comes first. 0 cuts as soon as the dispatcher wakes (no coalescing
  /// beyond what queue pressure provides).
  std::chrono::microseconds max_delay{2000};
  /// Bounded admission queue; at capacity `admission` applies.
  std::size_t queue_capacity = 1024;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Longest a kBlock submitter parks at capacity before the submit
  /// fails anyway (counted in park_timeouts) — bounded backpressure, so
  /// a stalled dispatcher can never wedge every client thread forever.
  std::chrono::microseconds park_timeout{30'000'000};
  /// Persistent pool width; 0 = hardware concurrency.
  std::size_t num_workers = 0;
  /// Entries in the derivative LRU; 0 disables caching.
  std::size_t cache_capacity = 256;
  /// Samples in the latency percentile window.
  std::size_t latency_window = 4096;
  /// After a worker fault poisons a batch, its requests are re-run
  /// individually; each gets 1 + max_retries attempts before it is
  /// failed permanently with kWorkerFault.
  std::size_t max_retries = 2;
  /// Decorrelated-jitter backoff between those attempts:
  /// sleep ~ U(retry_base, 3 * previous), capped at retry_cap. Timing
  /// only — results never depend on the backoff draw.
  std::chrono::microseconds retry_base{100};
  std::chrono::microseconds retry_cap{5000};
  /// Watchdog scan period (0 disables the watchdog thread) and the
  /// in-flight batch age past which a batch counts as stalled.
  std::chrono::microseconds watchdog_interval{100'000};
  std::chrono::microseconds watchdog_stall{1'000'000};
  /// Engine knobs for the scans; `executor` and `num_threads` are
  /// overridden by the service (the pool supplies the workers).
  BatchOptions batch;
};

/// \brief Service counters + latency snapshot, via QueryService::metrics().
struct ServiceMetrics {
  std::size_t submitted = 0;  ///< Accepted into the queue.
  std::size_t rejected = 0;   ///< Refused (capacity/kReject, park timeout,
                              ///< injected admission fault, or closed).
  /// Futures resolved, successfully or not:
  /// completed == ok + deadline_exceeded + failed.
  std::size_t completed = 0;
  std::size_t ok = 0;          ///< Resolved with hits.
  std::size_t failed = 0;      ///< Resolved with kWorkerFault/kUnknown.
  std::size_t batches = 0;     ///< Micro-batches executed.
  /// Requests answered by another identical request's scan in the same
  /// batch (in-batch coalescing).
  std::size_t coalesced = 0;
  /// Requests shed from the queue head because their deadline had passed
  /// (no DP evaluation ran); each resolved with kDeadlineExceeded.
  std::size_t shed = 0;
  /// Futures resolved with kDeadlineExceeded (== shed today; kept
  /// separate so future deadline checks deeper in the pipeline share a
  /// counter with the correct meaning).
  std::size_t deadline_exceeded = 0;
  /// Faulted executions observed: poisoned whole batches plus faulted
  /// individual re-runs.
  std::size_t worker_faults = 0;
  /// Individual re-run attempts performed while isolating poisoned
  /// batches (successful and not).
  std::size_t retries = 0;
  /// kBlock submits that gave up after parking park_timeout.
  std::size_t park_timeouts = 0;
  /// Batches the watchdog saw stuck in execution past watchdog_stall
  /// (each in-flight batch is counted at most once).
  std::size_t watchdog_stalls = 0;
  /// Submit→complete of successful requests only, microseconds — failed
  /// futures resolve on failure paths whose timing says nothing about
  /// serving latency.
  LatencySnapshot latency;
  QueryDerivativeCache::Counters cache;  ///< Derivative LRU counters.
};

/// \brief Concurrent micro-batching retrieval service over one index.
///
/// Holds a non-owning view of the KnnEngine index, which must outlive the
/// service and not be re-indexed while it runs.
class QueryService {
 public:
  using Hits = std::vector<Hit>;
  /// What a request's future delivers: the hits, or why there are none
  /// (kDeadlineExceeded for a shed request, kWorkerFault for a repeat
  /// offender that exhausted its retries).
  using Result = core::StatusOr<Hits>;

  /// Rejects invalid options (see ValidateOptions): the service
  /// constructs but refuses every Submit, and init_status() carries the
  /// error.
  explicit QueryService(const KnnEngine& index, ServiceOptions options = {});
  /// Shutdown() then joins everything.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// kInvalidArgument with a precise message when `options` cannot run a
  /// service (queue_capacity == 0 or max_batch == 0); OK otherwise.
  static core::Status ValidateOptions(const ServiceOptions& options);
  /// Why this service is (or is not) serviceable; constructor-set.
  const core::Status& init_status() const { return init_status_; }

  /// Submits one query for its k nearest neighbours with per-request
  /// deadline/priority options. Returns the future delivering the
  /// Result, or nullopt when the request was not admitted (queue at
  /// capacity under kReject, park timeout under kBlock, injected
  /// admission fault, invalid service options, or service shut down).
  /// Safe from any number of threads.
  std::optional<std::future<Result>> Submit(ts::TimeSeries query,
                                            std::size_t k,
                                            RequestOptions request = {})
      SDTW_EXCLUDES(mu_);

  /// Submit-and-wait convenience; kUnavailable when not admitted.
  Result Query(const ts::TimeSeries& query, std::size_t k,
               RequestOptions request = {});

  /// Stops admission, drains every already-admitted request (their
  /// futures all resolve — with hits, or with the failure status),
  /// then stops the dispatcher, watchdog and workers. Idempotent;
  /// concurrent Submits fail cleanly with nullopt.
  void Shutdown() SDTW_EXCLUDES(mu_);

  ServiceMetrics metrics() const SDTW_EXCLUDES(mu_);
  const ServiceOptions& options() const { return options_; }

 private:
  struct Request {
    ts::TimeSeries query;
    std::size_t k = 0;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;
    int priority = 0;
    /// Admission order; the final EDF tie-break, and what makes the
    /// default-options queue exact FIFO.
    std::uint64_t seq = 0;
    std::promise<Result> promise;
  };

  void DispatcherMain();
  void WatchdogMain() SDTW_EXCLUDES(mu_);
  /// Blocks until a batch is due (size, age or deadline trigger), sheds
  /// expired requests from the queue head, and pops the batch; empty
  /// return = closed and fully drained (dispatcher exits).
  std::vector<Request> NextBatch() SDTW_EXCLUDES(mu_);
  /// Coalesce → cache → scan (isolating faults) → truncate → fulfil.
  /// Runs without mu_ except for counter updates.
  void ExecuteBatch(std::vector<Request> batch);
  /// One group's scan after its batch was poisoned: 1 + max_retries
  /// individual attempts under decorrelated-jitter backoff.
  core::StatusOr<Hits> RunGroupIsolated(const ts::TimeSeries& rep,
                                        const QueryContext* context,
                                        std::size_t kmax);

  const ServiceOptions options_;
  const core::Status init_status_;  ///< ValidateOptions(options_).
  /// The four collaborators below are deliberately outside mu_: pool_,
  /// cache_ and latency_ each own their own core::Mutex (internally
  /// synchronized), and engine_ is configured once in the constructor and
  /// then only read by the single dispatcher thread.
  WorkerPool pool_;          // lint:allow(unguarded: internally synchronized)
  BatchKnnEngine engine_;    // lint:allow(unguarded: ctor-set, dispatcher-only)
  QueryDerivativeCache cache_;    // lint:allow(unguarded: internally synchronized)
  LatencyRecorder latency_;  // lint:allow(unguarded: internally synchronized)
  /// Backoff jitter source; fixed seed — backoff affects timing only,
  /// never results. Dispatcher-thread-only.
  std::mt19937_64 backoff_rng_{0x5d7bac0ffULL};  // lint:allow(unguarded: dispatcher-thread-only)

  mutable core::Mutex mu_;
  core::CondVar queue_cv_;  ///< Work available / closed.
  core::CondVar space_cv_;  ///< Queue space freed / closed.
  core::CondVar watchdog_cv_;  ///< Wakes the watchdog early on shutdown.
  /// Admission queue in EDF order: (deadline, -priority, seq) ascending.
  /// Expired requests therefore cluster at the front, which is what lets
  /// the dispatcher shed them without scanning.
  std::deque<Request> queue_ SDTW_GUARDED_BY(mu_);
  bool closed_ SDTW_GUARDED_BY(mu_) = false;
  /// Set by Shutdown after the dispatcher drained (in-flight batches must
  /// stay watched until then).
  bool watchdog_stop_ SDTW_GUARDED_BY(mu_) = false;
  std::uint64_t next_seq_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t submitted_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t rejected_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t completed_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t ok_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t failed_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t batches_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t coalesced_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t shed_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t deadline_exceeded_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t worker_faults_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t retries_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t park_timeouts_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t watchdog_stalls_ SDTW_GUARDED_BY(mu_) = 0;
  /// Watchdog view of the in-flight batch: id 0 = none executing.
  std::uint64_t executing_batch_ SDTW_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point executing_since_
      SDTW_GUARDED_BY(mu_);
  std::uint64_t last_stalled_batch_ SDTW_GUARDED_BY(mu_) = 0;

  /// Started last in the constructor, joined by Shutdown; never touched
  /// in between.
  std::thread dispatcher_;  // lint:allow(unguarded: ctor-set, Shutdown-joined)
  std::thread watchdog_;    // lint:allow(unguarded: ctor-set, Shutdown-joined)
};

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_SERVICE_H_
