#ifndef SDTW_RETRIEVAL_PARALLEL_H_
#define SDTW_RETRIEVAL_PARALLEL_H_

/// \file parallel.h
/// \brief Parallel computation of pairwise distance matrices.
///
/// Pairwise distance matrices over a data set are embarrassingly parallel
/// (every (i, j) pair is independent once per-series features are cached).
/// This module shards the upper triangle over a thread pool. Experiment
/// timings in eval/ stay single-threaded for comparability with the paper;
/// this is the throughput path for applications.

#include <cstddef>
#include <functional>
#include <vector>

#include "ts/time_series.h"

namespace sdtw {
namespace retrieval {

/// Pairwise distance functor: (index_a, index_b) -> distance. Must be safe
/// to call concurrently from multiple threads.
using PairDistanceFn = std::function<double(std::size_t, std::size_t)>;

/// Computes the symmetric n×n matrix (row-major, zero diagonal) of
/// distances over indices [0, n) using `num_threads` workers (0 = hardware
/// concurrency). Pairs of the upper triangle are distributed round-robin.
std::vector<double> ParallelPairwiseMatrix(std::size_t n,
                                           const PairDistanceFn& distance,
                                           std::size_t num_threads = 0);

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_PARALLEL_H_
