#include "retrieval/batch.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <optional>
#include <thread>
#include <utility>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace sdtw {
namespace retrieval {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Pointwise L1 distance on equal-length series; +inf otherwise.
double L1Distance(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  if (a.size() != b.size()) return kInf;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

// True Euclidean distance (sqrt of summed squared differences) on
// equal-length series; +inf otherwise.
double EuclideanDistance(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  if (a.size() != b.size()) return kInf;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

// LB_Kim is a max of absolute pointwise differences: a valid lower bound
// for absolute-cost DTW (the kFullDtw mode always uses it), the L1 norm,
// and the Euclidean norm — but NOT for squared-cost distances (|d| > d^2
// when |d| < 1), so it must stay off when the sDTW engine ranks by
// squared cost.
bool LbKimSound(const KnnOptions& opt, const core::Sdtw& engine) {
  return opt.distance != DistanceKind::kSdtw ||
         engine.options().dtw.cost == dtw::CostKind::kAbsolute;
}

// Strict weak order making the top-k selection deterministic under any
// worker completion order: primary ascending distance, ties by ascending
// index (what a sequential in-order scan keeps).
bool HitLess(const Hit& a, const Hit& b) {
  return a.distance < b.distance ||
         (a.distance == b.distance && a.index < b.index);
}

// Shared mutable state of one query while the batch is in flight, with
// its locking invariants stated as thread-safety-analysis capabilities
// (checked under -DSDTW_THREAD_SAFETY=ON):
//
//  * heap and stats are guarded by mu — all access goes through the
//    SDTW_EXCLUDES member functions below, which take the lock, or their
//    SDTW_REQUIRES(mu) locked bodies;
//  * best is additionally published as an atomic so the hot loop can read
//    the current k-th best without locking (a stale read is always >= the
//    true value, i.e. merely prunes less);
//  * context and global_order are phase-1 state: written by exactly one
//    worker (the one that claimed query q off the phase-1 counter) and
//    made visible to every phase-2 worker by the RunOnWorkers join
//    between the phases; read-only from then on, so unguarded.
struct PerQueryState {
  /// Phase-1 derivative storage, used when the caller did not preset a
  /// context for this query; `context` points here in that case.
  QueryContext owned_context;  // lint:allow(unguarded: phase-1 state, join-published)
  /// The context every phase-2 worker reads: &owned_context, or the
  /// caller's preset (a cached derivation of the same query — bitwise
  /// identical by MakeQueryContext's purity). Phase-1 state like
  /// global_order: written once, read-only while workers race.
  const QueryContext* context = nullptr;  // lint:allow(unguarded: phase-1 state, join-published)
  /// VisitOrder::kGlobalLowerBound only: the query's whole candidate set
  /// as (cached LB_Kim, index), sorted ascending once in phase 1; phase-2
  /// chunks slice it instead of the index range. Read-only while workers
  /// race.
  std::vector<std::pair<double, std::size_t>> global_order;  // lint:allow(unguarded: phase-1 state, join-published)
  /// ChunkBalance::kLbMass under kGlobalLowerBound: chunk c of this query
  /// covers global_order[chunk_bounds[c], chunk_bounds[c+1]). Empty means
  /// uniform candidate-count slicing. Phase-1 state, read-only in phase 2.
  std::vector<std::size_t> chunk_bounds;  // lint:allow(unguarded: phase-1 state, join-published)
  /// Upper bound of the final k-th best distance, monotonically
  /// non-increasing while workers race; kInf until the heap first fills.
  std::atomic<double> best{kInf};

  /// Offers a candidate hit to the top-k heap; keeps `best` equal to the
  /// heap root whenever the heap is full.
  void Offer(const Hit& hit, std::size_t k) SDTW_EXCLUDES(mu) {
    core::MutexLock lock(mu);
    OfferLocked(hit, k);
  }

  /// Folds a worker's chunk-local counters into the query's stats.
  void MergeStats(const QueryStats& local) SDTW_EXCLUDES(mu) {
    core::MutexLock lock(mu);
    stats.Merge(local);
  }

  /// Final collection (workers joined, but the analysis neither knows nor
  /// needs to: the uncontended lock is cheap): heap-sorts and surrenders
  /// the hit list, leaving the heap empty.
  std::vector<Hit> TakeSortedHits() SDTW_EXCLUDES(mu) {
    core::MutexLock lock(mu);
    std::sort_heap(heap.begin(), heap.end(), HitLess);
    return std::move(heap);
  }

  QueryStats StatsSnapshot() SDTW_EXCLUDES(mu) {
    core::MutexLock lock(mu);
    return stats;
  }

 private:
  void OfferLocked(const Hit& hit, std::size_t k) SDTW_REQUIRES(mu) {
    if (heap.size() < k) {
      heap.push_back(hit);
      std::push_heap(heap.begin(), heap.end(), HitLess);
    } else if (HitLess(hit, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), HitLess);
      heap.back() = hit;
      std::push_heap(heap.begin(), heap.end(), HitLess);
    }
    if (heap.size() == k) {
      best.store(heap.front().distance, std::memory_order_relaxed);
    }
  }

  core::Mutex mu;
  std::vector<Hit> heap SDTW_GUARDED_BY(mu);  // max-heap under HitLess
  QueryStats stats SDTW_GUARDED_BY(mu);
};

// Runs fn on `threads` workers and waits for all of them; threads == 1
// runs inline on the calling thread. An exception escaping fn on a
// spawned thread would hit std::terminate, so the first one is captured
// and rethrown on the calling thread after every worker joined — a
// faulting worker degrades to a throwing call, never a dead process, and
// the join still happens so no thread leaks.
template <typename Fn>
void RunOnWorkers(std::size_t threads, const Fn& fn) {
  if (threads <= 1) {
    fn();
    return;
  }
  core::Mutex mu;
  std::exception_ptr error;  // first worker exception; guarded by mu
  const auto run = [&fn, &mu, &error]() {
    try {
      fn();
    } catch (...) {
      core::MutexLock lock(mu);
      if (error == nullptr) error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(run);
  for (std::thread& t : pool) t.join();
  if (error != nullptr) std::rethrow_exception(error);
}

std::size_t ResolveThreads(std::size_t requested, std::size_t work_items) {
  std::size_t threads = requested != 0
                            ? requested
                            : std::max(1u, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, std::min(threads, work_items));
}

// ChunkBalance::kLbMass boundary placement over one query's sorted global
// LB schedule: split by cumulative expected *cost* instead of candidate
// count. Cost model: a candidate's chance of surviving the cascade into a
// full DP falls as its LB_Kim rises (the sort key), and a surviving DP
// costs roughly an order of magnitude more than a pruned candidate's O(1)
// + O(n) bound checks — so each candidate carries weight
//   w_i = 1 + kDpCostWeight * (lb_max - lb_i) / (lb_max - lb_min)
// (all-equal bounds degrade to uniform weights == count slicing) and
// boundary c is placed where cumulative weight first reaches c/chunks of
// the total. Pure scheduling: moving a boundary moves candidates between
// workers, never changes which candidates are scanned or what they
// return, so hit lists are pinned bitwise against count slicing.
constexpr double kDpCostWeight = 7.0;

void BuildMassBounds(const std::vector<std::pair<double, std::size_t>>& order,
                     std::size_t chunks, std::vector<double>& prefix_mass,
                     std::vector<std::size_t>* bounds) {
  const std::size_t n = order.size();
  const double lb_min = order.front().first;
  const double lb_max = order.back().first;
  const double span = lb_max - lb_min;
  const bool weighted = span > 0.0 && std::isfinite(span);
  prefix_mass.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += weighted ? 1.0 + kDpCostWeight * (lb_max - order[i].first) / span
                      : 1.0;
    prefix_mass[i] = total;
  }
  bounds->assign(chunks + 1, n);
  (*bounds)[0] = 0;
  std::size_t j = 0;
  for (std::size_t c = 1; c < chunks; ++c) {
    const double target =
        total * static_cast<double>(c) / static_cast<double>(chunks);
    j = static_cast<std::size_t>(
        std::lower_bound(prefix_mass.begin() +
                             static_cast<std::ptrdiff_t>(j),
                         prefix_mass.end(), target) -
        prefix_mass.begin());
    (*bounds)[c] = std::min(j, n);
  }
}

}  // namespace

BatchKnnEngine::BatchKnnEngine(const KnnEngine& index, BatchOptions options)
    : index_(index), options_(options) {}

std::size_t BatchKnnEngine::size() const { return index_.size(); }

QueryContext BatchKnnEngine::MakeContext(const ts::TimeSeries& query) const {
  const KnnOptions& opt = index_.options_;
  QueryContext context;
  context.stats = dtw::MakeSeriesStats(query);
  if (opt.distance == DistanceKind::kSdtw) {
    context.features = index_.engine_.ExtractFeatures(query);
  }
  if (opt.use_lb_keogh && opt.distance == DistanceKind::kFullDtw &&
      index_.lengths_.count(query.size()) > 0) {
    // Full-span envelope: the only radius sound for unconstrained DTW
    // (see KnnOptions::use_lb_keogh). Skipped when no indexed series
    // shares the query's length — LB_Keogh is undefined across lengths,
    // so the envelope could never be consumed.
    context.envelope = dtw::MakeEnvelope(query, query.size());
  }
  return context;
}

double BatchKnnEngine::CascadeDistance(const ts::TimeSeries& query,
                                       const QueryContext& context,
                                       std::size_t candidate, double kim_lb,
                                       double best_so_far,
                                       ScratchArena& scratch,
                                       QueryStats* stats) const {
  const KnnOptions& opt = index_.options_;
  const core::Sdtw& engine = index_.engine_;
  const ts::TimeSeries& target = index_.series_[candidate];

  // Cascade stage 1: LB_Kim over cached summaries — genuinely O(1) per
  // candidate (the query summary is computed once per batch, the candidate
  // summary once at Index() time; the chunk scheduler evaluates the bound
  // once per candidate and hands it in, shared between visit ordering and
  // this prune). Soundness per distance kind: see LbKimSound.
  if (opt.use_lb_kim && LbKimSound(opt, engine) &&
      std::isfinite(best_so_far)) {
    if (kim_lb > best_so_far) {
      if (stats != nullptr) ++stats->pruned_by_kim;
      return kInf;
    }
  }
  // Cascade stage 2: LB_Keogh in both directions — the query against the
  // candidate envelope cached at Index() time, and the candidate against
  // the query envelope computed once per batch. The envelopes span the
  // whole series (global min/max), the only radius that lower-bounds
  // *unconstrained* DTW: every warp path visits each row i, aligning x_i
  // to some value inside [min(y), max(y)], so Σ_i dist(x_i, envelope) is
  // a valid bound. Radius-limited envelopes would only bound
  // window-constrained DTW, and sDTW bands may be narrower still — hence
  // exact-DTW mode only. Each direction accumulates its sum with
  // cumulative abandoning against the best-so-far (LbKeoghAbandoning):
  // the prune decision is identical to the full pass, but the O(n) bound
  // computation itself stops as soon as it is settled.
  if (opt.use_lb_keogh && opt.distance == DistanceKind::kFullDtw) {
    if (target.size() != query.size()) {
      // LB_Keogh is only defined on equal lengths (LbKeogh would return
      // the trivial bound 0): skip the stage for this candidate and say
      // so, instead of counting it as Keogh-checked.
      if (stats != nullptr) ++stats->lb_keogh_skipped;
    } else if (std::isfinite(best_so_far)) {
      bool abandoned = false;
      if (dtw::LbKeoghAbandoning(query, index_.envelopes_[candidate],
                                 best_so_far, &abandoned) > best_so_far) {
        if (stats != nullptr) {
          ++stats->pruned_by_keogh;
          if (abandoned) ++stats->lb_keogh_abandoned;
        }
        return kInf;
      }
      if (dtw::LbKeoghAbandoning(target, context.envelope, best_so_far,
                                 &abandoned) > best_so_far) {
        if (stats != nullptr) {
          ++stats->pruned_by_keogh;
          if (abandoned) ++stats->lb_keogh_abandoned;
        }
        return kInf;
      }
    }
  }

  if (stats != nullptr) ++stats->dp_evaluations;
  switch (opt.distance) {
    case DistanceKind::kEuclidean:
      return EuclideanDistance(query, target);
    case DistanceKind::kL1:
      return L1Distance(query, target);
    case DistanceKind::kFullDtw:
      if (opt.use_early_abandon && std::isfinite(best_so_far)) {
        const double d = dtw::DtwDistanceEarlyAbandon(
            query, target, best_so_far, dtw::CostKind::kAbsolute,
            scratch.dp());
        if (!std::isfinite(d) && stats != nullptr) {
          ++stats->pruned_by_early_abandon;
          --stats->dp_evaluations;
        }
        return d;
      }
      return dtw::DtwDistance(query, target, dtw::CostKind::kAbsolute,
                              scratch.dp());
    case DistanceKind::kSdtw: {
      // Band pruning and best-so-far pruning compose: build the locally
      // relevant band, then run the banded DP in the worker's rolling
      // buffers, abandoning once a whole row exceeds the current k-th
      // best distance.
      const dtw::Band band = engine.BuildBand(query, context.features,
                                              target,
                                              index_.features_[candidate]);
      if (opt.use_early_abandon && std::isfinite(best_so_far)) {
        const double d = dtw::DtwBandedDistanceEarlyAbandon(
            query, target, band, best_so_far, engine.options().dtw.cost,
            scratch.dp());
        if (!std::isfinite(d) && stats != nullptr) {
          ++stats->pruned_by_early_abandon;
          --stats->dp_evaluations;
        }
        return d;
      }
      return dtw::DtwBandedDistance(query, target, band,
                                    engine.options().dtw.cost, scratch.dp());
    }
  }
  return kInf;
}

std::vector<std::vector<Hit>> BatchKnnEngine::QueryBatch(
    std::span<const ts::TimeSeries> queries, std::size_t k,
    std::vector<QueryStats>* stats) const {
  return QueryBatchImpl(queries, k, {}, {}, stats, nullptr);
}

std::vector<std::vector<Hit>> BatchKnnEngine::QueryBatch(
    std::span<const ts::TimeSeries> queries, std::size_t k,
    std::span<const std::optional<std::size_t>> excludes,
    std::vector<QueryStats>* stats) const {
  return QueryBatchImpl(queries, k, excludes, {}, stats, nullptr);
}

QueryContext BatchKnnEngine::MakeQueryContext(
    const ts::TimeSeries& query) const {
  return MakeContext(query);
}

std::vector<std::vector<Hit>> BatchKnnEngine::QueryBatchWithContexts(
    std::span<const ts::TimeSeries> queries,
    std::span<const QueryContext* const> contexts, std::size_t k,
    std::vector<QueryStats>* stats) const {
  return QueryBatchImpl(queries, k, {}, contexts, stats, nullptr);
}

core::StatusOr<std::vector<std::vector<Hit>>>
BatchKnnEngine::TryQueryBatchWithContexts(
    std::span<const ts::TimeSeries> queries,
    std::span<const QueryContext* const> contexts, std::size_t k,
    std::vector<QueryStats>* stats) const {
  try {
    return QueryBatchWithContexts(queries, contexts, k, stats);
  } catch (const std::exception& e) {
    return core::Status(core::StatusCode::kWorkerFault, e.what());
  } catch (...) {
    return core::Status(core::StatusCode::kUnknown,
                        "non-exception thrown during batch scan");
  }
}

std::vector<std::vector<Hit>> BatchKnnEngine::QueryBatchImpl(
    std::span<const ts::TimeSeries> queries, std::size_t k,
    std::span<const std::optional<std::size_t>> excludes,
    std::span<const QueryContext* const> preset_contexts,
    std::vector<QueryStats>* stats,
    std::vector<QueryContext>* contexts_out) const {
  if (contexts_out != nullptr) contexts_out->clear();
  const std::size_t num_queries = queries.size();
  std::vector<std::vector<Hit>> results(num_queries);
  if (stats != nullptr) stats->assign(num_queries, QueryStats{});
  const std::size_t num_candidates = index_.size();
  if (num_queries == 0 || num_candidates == 0 || k == 0) return results;
  // The documented contract is excludes empty or batch-sized; a shorter
  // span keeps query→exclusion alignment for its prefix (excludes[q]
  // stays query q's exclusion) rather than silently changing meaning.
  assert(excludes.empty() || excludes.size() == num_queries);
  assert(preset_contexts.empty() || preset_contexts.size() == num_queries);
  // Preset contexts are borrowed from the caller and cannot be moved out.
  assert(preset_contexts.empty() || contexts_out == nullptr);

  // Per-query shared state; deque keeps the mutexes/atomics in place.
  std::deque<PerQueryState> states(num_queries);

  const std::size_t threads =
      options_.executor != nullptr
          ? std::max<std::size_t>(1, options_.executor->num_workers())
          : ResolveThreads(options_.num_threads, num_queries * num_candidates);

  // Worker supply for both phases: the caller's persistent executor (its
  // workers carry long-lived arenas reused across batches), or threads
  // spawned for this call with call-local arenas.
  const auto run_workers = [&](std::size_t spawn,
                               const std::function<void(ScratchArena&)>& fn) {
    if (options_.executor != nullptr) {
      options_.executor->Execute(fn);
      return;
    }
    RunOnWorkers(spawn, [&fn]() {
      ScratchArena arena;
      fn(arena);
    });
  };

  const VisitOrder visit_order = index_.options_.visit_order;

  // Chunking geometry (needed by phase 1 when kLbMass places per-query
  // boundaries): the query×candidate grid is flattened into
  // chunks-of-candidates work units drained through one atomic counter.
  std::size_t chunks_per_query;
  if (options_.chunk_size != 0) {
    chunks_per_query =
        (num_candidates + options_.chunk_size - 1) / options_.chunk_size;
  } else {
    const std::size_t units_wanted = threads * 4;
    chunks_per_query =
        num_queries >= units_wanted
            ? 1
            : (units_wanted + num_queries - 1) / num_queries;
    chunks_per_query = std::min(chunks_per_query, num_candidates);
  }
  const std::size_t chunk =
      (num_candidates + chunks_per_query - 1) / chunks_per_query;
  const std::size_t total_units = num_queries * chunks_per_query;

  // Phase 1: per-query contexts, each computed exactly once (or adopted
  // from the caller's cache), spread over the workers. Under
  // kGlobalLowerBound this also builds each query's whole-index LB_Kim
  // schedule, so phase-2 chunks slice one global cheapest-first order
  // instead of sorting per chunk — and under kLbMass the chunk boundaries
  // over that schedule, balanced by expected cost.
  {
    std::atomic<std::size_t> next{0};
    run_workers(std::min(threads, num_queries), [&](ScratchArena&) {
      std::vector<double> prefix_mass;  // reused across this worker's queries
      for (;;) {
        const std::size_t q = next.fetch_add(1, std::memory_order_relaxed);
        if (q >= num_queries) return;
        PerQueryState& state = states[q];
        if (q < preset_contexts.size() && preset_contexts[q] != nullptr) {
          state.context = preset_contexts[q];
        } else {
          state.owned_context = MakeContext(queries[q]);
          state.context = &state.owned_context;
        }
        if (visit_order == VisitOrder::kGlobalLowerBound) {
          auto& order = state.global_order;
          order.reserve(num_candidates);
          for (std::size_t i = 0; i < num_candidates; ++i) {
            order.emplace_back(
                dtw::LbKim(state.context->stats, index_.stats_[i]), i);
          }
          std::sort(order.begin(), order.end());
          if (options_.chunk_balance == ChunkBalance::kLbMass &&
              chunks_per_query > 1 && !order.empty()) {
            BuildMassBounds(order, chunks_per_query, prefix_mass,
                            &state.chunk_bounds);
          }
        }
      }
    });
  }

  // Whether the chunk scheduler needs LB_Kim at all: for the visit order,
  // or for the stage-1 prune (which CascadeDistance re-gates on the same
  // conditions). When neither consumes it, the schedule pass skips the
  // bound and the loop degenerates to the plain index-order scan.
  // (kGlobalLowerBound schedules come precomputed from phase 1.)
  const bool need_kim =
      visit_order == VisitOrder::kLowerBound ||
      (index_.options_.use_lb_kim &&
       LbKimSound(index_.options_, index_.engine_));

  // Phase 2: drain the work units. Units are ordered query-major so
  // workers gang up on the same query first and its shared best-so-far
  // tightens as early as possible.
  std::atomic<std::size_t> next{0};
  run_workers(threads, [&](ScratchArena& scratch) {
    // Idempotent per-batch setup: a persistent executor arena keeps its
    // buffers (EnsureWidth never shrinks), a fresh one sizes them here.
    scratch.set_kernel(options_.kernel);
    scratch.SizeForTargets(index_.max_length());
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= total_units) return;
      const std::size_t q = t / chunks_per_query;
      const std::size_t c = t % chunks_per_query;
      PerQueryState& state = states[q];
      std::size_t begin, end;
      if (!state.chunk_bounds.empty()) {
        // LB-mass-balanced boundaries over the query's global schedule.
        begin = state.chunk_bounds[c];
        end = state.chunk_bounds[c + 1];
      } else {
        begin = c * chunk;
        end = std::min(num_candidates, begin + chunk);
      }
      const bool has_exclude =
          q < excludes.size() && excludes[q].has_value();
      const std::size_t exclude = has_exclude ? *excludes[q] : 0;
      QueryStats local;  // merged under the query lock once per chunk
      // Schedule phase: the O(1) cached-stats LB_Kim of every candidate
      // in the chunk, then (by default) the chunk sorted ascending by
      // (bound, index) so likely-near candidates tighten the shared
      // best-so-far before the expensive tail runs. Under
      // kGlobalLowerBound the chunk instead slices the query's presorted
      // whole-index schedule. Pure scheduling either way: the hit lists
      // are identical under any order (see file comment), only the prune
      // counters move.
      auto& order = scratch.visit_order();
      order.clear();
      if (visit_order == VisitOrder::kGlobalLowerBound) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto& entry = state.global_order[i];
          if (has_exclude && exclude == entry.second) continue;
          order.push_back(entry);
        }
      } else {
        for (std::size_t i = begin; i < end; ++i) {
          if (has_exclude && exclude == i) continue;
          order.emplace_back(
              need_kim ? dtw::LbKim(state.context->stats, index_.stats_[i])
                       : 0.0,
              i);
        }
        if (visit_order == VisitOrder::kLowerBound) {
          std::sort(order.begin(), order.end());
        }
      }
      // Cascade phase, in schedule order.
      for (const auto& [kim_lb, i] : order) {
        ++local.candidates;
        const double best_so_far =
            state.best.load(std::memory_order_relaxed);
        const double d = CascadeDistance(queries[q], *state.context, i,
                                         kim_lb, best_so_far, scratch,
                                         &local);
        if (!std::isfinite(d)) continue;
        const Hit hit{i, d, index_.series_[i].label()};
        // A hit can only displace the incumbent k-th best if it is
        // strictly smaller under (distance, index); best_so_far is an
        // upper bound of that threshold, so this lock-free reject is
        // conservative and exact results are preserved.
        if (d > best_so_far) continue;
        state.Offer(hit, k);
      }
      state.MergeStats(local);
    }
  });

  if (contexts_out != nullptr) contexts_out->resize(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    results[q] = states[q].TakeSortedHits();
    if (stats != nullptr) (*stats)[q] = states[q].StatsSnapshot();
    if (contexts_out != nullptr) {
      (*contexts_out)[q] = std::move(states[q].owned_context);
    }
  }
  return results;
}

std::vector<std::vector<AlignedHit>> BatchKnnEngine::QueryBatchWithAlignments(
    std::span<const ts::TimeSeries> queries, std::size_t k,
    std::vector<QueryStats>* stats) const {
  return QueryBatchWithAlignments(queries, k, {}, stats);
}

std::vector<std::vector<AlignedHit>> BatchKnnEngine::QueryBatchWithAlignments(
    std::span<const ts::TimeSeries> queries, std::size_t k,
    std::span<const std::optional<std::size_t>> excludes,
    std::vector<QueryStats>* stats) const {
  // Distance-only scan first, with the cascade pruning at full strength;
  // alignments are then recovered for the final k winners only.
  std::vector<QueryContext> contexts;
  const std::vector<std::vector<Hit>> hits =
      QueryBatchImpl(queries, k, excludes, {}, stats, &contexts);

  std::vector<std::vector<AlignedHit>> results(hits.size());
  std::vector<std::pair<std::size_t, std::size_t>> work;  // (query, rank)
  for (std::size_t q = 0; q < hits.size(); ++q) {
    results[q].resize(hits[q].size());
    for (std::size_t r = 0; r < hits[q].size(); ++r) {
      results[q][r].hit = hits[q][r];
      work.emplace_back(q, r);
    }
  }
  if (work.empty()) return results;

  const KnnOptions& opt = index_.options_;
  // The indexed engine is distance-only (want_path stripped at
  // construction); path recovery needs its own path-mode twin. Identical
  // pipeline options mean identical features, bands, and DP values — only
  // the backtrack is added.
  std::optional<core::Sdtw> path_engine;
  if (opt.distance == DistanceKind::kSdtw) {
    core::SdtwOptions sdtw_options = opt.sdtw;
    sdtw_options.dtw.want_path = true;
    if (options_.kernel != nullptr) sdtw_options.dtw.kernel = options_.kernel;
    path_engine.emplace(sdtw_options);
  }

  const std::size_t threads =
      ResolveThreads(options_.num_threads, work.size());
  std::atomic<std::size_t> next{0};
  RunOnWorkers(threads, [&]() {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= work.size()) return;
      const auto [q, r] = work[t];
      AlignedHit& aligned = results[q][r];
      const std::size_t candidate = aligned.hit.index;
      const ts::TimeSeries& target = index_.series_[candidate];
      switch (opt.distance) {
        case DistanceKind::kEuclidean:
        case DistanceKind::kL1: {
          // Pointwise distances align i to i; a finite hit implies equal
          // lengths.
          aligned.path.reserve(queries[q].size());
          for (std::size_t i = 0; i < queries[q].size(); ++i) {
            aligned.path.emplace_back(i, i);
          }
          break;
        }
        case DistanceKind::kFullDtw: {
          dtw::DtwOptions dtw_options;
          dtw_options.cost = dtw::CostKind::kAbsolute;
          dtw_options.want_path = true;
          dtw_options.kernel = options_.kernel;
          aligned.path = dtw::Dtw(queries[q], target, dtw_options).path;
          break;
        }
        case DistanceKind::kSdtw: {
          // Abandon threshold pinned to the known distance: the DP fills
          // the same band with the same values, every row minimum is <=
          // the final distance, so the re-run can never abandon — it just
          // adds the backtrack.
          core::SdtwResult res = path_engine->CompareEarlyAbandon(
              queries[q], contexts[q].features, target,
              index_.features_[candidate], aligned.hit.distance);
          aligned.path = std::move(res.path);
          break;
        }
      }
    }
  });
  return results;
}

std::vector<int> BatchKnnEngine::ClassifyBatch(
    std::span<const ts::TimeSeries> queries, std::size_t k) const {
  return ClassifyBatch(queries, k, {});
}

std::vector<int> BatchKnnEngine::ClassifyBatch(
    std::span<const ts::TimeSeries> queries, std::size_t k,
    std::span<const std::optional<std::size_t>> excludes,
    std::vector<QueryStats>* stats) const {
  const std::vector<std::vector<Hit>> hits =
      QueryBatch(queries, k, excludes, stats);
  std::vector<int> labels(hits.size(), -1);
  for (std::size_t q = 0; q < hits.size(); ++q) {
    labels[q] = VoteLabel(hits[q]);
  }
  return labels;
}

double BatchKnnEngine::LeaveOneOutAccuracy(std::size_t k,
                                           QueryStats* aggregate) const {
  if (aggregate != nullptr) *aggregate = QueryStats{};
  const std::size_t n = index_.size();
  if (n == 0) return 0.0;
  std::vector<std::optional<std::size_t>> excludes(n);
  for (std::size_t i = 0; i < n; ++i) excludes[i] = i;
  std::vector<QueryStats> stats;
  const std::vector<int> predicted = ClassifyBatch(
      index_.series_, k, excludes, aggregate != nullptr ? &stats : nullptr);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (predicted[i] == index_.series_[i].label()) ++correct;
    if (aggregate != nullptr) aggregate->Merge(stats[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace retrieval
}  // namespace sdtw
