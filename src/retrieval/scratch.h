#ifndef SDTW_RETRIEVAL_SCRATCH_H_
#define SDTW_RETRIEVAL_SCRATCH_H_

/// \file scratch.h
/// \brief Per-query context and per-worker scratch for batched retrieval.
///
/// The batch engine separates the two kinds of state a multi-query cascade
/// needs:
///  * QueryContext — immutable per-query derivatives (LB_Kim summary,
///    Keogh envelope, salient features), computed exactly once per query
///    up front and shared read-only by every worker (paper §3.4: extract
///    once, reuse for every comparison);
///  * ScratchArena — mutable per-worker buffers, above all the rolling DTW
///    rows, sized once to the widest requirement across the whole index
///    (via dtw::MaxDpRowWidth / the maximum candidate length) so the hot
///    query×candidate loop never allocates.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "dtw/band.h"
#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "sift/keypoint.h"
#include "ts/time_series.h"

namespace sdtw {
namespace retrieval {

/// \brief Read-only per-query state, computed once per query per batch.
struct QueryContext {
  /// LB_Kim summary (first/last/min/max) of the query.
  dtw::SeriesStats stats;
  /// Keogh envelope of the query itself, for the reverse LB_Keogh test
  /// (candidate against the query envelope). Empty when LB_Keogh is off or
  /// not applicable to the configured distance.
  dtw::Envelope envelope;
  /// Salient features of the query (sDTW distance only).
  std::vector<sift::Keypoint> features;
};

/// \brief Mutable per-worker scratch reused across every candidate a
/// worker touches.
///
/// Ownership is the capability: an arena is confined to the single worker
/// thread that created it — it is never shared, so it carries no lock and
/// no SDTW_GUARDED_BY annotations (there is nothing for the thread-safety
/// analysis to check; handing one arena to two racing workers is a
/// use-after-transfer bug, not a missing-lock bug). The batch engine
/// constructs one arena inside each worker's thread function, which is
/// what makes its hot loop allocation- and lock-free.
class ScratchArena {
 public:
  ScratchArena() = default;

  /// Sizes the rolling DP buffers for an index whose longest series has
  /// `max_target_length` samples: any full-grid or banded rolling kernel
  /// against such a candidate needs at most max_target_length + 1 doubles
  /// per row. Call once before the hot loop; idempotent, never shrinks.
  /// (The dtw scratch kernels also self-size on demand, so skipping this
  /// is safe — pre-sizing just keeps reallocation out of the hot loop.)
  void SizeForTargets(std::size_t max_target_length);

  /// The rolling-row DP buffers, handed to the dtw scratch kernels.
  dtw::DtwScratch& dp() { return dp_; }
  std::size_t dp_width() const { return dp_.width(); }

  /// Pins the row-kernel variant every DP this worker runs uses (nullptr
  /// = process-wide active variant); forwarded to the dtw scratch so the
  /// cascade's kernels pick it up without further plumbing.
  void set_kernel(const dtw::RowKernelOps* ops) { dp_.set_kernel(ops); }

  /// Reusable (LB_Kim, candidate index) schedule of the chunk currently
  /// being scanned — cleared per chunk, capacity retained across chunks so
  /// LB-ordered visiting allocates only on the first chunk a worker sees.
  std::vector<std::pair<double, std::size_t>>& visit_order() {
    return visit_order_;
  }

 private:
  dtw::DtwScratch dp_;
  std::vector<std::pair<double, std::size_t>> visit_order_;
};

/// \brief Supplier of the worker threads — and the per-worker arenas they
/// exclusively own — that a batch execution runs on.
///
/// By default BatchKnnEngine spawns its workers per call and each worker
/// constructs a fresh ScratchArena, which is fine for one-shot batches but
/// wasteful for a long-lived service dispatching micro-batches at high
/// rate: every batch would re-allocate every worker's DP rows. A
/// persistent implementation (retrieval::WorkerPool in service.h) keeps
/// the threads and their arenas alive across batches, so the hot loop of
/// batch N+1 reuses the buffers batch N sized.
///
/// Contract: Execute runs `fn(arena)` exactly once on every worker, each
/// call receiving the arena that worker (and only that worker) owns, and
/// returns only after all calls completed. Executions must not overlap —
/// one Execute at a time per executor. Results never depend on which
/// executor ran a batch: the engine's determinism guarantee (batch.h) is
/// scheduling-independent.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;
  /// Number of workers Execute fans out to (>= 1).
  virtual std::size_t num_workers() const = 0;
  /// Runs fn once per worker with that worker's arena; blocks until all
  /// workers finished.
  virtual void Execute(const std::function<void(ScratchArena&)>& fn) = 0;
};

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_SCRATCH_H_
