#ifndef SDTW_RETRIEVAL_KNN_H_
#define SDTW_RETRIEVAL_KNN_H_

/// \file knn.h
/// \brief k-nearest-neighbour retrieval and classification engines over
/// DTW-family distances.
///
/// This is the deployment surface the paper's cost model (§3.4) implies:
/// salient features are extracted once per indexed series and reused across
/// every query. The engine layers the standard lower-bound cascade of the
/// UCR-suite line of work ([7], [16]) in front of the DP:
///
///   LB_Kim (O(1)) -> LB_Keogh (O(n)) -> early-abandoning banded DTW
///
/// so that most candidates are discarded before any grid cell is filled.

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/sdtw.h"
#include "dtw/lower_bounds.h"
#include "ts/time_series.h"

namespace sdtw {
namespace retrieval {

/// \brief Which distance the engine ranks by.
enum class DistanceKind {
  kFullDtw,   ///< Exact O(NM) DTW.
  kSdtw,      ///< Salient-feature constrained DTW (the paper's sDTW).
  kEuclidean, ///< True Euclidean (sqrt of summed squared pointwise
              ///< differences) on equal lengths (baseline).
  kL1,        ///< Pointwise L1 (sum of absolute differences) on equal
              ///< lengths (baseline).
};

/// \brief Engine configuration.
struct KnnOptions {
  DistanceKind distance = DistanceKind::kSdtw;
  core::SdtwOptions sdtw;
  /// Enable the LB_Kim constant-time prefilter.
  bool use_lb_kim = true;
  /// Enable the LB_Keogh envelope prefilter (equal-length series only).
  bool use_lb_keogh = true;
  /// Envelope radius for LB_Keogh as a fraction of the series length.
  double keogh_radius_fraction = 0.1;
  /// Enable early-abandoning DP against the best-so-far distance (only
  /// applies to the kFullDtw distance; the banded sDTW DP is already
  /// heavily pruned).
  bool use_early_abandon = true;
};

/// \brief One retrieval hit.
struct Hit {
  std::size_t index = 0;  ///< Index into the indexed data set.
  double distance = 0.0;
  int label = -1;
};

/// \brief Statistics of one query (how much work the cascade saved).
struct QueryStats {
  std::size_t candidates = 0;
  std::size_t pruned_by_kim = 0;
  std::size_t pruned_by_keogh = 0;
  std::size_t pruned_by_early_abandon = 0;
  std::size_t dp_evaluations = 0;
};

/// \brief A kNN engine over an indexed data set.
///
/// Index construction extracts and caches per-series salient features and
/// LB_Keogh envelopes; queries reuse them (the paper's one-time extraction
/// cost model).
class KnnEngine {
 public:
  explicit KnnEngine(KnnOptions options = {});

  /// Indexes the data set (copies it; features/envelopes cached).
  void Index(const ts::Dataset& dataset);

  std::size_t size() const { return series_.size(); }
  const KnnOptions& options() const { return options_; }

  /// Returns the k nearest indexed series to the query, ascending distance.
  /// `exclude` (optional index) supports leave-one-out evaluation over the
  /// indexed set itself. Stats (when non-null) receive cascade counters.
  std::vector<Hit> Query(const ts::TimeSeries& query, std::size_t k,
                         std::optional<std::size_t> exclude = std::nullopt,
                         QueryStats* stats = nullptr) const;

  /// Majority-vote kNN classification; ties resolved toward the nearer
  /// neighbour set (smallest summed distance). Returns -1 on an empty
  /// index.
  int Classify(const ts::TimeSeries& query, std::size_t k,
               std::optional<std::size_t> exclude = std::nullopt) const;

  /// Leave-one-out classification accuracy over the indexed set.
  double LeaveOneOutAccuracy(std::size_t k) const;

 private:
  double Distance(const ts::TimeSeries& query,
                  const dtw::SeriesStats& query_stats,
                  const std::vector<sift::Keypoint>& query_features,
                  std::size_t candidate, double best_so_far,
                  QueryStats* stats) const;

  KnnOptions options_;
  core::Sdtw engine_;
  std::vector<ts::TimeSeries> series_;
  std::vector<std::vector<sift::Keypoint>> features_;
  std::vector<dtw::Envelope> envelopes_;
  /// Cached per-series min/max/first/last so the LB_Kim cascade stage is
  /// O(1) per candidate (no rescan of the candidate series per query).
  std::vector<dtw::SeriesStats> stats_;
  std::size_t keogh_radius_ = 0;
};

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_KNN_H_
