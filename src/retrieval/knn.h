#ifndef SDTW_RETRIEVAL_KNN_H_
#define SDTW_RETRIEVAL_KNN_H_

/// \file knn.h
/// \brief k-nearest-neighbour retrieval and classification engines over
/// DTW-family distances.
///
/// This is the deployment surface the paper's cost model (§3.4) implies:
/// salient features are extracted once per indexed series and reused across
/// every query. The engine layers the standard lower-bound cascade of the
/// UCR-suite line of work ([7], [16]) in front of the DP:
///
///   LB_Kim (O(1)) -> LB_Keogh (O(n)) -> early-abandoning banded DTW
///
/// so that most candidates are discarded before any grid cell is filled.

#include <cstddef>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/sdtw.h"
#include "dtw/lower_bounds.h"
#include "ts/time_series.h"

namespace sdtw {
namespace retrieval {

/// \brief Which distance the engine ranks by.
enum class DistanceKind {
  kFullDtw,   ///< Exact O(NM) DTW.
  kSdtw,      ///< Salient-feature constrained DTW (the paper's sDTW).
  kEuclidean, ///< True Euclidean (sqrt of summed squared pointwise
              ///< differences) on equal lengths (baseline).
  kL1,        ///< Pointwise L1 (sum of absolute differences) on equal
              ///< lengths (baseline).
};

/// \brief Order in which the cascade visits the candidates of one work
/// chunk (the UCR-suite scheduling refinement, Rakthanmanon et al. 2012).
enum class VisitOrder {
  /// Ascending candidate index — the order a naive scan uses.
  kIndexOrder,
  /// Ascending cached LB_Kim: cheap likely-near candidates run first, so
  /// the best-so-far tightens early and the Keogh/early-abandon stages
  /// prune more of the expensive tail. Results are bitwise identical to
  /// kIndexOrder — hits are the k smallest (distance, index) pairs and
  /// every prune is conservative against the racing best-so-far — with
  /// typically far fewer DPs run (~3x fewer on bench_batch_retrieval's
  /// default workload; workload-dependent, not a per-dataset theorem).
  kLowerBound,
  /// Ascending cached LB_Kim over the query's *entire* candidate set,
  /// presorted once per query before chunking (kLowerBound sorts each
  /// chunk independently). Chunks then slice the global schedule, so the
  /// cheapest candidates index-set-wide run first regardless of how many
  /// chunks the scheduler cut — which matters when high thread counts
  /// shrink chunks until per-chunk ordering degenerates toward index
  /// order. Costs one O(N log N) sort (and an O(N) schedule buffer) per
  /// query per batch. Hit lists remain bitwise identical to both other
  /// orders, for the same reason as kLowerBound.
  kGlobalLowerBound,
};

/// \brief Engine configuration.
struct KnnOptions {
  DistanceKind distance = DistanceKind::kSdtw;
  core::SdtwOptions sdtw;
  /// Candidate visit order inside each batch work chunk. LB_Kim is O(1)
  /// per candidate from cached summaries, so the ordering itself costs one
  /// sort per chunk; it is used purely as a schedule (never as a prune)
  /// whenever LB_Kim is not a sound bound for the configured distance.
  VisitOrder visit_order = VisitOrder::kLowerBound;
  /// Enable the LB_Kim constant-time prefilter.
  bool use_lb_kim = true;
  /// Enable the LB_Keogh envelope prefilter (exact-DTW mode, equal-length
  /// series only). Envelopes span the whole series (global min/max): a
  /// radius-r envelope only lower-bounds r-window-constrained DTW, and the
  /// kFullDtw mode ranks by *unconstrained* DTW, for which the full span
  /// is the only sound radius (an optimal warp may displace arbitrarily
  /// far, but every x_i still aligns to some value in [min(y), max(y)]).
  bool use_lb_keogh = true;
  /// Enable early-abandoning DP against the best-so-far distance. Applies
  /// to both DTW modes: the kFullDtw rolling kernel, and the kSdtw banded
  /// kernel (band pruning and best-so-far pruning compose).
  bool use_early_abandon = true;
};

/// \brief One retrieval hit.
struct Hit {
  std::size_t index = 0;  ///< Index into the indexed data set.
  double distance = 0.0;
  int label = -1;
};

/// \brief Statistics of one query (how much work the cascade saved).
///
/// The four outcome counters partition the scanned candidates exactly:
/// pruned_by_kim + pruned_by_keogh + pruned_by_early_abandon +
/// dp_evaluations == candidates, under every visit order and thread count.
/// lb_keogh_skipped and lb_keogh_abandoned are stage-level counts
/// orthogonal to that partition: skipped counts candidates whose Keogh
/// stage could not run (length mismatch with the query — LB_Keogh is only
/// defined on equal lengths) and which continued down the cascade instead
/// of being silently counted as Keogh-checked; abandoned counts Keogh
/// evaluations (up to two per candidate, one per direction) whose
/// cumulative sum crossed the best-so-far before the pass completed and
/// stopped early (LbKeoghAbandoning), saving part of the O(n) bound
/// computation on top of the prune itself.
struct QueryStats {
  std::size_t candidates = 0;
  std::size_t pruned_by_kim = 0;
  std::size_t pruned_by_keogh = 0;
  std::size_t pruned_by_early_abandon = 0;
  std::size_t dp_evaluations = 0;
  std::size_t lb_keogh_skipped = 0;
  std::size_t lb_keogh_abandoned = 0;

  /// Accumulates another set of counters into this one (per-chunk merge in
  /// the batch engine, per-query aggregation in reporting).
  void Merge(const QueryStats& other) {
    candidates += other.candidates;
    pruned_by_kim += other.pruned_by_kim;
    pruned_by_keogh += other.pruned_by_keogh;
    pruned_by_early_abandon += other.pruned_by_early_abandon;
    dp_evaluations += other.dp_evaluations;
    lb_keogh_skipped += other.lb_keogh_skipped;
    lb_keogh_abandoned += other.lb_keogh_abandoned;
  }
  /// Fraction of candidates the cascade resolved without a completed DP:
  /// 1 − dp_evaluations / candidates (0 on an empty scan).
  double prune_rate() const {
    return candidates > 0 ? 1.0 - static_cast<double>(dp_evaluations) /
                                      static_cast<double>(candidates)
                          : 0.0;
  }
};

/// Majority vote over a hit list (ascending by distance): the label with
/// the most votes; vote-count ties resolve to the smaller summed distance,
/// then to the smaller label. Returns -1 on an empty hit list. Shared by
/// the single-query and batched classifiers so tie-breaking is identical
/// everywhere.
int VoteLabel(const std::vector<Hit>& hits);

/// \brief A kNN engine over an indexed data set.
///
/// Index construction extracts and caches per-series salient features and
/// LB_Keogh envelopes; queries reuse them (the paper's one-time extraction
/// cost model). The query-time cascade itself lives in BatchKnnEngine
/// (batch.h): Query() is a batch-of-one wrapper, so single-query and
/// batched retrieval share one implementation.
class KnnEngine {
 public:
  explicit KnnEngine(KnnOptions options = {});

  /// Indexes the data set (copies it; features/envelopes cached).
  void Index(const ts::Dataset& dataset);

  std::size_t size() const { return series_.size(); }
  const KnnOptions& options() const { return options_; }
  /// Length of the longest indexed series (0 on an empty index) — the
  /// sizing bound for per-worker DP scratch.
  std::size_t max_length() const { return max_length_; }

  /// Returns the k nearest indexed series to the query, ascending distance.
  /// `exclude` (optional index) supports leave-one-out evaluation over the
  /// indexed set itself. Stats (when non-null) receive cascade counters.
  std::vector<Hit> Query(const ts::TimeSeries& query, std::size_t k,
                         std::optional<std::size_t> exclude = std::nullopt,
                         QueryStats* stats = nullptr) const;

  /// Majority-vote kNN classification (VoteLabel over the Query hits).
  /// Returns -1 on an empty index.
  int Classify(const ts::TimeSeries& query, std::size_t k,
               std::optional<std::size_t> exclude = std::nullopt) const;

  /// Leave-one-out classification accuracy over the indexed set, executed
  /// as one batch over `num_threads` workers (0 = hardware concurrency).
  /// The result is deterministic regardless of the thread count.
  double LeaveOneOutAccuracy(std::size_t k,
                             std::size_t num_threads = 0) const;

 private:
  friend class BatchKnnEngine;

  KnnOptions options_;
  core::Sdtw engine_;
  std::vector<ts::TimeSeries> series_;
  std::vector<std::vector<sift::Keypoint>> features_;
  std::vector<dtw::Envelope> envelopes_;
  /// Cached per-series min/max/first/last so the LB_Kim cascade stage is
  /// O(1) per candidate (no rescan of the candidate series per query).
  std::vector<dtw::SeriesStats> stats_;
  /// Distinct indexed lengths: a query envelope is only worth building
  /// when at least one candidate shares the query's length (LB_Keogh is
  /// undefined across lengths).
  std::unordered_set<std::size_t> lengths_;
  std::size_t max_length_ = 0;
};

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_KNN_H_
