#ifndef SDTW_RETRIEVAL_LATENCY_H_
#define SDTW_RETRIEVAL_LATENCY_H_

/// \file latency.h
/// \brief Per-query latency recording with percentile snapshots.
///
/// The retrieval service records one sample per query — the wall time from
/// Submit to result-ready, which under micro-batching includes the
/// coalescing delay, not just the scan. Snapshots report nearest-rank
/// percentiles (p50/p95/p99) over a bounded sliding window of the most
/// recent samples plus all-time count/mean/max, which is what the bench
/// JSON and the perf gate consume.
///
/// Thread-safe: writers from many completion paths and readers taking
/// snapshots serialize on one annotated core::Mutex. Recording is O(1)
/// (ring-buffer overwrite); Snapshot copies and sorts the window, so it is
/// meant for end-of-run or low-rate metric scrapes, not per-query calls.

#include <cstddef>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace sdtw {
namespace retrieval {

/// \brief Point-in-time latency statistics, microseconds.
struct LatencySnapshot {
  std::size_t count = 0;        ///< All-time samples recorded.
  std::size_t window = 0;       ///< Samples the percentiles are over.
  double mean_us = 0.0;         ///< All-time mean.
  double max_us = 0.0;          ///< All-time maximum.
  double p50_us = 0.0;          ///< Window percentiles, nearest-rank.
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// \brief Bounded-window latency aggregator.
class LatencyRecorder {
 public:
  /// `window_capacity` bounds the percentile window (>= 1 enforced).
  explicit LatencyRecorder(std::size_t window_capacity = 4096);

  /// Records one sample; negative values are clamped to 0 (a clock
  /// hiccup must not poison the percentiles).
  void Record(double latency_us) SDTW_EXCLUDES(mu_);

  LatencySnapshot Snapshot() const SDTW_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  mutable core::Mutex mu_;
  /// Ring buffer of the most recent samples; `next_` is the overwrite
  /// cursor once `ring_` reached capacity.
  std::vector<double> ring_ SDTW_GUARDED_BY(mu_);
  std::size_t next_ SDTW_GUARDED_BY(mu_) = 0;
  std::size_t count_ SDTW_GUARDED_BY(mu_) = 0;
  double sum_us_ SDTW_GUARDED_BY(mu_) = 0.0;
  double max_us_ SDTW_GUARDED_BY(mu_) = 0.0;
};

/// Nearest-rank percentile (p in [0,100]) of an unsorted sample set;
/// 0 when empty. Exposed for the recorder's tests.
double NearestRankPercentile(std::vector<double> samples, double p);

}  // namespace retrieval
}  // namespace sdtw

#endif  // SDTW_RETRIEVAL_LATENCY_H_
