#include "retrieval/latency.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace sdtw {
namespace retrieval {

double NearestRankPercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest sample with at least ceil(p/100 * n)
  // samples <= it; rank 0 (p == 0) maps to the minimum.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

LatencyRecorder::LatencyRecorder(std::size_t window_capacity)
    : capacity_(window_capacity == 0 ? 1 : window_capacity) {}

void LatencyRecorder::Record(double latency_us) {
  const double sample = latency_us < 0.0 ? 0.0 : latency_us;
  core::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(sample);
  } else {
    ring_[next_] = sample;
    next_ = (next_ + 1) % capacity_;
  }
  ++count_;
  sum_us_ += sample;
  max_us_ = std::max(max_us_, sample);
}

LatencySnapshot LatencyRecorder::Snapshot() const {
  std::vector<double> window;
  LatencySnapshot snap;
  {
    core::MutexLock lock(mu_);
    window = ring_;
    snap.count = count_;
    snap.mean_us = count_ == 0 ? 0.0 : sum_us_ / static_cast<double>(count_);
    snap.max_us = max_us_;
  }
  snap.window = window.size();
  if (!window.empty()) {
    // One sort, three ranks.
    std::sort(window.begin(), window.end());
    const auto rank = [&](double p) {
      const std::size_t r = static_cast<std::size_t>(
          std::ceil(p / 100.0 * static_cast<double>(window.size())));
      return window[r == 0 ? 0 : r - 1];
    };
    snap.p50_us = rank(50.0);
    snap.p95_us = rank(95.0);
    snap.p99_us = rank(99.0);
  }
  return snap;
}

}  // namespace retrieval
}  // namespace sdtw
