#ifndef SDTW_SIFT_KEYPOINT_H_
#define SDTW_SIFT_KEYPOINT_H_

/// \file keypoint.h
/// \brief Salient feature (keypoint) representation for 1-D time series.
///
/// A salient feature, per paper §3.1.2, is a scale-space extremum ⟨x, σ⟩ of
/// the difference-of-Gaussian series. It carries a temporal position, a
/// temporal scale, a scope of radius 3σ (under Gaussian smoothing three
/// standard deviations cover ~99.73% of the contributing samples), an
/// amplitude, and a gradient-histogram descriptor used for matching.

#include <cstddef>
#include <vector>

namespace sdtw {
namespace sift {

/// \brief A salient feature with its temporal descriptor.
struct Keypoint {
  /// Centre position in original-resolution samples.
  double position = 0.0;
  /// Temporal scale σ in original-resolution samples.
  double sigma = 0.0;
  /// Octave index the feature was detected in (0 = original resolution).
  std::size_t octave = 0;
  /// DoG level within the octave.
  std::size_t level = 0;
  /// DoG response at the extremum (signed; sign distinguishes peaks from
  /// dips).
  double response = 0.0;
  /// Smoothed series value at the feature centre — the feature "amplitude"
  /// compared against τ_a during matching.
  double amplitude = 0.0;
  /// Gradient descriptor (length = 2a * 2, see Descriptor creation).
  std::vector<double> descriptor;

  /// Scope radius: 3σ.
  double scope_radius() const { return 3.0 * sigma; }

  /// Scope start, clamped at 0.
  double scope_start() const {
    const double s = position - scope_radius();
    return s > 0.0 ? s : 0.0;
  }

  /// Scope end (not clamped to the series length here; callers clamp).
  double scope_end() const { return position + scope_radius(); }

  /// Temporal length of the scope (unclamped).
  double scope_length() const { return 2.0 * scope_radius(); }
};

/// Scale classes used by the paper's Table 2 reporting.
enum class ScaleClass {
  kFine,    ///< Octave 0 — features at the original time resolution.
  kMedium,  ///< Octave 1.
  kRough,   ///< Octave 2 and coarser.
};

/// Buckets a keypoint into fine/medium/rough by its octave.
inline ScaleClass ClassifyScale(const Keypoint& kp) {
  if (kp.octave == 0) return ScaleClass::kFine;
  if (kp.octave == 1) return ScaleClass::kMedium;
  return ScaleClass::kRough;
}

}  // namespace sift
}  // namespace sdtw

#endif  // SDTW_SIFT_KEYPOINT_H_
