#include "sift/extractor.h"

#include <algorithm>
#include <cmath>

#include "signal/gaussian.h"

namespace sdtw {
namespace sift {

namespace {

// Quadratic sub-sample refinement of an extremum at index i of d:
// fits a parabola through (i-1, i, i+1) and returns the fractional offset
// of its apex in [-0.5, 0.5].
double RefineOffset(const std::vector<double>& d, std::size_t i) {
  if (i == 0 || i + 1 >= d.size()) return 0.0;
  const double left = d[i - 1];
  const double mid = d[i];
  const double right = d[i + 1];
  const double denom = left - 2.0 * mid + right;
  if (std::abs(denom) < 1e-12) return 0.0;
  double offset = 0.5 * (left - right) / denom;
  return std::clamp(offset, -0.5, 0.5);
}

}  // namespace

SalientExtractor::SalientExtractor(ExtractorOptions options)
    : options_(std::move(options)) {
  if (options_.descriptor_length < 2) options_.descriptor_length = 2;
  if (options_.descriptor_length % 2 != 0) ++options_.descriptor_length;
  options_.epsilon = std::clamp(options_.epsilon, 0.0, 1.0);
}

std::vector<Keypoint> SalientExtractor::Detect(
    const signal::ScaleSpace& space) const {
  std::vector<Keypoint> keypoints;
  const double eps = options_.epsilon;

  for (const signal::Octave& oct : space.octaves()) {
    const std::size_t num_dogs = oct.dogs.size();
    if (num_dogs < 3) continue;
    // Interior DoG levels have both scale neighbours.
    for (std::size_t l = 1; l + 1 < num_dogs; ++l) {
      const std::vector<double>& cur = oct.dogs[l];
      const std::vector<double>& down = oct.dogs[l - 1];
      const std::vector<double>& up = oct.dogs[l + 1];
      const std::size_t len = cur.size();
      if (len < 3) continue;
      for (std::size_t i = 1; i + 1 < len; ++i) {
        const double v = cur[i];
        if (std::abs(v) < options_.min_contrast) continue;

        // Relaxed extremum test against the 8 (time, scale) neighbours:
        // accepted when v >= (1 - eps) * each neighbour (maxima) or the
        // mirrored test for minima. Written on the signed values so that a
        // peak among dips is not suppressed by magnitude alone.
        const double neighbors[8] = {cur[i - 1], cur[i + 1], down[i - 1],
                                     down[i],    down[i + 1], up[i - 1],
                                     up[i],      up[i + 1]};
        bool is_max = v > 0.0;
        bool is_min = options_.detect_minima && v < 0.0;
        for (const double nb : neighbors) {
          if (is_max && v < (1.0 - eps) * std::max(nb, 0.0)) is_max = false;
          if (is_min && v > (1.0 - eps) * std::min(nb, 0.0)) is_min = false;
          if (!is_max && !is_min) break;
        }
        if (!is_max && !is_min) continue;

        Keypoint kp;
        kp.octave = oct.index;
        kp.level = l;
        const double offset = RefineOffset(cur, i);
        kp.position =
            space.ToOriginalPosition(oct.index,
                                     static_cast<double>(i) + offset);
        kp.sigma = space.AbsoluteSigma(oct.index, l);
        kp.response = v;
        // Amplitude from the matching Gaussian level (smoothed value at the
        // feature centre).
        const std::vector<double>& g = oct.gaussians[l];
        kp.amplitude = g[std::min(i, g.size() - 1)];
        keypoints.push_back(std::move(kp));
      }
    }
  }
  std::sort(keypoints.begin(), keypoints.end(),
            [](const Keypoint& a, const Keypoint& b) {
              if (a.position != b.position) return a.position < b.position;
              return a.sigma < b.sigma;
            });
  return keypoints;
}

std::vector<double> SalientExtractor::Describe(
    const signal::ScaleSpace& space, const Keypoint& keypoint) const {
  const std::size_t num_cells = options_.descriptor_length / 2;
  std::vector<double> desc(options_.descriptor_length, 0.0);

  if (keypoint.octave >= space.octaves().size()) return desc;
  const signal::Octave& oct = space.octaves()[keypoint.octave];
  const std::size_t gl = std::min(keypoint.level, oct.gaussians.size() - 1);
  const std::vector<double>& g = oct.gaussians[gl];
  if (g.size() < 2) return desc;
  const std::vector<double> grad = signal::Gradient(g);

  // Window on the octave's own grid, centred at the keypoint.
  const double octave_factor =
      static_cast<double>(std::size_t{1} << keypoint.octave);
  const double center = keypoint.position / octave_factor;
  const double window = options_.cell_width * static_cast<double>(num_cells);
  const double half = window / 2.0;
  // Gaussian weighting over the window (SIFT uses sigma = half window).
  const double wsigma = std::max(half / 2.0, 1e-6);

  const long n = static_cast<long>(g.size());
  const long first = static_cast<long>(std::floor(center - half));
  const long last = static_cast<long>(std::ceil(center + half));
  for (long t = first; t <= last; ++t) {
    if (t < 0 || t >= n) continue;
    const double rel = static_cast<double>(t) - center + half;  // [0, window)
    if (rel < 0.0 || rel >= window) continue;
    std::size_t cell = static_cast<std::size_t>(rel / options_.cell_width);
    if (cell >= num_cells) cell = num_cells - 1;
    const double dist = static_cast<double>(t) - center;
    const double weight = std::exp(-(dist * dist) / (2.0 * wsigma * wsigma));
    const double gv = grad[static_cast<std::size_t>(t)];
    // Two orientation bins per cell: rising (gradient > 0) and falling.
    if (gv >= 0.0) {
      desc[cell * 2] += weight * gv;
    } else {
      desc[cell * 2 + 1] += weight * (-gv);
    }
  }

  if (options_.normalize_descriptor) {
    auto renorm = [&desc]() {
      double norm = 0.0;
      for (double v : desc) norm += v * v;
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (double& v : desc) v /= norm;
      }
      return norm;
    };
    if (renorm() > 1e-12 && options_.descriptor_clamp > 0.0) {
      bool clamped = false;
      for (double& v : desc) {
        if (v > options_.descriptor_clamp) {
          v = options_.descriptor_clamp;
          clamped = true;
        }
      }
      if (clamped) renorm();
    }
  }
  return desc;
}

std::vector<Keypoint> SalientExtractor::Extract(
    const ts::TimeSeries& series) const {
  signal::ScaleSpace space(series, options_.scale_space);
  std::vector<Keypoint> keypoints = Detect(space);

  // Enforce the |S| << N cost model of §3.4: keep the strongest responses.
  std::size_t cap = options_.max_keypoints;
  if (cap == 0 && options_.max_keypoints_fraction > 0.0) {
    cap = static_cast<std::size_t>(
        std::ceil(options_.max_keypoints_fraction *
                  static_cast<double>(series.size())));
  }
  if (cap > 0 && keypoints.size() > cap) {
    std::nth_element(keypoints.begin(),
                     keypoints.begin() + static_cast<long>(cap),
                     keypoints.end(),
                     [](const Keypoint& a, const Keypoint& b) {
                       return std::abs(a.response) > std::abs(b.response);
                     });
    keypoints.resize(cap);
    std::sort(keypoints.begin(), keypoints.end(),
              [](const Keypoint& a, const Keypoint& b) {
                if (a.position != b.position) return a.position < b.position;
                return a.sigma < b.sigma;
              });
  }

  for (Keypoint& kp : keypoints) {
    kp.descriptor = Describe(space, kp);
    // Clamp positions into the series (sub-sample refinement can nudge a
    // boundary feature slightly outside).
    kp.position = std::clamp(kp.position, 0.0,
                             static_cast<double>(series.size() - 1));
  }
  return keypoints;
}

ScaleHistogram CountByScale(const std::vector<Keypoint>& keypoints) {
  ScaleHistogram h;
  for (const Keypoint& kp : keypoints) {
    switch (ClassifyScale(kp)) {
      case ScaleClass::kFine:
        h.fine += 1;
        break;
      case ScaleClass::kMedium:
        h.medium += 1;
        break;
      case ScaleClass::kRough:
        h.rough += 1;
        break;
    }
  }
  return h;
}

}  // namespace sift
}  // namespace sdtw
