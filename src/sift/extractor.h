#ifndef SDTW_SIFT_EXTRACTOR_H_
#define SDTW_SIFT_EXTRACTOR_H_

/// \file extractor.h
/// \brief 1-D SIFT-style salient feature extraction (paper §3.1.2).
///
/// Step 1 (scale-space extrema detection) searches the DoG pyramid for
/// points ⟨x, σ⟩ that are larger than (1 − ε)× each of their neighbours in
/// time and scale — a *relaxed* extremum test: the paper deliberately does
/// not over-prune keypoints, since nearby features help rather than hurt
/// band construction. Step 2 (descriptor creation) samples Gaussian-weighted
/// gradient magnitudes around each surviving point into a 2a × 2 histogram.
///
/// Extraction is a one-time, per-series operation (paper §3.4): extract
/// once, reuse across every pairwise comparison.

#include <cstddef>
#include <vector>

#include "sift/keypoint.h"
#include "signal/scale_space.h"
#include "ts/time_series.h"

namespace sdtw {
namespace sift {

/// \brief Configuration of the salient feature extractor.
struct ExtractorOptions {
  /// Scale-space construction parameters (octaves default to the paper's
  /// o = ⌊log2 N⌋ − 6 via ScaleSpaceOptions::num_octaves == 0, s = 2).
  signal::ScaleSpaceOptions scale_space;

  /// Relaxation ε of the extremum test: a point survives when its |DoG|
  /// response is >= (1 − ε) × every neighbour's. The paper quotes
  /// "ε = 0.96%"; reproducing Table 2's keypoint densities (~3 points per
  /// sample) requires reading this as 1 − ε = 0.04, i.e. ε = 0.96 — a
  /// heavily relaxed test whose real filtering happens downstream in
  /// matching and inconsistency pruning (see DESIGN.md).
  double epsilon = 0.96;

  /// Minimum |DoG| response; suppresses low-contrast keypoints (SIFT step 2
  /// analogue). Relative to the series' value scale — series are typically
  /// z-normalised first. 0 disables the filter. 0.01 sits above the DoG
  /// response of typical observation noise on z-normalised series, which is
  /// what makes the per-scale keypoint counts reflect data structure rather
  /// than pyramid geometry (Table 2).
  double min_contrast = 0.01;

  /// Upper bound on the number of keypoints kept per series (strongest
  /// |DoG| response wins; 0 disables). §3.4's cost model assumes
  /// |S_X| ≪ N, so the default caps the count at a fraction of the series
  /// length via max_keypoints_fraction when this is 0.
  std::size_t max_keypoints = 0;

  /// When max_keypoints == 0, the cap is
  /// ceil(max_keypoints_fraction * series length); <= 0 disables capping
  /// entirely (used by the Table 2 density analysis). 0.1 keeps |S| ≪ N
  /// while measurably *improving* alignment quality over denser pools: the
  /// strongest responses give the most reliable matches.
  double max_keypoints_fraction = 0.1;

  /// Total descriptor length (2a × 2); must be an even number >= 2. The
  /// paper sweeps 4..128 and defaults to 64.
  std::size_t descriptor_length = 64;

  /// Samples per descriptor cell on the detection octave's grid (SIFT uses
  /// 16px/4cells = 4).
  double cell_width = 4.0;

  /// Normalise descriptors to unit length (invariance against variations in
  /// absolute values, §3.1.2; can be turned off when absolute amplitudes
  /// matter).
  bool normalize_descriptor = true;

  /// SIFT-style clamp applied after normalisation to reduce the influence
  /// of single large gradients; 0 disables.
  double descriptor_clamp = 0.2;

  /// When true, both maxima and minima of the DoG are detected (peaks and
  /// dips are both salient in time series).
  bool detect_minima = true;
};

/// \brief Extracts salient features from time series.
class SalientExtractor {
 public:
  explicit SalientExtractor(ExtractorOptions options = {});

  const ExtractorOptions& options() const { return options_; }

  /// Runs detection + description on one series. Returned keypoints are in
  /// original-resolution coordinates, sorted by position.
  std::vector<Keypoint> Extract(const ts::TimeSeries& series) const;

  /// Detection only (no descriptors); useful for analyses such as Table 2.
  std::vector<Keypoint> Detect(const signal::ScaleSpace& space) const;

  /// Computes the descriptor of a keypoint against its octave in `space`.
  /// The keypoint must carry valid octave/level indices.
  std::vector<double> Describe(const signal::ScaleSpace& space,
                               const Keypoint& keypoint) const;

 private:
  ExtractorOptions options_;
};

/// Counts keypoints per scale class (Table 2 reporting).
struct ScaleHistogram {
  double fine = 0;
  double medium = 0;
  double rough = 0;
  double total() const { return fine + medium + rough; }
};

/// Buckets `keypoints` into the Table 2 scale classes.
ScaleHistogram CountByScale(const std::vector<Keypoint>& keypoints);

}  // namespace sift
}  // namespace sdtw

#endif  // SDTW_SIFT_EXTRACTOR_H_
