#include "align/matching.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sdtw {
namespace align {

double DescriptorDistance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

namespace {

// True when the pair passes the amplitude, scale and position threshold
// tests. max_shift < 0 disables the position test.
bool PassesThresholds(const sift::Keypoint& a, const sift::Keypoint& b,
                      const MatchingOptions& options, double max_shift) {
  if (std::abs(a.amplitude - b.amplitude) > options.tau_amplitude) {
    return false;
  }
  if (max_shift >= 0.0 && std::abs(a.position - b.position) > max_shift) {
    return false;
  }
  const double s1 = std::max(a.sigma, 1e-9);
  const double s2 = std::max(b.sigma, 1e-9);
  const double ratio = s1 > s2 ? s1 / s2 : s2 / s1;
  return ratio <= options.tau_scale;
}

// Squared descriptor distance with early abandoning at `cutoff_sq`
// (returns a value > cutoff_sq once the partial sum exceeds it).
double SquaredDistanceEarlyAbandon(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   double cutoff_sq) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
    if (sq > cutoff_sq) return sq;
  }
  return sq;
}

// Finds, for keypoint `a`, the best and second-best candidates in `ys`
// passing the threshold tests. Returns false when no candidate exists.
bool BestTwo(const sift::Keypoint& a,
             const std::vector<sift::Keypoint>& ys,
             const MatchingOptions& options, double max_shift,
             std::size_t* best_idx, double* best_dist, double* second_dist) {
  // Track squared distances internally; the second-best is the abandoning
  // cutoff (anything farther cannot change the outcome of the ratio test).
  double best_sq = std::numeric_limits<double>::infinity();
  double second_sq = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t j = 0; j < ys.size(); ++j) {
    if (!PassesThresholds(a, ys[j], options, max_shift)) continue;
    const double sq = SquaredDistanceEarlyAbandon(a.descriptor,
                                                  ys[j].descriptor,
                                                  second_sq);
    if (sq < best_sq) {
      second_sq = best_sq;
      best_sq = sq;
      *best_idx = j;
      found = true;
    } else if (sq < second_sq) {
      second_sq = sq;
    }
  }
  *best_dist = std::sqrt(best_sq);
  *second_dist = std::sqrt(second_sq);
  return found;
}

}  // namespace

std::vector<MatchPair> FindDominantPairs(
    const std::vector<sift::Keypoint>& keypoints_x,
    const std::vector<sift::Keypoint>& keypoints_y,
    const MatchingOptions& options, std::size_t len_x, std::size_t len_y) {
  const double max_shift =
      (options.tau_position > 0.0 && len_x > 0 && len_y > 0)
          ? options.tau_position * static_cast<double>(std::max(len_x, len_y))
          : -1.0;
  std::vector<MatchPair> pairs;
  for (std::size_t i = 0; i < keypoints_x.size(); ++i) {
    std::size_t best_j = 0;
    double best = 0.0, second = 0.0;
    if (!BestTwo(keypoints_x[i], keypoints_y, options, max_shift, &best_j,
                 &best, &second)) {
      continue;
    }
    // Distinctiveness: the winner must beat the runner-up by the factor
    // τ_d. When only one candidate exists, second is +inf and the test
    // passes trivially.
    if (best * options.tau_distinct > second) continue;
    if (options.require_mutual) {
      std::size_t back_i = 0;
      double back_best = 0.0, back_second = 0.0;
      if (!BestTwo(keypoints_y[best_j], keypoints_x, options, max_shift,
                   &back_i, &back_best, &back_second) ||
          back_i != i) {
        continue;
      }
    }
    pairs.push_back(MatchPair{i, best_j, best});
  }
  return pairs;
}

}  // namespace align
}  // namespace sdtw
