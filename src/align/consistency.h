#ifndef SDTW_ALIGN_CONSISTENCY_H_
#define SDTW_ALIGN_CONSISTENCY_H_

/// \file consistency.h
/// \brief Inconsistency pruning of matched salient-feature pairs
/// (paper §3.2.2) and extraction of the aligned interval partition
/// (paper §3.3, Figure 9).
///
/// The paper assumes the transformation between the two series stretches
/// time but preserves the *order* of temporal features. Matched pairs whose
/// scope boundaries would be ordered differently in the two series are
/// therefore conflicts. Pairs are committed greedily in descending order of
/// a combined score µ_comb — the F-measure of a normalised alignment score
/// µ_align (prefer large features close in time) and a normalised
/// similarity score µ_sim (prefer similar descriptors and similar average
/// amplitudes) — and a candidate is dropped when inserting its scope
/// boundaries would break the rank consistency of the two ordered boundary
/// lists.

#include <cstddef>
#include <vector>

#include "align/matching.h"
#include "sift/keypoint.h"
#include "ts/time_series.h"

namespace sdtw {
namespace align {

/// \brief A matched pair that survived pruning, with its scope boundaries
/// (clamped to the series) and scores.
struct AlignedPair {
  std::size_t index_x = 0;
  std::size_t index_y = 0;
  double start_x = 0.0;
  double end_x = 0.0;
  double start_y = 0.0;
  double end_y = 0.0;
  double mu_align = 0.0;
  double mu_sim = 0.0;
  double mu_comb = 0.0;
};

/// \brief Options of the consistency-pruning step.
struct ConsistencyOptions {
  /// When true, a feature on either side may participate in at most one
  /// committed pair (the matching step can map several X features onto one
  /// Y feature; committing both would collapse an interval).
  bool unique_features = true;
};

/// \brief Scores of one candidate pair before normalisation.
struct PairScores {
  double mu_align = 0.0;
  double mu_desc = 0.0;   ///< Descriptor match score, higher = more similar.
  double delta_amp = 0.0; ///< Fractional amplitude difference in [0, 1].
};

/// Computes the raw µ_align / µ_desc / Δ_amp scores of a matched pair.
/// µ_align = (scope(f_i) + scope(f_j)) / 2 / (1 + |center(f_i) − center(f_j)|);
/// µ_desc = 1 / (1 + descriptor distance); Δ_amp is the fractional difference
/// of mean absolute series values within the two scopes.
PairScores ScorePair(const ts::TimeSeries& x, const ts::TimeSeries& y,
                     const sift::Keypoint& fx, const sift::Keypoint& fy,
                     double descriptor_distance);

/// Runs scoring + greedy rank-consistency pruning over `pairs`.
/// Returns the surviving pairs sorted by position in X.
std::vector<AlignedPair> PruneInconsistent(
    const ts::TimeSeries& x, const ts::TimeSeries& y,
    const std::vector<sift::Keypoint>& keypoints_x,
    const std::vector<sift::Keypoint>& keypoints_y,
    const std::vector<MatchPair>& pairs,
    const ConsistencyOptions& options = {});

/// \brief One pair of corresponding intervals of the partition induced by
/// the committed scope boundaries (Figure 9: intervals A..K).
struct IntervalPair {
  /// Inclusive sample ranges on each series; begin <= end.
  std::size_t begin_x = 0;
  std::size_t end_x = 0;
  std::size_t begin_y = 0;
  std::size_t end_y = 0;

  std::size_t width_x() const { return end_x - begin_x + 1; }
  std::size_t width_y() const { return end_y - begin_y + 1; }
};

/// Converts committed aligned pairs into the consecutive-interval partition
/// of both series: the sorted scope boundaries cut each series into the same
/// number of intervals; corresponding intervals pair up by index. With no
/// committed pairs the result is the single full-range interval (which
/// degrades adaptive constraints to their fixed counterparts gracefully).
std::vector<IntervalPair> BuildIntervals(std::size_t len_x, std::size_t len_y,
                                         const std::vector<AlignedPair>& pairs);

}  // namespace align
}  // namespace sdtw

#endif  // SDTW_ALIGN_CONSISTENCY_H_
