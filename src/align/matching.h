#ifndef SDTW_ALIGN_MATCHING_H_
#define SDTW_ALIGN_MATCHING_H_

/// \file matching.h
/// \brief Identification of dominant matching salient-feature pairs
/// (paper §3.2.1).
///
/// For a salient point s1 in X and s2 in Y, the pair ⟨s1, s2⟩ is returned as
/// a match when (a) the amplitude difference is below τ_a, (b) the scale
/// ratio is below τ_s, and (c) the match is *dominant*: no other candidate
/// s2' passing (a)+(b) has a descriptor distance within a factor τ_d (> 1)
/// of the best — Lowe's distinctiveness ratio test adapted to 1-D features.

#include <cstddef>
#include <vector>

#include "sift/keypoint.h"

namespace sdtw {
namespace align {

/// \brief A matched pair of salient features (indices into the two keypoint
/// vectors) with its descriptor distance.
struct MatchPair {
  std::size_t index_x = 0;
  std::size_t index_y = 0;
  double descriptor_distance = 0.0;
};

/// \brief Thresholds of the dominant-pair search.
struct MatchingOptions {
  /// Maximum absolute amplitude difference τ_a between matched features.
  /// Series are typically z-normalised, so this is in z-units. A large value
  /// effectively turns the amplitude constraint off.
  double tau_amplitude = 0.75;

  /// Maximum scale ratio τ_s (>= 1): max(σ1, σ2)/min(σ1, σ2) <= τ_s.
  double tau_scale = 2.5;

  /// Distinctiveness ratio τ_d (> 1): best descriptor distance × τ_d must
  /// not exceed the second-best candidate's distance.
  double tau_distinct = 1.25;

  /// When true, also requires the match to be mutual (s1 is s2's best
  /// candidate too) — a standard robustness refinement; off by default to
  /// follow the paper exactly.
  bool require_mutual = false;

  /// Maximum |center(s1) − center(s2)| as a fraction of the longer series,
  /// applied when series lengths are passed to FindDominantPairs. §3.2.2
  /// observes that unconstrained matching "identified some very distant
  /// pairs"; pairwise rank conflicts remove them when several pairs are
  /// committed, but a *single* surviving distant pair has nothing to
  /// conflict with and can skew the whole band (see DESIGN.md). <= 0
  /// disables the constraint.
  double tau_position = 0.35;
};

/// Finds dominant matching pairs from X's keypoints to Y's. O(|SX|·|SY|)
/// (paper §3.4). Pairs are returned sorted by index_x. When len_x/len_y are
/// non-zero, the tau_position displacement constraint is enforced.
std::vector<MatchPair> FindDominantPairs(
    const std::vector<sift::Keypoint>& keypoints_x,
    const std::vector<sift::Keypoint>& keypoints_y,
    const MatchingOptions& options = {}, std::size_t len_x = 0,
    std::size_t len_y = 0);

/// Euclidean distance between two descriptors (infinity on length
/// mismatch).
double DescriptorDistance(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace align
}  // namespace sdtw

#endif  // SDTW_ALIGN_MATCHING_H_
