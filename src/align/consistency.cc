#include "align/consistency.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "ts/stats.h"

namespace sdtw {
namespace align {

namespace {

// Mean absolute value of the series within [start, end] (clamped).
double ScopeAmplitude(const ts::TimeSeries& s, double start, double end) {
  if (s.empty()) return 0.0;
  const std::size_t b = static_cast<std::size_t>(
      std::clamp(start, 0.0, static_cast<double>(s.size() - 1)));
  const std::size_t e = static_cast<std::size_t>(
      std::clamp(end, 0.0, static_cast<double>(s.size() - 1)));
  if (e < b) return 0.0;
  return ts::MeanAbs(
      std::span<const double>(s.values().data() + b, e - b + 1));
}

// Clamps a keypoint's scope to the series range.
void ClampScope(const sift::Keypoint& kp, std::size_t len, double* start,
                double* end) {
  const double maxi = len > 0 ? static_cast<double>(len - 1) : 0.0;
  *start = std::clamp(kp.position - kp.scope_radius(), 0.0, maxi);
  *end = std::clamp(kp.position + kp.scope_radius(), 0.0, maxi);
}

// Ordered multiset of committed boundary time points for one series, with
// the hypothetical-insertion rank queries the pruning loop needs.
class BoundaryList {
 public:
  // Rank the value would take if inserted: number of committed values
  // strictly smaller. Equal values share a rank (paper footnote 1: ties on
  // identical time values are treated as compatible).
  std::size_t RankOf(double v) const {
    std::size_t r = 0;
    for (double c : committed_) {
      if (c < v - kTieEps) ++r;
    }
    return r;
  }

  void Insert(double v) { committed_.insert(v); }

 private:
  static constexpr double kTieEps = 1e-9;
  std::multiset<double> committed_;
};

}  // namespace

PairScores ScorePair(const ts::TimeSeries& x, const ts::TimeSeries& y,
                     const sift::Keypoint& fx, const sift::Keypoint& fy,
                     double descriptor_distance) {
  PairScores s;
  const double scope_sum = fx.scope_length() + fy.scope_length();
  s.mu_align = (scope_sum / 2.0) / (1.0 + std::abs(fx.position - fy.position));
  s.mu_desc = 1.0 / (1.0 + descriptor_distance);
  double sx, ex, sy, ey;
  ClampScope(fx, x.size(), &sx, &ex);
  ClampScope(fy, y.size(), &sy, &ey);
  const double ax = ScopeAmplitude(x, sx, ex);
  const double ay = ScopeAmplitude(y, sy, ey);
  const double denom = std::max(std::max(ax, ay), 1e-12);
  s.delta_amp = std::clamp(std::abs(ax - ay) / denom, 0.0, 1.0);
  return s;
}

std::vector<AlignedPair> PruneInconsistent(
    const ts::TimeSeries& x, const ts::TimeSeries& y,
    const std::vector<sift::Keypoint>& keypoints_x,
    const std::vector<sift::Keypoint>& keypoints_y,
    const std::vector<MatchPair>& pairs, const ConsistencyOptions& options) {
  std::vector<AlignedPair> result;
  if (pairs.empty()) return result;

  // Step 1: raw scores.
  struct Candidate {
    MatchPair match;
    PairScores scores;
    double mu_sim = 0.0;
    double mu_comb = 0.0;
  };
  std::vector<Candidate> cands;
  cands.reserve(pairs.size());
  double mu_desc_min = std::numeric_limits<double>::infinity();
  for (const MatchPair& p : pairs) {
    if (p.index_x >= keypoints_x.size() || p.index_y >= keypoints_y.size()) {
      continue;
    }
    Candidate c;
    c.match = p;
    c.scores = ScorePair(x, y, keypoints_x[p.index_x], keypoints_y[p.index_y],
                         p.descriptor_distance);
    mu_desc_min = std::min(mu_desc_min, c.scores.mu_desc);
    cands.push_back(std::move(c));
  }
  if (cands.empty()) return result;
  if (mu_desc_min <= 0.0) mu_desc_min = 1e-12;

  // µ_sim = (µ_desc / µ_desc_min) × (1 − Δ_amp); then normalise both scores
  // by their maxima and combine with the F-measure.
  double max_align = 0.0;
  double max_sim = 0.0;
  for (Candidate& c : cands) {
    c.mu_sim = (c.scores.mu_desc / mu_desc_min) * (1.0 - c.scores.delta_amp);
    max_align = std::max(max_align, c.scores.mu_align);
    max_sim = std::max(max_sim, c.mu_sim);
  }
  if (max_align <= 0.0) max_align = 1.0;
  if (max_sim <= 0.0) max_sim = 1.0;
  for (Candidate& c : cands) {
    const double ns_align = c.scores.mu_align / max_align;
    const double ns_sim = c.mu_sim / max_sim;
    const double denom = ns_align + ns_sim;
    c.mu_comb = denom > 0.0 ? 2.0 * ns_align * ns_sim / denom : 0.0;
  }

  // Step 2: greedy commit in descending µ_comb order.
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.mu_comb > b.mu_comb;
                   });
  BoundaryList order_x, order_y;
  std::set<std::size_t> used_x, used_y;
  for (const Candidate& c : cands) {
    if (options.unique_features) {
      if (used_x.count(c.match.index_x) || used_y.count(c.match.index_y)) {
        continue;
      }
    }
    const sift::Keypoint& fx = keypoints_x[c.match.index_x];
    const sift::Keypoint& fy = keypoints_y[c.match.index_y];
    AlignedPair ap;
    ap.index_x = c.match.index_x;
    ap.index_y = c.match.index_y;
    ClampScope(fx, x.size(), &ap.start_x, &ap.end_x);
    ClampScope(fy, y.size(), &ap.start_y, &ap.end_y);
    ap.mu_align = c.scores.mu_align;
    ap.mu_sim = c.mu_sim;
    ap.mu_comb = c.mu_comb;

    // Hypothetical insertion ranks. The start and end of the same feature
    // are inserted together, so the end's rank counts the start as already
    // present when start < end.
    const std::size_t rank_st_x = order_x.RankOf(ap.start_x);
    const std::size_t rank_st_y = order_y.RankOf(ap.start_y);
    std::size_t rank_end_x = order_x.RankOf(ap.end_x);
    std::size_t rank_end_y = order_y.RankOf(ap.end_y);
    if (ap.start_x < ap.end_x) ++rank_end_x;
    if (ap.start_y < ap.end_y) ++rank_end_y;

    if (rank_st_x == rank_st_y && rank_end_x == rank_end_y) {
      order_x.Insert(ap.start_x);
      order_x.Insert(ap.end_x);
      order_y.Insert(ap.start_y);
      order_y.Insert(ap.end_y);
      used_x.insert(ap.index_x);
      used_y.insert(ap.index_y);
      result.push_back(std::move(ap));
    }
    // Else: drop the pair; its boundaries are not committed.
  }

  std::sort(result.begin(), result.end(),
            [](const AlignedPair& a, const AlignedPair& b) {
              return a.start_x < b.start_x;
            });
  return result;
}

std::vector<IntervalPair> BuildIntervals(
    std::size_t len_x, std::size_t len_y,
    const std::vector<AlignedPair>& pairs) {
  std::vector<IntervalPair> intervals;
  if (len_x == 0 || len_y == 0) return intervals;

  // Collect committed boundaries (they are rank-consistent by construction,
  // so sorting each side independently preserves the correspondence).
  std::vector<double> bx, by;
  bx.reserve(pairs.size() * 2);
  by.reserve(pairs.size() * 2);
  for (const AlignedPair& p : pairs) {
    bx.push_back(p.start_x);
    bx.push_back(p.end_x);
    by.push_back(p.start_y);
    by.push_back(p.end_y);
  }
  std::sort(bx.begin(), bx.end());
  std::sort(by.begin(), by.end());

  // Cut points: 0, boundaries, len-1 (in samples, rounded).
  auto cuts = [](const std::vector<double>& b, std::size_t len) {
    std::vector<std::size_t> c;
    c.push_back(0);
    for (double v : b) {
      const std::size_t s = static_cast<std::size_t>(
          std::clamp(std::llround(v), 0LL, static_cast<long long>(len - 1)));
      c.push_back(s);
    }
    c.push_back(len - 1);
    // Keep monotone (duplicates allowed; they become empty intervals the
    // band builders must bridge).
    for (std::size_t i = 1; i < c.size(); ++i) {
      c[i] = std::max(c[i], c[i - 1]);
    }
    return c;
  };
  const std::vector<std::size_t> cx = cuts(bx, len_x);
  const std::vector<std::size_t> cy = cuts(by, len_y);
  // Same boundary count on both sides by construction.
  const std::size_t segments = cx.size() - 1;
  intervals.reserve(segments);
  for (std::size_t k = 0; k < segments; ++k) {
    IntervalPair ip;
    ip.begin_x = cx[k];
    ip.end_x = std::max(cx[k + 1], cx[k]);
    ip.begin_y = cy[k];
    ip.end_y = std::max(cy[k + 1], cy[k]);
    intervals.push_back(ip);
  }
  return intervals;
}

}  // namespace align
}  // namespace sdtw
