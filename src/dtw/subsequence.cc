#include "dtw/subsequence.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "dtw/band_matrix.h"
#include "dtw/row_kernel.h"

namespace sdtw {
namespace dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Fills the open-begin accumulation matrix in BandMatrix (band-compressed)
// storage: d(0, j) = 0 for all j (free start), d(i, 0) = +inf for i >= 1.
// Today the matrix is full-width (Band::Full); routing it through
// BandMatrix shares the storage/backtrack machinery with the banded
// kernels and makes a band-constrained subsequence search a drop-in.
//
// The rows themselves run through the dispatched row kernel in padded
// rolling scratch rows and are copied out, exactly like the banded
// path-preserving kernel: row 0 is the free-start window [0, m] of zeros,
// rows i >= 1 fill [1, m] (the kernel's out-of-band semantics supply the
// d(i, 0) = +inf left border at j = 1). The historical per-cell loop had
// the same association order — min of the three predecessors, then one
// separately-rounded cost add — so values are bit-identical to it on
// every variant.
BandMatrix FillOpenBeginMatrix(const ts::TimeSeries& query,
                               const ts::TimeSeries& series, CostKind cost,
                               const RowKernelOps* kernel) {
  const std::size_t n = query.size();
  const std::size_t m = series.size();
  BandMatrix d = BandMatrix::OpenBegin(Band::Full(n, m));
  DtwScratch scratch;
  scratch.set_kernel(kernel);
  scratch.EnsureWidth(m + 1);
  const RowFillFn fill = scratch.kernel().fill(cost);
  double* prev = scratch.prev_row();
  double* cur = scratch.cur_row();
  // Free-start row: d(0, j) = 0 across the full window [0, m].
  internal::WriteRowPads(prev, m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = 0.0;
  std::size_t plo = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    fill(prev, plo, m, cur, 1, m, query[i - 1], series.values().data(),
         scratch.cost_row(), scratch.flag_row(), nullptr);
    std::memcpy(d.row_data(i), cur, m * sizeof(double));
    std::swap(prev, cur);
    plo = 1;
  }
  return d;
}

// Backtracks from (n, end_col) to the free-start row, returning the path in
// (query index, series index) coordinates and the matched begin column.
std::vector<PathPoint> BacktrackOpenBegin(const BandMatrix& d, std::size_t n,
                                          std::size_t end_col,
                                          std::size_t* begin_col) {
  auto at = [&](std::size_t i, std::size_t j) { return d.at(i, j); };
  std::vector<PathPoint> path;
  std::size_t i = n;
  std::size_t j = end_col;
  path.emplace_back(i - 1, j - 1);
  while (i > 1) {
    double best = kInf;
    int move = 0;
    if (j > 1 && at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      move = 0;
    }
    if (at(i - 1, j) < best) {
      best = at(i - 1, j);
      move = 1;
    }
    if (j > 1 && at(i, j - 1) < best) {
      best = at(i, j - 1);
      move = 2;
    }
    if (move == 0) {
      --i;
      --j;
    } else if (move == 1) {
      --i;
    } else {
      --j;
    }
    path.emplace_back(i - 1, j - 1);
  }
  std::reverse(path.begin(), path.end());
  *begin_col = path.front().second;
  return path;
}

}  // namespace

SubsequenceMatch FindBestSubsequence(const ts::TimeSeries& query,
                                     const ts::TimeSeries& series,
                                     const SubsequenceOptions& options) {
  SubsequenceMatch match;
  const std::size_t n = query.size();
  const std::size_t m = series.size();
  if (n == 0 || m == 0) return match;
  const BandMatrix d =
      FillOpenBeginMatrix(query, series, options.cost, options.kernel);
  // Open end: the best distance is the minimum of the last row.
  std::size_t best_j = 1;
  for (std::size_t j = 2; j <= m; ++j) {
    if (d.at(n, j) < d.at(n, best_j)) best_j = j;
  }
  match.distance = d.at(n, best_j);
  match.end = best_j - 1;
  std::size_t begin_col = 0;
  std::vector<PathPoint> path = BacktrackOpenBegin(d, n, best_j, &begin_col);
  match.begin = begin_col;
  if (options.want_path) match.path = std::move(path);
  return match;
}

std::vector<SubsequenceMatch> FindTopKSubsequences(
    const ts::TimeSeries& query, const ts::TimeSeries& series, std::size_t k,
    const SubsequenceOptions& options) {
  std::vector<SubsequenceMatch> matches;
  if (query.empty() || series.empty() || k == 0) return matches;
  // Greedy exclusion: blank out matched windows (set to +inf cost by
  // removing them from candidate end columns) and re-run on the remaining
  // gaps. Implemented by masking columns of the series.
  std::vector<bool> blocked(series.size(), false);
  for (std::size_t round = 0; round < k; ++round) {
    // Extract maximal unblocked segments and search each.
    SubsequenceMatch best;
    std::size_t seg_begin = 0;
    bool in_segment = false;
    for (std::size_t i = 0; i <= series.size(); ++i) {
      const bool open = i < series.size() && !blocked[i];
      if (open && !in_segment) {
        seg_begin = i;
        in_segment = true;
      } else if (!open && in_segment) {
        in_segment = false;
        const std::size_t seg_len = i - seg_begin;
        if (seg_len == 0) continue;
        const ts::TimeSeries segment = series.Slice(seg_begin, seg_len);
        SubsequenceMatch m = FindBestSubsequence(query, segment, options);
        if (m.distance < best.distance) {
          m.begin += seg_begin;
          m.end += seg_begin;
          for (PathPoint& p : m.path) p.second += seg_begin;
          best = std::move(m);
        }
      }
    }
    if (!std::isfinite(best.distance)) break;
    for (std::size_t i = best.begin; i <= best.end && i < series.size();
         ++i) {
      blocked[i] = true;
    }
    matches.push_back(std::move(best));
  }
  return matches;
}

}  // namespace dtw
}  // namespace sdtw
