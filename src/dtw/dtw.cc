#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>

namespace sdtw {
namespace dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Backtracks the optimal path through a fully materialised accumulation
// matrix d (row-major, (n+1) x (m+1), with the +inf border at row/col 0).
std::vector<PathPoint> Backtrack(const std::vector<double>& d, std::size_t n,
                                 std::size_t m) {
  std::vector<PathPoint> path;
  if (n == 0 || m == 0) return path;
  const std::size_t stride = m + 1;
  auto at = [&](std::size_t i, std::size_t j) { return d[i * stride + j]; };
  std::size_t i = n;
  std::size_t j = m;
  if (!std::isfinite(at(i, j))) return path;
  path.emplace_back(i - 1, j - 1);
  while (i > 1 || j > 1) {
    double best = kInf;
    int move = 0;  // 0 = diag, 1 = up (i-1), 2 = left (j-1)
    if (i > 1 && j > 1 && at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      move = 0;
    }
    if (i > 1 && at(i - 1, j) < best) {
      best = at(i - 1, j);
      move = 1;
    }
    if (j > 1 && at(i, j - 1) < best) {
      best = at(i, j - 1);
      move = 2;
    }
    if (!std::isfinite(best)) {
      path.clear();
      return path;
    }
    if (move == 0) {
      --i;
      --j;
    } else if (move == 1) {
      --i;
    } else {
      --j;
    }
    path.emplace_back(i - 1, j - 1);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

template <typename Cost>
DtwResult DtwFullImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                      bool want_path, Cost cost) {
  DtwResult result;
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0) return result;
  const std::size_t stride = m + 1;
  std::vector<double> d((n + 1) * stride, kInf);
  d[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const double xi = x[i - 1];
    double* row = d.data() + i * stride;
    const double* prev = d.data() + (i - 1) * stride;
    for (std::size_t j = 1; j <= m; ++j) {
      const double best =
          std::min({prev[j], row[j - 1], prev[j - 1]});
      row[j] = best + cost(xi, y[j - 1]);
    }
  }
  result.cells_filled = n * m;
  result.distance = d[n * stride + m];
  if (want_path) result.path = Backtrack(d, n, m);
  return result;
}

template <typename Cost>
DtwResult DtwBandedImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                        const Band& band, bool want_path, Cost cost) {
  DtwResult result;
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0 || band.n() != n || band.m() != m) return result;
  const std::size_t stride = m + 1;
  std::vector<double> d((n + 1) * stride, kInf);
  d[0] = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const BandRow& r = band.row(i - 1);
    if (r.lo > r.hi) continue;
    const double xi = x[i - 1];
    double* row = d.data() + i * stride;
    const double* prev = d.data() + (i - 1) * stride;
    for (std::size_t j = r.lo + 1; j <= r.hi + 1 && j <= m; ++j) {
      const double best = std::min({prev[j], row[j - 1], prev[j - 1]});
      if (!std::isfinite(best)) continue;
      row[j] = best + cost(xi, y[j - 1]);
      ++cells;
    }
  }
  result.cells_filled = cells;
  result.distance = d[n * stride + m];
  if (want_path && std::isfinite(result.distance)) {
    result.path = Backtrack(d, n, m);
  }
  return result;
}

template <typename Cost>
double DtwDistanceImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                       Cost cost) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0) return kInf;
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> cur(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = kInf;
    const double xi = x[i - 1];
    for (std::size_t j = 1; j <= m; ++j) {
      const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = best + cost(xi, y[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

template <typename Cost>
double DtwBandedDistanceImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                             const Band& band, Cost cost) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0 || band.n() != n || band.m() != m) return kInf;
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> cur(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const BandRow& r = band.row(i - 1);
    std::fill(cur.begin(), cur.end(), kInf);
    if (r.lo <= r.hi) {
      const double xi = x[i - 1];
      for (std::size_t j = r.lo + 1; j <= r.hi + 1 && j <= m; ++j) {
        const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
        if (!std::isfinite(best)) continue;
        cur[j] = best + cost(xi, y[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

template <typename Cost>
double DtwEarlyAbandonImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                           double threshold, Cost cost) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0) return kInf;
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> cur(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = kInf;
    const double xi = x[i - 1];
    double row_min = kInf;
    for (std::size_t j = 1; j <= m; ++j) {
      const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
      cur[j] = best + cost(xi, y[j - 1]);
      row_min = std::min(row_min, cur[j]);
    }
    if (row_min > threshold) return kInf;
    std::swap(prev, cur);
  }
  return prev[m] <= threshold ? prev[m] : kInf;
}

template <typename Cost>
double DtwBandedEarlyAbandonImpl(const ts::TimeSeries& x,
                                 const ts::TimeSeries& y, const Band& band,
                                 double threshold, Cost cost) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0 || band.n() != n || band.m() != m) return kInf;
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> cur(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const BandRow& r = band.row(i - 1);
    std::fill(cur.begin(), cur.end(), kInf);
    double row_min = kInf;
    if (r.lo <= r.hi) {
      const double xi = x[i - 1];
      for (std::size_t j = r.lo + 1; j <= r.hi + 1 && j <= m; ++j) {
        const double best = std::min({prev[j], cur[j - 1], prev[j - 1]});
        if (!std::isfinite(best)) continue;
        cur[j] = best + cost(xi, y[j - 1]);
        row_min = std::min(row_min, cur[j]);
      }
    }
    if (row_min > threshold) return kInf;
    std::swap(prev, cur);
  }
  return prev[m] <= threshold ? prev[m] : kInf;
}

}  // namespace

DtwResult Dtw(const ts::TimeSeries& x, const ts::TimeSeries& y,
              const DtwOptions& options) {
  if (options.cost == CostKind::kAbsolute) {
    return DtwFullImpl(x, y, options.want_path, AbsCost{});
  }
  return DtwFullImpl(x, y, options.want_path, SquaredCost{});
}

DtwResult DtwBanded(const ts::TimeSeries& x, const ts::TimeSeries& y,
                    const Band& band, const DtwOptions& options) {
  if (options.cost == CostKind::kAbsolute) {
    return DtwBandedImpl(x, y, band, options.want_path, AbsCost{});
  }
  return DtwBandedImpl(x, y, band, options.want_path, SquaredCost{});
}

double DtwDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                   CostKind cost) {
  if (cost == CostKind::kAbsolute) return DtwDistanceImpl(x, y, AbsCost{});
  return DtwDistanceImpl(x, y, SquaredCost{});
}

double DtwBandedDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band& band, CostKind cost) {
  if (cost == CostKind::kAbsolute) {
    return DtwBandedDistanceImpl(x, y, band, AbsCost{});
  }
  return DtwBandedDistanceImpl(x, y, band, SquaredCost{});
}

double DtwDistanceEarlyAbandon(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, double threshold,
                               CostKind cost) {
  if (cost == CostKind::kAbsolute) {
    return DtwEarlyAbandonImpl(x, y, threshold, AbsCost{});
  }
  return DtwEarlyAbandonImpl(x, y, threshold, SquaredCost{});
}

double DtwBandedDistanceEarlyAbandon(const ts::TimeSeries& x,
                                     const ts::TimeSeries& y,
                                     const Band& band, double threshold,
                                     CostKind cost) {
  if (cost == CostKind::kAbsolute) {
    return DtwBandedEarlyAbandonImpl(x, y, band, threshold, AbsCost{});
  }
  return DtwBandedEarlyAbandonImpl(x, y, band, threshold, SquaredCost{});
}

bool IsValidWarpPath(const std::vector<PathPoint>& path, std::size_t n,
                     std::size_t m) {
  if (n == 0 || m == 0) return path.empty();
  if (path.empty()) return false;
  if (path.front() != PathPoint(0, 0)) return false;
  if (path.back() != PathPoint(n - 1, m - 1)) return false;
  if (path.size() < std::max(n, m) || path.size() > n + m) return false;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t di = path[k].first - path[k - 1].first;
    const std::size_t dj = path[k].second - path[k - 1].second;
    if (path[k].first < path[k - 1].first ||
        path[k].second < path[k - 1].second) {
      return false;
    }
    if (di > 1 || dj > 1 || (di == 0 && dj == 0)) return false;
  }
  return true;
}

double PathCost(const ts::TimeSeries& x, const ts::TimeSeries& y,
                const std::vector<PathPoint>& path, CostKind cost) {
  double total = 0.0;
  for (const PathPoint& p : path) {
    if (p.first >= x.size() || p.second >= y.size()) return kInf;
    total += EvalCost(cost, x[p.first], y[p.second]);
  }
  return total;
}

}  // namespace dtw
}  // namespace sdtw
