#include "dtw/dtw.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "dtw/band_matrix.h"
#include "dtw/row_kernel.h"

namespace sdtw {
namespace dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Backtracks the optimal path from (n, m) through an accumulation matrix
// exposed as at(i, j) in DP coordinates (+inf border at row/col 0 and
// outside any band).
template <typename MatrixAt>
std::vector<PathPoint> BacktrackImpl(const MatrixAt& at, std::size_t n,
                                     std::size_t m) {
  std::vector<PathPoint> path;
  if (n == 0 || m == 0) return path;
  std::size_t i = n;
  std::size_t j = m;
  if (!std::isfinite(at(i, j))) return path;
  path.emplace_back(i - 1, j - 1);
  while (i > 1 || j > 1) {
    double best = kInf;
    int move = 0;  // 0 = diag, 1 = up (i-1), 2 = left (j-1)
    if (i > 1 && j > 1 && at(i - 1, j - 1) < best) {
      best = at(i - 1, j - 1);
      move = 0;
    }
    if (i > 1 && at(i - 1, j) < best) {
      best = at(i - 1, j);
      move = 1;
    }
    if (j > 1 && at(i, j - 1) < best) {
      best = at(i, j - 1);
      move = 2;
    }
    if (!std::isfinite(best)) {
      path.clear();
      return path;
    }
    if (move == 0) {
      --i;
      --j;
    } else if (move == 1) {
      --i;
    } else {
      --j;
    }
    path.emplace_back(i - 1, j - 1);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// Shared rolling two-row DP driver over per-row DP windows, using the
// caller's scratch buffers (grown beforehand to the widest window). The
// window callable maps series row r (0-based) to the inclusive DP column
// window of DP row r + 1. Every row fill runs through `fill`, a row-fill
// entry point of a dispatched kernel variant (dtw/kernel_dispatch.h) with
// the cost baked in — resolved once per call by the kernels below, so the
// per-row cost is one predictable indirect call. The kernel re-initialises
// every cell and pad it reads, so a reused scratch needs no clearing.
// With `abandon`, returns +inf as soon as every filled cell of a row
// exceeds `threshold`. Reports the number of cells filled (finite
// predecessors only, the paper's work measure) when `cells_filled` is
// non-null; counting is skipped entirely otherwise. When `sink` is
// non-null it is called as sink(i, row, w) after each non-empty DP row i
// is filled (the path-preserving kernels copy rows into their band
// matrices through it).
template <typename WindowFn, typename RowSink>
double RollingWindowKernel(const ts::TimeSeries& x, const ts::TimeSeries& y,
                           WindowFn window, bool abandon, double threshold,
                           RowFillFn fill, DtwScratch& scratch,
                           std::size_t* cells_filled, RowSink sink) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  double* prev = scratch.prev_row();
  double* cur = scratch.cur_row();
  double* cost_row = scratch.cost_row();
  unsigned char* flag_row = scratch.flag_row();
  // DP window held by prev; starts as the origin row {0}.
  internal::ArmOriginRow(prev);
  std::size_t plo = 0;
  std::size_t phi = 0;
  std::size_t cells = 0;
  std::size_t* cells_ptr = cells_filled != nullptr ? &cells : nullptr;
  for (std::size_t i = 1; i <= n; ++i) {
    const auto [clo, chi] = window(i - 1);
    double row_min = kInf;
    if (clo <= chi) {
      row_min = fill(prev, plo, phi, cur, clo, chi, x[i - 1],
                     y.values().data(), cost_row, flag_row, cells_ptr);
      sink(i, cur, chi - clo + 1);
    }
    if (abandon && row_min > threshold) {
      if (cells_filled != nullptr) *cells_filled = cells;
      return kInf;
    }
    std::swap(prev, cur);
    plo = clo;
    phi = chi;
  }
  if (cells_filled != nullptr) *cells_filled = cells;
  const double d = m >= plo && m <= phi ? prev[m - plo] : kInf;
  if (abandon) return d <= threshold ? d : kInf;
  return d;
}

// Row sink for distance-only kernels: rows do not outlive the rolling
// buffers.
struct DiscardRows {
  void operator()(std::size_t, const double*, std::size_t) const {}
};

// Band-compressed distance-only kernel: two rolling buffers sized to the
// widest band row. Memory is O(max band-row width) regardless of n and m,
// and per-row work is O(row width) — no full-row infinity re-fill. The
// row-fill variant comes from the scratch (pinned by retrieval workers,
// process-wide active otherwise).
double BandedRollingKernel(const ts::TimeSeries& x, const ts::TimeSeries& y,
                           const Band& band, bool abandon, double threshold,
                           CostKind cost, DtwScratch& scratch,
                           std::size_t* cells_filled,
                           std::size_t* cells_allocated) {
  const std::size_t m = y.size();
  const std::size_t max_width = MaxDpRowWidth(band);
  scratch.EnsureWidth(max_width);
  if (cells_allocated != nullptr) *cells_allocated = 2 * max_width;
  return RollingWindowKernel(
      x, y,
      [&band, m](std::size_t r) { return DpWindow(band.row(r), m); },
      abandon, threshold, scratch.kernel().fill(cost), scratch, cells_filled,
      DiscardRows{});
}

// Full-grid distance-only kernel as the degenerate window [1, m] — the
// same code path (and bit-identical results) as the historical dedicated
// two-row implementation.
double FullRollingKernel(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         bool abandon, double threshold, CostKind cost,
                         DtwScratch& scratch) {
  const std::size_t m = y.size();
  scratch.EnsureWidth(m + 1);
  return RollingWindowKernel(
      x, y,
      [m](std::size_t) { return std::pair<std::size_t, std::size_t>{1, m}; },
      abandon, threshold, scratch.kernel().fill(cost), scratch, nullptr,
      DiscardRows{});
}

DtwResult DtwFullImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                      const DtwOptions& options) {
  DtwResult result;
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0) return result;
  const std::size_t stride = m + 1;
  DtwScratch scratch;
  scratch.set_kernel(options.kernel);
  if (!options.want_path) {
    // Distance-only: the rolling kernel needs no (n+1)x(m+1) matrix.
    result.distance = FullRollingKernel(x, y, /*abandon=*/false, kInf,
                                        options.cost, scratch);
    result.cells_filled = n * m;
    result.cells_allocated = 2 * stride;
    return result;
  }
  // Path-preserving: materialise the full matrix for the backtrack. The
  // rows themselves are computed by the shared two-pass kernel in rolling
  // scratch buffers and copied out, so the fill is as fast as the
  // distance-only path.
  std::vector<double> d((n + 1) * stride, kInf);
  d[0] = 0.0;
  scratch.EnsureWidth(m + 1);
  RollingWindowKernel(
      x, y,
      [m](std::size_t) { return std::pair<std::size_t, std::size_t>{1, m}; },
      /*abandon=*/false, kInf, scratch.kernel().fill(options.cost), scratch,
      nullptr,
      [&d, stride](std::size_t i, const double* row, std::size_t w) {
        std::memcpy(d.data() + i * stride + 1, row, w * sizeof(double));
      });
  result.cells_filled = n * m;
  result.cells_allocated = (n + 1) * stride;
  result.distance = d[n * stride + m];
  if (std::isfinite(result.distance)) {
    result.path = BacktrackImpl(
        [&](std::size_t i, std::size_t j) { return d[i * stride + j]; }, n,
        m);
  }
  return result;
}

DtwResult DtwBandedImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                        const Band& band, bool abandon, double threshold,
                        const DtwOptions& options) {
  DtwResult result;
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0 || band.n() != n || band.m() != m) return result;
  DtwScratch scratch;
  scratch.set_kernel(options.kernel);
  if (!options.want_path) {
    // Distance-only: no cell needs to outlive its row, so the rolling
    // kernel's two band-width buffers suffice.
    result.distance =
        BandedRollingKernel(x, y, band, abandon, threshold, options.cost,
                            scratch, &result.cells_filled,
                            &result.cells_allocated);
    return result;
  }
  // Path-preserving: keep every in-band cell (and nothing else) so the
  // backtrack can walk the matrix. Rows are computed in the rolling
  // scratch (the two-pass kernel needs its padded rows) and copied into
  // the band-compressed matrix as they complete.
  BandMatrix d(band);
  scratch.EnsureWidth(MaxDpRowWidth(band));
  std::size_t cells = 0;
  const double distance = RollingWindowKernel(
      x, y,
      [&band, m](std::size_t r) { return DpWindow(band.row(r), m); },
      abandon, threshold, scratch.kernel().fill(options.cost), scratch,
      &cells,
      [&d](std::size_t i, const double* row, std::size_t w) {
        std::memcpy(d.row_data(i), row, w * sizeof(double));
      });
  result.cells_filled = cells;
  result.cells_allocated = d.cells_allocated();
  if (!std::isfinite(distance)) {
    // Abandoned (every continuation already exceeds the threshold) or no
    // feasible path: distance stays +infinity, no backtrack.
    return result;
  }
  result.distance = distance;
  result.path = BacktrackImpl(
      [&](std::size_t i, std::size_t j) { return d.at(i, j); }, n, m);
  return result;
}

}  // namespace

void DtwScratch::EnsureWidth(std::size_t width) {
  if (width <= width_ && !cells_.empty()) return;
  width_ = std::max(width_, width);
  // Three double rows (prev, cur, cost), each with kRowPad guard cells on
  // both sides, strides rounded to 64 bytes, base 64-byte aligned.
  const std::size_t stride =
      (2 * internal::kRowPad + width_ + 7) & ~std::size_t{7};
  cells_.assign(3 * stride + 8, internal::kRowInf);
  flag_store_.assign(stride, 0);
  // Alignment probe: std::bit_cast is the defined-behaviour C++20 way to
  // read a pointer's address representation (what the old
  // reinterpret_cast<uintptr_t> spelling did via implementation-defined
  // conversion); uintptr_t is pointer-sized on every supported target.
  const std::size_t misalign =
      std::bit_cast<std::uintptr_t>(cells_.data()) % 64;
  const std::size_t align_off =
      misalign != 0 ? (64 - misalign) / sizeof(double) : 0;
  prev_off_ = align_off + internal::kRowPad;
  cur_off_ = prev_off_ + stride;
  cost_off_ = cur_off_ + stride;
}

DtwResult Dtw(const ts::TimeSeries& x, const ts::TimeSeries& y,
              const DtwOptions& options) {
  return DtwFullImpl(x, y, options);
}

DtwResult DtwBanded(const ts::TimeSeries& x, const ts::TimeSeries& y,
                    const Band& band, const DtwOptions& options) {
  return DtwBandedImpl(x, y, band, /*abandon=*/false, kInf, options);
}

DtwResult DtwBandedEarlyAbandon(const ts::TimeSeries& x,
                                const ts::TimeSeries& y, const Band& band,
                                double threshold,
                                const DtwOptions& options) {
  return DtwBandedImpl(x, y, band, /*abandon=*/true, threshold, options);
}

double DtwDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                   CostKind cost) {
  DtwScratch scratch;
  return DtwDistance(x, y, cost, scratch);
}

double DtwDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                   CostKind cost, DtwScratch& scratch) {
  if (x.empty() || y.empty()) return kInf;
  return FullRollingKernel(x, y, /*abandon=*/false, kInf, cost, scratch);
}

double DtwBandedDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band& band, CostKind cost) {
  DtwScratch scratch;
  return DtwBandedDistance(x, y, band, cost, scratch);
}

double DtwBandedDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band& band, CostKind cost,
                         DtwScratch& scratch) {
  if (x.empty() || y.empty() || band.n() != x.size() ||
      band.m() != y.size()) {
    return kInf;
  }
  return BandedRollingKernel(x, y, band, /*abandon=*/false, kInf, cost,
                             scratch, nullptr, nullptr);
}

double DtwDistanceEarlyAbandon(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, double threshold,
                               CostKind cost) {
  DtwScratch scratch;
  return DtwDistanceEarlyAbandon(x, y, threshold, cost, scratch);
}

double DtwDistanceEarlyAbandon(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, double threshold,
                               CostKind cost, DtwScratch& scratch) {
  if (x.empty() || y.empty()) return kInf;
  return FullRollingKernel(x, y, /*abandon=*/true, threshold, cost, scratch);
}

double DtwBandedDistanceEarlyAbandon(const ts::TimeSeries& x,
                                     const ts::TimeSeries& y,
                                     const Band& band, double threshold,
                                     CostKind cost) {
  DtwScratch scratch;
  return DtwBandedDistanceEarlyAbandon(x, y, band, threshold, cost, scratch);
}

double DtwBandedDistanceEarlyAbandon(const ts::TimeSeries& x,
                                     const ts::TimeSeries& y,
                                     const Band& band, double threshold,
                                     CostKind cost, DtwScratch& scratch) {
  if (x.empty() || y.empty() || band.n() != x.size() ||
      band.m() != y.size()) {
    return kInf;
  }
  return BandedRollingKernel(x, y, band, /*abandon=*/true, threshold, cost,
                             scratch, nullptr, nullptr);
}

bool IsValidWarpPath(const std::vector<PathPoint>& path, std::size_t n,
                     std::size_t m) {
  if (n == 0 || m == 0) return path.empty();
  if (path.empty()) return false;
  if (path.front() != PathPoint(0, 0)) return false;
  if (path.back() != PathPoint(n - 1, m - 1)) return false;
  if (path.size() < std::max(n, m) || path.size() > n + m) return false;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t di = path[k].first - path[k - 1].first;
    const std::size_t dj = path[k].second - path[k - 1].second;
    if (path[k].first < path[k - 1].first ||
        path[k].second < path[k - 1].second) {
      return false;
    }
    if (di > 1 || dj > 1 || (di == 0 && dj == 0)) return false;
  }
  return true;
}

double PathCost(const ts::TimeSeries& x, const ts::TimeSeries& y,
                const std::vector<PathPoint>& path, CostKind cost) {
  double total = 0.0;
  for (const PathPoint& p : path) {
    if (p.first >= x.size() || p.second >= y.size()) return kInf;
    total += EvalCost(cost, x[p.first], y[p.second]);
  }
  return total;
}

}  // namespace dtw
}  // namespace sdtw
