#ifndef SDTW_DTW_PATH_ANALYSIS_H_
#define SDTW_DTW_PATH_ANALYSIS_H_

/// \file path_analysis.h
/// \brief Diagnostics over warp paths: skew profiles, diagonal deviation,
/// band containment — the quantities one inspects when tuning constraint
/// strategies (which core/width the optimal path actually needed).

#include <cstddef>
#include <vector>

#include "dtw/band.h"
#include "dtw/dtw.h"

namespace sdtw {
namespace dtw {

/// \brief Aggregate statistics of a warp path on an n×m grid.
struct PathStats {
  /// Mean |j - diagonal(i)| over path points.
  double mean_diagonal_deviation = 0.0;
  /// Max |j - diagonal(i)| over path points.
  double max_diagonal_deviation = 0.0;
  /// Fraction of diagonal (1,1) steps.
  double diagonal_step_fraction = 0.0;
  /// Longest run of consecutive non-diagonal steps (a "stall": one series
  /// pausing while the other advances).
  std::size_t longest_stall = 0;
  /// Path length K.
  std::size_t length = 0;
};

/// Computes PathStats for a warp path over an n×m grid. Returns a default
/// object for empty paths.
PathStats AnalyzePath(const std::vector<PathPoint>& path, std::size_t n,
                      std::size_t m);

/// Per-row warp profile: for each i, the mean matched j (the "observed
/// core" that an adaptive-core constraint is trying to predict). Rows not
/// visited (impossible for valid paths) get the previous value.
std::vector<double> ObservedCore(const std::vector<PathPoint>& path,
                                 std::size_t n);

/// Fraction of path points inside `band` (1.0 when the band fully contains
/// the path; the key diagnostic of a band that is too tight).
double PathContainment(const std::vector<PathPoint>& path, const Band& band);

/// Builds the tightest band containing the path, widened by `margin` —
/// the oracle band, i.e. what a perfect constraint predictor would emit;
/// useful as an upper bound in constraint ablations.
Band OracleBand(const std::vector<PathPoint>& path, std::size_t n,
                std::size_t m, std::size_t margin = 0);

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_PATH_ANALYSIS_H_
