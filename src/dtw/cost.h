#ifndef SDTW_DTW_COST_H_
#define SDTW_DTW_COST_H_

/// \file cost.h
/// \brief Pointwise cost functions Δ(x, y) for DTW.
///
/// The paper leaves Δ() generic ("a distance function for comparing elements
/// in D", §2.1.1); absolute and squared differences are the two standard
/// choices on scalar series and both are provided. Kernels are templated on
/// the cost functor so the inner DP loop inlines the cost.

#include <cmath>

namespace sdtw {
namespace dtw {

/// Δ(x, y) = |x - y| (Manhattan / L1 pointwise cost).
struct AbsCost {
  double operator()(double x, double y) const { return std::abs(x - y); }
};

/// Δ(x, y) = (x - y)^2 (squared Euclidean pointwise cost).
struct SquaredCost {
  double operator()(double x, double y) const {
    const double d = x - y;
    return d * d;
  }
};

/// Runtime-selectable cost type for APIs that cannot be templated.
enum class CostKind {
  kAbsolute,
  kSquared,
};

/// Evaluates the selected cost.
inline double EvalCost(CostKind kind, double x, double y) {
  return kind == CostKind::kAbsolute ? AbsCost{}(x, y) : SquaredCost{}(x, y);
}

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_COST_H_
