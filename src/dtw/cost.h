#ifndef SDTW_DTW_COST_H_
#define SDTW_DTW_COST_H_

/// \file cost.h
/// \brief Pointwise cost functions Δ(x, y) for DTW, as scalars and rows.
///
/// The paper leaves Δ() generic ("a distance function for comparing elements
/// in D", §2.1.1); absolute and squared differences are the two standard
/// choices on scalar series and both are provided. Kernels are templated on
/// the cost functor so the inner DP loop inlines the cost.
///
/// Each functor also provides a *row* kernel Row(xi, y, out, n) computing
/// Δ(xi, y[k]) for a whole row at once: the two-pass banded DP stages the
/// cost row through it instead of evaluating a per-cell callable, which
/// gives the compiler a dependency-free loop it can vectorise. The staged
/// row is rounded once (cost) and added once (accumulate) — the same two
/// roundings as the historical `best + cost(xi, y[j-1])` per-cell form, so
/// staging changes no bits (this also means kernels must not be compiled
/// with FMA contraction; the build sets -ffp-contract=off).

#include <cmath>
#include <cstddef>

namespace sdtw {
namespace dtw {

/// Δ(x, y) = |x - y| (Manhattan / L1 pointwise cost).
struct AbsCost {
  double operator()(double x, double y) const { return std::abs(x - y); }

  /// out[k] = |xi - y[k]| for k in [0, n).
  static void Row(double xi, const double* y, double* out, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) out[k] = std::abs(xi - y[k]);
  }
};

/// Δ(x, y) = (x - y)^2 (squared Euclidean pointwise cost).
struct SquaredCost {
  double operator()(double x, double y) const {
    const double d = x - y;
    return d * d;
  }

  /// out[k] = (xi - y[k])^2 for k in [0, n).
  static void Row(double xi, const double* y, double* out, std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      const double d = xi - y[k];
      out[k] = d * d;
    }
  }
};

/// Runtime-selectable cost type for APIs that cannot be templated.
enum class CostKind {
  kAbsolute,
  kSquared,
};

/// Evaluates the selected cost.
inline double EvalCost(CostKind kind, double x, double y) {
  return kind == CostKind::kAbsolute ? AbsCost{}(x, y) : SquaredCost{}(x, y);
}

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_COST_H_
