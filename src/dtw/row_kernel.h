#ifndef SDTW_DTW_ROW_KERNEL_H_
#define SDTW_DTW_ROW_KERNEL_H_

/// \file row_kernel.h
/// \brief The banded DP row recurrence: scalar reference and the
/// vectorisable two-pass kernel body shared by every ISA variant.
///
/// Both kernels fill one DP row window: cur[0..chi-clo] receives DP columns
/// [clo, chi] of row i, reading DP row i-1 from prev whose window is
/// [plo, phi] (reads outside it are +infinity, exactly like the out-of-band
/// cells of a full matrix). Cells with no finite predecessor stay +infinity
/// and are not counted. Both return the minimum filled value (for early
/// abandoning) and produce bit-identical cur rows, row minima, and cell
/// counts — the property suite pins this across random bands, window
/// shapes, and costs.
///
/// FillBandRowScalar is the historical loop: one serial pass whose every
/// cell carries a `left` dependency through two mins and an add, plus
/// per-cell band-window branches — the compiler cannot vectorise any of it.
///
/// One caveat bounds the bit-identical contract: cost values must be
/// finite. If Δ overflows to +infinity (|x − y| ≳ 1.3e154 under the
/// squared cost), cell *values* still agree (both kernels store +inf) but
/// the two-pass cell *count* — derived from the first finite staged sum —
/// can differ from the scalar loop's per-cell finite-predecessor count.
/// Series magnitudes anywhere near that are outside every supported
/// workload (inputs are typically z-normalised).
///
/// FillBandRowTwoPassImpl splits the recurrence so almost all of the work
/// has no loop-carried dependency:
///
///   pass 1 (vectorisable, supplied per ISA by a Pass1 functor): stage the
///     cost row c[k] = Δ(x_i, y[clo-1+k]), then s[k] = min(up[k], diag[k])
///     + c[k] — the row value *assuming the left predecessor never wins*.
///     The band-window +inf guards are gone: prev rows carry kRowPad guard
///     cells of +infinity on both sides, so up/diag are plain shifted
///     loads for any window that moves by at most kRowPad columns per row
///     (slower-moving than that covers every Sakoe-Chiba/Itakura/sDTW
///     band; rows that jump farther take the scalar path). Pass 1 also
///     flags the cells where the left predecessor *could* win:
///     f[k] = s[k-1] + c[k] < s[k].
///   pass 2 (serial): resolve the left dependency with a tight scan. Since
///     min(a,b) + c and min(a+c, b+c) are the same value in floating point
///     (rounded addition of the shared c is monotone, so the smaller
///     operand stays smaller and the selected sum is rounded identically),
///     v[k] = min(t[k], v[k-1]) + c[k] = min(s[k], v[k-1] + c[k]) — cell k
///     differs from s[k] only when a chain of left wins reaches it, and
///     such a chain can only *start* at a flagged cell (v <= s, so
///     v[k-1] + c[k] < s[k] implies s[k-1] + c[k] < s[k]). The scan
///     therefore skips ahead flag-by-flag (runs of carry-free cells are
///     already final in cur) and only walks the rare serial segments
///     where the carry survives — ~5% of cells on smooth series.
///
/// The identical association order (one min against `left`, then one add
/// of the separately-rounded cost) keeps every DP value bit-identical to
/// the scalar loop, which is what pins the retrieval engine's hit lists
/// across kernels, thread counts, and visit orders. This also requires
/// building without FMA contraction (-ffp-contract=off): fusing the cost
/// multiply into the accumulate add would change the rounding of *both*
/// kernels' cells.
///
/// ISA variants live in src/dtw/kernels/row_kernel_{portable,avx2,
/// avx512}.cc — each its own translation unit compiled with per-file arch
/// flags and selected at runtime through dtw::RowKernelOps (see
/// dtw/kernel_dispatch.h). To make that per-TU compilation safe, EVERY
/// function in this header has internal linkage (`static`): a TU built
/// with -mavx512f may compile these bodies with AVX-512 encodings, and if
/// they had external (vague/comdat) linkage the linker would keep ONE
/// arbitrary copy per binary — possibly the AVX-512 one — and hand it to
/// TUs meant to stay portable. Internal linkage gives every TU its own
/// copy compiled with its own flags, which is the whole point of the
/// dispatch refactor. Do not remove the `static`s.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#include "dtw/cost.h"

namespace sdtw {
namespace dtw {
namespace internal {

/// Guard cells of +infinity kept on both sides of every DtwScratch DP row.
/// Pass 1 of the two-pass kernel reads predecessor cells as shifted loads
/// whose indices stay within the pads whenever the DP window moves by at
/// most kRowPad columns between rows; the pads then supply the +infinity
/// an out-of-band read must observe.
inline constexpr std::size_t kRowPad = 8;

inline constexpr double kRowInf = std::numeric_limits<double>::infinity();

/// Scalar reference row fill — the historical serial loop, retained
/// verbatim as the slow path for windows that jump more than kRowPad
/// columns, for rows narrower than one vector, and as the oracle the
/// property suite pins every dispatched variant against. Reads prev only
/// through its window guards (no pads required) and writes exactly
/// cur[0..chi-clo]. `cells` (when non-null) is incremented once per
/// filled cell.
template <typename Cost>
static double FillBandRowScalar(const double* prev, std::size_t plo,
                                std::size_t phi, double* cur, std::size_t clo,
                                std::size_t chi, double xi, const double* y,
                                Cost cost, std::size_t* cells) {
  double row_min = kRowInf;
  double left = kRowInf;  // value at (i, j-1); out-of-band at j == clo
  for (std::size_t j = clo; j <= chi; ++j) {
    const double up = j >= plo && j <= phi ? prev[j - plo] : kRowInf;
    const double diag =
        j - 1 >= plo && j - 1 <= phi ? prev[j - 1 - plo] : kRowInf;
    const double best = std::min({up, left, diag});
    double v = kRowInf;
    if (std::isfinite(best)) {
      v = best + cost(xi, y[j - 1]);
      row_min = std::min(row_min, v);
      if (cells != nullptr) ++*cells;
    }
    cur[j - clo] = v;
    left = v;
  }
  return row_min;
}

/// Rewrites the +infinity guard pads around a freshly filled row of width
/// `w`, restoring the invariant the next row's pass 1 depends on.
static inline void WriteRowPads(double* row, std::size_t w) {
  for (std::size_t k = 1; k <= kRowPad; ++k) {
    row[-static_cast<std::ptrdiff_t>(k)] = kRowInf;
    row[w + k - 1] = kRowInf;
  }
}

/// Initialises a scratch row as the DP origin row (window {0}): pads of
/// +infinity around the single origin cell 0.
static inline void ArmOriginRow(double* row) {
  WriteRowPads(row, 1);
  row[0] = 0.0;
}

/// Pass 2 of the two-pass kernel: resolves the left dependency over the
/// staged row. On entry cur[0..w) holds s (the no-left-win values), c the
/// cost row, f the carry-entry flag bytes (f[0] forced 0), and `smin` the
/// minimum of the staged values. Returns the row minimum of the final
/// values. Runs of unflagged cells are already final; only the serial
/// carry segments are walked, each evaluating the exact recurrence
/// v[k] = min(s[k], v[k-1] + c[k]).
static inline double ResolveLeftDependency(double* cur, const double* c,
                                           const unsigned char* f,
                                           std::size_t w, double smin) {
  double row_min = smin;
  std::size_t k = 1;
  while (k < w) {
    // Skip to the next flagged cell, eight flag bytes at a time. The
    // lowest-addressed non-zero byte is at the counting-from-LSB end on
    // little-endian and the counting-from-MSB end on big-endian.
    while (k + 8 <= w) {
      std::uint64_t word;
      std::memcpy(&word, f + k, 8);
      if (word != 0) {
        const int bit = std::endian::native == std::endian::little
                            ? std::countr_zero(word)
                            : std::countl_zero(word);
        k += static_cast<std::size_t>(bit) >> 3;
        break;
      }
      k += 8;
    }
    while (k < w && f[k] == 0) ++k;
    if (k >= w) break;
    // Serial carry segment: walk while the left predecessor keeps
    // winning. cur[k-1] is final (either carry-free, or fixed by an
    // earlier segment that died before k). The win test is a branch, not
    // a select: inside a segment it is all but always taken (carry runs
    // are long on smooth series), so the loop-carried chain is a single
    // rounded add per cell and the comparison retires off the chain.
    double left = cur[k - 1];
    for (;;) {
      const double lc = left + c[k];
      if (!(lc < cur[k])) {
        // The segment died at cell k (its staged value stands), and a
        // true carry entry at k would contradict this exit (the staged
        // flag only over-approximates the carry value), so cell k's flag
        // is necessarily clear — resume the scan after it.
        ++k;
        break;
      }
      cur[k] = lc;
      if (lc < row_min) row_min = lc;
      left = lc;
      if (++k >= w) break;
    }
  }
  return row_min;
}

/// Portable pass 1: plain loops over the staged rows. The cost row is
/// staged through Cost::Row (a dependency-free loop the compiler can
/// auto-vectorise with whatever the build's baseline ISA allows), then the
/// staged values, carry flags, and staged minimum are computed in three
/// further dependency-free sweeps.
struct PortableRowPass1 {
  /// Narrowest window pass 1 accepts; anything narrower takes the scalar
  /// reference path (identical results by definition).
  static constexpr std::size_t kMinWidth = 4;

  template <typename Cost>
  double operator()([[maybe_unused]] Cost cost, double xi, const double* pu,
                    const double* pd, const double* yy, double* cur,
                    double* cost_row, unsigned char* flag_row,
                    std::size_t w) const {
    Cost::Row(xi, yy, cost_row, w);
    for (std::size_t k = 0; k < w; ++k) {
      const double t = pu[k] < pd[k] ? pu[k] : pd[k];
      cur[k] = t + cost_row[k];
    }
    for (std::size_t k = 1; k < w; ++k) {
      flag_row[k] = cur[k - 1] + cost_row[k] < cur[k] ? 1 : 0;
    }
    double smin = kRowInf;
    for (std::size_t k = 0; k < w; ++k) {
      if (cur[k] < smin) smin = cur[k];
    }
    return smin;
  }
};

/// Two-pass row fill over padded scratch rows, generic over the pass-1
/// implementation (each ISA variant TU instantiates it with its own
/// TU-local Pass1 functor — the instantiation is then unique to that TU,
/// never shared across arch flags). prev and cur must each carry kRowPad
/// guard cells on both sides; prev's guards (and any cell of its window)
/// must be valid, as maintained by a previous call or by ArmOriginRow.
/// cost_row and flag_row need chi-clo+1 usable cells. Writes
/// cur[0..chi-clo] plus its guard pads. Bit-identical outputs to
/// FillBandRowScalar (values, row minimum, cell count).
template <typename Cost, typename Pass1>
static double FillBandRowTwoPassImpl(const double* prev, std::size_t plo,
                                     std::size_t phi, double* cur,
                                     std::size_t clo, std::size_t chi,
                                     double xi, const double* y, Cost cost,
                                     double* cost_row,
                                     unsigned char* flag_row,
                                     std::size_t* cells, Pass1 pass1) {
  const std::size_t w = chi - clo + 1;
  if (plo > phi) {
    // Empty predecessor window: no cell has a finite predecessor.
    for (std::size_t k = 0; k < w; ++k) cur[k] = kRowInf;
    WriteRowPads(cur, w);
    return kRowInf;
  }
  if (w < Pass1::kMinWidth || clo + kRowPad < plo + 1 ||
      chi > phi + kRowPad) {
    // Window narrower than one vector, or moving faster than the guard
    // pads cover: take the scalar path (identical results by definition).
    const double row_min =
        FillBandRowScalar(prev, plo, phi, cur, clo, chi, xi, y, cost, cells);
    WriteRowPads(cur, w);
    return row_min;
  }

  // Pass 1: stage cost row, s = min(up, diag) + c into cur, carry flags.
  const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(clo) -
                               static_cast<std::ptrdiff_t>(plo);
  const double* pu = prev + shift;      // up:   prev DP column j
  const double* pd = prev + shift - 1;  // diag: prev DP column j-1
  const double* yy = y + (clo - 1);
  const double smin = pass1(cost, xi, pu, pd, yy, cur, cost_row, flag_row, w);
  flag_row[0] = 0;

  if (cells != nullptr) {
    // Cells with a finite predecessor: everything from the first finite
    // staged value on (once any cell is finite, the left chain keeps all
    // later cells finite — costs are finite). The scan almost always
    // stops at cell 0.
    std::size_t k0 = 0;
    while (k0 < w && !(cur[k0] < kRowInf)) ++k0;
    *cells += w - k0;
  }

  const double row_min = ResolveLeftDependency(cur, cost_row, flag_row, w,
                                               smin);
  WriteRowPads(cur, w);
  return row_min;
}

/// The portable two-pass kernel under its historical name — what the
/// portable dispatch variant wraps, and the direct entry point of the
/// in-TU property tests and benches.
template <typename Cost>
static double FillBandRowTwoPass(const double* prev, std::size_t plo,
                                 std::size_t phi, double* cur,
                                 std::size_t clo, std::size_t chi, double xi,
                                 const double* y, Cost cost, double* cost_row,
                                 unsigned char* flag_row,
                                 std::size_t* cells) {
  return FillBandRowTwoPassImpl(prev, plo, phi, cur, clo, chi, xi, y, cost,
                                cost_row, flag_row, cells,
                                PortableRowPass1{});
}

}  // namespace internal
}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_ROW_KERNEL_H_
