#ifndef SDTW_DTW_DTW_H_
#define SDTW_DTW_DTW_H_

/// \file dtw.h
/// \brief Dynamic time warping kernels: full grid and band-constrained.
///
/// Implements the classic O(NM) dynamic program of §2.1.3 — D(i, j) =
/// min(D(i-1,j), D(i,j-1), D(i-1,j-1)) + Δ(x_i, y_j) — with warp-path
/// backtracking, plus banded variants that fill only the cells inside a
/// Band.
///
/// The banded kernels use band-compressed storage in two modes so that
/// memory follows the band, not the grid:
///  * distance-only: two rolling buffers sized to the widest band row
///    (O(max band-row width) doubles), used by DtwBandedDistance,
///    DtwBandedDistanceEarlyAbandon, and DtwBanded when want_path is off;
///  * path-preserving: a BandMatrix holding only the Σ(hi−lo+1) in-band
///    cells with per-row offsets, walked by a band-aware backtrack.
/// Both produce distances, paths, and cells_filled identical to a fully
/// materialised (N+1)x(M+1) matrix.

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "dtw/band.h"
#include "dtw/cost.h"
#include "ts/time_series.h"

namespace sdtw {
namespace dtw {

/// One warp-path element: (index into X, index into Y), 0-based.
using PathPoint = std::pair<std::size_t, std::size_t>;

/// \brief Result of a DTW computation.
struct DtwResult {
  /// The DTW distance; +infinity when no path exists (cannot happen for
  /// feasible bands).
  double distance = std::numeric_limits<double>::infinity();
  /// Optimal warp path from (0,0) to (N-1,M-1); empty when not requested or
  /// when no path exists.
  std::vector<PathPoint> path;
  /// Number of grid cells actually filled by the DP (the paper's measure of
  /// work saved by pruning).
  std::size_t cells_filled = 0;
  /// Number of doubles allocated for DP cell storage — (N+1)*(M+1) for the
  /// full kernel, Σ band-row widths (+1 origin) for the path-preserving
  /// banded kernel, 2 * max band-row width for the rolling distance-only
  /// kernels. The storage footprint band compression shrinks.
  std::size_t cells_allocated = 0;
};

/// \brief Knobs for the DTW kernels.
struct DtwOptions {
  CostKind cost = CostKind::kAbsolute;
  /// When false, skips backtracking and path storage.
  bool want_path = true;
};

/// \brief Reusable rolling-row storage for the distance-only kernels.
///
/// The rolling kernels need two buffers sized to the widest DP row they
/// will fill (dtw::MaxDpRowWidth for a band, m + 1 for a full grid).
/// Retrieval loops that compare one query against thousands of candidates
/// keep one DtwScratch per worker, sized once to the widest requirement
/// across the whole candidate set, instead of allocating per call. The
/// kernels re-initialise the cells they read, so a scratch can be reused
/// across calls without clearing.
struct DtwScratch {
  std::vector<double> prev;
  std::vector<double> cur;

  /// Grows both buffers to at least `width` doubles (never shrinks).
  void EnsureWidth(std::size_t width) {
    if (prev.size() < width) {
      prev.resize(width);
      cur.resize(width);
    }
  }
  std::size_t width() const { return prev.size(); }
};

/// Full O(NM) DTW between x and y (paper §2.1.3).
DtwResult Dtw(const ts::TimeSeries& x, const ts::TimeSeries& y,
              const DtwOptions& options = {});

/// Band-constrained DTW. The band must have shape n=x.size(), m=y.size();
/// it is used as-is (callers should MakeFeasible() it first — all builders
/// in this library already do). Cells outside the band are treated as
/// +infinity. If the band is infeasible the result distance is +infinity.
/// Storage is band-compressed: Σ band-row widths cells when a path is
/// requested, two rolling band-width rows otherwise.
DtwResult DtwBanded(const ts::TimeSeries& x, const ts::TimeSeries& y,
                    const Band& band, const DtwOptions& options = {});

/// Distance-only DTW using two rolling rows (O(min work) memory). Roughly
/// 2x faster than Dtw() with paths disabled on large inputs.
double DtwDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                   CostKind cost = CostKind::kAbsolute);

/// Distance-only banded DTW with rolling rows sized to the widest band row
/// (O(max band-row width) memory; per-row work is O(row width)).
double DtwBandedDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band& band,
                         CostKind cost = CostKind::kAbsolute);

/// Distance-only DTW with early abandoning: returns +infinity as soon as the
/// running minimum of a row exceeds `threshold` (used by retrieval loops).
double DtwDistanceEarlyAbandon(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, double threshold,
                               CostKind cost = CostKind::kAbsolute);

/// Banded distance with early abandoning: +infinity as soon as every cell
/// of a band row exceeds `threshold`. Combines sDTW's band pruning with the
/// best-so-far pruning of retrieval loops.
double DtwBandedDistanceEarlyAbandon(const ts::TimeSeries& x,
                                     const ts::TimeSeries& y,
                                     const Band& band, double threshold,
                                     CostKind cost = CostKind::kAbsolute);

/// \name Scratch-buffer variants
/// Identical results to the allocation-owning kernels above (bit for bit),
/// but the rolling rows live in the caller-provided DtwScratch, which is
/// grown on demand and reused across calls. These are the hot-loop entry
/// points of the batched retrieval engine.
/// @{
double DtwDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                   CostKind cost, DtwScratch& scratch);
double DtwDistanceEarlyAbandon(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, double threshold,
                               CostKind cost, DtwScratch& scratch);
double DtwBandedDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band& band, CostKind cost,
                         DtwScratch& scratch);
double DtwBandedDistanceEarlyAbandon(const ts::TimeSeries& x,
                                     const ts::TimeSeries& y,
                                     const Band& band, double threshold,
                                     CostKind cost, DtwScratch& scratch);
/// @}

/// Path-preserving banded DTW with best-so-far early abandoning: as soon as
/// every filled cell of a band row exceeds `threshold` (or the final
/// distance does), returns distance = +infinity with an empty path and the
/// cells filled so far. Otherwise identical to DtwBanded(). Lets retrieval
/// loops that want alignments prune as aggressively as distance-only calls.
DtwResult DtwBandedEarlyAbandon(const ts::TimeSeries& x,
                                const ts::TimeSeries& y, const Band& band,
                                double threshold,
                                const DtwOptions& options = {});

/// Validates warp-path structure per §2.1.1: starts at (0,0), ends at
/// (N-1,M-1), steps ∈ {(1,0),(0,1),(1,1)}, and max(N,M) <= K <= N+M.
bool IsValidWarpPath(const std::vector<PathPoint>& path, std::size_t n,
                     std::size_t m);

/// Recomputes the cost of a given warp path under the given cost function.
double PathCost(const ts::TimeSeries& x, const ts::TimeSeries& y,
                const std::vector<PathPoint>& path,
                CostKind cost = CostKind::kAbsolute);

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_DTW_H_
