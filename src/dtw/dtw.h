#ifndef SDTW_DTW_DTW_H_
#define SDTW_DTW_DTW_H_

/// \file dtw.h
/// \brief Dynamic time warping kernels: full grid and band-constrained.
///
/// Implements the classic O(NM) dynamic program of §2.1.3 — D(i, j) =
/// min(D(i-1,j), D(i,j-1), D(i-1,j-1)) + Δ(x_i, y_j) — with warp-path
/// backtracking, plus banded variants that fill only the cells inside a
/// Band.
///
/// Every row of every kernel — full grid, banded, early-abandon, and the
/// path-preserving fills — runs through the two-pass row kernel of
/// dtw/row_kernel.h: a vectorisable pass over staged cost rows plus a
/// carry-resolving serial scan, bit-identical to the historical scalar
/// loop (see that header for the contract and the property suite that
/// pins it).
///
/// The banded kernels use band-compressed storage in two modes so that
/// memory follows the band, not the grid:
///  * distance-only: two rolling buffers sized to the widest band row
///    (O(max band-row width) doubles), used by DtwBandedDistance,
///    DtwBandedDistanceEarlyAbandon, and DtwBanded when want_path is off;
///  * path-preserving: a BandMatrix holding only the Σ(hi−lo+1) in-band
///    cells with per-row offsets, walked by a band-aware backtrack.
/// Both produce distances, paths, and cells_filled identical to a fully
/// materialised (N+1)x(M+1) matrix.

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "dtw/band.h"
#include "dtw/cost.h"
#include "dtw/kernel_dispatch.h"
#include "ts/time_series.h"

namespace sdtw {
namespace dtw {

/// One warp-path element: (index into X, index into Y), 0-based.
using PathPoint = std::pair<std::size_t, std::size_t>;

/// \brief Result of a DTW computation.
struct DtwResult {
  /// The DTW distance; +infinity when no path exists (cannot happen for
  /// feasible bands).
  double distance = std::numeric_limits<double>::infinity();
  /// Optimal warp path from (0,0) to (N-1,M-1); empty when not requested or
  /// when no path exists.
  std::vector<PathPoint> path;
  /// Number of grid cells actually filled by the DP (the paper's measure of
  /// work saved by pruning).
  std::size_t cells_filled = 0;
  /// Number of *logical DP cells* allocated — (N+1)*(M+1) for the
  /// path-preserving full kernel, Σ band-row widths (+1 origin) for the
  /// path-preserving banded kernel, 2 * max band-row width (two rolling
  /// rows) for the distance-only kernels. This is the storage footprint
  /// band compression shrinks, and the measure that scales with the
  /// input; the constant-factor scratch overhead of the two-pass kernel
  /// (guard pads, staged cost row, flag bytes — see DtwScratch) is not
  /// included.
  std::size_t cells_allocated = 0;
};

/// \brief Knobs for the DTW kernels.
struct DtwOptions {
  CostKind cost = CostKind::kAbsolute;
  /// When false, skips backtracking and path storage.
  bool want_path = true;
  /// Row-kernel variant to run the DP rows with; nullptr selects the
  /// process-wide ActiveRowKernelOps(). Every variant is bit-identical,
  /// so this is a speed/test knob, never a semantic one.
  const RowKernelOps* kernel = nullptr;
};

/// \brief Reusable row storage for the rolling DP kernels.
///
/// The two-pass banded kernel (see dtw/row_kernel.h) works on four
/// same-stride rows: the two rolling DP rows (`prev`/`cur`), a staged cost
/// row, and a row of carry-entry flag bytes. Each DP row carries
/// `internal::kRowPad` guard cells of +infinity on both sides, maintained
/// by the kernels, so the vectorised pass 1 can read the up/diagonal
/// predecessors of any in-band cell as plain shifted loads — the band
/// window guards become reads of the +inf pads instead of per-cell
/// branches. Rows are 64-byte aligned.
///
/// Retrieval loops that compare one query against thousands of candidates
/// keep one DtwScratch per worker, sized once to the widest requirement
/// across the whole candidate set (dtw::MaxDpRowWidth for a band, m + 1
/// for a full grid), instead of allocating per call. The kernels
/// re-initialise every cell and pad they read, so a scratch can be reused
/// across calls without clearing.
class DtwScratch {
 public:
  /// Grows all rows to hold at least `width` usable doubles each (never
  /// shrinks).
  void EnsureWidth(std::size_t width);

  /// The usable row width (max `width` passed to EnsureWidth so far).
  std::size_t width() const { return width_; }

  /// Pins the row-kernel variant the scratch-buffer kernels below run
  /// with; nullptr (the default) restores the process-wide selection.
  /// Retrieval workers set this once from their batch options.
  void set_kernel(const RowKernelOps* ops) { kernel_ = ops; }

  /// The effective ops table: the pinned variant, or the process-wide
  /// active one.
  const RowKernelOps& kernel() const {
    return kernel_ != nullptr ? *kernel_ : ActiveRowKernelOps();
  }

  /// \name Kernel row accessors
  /// Pointers to cell 0 of each row; cells [-kRowPad, width + kRowPad)
  /// are addressable. Valid until the next EnsureWidth growth. Rows are
  /// addressed as offsets into the owned buffers, so copied or moved
  /// scratches stay self-contained (each alias its own storage).
  /// @{
  double* prev_row() { return cells_.data() + prev_off_; }
  double* cur_row() { return cells_.data() + cur_off_; }
  double* cost_row() { return cells_.data() + cost_off_; }
  unsigned char* flag_row() { return flag_store_.data(); }
  /// @}

 private:
  std::vector<double> cells_;        ///< Backing store of the three rows.
  std::vector<unsigned char> flag_store_;
  std::size_t prev_off_ = 0;
  std::size_t cur_off_ = 0;
  std::size_t cost_off_ = 0;
  std::size_t width_ = 0;
  const RowKernelOps* kernel_ = nullptr;  ///< Pinned variant; never owned.
};

/// Full O(NM) DTW between x and y (paper §2.1.3).
DtwResult Dtw(const ts::TimeSeries& x, const ts::TimeSeries& y,
              const DtwOptions& options = {});

/// Band-constrained DTW. The band must have shape n=x.size(), m=y.size();
/// it is used as-is (callers should MakeFeasible() it first — all builders
/// in this library already do). Cells outside the band are treated as
/// +infinity. If the band is infeasible the result distance is +infinity.
/// Storage is band-compressed: Σ band-row widths cells when a path is
/// requested, two rolling band-width rows otherwise.
DtwResult DtwBanded(const ts::TimeSeries& x, const ts::TimeSeries& y,
                    const Band& band, const DtwOptions& options = {});

/// Distance-only DTW using two rolling rows (O(min work) memory). Roughly
/// 2x faster than Dtw() with paths disabled on large inputs.
double DtwDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                   CostKind cost = CostKind::kAbsolute);

/// Distance-only banded DTW with rolling rows sized to the widest band row
/// (O(max band-row width) memory; per-row work is O(row width)).
double DtwBandedDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band& band,
                         CostKind cost = CostKind::kAbsolute);

/// Distance-only DTW with early abandoning: returns +infinity as soon as the
/// running minimum of a row exceeds `threshold` (used by retrieval loops).
double DtwDistanceEarlyAbandon(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, double threshold,
                               CostKind cost = CostKind::kAbsolute);

/// Banded distance with early abandoning: +infinity as soon as every cell
/// of a band row exceeds `threshold`. Combines sDTW's band pruning with the
/// best-so-far pruning of retrieval loops.
double DtwBandedDistanceEarlyAbandon(const ts::TimeSeries& x,
                                     const ts::TimeSeries& y,
                                     const Band& band, double threshold,
                                     CostKind cost = CostKind::kAbsolute);

/// \name Scratch-buffer variants
/// Identical results to the allocation-owning kernels above (bit for bit),
/// but the rolling rows live in the caller-provided DtwScratch, which is
/// grown on demand and reused across calls. These are the hot-loop entry
/// points of the batched retrieval engine.
/// @{
double DtwDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                   CostKind cost, DtwScratch& scratch);
double DtwDistanceEarlyAbandon(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, double threshold,
                               CostKind cost, DtwScratch& scratch);
double DtwBandedDistance(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band& band, CostKind cost,
                         DtwScratch& scratch);
double DtwBandedDistanceEarlyAbandon(const ts::TimeSeries& x,
                                     const ts::TimeSeries& y,
                                     const Band& band, double threshold,
                                     CostKind cost, DtwScratch& scratch);
/// @}

/// Path-preserving banded DTW with best-so-far early abandoning: as soon as
/// every filled cell of a band row exceeds `threshold` (or the final
/// distance does), returns distance = +infinity with an empty path and the
/// cells filled so far. Otherwise identical to DtwBanded(). Lets retrieval
/// loops that want alignments prune as aggressively as distance-only calls.
DtwResult DtwBandedEarlyAbandon(const ts::TimeSeries& x,
                                const ts::TimeSeries& y, const Band& band,
                                double threshold,
                                const DtwOptions& options = {});

/// Validates warp-path structure per §2.1.1: starts at (0,0), ends at
/// (N-1,M-1), steps ∈ {(1,0),(0,1),(1,1)}, and max(N,M) <= K <= N+M.
bool IsValidWarpPath(const std::vector<PathPoint>& path, std::size_t n,
                     std::size_t m);

/// Recomputes the cost of a given warp path under the given cost function.
double PathCost(const ts::TimeSeries& x, const ts::TimeSeries& y,
                const std::vector<PathPoint>& path,
                CostKind cost = CostKind::kAbsolute);

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_DTW_H_
