#include "dtw/lower_bounds.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

namespace sdtw {
namespace dtw {

Envelope MakeEnvelope(const ts::TimeSeries& s, std::size_t r) {
  Envelope env;
  const std::size_t n = s.size();
  if (n == 0) return env;
  if (r >= n - 1) {
    // Full-span window: [i-r, i+r] covers the whole series at every i, so
    // every element of the envelope is the global extremum — one
    // minmax_element pass and two constant fills instead of running the
    // deque machinery over 2n push/pop events for a constant answer.
    // This is the radius the unconstrained-DTW retrieval cascade uses for
    // every envelope.
    const auto minmax = std::minmax_element(s.begin(), s.end());
    env.upper.assign(n, *minmax.second);
    env.lower.assign(n, *minmax.first);
    return env;
  }
  env.upper.assign(n, 0.0);
  env.lower.assign(n, 0.0);
  // Monotonic deques over the sliding window [i-r, i+r].
  std::deque<std::size_t> maxq, minq;
  auto push = [&](std::size_t idx) {
    while (!maxq.empty() && s[maxq.back()] <= s[idx]) maxq.pop_back();
    maxq.push_back(idx);
    while (!minq.empty() && s[minq.back()] >= s[idx]) minq.pop_back();
    minq.push_back(idx);
  };
  std::size_t next = 0;
  for (; next < std::min(n, r + 1); ++next) push(next);
  for (std::size_t i = 0; i < n; ++i) {
    // Window is [i-r, i+r]; extend right edge, retire left edge.
    while (next < n && next <= i + r) push(next++);
    while (!maxq.empty() && maxq.front() + r < i) maxq.pop_front();
    while (!minq.empty() && minq.front() + r < i) minq.pop_front();
    env.upper[i] = s[maxq.front()];
    env.lower[i] = s[minq.front()];
  }
  return env;
}

SeriesStats MakeSeriesStats(const ts::TimeSeries& s) {
  SeriesStats stats;
  if (s.empty()) return stats;
  stats.first = s.front();
  stats.last = s.back();
  const auto minmax = std::minmax_element(s.begin(), s.end());
  stats.min = *minmax.first;
  stats.max = *minmax.second;
  stats.valid = true;
  return stats;
}

double LbKim(const ts::TimeSeries& x, const ts::TimeSeries& y) {
  return LbKim(MakeSeriesStats(x), MakeSeriesStats(y));
}

double LbKim(const SeriesStats& x, const SeriesStats& y) {
  if (!x.valid || !y.valid) return 0.0;
  const double d_first = std::abs(x.first - y.first);
  const double d_last = std::abs(x.last - y.last);
  const double d_min = std::abs(x.min - y.min);
  const double d_max = std::abs(x.max - y.max);
  // Each of the four quantities individually lower-bounds the DTW distance
  // (first/last points are always matched to each other; the smaller global
  // extremum must be matched to a value on the other side of the other
  // series' extremum). They can coincide on the same path element, so the
  // max — not the sum — is the sound combination.
  return std::max({d_first, d_last, d_min, d_max});
}

double LbKeogh(const ts::TimeSeries& x, const Envelope& y_envelope) {
  if (x.size() != y_envelope.upper.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > y_envelope.upper[i]) {
      sum += x[i] - y_envelope.upper[i];
    } else if (x[i] < y_envelope.lower[i]) {
      sum += y_envelope.lower[i] - x[i];
    }
  }
  return sum;
}

double LbKeoghAbandoning(const ts::TimeSeries& x, const Envelope& y_envelope,
                         double abandon_above, bool* abandoned) {
  if (abandoned != nullptr) *abandoned = false;
  if (x.size() != y_envelope.upper.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > y_envelope.upper[i]) {
      sum += x[i] - y_envelope.upper[i];
    } else if (x[i] < y_envelope.lower[i]) {
      sum += y_envelope.lower[i] - x[i];
    }
    if (sum > abandon_above) {
      // Every remaining term is >= 0, so the full sum would also exceed
      // the threshold: the caller's prune decision is already settled.
      if (abandoned != nullptr) *abandoned = i + 1 < x.size();
      return sum;
    }
  }
  return sum;
}

double LbKeogh(const ts::TimeSeries& x, const ts::TimeSeries& y,
               std::size_t r) {
  return LbKeogh(x, MakeEnvelope(y, r));
}

std::size_t BandMaxRadius(const Band& band) {
  const std::size_t n = band.n();
  const std::size_t m = band.m();
  if (n == 0 || m == 0) return 0;
  std::size_t radius = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double core = n > 1
                            ? static_cast<double>(i) *
                                  static_cast<double>(m - 1) /
                                  static_cast<double>(n - 1)
                            : 0.0;
    const double dev_lo = core - static_cast<double>(band.row(i).lo);
    const double dev_hi = static_cast<double>(band.row(i).hi) - core;
    const double dev = std::max(std::abs(dev_lo), std::abs(dev_hi));
    radius = std::max(radius,
                      static_cast<std::size_t>(std::ceil(std::max(dev, 0.0))));
  }
  return radius;
}

}  // namespace dtw
}  // namespace sdtw
