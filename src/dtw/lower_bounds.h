#ifndef SDTW_DTW_LOWER_BOUNDS_H_
#define SDTW_DTW_LOWER_BOUNDS_H_

/// \file lower_bounds.h
/// \brief Cheap lower bounds on the DTW distance (LB_Kim, LB_Keogh).
///
/// These are the standard pruning primitives from the indexing literature
/// the paper builds on ([7] Keogh 2002, [16] Rakthanmanon et al. 2012). They
/// complement the band constraints: a retrieval loop can skip the DP
/// entirely when the lower bound already exceeds the best-so-far distance.
/// Both bounds are valid for the absolute cost and band-limited warping.

#include <cstddef>
#include <vector>

#include "dtw/band.h"
#include "ts/time_series.h"

namespace sdtw {
namespace dtw {

/// \brief Upper/lower envelope of a series under a warping window.
struct Envelope {
  std::vector<double> upper;
  std::vector<double> lower;
};

/// Builds the Keogh envelope of `s` for a symmetric warping radius `r`
/// (in samples): upper[i] = max(s[i-r..i+r]), lower[i] = min(s[i-r..i+r]).
/// Uses a monotonic-deque sliding window (O(n)); when the window spans the
/// whole series (r >= n-1, the full-span envelopes of the
/// unconstrained-DTW retrieval cascade) the envelope is two constant fills
/// of the global extrema instead.
Envelope MakeEnvelope(const ts::TimeSeries& s, std::size_t r);

/// \brief O(1)-combinable summary of a series for LB_Kim: the first/last
/// values and the global extrema. Indexes cache one per series so the
/// cascade's stage-1 test costs O(1) per candidate instead of rescanning
/// the candidate series on every query.
struct SeriesStats {
  double first = 0.0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  bool valid = false;  ///< false for an empty series.
};

/// One O(n) pass over `s` producing its LB_Kim summary.
SeriesStats MakeSeriesStats(const ts::TimeSeries& s);

/// LB_Kim (4-point variant): cost of the first/last points plus the
/// min/max points. A constant-time bound, valid for the absolute cost.
double LbKim(const ts::TimeSeries& x, const ts::TimeSeries& y);

/// LB_Kim from precomputed summaries — identical value to
/// LbKim(x, y) with MakeSeriesStats(x), MakeSeriesStats(y), in O(1).
double LbKim(const SeriesStats& x, const SeriesStats& y);

/// LB_Keogh: sum over i of the distance from x[i] to the envelope of y.
/// Requires equal lengths (standard formulation); returns 0 otherwise
/// (a trivially valid bound).
double LbKeogh(const ts::TimeSeries& x, const Envelope& y_envelope);

/// LB_Keogh with cumulative-bound abandoning (the UCR-suite refinement):
/// accumulates the envelope distances left to right and stops as soon as
/// the running sum exceeds `abandon_above`, instead of always completing
/// the O(n) pass. The terms are non-negative and accumulated in the same
/// order as LbKeogh, so the running sum is monotone non-decreasing and the
/// returned partial sum is itself a valid lower bound; in particular the
/// decision `result > abandon_above` is identical to the full pass's
/// `LbKeogh(...) > abandon_above`, which is what keeps cascade prunes (and
/// therefore hit lists) unchanged. When the scan stops early, `*abandoned`
/// (if non-null) is set to true and the partial sum is returned; otherwise
/// `*abandoned` is set to false and the result equals LbKeogh(x, y_envelope)
/// exactly. Length mismatches return 0 with *abandoned == false, as the
/// full pass does.
double LbKeoghAbandoning(const ts::TimeSeries& x, const Envelope& y_envelope,
                         double abandon_above, bool* abandoned = nullptr);

/// Convenience: builds the envelope of y with radius r and evaluates
/// LB_Keogh(x, env(y)).
double LbKeogh(const ts::TimeSeries& x, const ts::TimeSeries& y,
               std::size_t r);

/// Derives a per-row warping radius from a Band (the maximum deviation of
/// the band from the diagonal), so LB_Keogh can be used together with
/// sDTW's adaptive bands while remaining a valid bound.
std::size_t BandMaxRadius(const Band& band);

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_LOWER_BOUNDS_H_
