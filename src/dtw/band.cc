#include "dtw/band.h"

#include <algorithm>
#include <cmath>

namespace sdtw {
namespace dtw {

Band Band::Full(std::size_t n, std::size_t m) {
  Band b;
  b.m_ = m;
  if (n == 0 || m == 0) return b;
  b.rows_.assign(n, BandRow{0, m - 1});
  return b;
}

Band Band::FromRows(std::vector<BandRow> rows, std::size_t m) {
  Band b;
  b.m_ = m;
  b.rows_ = std::move(rows);
  if (m == 0) return b;
  for (BandRow& r : b.rows_) {
    r.lo = std::min(r.lo, m - 1);
    r.hi = std::min(r.hi, m - 1);
  }
  return b;
}

std::size_t Band::CellCount() const {
  std::size_t total = 0;
  for (const BandRow& r : rows_) total += r.width();
  return total;
}

double Band::Coverage() const {
  if (rows_.empty() || m_ == 0) return 0.0;
  return static_cast<double>(CellCount()) /
         (static_cast<double>(rows_.size()) * static_cast<double>(m_));
}

void Band::MakeFeasible() {
  if (rows_.empty() || m_ == 0) return;
  const std::size_t n = rows_.size();
  const std::size_t last_col = m_ - 1;
  // Clamp and fix inverted rows (empty rows collapse onto their lo).
  for (BandRow& r : rows_) {
    r.lo = std::min(r.lo, last_col);
    r.hi = std::min(r.hi, last_col);
    if (r.lo > r.hi) r.hi = r.lo;
  }
  // Anchor the two corners.
  rows_[0].lo = 0;
  rows_[n - 1].hi = last_col;
  if (rows_[n - 1].lo > last_col) rows_[n - 1].lo = last_col;
  // Forward pass tracking the *reachable* interval of each row (pairwise
  // row conditions are not enough: reachability is transitive). Within a
  // row the path can only advance rightwards, so the reachable interval of
  // row i is [max(lo_i, reach_lo(i-1)), hi_i] provided an entry column
  // exists, i.e. lo_i <= reach_hi(i-1) + 1 and hi_i >= reach_lo(i-1).
  // Violations are repaired by *widening* the row, which can only grow
  // reachable sets and therefore never invalidates earlier rows.
  std::size_t reach_lo = rows_[0].lo;
  std::size_t reach_hi = rows_[0].hi;
  for (std::size_t i = 1; i < n; ++i) {
    BandRow& cur = rows_[i];
    if (cur.lo > reach_hi + 1) cur.lo = reach_hi + 1;  // bridge the gap
    if (cur.hi < reach_lo) cur.hi = reach_lo;          // raise the ceiling
    reach_lo = std::max(cur.lo, reach_lo);
    reach_hi = cur.hi;
  }
  // Re-anchor the goal corner (widening, preserves reachability).
  rows_[n - 1].hi = last_col;
}

bool Band::IsFeasible() const {
  if (rows_.empty() || m_ == 0) return false;
  const std::size_t n = rows_.size();
  if (rows_[0].lo != 0) return false;
  if (rows_[n - 1].hi != m_ - 1) return false;
  for (const BandRow& r : rows_) {
    if (r.lo > r.hi || r.hi >= m_) return false;
  }
  // Simulate forward reachability from (0, 0); the band is feasible iff the
  // reachable interval of the last row contains the last column.
  std::size_t reach_lo = rows_[0].lo;
  std::size_t reach_hi = rows_[0].hi;
  for (std::size_t i = 1; i < n; ++i) {
    if (rows_[i].lo > reach_hi + 1) return false;
    if (rows_[i].hi < reach_lo) return false;
    reach_lo = std::max(rows_[i].lo, reach_lo);
    reach_hi = rows_[i].hi;
  }
  return reach_hi == m_ - 1 && reach_lo <= reach_hi;
}

void Band::Widen(std::size_t amount) {
  if (m_ == 0) return;
  for (BandRow& r : rows_) {
    r.lo = r.lo > amount ? r.lo - amount : 0;
    r.hi = std::min(m_ - 1, r.hi + amount);
  }
}

bool Band::IntersectWith(const Band& other) {
  if (other.n() != n() || other.m() != m()) return false;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i].lo = std::max(rows_[i].lo, other.rows_[i].lo);
    rows_[i].hi = std::min(rows_[i].hi, other.rows_[i].hi);
  }
  return true;
}

bool Band::UnionWith(const Band& other) {
  if (other.n() != n() || other.m() != m()) return false;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i].lo = std::min(rows_[i].lo, other.rows_[i].lo);
    rows_[i].hi = std::max(rows_[i].hi, other.rows_[i].hi);
  }
  return true;
}

Band Band::Transpose() const {
  Band t;
  t.m_ = rows_.size();
  if (m_ == 0 || rows_.empty()) return t;
  // Start with inverted (empty) rows: lo = m-1 (of the transposed grid),
  // hi = 0, then grow them.
  t.rows_.assign(m_, BandRow{t.m_ - 1, 0});
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::size_t j = rows_[i].lo; j <= rows_[i].hi && j < m_; ++j) {
      t.rows_[j].lo = std::min(t.rows_[j].lo, i);
      t.rows_[j].hi = std::max(t.rows_[j].hi, i);
    }
  }
  return t;
}

std::string Band::ToAscii() const {
  std::string out;
  if (rows_.empty() || m_ == 0) return out;
  for (std::size_t i = rows_.size(); i-- > 0;) {
    for (std::size_t j = 0; j < m_; ++j) {
      out.push_back(Contains(i, j) ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

Band SakoeChibaBand(std::size_t n, std::size_t m, double width_fraction) {
  if (n == 0 || m == 0) return Band();
  width_fraction = std::max(width_fraction, 0.0);
  // Minimal half-width keeping consecutive rows connected on rectangular
  // grids (the diagonal advances by (m-1)/(n-1) columns per row); without
  // this floor, thin bands on very skewed grids would need gap bridging,
  // which breaks the nesting of bands across widths.
  const double slope =
      n > 1 ? static_cast<double>(m - 1) / (2.0 * static_cast<double>(n - 1))
            : 0.0;
  const double half_width = std::max(
      std::ceil(width_fraction * static_cast<double>(m) / 2.0), slope);
  std::vector<BandRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Scaled diagonal core: j* = i * (M-1)/(N-1).
    const double core =
        n > 1 ? static_cast<double>(i) * static_cast<double>(m - 1) /
                    static_cast<double>(n - 1)
              : 0.0;
    const double lo = core - half_width;
    const double hi = core + half_width;
    rows[i].lo = lo <= 0.0 ? 0 : static_cast<std::size_t>(std::ceil(lo));
    rows[i].hi = hi >= static_cast<double>(m - 1)
                     ? m - 1
                     : static_cast<std::size_t>(std::floor(hi));
    if (rows[i].lo > rows[i].hi) {
      const std::size_t c = std::min(
          m - 1, static_cast<std::size_t>(std::llround(core)));
      rows[i].lo = rows[i].hi = c;
    }
  }
  Band b = Band::FromRows(std::move(rows), m);
  b.MakeFeasible();
  return b;
}

Band ItakuraBand(std::size_t n, std::size_t m, double max_slope) {
  if (n == 0 || m == 0) return Band();
  max_slope = std::max(1.0, max_slope);
  const double min_slope = 1.0 / max_slope;
  const double nn = static_cast<double>(n - 1);
  const double mm = static_cast<double>(m - 1);
  std::vector<BandRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    // Lower boundary: the path must still be able to reach (nn, mm) with
    // slope <= max_slope, and must have climbed at least min_slope so far.
    const double lo1 = min_slope * x;                 // from (0,0), shallow
    const double lo2 = mm - max_slope * (nn - x);     // to corner, steep
    const double hi1 = max_slope * x;                 // from (0,0), steep
    const double hi2 = mm - min_slope * (nn - x);     // to corner, shallow
    double lo = std::max(lo1, lo2);
    double hi = std::min(hi1, hi2);
    lo = std::clamp(lo, 0.0, mm);
    hi = std::clamp(hi, 0.0, mm);
    rows[i].lo = static_cast<std::size_t>(std::ceil(lo - 1e-9));
    rows[i].hi = static_cast<std::size_t>(std::floor(hi + 1e-9));
    if (rows[i].lo > rows[i].hi) {
      const std::size_t c = std::min(m - 1, rows[i].lo);
      rows[i].lo = rows[i].hi = c;
    }
  }
  Band b = Band::FromRows(std::move(rows), m);
  b.MakeFeasible();
  return b;
}

}  // namespace dtw
}  // namespace sdtw
