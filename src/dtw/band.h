#ifndef SDTW_DTW_BAND_H_
#define SDTW_DTW_BAND_H_

/// \file band.h
/// \brief The band (search-region) abstraction constraining the DTW grid.
///
/// A Band over an N×M grid stores, for every row i (a position in the first
/// series X), the inclusive column range [lo(i), hi(i)] of positions in the
/// second series Y that the warp path may visit. All constraint strategies —
/// Sakoe-Chiba, Itakura, and the paper's locally relevant sDTW constraints —
/// produce a Band, and the banded DP kernel consumes one.
///
/// Bands constructed from salient-feature evidence can contain gaps (empty
/// intervals produce rows whose ranges do not connect, §3.3.2); since a gap
/// would prevent the dynamic program from completing, MakeFeasible() bridges
/// them, mirroring the paper's gap-filling rule.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sdtw {
namespace dtw {

/// \brief Inclusive column range of one band row.
struct BandRow {
  /// 0-based inclusive first column.
  std::size_t lo = 0;
  /// 0-based inclusive last column.
  std::size_t hi = 0;

  std::size_t width() const { return hi >= lo ? hi - lo + 1 : 0; }
  friend bool operator==(const BandRow&, const BandRow&) = default;
};

/// \brief A per-row column-interval constraint over an N×M DTW grid.
class Band {
 public:
  Band() = default;

  /// Creates a full (unconstrained) band over an n×m grid.
  static Band Full(std::size_t n, std::size_t m);

  /// Creates a band from explicit rows (rows.size() == n, columns < m).
  /// Rows are clamped to [0, m-1] but not otherwise repaired; call
  /// MakeFeasible() before running the DP.
  static Band FromRows(std::vector<BandRow> rows, std::size_t m);

  /// Number of rows (length of X).
  std::size_t n() const { return rows_.size(); }
  /// Number of columns (length of Y).
  std::size_t m() const { return m_; }

  bool empty() const { return rows_.empty() || m_ == 0; }

  const BandRow& row(std::size_t i) const { return rows_[i]; }
  BandRow& mutable_row(std::size_t i) { return rows_[i]; }
  const std::vector<BandRow>& rows() const { return rows_; }

  /// True when cell (i, j) lies inside the band.
  bool Contains(std::size_t i, std::size_t j) const {
    return i < rows_.size() && j >= rows_[i].lo && j <= rows_[i].hi;
  }

  /// Number of grid cells inside the band.
  std::size_t CellCount() const;

  /// Fraction of the N×M grid covered by the band, in [0, 1].
  double Coverage() const;

  /// Repairs the band so a monotone warp path from (0,0) to (N-1,M-1) is
  /// guaranteed to exist:
  ///  * clamps every row to [0, m-1] and fixes inverted rows,
  ///  * forces (0,0) and (N-1,M-1) into the band,
  ///  * bridges row-to-row gaps: consecutive rows must satisfy
  ///    lo(i) <= hi(i-1) + 1 and hi(i) >= lo(i-1) (otherwise no DTW step
  ///    (1,0)/(0,1)/(1,1) can connect them); violations are widened.
  /// Idempotent.
  void MakeFeasible();

  /// True when MakeFeasible's post-conditions hold.
  bool IsFeasible() const;

  /// Expands every row by `amount` columns on both sides (clamped).
  void Widen(std::size_t amount);

  /// Intersects with another band of identical shape; rows that become empty
  /// are left inverted (lo > hi) and must be repaired via MakeFeasible().
  /// Returns false on shape mismatch.
  bool IntersectWith(const Band& other);

  /// Unions with another band of identical shape (used for the symmetric
  /// combined band of §3.3.3). Returns false on shape mismatch.
  bool UnionWith(const Band& other);

  /// Returns the transpose band over the M×N grid: cell (j, i) of the result
  /// is in-band iff (i, j) is in-band here. Rows of the result that receive
  /// no cells are inverted and require MakeFeasible().
  Band Transpose() const;

  /// Multi-line ASCII rendering ('#' in-band, '.' out), top row = last i.
  /// Intended for examples/debugging on small grids.
  std::string ToAscii() const;

  friend bool operator==(const Band&, const Band&) = default;

 private:
  std::vector<BandRow> rows_;
  std::size_t m_ = 0;
};

/// Builds a Sakoe-Chiba band: fixed diagonal core, fixed width (paper's
/// fc,fw baseline). `width_fraction` is the fraction of M each point of X is
/// compared against (the paper's w%: 0.06, 0.10, 0.20); the half-width is
/// ceil(width_fraction * M / 2) around the scaled diagonal.
Band SakoeChibaBand(std::size_t n, std::size_t m, double width_fraction);

/// Builds an Itakura-parallelogram band with the given maximum local slope
/// (classically 2.0): the path must stay between lines of slope `max_slope`
/// and 1/`max_slope` through both corners.
Band ItakuraBand(std::size_t n, std::size_t m, double max_slope = 2.0);

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_BAND_H_
