#ifndef SDTW_DTW_KERNEL_DISPATCH_H_
#define SDTW_DTW_KERNEL_DISPATCH_H_

/// \file kernel_dispatch.h
/// \brief Runtime dispatch of the two-pass DP row kernel across ISAs.
///
/// One binary carries every row-kernel variant the compiler could build —
/// portable, AVX2, AVX-512 — each compiled in its own translation unit
/// with per-file arch flags (src/CMakeLists.txt sets -mavx2 / -mavx512f on
/// exactly that file, nothing else), and the best one the running CPU
/// supports is picked once at startup. This replaces the PR-5 compromise
/// of a project-wide -march=native build (`-DSDTW_NATIVE=ON`): the SIMD
/// kernels are now always available, with no ODR hazard, because every
/// helper in row_kernel.h has internal linkage and each variant TU
/// instantiates the shared driver with a TU-local pass-1 functor — no
/// arch-flagged code is ever visible outside its own TU.
///
/// Selection order is avx512 > avx2 > portable among the variants that are
/// both compiled in and supported by the CPU (via the compiler's CPUID
/// builtins, which also check OS state-save support). The environment
/// variable SDTW_KERNEL=portable|avx2|avx512 forces a specific variant for
/// testing and benchmarking; an unknown or unsupported value aborts the
/// process at first kernel use with a clear message on stderr (silently
/// falling back would invalidate perf baselines and forced-variant test
/// runs). ResolveKernelOverride exposes the same resolution, error string
/// included, without the abort so tests can pin the failure modes.
///
/// Every variant obeys the row_kernel.h contract: distances, row minima,
/// abandon decisions, and cell counts bit-identical to the scalar
/// reference. The property suite pins this for each variant the host can
/// run, so callers may treat the active kernel as a pure speed choice.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dtw/cost.h"

namespace sdtw {
namespace dtw {

/// The row-kernel implementations a binary can carry. Listed in
/// preference order; higher enumerators are preferred when supported.
enum class KernelVariant {
  kPortable,  ///< Baseline-ISA two-pass kernel; always compiled in.
  kAvx2,      ///< 4-lane AVX2 pass 1.
  kAvx512,    ///< 8-lane AVX-512F pass 1.
};

/// Signature of a dispatched row fill: FillBandRowTwoPass (see
/// row_kernel.h) with the cost functor baked in. Fills DP columns
/// [clo, chi] of one row into the padded scratch row `cur`, reading the
/// padded previous row whose window is [plo, phi]; returns the row
/// minimum and adds the number of filled cells to *cells when non-null.
using RowFillFn = double (*)(const double* prev, std::size_t plo,
                             std::size_t phi, double* cur, std::size_t clo,
                             std::size_t chi, double xi, const double* y,
                             double* cost_row, unsigned char* flag_row,
                             std::size_t* cells);

/// \brief One row-kernel variant: identity plus its row-fill entry points.
///
/// The ops tables are immutable statics living in the variant TUs, so a
/// `const RowKernelOps*` is valid forever and trivially shareable across
/// threads. Passing nullptr where an ops handle is accepted means "use
/// ActiveRowKernelOps()".
struct RowKernelOps {
  KernelVariant variant;
  const char* name;         ///< "portable" / "avx2" / "avx512".
  RowFillFn fill_abs;       ///< Row fill under AbsCost.
  RowFillFn fill_squared;   ///< Row fill under SquaredCost.

  RowFillFn fill(CostKind kind) const {
    return kind == CostKind::kAbsolute ? fill_abs : fill_squared;
  }
};

/// The variant selected for this process: the SDTW_KERNEL override if set
/// (aborting with a stderr message when invalid or unsupported), otherwise
/// the most preferred compiled-in variant the CPU supports. Resolved once,
/// on first call; thread-safe.
const RowKernelOps& ActiveRowKernelOps();

/// The ops table of a variant, or nullptr when that variant was not
/// compiled into this binary (non-x86 target, or the compiler lacked the
/// arch flag). Makes no claim about CPU support.
const RowKernelOps* FindRowKernelOps(KernelVariant variant);

/// True when the variant is compiled in AND the running CPU can execute
/// it. Portable is always supported.
bool KernelVariantSupported(KernelVariant variant);

/// Every variant this binary can run on this CPU, in preference order
/// (portable first). The property suite iterates this to pin each runnable
/// variant against the scalar reference — absent variants are skipped, not
/// failed.
std::vector<const RowKernelOps*> SupportedRowKernels();

/// The canonical name of a variant ("portable" / "avx2" / "avx512").
const char* KernelVariantName(KernelVariant variant);

/// Parses a variant name as accepted by SDTW_KERNEL. Returns nullopt for
/// anything else (no aliases, no case folding — the accepted spellings are
/// part of the interface).
std::optional<KernelVariant> ParseKernelVariant(std::string_view name);

/// Outcome of resolving an SDTW_KERNEL-style override: `ops` on success,
/// otherwise nullptr plus a human-readable reason (unknown name, variant
/// not compiled in, CPU lacks the ISA).
struct KernelResolution {
  const RowKernelOps* ops = nullptr;
  std::string error;
};

/// Resolves an override value exactly as ActiveRowKernelOps does for
/// SDTW_KERNEL, but reports failure instead of aborting — the testable
/// surface of the startup path.
KernelResolution ResolveKernelOverride(std::string_view name);

/// Comma-separated list of the kernel-relevant CPU features detected at
/// runtime (e.g. "avx2,avx512f"), "none" when the CPU offers none of them.
/// Recorded in bench baselines so perf numbers are compared like-for-like.
std::string DetectedCpuFeatures();

namespace internal {
/// Variant tables, defined in src/dtw/kernels/row_kernel_<variant>.cc.
/// The AVX tables exist only when src/CMakeLists.txt compiled the variant
/// in (it then defines SDTW_HAVE_AVX2_KERNEL / SDTW_HAVE_AVX512_KERNEL on
/// kernel_dispatch.cc); reference them through FindRowKernelOps.
extern const RowKernelOps kPortableRowKernelOps;
extern const RowKernelOps kAvx2RowKernelOps;
extern const RowKernelOps kAvx512RowKernelOps;
}  // namespace internal

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_KERNEL_DISPATCH_H_
