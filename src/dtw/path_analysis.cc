#include "dtw/path_analysis.h"

#include <algorithm>
#include <cmath>

namespace sdtw {
namespace dtw {

PathStats AnalyzePath(const std::vector<PathPoint>& path, std::size_t n,
                      std::size_t m) {
  PathStats stats;
  if (path.empty() || n == 0 || m == 0) return stats;
  stats.length = path.size();
  const double slope =
      n > 1 ? static_cast<double>(m - 1) / static_cast<double>(n - 1) : 0.0;
  double dev_sum = 0.0;
  std::size_t diag_steps = 0;
  std::size_t stall = 0;
  for (std::size_t k = 0; k < path.size(); ++k) {
    const double diagonal = slope * static_cast<double>(path[k].first);
    const double dev =
        std::abs(static_cast<double>(path[k].second) - diagonal);
    dev_sum += dev;
    stats.max_diagonal_deviation = std::max(stats.max_diagonal_deviation,
                                            dev);
    if (k > 0) {
      const bool diagonal_step = path[k].first == path[k - 1].first + 1 &&
                                 path[k].second == path[k - 1].second + 1;
      if (diagonal_step) {
        ++diag_steps;
        stall = 0;
      } else {
        ++stall;
        stats.longest_stall = std::max(stats.longest_stall, stall);
      }
    }
  }
  stats.mean_diagonal_deviation =
      dev_sum / static_cast<double>(path.size());
  stats.diagonal_step_fraction =
      path.size() > 1
          ? static_cast<double>(diag_steps) /
                static_cast<double>(path.size() - 1)
          : 0.0;
  return stats;
}

std::vector<double> ObservedCore(const std::vector<PathPoint>& path,
                                 std::size_t n) {
  std::vector<double> core(n, 0.0);
  if (n == 0) return core;
  std::vector<double> sum(n, 0.0);
  std::vector<std::size_t> count(n, 0);
  for (const PathPoint& p : path) {
    if (p.first >= n) continue;
    sum[p.first] += static_cast<double>(p.second);
    ++count[p.first];
  }
  double last = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (count[i] > 0) {
      last = sum[i] / static_cast<double>(count[i]);
    }
    core[i] = last;
  }
  return core;
}

double PathContainment(const std::vector<PathPoint>& path, const Band& band) {
  if (path.empty()) return 0.0;
  std::size_t inside = 0;
  for (const PathPoint& p : path) {
    if (band.Contains(p.first, p.second)) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(path.size());
}

Band OracleBand(const std::vector<PathPoint>& path, std::size_t n,
                std::size_t m, std::size_t margin) {
  if (n == 0 || m == 0) return Band();
  std::vector<BandRow> rows(n, BandRow{m - 1, 0});
  for (const PathPoint& p : path) {
    if (p.first >= n) continue;
    rows[p.first].lo = std::min(rows[p.first].lo, p.second);
    rows[p.first].hi = std::max(rows[p.first].hi, p.second);
  }
  // Unvisited rows (only possible for invalid paths) inherit neighbours.
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i].lo > rows[i].hi) rows[i] = i > 0 ? rows[i - 1] : BandRow{0, 0};
  }
  Band band = Band::FromRows(std::move(rows), m);
  band.Widen(margin);
  band.MakeFeasible();
  return band;
}

}  // namespace dtw
}  // namespace sdtw
