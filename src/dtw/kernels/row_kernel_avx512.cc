/// \file row_kernel_avx512.cc
/// \brief AVX-512 row-kernel variant: explicit 8-lane pass 1.
///
/// Compiled with per-file -mavx512f (src/CMakeLists.txt) and dispatched
/// only after the runtime CPU check; the same TU-isolation rules as the
/// AVX2 variant apply (see row_kernel_avx2.cc).
///
/// The 8-lane pass mirrors the AVX2 structure, using what AVX-512F adds:
/// the s[k-1] lane shift is a single valignq concatenating the previous
/// group's top lane with the current lanes 0..6; the carry-win compare
/// yields a __mmask8 directly, expanded to flag bytes through the same
/// 16-entry table twice (low and high nibble) — no VL/BW instructions, so
/// plain avx512f is the only requirement; the staged minimum reduces once
/// per row through a stack spill (order-insensitive: min is associative
/// and commutative on the NaN-free values the kernel produces, and GCC's
/// _mm512_reduce_min_pd spuriously trips -Wmaybe-uninitialized through
/// _mm256_undefined_pd, which would break -Werror builds). The tail is
/// the same back-aligned overlapping trick, recomputing up to seven cells
/// with identical inputs, hence identical bits. The driver's minimum
/// width for this pass is 8; rows of 4..7 cells take the scalar path,
/// which is bit-identical by contract, so variant outputs still agree.

#if !defined(__AVX512F__)
#error "row_kernel_avx512.cc must be compiled with -mavx512f"
#endif

#if defined(__GNUC__) && !defined(__clang__)
// GCC's unmasked AVX-512F intrinsics are defined in terms of their masked
// forms with _mm512_undefined_pd() as the (fully overwritten) pass-through
// operand; -Wmaybe-uninitialized flags that deliberate garbage at -O2
// (GCC PR105593). TU-wide, intrinsics only — keep real uses of
// uninitialised locals out of this file.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "dtw/cost.h"
#include "dtw/kernel_dispatch.h"
#include "dtw/row_kernel.h"

namespace sdtw {
namespace dtw {

namespace {

using internal::kRowInf;

// Expands a 4-bit mask nibble into four 0/1 flag bytes (little-endian
// lane order: mask bit b -> byte b).
const std::uint32_t kFlagBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u};

inline void WriteFlagBytes(unsigned char* f, unsigned mask8) {
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(kFlagBytes[mask8 & 15u]) |
      static_cast<std::uint64_t>(kFlagBytes[mask8 >> 4]) << 32;
  std::memcpy(f, &bytes, 8);
}

inline __m512d CostVector(SquaredCost, __m512d xv, __m512d yv) {
  const __m512d d = _mm512_sub_pd(xv, yv);
  return _mm512_mul_pd(d, d);
}

inline __m512d CostVector(AbsCost, __m512d xv, __m512d yv) {
  return _mm512_abs_pd(_mm512_sub_pd(xv, yv));
}

// s shifted one lane right: [s_last lane 7, sv lanes 0..6]. valignq with
// shift 7 takes the top qword of the low operand and the low 7 of the
// high operand.
inline __m512d ShiftInPrevTop(__m512d sv, __m512d s_last) {
  return _mm512_castsi512_pd(_mm512_alignr_epi64(
      _mm512_castpd_si512(sv), _mm512_castpd_si512(s_last), 7));
}

struct Avx512RowPass1 {
  static constexpr std::size_t kMinWidth = 8;

  template <typename Cost>
  double operator()(Cost cost, double xi, const double* pu, const double* pd,
                    const double* yy, double* cur, double* cost_row,
                    unsigned char* flag_row, std::size_t w) const {
    const __m512d xv = _mm512_set1_pd(xi);
    __m512d sminv = _mm512_set1_pd(kRowInf);
    __m512d s_last = _mm512_set1_pd(kRowInf);  // lane 7 = s[k-1] carry-in
    std::size_t k = 0;
    for (; k + 8 <= w; k += 8) {
      const __m512d up = _mm512_loadu_pd(pu + k);
      const __m512d dg = _mm512_loadu_pd(pd + k);
      const __m512d cv = CostVector(cost, xv, _mm512_loadu_pd(yy + k));
      const __m512d sv = _mm512_add_pd(_mm512_min_pd(up, dg), cv);
      _mm512_storeu_pd(cur + k, sv);
      _mm512_storeu_pd(cost_row + k, cv);
      sminv = _mm512_min_pd(sminv, sv);
      const __m512d sprev = ShiftInPrevTop(sv, s_last);
      s_last = sv;
      const __mmask8 fm = _mm512_cmp_pd_mask(_mm512_add_pd(sprev, cv), sv,
                                             _CMP_LT_OQ);
      WriteFlagBytes(flag_row + k, fm);
    }
    if (k < w) {
      // Back-aligned overlapping tail vector, as in the AVX2 variant:
      // recomputes up to seven cells with identical inputs (identical
      // bits). w >= 8 guaranteed by the driver's kMinWidth gate.
      const std::size_t kt = w - 8;
      const __m512d up = _mm512_loadu_pd(pu + kt);
      const __m512d dg = _mm512_loadu_pd(pd + kt);
      const __m512d cv = CostVector(cost, xv, _mm512_loadu_pd(yy + kt));
      const __m512d sv = _mm512_add_pd(_mm512_min_pd(up, dg), cv);
      _mm512_storeu_pd(cur + kt, sv);
      _mm512_storeu_pd(cost_row + kt, cv);
      sminv = _mm512_min_pd(sminv, sv);
      // kt >= 1 here (w % 8 != 0 and w > 8), so cur[kt-1] is staged.
      const __m512d sprev = _mm512_loadu_pd(cur + kt - 1);
      const __mmask8 fm = _mm512_cmp_pd_mask(_mm512_add_pd(sprev, cv), sv,
                                             _CMP_LT_OQ);
      WriteFlagBytes(flag_row + kt, fm);
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, sminv);
    double smin = lanes[0];
    for (int i = 1; i < 8; ++i) {
      if (lanes[i] < smin) smin = lanes[i];
    }
    return smin;
  }
};

template <typename Cost>
double Fill(const double* prev, std::size_t plo, std::size_t phi,
            double* cur, std::size_t clo, std::size_t chi, double xi,
            const double* y, double* cost_row, unsigned char* flag_row,
            std::size_t* cells) {
  return internal::FillBandRowTwoPassImpl(prev, plo, phi, cur, clo, chi, xi,
                                          y, Cost{}, cost_row, flag_row,
                                          cells, Avx512RowPass1{});
}

}  // namespace

namespace internal {

const RowKernelOps kAvx512RowKernelOps = {
    KernelVariant::kAvx512,
    "avx512",
    &Fill<AbsCost>,
    &Fill<SquaredCost>,
};

}  // namespace internal

}  // namespace dtw
}  // namespace sdtw
