/// \file row_kernel_avx2.cc
/// \brief AVX2 row-kernel variant: explicit 4-lane pass 1.
///
/// Compiled with per-file -mavx2 (src/CMakeLists.txt) and dispatched only
/// after the runtime CPU check, so nothing here may leak into other TUs:
/// every symbol is in an anonymous namespace (except the ops table, whose
/// initialisers are plain function pointers), and the shared driver is
/// instantiated with the TU-local Avx2RowPass1 functor, which makes the
/// instantiation itself unique to this TU.
///
/// Pass 1 runs as 4-lane intrinsics: up/diag as shifted unaligned loads
/// from the padded prev row, the carry flags extracted four at a time via
/// movemask and a 16-entry byte-expansion table, the s[k-1] lane shift as
/// a cross-lane permute blended with the previous group's top lane, and
/// the tail as one back-aligned overlapping vector (recomputing up to
/// three cells with identical inputs, hence identical bits) instead of a
/// masked epilogue. Measured on the BM_DtwBandedNarrowDistance band
/// (width 33): ~3x the portable variant's cells/s.

#if !defined(__AVX2__)
#error "row_kernel_avx2.cc must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "dtw/cost.h"
#include "dtw/kernel_dispatch.h"
#include "dtw/row_kernel.h"

namespace sdtw {
namespace dtw {

namespace {

using internal::kRowInf;

// Expands a 4-bit movemask into four 0/1 flag bytes (little-endian lane
// order: mask bit b -> byte b).
const std::uint32_t kFlagBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u};

inline __m256d CostVector(SquaredCost, __m256d xv, __m256d yv) {
  const __m256d d = _mm256_sub_pd(xv, yv);
  return _mm256_mul_pd(d, d);
}

inline __m256d CostVector(AbsCost, __m256d xv, __m256d yv) {
  const __m256d d = _mm256_sub_pd(xv, yv);
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), d);
}

struct Avx2RowPass1 {
  static constexpr std::size_t kMinWidth = 4;

  template <typename Cost>
  double operator()(Cost cost, double xi, const double* pu, const double* pd,
                    const double* yy, double* cur, double* cost_row,
                    unsigned char* flag_row, std::size_t w) const {
    const __m256d xv = _mm256_set1_pd(xi);
    __m256d sminv = _mm256_set1_pd(kRowInf);
    __m256d s_last = _mm256_set1_pd(kRowInf);  // lane 3 = s[k-1] carry-in
    std::size_t k = 0;
    for (; k + 4 <= w; k += 4) {
      const __m256d up = _mm256_loadu_pd(pu + k);
      const __m256d dg = _mm256_loadu_pd(pd + k);
      const __m256d cv = CostVector(cost, xv, _mm256_loadu_pd(yy + k));
      const __m256d sv = _mm256_add_pd(_mm256_min_pd(up, dg), cv);
      _mm256_storeu_pd(cur + k, sv);
      _mm256_storeu_pd(cost_row + k, cv);
      sminv = _mm256_min_pd(sminv, sv);
      // s shifted one lane right (s[k-1..k+2]): previous group's lane 3
      // into lane 0, current lanes 0..2 into lanes 1..3.
      const __m256d rot = _mm256_permute4x64_pd(sv, _MM_SHUFFLE(2, 1, 0, 3));
      const __m256d prev_top =
          _mm256_permute4x64_pd(s_last, _MM_SHUFFLE(3, 3, 3, 3));
      const __m256d sprev = _mm256_blend_pd(rot, prev_top, 1);
      s_last = sv;
      const int fm = _mm256_movemask_pd(
          _mm256_cmp_pd(_mm256_add_pd(sprev, cv), sv, _CMP_LT_OQ));
      std::memcpy(flag_row + k, &kFlagBytes[fm], 4);
    }
    if (k < w) {
      // Back-aligned overlapping tail vector: recomputes up to three
      // cells with identical inputs (so identical bits), never reads past
      // the row, and needs no masked epilogue. w >= 4 guaranteed by the
      // driver's kMinWidth gate.
      const std::size_t kt = w - 4;
      const __m256d up = _mm256_loadu_pd(pu + kt);
      const __m256d dg = _mm256_loadu_pd(pd + kt);
      const __m256d cv = CostVector(cost, xv, _mm256_loadu_pd(yy + kt));
      const __m256d sv = _mm256_add_pd(_mm256_min_pd(up, dg), cv);
      _mm256_storeu_pd(cur + kt, sv);
      _mm256_storeu_pd(cost_row + kt, cv);
      sminv = _mm256_min_pd(sminv, sv);
      // kt >= 1 here (w % 4 != 0 and w > 4), so cur[kt-1] is staged.
      const __m256d sprev = _mm256_loadu_pd(cur + kt - 1);
      const int fm = _mm256_movemask_pd(
          _mm256_cmp_pd(_mm256_add_pd(sprev, cv), sv, _CMP_LT_OQ));
      std::memcpy(flag_row + kt, &kFlagBytes[fm], 4);
    }
    const __m128d lo = _mm256_castpd256_pd128(sminv);
    const __m128d hi = _mm256_extractf128_pd(sminv, 1);
    __m128d m2 = _mm_min_pd(lo, hi);
    m2 = _mm_min_sd(m2, _mm_unpackhi_pd(m2, m2));
    return _mm_cvtsd_f64(m2);
  }
};

template <typename Cost>
double Fill(const double* prev, std::size_t plo, std::size_t phi,
            double* cur, std::size_t clo, std::size_t chi, double xi,
            const double* y, double* cost_row, unsigned char* flag_row,
            std::size_t* cells) {
  return internal::FillBandRowTwoPassImpl(prev, plo, phi, cur, clo, chi, xi,
                                          y, Cost{}, cost_row, flag_row,
                                          cells, Avx2RowPass1{});
}

}  // namespace

namespace internal {

const RowKernelOps kAvx2RowKernelOps = {
    KernelVariant::kAvx2,
    "avx2",
    &Fill<AbsCost>,
    &Fill<SquaredCost>,
};

}  // namespace internal

}  // namespace dtw
}  // namespace sdtw
