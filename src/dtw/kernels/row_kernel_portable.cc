/// \file row_kernel_portable.cc
/// \brief Portable row-kernel variant: the two-pass kernel compiled with
/// the project's baseline flags only. Always compiled in; the floor every
/// other variant must match bit for bit, and the fallback selected when
/// the CPU offers no vector ISA we carry.

#include <cstddef>

#include "dtw/cost.h"
#include "dtw/kernel_dispatch.h"
#include "dtw/row_kernel.h"

namespace sdtw {
namespace dtw {

namespace {

template <typename Cost>
double Fill(const double* prev, std::size_t plo, std::size_t phi,
            double* cur, std::size_t clo, std::size_t chi, double xi,
            const double* y, double* cost_row, unsigned char* flag_row,
            std::size_t* cells) {
  return internal::FillBandRowTwoPass(prev, plo, phi, cur, clo, chi, xi, y,
                                      Cost{}, cost_row, flag_row, cells);
}

}  // namespace

namespace internal {

const RowKernelOps kPortableRowKernelOps = {
    KernelVariant::kPortable,
    "portable",
    &Fill<AbsCost>,
    &Fill<SquaredCost>,
};

}  // namespace internal

}  // namespace dtw
}  // namespace sdtw
