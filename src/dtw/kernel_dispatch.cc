#include "dtw/kernel_dispatch.h"

#include <cstdio>
#include <cstdlib>

// SDTW_HAVE_AVX2_KERNEL / SDTW_HAVE_AVX512_KERNEL are per-file compile
// definitions set by src/CMakeLists.txt on exactly this TU, mirroring
// which variant TUs it compiled in. The CPUID builtins below exist only
// when targeting x86, which is also the only case where the AVX variants
// are compiled, so every __builtin_cpu_supports call sits behind one of
// these macros.

namespace sdtw {
namespace dtw {

namespace {

bool CpuSupports(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kPortable:
      return true;
    case KernelVariant::kAvx2:
#if defined(SDTW_HAVE_AVX2_KERNEL)
      // Checks CPUID and OS xsave state (XCR0) in one go.
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelVariant::kAvx512:
#if defined(SDTW_HAVE_AVX512_KERNEL)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

const RowKernelOps& SelectActiveOps() {
  // getenv is on clang-tidy's mt-unsafe list because of setenv races, but
  // this read happens exactly once per process (magic-static init in
  // ActiveRowKernelOps) and nothing in the library ever calls setenv.
  if (const char* env = std::getenv("SDTW_KERNEL");  // NOLINT(concurrency-mt-unsafe)
      env != nullptr && *env != '\0') {
    const KernelResolution r = ResolveKernelOverride(env);
    if (r.ops == nullptr) {
      // Abort rather than fall back: a silently ignored override would
      // poison forced-variant test runs and perf baselines. exit() is
      // mt-unsafe in general; here the process is being torn down on a
      // configuration error before any worker threads can exist.
      std::fprintf(stderr, "sdtw: SDTW_KERNEL=%s: %s\n", env,
                   r.error.c_str());
      std::exit(EXIT_FAILURE);  // NOLINT(concurrency-mt-unsafe)
    }
    return *r.ops;
  }
  for (const KernelVariant v :
       {KernelVariant::kAvx512, KernelVariant::kAvx2}) {
    if (KernelVariantSupported(v)) return *FindRowKernelOps(v);
  }
  return internal::kPortableRowKernelOps;
}

}  // namespace

const RowKernelOps& ActiveRowKernelOps() {
  static const RowKernelOps& ops = SelectActiveOps();
  return ops;
}

const RowKernelOps* FindRowKernelOps(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kPortable:
      return &internal::kPortableRowKernelOps;
    case KernelVariant::kAvx2:
#if defined(SDTW_HAVE_AVX2_KERNEL)
      return &internal::kAvx2RowKernelOps;
#else
      return nullptr;
#endif
    case KernelVariant::kAvx512:
#if defined(SDTW_HAVE_AVX512_KERNEL)
      return &internal::kAvx512RowKernelOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool KernelVariantSupported(KernelVariant variant) {
  return FindRowKernelOps(variant) != nullptr && CpuSupports(variant);
}

std::vector<const RowKernelOps*> SupportedRowKernels() {
  std::vector<const RowKernelOps*> out;
  for (const KernelVariant v : {KernelVariant::kPortable,
                                KernelVariant::kAvx2,
                                KernelVariant::kAvx512}) {
    if (KernelVariantSupported(v)) out.push_back(FindRowKernelOps(v));
  }
  return out;
}

const char* KernelVariantName(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kPortable:
      return "portable";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<KernelVariant> ParseKernelVariant(std::string_view name) {
  if (name == "portable") return KernelVariant::kPortable;
  if (name == "avx2") return KernelVariant::kAvx2;
  if (name == "avx512") return KernelVariant::kAvx512;
  return std::nullopt;
}

KernelResolution ResolveKernelOverride(std::string_view name) {
  KernelResolution r;
  const std::optional<KernelVariant> v = ParseKernelVariant(name);
  if (!v.has_value()) {
    r.error = "unknown kernel variant '" + std::string(name) +
              "' (valid values: portable, avx2, avx512)";
    return r;
  }
  const RowKernelOps* ops = FindRowKernelOps(*v);
  if (ops == nullptr) {
    r.error = std::string("kernel variant '") + KernelVariantName(*v) +
              "' is not compiled into this binary";
    return r;
  }
  if (!CpuSupports(*v)) {
    r.error = std::string("kernel variant '") + KernelVariantName(*v) +
              "' is not supported by this CPU (detected features: " +
              DetectedCpuFeatures() + ")";
    return r;
  }
  r.ops = ops;
  return r;
}

std::string DetectedCpuFeatures() {
  std::string features;
#if defined(SDTW_HAVE_AVX2_KERNEL) || defined(SDTW_HAVE_AVX512_KERNEL)
  const auto append = [&features](const char* name) {
    if (!features.empty()) features += ',';
    features += name;
  };
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
#endif
  if (features.empty()) features = "none";
  return features;
}

}  // namespace dtw
}  // namespace sdtw
