#include "dtw/multiscale.h"

#include <algorithm>

#include "ts/transforms.h"

namespace sdtw {
namespace dtw {

Band ProjectPathToBand(const std::vector<PathPoint>& coarse_path,
                       std::size_t n, std::size_t m, std::size_t shrink,
                       std::size_t radius) {
  if (n == 0 || m == 0) return Band();
  // Start from inverted rows and grow them with the projected blocks.
  std::vector<BandRow> rows(n, BandRow{m - 1, 0});
  auto cover = [&](std::size_t i, std::size_t lo, std::size_t hi) {
    if (i >= n) return;
    lo = std::min(lo, m - 1);
    hi = std::min(hi, m - 1);
    rows[i].lo = std::min(rows[i].lo, lo);
    rows[i].hi = std::max(rows[i].hi, hi);
  };
  for (const PathPoint& p : coarse_path) {
    const std::size_t i0 = p.first * shrink;
    const std::size_t j0 = p.second * shrink;
    for (std::size_t di = 0; di < shrink; ++di) {
      cover(i0 + di, j0, j0 + shrink - 1);
    }
  }
  // Rows never touched by the projection (possible when n is not an exact
  // multiple of shrink) inherit the previous row's range.
  for (std::size_t i = 0; i < n; ++i) {
    if (rows[i].lo > rows[i].hi) {
      rows[i] = i > 0 ? rows[i - 1] : BandRow{0, 0};
    }
  }
  Band band = Band::FromRows(std::move(rows), m);
  band.Widen(radius);
  band.MakeFeasible();
  return band;
}

namespace {

DtwResult MultiscaleImpl(const ts::TimeSeries& x, const ts::TimeSeries& y,
                         const Band* final_constraint,
                         const MultiscaleOptions& options) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  DtwOptions dtw_opts;
  dtw_opts.cost = options.cost;
  dtw_opts.want_path = true;
  const std::size_t shrink = std::max<std::size_t>(2, options.shrink);

  if (n <= options.min_size || m <= options.min_size) {
    DtwOptions leaf = dtw_opts;
    leaf.want_path = options.want_path || final_constraint == nullptr;
    if (final_constraint != nullptr) {
      return DtwBanded(x, y, *final_constraint, leaf);
    }
    return Dtw(x, y, leaf);
  }

  // Recurse on PAA-reduced series.
  const ts::TimeSeries xs = ts::Paa(x, std::max<std::size_t>(1, n / shrink));
  const ts::TimeSeries ys = ts::Paa(y, std::max<std::size_t>(1, m / shrink));
  MultiscaleOptions coarse = options;
  coarse.want_path = true;
  const DtwResult coarse_result = MultiscaleImpl(xs, ys, nullptr, coarse);

  Band band = ProjectPathToBand(coarse_result.path, n, m, shrink,
                                options.radius);
  if (final_constraint != nullptr) {
    band.IntersectWith(*final_constraint);
    band.MakeFeasible();
  }
  DtwOptions refine = dtw_opts;
  refine.want_path = options.want_path;
  DtwResult result = DtwBanded(x, y, band, refine);
  result.cells_filled += coarse_result.cells_filled;
  // The coarse and refined matrices never coexist, so the peak DP storage
  // is the larger of the two.
  result.cells_allocated =
      std::max(result.cells_allocated, coarse_result.cells_allocated);
  return result;
}

}  // namespace

DtwResult MultiscaleDtw(const ts::TimeSeries& x, const ts::TimeSeries& y,
                        const MultiscaleOptions& options) {
  return MultiscaleImpl(x, y, nullptr, options);
}

DtwResult MultiscaleDtwConstrained(const ts::TimeSeries& x,
                                   const ts::TimeSeries& y,
                                   const Band& constraint,
                                   const MultiscaleOptions& options) {
  return MultiscaleImpl(x, y, &constraint, options);
}

}  // namespace dtw
}  // namespace sdtw
