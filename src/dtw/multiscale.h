#ifndef SDTW_DTW_MULTISCALE_H_
#define SDTW_DTW_MULTISCALE_H_

/// \file multiscale.h
/// \brief Reduced-representation DTW (FastDTW-style coarse-to-fine search).
///
/// §2.1.4 of the paper describes reduced-representation approaches
/// (Keogh & Pazzani 2000, Salvador & Chan 2007) as orthogonal to constraint
/// based pruning, and notes sDTW "can naturally be implemented along with"
/// them. This module provides that combination: a warp path is found on a
/// PAA-reduced grid, projected up one resolution, widened by a radius, and
/// refined — optionally intersected with an sDTW band at the full
/// resolution.

#include <cstddef>

#include "dtw/band.h"
#include "dtw/dtw.h"
#include "ts/time_series.h"

namespace sdtw {
namespace dtw {

/// \brief Options for the multiscale solver.
struct MultiscaleOptions {
  /// Grid sizes below this are solved exactly.
  std::size_t min_size = 32;
  /// Expansion radius applied when projecting a coarse path up.
  std::size_t radius = 2;
  /// Shrink factor between resolutions.
  std::size_t shrink = 2;
  CostKind cost = CostKind::kAbsolute;
  bool want_path = true;
};

/// Projects a warp path found on a (cn x cm) grid onto an (n x m) grid as a
/// Band: every coarse cell maps to a `shrink x shrink` block, which is then
/// widened by `radius` and repaired to feasibility.
Band ProjectPathToBand(const std::vector<PathPoint>& coarse_path,
                       std::size_t n, std::size_t m, std::size_t shrink,
                       std::size_t radius);

/// FastDTW-style approximate DTW.
DtwResult MultiscaleDtw(const ts::TimeSeries& x, const ts::TimeSeries& y,
                        const MultiscaleOptions& options = {});

/// Multiscale DTW whose final refinement band is intersected with
/// `constraint` (e.g. an sDTW band) before the last DP — the combination the
/// paper's §2.1.4 calls out. The intersection is repaired to feasibility.
DtwResult MultiscaleDtwConstrained(const ts::TimeSeries& x,
                                   const ts::TimeSeries& y,
                                   const Band& constraint,
                                   const MultiscaleOptions& options = {});

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_MULTISCALE_H_
