#ifndef SDTW_DTW_BAND_MATRIX_H_
#define SDTW_DTW_BAND_MATRIX_H_

/// \file band_matrix.h
/// \brief Band-compressed storage for the DTW accumulation matrix.
///
/// The point of the paper's locally relevant constraints is that the DP only
/// ever visits the narrow band induced by salient-feature alignments — so
/// the accumulation matrix must not be materialised at (N+1)x(M+1) either.
/// BandMatrix stores only the Σ(hi−lo+1) in-band cells, one contiguous
/// window per row with a prefix-sum offset table, and answers reads outside
/// a row's window with +infinity (the same value those cells would hold in
/// the full matrix). Backtracking works unchanged on top of at().
///
/// Storage is laid out in *DP coordinates*: DP row i >= 1 corresponds to
/// band row i-1 shifted right by one column (the DP border), and DP row 0
/// holds the origin — column 0 alone for the closed-begin kernels, or the
/// whole zero-initialised border row for the open-begin (subsequence)
/// kernel.

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "dtw/band.h"

namespace sdtw {
namespace dtw {

/// The DP-coordinate window of band row `r` over `m` columns: the row
/// shifted by the +1 DP border and clamped to [1, m]. Returns {1, 0}
/// (empty) for inverted or out-of-grid rows. The single source of truth
/// for band-to-DP clamping, shared by BandMatrix and the rolling kernels.
inline std::pair<std::size_t, std::size_t> DpWindow(const BandRow& r,
                                                    std::size_t m) {
  if (r.lo > r.hi || r.lo >= m) return {1, 0};
  return {r.lo + 1, std::min(r.hi + 1, m)};
}

/// The widest DP row window of `band` (in doubles), including the origin
/// row 0 (width 1). This is the buffer extent a rolling two-row kernel
/// needs for the band — callers that reuse one scratch buffer across many
/// bands (batched retrieval) size it once to the maximum of this value
/// over their candidate set.
inline std::size_t MaxDpRowWidth(const Band& band) {
  std::size_t max_width = 1;  // DP row 0 holds the origin cell
  for (std::size_t i = 0; i < band.n(); ++i) {
    const auto [lo, hi] = DpWindow(band.row(i), band.m());
    if (lo <= hi) max_width = std::max(max_width, hi - lo + 1);
  }
  return max_width;
}

/// \brief Row-compressed (N+1)x(M+1) DTW accumulation matrix.
///
/// Allocates offset_/lo_ index tables of size O(N) plus exactly
/// Σ row-window widths doubles; reads outside the stored windows return
/// +infinity without touching memory.
class BandMatrix {
 public:
  /// Closed-begin matrix over `band` (shape n x m): DP row 0 stores only
  /// the origin cell, initialised to 0; all other stored cells start at
  /// +infinity. Requires band.n() > 0 and band.m() > 0.
  explicit BandMatrix(const Band& band) : BandMatrix(band, false) {}

  /// Open-begin matrix (subsequence matching): DP row 0 stores the whole
  /// border row [0, m], initialised to 0 (free start anywhere in Y).
  static BandMatrix OpenBegin(const Band& band) {
    return BandMatrix(band, true);
  }

  /// Number of series rows (DP rows are [0, n()]).
  std::size_t n() const { return lo_.size() - 1; }
  /// Number of series columns (DP columns are [0, m()]).
  std::size_t m() const { return m_; }

  /// First stored DP column of DP row i; lo > hi means an empty row.
  std::size_t row_lo(std::size_t i) const { return lo_[i]; }
  /// Last stored DP column of DP row i (lo - 1 when the row is empty).
  std::size_t row_hi(std::size_t i) const {
    return lo_[i] + (offset_[i + 1] - offset_[i]) - 1;
  }

  /// Cell value at DP coordinates (i, j); +infinity outside the stored
  /// window of row i.
  double at(std::size_t i, std::size_t j) const {
    const std::size_t k = j - lo_[i];  // wraps (huge) when j < lo_[i]
    return k < offset_[i + 1] - offset_[i]
               ? cells_[offset_[i] + k]
               : std::numeric_limits<double>::infinity();
  }

  /// Mutable storage of DP row i: row_hi(i) - row_lo(i) + 1 doubles, the
  /// first of which is DP column row_lo(i).
  double* row_data(std::size_t i) { return cells_.data() + offset_[i]; }
  const double* row_data(std::size_t i) const {
    return cells_.data() + offset_[i];
  }

  /// Total doubles allocated for cell storage (the memory the band
  /// compression is meant to shrink; excludes the O(N) index tables).
  std::size_t cells_allocated() const { return cells_.size(); }

 private:
  BandMatrix(const Band& band, bool open_begin);

  std::vector<double> cells_;        ///< Concatenated row windows.
  std::vector<std::size_t> offset_;  ///< n+2 prefix offsets into cells_.
  std::vector<std::size_t> lo_;      ///< n+1 per-row first DP columns.
  std::size_t m_ = 0;
};

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_BAND_MATRIX_H_
