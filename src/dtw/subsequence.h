#ifndef SDTW_DTW_SUBSEQUENCE_H_
#define SDTW_DTW_SUBSEQUENCE_H_

/// \file subsequence.h
/// \brief Subsequence DTW: find where a short query best aligns inside a
/// long series.
///
/// The paper's introduction motivates "querying and clustering of sequences
/// and sub-sequences"; this module provides the standard open-begin /
/// open-end DTW formulation: the first row of the accumulation matrix is
/// initialised to zero (the match may start anywhere in the long series)
/// and the answer is the minimum of the last row (it may end anywhere).
/// Backtracking recovers the matched window.

#include <cstddef>
#include <vector>

#include "dtw/cost.h"
#include "dtw/dtw.h"
#include "ts/time_series.h"

namespace sdtw {
namespace dtw {

/// \brief Result of a subsequence search.
struct SubsequenceMatch {
  /// DTW distance of the best window.
  double distance = std::numeric_limits<double>::infinity();
  /// Inclusive window [begin, end] in the long series.
  std::size_t begin = 0;
  std::size_t end = 0;
  /// Warp path from (0, begin) to (|query|-1, end), in (query index,
  /// series index) coordinates; empty when not requested.
  std::vector<PathPoint> path;
};

/// \brief Options of the subsequence search.
struct SubsequenceOptions {
  CostKind cost = CostKind::kAbsolute;
  bool want_path = true;
  /// Row-kernel variant for the open-begin DP fill; nullptr selects the
  /// process-wide ActiveRowKernelOps(). Bit-identical across variants.
  const RowKernelOps* kernel = nullptr;
};

/// Finds the best-aligning window of `series` for `query` (query drives the
/// rows: O(|query| × |series|) time). Returns an infinite-distance match
/// when either input is empty.
SubsequenceMatch FindBestSubsequence(const ts::TimeSeries& query,
                                     const ts::TimeSeries& series,
                                     const SubsequenceOptions& options = {});

/// Finds the `k` best non-overlapping windows, greedily: best match first,
/// then the best match disjoint from all previous ones, and so on. Returns
/// fewer than k matches when the series is exhausted.
std::vector<SubsequenceMatch> FindTopKSubsequences(
    const ts::TimeSeries& query, const ts::TimeSeries& series, std::size_t k,
    const SubsequenceOptions& options = {});

}  // namespace dtw
}  // namespace sdtw

#endif  // SDTW_DTW_SUBSEQUENCE_H_
