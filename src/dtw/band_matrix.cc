#include "dtw/band_matrix.h"

#include <algorithm>

namespace sdtw {
namespace dtw {

BandMatrix::BandMatrix(const Band& band, bool open_begin) : m_(band.m()) {
  const std::size_t n = band.n();
  lo_.resize(n + 1);
  offset_.resize(n + 2);
  // DP row 0 is the border: just the origin for closed-begin, the whole
  // zero row for open-begin.
  lo_[0] = 0;
  offset_[0] = 0;
  offset_[1] = (open_begin ? m_ : 0) + 1;
  for (std::size_t i = 1; i <= n; ++i) {
    // Inverted band rows (lo > hi) and rows entirely right of the grid
    // store nothing.
    const auto [lo, hi] = DpWindow(band.row(i - 1), m_);
    lo_[i] = lo;
    offset_[i + 1] = offset_[i] + (lo <= hi ? hi - lo + 1 : 0);
  }
  cells_.assign(offset_[n + 1], std::numeric_limits<double>::infinity());
  std::fill(cells_.begin(), cells_.begin() + static_cast<long>(offset_[1]),
            0.0);
}

}  // namespace dtw
}  // namespace sdtw
