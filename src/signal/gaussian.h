#ifndef SDTW_SIGNAL_GAUSSIAN_H_
#define SDTW_SIGNAL_GAUSSIAN_H_

/// \file gaussian.h
/// \brief Gaussian kernels and Gaussian smoothing of 1-D signals.
///
/// The sDTW salient-feature search (paper §3.1.2) builds a multi-scale
/// representation of a time series through convolution with Gaussians
/// G(x, σ); this file provides the kernel construction and the convolution
/// entry points it needs.

#include <cstddef>
#include <vector>

#include "ts/time_series.h"

namespace sdtw {
namespace signal {

/// \brief A discrete, normalised Gaussian kernel.
struct GaussianKernel {
  double sigma = 0.0;
  /// Symmetric taps; taps.size() == 2*radius+1.
  std::vector<double> taps;

  std::size_t radius() const { return taps.empty() ? 0 : taps.size() / 2; }
};

/// Builds a normalised Gaussian kernel with the conventional 3σ support
/// (radius = ceil(3σ), minimum 1). sigma <= 0 yields the identity kernel.
GaussianKernel MakeGaussianKernel(double sigma);

/// Convolves `input` with `kernel` using reflective ("mirror") boundary
/// handling, which avoids fabricating edge discontinuities that would show
/// up as spurious scale-space extrema.
std::vector<double> Convolve(const std::vector<double>& input,
                             const GaussianKernel& kernel);

/// Gaussian-smooths a time series: L(i, σ) = G(i, σ) * x_i.
ts::TimeSeries GaussianSmooth(const ts::TimeSeries& input, double sigma);

/// Central-difference gradient with one-sided differences at the ends;
/// same length as the input. This is the 1-D analogue of SIFT's image
/// gradients (only the horizontal direction exists; paper §3.1.2 step 2).
std::vector<double> Gradient(const std::vector<double>& input);

/// Downsamples by taking every second sample ("picking every second pixel",
/// paper §3.1.2), used when moving to the next octave.
std::vector<double> Downsample2(const std::vector<double>& input);

}  // namespace signal
}  // namespace sdtw

#endif  // SDTW_SIGNAL_GAUSSIAN_H_
