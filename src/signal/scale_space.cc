#include "signal/scale_space.h"

#include <algorithm>
#include <cmath>

#include "signal/gaussian.h"

namespace sdtw {
namespace signal {

std::size_t AutoOctaves(std::size_t n) {
  if (n < 2) return 1;
  const long o = static_cast<long>(std::floor(std::log2(
                     static_cast<double>(n)))) - 6;
  // The paper's o = floor(log2 N) - 6 (§4.3), floored at 3: Table 2 reports
  // salient points in three scale tiers (fine/medium/rough) even for the
  // Gun set (N = 150, where the formula alone gives 1), so the effective
  // pyramid must span at least three octaves. Octave construction still
  // stops early when the downsampled series drops below min_length.
  return static_cast<std::size_t>(std::max(3L, o));
}

ScaleSpace::ScaleSpace(const ts::TimeSeries& input,
                       const ScaleSpaceOptions& options)
    : options_(options) {
  const std::size_t s = std::max<std::size_t>(1, options_.levels_per_octave);
  options_.levels_per_octave = s;
  kappa_ = std::pow(2.0, 1.0 / static_cast<double>(s));

  std::size_t num_octaves = options_.num_octaves;
  if (num_octaves == 0) num_octaves = AutoOctaves(input.size());

  // Bring the input up to base_sigma from its assumed native smoothing.
  std::vector<double> base = input.values();
  const double delta2 = options_.base_sigma * options_.base_sigma -
                        options_.input_sigma * options_.input_sigma;
  if (delta2 > 0.0) {
    base = Convolve(base, MakeGaussianKernel(std::sqrt(delta2)));
  }

  for (std::size_t o = 0; o < num_octaves; ++o) {
    if (base.size() < options_.min_length) break;
    Octave oct;
    oct.index = o;
    // s + 3 Gaussian levels so that s + 2 DoG levels exist and extrema can
    // be localised at s levels with both scale neighbours present.
    const std::size_t num_levels = s + 3;
    oct.gaussians.reserve(num_levels);
    oct.sigmas.reserve(num_levels);
    oct.gaussians.push_back(base);
    oct.sigmas.push_back(options_.base_sigma);
    for (std::size_t l = 1; l < num_levels; ++l) {
      const double prev_sigma =
          options_.base_sigma * std::pow(kappa_, static_cast<double>(l - 1));
      const double next_sigma = prev_sigma * kappa_;
      // Incremental blur: sigma_inc^2 = next^2 - prev^2.
      const double inc =
          std::sqrt(next_sigma * next_sigma - prev_sigma * prev_sigma);
      oct.gaussians.push_back(
          Convolve(oct.gaussians.back(), MakeGaussianKernel(inc)));
      oct.sigmas.push_back(next_sigma);
    }
    for (std::size_t l = 0; l + 1 < oct.gaussians.size(); ++l) {
      std::vector<double> d(oct.gaussians[l].size());
      for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = oct.gaussians[l + 1][i] - oct.gaussians[l][i];
      }
      oct.dogs.push_back(std::move(d));
    }
    // The level with sigma = 2 * base_sigma (index s) seeds the next octave
    // after downsampling by two.
    const std::size_t seed_level = std::min(s, oct.gaussians.size() - 1);
    std::vector<double> next_base = Downsample2(oct.gaussians[seed_level]);
    octaves_.push_back(std::move(oct));
    base = std::move(next_base);
  }

  if (octaves_.empty()) {
    // Degenerate (very short) input: still provide a single octave so that
    // downstream code does not need special cases.
    Octave oct;
    oct.index = 0;
    oct.gaussians.push_back(base);
    oct.sigmas.push_back(options_.base_sigma);
    octaves_.push_back(std::move(oct));
  }
}

double ScaleSpace::AbsoluteSigma(std::size_t octave, std::size_t level) const {
  const double octave_factor =
      static_cast<double>(std::size_t{1} << octave);
  return options_.base_sigma *
         std::pow(kappa_, static_cast<double>(level)) * octave_factor;
}

}  // namespace signal
}  // namespace sdtw
