#include "signal/gaussian.h"

#include <algorithm>
#include <cmath>

namespace sdtw {
namespace signal {

GaussianKernel MakeGaussianKernel(double sigma) {
  GaussianKernel k;
  k.sigma = sigma;
  if (sigma <= 0.0) {
    k.taps = {1.0};
    return k;
  }
  const long radius = std::max(1L, static_cast<long>(std::ceil(3.0 * sigma)));
  k.taps.resize(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (long i = -radius; i <= radius; ++i) {
    const double x = static_cast<double>(i);
    const double v = std::exp(-(x * x) / (2.0 * sigma * sigma));
    k.taps[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (double& v : k.taps) v /= sum;
  return k;
}

std::vector<double> Convolve(const std::vector<double>& input,
                             const GaussianKernel& kernel) {
  const long n = static_cast<long>(input.size());
  if (n == 0) return {};
  const long radius = static_cast<long>(kernel.radius());
  std::vector<double> out(input.size(), 0.0);
  for (long i = 0; i < n; ++i) {
    double acc = 0.0;
    for (long t = -radius; t <= radius; ++t) {
      long idx = i + t;
      // Reflect around the boundary samples (…, 2, 1, 0 | 1, 2, …) as many
      // times as needed for kernels wider than the signal.
      while (idx < 0 || idx >= n) {
        if (idx < 0) idx = -idx;
        if (idx >= n) idx = 2 * (n - 1) - idx;
        if (n == 1) {
          idx = 0;
          break;
        }
      }
      acc += input[static_cast<std::size_t>(idx)] *
             kernel.taps[static_cast<std::size_t>(t + radius)];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

ts::TimeSeries GaussianSmooth(const ts::TimeSeries& input, double sigma) {
  ts::TimeSeries out(Convolve(input.values(), MakeGaussianKernel(sigma)));
  out.set_label(input.label());
  out.set_name(input.name());
  return out;
}

std::vector<double> Gradient(const std::vector<double>& input) {
  const std::size_t n = input.size();
  std::vector<double> g(n, 0.0);
  if (n < 2) return g;
  g[0] = input[1] - input[0];
  g[n - 1] = input[n - 1] - input[n - 2];
  for (std::size_t i = 1; i + 1 < n; ++i) {
    g[i] = 0.5 * (input[i + 1] - input[i - 1]);
  }
  return g;
}

std::vector<double> Downsample2(const std::vector<double>& input) {
  std::vector<double> out;
  out.reserve((input.size() + 1) / 2);
  for (std::size_t i = 0; i < input.size(); i += 2) out.push_back(input[i]);
  return out;
}

}  // namespace signal
}  // namespace sdtw
