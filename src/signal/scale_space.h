#ifndef SDTW_SIGNAL_SCALE_SPACE_H_
#define SDTW_SIGNAL_SCALE_SPACE_H_

/// \file scale_space.h
/// \brief Octave/level Gaussian scale-space and difference-of-Gaussian
/// pyramids for 1-D signals (paper §3.1.2, step 1).
///
/// The series is incrementally reduced into `o` octaves, each corresponding
/// to a doubling of the smoothing rate. Each octave is divided into `s`
/// levels built by repeated convolution with Gaussians of ratio
/// κ = 2^(1/s). Adjacent smoothed series are subtracted to obtain the
/// difference-of-Gaussian (DoG) series in which salient features are sought.

#include <cstddef>
#include <vector>

#include "ts/time_series.h"

namespace sdtw {
namespace signal {

/// \brief Configuration of the scale-space pyramid.
struct ScaleSpaceOptions {
  /// Number of octaves; 0 means "auto": max(1, floor(log2(N)) - 6) as used in
  /// the paper's experiments (§4.3).
  std::size_t num_octaves = 0;

  /// Levels per octave (the paper uses s = 2). κ = 2^(1/s).
  std::size_t levels_per_octave = 2;

  /// Base smoothing applied to the input before the first octave (SIFT's
  /// σ0; 1.6 is Lowe's default and works well for time series too).
  double base_sigma = 1.6;

  /// Assumed smoothing already present in the raw input.
  double input_sigma = 0.5;

  /// Octaves stop early when the series becomes shorter than this.
  std::size_t min_length = 8;
};

/// Resolves the "auto" octave count for a series of length n.
std::size_t AutoOctaves(std::size_t n);

/// \brief One octave of the pyramid: levels_per_octave + 3 Gaussian levels
/// and levels_per_octave + 2 DoG levels, all at the octave's resolution.
struct Octave {
  /// Index of this octave (0 = original resolution).
  std::size_t index = 0;
  /// Gaussian-smoothed series; gaussians[l] has sigma = sigmas[l] (relative
  /// to the octave's own sampling grid).
  std::vector<std::vector<double>> gaussians;
  /// Per-level sigma on the octave grid.
  std::vector<double> sigmas;
  /// dog[l] = gaussians[l+1] - gaussians[l].
  std::vector<std::vector<double>> dogs;

  std::size_t length() const {
    return gaussians.empty() ? 0 : gaussians[0].size();
  }
};

/// \brief The full scale-space pyramid of one series.
class ScaleSpace {
 public:
  /// Builds the pyramid for `input` under `options`.
  ScaleSpace(const ts::TimeSeries& input, const ScaleSpaceOptions& options);

  const std::vector<Octave>& octaves() const { return octaves_; }
  const ScaleSpaceOptions& options() const { return options_; }

  /// Multiplicative scale step κ = 2^(1/levels_per_octave).
  double kappa() const { return kappa_; }

  /// Absolute sigma (in original-resolution samples) of level `level` in
  /// octave `octave`.
  double AbsoluteSigma(std::size_t octave, std::size_t level) const;

  /// Maps a position on an octave's grid back to original resolution.
  double ToOriginalPosition(std::size_t octave, double pos) const {
    return pos * static_cast<double>(std::size_t{1} << octave);
  }

 private:
  ScaleSpaceOptions options_;
  double kappa_ = 0.0;
  std::vector<Octave> octaves_;
};

}  // namespace signal
}  // namespace sdtw

#endif  // SDTW_SIGNAL_SCALE_SPACE_H_
