#ifndef SDTW_TS_TIME_SERIES_H_
#define SDTW_TS_TIME_SERIES_H_

/// \file time_series.h
/// \brief Core time-series value container used throughout the sDTW library.
///
/// A TimeSeries is an immutable-length, mutable-value vector of doubles with
/// an optional class label and name. It is intentionally a thin wrapper over
/// std::vector<double>: the DTW kernels operate on raw spans for speed, while
/// higher-level code benefits from the labelled container.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace sdtw {
namespace ts {

/// \brief A univariate time series with an optional class label.
class TimeSeries {
 public:
  /// Creates an empty series.
  TimeSeries() = default;

  /// Creates a series from raw values.
  explicit TimeSeries(std::vector<double> values)
      : values_(std::move(values)) {}

  /// Creates a series from raw values with a class label.
  TimeSeries(std::vector<double> values, int label)
      : values_(std::move(values)), label_(label) {}

  /// Creates a series from an initializer list (mainly for tests).
  TimeSeries(std::initializer_list<double> values) : values_(values) {}

  /// Creates a zero-filled series of the given length.
  static TimeSeries Zeros(std::size_t n) {
    return TimeSeries(std::vector<double>(n, 0.0));
  }

  /// Creates a constant series of the given length.
  static TimeSeries Constant(std::size_t n, double value) {
    return TimeSeries(std::vector<double>(n, value));
  }

  /// Number of samples.
  std::size_t size() const { return values_.size(); }

  /// True when the series has no samples.
  bool empty() const { return values_.empty(); }

  /// Unchecked element access.
  double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }

  /// Bounds-checked element access.
  double at(std::size_t i) const { return values_.at(i); }

  /// First / last element (undefined on empty series).
  double front() const { return values_.front(); }
  double back() const { return values_.back(); }

  /// Raw value access.
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Read-only span over the samples.
  std::span<const double> span() const {
    return std::span<const double>(values_.data(), values_.size());
  }

  /// Iteration support.
  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }
  auto begin() { return values_.begin(); }
  auto end() { return values_.end(); }

  /// Class label (-1 when unlabelled).
  int label() const { return label_; }
  void set_label(int label) { label_ = label; }
  bool has_label() const { return label_ >= 0; }

  /// Optional human-readable name (e.g. "gun/17").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a sample (used by generators and loaders).
  void push_back(double v) { values_.push_back(v); }

  /// Extracts the sub-series [begin, begin+len).
  /// Clamps the range to the series; returns an empty series when begin is
  /// out of range.
  TimeSeries Slice(std::size_t begin, std::size_t len) const;

  /// Equality compares values and label, not the name.
  friend bool operator==(const TimeSeries& a, const TimeSeries& b) {
    return a.values_ == b.values_ && a.label_ == b.label_;
  }

 private:
  std::vector<double> values_;
  int label_ = -1;
  std::string name_;
};

/// \brief A labelled collection of time series (one UCR data set, say).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  /// Data set name (e.g. "GunLike").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  const TimeSeries& operator[](std::size_t i) const { return series_[i]; }
  TimeSeries& operator[](std::size_t i) { return series_[i]; }
  const TimeSeries& at(std::size_t i) const { return series_.at(i); }

  auto begin() const { return series_.begin(); }
  auto end() const { return series_.end(); }

  /// Adds a series to the collection.
  void Add(TimeSeries series) { series_.push_back(std::move(series)); }

  /// Distinct labels present, in ascending order.
  std::vector<int> Labels() const;

  /// Number of distinct labels.
  std::size_t NumClasses() const { return Labels().size(); }

  /// Indices of all series carrying the given label.
  std::vector<std::size_t> IndicesOfClass(int label) const;

  /// Length of the longest series in the collection.
  std::size_t MaxLength() const;

 private:
  std::string name_;
  std::vector<TimeSeries> series_;
};

}  // namespace ts
}  // namespace sdtw

#endif  // SDTW_TS_TIME_SERIES_H_
