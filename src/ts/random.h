#ifndef SDTW_TS_RANDOM_H_
#define SDTW_TS_RANDOM_H_

/// \file random.h
/// \brief Deterministic random utilities shared by generators and tests.

#include <cstdint>
#include <random>

namespace sdtw {
namespace ts {

/// \brief A small wrapper over std::mt19937_64 with convenience draws.
///
/// All data generation in the library routes through Rng so experiments are
/// reproducible from a single seed.
class Rng {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x5D7C0FFEEULL;

  explicit Rng(std::uint64_t seed = kDefaultSeed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled by sigma, centred at mu.
  double Gaussian(double mu = 0.0, double sigma = 1.0) {
    std::normal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw.
  bool Coin(double p = 0.5) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Underlying engine (for std::shuffle and distributions).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ts
}  // namespace sdtw

#endif  // SDTW_TS_RANDOM_H_
