#ifndef SDTW_TS_IO_H_
#define SDTW_TS_IO_H_

/// \file io.h
/// \brief Reading and writing time series in CSV and UCR classification
/// format.
///
/// The UCR archive format (used by the Gun, Trace and 50Words sets the paper
/// evaluates on) is one series per line: the first field is the integer class
/// label, the remaining fields the samples, separated by commas or
/// whitespace.

#include <iosfwd>
#include <optional>
#include <string>

#include "ts/time_series.h"

namespace sdtw {
namespace ts {

/// Parses one UCR-format line ("label v1 v2 ..."). Returns std::nullopt on
/// blank lines or lines with no samples.
std::optional<TimeSeries> ParseUcrLine(const std::string& line);

/// Reads a whole UCR-format stream.
Dataset ReadUcr(std::istream& in, const std::string& name = "");

/// Reads a UCR-format file; returns std::nullopt when the file cannot be
/// opened.
std::optional<Dataset> ReadUcrFile(const std::string& path);

/// Writes a data set in UCR format (label, then samples, comma-separated).
void WriteUcr(std::ostream& out, const Dataset& dataset);

/// Writes a single series as one CSV row of samples (no label).
void WriteCsvRow(std::ostream& out, const TimeSeries& series);

}  // namespace ts
}  // namespace sdtw

#endif  // SDTW_TS_IO_H_
