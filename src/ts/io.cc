#include "ts/io.h"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace sdtw {
namespace ts {

namespace {

// Splits a line on commas and/or whitespace into double tokens.
// Returns false on any unparsable token.
bool Tokenize(const std::string& line, std::vector<double>* out) {
  out->clear();
  std::string normalized = line;
  for (char& c : normalized) {
    if (c == ',' || c == '\t' || c == '\r') c = ' ';
  }
  std::istringstream iss(normalized);
  std::string tok;
  while (iss >> tok) {
    try {
      std::size_t pos = 0;
      const double v = std::stod(tok, &pos);
      if (pos != tok.size()) return false;
      out->push_back(v);
    } catch (...) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<TimeSeries> ParseUcrLine(const std::string& line) {
  std::vector<double> fields;
  if (!Tokenize(line, &fields)) return std::nullopt;
  if (fields.size() < 2) return std::nullopt;
  const int label = static_cast<int>(std::lround(fields[0]));
  std::vector<double> values(fields.begin() + 1, fields.end());
  return TimeSeries(std::move(values), label);
}

Dataset ReadUcr(std::istream& in, const std::string& name) {
  Dataset ds(name);
  std::string line;
  std::size_t index = 0;
  while (std::getline(in, line)) {
    std::optional<TimeSeries> s = ParseUcrLine(line);
    if (!s.has_value()) continue;
    s->set_name(name + "/" + std::to_string(index++));
    ds.Add(std::move(*s));
  }
  return ds;
}

std::optional<Dataset> ReadUcrFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  // Use the file stem as the data set name.
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return ReadUcr(in, name);
}

void WriteUcr(std::ostream& out, const Dataset& dataset) {
  for (const TimeSeries& s : dataset) {
    out << s.label();
    for (double v : s) out << ',' << v;
    out << '\n';
  }
}

void WriteCsvRow(std::ostream& out, const TimeSeries& series) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) out << ',';
    out << series[i];
  }
  out << '\n';
}

}  // namespace ts
}  // namespace sdtw
