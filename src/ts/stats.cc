#include "ts/stats.h"

#include <cmath>
#include <limits>

namespace sdtw {
namespace ts {

Summary Summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  return Summarize(values).stddev;
}

double MeanAbs(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += std::abs(v);
  return sum / static_cast<double>(values.size());
}

double Correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq);
}

}  // namespace ts
}  // namespace sdtw
