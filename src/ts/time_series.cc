#include "ts/time_series.h"

#include <algorithm>
#include <set>

namespace sdtw {
namespace ts {

TimeSeries TimeSeries::Slice(std::size_t begin, std::size_t len) const {
  if (begin >= values_.size()) return TimeSeries();
  const std::size_t end = std::min(values_.size(), begin + len);
  TimeSeries out(std::vector<double>(values_.begin() + static_cast<long>(begin),
                                     values_.begin() + static_cast<long>(end)));
  out.set_label(label_);
  return out;
}

std::vector<int> Dataset::Labels() const {
  std::set<int> labels;
  for (const TimeSeries& s : series_) {
    if (s.has_label()) labels.insert(s.label());
  }
  return std::vector<int>(labels.begin(), labels.end());
}

std::vector<std::size_t> Dataset::IndicesOfClass(int label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].label() == label) out.push_back(i);
  }
  return out;
}

std::size_t Dataset::MaxLength() const {
  std::size_t m = 0;
  for (const TimeSeries& s : series_) m = std::max(m, s.size());
  return m;
}

}  // namespace ts
}  // namespace sdtw
