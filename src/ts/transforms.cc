#include "ts/transforms.h"

#include <algorithm>
#include <cmath>

#include "ts/stats.h"

namespace sdtw {
namespace ts {

namespace {

// Linear interpolation of s at fractional position t, clamped to range.
double Lerp(const TimeSeries& s, double t) {
  if (s.empty()) return 0.0;
  const double maxi = static_cast<double>(s.size() - 1);
  t = std::clamp(t, 0.0, maxi);
  const std::size_t i0 = static_cast<std::size_t>(std::floor(t));
  const std::size_t i1 = std::min(i0 + 1, s.size() - 1);
  const double frac = t - static_cast<double>(i0);
  return s[i0] * (1.0 - frac) + s[i1] * frac;
}

TimeSeries WithMeta(const TimeSeries& src, std::vector<double> values) {
  TimeSeries out(std::move(values));
  out.set_label(src.label());
  out.set_name(src.name());
  return out;
}

}  // namespace

TimeSeries ZNormalize(const TimeSeries& s, double eps) {
  const Summary sum = Summarize(s);
  std::vector<double> v(s.size());
  const double denom = sum.stddev > eps ? sum.stddev : 1.0;
  for (std::size_t i = 0; i < s.size(); ++i) v[i] = (s[i] - sum.mean) / denom;
  return WithMeta(s, std::move(v));
}

TimeSeries MinMaxScale(const TimeSeries& s, double lo, double hi) {
  const Summary sum = Summarize(s);
  std::vector<double> v(s.size());
  const double range = sum.max - sum.min;
  for (std::size_t i = 0; i < s.size(); ++i) {
    v[i] = range > 0.0 ? lo + (hi - lo) * (s[i] - sum.min) / range : lo;
  }
  return WithMeta(s, std::move(v));
}

TimeSeries Shift(const TimeSeries& s, double offset) {
  std::vector<double> v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) v[i] = s[i] + offset;
  return WithMeta(s, std::move(v));
}

TimeSeries Scale(const TimeSeries& s, double gain) {
  std::vector<double> v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) v[i] = s[i] * gain;
  return WithMeta(s, std::move(v));
}

TimeSeries Resample(const TimeSeries& s, std::size_t new_len) {
  if (new_len == 0 || s.empty()) return WithMeta(s, {});
  std::vector<double> v(new_len);
  if (new_len == 1) {
    v[0] = s[0];
  } else {
    const double step =
        static_cast<double>(s.size() - 1) / static_cast<double>(new_len - 1);
    for (std::size_t i = 0; i < new_len; ++i) {
      v[i] = Lerp(s, static_cast<double>(i) * step);
    }
  }
  return WithMeta(s, std::move(v));
}

TimeSeries Paa(const TimeSeries& s, std::size_t segments) {
  if (segments == 0 || s.empty()) return WithMeta(s, {});
  if (segments >= s.size()) return s;
  std::vector<double> v(segments, 0.0);
  const double n = static_cast<double>(s.size());
  for (std::size_t k = 0; k < segments; ++k) {
    const std::size_t begin = static_cast<std::size_t>(
        std::floor(static_cast<double>(k) * n / static_cast<double>(segments)));
    std::size_t end = static_cast<std::size_t>(std::floor(
        static_cast<double>(k + 1) * n / static_cast<double>(segments)));
    end = std::max(end, begin + 1);
    double sum = 0.0;
    for (std::size_t i = begin; i < end && i < s.size(); ++i) sum += s[i];
    v[k] = sum / static_cast<double>(end - begin);
  }
  return WithMeta(s, std::move(v));
}

TimeSeries WarpTime(const TimeSeries& s, std::size_t out_len,
                    const std::function<double(double)>& warp) {
  std::vector<double> v(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    v[i] = Lerp(s, warp(static_cast<double>(i)));
  }
  return WithMeta(s, std::move(v));
}

TimeSeries Diff(const TimeSeries& s) {
  std::vector<double> v;
  if (s.size() > 1) {
    v.resize(s.size() - 1);
    for (std::size_t i = 0; i + 1 < s.size(); ++i) v[i] = s[i + 1] - s[i];
  }
  return WithMeta(s, std::move(v));
}

TimeSeries MovingAverage(const TimeSeries& s, std::size_t r) {
  if (s.empty() || r == 0) return s;
  const long n = static_cast<long>(s.size());
  std::vector<double> v(s.size());
  for (long i = 0; i < n; ++i) {
    double sum = 0.0;
    long count = 0;
    for (long k = i - static_cast<long>(r); k <= i + static_cast<long>(r);
         ++k) {
      // Reflective boundary: mirror indices that fall off either end.
      long idx = k;
      if (idx < 0) idx = -idx;
      if (idx >= n) idx = 2 * (n - 1) - idx;
      idx = std::clamp(idx, 0L, n - 1);
      sum += s[static_cast<std::size_t>(idx)];
      ++count;
    }
    v[static_cast<std::size_t>(i)] = sum / static_cast<double>(count);
  }
  return WithMeta(s, std::move(v));
}

TimeSeries Reverse(const TimeSeries& s) {
  std::vector<double> v(s.begin(), s.end());
  std::reverse(v.begin(), v.end());
  return WithMeta(s, std::move(v));
}

TimeSeries Concat(const TimeSeries& a, const TimeSeries& b) {
  std::vector<double> v;
  v.reserve(a.size() + b.size());
  v.insert(v.end(), a.begin(), a.end());
  v.insert(v.end(), b.begin(), b.end());
  return WithMeta(a, std::move(v));
}

}  // namespace ts
}  // namespace sdtw
