#ifndef SDTW_TS_STATS_H_
#define SDTW_TS_STATS_H_

/// \file stats.h
/// \brief Descriptive statistics over time series.

#include <cstddef>
#include <span>

#include "ts/time_series.h"

namespace sdtw {
namespace ts {

/// \brief Summary statistics of a sample window.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  std::size_t count = 0;
};

/// Computes min/max/mean/stddev over a span in one pass.
/// Returns a zero Summary for an empty span.
Summary Summarize(std::span<const double> values);

/// Convenience overload.
inline Summary Summarize(const TimeSeries& s) { return Summarize(s.span()); }

/// Arithmetic mean (0 for empty input).
double Mean(std::span<const double> values);

/// Population standard deviation (0 for empty input).
double StdDev(std::span<const double> values);

/// Mean of |values| (0 for empty input). Used as the "overall amplitude" of
/// a salient feature scope in the inconsistency-pruning similarity score.
double MeanAbs(std::span<const double> values);

/// Pearson correlation of two equal-length spans; 0 when either side has
/// zero variance or the spans are empty / mismatched.
double Correlation(std::span<const double> a, std::span<const double> b);

/// Euclidean (L2) distance between equal-length spans.
/// Returns +infinity when lengths differ.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

}  // namespace ts
}  // namespace sdtw

#endif  // SDTW_TS_STATS_H_
