#ifndef SDTW_TS_TRANSFORMS_H_
#define SDTW_TS_TRANSFORMS_H_

/// \file transforms.h
/// \brief Value- and time-domain transforms over time series.
///
/// These cover the pre-processing steps used in the experiments (z-score
/// normalisation, as is standard for the UCR sets) and the deformations the
/// paper's model assumes (temporal shifts and stretches that preserve the
/// order of temporal features).

#include <cstddef>
#include <functional>
#include <vector>

#include "ts/time_series.h"

namespace sdtw {
namespace ts {

/// Z-normalises the series (zero mean, unit variance). Series with
/// (near-)zero variance are centred only.
TimeSeries ZNormalize(const TimeSeries& s, double eps = 1e-12);

/// Min-max rescales into [lo, hi]. Constant series map to lo.
TimeSeries MinMaxScale(const TimeSeries& s, double lo = 0.0, double hi = 1.0);

/// Adds a constant offset to every sample.
TimeSeries Shift(const TimeSeries& s, double offset);

/// Multiplies every sample by a constant gain.
TimeSeries Scale(const TimeSeries& s, double gain);

/// Linear-interpolation resampling to a new length (new_len >= 1).
/// A single-sample series resamples to a constant series.
TimeSeries Resample(const TimeSeries& s, std::size_t new_len);

/// Piecewise aggregate approximation: reduces the series to `segments`
/// averages. segments must be >= 1; when segments >= size the series is
/// returned unchanged.
TimeSeries Paa(const TimeSeries& s, std::size_t segments);

/// Applies a monotone warp map to the time axis: out[i] = s(warp(i)), where
/// warp maps [0, out_len) into [0, s.size()-1] and is sampled with linear
/// interpolation. Used by the deformation model to create order-preserving
/// stretches (the transformation class the paper assumes; see §3.2.2).
TimeSeries WarpTime(const TimeSeries& s, std::size_t out_len,
                    const std::function<double(double)>& warp);

/// First differences: out[i] = s[i+1] - s[i] (length n-1).
TimeSeries Diff(const TimeSeries& s);

/// Simple centred moving average with window half-width r (reflective
/// boundary handling).
TimeSeries MovingAverage(const TimeSeries& s, std::size_t r);

/// Reverses the series in time.
TimeSeries Reverse(const TimeSeries& s);

/// Concatenates two series (label taken from `a`).
TimeSeries Concat(const TimeSeries& a, const TimeSeries& b);

}  // namespace ts
}  // namespace sdtw

#endif  // SDTW_TS_TRANSFORMS_H_
