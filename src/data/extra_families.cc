#include "data/extra_families.h"

#include <algorithm>
#include <cmath>

#include "ts/transforms.h"

namespace sdtw {
namespace data {

namespace {

void Defaults(GeneratorOptions* o, std::size_t length,
              std::size_t num_series) {
  if (o->length == 0) o->length = length;
  if (o->num_series == 0) o->num_series = num_series;
}

ts::TimeSeries Finish(ts::TimeSeries s, bool z_normalize, int label,
                      const std::string& name) {
  s.set_label(label);
  s.set_name(name);
  return z_normalize ? ts::ZNormalize(s) : s;
}

}  // namespace

ts::Dataset MakeCbf(GeneratorOptions options) {
  Defaults(&options, 128, 90);
  ts::Rng rng(options.seed);
  ts::Dataset ds("CBF");
  const std::size_t n = options.length;
  const double fn = static_cast<double>(n);

  for (std::size_t idx = 0; idx < options.num_series; ++idx) {
    const int label = static_cast<int>(idx % 3);
    const double a = rng.Uniform(fn * 0.1, fn * 0.35);
    const double b = rng.Uniform(fn * 0.55, fn * 0.9);
    const double amp = 6.0 + rng.Gaussian(0.0, 1.0);
    std::vector<double> v(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i);
      if (t < a || t > b) continue;
      const double frac = (t - a) / std::max(b - a, 1.0);
      double shape = 1.0;                       // cylinder
      if (label == 1) shape = frac;             // bell: rises over [a,b]
      if (label == 2) shape = 1.0 - frac;       // funnel: falls over [a,b]
      v[i] = amp * shape;
    }
    for (double& x : v) x += rng.Gaussian(0.0, options.deform.noise_sigma +
                                                   1.0);
    ds.Add(Finish(ts::TimeSeries(std::move(v)), options.z_normalize, label,
                  "cbf/" + std::to_string(idx)));
  }
  return ds;
}

ts::Dataset MakeTwoPatterns(GeneratorOptions options) {
  Defaults(&options, 128, 100);
  ts::Rng rng(options.seed);
  ts::Dataset ds("TwoPatterns");
  const std::size_t n = options.length;
  const double fn = static_cast<double>(n);

  // A transient: sharp step up then back down (up) or its mirror (down),
  // lasting `width` samples.
  auto add_transient = [&](std::vector<double>* v, double onset, double width,
                           bool up) {
    const double sign = up ? 1.0 : -1.0;
    for (std::size_t i = 0; i < v->size(); ++i) {
      const double t = static_cast<double>(i);
      if (t >= onset && t < onset + width) (*v)[i] += sign * 5.0;
    }
  };

  for (std::size_t idx = 0; idx < options.num_series; ++idx) {
    const int label = static_cast<int>(idx % 4);
    const bool first_up = (label & 1) != 0;
    const bool second_up = (label & 2) != 0;
    const double width = fn * 0.08;
    const double onset1 = rng.Uniform(fn * 0.05, fn * 0.35);
    const double onset2 = rng.Uniform(fn * 0.55, fn * 0.85);
    std::vector<double> v(n, 0.0);
    add_transient(&v, onset1, width, first_up);
    add_transient(&v, onset2, width, second_up);
    for (double& x : v) {
      x += rng.Gaussian(0.0, 0.1 + options.deform.noise_sigma);
    }
    ds.Add(Finish(ts::TimeSeries(std::move(v)), options.z_normalize, label,
                  "twopatterns/" + std::to_string(idx)));
  }
  return ds;
}

}  // namespace data
}  // namespace sdtw
