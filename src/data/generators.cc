#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "ts/transforms.h"

namespace sdtw {
namespace data {

namespace patterns {

ts::TimeSeries Step(std::size_t length, double center, double width) {
  std::vector<double> v(length);
  const double k = width > 1e-9 ? 4.0 / width : 4e9;
  for (std::size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i) - center;
    v[i] = 1.0 / (1.0 + std::exp(-k * x));
  }
  return ts::TimeSeries(std::move(v));
}

ts::TimeSeries Ramp(std::size_t length, double begin, double end) {
  std::vector<double> v(length);
  const double span = std::max(end - begin, 1e-9);
  for (std::size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i);
    v[i] = std::clamp((x - begin) / span, 0.0, 1.0);
  }
  return ts::TimeSeries(std::move(v));
}

ts::TimeSeries Bump(std::size_t length, double center, double width,
                    double height) {
  std::vector<double> v(length);
  const double s2 = 2.0 * width * width;
  for (std::size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i) - center;
    v[i] = height * std::exp(-(x * x) / s2);
  }
  return ts::TimeSeries(std::move(v));
}

ts::TimeSeries Burst(std::size_t length, double onset, double period,
                     double decay, double height) {
  std::vector<double> v(length, 0.0);
  const double omega = 2.0 * std::numbers::pi / std::max(period, 1e-9);
  for (std::size_t i = 0; i < length; ++i) {
    const double t = static_cast<double>(i) - onset;
    if (t < 0.0) continue;
    v[i] = height * std::exp(-t / std::max(decay, 1e-9)) *
           std::sin(omega * t);
  }
  return ts::TimeSeries(std::move(v));
}

ts::TimeSeries RandomSmooth(std::size_t length, std::size_t k, ts::Rng& rng,
                            double min_width_fraction,
                            double max_width_fraction) {
  std::vector<double> v(length, 0.0);
  for (std::size_t b = 0; b < k; ++b) {
    const double center = rng.Uniform(0.0, static_cast<double>(length));
    const double width =
        rng.Uniform(static_cast<double>(length) * min_width_fraction,
                    static_cast<double>(length) * max_width_fraction);
    const double height = rng.Uniform(-1.0, 1.0);
    const double s2 = 2.0 * width * width;
    for (std::size_t i = 0; i < length; ++i) {
      const double x = static_cast<double>(i) - center;
      v[i] += height * std::exp(-(x * x) / s2);
    }
  }
  return ts::TimeSeries(std::move(v));
}

}  // namespace patterns

ts::TimeSeries Deform(const ts::TimeSeries& prototype,
                      const DeformationOptions& options, ts::Rng& rng) {
  const std::size_t n = prototype.size();
  if (n < 2) return prototype;

  // Smooth, strictly monotone random warp built from piecewise-linear
  // speed control points (order-preserving, per the paper's assumption).
  const std::size_t knots = std::max<std::size_t>(2, options.warp_knots);
  std::vector<double> speeds(knots);
  for (double& s : speeds) {
    s = 1.0 + rng.Uniform(-options.warp_strength, options.warp_strength);
    s = std::max(s, 0.05);
  }
  const double shift =
      rng.Uniform(-options.shift_fraction, options.shift_fraction) *
      static_cast<double>(n);

  // Integrate the (interpolated) speed profile, then rescale so the warp
  // maps [0, n-1] onto [0, n-1] and apply the shift.
  std::vector<double> warp(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    const double pos = static_cast<double>(i - 1) /
                       static_cast<double>(n - 1) *
                       static_cast<double>(knots - 1);
    const std::size_t k0 = std::min(static_cast<std::size_t>(pos), knots - 2);
    const double frac = pos - static_cast<double>(k0);
    const double speed = speeds[k0] * (1.0 - frac) + speeds[k0 + 1] * frac;
    warp[i] = warp[i - 1] + speed;
  }
  const double total = warp.back();
  for (double& w : warp) {
    w = w / total * static_cast<double>(n - 1) + shift;
  }

  ts::TimeSeries warped = ts::WarpTime(
      prototype, n, [&warp](double i) {
        const std::size_t idx =
            std::min(static_cast<std::size_t>(std::max(i, 0.0)),
                     warp.size() - 1);
        return warp[idx];
      });

  const double gain =
      1.0 + rng.Uniform(-options.amplitude_jitter, options.amplitude_jitter);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = warped[i] * gain + rng.Gaussian(0.0, options.noise_sigma);
  }
  ts::TimeSeries result(std::move(out));
  result.set_label(prototype.label());
  return result;
}

namespace {

void Defaults(GeneratorOptions* o, std::size_t length,
              std::size_t num_series) {
  if (o->length == 0) o->length = length;
  if (o->num_series == 0) o->num_series = num_series;
}

ts::TimeSeries Finish(ts::TimeSeries s, bool z_normalize, int label,
                      const std::string& name) {
  s.set_label(label);
  s.set_name(name);
  return z_normalize ? ts::ZNormalize(s) : s;
}

}  // namespace

ts::Dataset MakeGunLike(GeneratorOptions options) {
  Defaults(&options, 150, 50);
  ts::Rng rng(options.seed);
  ts::Dataset ds("GunLike");
  const std::size_t n = options.length;
  const double fn = static_cast<double>(n);

  for (std::size_t idx = 0; idx < options.num_series; ++idx) {
    const int label = static_cast<int>(idx % 2);
    // Rise–plateau–fall motion: hand lifts (sigmoid up), holds, returns.
    // Broad edges make the Gun profile rich in large-scale (rough) features
    // (Table 2: the Gun set has by far the most of them).
    const double rise_at = fn * 0.22;
    const double fall_at = fn * 0.72;
    const double edge = fn * 0.10;
    ts::TimeSeries up = patterns::Step(n, rise_at, edge);
    ts::TimeSeries down = patterns::Step(n, fall_at, edge);
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = up[i] - down[i];
    if (label == 1) {
      // Class 2: characteristic overshoot dip after the drop (the "gun
      // re-holstering" artefact) plus a slight plateau tilt.
      ts::TimeSeries dip = patterns::Bump(n, fall_at + fn * 0.08, fn * 0.025,
                                          -0.35);
      for (std::size_t i = 0; i < n; ++i) {
        v[i] += dip[i] + 0.1 * (static_cast<double>(i) / fn);
      }
    }
    ts::TimeSeries proto(std::move(v));
    proto.set_label(label);
    ts::TimeSeries inst = Deform(proto, options.deform, rng);
    ds.Add(Finish(std::move(inst), options.z_normalize, label,
                  "gunlike/" + std::to_string(idx)));
  }
  return ds;
}

ts::Dataset MakeTraceLike(GeneratorOptions options) {
  Defaults(&options, 275, 100);
  // Larger shifts: the Trace transients occur at widely varying onsets.
  options.deform.shift_fraction = std::max(options.deform.shift_fraction,
                                           0.12);
  ts::Rng rng(options.seed);
  ts::Dataset ds("TraceLike");
  const std::size_t n = options.length;
  const double fn = static_cast<double>(n);

  for (std::size_t idx = 0; idx < options.num_series; ++idx) {
    const int label = static_cast<int>(idx % 4);
    const double onset = fn * rng.Uniform(0.35, 0.55);
    std::vector<double> v(n, 0.0);
    const bool is_step = (label % 2) == 0;   // classes 0,2: step; 1,3: ramp.
    const bool has_burst = label >= 2;       // classes 2,3 add oscillation.
    if (is_step) {
      ts::TimeSeries st = patterns::Step(n, onset, fn * 0.02);
      for (std::size_t i = 0; i < n; ++i) v[i] += st[i];
    } else {
      ts::TimeSeries rp = patterns::Ramp(n, onset, onset + fn * 0.25);
      for (std::size_t i = 0; i < n; ++i) v[i] += rp[i];
    }
    if (has_burst) {
      ts::TimeSeries b = patterns::Burst(n, onset, fn * 0.05, fn * 0.12, 0.5);
      for (std::size_t i = 0; i < n; ++i) v[i] += b[i];
    }
    ts::TimeSeries proto(std::move(v));
    proto.set_label(label);
    ts::TimeSeries inst = Deform(proto, options.deform, rng);
    ds.Add(Finish(std::move(inst), options.z_normalize, label,
                  "tracelike/" + std::to_string(idx)));
  }
  return ds;
}

ts::Dataset MakeWordsLike(GeneratorOptions options) {
  Defaults(&options, 270, 450);
  // Minor deformations around the diagonal, no major shift (paper §4.4's
  // characterisation of 50Words).
  options.deform.shift_fraction = std::min(options.deform.shift_fraction,
                                           0.01);
  options.deform.warp_strength = std::min(options.deform.warp_strength, 0.12);
  ts::Rng rng(options.seed);
  ts::Dataset ds("WordsLike");
  const std::size_t n = options.length;
  constexpr std::size_t kClasses = 50;

  // One random smooth prototype per class. Narrow bumps (0.8%..3% of the
  // length) plus a high-pass (subtracting a broad moving average strips the
  // slow envelope that overlapping bumps would otherwise form) give many
  // fine features but very few large ones — the 50Words profile of
  // Table 2 / Figure 12(c).
  std::vector<ts::TimeSeries> protos;
  protos.reserve(kClasses);
  const std::size_t envelope_radius = std::max<std::size_t>(4, n / 18);
  for (std::size_t c = 0; c < kClasses; ++c) {
    ts::TimeSeries p = patterns::RandomSmooth(n, 16, rng, 0.008, 0.03);
    const ts::TimeSeries envelope = ts::MovingAverage(p, envelope_radius);
    for (std::size_t i = 0; i < n; ++i) p[i] -= envelope[i];
    p.set_label(static_cast<int>(c));
    protos.push_back(std::move(p));
  }
  for (std::size_t idx = 0; idx < options.num_series; ++idx) {
    const int label = static_cast<int>(idx % kClasses);
    ts::TimeSeries inst =
        Deform(protos[static_cast<std::size_t>(label)], options.deform, rng);
    ds.Add(Finish(std::move(inst), options.z_normalize, label,
                  "wordslike/" + std::to_string(idx)));
  }
  return ds;
}

ts::Dataset MakeByName(const std::string& name, GeneratorOptions options) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "trace" || lower == "tracelike") return MakeTraceLike(options);
  if (lower == "50words" || lower == "words" || lower == "wordslike") {
    return MakeWordsLike(options);
  }
  return MakeGunLike(options);
}

std::vector<ts::Dataset> MakePaperDatasets(std::uint64_t seed) {
  GeneratorOptions o;
  o.seed = seed;
  std::vector<ts::Dataset> sets;
  sets.push_back(MakeGunLike(o));
  o.seed = seed + 1;
  sets.push_back(MakeTraceLike(o));
  o.seed = seed + 2;
  sets.push_back(MakeWordsLike(o));
  return sets;
}

}  // namespace data
}  // namespace sdtw
