#ifndef SDTW_DATA_GENERATORS_H_
#define SDTW_DATA_GENERATORS_H_

/// \file generators.h
/// \brief Synthetic data sets approximating the UCR sets of the paper's
/// experiments (Table 1: Gun 150/50/2, Trace 275/100/4, 50Words 270/450/50).
///
/// The real UCR archive is not redistributable with this repository, so the
/// generators below synthesise sets with the same cardinalities and the same
/// *structural profiles* the paper's analysis depends on (see DESIGN.md §4):
///
///  * GunLike — two motion classes built from a rise–plateau–fall prototype;
///    class 2 adds a characteristic overshoot dip. Few, large-scale
///    features; moderate temporal shifts.
///  * TraceLike — four transient classes (step vs. ramp × with/without an
///    oscillation burst) with large random temporal shifts: the regime where
///    fixed-core bands fail badly.
///  * WordsLike — 50 random smooth prototypes with many fine features, only
///    minor deformation around the diagonal and no major shift.
///
/// A UCR-format loader (ts/io.h) lets benches run on the real sets when a
/// local copy exists.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "ts/random.h"
#include "ts/time_series.h"

namespace sdtw {
namespace data {

/// \brief The deformation model applied to every generated instance: a
/// smooth order-preserving random time warp (the paper's assumed
/// transformation class), amplitude jitter, and additive Gaussian noise.
struct DeformationOptions {
  /// Maximum fractional local time dilation of the smooth random warp
  /// (0.25 = local speed varies by up to ±25%).
  double warp_strength = 0.25;

  /// Maximum global shift as a fraction of the series length.
  double shift_fraction = 0.05;

  /// Multiplicative amplitude jitter range (gain drawn uniformly in
  /// [1-a, 1+a]).
  double amplitude_jitter = 0.05;

  /// Standard deviation of i.i.d. Gaussian observation noise.
  double noise_sigma = 0.02;

  /// Number of random warp control points (more = wigglier warp).
  std::size_t warp_knots = 4;
};

/// Applies the deformation model to a prototype (output length = input
/// length). Deterministic given `rng` state.
ts::TimeSeries Deform(const ts::TimeSeries& prototype,
                      const DeformationOptions& options, ts::Rng& rng);

/// \brief Common generator parameters.
struct GeneratorOptions {
  std::size_t length = 0;       ///< Series length (0 = data set default).
  std::size_t num_series = 0;   ///< Total series count (0 = default).
  std::uint64_t seed = ts::Rng::kDefaultSeed;
  DeformationOptions deform;
  /// Z-normalise each generated series (UCR convention).
  bool z_normalize = true;
};

/// GunLike: length 150, 50 series, 2 classes by default.
ts::Dataset MakeGunLike(GeneratorOptions options = {});

/// TraceLike: length 275, 100 series, 4 classes by default.
ts::Dataset MakeTraceLike(GeneratorOptions options = {});

/// WordsLike: length 270, 450 series, 50 classes by default.
ts::Dataset MakeWordsLike(GeneratorOptions options = {});

/// Builds one of the three sets by name ("gun", "trace", "50words");
/// falls back to gun for unknown names.
ts::Dataset MakeByName(const std::string& name, GeneratorOptions options = {});

/// The three paper data sets with default options and the given seed.
std::vector<ts::Dataset> MakePaperDatasets(
    std::uint64_t seed = ts::Rng::kDefaultSeed);

/// \brief Primitive pattern vocabulary used by the generators; exposed for
/// tests and for building custom data sets.
namespace patterns {

/// Smooth sigmoid step from 0 to 1 centred at `center` with rise time
/// `width` (in samples), sampled over [0, length).
ts::TimeSeries Step(std::size_t length, double center, double width);

/// Linear ramp from 0 to 1 between `begin` and `end` (flat outside).
ts::TimeSeries Ramp(std::size_t length, double begin, double end);

/// Gaussian bump of the given centre/width/height.
ts::TimeSeries Bump(std::size_t length, double center, double width,
                    double height = 1.0);

/// Damped oscillation burst: sin with exponentially decaying envelope,
/// starting at `onset` with the given period (samples) and decay constant.
ts::TimeSeries Burst(std::size_t length, double onset, double period,
                     double decay, double height = 1.0);

/// Sum of `k` random Gaussian bumps (the WordsLike prototype family).
/// Bump widths are drawn uniformly from
/// [min_width_fraction, max_width_fraction] × length; the defaults give a
/// mixed fine/medium profile.
ts::TimeSeries RandomSmooth(std::size_t length, std::size_t k, ts::Rng& rng,
                            double min_width_fraction = 0.01,
                            double max_width_fraction = 0.08);

}  // namespace patterns

}  // namespace data
}  // namespace sdtw

#endif  // SDTW_DATA_GENERATORS_H_
