#ifndef SDTW_DATA_EXTRA_FAMILIES_H_
#define SDTW_DATA_EXTRA_FAMILIES_H_

/// \file extra_families.h
/// \brief Additional classic synthetic time-series families (CBF,
/// TwoPatterns) used by the extension benches and as extra stress tests for
/// the sDTW pipeline. Both are standard in the DTW evaluation literature
/// and complement the paper's three sets with different structural
/// profiles: CBF has a single dominant macro-feature per class,
/// TwoPatterns has ordered combinations of two transient shapes.

#include "data/generators.h"
#include "ts/time_series.h"

namespace sdtw {
namespace data {

/// Cylinder-Bell-Funnel: 3 classes. Each instance has one active region
/// [a, b] (random) holding either a plateau (cylinder), a rising ramp
/// (bell) or a falling ramp (funnel), plus Gaussian noise.
/// Defaults: length 128, 90 series (30 per class).
ts::Dataset MakeCbf(GeneratorOptions options = {});

/// TwoPatterns: 4 classes formed by the ordered combination of two
/// transient shapes (up-up, up-down, down-up, down-down) at random
/// non-overlapping positions. Defaults: length 128, 100 series.
ts::Dataset MakeTwoPatterns(GeneratorOptions options = {});

}  // namespace data
}  // namespace sdtw

#endif  // SDTW_DATA_EXTRA_FAMILIES_H_
