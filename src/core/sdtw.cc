#include "core/sdtw.h"

#include <chrono>

namespace sdtw {
namespace core {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

}  // namespace

Sdtw::Sdtw(SdtwOptions options) : options_(std::move(options)) {}

std::vector<sift::Keypoint> Sdtw::ExtractFeatures(
    const ts::TimeSeries& series) const {
  sift::SalientExtractor extractor(options_.extractor);
  return extractor.Extract(series);
}

namespace {

// One directed run of the alignment pipeline: matching, inconsistency
// pruning, interval extraction, band construction. The symmetric flag is
// stripped — symmetrisation happens at the Sdtw level by running the
// pipeline in both directions (matching itself is directional, §3.3.3).
struct DirectedAlignment {
  std::vector<align::AlignedPair> alignments;
  std::vector<align::IntervalPair> intervals;
  dtw::Band band;
};

DirectedAlignment RunDirected(const ts::TimeSeries& x,
                              const std::vector<sift::Keypoint>& features_x,
                              const ts::TimeSeries& y,
                              const std::vector<sift::Keypoint>& features_y,
                              const SdtwOptions& options) {
  DirectedAlignment out;
  if (options.constraint.type == ConstraintType::kFixedCoreFixedWidth) {
    // Pure Sakoe-Chiba: no salient-feature evidence is consumed, so skip
    // matching entirely (the paper's fc,fw baseline has no matching
    // overhead, §4.4 / Figure 17). The interval partition degenerates to
    // the single full-range interval.
    out.intervals = align::BuildIntervals(x.size(), y.size(), {});
    out.band = dtw::SakoeChibaBand(x.size(), y.size(),
                                   options.constraint.fixed_width_fraction);
    return out;
  }
  const std::vector<align::MatchPair> pairs = align::FindDominantPairs(
      features_x, features_y, options.matching, x.size(), y.size());
  out.alignments = align::PruneInconsistent(x, y, features_x, features_y,
                                            pairs, options.consistency);
  out.intervals = align::BuildIntervals(x.size(), y.size(), out.alignments);
  ConstraintOptions directed = options.constraint;
  directed.symmetric = false;
  out.band =
      BuildConstraintBand(x.size(), y.size(), out.intervals, directed);
  return out;
}

// Unions the X-driven band with the transpose of the Y-driven band
// (paper §3.3.3: "a combined band, including grid-cell positions required
// by both series X and Y").
dtw::Band Symmetrize(const dtw::Band& xy_band, const dtw::Band& yx_band) {
  dtw::Band combined = xy_band;
  dtw::Band transposed = yx_band.Transpose();
  transposed.MakeFeasible();
  combined.UnionWith(transposed);
  combined.MakeFeasible();
  return combined;
}

}  // namespace

dtw::Band Sdtw::BuildBand(
    const ts::TimeSeries& x, const std::vector<sift::Keypoint>& features_x,
    const ts::TimeSeries& y,
    const std::vector<sift::Keypoint>& features_y) const {
  DirectedAlignment forward = RunDirected(x, features_x, y, features_y,
                                          options_);
  if (!options_.constraint.symmetric) return std::move(forward.band);
  const DirectedAlignment backward =
      RunDirected(y, features_y, x, features_x, options_);
  return Symmetrize(forward.band, backward.band);
}

SdtwResult Sdtw::Compare(
    const ts::TimeSeries& x, const std::vector<sift::Keypoint>& features_x,
    const ts::TimeSeries& y,
    const std::vector<sift::Keypoint>& features_y) const {
  return CompareImpl(x, features_x, y, features_y, /*abandon=*/false, 0.0);
}

SdtwResult Sdtw::CompareEarlyAbandon(
    const ts::TimeSeries& x, const std::vector<sift::Keypoint>& features_x,
    const ts::TimeSeries& y, const std::vector<sift::Keypoint>& features_y,
    double abandon_above) const {
  return CompareImpl(x, features_x, y, features_y, /*abandon=*/true,
                     abandon_above);
}

SdtwResult Sdtw::CompareImpl(
    const ts::TimeSeries& x, const std::vector<sift::Keypoint>& features_x,
    const ts::TimeSeries& y, const std::vector<sift::Keypoint>& features_y,
    bool abandon, double abandon_above) const {
  SdtwResult result;
  const auto t0 = std::chrono::steady_clock::now();

  DirectedAlignment forward =
      RunDirected(x, features_x, y, features_y, options_);
  result.alignments = std::move(forward.alignments);
  result.intervals = std::move(forward.intervals);
  if (options_.constraint.symmetric) {
    const DirectedAlignment backward =
        RunDirected(y, features_y, x, features_x, options_);
    result.band = Symmetrize(forward.band, backward.band);
  } else {
    result.band = std::move(forward.band);
  }
  result.timing.matching_seconds = SecondsSince(t0);

  // The banded DP uses band-compressed storage (rolling band-width rows
  // when want_path is off), so both time and memory follow the band area.
  const auto t1 = std::chrono::steady_clock::now();
  dtw::DtwResult dp =
      abandon ? dtw::DtwBandedEarlyAbandon(x, y, result.band, abandon_above,
                                           options_.dtw)
              : dtw::DtwBanded(x, y, result.band, options_.dtw);
  result.timing.dp_seconds = SecondsSince(t1);

  result.distance = dp.distance;
  result.path = std::move(dp.path);
  result.cells_filled = dp.cells_filled;
  result.cells_allocated = dp.cells_allocated;
  return result;
}

SdtwResult Sdtw::Compare(const ts::TimeSeries& x,
                         const ts::TimeSeries& y) const {
  return Compare(x, ExtractFeatures(x), y, ExtractFeatures(y));
}

double Sdtw::Distance(const ts::TimeSeries& x, const ts::TimeSeries& y) const {
  SdtwOptions opts = options_;
  opts.dtw.want_path = false;
  Sdtw engine(opts);
  return engine.Compare(x, y).distance;
}

std::vector<NamedConfig> PaperAlgorithmRoster(std::size_t descriptor_length) {
  std::vector<NamedConfig> roster;

  {
    NamedConfig full;
    full.label = "dtw";
    full.full_dtw = true;
    roster.push_back(full);
  }

  auto base = [descriptor_length]() {
    SdtwOptions o;
    o.extractor.descriptor_length = descriptor_length;
    o.dtw.want_path = false;
    return o;
  };

  const struct {
    const char* label;
    double width;
  } fixed_widths[] = {{"fc,fw 6%", 0.06}, {"fc,fw 10%", 0.10},
                      {"fc,fw 20%", 0.20}};
  for (const auto& fw : fixed_widths) {
    NamedConfig c;
    c.label = fw.label;
    c.options = base();
    c.options.constraint.type = ConstraintType::kFixedCoreFixedWidth;
    c.options.constraint.fixed_width_fraction = fw.width;
    roster.push_back(c);
  }

  {
    NamedConfig c;
    c.label = "fc,aw";
    c.options = base();
    c.options.constraint.type = ConstraintType::kFixedCoreAdaptiveWidth;
    c.options.constraint.adaptive_width_min_fraction = 0.20;  // paper §4.3
    roster.push_back(c);
  }

  const struct {
    const char* label;
    double width;
  } ac_widths[] = {{"ac,fw 6%", 0.06}, {"ac,fw 10%", 0.10},
                   {"ac,fw 20%", 0.20}};
  for (const auto& ac : ac_widths) {
    NamedConfig c;
    c.label = ac.label;
    c.options = base();
    c.options.constraint.type = ConstraintType::kAdaptiveCoreFixedWidth;
    c.options.constraint.fixed_width_fraction = ac.width;
    roster.push_back(c);
  }

  {
    NamedConfig c;
    c.label = "ac,aw";
    c.options = base();
    c.options.constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
    roster.push_back(c);
  }

  {
    NamedConfig c;
    c.label = "ac2,aw";
    c.options = base();
    c.options.constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
    c.options.constraint.width_average_radius = 1;
    roster.push_back(c);
  }

  return roster;
}

}  // namespace core
}  // namespace sdtw
