#include "core/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

namespace sdtw {
namespace core {

namespace {

/// 64-bit FNV-1a, the site-name half of the decision key.
std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64 finalizer: turns (site hash ^ seed ^ call number) into an
/// independent uniform 64-bit draw. The standard avalanche constants —
/// every input bit flips every output bit with probability ~1/2, which is
/// what makes per-call decisions at one site look independent.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Pure decision function: does call number `n` at this site fail?
bool Draw(const FaultInjector::SiteConfig& config, std::uint64_t site_hash,
          std::uint64_t n) {
  if (config.rate <= 0.0) return false;
  if (config.rate >= 1.0) return true;
  const std::uint64_t draw = Mix(site_hash ^ config.seed ^ n);
  // Compare in the integer domain: rate scaled to the full 64-bit range.
  const auto threshold = static_cast<std::uint64_t>(
      config.rate * 18446744073709551615.0);  // 2^64 - 1
  return draw < threshold;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = []() {
    auto* inj = new FaultInjector();  // lint:allow(naked-new) leaked: must outlive threads at exit
    if (const char* spec = std::getenv("SDTW_FAULT")) {
      inj->ArmFromSpec(spec);
    }
    return inj;
  }();
  return *injector;
}

bool FaultInjector::ShouldFail(std::string_view site) {
  if (!armed()) return false;  // the zero-cost disabled path
  core::MutexLock lock(mu_);
  const auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return false;
  Site& s = it->second;
  const std::uint64_t n = s.counters.calls++;
  if (s.counters.failures >= s.config.max_failures) return false;
  if (!Draw(s.config, Fnv1a(site), n)) return false;
  ++s.counters.failures;
  return true;
}

void FaultInjector::Arm(std::string_view site, const SiteConfig& config) {
  core::MutexLock lock(mu_);
  sites_[std::string(site)] = Site{config, SiteCounters{}};
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(std::string_view site) {
  core::MutexLock lock(mu_);
  sites_.erase(std::string(site));
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  {
    core::MutexLock lock(mu_);
    sites_.clear();
    armed_.store(false, std::memory_order_relaxed);
  }
  if (const char* spec = std::getenv("SDTW_FAULT")) ArmFromSpec(spec);
}

FaultInjector::SiteCounters FaultInjector::counters(
    std::string_view site) const {
  core::MutexLock lock(mu_);
  const auto it = sites_.find(std::string(site));
  return it == sites_.end() ? SiteCounters{} : it->second.counters;
}

std::optional<FaultInjector::SiteConfig> FaultInjector::config(
    std::string_view site) const {
  core::MutexLock lock(mu_);
  const auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return std::nullopt;
  return it->second.config;
}

bool FaultInjector::ArmFromSpec(std::string_view spec) {
  // site:rate:seed[,site:rate:seed...] — all entries validated before any
  // is armed, so a malformed spec arms nothing instead of half the list.
  struct Parsed {
    std::string site;
    SiteConfig config;
  };
  std::vector<Parsed> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t end = std::min(spec.find(',', pos), spec.size());
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 = c1 == std::string_view::npos
                               ? std::string_view::npos
                               : entry.find(':', c1 + 1);
    if (c1 == std::string_view::npos || c2 == std::string_view::npos ||
        c1 == 0) {
      return false;
    }
    const std::string rate_str(entry.substr(c1 + 1, c2 - c1 - 1));
    const std::string seed_str(entry.substr(c2 + 1));
    char* rate_end = nullptr;
    char* seed_end = nullptr;
    const double rate = std::strtod(rate_str.c_str(), &rate_end);
    const std::uint64_t seed = std::strtoull(seed_str.c_str(), &seed_end, 10);
    if (rate_str.empty() || seed_str.empty() || *rate_end != '\0' ||
        *seed_end != '\0' || rate < 0.0 || rate > 1.0) {
      return false;
    }
    parsed.push_back(
        {std::string(entry.substr(0, c1)),
         SiteConfig{rate, seed, std::numeric_limits<std::size_t>::max()}});
  }
  for (Parsed& p : parsed) Arm(p.site, p.config);
  return true;
}

ScopedFault::ScopedFault(std::string_view site,
                         const FaultInjector::SiteConfig& config)
    : site_(site) {
  FaultInjector& injector = FaultInjector::Global();
  if (const auto previous = injector.config(site_)) {
    had_previous_ = true;
    previous_ = *previous;
  }
  injector.Arm(site_, config);
}

ScopedFault::~ScopedFault() {
  FaultInjector& injector = FaultInjector::Global();
  if (had_previous_) {
    injector.Arm(site_, previous_);
  } else {
    injector.Disarm(site_);
  }
}

}  // namespace core
}  // namespace sdtw
