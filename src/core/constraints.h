#ifndef SDTW_CORE_CONSTRAINTS_H_
#define SDTW_CORE_CONSTRAINTS_H_

/// \file constraints.h
/// \brief Locally relevant DTW band construction from aligned intervals
/// (paper §3.3).
///
/// Given the interval partition produced by consistent salient-feature
/// alignments, this module builds the four constraint types of Figure 10:
///
///  * fixed core & fixed width   — Sakoe-Chiba (baseline; no features used),
///  * fixed core & adaptive width — diagonal core, width = local interval
///    width of Y (with a lower bound, 20% in the paper's experiments),
///  * adaptive core & fixed width — core interpolated linearly inside each
///    matched interval pair (§3.3.2), fixed width,
///  * adaptive core & adaptive width — both adaptive; a second version
///    (ac2,aw) averages the widths of the r previous/next intervals to
///    stabilise noisy partitions.
///
/// Empty intervals produce degenerate cores (§3.3.2's exceptions); the
/// resulting gaps are bridged by Band::MakeFeasible so the DP always
/// completes.

#include <cstddef>
#include <vector>

#include "align/consistency.h"
#include "dtw/band.h"

namespace sdtw {
namespace core {

/// The constraint strategies evaluated in the paper (§4.3 naming).
enum class ConstraintType {
  kFixedCoreFixedWidth,       ///< fc,fw — Sakoe-Chiba.
  kFixedCoreAdaptiveWidth,    ///< fc,aw.
  kAdaptiveCoreFixedWidth,    ///< ac,fw.
  kAdaptiveCoreAdaptiveWidth, ///< ac,aw.
};

/// Short display name ("fc,fw", "ac,aw", ...).
const char* ConstraintTypeName(ConstraintType type);

/// \brief Parameters of band construction.
struct ConstraintOptions {
  ConstraintType type = ConstraintType::kAdaptiveCoreAdaptiveWidth;

  /// Fixed width as a fraction of M (the paper's w%: 0.06/0.10/0.20). Used
  /// by the *fixed width* strategies.
  double fixed_width_fraction = 0.10;

  /// Lower bound on the adaptive width, as a fraction of M (the paper uses
  /// 0.20 for fc,aw). 0 disables the bound.
  double adaptive_width_min_fraction = 0.0;

  /// Upper bound on the adaptive width, as a fraction of M. 0 disables.
  double adaptive_width_max_fraction = 0.0;

  /// Neighbourhood radius r for width averaging: the adaptive width at a
  /// point is the average of the widths of the r previous, current, and r
  /// next intervals. r = 0 reproduces ac,aw; r = 1 reproduces ac2,aw.
  std::size_t width_average_radius = 0;

  /// When true, the band is unioned with the transpose of the Y-driven band
  /// (paper §3.3.3's symmetric combined band).
  bool symmetric = false;
};

/// Computes, for every point i of X, the core column (candidate point y_j)
/// implied by the interval partition: linear interpolation between the
/// matched interval endpoints (§3.3.2). Empty Y-intervals map the whole
/// X-interval onto the interval's start point; empty X-intervals contribute
/// no rows (their gap is bridged later).
std::vector<double> AdaptiveCore(std::size_t n, std::size_t m,
                                 const std::vector<align::IntervalPair>& intervals);

/// The diagonal core j*_i = i (M-1)/(N-1).
std::vector<double> DiagonalCore(std::size_t n, std::size_t m);

/// Computes, for every point i of X, the local width (in samples of Y):
/// the width of the Y-interval containing the core point of i, averaged
/// over ±radius neighbouring intervals, clamped to the min/max fractions.
std::vector<double> AdaptiveWidths(
    std::size_t n, std::size_t m,
    const std::vector<align::IntervalPair>& intervals,
    const std::vector<double>& core, std::size_t radius,
    double min_fraction, double max_fraction);

/// Builds the constraint band for series lengths n (X) and m (Y) from the
/// aligned interval partition. The returned band is always feasible.
/// For kFixedCoreFixedWidth the intervals are ignored (Sakoe-Chiba).
dtw::Band BuildConstraintBand(std::size_t n, std::size_t m,
                              const std::vector<align::IntervalPair>& intervals,
                              const ConstraintOptions& options);

}  // namespace core
}  // namespace sdtw

#endif  // SDTW_CORE_CONSTRAINTS_H_
