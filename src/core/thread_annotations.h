#ifndef SDTW_CORE_THREAD_ANNOTATIONS_H_
#define SDTW_CORE_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// \brief Clang thread-safety-analysis attribute macros.
///
/// The retrieval engine's hardest guarantee — deterministic hits under any
/// thread count — rests on a small set of locking invariants (which fields
/// a mutex guards, which functions expect it held). These macros state
/// those invariants in the code itself so Clang's `-Wthread-safety`
/// analysis can check them at compile time; TSan then only has to confirm
/// what the compiler already proved. The build enables the analysis (and
/// promotes its findings to errors) under `-DSDTW_THREAD_SAFETY=ON`; on
/// compilers without the attributes every macro expands to nothing, so
/// annotated code is portable.
///
/// The macro set and spellings follow the Clang documentation
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); the project
/// prefix keeps them out of other libraries' namespaces. Use them through
/// core::Mutex / core::MutexLock (core/mutex.h), which carry the
/// capability attributes libstdc++'s std::mutex lacks.
///
/// Note on style: the attribute arguments are capability *expressions*
/// (e.g. `mu`, `state.mu`), not ordinary expression operands — wrapping
/// them in parentheses would change what the analysis sees, so these
/// macros intentionally pass their argument through unparenthesised.

#if defined(__clang__)
#define SDTW_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SDTW_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside Clang
#endif

/// Declares a type to be a capability (a lockable resource), e.g.
/// `class SDTW_CAPABILITY("mutex") Mutex { ... };`.
#define SDTW_CAPABILITY(x) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))  // NOLINT(bugprone-macro-parentheses)

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define SDTW_SCOPED_CAPABILITY \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// A data member readable/writable only while `x` is held.
#define SDTW_GUARDED_BY(x) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))  // NOLINT(bugprone-macro-parentheses)

/// A pointer member whose *pointee* is guarded by `x`.
#define SDTW_PT_GUARDED_BY(x) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))  // NOLINT(bugprone-macro-parentheses)

/// The function may only be called while the listed capabilities are held
/// (and does not release them).
#define SDTW_REQUIRES(...) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// As SDTW_REQUIRES for shared (reader) access.
#define SDTW_REQUIRES_SHARED(...) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define SDTW_ACQUIRE(...) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held on
/// entry).
#define SDTW_RELEASE(...) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define SDTW_TRY_ACQUIRE(result, ...) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(result, __VA_ARGS__))

/// The function may only be called while the listed capabilities are NOT
/// held (it acquires them itself; calling with one held would deadlock).
#define SDTW_EXCLUDES(...) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the calling thread holds the capability, and
/// tells the analysis to assume it from here on.
#define SDTW_ASSERT_CAPABILITY(x) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))  // NOLINT(bugprone-macro-parentheses)

/// The function returns a reference to the named capability.
#define SDTW_RETURN_CAPABILITY(x) \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))  // NOLINT(bugprone-macro-parentheses)

/// Escape hatch: the function intentionally breaks the stated invariants
/// (e.g. single-threaded teardown); always pair with a comment saying why.
#define SDTW_NO_THREAD_SAFETY_ANALYSIS \
  SDTW_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // SDTW_CORE_THREAD_ANNOTATIONS_H_
