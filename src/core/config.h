#ifndef SDTW_CORE_CONFIG_H_
#define SDTW_CORE_CONFIG_H_

/// \file config.h
/// \brief Textual configuration of the sDTW pipeline.
///
/// Parses `key=value` option strings into SdtwOptions so that experiment
/// scripts and the CLI can select pipeline variants without recompiling:
///
///   "constraint=ac,aw width=0.1 radius=1 descriptor=64 epsilon=0.96"
///
/// Recognised keys (all optional):
///   constraint   fc,fw | fc,aw | ac,fw | ac,aw | ac2,aw
///   width        fixed width fraction (fixed-width strategies)
///   min_width    adaptive width lower bound fraction
///   max_width    adaptive width upper bound fraction
///   radius       width-averaging radius r
///   symmetric    0 | 1
///   descriptor   descriptor length (bins)
///   epsilon      extremum relaxation ε
///   contrast     minimum |DoG| response
///   max_kp       absolute keypoint cap (0 = use fraction)
///   kp_fraction  keypoint cap as a fraction of N (<= 0 disables)
///   octaves      number of octaves (0 = auto)
///   levels       levels per octave
///   tau_a        amplitude threshold
///   tau_s        scale-ratio threshold
///   tau_d        distinctiveness ratio
///   tau_pos      position displacement threshold
///   mutual       0 | 1 (require mutual matches)
///   cost         abs | squared

#include <optional>
#include <string>

#include "core/sdtw.h"

namespace sdtw {
namespace core {

/// Parses a whitespace-separated `key=value` option string on top of the
/// given base options. Returns std::nullopt and fills *error (when
/// non-null) on unknown keys or malformed values.
std::optional<SdtwOptions> ParseOptions(const std::string& spec,
                                        const SdtwOptions& base = {},
                                        std::string* error = nullptr);

/// Serialises options back into a canonical spec string (round-trips
/// through ParseOptions).
std::string FormatOptions(const SdtwOptions& options);

}  // namespace core
}  // namespace sdtw

#endif  // SDTW_CORE_CONFIG_H_
