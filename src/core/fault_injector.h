#ifndef SDTW_CORE_FAULT_INJECTOR_H_
#define SDTW_CORE_FAULT_INJECTOR_H_

/// \file fault_injector.h
/// \brief Deterministic, seeded, site-keyed fault injection.
///
/// Failure paths are the least-executed code in a service and therefore
/// the least trusted; the only way to keep them honest is to execute
/// them on purpose, reproducibly. FaultInjector lets a test (or a CI
/// matrix) arm named injection *sites* — fixed strings compiled into the
/// code under test, e.g. retrieval's worker-execution, derivative-cache
/// -fill, and queue-admission sites (see the kFaultSite* constants in
/// retrieval/service.h) — with a failure rate and a seed:
///
///  * **Deterministic.** Whether call number n at a site fails is a pure
///    function of (site, seed, n) — a splitmix64 mix of the site's FNV-1a
///    hash, the seed, and the site-local call counter, compared against
///    the rate. Same seed, same call sequence => same faults, so every
///    failure a test provokes is replayable bit-for-bit.
///  * **Site-keyed.** Sites are independent: arming one never perturbs
///    the call numbering (and hence the fault pattern) of another.
///  * **Thread-safe.** Call counting and configuration share one
///    internal mutex; ShouldFail is safe from any thread.
///  * **Zero-cost when disabled.** The fast path of ShouldFail is one
///    relaxed atomic load and a predictable branch; no site lookup, no
///    lock, no string hashing happens until something is armed.
///
/// Arming comes from two places:
///  * the environment: `SDTW_FAULT=site:rate:seed[,site:rate:seed...]`
///    is parsed once on first access to Global() — this is how the CI
///    fault matrix arms a whole test binary without recompiling;
///  * the programmatic API: Arm / Disarm / Reset, plus the RAII
///    ScopedFault that restores the previous configuration on scope
///    exit (what deterministic unit tests use).
///
/// The injector *decides*; the call site *acts*. A site that draws a
/// failure typically throws (worker execution), skips a fill (derivative
/// cache), or refuses an admission — the injector itself never throws.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace sdtw {
namespace core {

/// \brief What a throwing call site raises when its injection site draws
/// a failure. A distinct type so fault-tolerance layers (and tests) can
/// tell an injected fault from an organic one.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FaultInjector {
 public:
  /// Arm-time knobs of one site.
  struct SiteConfig {
    /// Probability in [0, 1] that a call at this site fails.
    double rate = 0.0;
    /// Seed of the deterministic per-call decision stream.
    std::uint64_t seed = 0;
    /// Stop injecting after this many failures (SIZE_MAX = unlimited).
    /// With rate 1.0 this targets "exactly the first N calls" — the
    /// precision tool for failing one specific request.
    std::size_t max_failures = std::numeric_limits<std::size_t>::max();
  };

  /// Per-site observability, for tests and bench reporting.
  struct SiteCounters {
    std::size_t calls = 0;     ///< ShouldFail invocations while armed.
    std::size_t failures = 0;  ///< Calls that drew a failure.
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector every production site consults. First
  /// access parses SDTW_FAULT from the environment.
  static FaultInjector& Global();

  /// True iff call sites should bother consulting ShouldFail. One
  /// relaxed atomic load — this is the whole cost when disabled.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Should the current call at `site` fail? Deterministic per
  /// (site, seed, call number); counts the call either way. Always
  /// false for sites that are not armed.
  bool ShouldFail(std::string_view site) SDTW_EXCLUDES(mu_);

  /// Arms (or re-arms, resetting the call counter) one site.
  void Arm(std::string_view site, const SiteConfig& config)
      SDTW_EXCLUDES(mu_);
  void Arm(std::string_view site, double rate, std::uint64_t seed)
      SDTW_EXCLUDES(mu_) {
    Arm(site, SiteConfig{rate, seed,
                         std::numeric_limits<std::size_t>::max()});
  }

  /// Disarms one site (no-op when not armed).
  void Disarm(std::string_view site) SDTW_EXCLUDES(mu_);

  /// Disarms everything, then re-arms from `SDTW_FAULT` if set — the
  /// state a fresh process starts in.
  void Reset() SDTW_EXCLUDES(mu_);

  /// Counters of one site since it was (re-)armed; zeros when unarmed.
  SiteCounters counters(std::string_view site) const SDTW_EXCLUDES(mu_);

  /// The active configuration of one site, or nullopt when unarmed.
  std::optional<SiteConfig> config(std::string_view site) const
      SDTW_EXCLUDES(mu_);

  /// Parses one `site:rate:seed[,site:rate:seed...]` spec and arms the
  /// sites in it. Returns false (arming nothing further) on malformed
  /// input. Exposed for tests; Global() feeds it SDTW_FAULT.
  bool ArmFromSpec(std::string_view spec) SDTW_EXCLUDES(mu_);

 private:
  struct Site {
    SiteConfig config;
    SiteCounters counters;
  };

  mutable core::Mutex mu_;
  std::unordered_map<std::string, Site> sites_ SDTW_GUARDED_BY(mu_);
  /// Mirrors !sites_.empty() so the disabled fast path never locks.
  std::atomic<bool> armed_{false};  // lint:allow(unguarded: atomic mirror of sites_ emptiness, updated under mu_)
};

/// \brief RAII arm-for-this-scope. Re-arms the site on construction and
/// restores the previous state (armed with the old config, or unarmed)
/// on destruction, so a test cannot leak fault configuration into its
/// neighbours.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, const FaultInjector::SiteConfig& config);
  ScopedFault(std::string_view site, double rate, std::uint64_t seed)
      : ScopedFault(site, FaultInjector::SiteConfig{
                              rate, seed,
                              std::numeric_limits<std::size_t>::max()}) {}
  ~ScopedFault();

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
  bool had_previous_ = false;
  FaultInjector::SiteConfig previous_;
};

}  // namespace core
}  // namespace sdtw

#endif  // SDTW_CORE_FAULT_INJECTOR_H_
