#include "core/config.h"

#include <sstream>

namespace sdtw {
namespace core {

namespace {

bool ParseDouble(const std::string& v, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

bool ParseSize(const std::string& v, std::size_t* out) {
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(v, &pos);
    if (pos != v.size() || parsed < 0) return false;
    *out = static_cast<std::size_t>(parsed);
    return true;
  } catch (...) {
    return false;
  }
}

bool ParseBool(const std::string& v, bool* out) {
  if (v == "1" || v == "true" || v == "on") {
    *out = true;
    return true;
  }
  if (v == "0" || v == "false" || v == "off") {
    *out = false;
    return true;
  }
  return false;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Applies one key=value pair; returns false (with *error set) on failure.
bool Apply(const std::string& key, const std::string& value,
           SdtwOptions* opt, std::string* error) {
  double d = 0.0;
  std::size_t z = 0;
  bool b = false;
  if (key == "constraint") {
    if (value == "fc,fw") {
      opt->constraint.type = ConstraintType::kFixedCoreFixedWidth;
    } else if (value == "fc,aw") {
      opt->constraint.type = ConstraintType::kFixedCoreAdaptiveWidth;
    } else if (value == "ac,fw") {
      opt->constraint.type = ConstraintType::kAdaptiveCoreFixedWidth;
    } else if (value == "ac,aw") {
      opt->constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
      opt->constraint.width_average_radius = 0;
    } else if (value == "ac2,aw") {
      opt->constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
      opt->constraint.width_average_radius = 1;
    } else {
      return Fail(error, "unknown constraint: " + value);
    }
    return true;
  }
  if (key == "width") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad width: " + value);
    opt->constraint.fixed_width_fraction = d;
    return true;
  }
  if (key == "min_width") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad min_width");
    opt->constraint.adaptive_width_min_fraction = d;
    return true;
  }
  if (key == "max_width") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad max_width");
    opt->constraint.adaptive_width_max_fraction = d;
    return true;
  }
  if (key == "radius") {
    if (!ParseSize(value, &z)) return Fail(error, "bad radius");
    opt->constraint.width_average_radius = z;
    return true;
  }
  if (key == "symmetric") {
    if (!ParseBool(value, &b)) return Fail(error, "bad symmetric");
    opt->constraint.symmetric = b;
    return true;
  }
  if (key == "descriptor") {
    if (!ParseSize(value, &z)) return Fail(error, "bad descriptor");
    opt->extractor.descriptor_length = z;
    return true;
  }
  if (key == "epsilon") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad epsilon");
    opt->extractor.epsilon = d;
    return true;
  }
  if (key == "contrast") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad contrast");
    opt->extractor.min_contrast = d;
    return true;
  }
  if (key == "max_kp") {
    if (!ParseSize(value, &z)) return Fail(error, "bad max_kp");
    opt->extractor.max_keypoints = z;
    return true;
  }
  if (key == "kp_fraction") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad kp_fraction");
    opt->extractor.max_keypoints_fraction = d;
    return true;
  }
  if (key == "octaves") {
    if (!ParseSize(value, &z)) return Fail(error, "bad octaves");
    opt->extractor.scale_space.num_octaves = z;
    return true;
  }
  if (key == "levels") {
    if (!ParseSize(value, &z)) return Fail(error, "bad levels");
    opt->extractor.scale_space.levels_per_octave = z;
    return true;
  }
  if (key == "tau_a") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad tau_a");
    opt->matching.tau_amplitude = d;
    return true;
  }
  if (key == "tau_s") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad tau_s");
    opt->matching.tau_scale = d;
    return true;
  }
  if (key == "tau_d") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad tau_d");
    opt->matching.tau_distinct = d;
    return true;
  }
  if (key == "tau_pos") {
    if (!ParseDouble(value, &d)) return Fail(error, "bad tau_pos");
    opt->matching.tau_position = d;
    return true;
  }
  if (key == "mutual") {
    if (!ParseBool(value, &b)) return Fail(error, "bad mutual");
    opt->matching.require_mutual = b;
    return true;
  }
  if (key == "cost") {
    if (value == "abs") {
      opt->dtw.cost = dtw::CostKind::kAbsolute;
    } else if (value == "squared") {
      opt->dtw.cost = dtw::CostKind::kSquared;
    } else {
      return Fail(error, "unknown cost: " + value);
    }
    return true;
  }
  return Fail(error, "unknown key: " + key);
}

}  // namespace

std::optional<SdtwOptions> ParseOptions(const std::string& spec,
                                        const SdtwOptions& base,
                                        std::string* error) {
  SdtwOptions options = base;
  std::istringstream iss(spec);
  std::string token;
  while (iss >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      if (error != nullptr) *error = "malformed token: " + token;
      return std::nullopt;
    }
    if (!Apply(token.substr(0, eq), token.substr(eq + 1), &options, error)) {
      return std::nullopt;
    }
  }
  return options;
}

std::string FormatOptions(const SdtwOptions& options) {
  std::ostringstream out;
  const bool ac2 =
      options.constraint.type == ConstraintType::kAdaptiveCoreAdaptiveWidth &&
      options.constraint.width_average_radius == 1;
  out << "constraint="
      << (ac2 ? "ac2,aw" : ConstraintTypeName(options.constraint.type));
  out << " width=" << options.constraint.fixed_width_fraction;
  out << " min_width=" << options.constraint.adaptive_width_min_fraction;
  out << " max_width=" << options.constraint.adaptive_width_max_fraction;
  if (!ac2) out << " radius=" << options.constraint.width_average_radius;
  out << " symmetric=" << (options.constraint.symmetric ? 1 : 0);
  out << " descriptor=" << options.extractor.descriptor_length;
  out << " epsilon=" << options.extractor.epsilon;
  out << " contrast=" << options.extractor.min_contrast;
  out << " max_kp=" << options.extractor.max_keypoints;
  out << " kp_fraction=" << options.extractor.max_keypoints_fraction;
  out << " octaves=" << options.extractor.scale_space.num_octaves;
  out << " levels=" << options.extractor.scale_space.levels_per_octave;
  out << " tau_a=" << options.matching.tau_amplitude;
  out << " tau_s=" << options.matching.tau_scale;
  out << " tau_d=" << options.matching.tau_distinct;
  out << " tau_pos=" << options.matching.tau_position;
  out << " mutual=" << (options.matching.require_mutual ? 1 : 0);
  out << " cost="
      << (options.dtw.cost == dtw::CostKind::kAbsolute ? "abs" : "squared");
  return out.str();
}

}  // namespace core
}  // namespace sdtw
