#include "core/constraints.h"

#include <algorithm>
#include <cmath>

namespace sdtw {
namespace core {

const char* ConstraintTypeName(ConstraintType type) {
  switch (type) {
    case ConstraintType::kFixedCoreFixedWidth:
      return "fc,fw";
    case ConstraintType::kFixedCoreAdaptiveWidth:
      return "fc,aw";
    case ConstraintType::kAdaptiveCoreFixedWidth:
      return "ac,fw";
    case ConstraintType::kAdaptiveCoreAdaptiveWidth:
      return "ac,aw";
  }
  return "?";
}

std::vector<double> DiagonalCore(std::size_t n, std::size_t m) {
  std::vector<double> core(n, 0.0);
  if (n == 0 || m == 0) return core;
  const double slope =
      n > 1 ? static_cast<double>(m - 1) / static_cast<double>(n - 1) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    core[i] = static_cast<double>(i) * slope;
  }
  return core;
}

std::vector<double> AdaptiveCore(
    std::size_t n, std::size_t m,
    const std::vector<align::IntervalPair>& intervals) {
  std::vector<double> core(n, 0.0);
  if (n == 0 || m == 0) return core;
  if (intervals.empty()) return DiagonalCore(n, m);

  for (const align::IntervalPair& ip : intervals) {
    const std::size_t bx = std::min(ip.begin_x, n - 1);
    const std::size_t ex = std::min(ip.end_x, n - 1);
    const std::size_t by = std::min(ip.begin_y, m - 1);
    const std::size_t ey = std::min(ip.end_y, m - 1);
    if (ex == bx) {
      // Empty/degenerate X-interval: a single X point stands for the whole
      // Y-interval; map it onto the interval midpoint so the band (after
      // widening) covers the stretch. The vertical gap is bridged by
      // MakeFeasible.
      core[ex] = (static_cast<double>(by) + static_cast<double>(ey)) / 2.0;
      continue;
    }
    const double span_x = static_cast<double>(ex - bx);
    const double span_y = static_cast<double>(ey) - static_cast<double>(by);
    for (std::size_t i = bx; i <= ex; ++i) {
      // §3.3.2: (j - st_Y) / (end_Y - st_Y) = (i - st_X) / (end_X - st_X).
      // When end_Y == st_Y the whole X-interval maps onto st_Y.
      const double frac = static_cast<double>(i - bx) / span_x;
      core[i] = static_cast<double>(by) + frac * span_y;
    }
  }
  // Anchor endpoints onto the corners.
  core[0] = 0.0;
  core[n - 1] = static_cast<double>(m - 1);
  return core;
}

namespace {

// Index of the interval whose Y-range contains the column `col` (closest
// when none contains it).
std::size_t IntervalContaining(
    const std::vector<align::IntervalPair>& intervals, double col) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < intervals.size(); ++k) {
    const double lo = static_cast<double>(intervals[k].begin_y);
    const double hi = static_cast<double>(intervals[k].end_y);
    if (col >= lo && col <= hi) return k;
    const double d = col < lo ? lo - col : col - hi;
    if (d < best_dist) {
      best_dist = d;
      best = k;
    }
  }
  return best;
}

}  // namespace

std::vector<double> AdaptiveWidths(
    std::size_t n, std::size_t m,
    const std::vector<align::IntervalPair>& intervals,
    const std::vector<double>& core, std::size_t radius, double min_fraction,
    double max_fraction) {
  std::vector<double> widths(n, static_cast<double>(m));
  if (n == 0 || m == 0) return widths;
  const double min_w = min_fraction > 0.0
                           ? min_fraction * static_cast<double>(m)
                           : 0.0;
  const double max_w = max_fraction > 0.0
                           ? max_fraction * static_cast<double>(m)
                           : static_cast<double>(m);
  for (std::size_t i = 0; i < n; ++i) {
    double w;
    if (intervals.empty()) {
      w = static_cast<double>(m);
    } else {
      const std::size_t k = IntervalContaining(intervals, core[i]);
      // Average widths over the r-neighbourhood of interval k (§3.3.1's
      // second refinement; r = 1 gives the paper's ac2 variant).
      const std::size_t lo = k >= radius ? k - radius : 0;
      const std::size_t hi = std::min(intervals.size() - 1, k + radius);
      double sum = 0.0;
      for (std::size_t t = lo; t <= hi; ++t) {
        sum += static_cast<double>(intervals[t].width_y());
      }
      w = sum / static_cast<double>(hi - lo + 1);
    }
    widths[i] = std::clamp(w, std::max(min_w, 1.0), std::max(max_w, 1.0));
  }
  return widths;
}

namespace {

// Assembles a band from per-row cores and total widths (±ceil(w/2) around
// the core, §3.3.1).
dtw::Band AssembleBand(std::size_t n, std::size_t m,
                       const std::vector<double>& core,
                       const std::vector<double>& widths) {
  std::vector<dtw::BandRow> rows(n);
  const double last_col = static_cast<double>(m - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double half = std::ceil(widths[i] / 2.0);
    const double lo = std::clamp(core[i] - half, 0.0, last_col);
    const double hi = std::clamp(core[i] + half, 0.0, last_col);
    rows[i].lo = static_cast<std::size_t>(std::floor(lo));
    rows[i].hi = static_cast<std::size_t>(std::ceil(hi));
  }
  dtw::Band band = dtw::Band::FromRows(std::move(rows), m);
  band.MakeFeasible();
  return band;
}

// Transposes the interval partition (swap the roles of X and Y).
std::vector<align::IntervalPair> TransposeIntervals(
    const std::vector<align::IntervalPair>& intervals) {
  std::vector<align::IntervalPair> out;
  out.reserve(intervals.size());
  for (const align::IntervalPair& ip : intervals) {
    align::IntervalPair t;
    t.begin_x = ip.begin_y;
    t.end_x = ip.end_y;
    t.begin_y = ip.begin_x;
    t.end_y = ip.end_x;
    out.push_back(t);
  }
  return out;
}

dtw::Band BuildDirected(std::size_t n, std::size_t m,
                        const std::vector<align::IntervalPair>& intervals,
                        const ConstraintOptions& options) {
  switch (options.type) {
    case ConstraintType::kFixedCoreFixedWidth:
      return dtw::SakoeChibaBand(n, m, options.fixed_width_fraction);
    case ConstraintType::kFixedCoreAdaptiveWidth: {
      const std::vector<double> core = DiagonalCore(n, m);
      const std::vector<double> widths = AdaptiveWidths(
          n, m, intervals, core, options.width_average_radius,
          options.adaptive_width_min_fraction,
          options.adaptive_width_max_fraction);
      return AssembleBand(n, m, core, widths);
    }
    case ConstraintType::kAdaptiveCoreFixedWidth: {
      const std::vector<double> core = AdaptiveCore(n, m, intervals);
      const std::vector<double> widths(
          n, std::max(1.0, options.fixed_width_fraction *
                               static_cast<double>(m)));
      return AssembleBand(n, m, core, widths);
    }
    case ConstraintType::kAdaptiveCoreAdaptiveWidth: {
      const std::vector<double> core = AdaptiveCore(n, m, intervals);
      const std::vector<double> widths = AdaptiveWidths(
          n, m, intervals, core, options.width_average_radius,
          options.adaptive_width_min_fraction,
          options.adaptive_width_max_fraction);
      return AssembleBand(n, m, core, widths);
    }
  }
  return dtw::Band::Full(n, m);
}

}  // namespace

dtw::Band BuildConstraintBand(
    std::size_t n, std::size_t m,
    const std::vector<align::IntervalPair>& intervals,
    const ConstraintOptions& options) {
  if (n == 0 || m == 0) return dtw::Band();
  dtw::Band band = BuildDirected(n, m, intervals, options);
  if (options.symmetric &&
      options.type != ConstraintType::kFixedCoreFixedWidth) {
    // Y-driven band on the M×N grid, transposed back and unioned (§3.3.3).
    const std::vector<align::IntervalPair> t = TransposeIntervals(intervals);
    dtw::Band yband = BuildDirected(m, n, t, options);
    dtw::Band yt = yband.Transpose();
    yt.MakeFeasible();
    band.UnionWith(yt);
    band.MakeFeasible();
  }
  return band;
}

}  // namespace core
}  // namespace sdtw
