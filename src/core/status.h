#ifndef SDTW_CORE_STATUS_H_
#define SDTW_CORE_STATUS_H_

/// \file status.h
/// \brief Error propagation without exceptions: Status and StatusOr<T>.
///
/// The retrieval service promises that one misbehaving request never
/// tears down the process — a worker fault, an expired deadline, or a
/// shed admission must fail exactly the affected request's future and
/// nothing else. That needs an error value that crosses thread and
/// future boundaries without throwing: Status carries a machine-checkable
/// code plus a human-readable message, and StatusOr<T> is the
/// std::expected-style sum of "a T" and "why there is no T" (the repo
/// targets C++20, so std::expected itself is out of reach).
///
/// Conventions, matching the absl/gRPC vocabulary the codes are named
/// after:
///  * Status::Ok() (code kOk) means success and carries no message;
///  * a StatusOr<T> holds either a value (ok() == true) or a non-OK
///    Status — constructing one from an OK status is a contract
///    violation and degrades to kUnknown so the invariant
///    "!ok() implies a real error code" always holds;
///  * value() on an error (or status() has no precondition) is guarded
///    by assert in debug builds; callers are expected to branch on ok()
///    first, exactly like std::expected::has_value().

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sdtw {
namespace core {

/// \brief Machine-checkable failure classification.
enum class StatusCode {
  kOk = 0,
  /// Caller error: malformed configuration or arguments (e.g. a
  /// QueryService constructed with queue_capacity == 0).
  kInvalidArgument,
  /// The request's deadline passed before it was served; it was shed
  /// without any DP evaluation.
  kDeadlineExceeded,
  /// Admission refused: queue at capacity under kReject, or a kBlock
  /// submitter's bounded park timed out.
  kResourceExhausted,
  /// The service is shut down (or never became serviceable).
  kUnavailable,
  /// A worker faulted while executing the request and the bounded
  /// retries were exhausted — the repeat offender is failed permanently.
  kWorkerFault,
  /// Fallback for unclassifiable failures (e.g. an unknown exception
  /// type escaping a worker).
  kUnknown,
};

/// Stable lowercase name of a code ("ok", "deadline_exceeded", ...).
inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kWorkerFault:
      return "worker_fault";
    case StatusCode::kUnknown:
      return "unknown";
  }
  return "unknown";
}

/// \brief A result code plus a diagnostic message. Cheap to copy when OK
/// (empty message), move-friendly otherwise.
class Status {
 public:
  /// Default is success, so `Status s; ... return s;` reads naturally.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "deadline_exceeded: queued past its deadline" — for logs and tests.
  std::string ToString() const {
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief std::expected-style value-or-error (value_type T, error Status).
///
/// Implicitly constructible from both T and Status so `return hits;` and
/// `return Status(kWorkerFault, ...);` both work from a
/// StatusOr-returning function.
template <typename T>
class StatusOr {
 public:
  using value_type = T;

  /// Error state. An OK status here would break the "!ok() is a real
  /// error" invariant, so it is coerced to kUnknown (asserted in debug).
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from an OK status");
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status(StatusCode::kUnknown,
                    "StatusOr constructed from an OK status");
    }
  }
  /// Value state.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error, or Status::Ok() when a value is held (mirrors
  /// absl::StatusOr::status()).
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok() && "StatusOr::value() on an error");
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok() && "StatusOr::value() on an error");
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok() && "StatusOr::value() on an error");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` on error (by copy; convenience for tests).
  T value_or(T fallback) const& { return ok() ? value() : fallback; }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace core
}  // namespace sdtw

#endif  // SDTW_CORE_STATUS_H_
