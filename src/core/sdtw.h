#ifndef SDTW_CORE_SDTW_H_
#define SDTW_CORE_SDTW_H_

/// \file sdtw.h
/// \brief The top-level sDTW public API.
///
/// Ties the pipeline together (paper §3): salient feature extraction
/// (one-time per series, cacheable), dominant-pair matching, inconsistency
/// pruning, locally relevant band construction, and band-constrained DTW.
///
/// Typical use:
/// \code
///   sdtw::core::Sdtw engine;                       // default = ac,aw
///   auto fx = engine.ExtractFeatures(x);           // cache per series
///   auto fy = engine.ExtractFeatures(y);
///   sdtw::core::SdtwResult r = engine.Compare(x, fx, y, fy);
///   // r.distance, r.path, r.band, r.timing ...
/// \endcode

#include <chrono>
#include <cstddef>
#include <vector>

#include "align/consistency.h"
#include "align/matching.h"
#include "core/constraints.h"
#include "dtw/dtw.h"
#include "sift/extractor.h"
#include "ts/time_series.h"

namespace sdtw {
namespace core {

/// \brief Per-stage wall-clock timings of one comparison, in seconds.
/// Mirrors the paper's cost decomposition (§3.4 / Figure 17): matching +
/// inconsistency removal vs. dynamic programming. Feature extraction is a
/// one-time per-series cost and is reported by ExtractFeatures callers.
struct StageTiming {
  double matching_seconds = 0.0;  ///< Pair search + inconsistency pruning +
                                  ///< band construction.
  double dp_seconds = 0.0;        ///< Banded DP + path backtracking.
  double total() const { return matching_seconds + dp_seconds; }
};

/// \brief Full result of one sDTW comparison.
struct SdtwResult {
  /// Band-constrained DTW distance (>= the optimal DTW distance).
  double distance = 0.0;
  /// Warp path, when requested.
  std::vector<dtw::PathPoint> path;
  /// The band that constrained the DP.
  dtw::Band band;
  /// Matched pairs surviving inconsistency pruning.
  std::vector<align::AlignedPair> alignments;
  /// The interval partition driving the band.
  std::vector<align::IntervalPair> intervals;
  /// Cells of the grid actually filled.
  std::size_t cells_filled = 0;
  /// Peak DP storage in doubles (band-compressed: Σ band-row widths when a
  /// path is requested, 2 × max band-row width otherwise — never the full
  /// (N+1)x(M+1) grid).
  std::size_t cells_allocated = 0;
  StageTiming timing;
};

/// \brief Configuration of the whole pipeline.
struct SdtwOptions {
  sift::ExtractorOptions extractor;
  align::MatchingOptions matching;
  align::ConsistencyOptions consistency;
  ConstraintOptions constraint;
  dtw::DtwOptions dtw;
};

/// \brief The sDTW engine.
///
/// Thread-compatible: const methods are safe to call concurrently from
/// multiple threads on distinct inputs.
class Sdtw {
 public:
  explicit Sdtw(SdtwOptions options = {});

  const SdtwOptions& options() const { return options_; }

  /// One-time salient feature extraction for a series (paper §3.4 — store
  /// these alongside the series and reuse them across comparisons).
  std::vector<sift::Keypoint> ExtractFeatures(
      const ts::TimeSeries& series) const;

  /// Full pipeline with pre-extracted features.
  SdtwResult Compare(const ts::TimeSeries& x,
                     const std::vector<sift::Keypoint>& features_x,
                     const ts::TimeSeries& y,
                     const std::vector<sift::Keypoint>& features_y) const;

  /// Convenience: extracts features on the fly and compares.
  SdtwResult Compare(const ts::TimeSeries& x, const ts::TimeSeries& y) const;

  /// Full pipeline with best-so-far early abandoning: identical to
  /// Compare() except the banded DP gives up as soon as every cell of a DP
  /// row — or the final distance — exceeds `abandon_above` (the caller's
  /// best-so-far), returning distance = +infinity with an empty path.
  /// Works in both path and distance-only modes, so retrieval loops that
  /// want alignments prune exactly like distance-only calls.
  SdtwResult CompareEarlyAbandon(
      const ts::TimeSeries& x, const std::vector<sift::Keypoint>& features_x,
      const ts::TimeSeries& y, const std::vector<sift::Keypoint>& features_y,
      double abandon_above) const;

  /// Distance-only convenience wrapper.
  double Distance(const ts::TimeSeries& x, const ts::TimeSeries& y) const;

  /// Builds the constraint band only (no DP) — exposed for analysis,
  /// visualisation, and combination with other kernels (e.g.
  /// dtw::MultiscaleDtwConstrained).
  dtw::Band BuildBand(const ts::TimeSeries& x,
                      const std::vector<sift::Keypoint>& features_x,
                      const ts::TimeSeries& y,
                      const std::vector<sift::Keypoint>& features_y) const;

 private:
  SdtwResult CompareImpl(const ts::TimeSeries& x,
                         const std::vector<sift::Keypoint>& features_x,
                         const ts::TimeSeries& y,
                         const std::vector<sift::Keypoint>& features_y,
                         bool abandon, double abandon_above) const;

  SdtwOptions options_;
};

/// Returns the standard algorithm roster evaluated in the paper's §4.3 —
/// dtw (full), fc,fw 6/10/20%, fc,aw (lb 20%), ac,fw 6/10/20%, ac,aw,
/// ac2,aw — as (label, options) pairs. `descriptor_length` applies to all
/// adaptive variants (the paper's default is 64).
struct NamedConfig {
  const char* label;
  /// True for the unconstrained full-DTW baseline (options unused).
  bool full_dtw = false;
  SdtwOptions options;
};
std::vector<NamedConfig> PaperAlgorithmRoster(
    std::size_t descriptor_length = 64);

}  // namespace core
}  // namespace sdtw

#endif  // SDTW_CORE_SDTW_H_
