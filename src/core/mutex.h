#ifndef SDTW_CORE_MUTEX_H_
#define SDTW_CORE_MUTEX_H_

/// \file mutex.h
/// \brief Annotated mutex for Clang thread-safety analysis.
///
/// libstdc++ ships std::mutex without capability attributes, so code
/// locking a std::mutex is invisible to `-Wthread-safety`: the analysis
/// never sees an acquire and flags every access to a guarded field. These
/// thin wrappers re-state the std::mutex / std::lock_guard API with the
/// attributes attached, making SDTW_GUARDED_BY / SDTW_REQUIRES /
/// SDTW_EXCLUDES annotations actually checkable. Zero overhead: every
/// member is a forwarding inline call.
///
/// Lock discipline in this codebase is deliberately simple — leaf locks
/// only, never held across a call that could itself lock, no lock-order
/// pairs — which is exactly the discipline the static analysis can verify
/// completely.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace sdtw {
namespace core {

/// \brief std::mutex with thread-safety-analysis capability attributes.
class SDTW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SDTW_ACQUIRE() { mu_.lock(); }
  void unlock() SDTW_RELEASE() { mu_.unlock(); }
  bool try_lock() SDTW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std:: APIs that need the raw type (e.g.
  /// std::condition_variable). Accessing guarded state through it bypasses
  /// the analysis — prefer the annotated members.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII scoped lock over core::Mutex (std::lock_guard with
/// capability attributes).
class SDTW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SDTW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() SDTW_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

/// \brief RAII scoped lock over core::Mutex that a CondVar can wait on
/// (std::unique_lock with capability attributes).
///
/// Like MutexLock it holds the lock for its whole scope; the extra
/// std::unique_lock plumbing only exists so CondVar::Wait can release and
/// reacquire it atomically during a wait.
class SDTW_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) SDTW_ACQUIRE(mu) : lock_(mu.native()) {}
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  ~UniqueLock() SDTW_RELEASE() = default;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief Condition variable paired with core::Mutex via UniqueLock.
///
/// A wait atomically releases the lock and reacquires it before returning,
/// so the caller's invariant — guarded state is only touched while the
/// lock is held — is preserved; the thread-safety analysis models the
/// capability as held across the wait, which matches that invariant
/// exactly (the waiter never observes guarded state unlocked). Spurious
/// wakeups are possible as with std::condition_variable: always wait in a
/// predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  /// Waits until notified or `deadline` passes; returns
  /// std::cv_status::timeout when the deadline was reached.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  /// Notify may be called with or without the associated mutex held.
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace core
}  // namespace sdtw

#endif  // SDTW_CORE_MUTEX_H_
