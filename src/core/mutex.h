#ifndef SDTW_CORE_MUTEX_H_
#define SDTW_CORE_MUTEX_H_

/// \file mutex.h
/// \brief Annotated mutex for Clang thread-safety analysis.
///
/// libstdc++ ships std::mutex without capability attributes, so code
/// locking a std::mutex is invisible to `-Wthread-safety`: the analysis
/// never sees an acquire and flags every access to a guarded field. These
/// thin wrappers re-state the std::mutex / std::lock_guard API with the
/// attributes attached, making SDTW_GUARDED_BY / SDTW_REQUIRES /
/// SDTW_EXCLUDES annotations actually checkable. Zero overhead: every
/// member is a forwarding inline call.
///
/// Lock discipline in this codebase is deliberately simple — leaf locks
/// only, never held across a call that could itself lock, no lock-order
/// pairs — which is exactly the discipline the static analysis can verify
/// completely.

#include <mutex>

#include "core/thread_annotations.h"

namespace sdtw {
namespace core {

/// \brief std::mutex with thread-safety-analysis capability attributes.
class SDTW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SDTW_ACQUIRE() { mu_.lock(); }
  void unlock() SDTW_RELEASE() { mu_.unlock(); }
  bool try_lock() SDTW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std:: APIs that need the raw type (e.g.
  /// std::condition_variable). Accessing guarded state through it bypasses
  /// the analysis — prefer the annotated members.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII scoped lock over core::Mutex (std::lock_guard with
/// capability attributes).
class SDTW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SDTW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() SDTW_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace core
}  // namespace sdtw

#endif  // SDTW_CORE_MUTEX_H_
