// Integration tests running the whole sDTW pipeline end to end on the
// synthetic paper data sets: extraction -> matching -> pruning -> band ->
// banded DP, plus the evaluation harness on top.

#include <cmath>
#include <gtest/gtest.h>

#include <sstream>

#include "core/sdtw.h"
#include "ts/io.h"
#include "data/generators.h"
#include "dtw/multiscale.h"
#include "eval/experiment.h"
#include "ts/transforms.h"

namespace sdtw {
namespace {

data::GeneratorOptions SmallOpts(std::size_t n_series, std::size_t length) {
  data::GeneratorOptions opt;
  opt.num_series = n_series;
  opt.length = length;
  return opt;
}

TEST(PipelineTest, GunLikePairEndToEnd) {
  const ts::Dataset ds = data::MakeGunLike(SmallOpts(4, 150));
  core::Sdtw engine;
  const core::SdtwResult r = engine.Compare(ds[0], ds[2]);
  EXPECT_TRUE(std::isfinite(r.distance));
  EXPECT_TRUE(r.band.IsFeasible());
  EXPECT_GE(r.intervals.size(), 1u);
}

TEST(PipelineTest, SameClassPairsProduceAlignments) {
  // Two instances of the same Gun class share salient structure, so at
  // least one aligned pair should usually survive pruning.
  const ts::Dataset ds = data::MakeGunLike(SmallOpts(10, 150));
  core::Sdtw engine;
  std::size_t with_alignments = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = i + 1; j < ds.size(); ++j) {
      if (ds[i].label() != ds[j].label()) continue;
      const core::SdtwResult r = engine.Compare(ds[i], ds[j]);
      ++total;
      if (!r.alignments.empty()) ++with_alignments;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(with_alignments * 2, total);  // majority of same-class pairs
}

TEST(PipelineTest, AlignmentsAreOrderConsistent) {
  const ts::Dataset ds = data::MakeTraceLike(SmallOpts(6, 200));
  core::Sdtw engine;
  for (std::size_t i = 0; i + 1 < ds.size(); ++i) {
    const core::SdtwResult r = engine.Compare(ds[i], ds[i + 1]);
    // Committed scope boundaries must be similarly ordered in both series:
    // sorting by start_x must also sort start_y.
    for (std::size_t a = 1; a < r.alignments.size(); ++a) {
      EXPECT_LE(r.alignments[a - 1].start_x, r.alignments[a].start_x);
      EXPECT_LE(r.alignments[a - 1].start_y, r.alignments[a].start_y + 1e-9);
    }
  }
}

TEST(PipelineTest, IntervalsPartitionBothSeries) {
  const ts::Dataset ds = data::MakeTraceLike(SmallOpts(6, 200));
  core::Sdtw engine;
  const core::SdtwResult r = engine.Compare(ds[0], ds[3]);
  ASSERT_FALSE(r.intervals.empty());
  EXPECT_EQ(r.intervals.front().begin_x, 0u);
  EXPECT_EQ(r.intervals.front().begin_y, 0u);
  EXPECT_EQ(r.intervals.back().end_x, ds[0].size() - 1);
  EXPECT_EQ(r.intervals.back().end_y, ds[3].size() - 1);
  for (std::size_t k = 1; k < r.intervals.size(); ++k) {
    EXPECT_EQ(r.intervals[k].begin_x, r.intervals[k - 1].end_x);
    EXPECT_EQ(r.intervals[k].begin_y, r.intervals[k - 1].end_y);
  }
}

TEST(PipelineTest, AdaptiveBeatsNarrowFixedOnShiftedData) {
  // On shifted TraceLike data, ac,fw 6% should estimate distances more
  // accurately than fc,fw 6% (the paper's central claim).
  data::GeneratorOptions gopt = SmallOpts(12, 150);
  gopt.deform.shift_fraction = 0.15;
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  const eval::DistanceMatrix ref = eval::ComputeFullDtwMatrix(ds);

  core::SdtwOptions fixed;
  fixed.constraint.type = core::ConstraintType::kFixedCoreFixedWidth;
  fixed.constraint.fixed_width_fraction = 0.06;
  core::SdtwOptions adaptive;
  adaptive.constraint.type = core::ConstraintType::kAdaptiveCoreFixedWidth;
  adaptive.constraint.fixed_width_fraction = 0.06;

  const auto mf = eval::ComputeSdtwMatrix(ds, fixed);
  const auto ma = eval::ComputeSdtwMatrix(ds, adaptive);
  const auto metric_f = eval::ComputeMetrics("fc", ds, ref, mf);
  const auto metric_a = eval::ComputeMetrics("ac", ds, ref, ma);
  EXPECT_LT(metric_a.distance_error, metric_f.distance_error);
}

TEST(PipelineTest, SdtwBandCombinesWithMultiscale) {
  // §2.1.4: the sDTW constraint can ride on top of the reduced-representation
  // solver. The combination must stay finite and upper-bound banded DTW.
  const ts::Dataset ds = data::MakeWordsLike(SmallOpts(4, 270));
  core::Sdtw engine;
  const auto fx = engine.ExtractFeatures(ds[0]);
  const auto fy = engine.ExtractFeatures(ds[1]);
  const dtw::Band band = engine.BuildBand(ds[0], fx, ds[1], fy);
  const double banded = dtw::DtwBanded(ds[0], ds[1], band).distance;
  const double combined =
      dtw::MultiscaleDtwConstrained(ds[0], ds[1], band).distance;
  EXPECT_TRUE(std::isfinite(combined));
  EXPECT_GE(combined, banded - 1e-9);
}

TEST(PipelineTest, DescriptorLengthSweepStaysFinite) {
  const ts::Dataset ds = data::MakeGunLike(SmallOpts(4, 150));
  for (std::size_t len : {4u, 16u, 64u, 128u}) {
    core::SdtwOptions opt;
    opt.extractor.descriptor_length = len;
    core::Sdtw engine(opt);
    const double d = engine.Compare(ds[0], ds[1]).distance;
    EXPECT_TRUE(std::isfinite(d)) << len;
  }
}

TEST(PipelineTest, FeatureReuseAcrossComparisons) {
  // Extract once, compare against many: results identical to fresh
  // extraction every time (paper §3.4's one-time extraction).
  const ts::Dataset ds = data::MakeTraceLike(SmallOpts(5, 150));
  core::Sdtw engine;
  const auto f0 = engine.ExtractFeatures(ds[0]);
  for (std::size_t j = 1; j < ds.size(); ++j) {
    const double cached =
        engine.Compare(ds[0], f0, ds[j], engine.ExtractFeatures(ds[j]))
            .distance;
    const double fresh = engine.Compare(ds[0], ds[j]).distance;
    EXPECT_DOUBLE_EQ(cached, fresh) << j;
  }
}

TEST(PipelineTest, MatchingTimeSmallFractionOfTotal) {
  // Figure 17's shape: matching + inconsistency removal is a small share
  // of the pairwise cost relative to the DP on the paper-size sets.
  const ts::Dataset ds = data::MakeTraceLike(SmallOpts(8, 275));
  core::SdtwOptions opt;
  opt.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  const eval::DistanceMatrix m = eval::ComputeSdtwMatrix(ds, opt);
  EXPECT_LT(m.matching_seconds, m.dp_seconds * 2.0);
}

TEST(PipelineTest, UcrRoundTripFeedsPipeline) {
  // Write a generated set in UCR format, read it back, run sDTW on it.
  const ts::Dataset ds = data::MakeGunLike(SmallOpts(4, 100));
  std::ostringstream out;
  ts::WriteUcr(out, ds);
  std::istringstream in(out.str());
  const ts::Dataset back = ts::ReadUcr(in, "roundtrip");
  ASSERT_EQ(back.size(), 4u);
  core::Sdtw engine;
  EXPECT_TRUE(std::isfinite(engine.Compare(back[0], back[1]).distance));
}

}  // namespace
}  // namespace sdtw
