// Cross-module system tests: persistence feeding the retrieval engine,
// constraint bands feeding the multiscale solver, subsequence search over
// generated data, and the config parser driving the full pipeline.

#include <cmath>
#include <gtest/gtest.h>

#include <sstream>

#include "core/config.h"
#include "core/sdtw.h"
#include "data/extra_families.h"
#include "data/generators.h"
#include "dtw/multiscale.h"
#include "dtw/path_analysis.h"
#include "dtw/subsequence.h"
#include "eval/confusion.h"
#include "retrieval/feature_store.h"
#include "retrieval/knn.h"
#include "retrieval/parallel.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace sdtw {
namespace {

TEST(SystemTest, ConfigDrivenPipelineMatchesHandBuilt) {
  data::GeneratorOptions gopt;
  gopt.num_series = 6;
  gopt.length = 120;
  const ts::Dataset ds = data::MakeTraceLike(gopt);

  const auto parsed = core::ParseOptions(
      "constraint=ac2,aw descriptor=32 tau_d=1.3");
  ASSERT_TRUE(parsed.has_value());
  core::SdtwOptions manual;
  manual.constraint.type = core::ConstraintType::kAdaptiveCoreAdaptiveWidth;
  manual.constraint.width_average_radius = 1;
  manual.extractor.descriptor_length = 32;
  manual.matching.tau_distinct = 1.3;
  core::Sdtw a(*parsed), b(manual);
  for (std::size_t j = 1; j < ds.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.Compare(ds[0], ds[j]).distance,
                     b.Compare(ds[0], ds[j]).distance);
  }
}

TEST(SystemTest, PersistedFeaturesDriveKnnIdentically) {
  data::GeneratorOptions gopt;
  gopt.num_series = 10;
  gopt.length = 100;
  const ts::Dataset ds = data::MakeGunLike(gopt);

  // Extract, persist, restore.
  core::Sdtw engine;
  retrieval::FeatureSets features;
  for (const auto& s : ds) features.push_back(engine.ExtractFeatures(s));
  std::ostringstream out;
  retrieval::WriteFeatures(out, features);
  std::istringstream in(out.str());
  const auto restored = retrieval::ReadFeatures(in);
  ASSERT_TRUE(restored.has_value());

  // Pairwise matrices from fresh vs restored features agree exactly.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      const double fresh =
          engine.Compare(ds[i], features[i], ds[j], features[j]).distance;
      const double persisted =
          engine.Compare(ds[i], (*restored)[i], ds[j], (*restored)[j])
              .distance;
      EXPECT_DOUBLE_EQ(fresh, persisted);
    }
  }
}

TEST(SystemTest, ParallelSdtwMatrixMatchesSequential) {
  data::GeneratorOptions gopt;
  gopt.num_series = 8;
  gopt.length = 90;
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  core::Sdtw engine;
  std::vector<std::vector<sift::Keypoint>> features;
  for (const auto& s : ds) features.push_back(engine.ExtractFeatures(s));
  auto dist = [&](std::size_t i, std::size_t j) {
    return engine.Compare(ds[i], features[i], ds[j], features[j]).distance;
  };
  const auto seq = retrieval::ParallelPairwiseMatrix(ds.size(), dist, 1);
  const auto par = retrieval::ParallelPairwiseMatrix(ds.size(), dist, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t k = 0; k < seq.size(); ++k) {
    EXPECT_DOUBLE_EQ(seq[k], par[k]) << k;
  }
}

TEST(SystemTest, SdtwBandTightensMultiscaleSearch) {
  data::GeneratorOptions gopt;
  gopt.num_series = 2;
  gopt.length = 256;
  const ts::Dataset ds = data::MakeWordsLike(gopt);
  core::Sdtw engine;
  const auto fx = engine.ExtractFeatures(ds[0]);
  const auto fy = engine.ExtractFeatures(ds[1]);
  const dtw::Band band = engine.BuildBand(ds[0], fx, ds[1], fy);
  const dtw::DtwResult plain = dtw::MultiscaleDtw(ds[0], ds[1]);
  const dtw::DtwResult constrained =
      dtw::MultiscaleDtwConstrained(ds[0], ds[1], band);
  EXPECT_TRUE(std::isfinite(constrained.distance));
  // The combined search never fills more cells than the unconstrained one.
  EXPECT_LE(constrained.cells_filled, plain.cells_filled);
}

TEST(SystemTest, SubsequenceSearchOnGeneratedTransients) {
  // Locate one TraceLike transient inside a longer series of another
  // instance of the same class.
  data::GeneratorOptions gopt;
  gopt.num_series = 8;
  gopt.length = 200;
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  // Use the middle chunk (holding the transient) of series 0 as the query.
  const ts::TimeSeries query = ds[0].Slice(60, 80);
  const auto same_class = ds.IndicesOfClass(ds[0].label());
  ASSERT_GE(same_class.size(), 2u);
  const std::size_t other = same_class[1];
  const dtw::SubsequenceMatch m =
      dtw::FindBestSubsequence(query, ds[other]);
  EXPECT_TRUE(std::isfinite(m.distance));
  // The matched window must be a proper sub-window, not the whole series.
  EXPECT_LT(m.end - m.begin + 1, ds[other].size());
}

TEST(SystemTest, ConfusionMatrixAgreesWithKnnAccuracy) {
  data::GeneratorOptions gopt;
  gopt.num_series = 18;
  gopt.length = 90;
  const ts::Dataset ds = data::MakeCbf(gopt);
  retrieval::KnnEngine engine;
  engine.Index(ds);
  eval::ConfusionMatrix cm;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    cm.Add(ds[i].label(), engine.Classify(ds[i], 1, i));
  }
  EXPECT_NEAR(cm.Accuracy(), engine.LeaveOneOutAccuracy(1), 1e-12);
  EXPECT_EQ(cm.total(), ds.size());
}

TEST(SystemTest, ObservedCoreFollowsAdaptiveCorePrediction) {
  // On a warped copy, the adaptive core should predict the observed core
  // (mean matched column of the true optimal path) better than the
  // diagonal does.
  ts::Rng rng(31);
  ts::TimeSeries x =
      ts::ZNormalize(data::patterns::RandomSmooth(180, 10, rng));
  data::DeformationOptions deform;
  deform.warp_strength = 0.35;
  deform.shift_fraction = 0.08;
  deform.noise_sigma = 0.0;
  const ts::TimeSeries y = ts::ZNormalize(data::Deform(x, deform, rng));

  const dtw::DtwResult exact = dtw::Dtw(x, y);
  const std::vector<double> observed =
      dtw::ObservedCore(exact.path, x.size());

  core::Sdtw engine;
  const core::SdtwResult r = engine.Compare(x, y);
  const std::vector<double> predicted =
      core::AdaptiveCore(x.size(), y.size(), r.intervals);
  const std::vector<double> diagonal =
      core::DiagonalCore(x.size(), y.size());

  auto mean_abs_err = [&observed](const std::vector<double>& core) {
    double sum = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
      sum += std::abs(core[i] - observed[i]);
    }
    return sum / static_cast<double>(observed.size());
  };
  // Only meaningful when alignments were actually found.
  if (!r.alignments.empty()) {
    EXPECT_LE(mean_abs_err(predicted), mean_abs_err(diagonal) + 1.0);
  }
}

}  // namespace
}  // namespace sdtw
