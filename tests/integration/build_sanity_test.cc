// Build-sanity smoke test: links the whole sdtw library and round-trips one
// end-to-end pipeline (generate -> extract salient features -> sDTW distance
// -> 1-NN classify) so future link regressions fail fast.

#include <gtest/gtest.h>

#include "core/sdtw.h"
#include "data/generators.h"
#include "retrieval/knn.h"
#include "ts/time_series.h"

namespace sdtw {
namespace {

TEST(BuildSanityTest, EndToEndPipelineLinksAndRuns) {
  // 1. Generate a small labelled data set.
  data::GeneratorOptions gen;
  gen.num_series = 12;
  gen.seed = 42;
  const ts::Dataset dataset = data::MakeGunLike(gen);
  ASSERT_EQ(dataset.size(), 12u);

  // 2. Extract salient features and compute an sDTW distance.
  core::Sdtw engine;
  const auto fx = engine.ExtractFeatures(dataset[0]);
  const auto fy = engine.ExtractFeatures(dataset[1]);
  const core::SdtwResult r =
      engine.Compare(dataset[0], fx, dataset[1], fy);
  EXPECT_GE(r.distance, 0.0);
  EXPECT_TRUE(std::isfinite(r.distance));

  // 3. 1-NN classification over the indexed set (leave-one-out).
  retrieval::KnnEngine knn;
  knn.Index(dataset);
  ASSERT_EQ(knn.size(), dataset.size());
  const int predicted = knn.Classify(dataset[0], 1, 0);
  EXPECT_GE(predicted, 0);
  const double accuracy = knn.LeaveOneOutAccuracy(1);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

}  // namespace
}  // namespace sdtw
