#include "ts/transforms.h"

#include <cmath>
#include <gtest/gtest.h>

#include "ts/stats.h"

namespace sdtw {
namespace ts {
namespace {

TEST(TransformsTest, ZNormalizeMeanAndVariance) {
  TimeSeries s({1.0, 2.0, 3.0, 4.0, 5.0});
  const TimeSeries z = ZNormalize(s);
  const Summary sum = Summarize(z);
  EXPECT_NEAR(sum.mean, 0.0, 1e-12);
  EXPECT_NEAR(sum.stddev, 1.0, 1e-12);
}

TEST(TransformsTest, ZNormalizeConstantSeriesCentresOnly) {
  TimeSeries s = TimeSeries::Constant(4, 7.0);
  const TimeSeries z = ZNormalize(s);
  for (double v : z) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(TransformsTest, ZNormalizePreservesLabel) {
  TimeSeries s({1.0, 2.0}, 4);
  EXPECT_EQ(ZNormalize(s).label(), 4);
}

TEST(TransformsTest, MinMaxScaleRange) {
  TimeSeries s({2.0, 4.0, 6.0});
  const TimeSeries m = MinMaxScale(s, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_DOUBLE_EQ(m[1], 0.5);
  EXPECT_DOUBLE_EQ(m[2], 1.0);
}

TEST(TransformsTest, MinMaxScaleConstantMapsToLo) {
  TimeSeries s = TimeSeries::Constant(3, 5.0);
  const TimeSeries m = MinMaxScale(s, -1.0, 1.0);
  for (double v : m) EXPECT_DOUBLE_EQ(v, -1.0);
}

TEST(TransformsTest, ShiftAndScale) {
  TimeSeries s({1.0, -1.0});
  const TimeSeries sh = Shift(s, 2.0);
  EXPECT_DOUBLE_EQ(sh[0], 3.0);
  EXPECT_DOUBLE_EQ(sh[1], 1.0);
  const TimeSeries sc = Scale(s, -2.0);
  EXPECT_DOUBLE_EQ(sc[0], -2.0);
  EXPECT_DOUBLE_EQ(sc[1], 2.0);
}

TEST(TransformsTest, ResampleIdentityLength) {
  TimeSeries s({0.0, 1.0, 2.0, 3.0});
  const TimeSeries r = Resample(s, 4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(r[i], s[i], 1e-12);
}

TEST(TransformsTest, ResampleUpscalesLinearly) {
  TimeSeries s({0.0, 2.0});
  const TimeSeries r = Resample(s, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_NEAR(r[1], 1.0, 1e-12);
}

TEST(TransformsTest, ResampleEndpointsPreserved) {
  TimeSeries s({5.0, 1.0, 9.0});
  const TimeSeries r = Resample(s, 7);
  EXPECT_NEAR(r.front(), 5.0, 1e-12);
  EXPECT_NEAR(r.back(), 9.0, 1e-12);
}

TEST(TransformsTest, ResampleToOne) {
  TimeSeries s({5.0, 1.0});
  const TimeSeries r = Resample(s, 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 5.0);
}

TEST(TransformsTest, PaaAverages) {
  TimeSeries s({1.0, 3.0, 5.0, 7.0});
  const TimeSeries p = Paa(s, 2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 2.0);
  EXPECT_DOUBLE_EQ(p[1], 6.0);
}

TEST(TransformsTest, PaaMoreSegmentsThanSamplesIsIdentity) {
  TimeSeries s({1.0, 2.0});
  const TimeSeries p = Paa(s, 5);
  EXPECT_EQ(p.size(), 2u);
}

TEST(TransformsTest, PaaUnevenSegments) {
  TimeSeries s({1.0, 2.0, 3.0, 4.0, 5.0});
  const TimeSeries p = Paa(s, 2);
  ASSERT_EQ(p.size(), 2u);
  // Segments [0,2) and [2,5): means 1.5 and 4.
  EXPECT_DOUBLE_EQ(p[0], 1.5);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
}

TEST(TransformsTest, WarpTimeIdentity) {
  TimeSeries s({0.0, 1.0, 4.0, 9.0});
  const TimeSeries w = WarpTime(s, 4, [](double i) { return i; });
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(w[i], s[i], 1e-12);
}

TEST(TransformsTest, WarpTimeStretch) {
  TimeSeries s({0.0, 2.0});
  const TimeSeries w = WarpTime(s, 3, [](double i) { return i / 2.0; });
  ASSERT_EQ(w.size(), 3u);
  EXPECT_NEAR(w[1], 1.0, 1e-12);
}

TEST(TransformsTest, WarpTimeClampsOutOfRange) {
  TimeSeries s({1.0, 2.0});
  const TimeSeries w = WarpTime(s, 2, [](double i) { return i * 100.0; });
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(TransformsTest, DiffBasic) {
  TimeSeries s({1.0, 4.0, 2.0});
  const TimeSeries d = Diff(s);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], -2.0);
}

TEST(TransformsTest, DiffOfSingleIsEmpty) {
  EXPECT_TRUE(Diff(TimeSeries({1.0})).empty());
}

TEST(TransformsTest, MovingAverageSmoothsConstant) {
  TimeSeries s = TimeSeries::Constant(10, 3.0);
  const TimeSeries m = MovingAverage(s, 2);
  for (double v : m) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(TransformsTest, MovingAverageReducesVariance) {
  TimeSeries s({1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0});
  const TimeSeries m = MovingAverage(s, 1);
  EXPECT_LT(Summarize(m).stddev, Summarize(s).stddev);
}

TEST(TransformsTest, ReverseRoundTrips) {
  TimeSeries s({1.0, 2.0, 3.0});
  EXPECT_EQ(Reverse(Reverse(s)), s);
  EXPECT_DOUBLE_EQ(Reverse(s)[0], 3.0);
}

TEST(TransformsTest, ConcatLengthsAndOrder) {
  TimeSeries a({1.0, 2.0}, 1);
  TimeSeries b({3.0});
  const TimeSeries c = Concat(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
  EXPECT_EQ(c.label(), 1);
}

}  // namespace
}  // namespace ts
}  // namespace sdtw
