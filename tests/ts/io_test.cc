#include "ts/io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace sdtw {
namespace ts {
namespace {

TEST(IoTest, ParseUcrLineCommaSeparated) {
  const auto s = ParseUcrLine("2,1.5,2.5,3.5");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->label(), 2);
  ASSERT_EQ(s->size(), 3u);
  EXPECT_DOUBLE_EQ((*s)[0], 1.5);
  EXPECT_DOUBLE_EQ((*s)[2], 3.5);
}

TEST(IoTest, ParseUcrLineWhitespaceSeparated) {
  const auto s = ParseUcrLine("  1   0.5  -0.5 ");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->label(), 1);
  ASSERT_EQ(s->size(), 2u);
  EXPECT_DOUBLE_EQ((*s)[1], -0.5);
}

TEST(IoTest, ParseUcrLineBlankReturnsNullopt) {
  EXPECT_FALSE(ParseUcrLine("").has_value());
  EXPECT_FALSE(ParseUcrLine("   ").has_value());
}

TEST(IoTest, ParseUcrLineLabelOnlyReturnsNullopt) {
  EXPECT_FALSE(ParseUcrLine("3").has_value());
}

TEST(IoTest, ParseUcrLineGarbageReturnsNullopt) {
  EXPECT_FALSE(ParseUcrLine("1,2.0,abc").has_value());
}

TEST(IoTest, ParseUcrLineScientificNotation) {
  const auto s = ParseUcrLine("0,1e-3,2E2");
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ((*s)[0], 0.001);
  EXPECT_DOUBLE_EQ((*s)[1], 200.0);
}

TEST(IoTest, ReadUcrMultipleLines) {
  std::istringstream in("1,1,2\n2,3,4\n\n1,5,6\n");
  const Dataset ds = ReadUcr(in, "demo");
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds[0].label(), 1);
  EXPECT_EQ(ds[1].label(), 2);
  EXPECT_EQ(ds.name(), "demo");
  EXPECT_EQ(ds[2].name(), "demo/2");
}

TEST(IoTest, WriteReadRoundTrip) {
  Dataset ds("rt");
  ds.Add(TimeSeries({1.25, -2.5}, 3));
  ds.Add(TimeSeries({0.0, 7.0}, 1));
  std::ostringstream out;
  WriteUcr(out, ds);
  std::istringstream in(out.str());
  const Dataset back = ReadUcr(in, "rt");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].label(), 3);
  EXPECT_DOUBLE_EQ(back[0][1], -2.5);
  EXPECT_EQ(back[1].label(), 1);
}

TEST(IoTest, ReadUcrFileMissingReturnsNullopt) {
  EXPECT_FALSE(ReadUcrFile("/nonexistent/path/data.tsv").has_value());
}

TEST(IoTest, WriteCsvRow) {
  std::ostringstream out;
  WriteCsvRow(out, TimeSeries({1.0, 2.5}));
  EXPECT_EQ(out.str(), "1,2.5\n");
}

}  // namespace
}  // namespace ts
}  // namespace sdtw
