#include "ts/stats.h"

#include <cmath>
#include <gtest/gtest.h>

namespace sdtw {
namespace ts {
namespace {

TEST(StatsTest, SummarizeEmpty) {
  const Summary s = Summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, SummarizeSingle) {
  const std::vector<double> v{3.0};
  const Summary s = Summarize(std::span<const double>(v));
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatsTest, SummarizeKnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = Summarize(std::span<const double>(v));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(StatsTest, MeanAndStdDev) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(Mean(std::span<const double>(v)), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(std::span<const double>(v)), 1.0);
}

TEST(StatsTest, MeanAbs) {
  const std::vector<double> v{-2.0, 2.0, -4.0};
  EXPECT_NEAR(MeanAbs(std::span<const double>(v)), 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MeanAbs(std::span<const double>{}), 0.0);
}

TEST(StatsTest, CorrelationPerfect) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 4.0, 6.0};
  EXPECT_NEAR(Correlation(a, b), 1.0, 1e-12);
}

TEST(StatsTest, CorrelationAnti) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(Correlation(a, b), -1.0, 1e-12);
}

TEST(StatsTest, CorrelationZeroVariance) {
  const std::vector<double> a{1.0, 1.0, 1.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Correlation(a, b), 0.0);
}

TEST(StatsTest, CorrelationMismatchedLengths) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(Correlation(a, b), 0.0);
}

TEST(StatsTest, EuclideanDistanceBasic) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(StatsTest, EuclideanDistanceMismatchIsInfinite) {
  const std::vector<double> a{0.0};
  const std::vector<double> b{0.0, 1.0};
  EXPECT_TRUE(std::isinf(EuclideanDistance(a, b)));
}

TEST(StatsTest, EuclideanDistanceSelfIsZero) {
  const std::vector<double> a{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

}  // namespace
}  // namespace ts
}  // namespace sdtw
