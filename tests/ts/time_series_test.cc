#include "ts/time_series.h"

#include <gtest/gtest.h>

namespace sdtw {
namespace ts {
namespace {

TEST(TimeSeriesTest, DefaultIsEmptyAndUnlabelled) {
  TimeSeries s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.has_label());
  EXPECT_EQ(s.label(), -1);
}

TEST(TimeSeriesTest, ConstructFromVector) {
  TimeSeries s({1.0, 2.0, 3.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[2], 3.0);
  EXPECT_DOUBLE_EQ(s.front(), 1.0);
  EXPECT_DOUBLE_EQ(s.back(), 3.0);
}

TEST(TimeSeriesTest, LabelledConstructor) {
  TimeSeries s(std::vector<double>{1.0, 2.0}, 7);
  EXPECT_TRUE(s.has_label());
  EXPECT_EQ(s.label(), 7);
}

TEST(TimeSeriesTest, ZerosAndConstantFactories) {
  const TimeSeries z = TimeSeries::Zeros(5);
  EXPECT_EQ(z.size(), 5u);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
  const TimeSeries c = TimeSeries::Constant(3, 2.5);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(TimeSeriesTest, MutableAccess) {
  TimeSeries s({1.0, 2.0});
  s[1] = 9.0;
  EXPECT_DOUBLE_EQ(s[1], 9.0);
  s.mutable_values().push_back(4.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(TimeSeriesTest, SpanMatchesValues) {
  TimeSeries s({1.0, 2.0, 3.0});
  auto sp = s.span();
  ASSERT_EQ(sp.size(), 3u);
  EXPECT_DOUBLE_EQ(sp[1], 2.0);
}

TEST(TimeSeriesTest, AtThrowsOutOfRange) {
  TimeSeries s({1.0});
  EXPECT_NO_THROW(s.at(0));
  EXPECT_THROW(s.at(1), std::out_of_range);
}

TEST(TimeSeriesTest, SliceBasic) {
  TimeSeries s({0.0, 1.0, 2.0, 3.0, 4.0});
  s.set_label(3);
  const TimeSeries sub = s.Slice(1, 3);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0], 1.0);
  EXPECT_DOUBLE_EQ(sub[2], 3.0);
  EXPECT_EQ(sub.label(), 3);
}

TEST(TimeSeriesTest, SliceClampsAtEnd) {
  TimeSeries s({0.0, 1.0, 2.0});
  const TimeSeries sub = s.Slice(2, 10);
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_DOUBLE_EQ(sub[0], 2.0);
}

TEST(TimeSeriesTest, SliceOutOfRangeIsEmpty) {
  TimeSeries s({0.0, 1.0});
  EXPECT_TRUE(s.Slice(5, 2).empty());
}

TEST(TimeSeriesTest, EqualityIgnoresName) {
  TimeSeries a({1.0, 2.0});
  TimeSeries b({1.0, 2.0});
  b.set_name("other");
  EXPECT_EQ(a, b);
  b.set_label(1);
  EXPECT_FALSE(a == b);
}

TEST(DatasetTest, EmptyByDefault) {
  Dataset ds("x");
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.name(), "x");
  EXPECT_TRUE(ds.Labels().empty());
}

TEST(DatasetTest, LabelsSortedAndDistinct) {
  Dataset ds;
  ds.Add(TimeSeries({1.0}, 2));
  ds.Add(TimeSeries({1.0}, 0));
  ds.Add(TimeSeries({1.0}, 2));
  const std::vector<int> labels = ds.Labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 2);
  EXPECT_EQ(ds.NumClasses(), 2u);
}

TEST(DatasetTest, IndicesOfClass) {
  Dataset ds;
  ds.Add(TimeSeries({1.0}, 1));
  ds.Add(TimeSeries({1.0}, 0));
  ds.Add(TimeSeries({1.0}, 1));
  const auto idx = ds.IndicesOfClass(1);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 2u);
}

TEST(DatasetTest, UnlabelledSeriesExcludedFromLabels) {
  Dataset ds;
  ds.Add(TimeSeries({1.0}));
  EXPECT_TRUE(ds.Labels().empty());
}

TEST(DatasetTest, MaxLength) {
  Dataset ds;
  ds.Add(TimeSeries({1.0, 2.0}));
  ds.Add(TimeSeries({1.0, 2.0, 3.0}));
  EXPECT_EQ(ds.MaxLength(), 3u);
}

}  // namespace
}  // namespace ts
}  // namespace sdtw
