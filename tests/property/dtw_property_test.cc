// Property-based tests on DTW invariants, swept over random inputs with
// parameterized gtest (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <cmath>
#include <gtest/gtest.h>

#include "dtw/dtw.h"
#include "dtw/lower_bounds.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace sdtw {
namespace dtw {
namespace {

struct Sizes {
  std::size_t n;
  std::size_t m;
  std::uint64_t seed;
};

ts::TimeSeries RandomWalk(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.Gaussian(0.0, 0.3);
    v[i] = x;
  }
  return ts::TimeSeries(std::move(v));
}

class DtwPropertyTest : public ::testing::TestWithParam<Sizes> {};

TEST_P(DtwPropertyTest, SymmetryOfDistance) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 1000);
  EXPECT_NEAR(DtwDistance(x, y), DtwDistance(y, x), 1e-9);
}

TEST_P(DtwPropertyTest, NonNegativityAndIdentity) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed);
  EXPECT_GE(DtwDistance(x, RandomWalk(p.m, p.seed + 5)), 0.0);
  EXPECT_NEAR(DtwDistance(x, x), 0.0, 1e-12);
}

TEST_P(DtwPropertyTest, PathIsValidAndCostConsistent) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 1);
  const DtwResult r = Dtw(x, y);
  EXPECT_TRUE(IsValidWarpPath(r.path, p.n, p.m));
  EXPECT_NEAR(PathCost(x, y, r.path), r.distance, 1e-9);
}

TEST_P(DtwPropertyTest, DtwLowerBoundsEuclideanOnEqualLengths) {
  // DTW is the min over all paths including the diagonal path, so it never
  // exceeds the pointwise (L1) cost on equal-length series.
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 2);
  const ts::TimeSeries y = RandomWalk(p.n, p.seed + 3);
  double l1 = 0.0;
  for (std::size_t i = 0; i < p.n; ++i) l1 += std::abs(x[i] - y[i]);
  EXPECT_LE(DtwDistance(x, y), l1 + 1e-9);
}

TEST_P(DtwPropertyTest, BandWideningNeverIncreasesDistance) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 4);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 5);
  double prev = std::numeric_limits<double>::infinity();
  for (double w : {0.05, 0.1, 0.3, 0.6, 1.0, 2.0}) {
    Band band = SakoeChibaBand(p.n, p.m, w);
    const double d = DtwBandedDistance(x, y, band);
    EXPECT_LE(d, prev + 1e-9) << "w=" << w;
    prev = d;
  }
  // w = 2 covers the whole grid, recovering the exact distance.
  EXPECT_NEAR(prev, DtwDistance(x, y), 1e-9);
}

TEST_P(DtwPropertyTest, BandedNeverBelowOptimal) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 6);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 7);
  const double optimal = DtwDistance(x, y);
  for (double w : {0.0, 0.1, 0.4}) {
    const Band band = SakoeChibaBand(p.n, p.m, w);
    EXPECT_GE(DtwBandedDistance(x, y, band), optimal - 1e-9);
  }
}

TEST_P(DtwPropertyTest, ItakuraBandGivesFiniteDistance) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 8);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 9);
  const Band band = ItakuraBand(p.n, p.m, 2.0);
  EXPECT_TRUE(std::isfinite(DtwBandedDistance(x, y, band)));
}

TEST_P(DtwPropertyTest, LbKimBoundsOptimal) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 10);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 11);
  EXPECT_LE(LbKim(x, y), DtwDistance(x, y) + 1e-9);
}

TEST_P(DtwPropertyTest, ReversalInvariance) {
  // DTW(x, y) == DTW(reverse(x), reverse(y)) — the grid is mirrored.
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 12);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 13);
  EXPECT_NEAR(DtwDistance(x, y),
              DtwDistance(ts::Reverse(x), ts::Reverse(y)), 1e-9);
}

TEST_P(DtwPropertyTest, ConstantShiftOfBothSeriesInvariant) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 14);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 15);
  EXPECT_NEAR(DtwDistance(x, y),
              DtwDistance(ts::Shift(x, 5.0), ts::Shift(y, 5.0)), 1e-9);
}

TEST_P(DtwPropertyTest, ScalingScalesAbsoluteCost) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 16);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 17);
  EXPECT_NEAR(DtwDistance(ts::Scale(x, 2.0), ts::Scale(y, 2.0)),
              2.0 * DtwDistance(x, y), 1e-6);
}

TEST_P(DtwPropertyTest, EarlyAbandonAgreesWhenNotAbandoning) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 18);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 19);
  const double d = DtwDistance(x, y);
  EXPECT_NEAR(DtwDistanceEarlyAbandon(x, y, d * 2.0 + 1.0), d, 1e-9);
}

TEST_P(DtwPropertyTest, SquaredCostAlsoSymmetricAndBounded) {
  const Sizes p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 20);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 21);
  const double dxy = DtwDistance(x, y, CostKind::kSquared);
  EXPECT_NEAR(dxy, DtwDistance(y, x, CostKind::kSquared), 1e-9);
  const Band full = Band::Full(p.n, p.m);
  DtwOptions opt;
  opt.cost = CostKind::kSquared;
  EXPECT_NEAR(DtwBanded(x, y, full, opt).distance, dxy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, DtwPropertyTest,
    ::testing::Values(Sizes{8, 8, 1}, Sizes{16, 24, 2}, Sizes{31, 17, 3},
                      Sizes{50, 50, 4}, Sizes{64, 100, 5}, Sizes{100, 64, 6},
                      Sizes{128, 128, 7}, Sizes{5, 150, 8}, Sizes{150, 5, 9},
                      Sizes{2, 2, 10}, Sizes{1, 40, 11}, Sizes{40, 1, 12}),
    [](const ::testing::TestParamInfo<Sizes>& info) {
      return "n" + std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dtw
}  // namespace sdtw
