// Equivalence properties of the band-compressed banded DTW kernels:
//  * a full-width band must reproduce full DTW exactly — distance, path,
//    and cells_filled;
//  * narrow bands must be indistinguishable from the previous
//    full-matrix implementation (kept here as the reference);
//  * the rolling distance-only kernel must agree with the path-preserving
//    one, and allocation must track the band, not the grid.
// Swept over random series of lengths 1..64 including n != m edge cases.

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "dtw/dtw.h"
#include "ts/random.h"

namespace sdtw {
namespace dtw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ts::TimeSeries RandomWalk(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.Gaussian(0.0, 0.5);
    v[i] = x;
  }
  return ts::TimeSeries(std::move(v));
}

// The pre-band-compression banded DP, verbatim: materialises the full
// (n+1) x (m+1) matrix and backtracks through it. The storage rewrite must
// be observationally identical to this.
DtwResult ReferenceBanded(const ts::TimeSeries& x, const ts::TimeSeries& y,
                          const Band& band, bool want_path, CostKind cost) {
  DtwResult result;
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  if (n == 0 || m == 0 || band.n() != n || band.m() != m) return result;
  const std::size_t stride = m + 1;
  std::vector<double> d((n + 1) * stride, kInf);
  d[0] = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const BandRow& r = band.row(i - 1);
    if (r.lo > r.hi) continue;
    const double xi = x[i - 1];
    double* row = d.data() + i * stride;
    const double* prev = d.data() + (i - 1) * stride;
    for (std::size_t j = r.lo + 1; j <= r.hi + 1 && j <= m; ++j) {
      const double best = std::min({prev[j], row[j - 1], prev[j - 1]});
      if (!std::isfinite(best)) continue;
      row[j] = best + EvalCost(cost, xi, y[j - 1]);
      ++cells;
    }
  }
  result.cells_filled = cells;
  result.distance = d[n * stride + m];
  if (want_path && std::isfinite(result.distance)) {
    auto at = [&](std::size_t i, std::size_t j) { return d[i * stride + j]; };
    std::size_t i = n;
    std::size_t j = m;
    result.path.emplace_back(i - 1, j - 1);
    while (i > 1 || j > 1) {
      double best = kInf;
      int move = 0;
      if (i > 1 && j > 1 && at(i - 1, j - 1) < best) {
        best = at(i - 1, j - 1);
        move = 0;
      }
      if (i > 1 && at(i - 1, j) < best) {
        best = at(i - 1, j);
        move = 1;
      }
      if (j > 1 && at(i, j - 1) < best) {
        best = at(i, j - 1);
        move = 2;
      }
      if (!std::isfinite(best)) {
        result.path.clear();
        break;
      }
      if (move == 0) {
        --i;
        --j;
      } else if (move == 1) {
        --i;
      } else {
        --j;
      }
      result.path.emplace_back(i - 1, j - 1);
    }
    std::reverse(result.path.begin(), result.path.end());
  }
  return result;
}

struct Lengths {
  std::size_t n;
  std::size_t m;
  std::uint64_t seed;
};

class BandedEquivalenceTest : public ::testing::TestWithParam<Lengths> {};

TEST_P(BandedEquivalenceTest, FullWidthBandMatchesFullDtw) {
  const Lengths p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 100);
  // Radius >= max(n, m): every grid cell is in-band.
  for (const Band& band :
       {Band::Full(p.n, p.m), SakoeChibaBand(p.n, p.m, 2.0)}) {
    const DtwResult full = Dtw(x, y);
    const DtwResult banded = DtwBanded(x, y, band);
    EXPECT_DOUBLE_EQ(banded.distance, full.distance);
    EXPECT_EQ(banded.path, full.path);
    EXPECT_EQ(banded.cells_filled, full.cells_filled);
    EXPECT_EQ(banded.cells_filled, p.n * p.m);
  }
}

TEST_P(BandedEquivalenceTest, NarrowBandsMatchReferenceImplementation) {
  const Lengths p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 1);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 101);
  std::vector<Band> bands;
  for (double w : {0.0, 0.08, 0.25}) {
    bands.push_back(SakoeChibaBand(p.n, p.m, w));
  }
  bands.push_back(ItakuraBand(p.n, p.m, 2.0));
  for (CostKind cost : {CostKind::kAbsolute, CostKind::kSquared}) {
    DtwOptions opt;
    opt.cost = cost;
    for (const Band& band : bands) {
      const DtwResult ref = ReferenceBanded(x, y, band, true, cost);
      const DtwResult got = DtwBanded(x, y, band, opt);
      EXPECT_DOUBLE_EQ(got.distance, ref.distance);
      EXPECT_EQ(got.path, ref.path);
      EXPECT_EQ(got.cells_filled, ref.cells_filled);
    }
  }
}

TEST_P(BandedEquivalenceTest, RollingDistanceMatchesPathVariant) {
  const Lengths p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 2);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 102);
  for (double w : {0.0, 0.1, 0.5}) {
    const Band band = SakoeChibaBand(p.n, p.m, w);
    const DtwResult withpath = DtwBanded(x, y, band);
    EXPECT_DOUBLE_EQ(DtwBandedDistance(x, y, band), withpath.distance);
    // A threshold above the distance must not abandon.
    EXPECT_DOUBLE_EQ(
        DtwBandedDistanceEarlyAbandon(x, y, band, withpath.distance + 1.0),
        withpath.distance);
    // Distance-only mode fills the same cells as the path mode.
    DtwOptions no_path;
    no_path.want_path = false;
    const DtwResult rolling = DtwBanded(x, y, band, no_path);
    EXPECT_DOUBLE_EQ(rolling.distance, withpath.distance);
    EXPECT_EQ(rolling.cells_filled, withpath.cells_filled);
    EXPECT_TRUE(rolling.path.empty());
  }
}

TEST_P(BandedEquivalenceTest, AllocationTracksBandNotGrid) {
  const Lengths p = GetParam();
  const ts::TimeSeries x = RandomWalk(p.n, p.seed + 3);
  const ts::TimeSeries y = RandomWalk(p.m, p.seed + 103);
  const Band band = SakoeChibaBand(p.n, p.m, 0.1);
  std::size_t max_width = 0;
  for (std::size_t i = 0; i < band.n(); ++i) {
    max_width = std::max(max_width, band.row(i).width());
  }
  // Path-preserving: exactly the in-band cells plus the origin cell.
  const DtwResult withpath = DtwBanded(x, y, band);
  EXPECT_EQ(withpath.cells_allocated, band.CellCount() + 1);
  // Distance-only: two rolling rows of the widest band row.
  DtwOptions no_path;
  no_path.want_path = false;
  const DtwResult rolling = DtwBanded(x, y, band, no_path);
  EXPECT_LE(rolling.cells_allocated, 2 * std::max<std::size_t>(max_width, 1));
}

INSTANTIATE_TEST_SUITE_P(
    LengthSweep, BandedEquivalenceTest,
    ::testing::Values(Lengths{1, 1, 1}, Lengths{1, 7, 2}, Lengths{7, 1, 3},
                      Lengths{2, 2, 4}, Lengths{2, 64, 5}, Lengths{64, 2, 6},
                      Lengths{5, 9, 7}, Lengths{16, 16, 8},
                      Lengths{17, 33, 9}, Lengths{33, 17, 10},
                      Lengths{31, 29, 11}, Lengths{48, 64, 12},
                      Lengths{64, 48, 13}, Lengths{64, 64, 14}),
    [](const ::testing::TestParamInfo<Lengths>& info) {
      return "n" + std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m) + "_s" +
             std::to_string(info.param.seed);
    });

// Infeasible bands (gaps the DP cannot bridge) must behave exactly like
// the reference implementation too: +inf distance, empty path.
TEST(BandedEquivalenceEdgeTest, InfeasibleBandMatchesReference) {
  const ts::TimeSeries x = RandomWalk(6, 42);
  const ts::TimeSeries y = RandomWalk(6, 43);
  // A band with a hard horizontal gap: rows 0-2 stuck at columns [0,1],
  // rows 3-5 at columns [4,5] — no monotone step connects column 1 to 4.
  std::vector<BandRow> rows(6);
  for (std::size_t i = 0; i < 3; ++i) rows[i] = BandRow{0, 1};
  for (std::size_t i = 3; i < 6; ++i) rows[i] = BandRow{4, 5};
  const Band band = Band::FromRows(std::move(rows), 6);
  const DtwResult ref =
      ReferenceBanded(x, y, band, true, CostKind::kAbsolute);
  const DtwResult got = DtwBanded(x, y, band);
  EXPECT_DOUBLE_EQ(got.distance, ref.distance);
  EXPECT_TRUE(std::isinf(got.distance));
  EXPECT_EQ(got.path, ref.path);
  EXPECT_EQ(got.cells_filled, ref.cells_filled);
  EXPECT_DOUBLE_EQ(DtwBandedDistance(x, y, band), ref.distance);
}

// Bands with inverted (empty) rows — produced by IntersectWith before
// MakeFeasible — must also match the reference.
TEST(BandedEquivalenceEdgeTest, EmptyRowsMatchReference) {
  const ts::TimeSeries x = RandomWalk(5, 44);
  const ts::TimeSeries y = RandomWalk(5, 45);
  std::vector<BandRow> rows(5, BandRow{0, 4});
  rows[2] = BandRow{3, 1};  // inverted: stores nothing
  const Band band = Band::FromRows(std::move(rows), 5);
  const DtwResult ref =
      ReferenceBanded(x, y, band, true, CostKind::kAbsolute);
  const DtwResult got = DtwBanded(x, y, band);
  EXPECT_DOUBLE_EQ(got.distance, ref.distance);
  EXPECT_EQ(got.path, ref.path);
  EXPECT_EQ(got.cells_filled, ref.cells_filled);
  EXPECT_DOUBLE_EQ(DtwBandedDistance(x, y, band), ref.distance);
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
