// Property-based tests over the retrieval engine and subsequence search,
// parameterized over data profiles and engine configurations.

#include <cmath>
#include <gtest/gtest.h>

#include "data/extra_families.h"
#include "data/generators.h"
#include "dtw/subsequence.h"
#include "retrieval/batch.h"
#include "retrieval/feature_store.h"
#include "retrieval/knn.h"

namespace sdtw {
namespace retrieval {
namespace {

struct EngineParam {
  DistanceKind distance;
  bool lb_kim;
  bool lb_keogh;
  bool early_abandon;
  const char* dataset;
};

ts::Dataset MakeSet(const char* name) {
  data::GeneratorOptions opt;
  opt.num_series = 14;
  opt.length = 80;
  if (std::string(name) == "cbf") return data::MakeCbf(opt);
  if (std::string(name) == "twopatterns") return data::MakeTwoPatterns(opt);
  return data::MakeByName(name, opt);
}

class RetrievalPropertyTest : public ::testing::TestWithParam<EngineParam> {};

TEST_P(RetrievalPropertyTest, QueriesReturnSortedFiniteHits) {
  const EngineParam p = GetParam();
  KnnOptions opt;
  opt.distance = p.distance;
  opt.use_lb_kim = p.lb_kim;
  opt.use_lb_keogh = p.lb_keogh;
  opt.use_early_abandon = p.early_abandon;
  KnnEngine engine(opt);
  const ts::Dataset ds = MakeSet(p.dataset);
  engine.Index(ds);
  for (std::size_t q = 0; q < 4; ++q) {
    const auto hits = engine.Query(ds[q], 4, q);
    ASSERT_EQ(hits.size(), 4u);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_TRUE(std::isfinite(hits[i].distance));
      EXPECT_NE(hits[i].index, q);
      if (i > 0) {
        EXPECT_GE(hits[i].distance, hits[i - 1].distance);
      }
    }
  }
}

TEST_P(RetrievalPropertyTest, TopOneIsGlobalMinimum) {
  const EngineParam p = GetParam();
  if (p.distance == DistanceKind::kEuclidean) return;  // covered in unit
  KnnOptions opt;
  opt.distance = p.distance;
  opt.use_lb_kim = p.lb_kim;
  opt.use_lb_keogh = p.lb_keogh;
  opt.use_early_abandon = p.early_abandon;
  KnnEngine engine(opt);
  // Reference engine with all pruning off.
  KnnOptions plain = opt;
  plain.use_lb_kim = false;
  plain.use_lb_keogh = false;
  plain.use_early_abandon = false;
  KnnEngine reference(plain);
  const ts::Dataset ds = MakeSet(p.dataset);
  engine.Index(ds);
  reference.Index(ds);
  for (std::size_t q = 0; q < 4; ++q) {
    const auto fast = engine.Query(ds[q], 1, q);
    const auto ref = reference.Query(ds[q], 1, q);
    ASSERT_EQ(fast.size(), 1u);
    ASSERT_EQ(ref.size(), 1u);
    EXPECT_NEAR(fast[0].distance, ref[0].distance, 1e-9) << q;
  }
}

TEST_P(RetrievalPropertyTest, VisitOrdersBitwiseIdenticalAcrossThreads) {
  // LB-ordered visiting is pure scheduling: over every engine config and
  // data profile of the sweep, batch hit lists must equal the
  // index-ordered ones bit for bit at 1/2/4/8 worker threads.
  const EngineParam p = GetParam();
  KnnOptions opt;
  opt.distance = p.distance;
  opt.use_lb_kim = p.lb_kim;
  opt.use_lb_keogh = p.lb_keogh;
  opt.use_early_abandon = p.early_abandon;
  const ts::Dataset ds = MakeSet(p.dataset);
  opt.visit_order = VisitOrder::kIndexOrder;
  KnnEngine index_engine(opt);
  index_engine.Index(ds);
  opt.visit_order = VisitOrder::kLowerBound;
  KnnEngine lb_engine(opt);
  lb_engine.Index(ds);
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.begin() + 5);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    bopt.chunk_size = 4;
    const auto index_hits =
        BatchKnnEngine(index_engine, bopt).QueryBatch(queries, 4);
    const auto lb_hits =
        BatchKnnEngine(lb_engine, bopt).QueryBatch(queries, 4);
    ASSERT_EQ(index_hits.size(), lb_hits.size());
    for (std::size_t q = 0; q < index_hits.size(); ++q) {
      ASSERT_EQ(lb_hits[q].size(), index_hits[q].size())
          << threads << " " << q;
      for (std::size_t i = 0; i < index_hits[q].size(); ++i) {
        EXPECT_EQ(lb_hits[q][i].index, index_hits[q][i].index)
            << threads << " " << q << " " << i;
        EXPECT_EQ(lb_hits[q][i].distance, index_hits[q][i].distance)
            << threads << " " << q << " " << i;
      }
    }
  }
}

TEST_P(RetrievalPropertyTest, AlignmentRecoveryEqualsDirectComparePaths) {
  // The winners' recovered warp paths must equal what a direct path-mode
  // comparison produces — the abandon-at-known-distance re-run adds no
  // approximation.
  const EngineParam p = GetParam();
  KnnOptions opt;
  opt.distance = p.distance;
  opt.use_lb_kim = p.lb_kim;
  opt.use_lb_keogh = p.lb_keogh;
  opt.use_early_abandon = p.early_abandon;
  KnnEngine engine(opt);
  const ts::Dataset ds = MakeSet(p.dataset);
  engine.Index(ds);
  BatchOptions bopt;
  bopt.num_threads = 4;
  const BatchKnnEngine batch(engine, bopt);
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.begin() + 3);
  std::vector<std::optional<std::size_t>> excludes{0u, 1u, 2u};
  const auto aligned = batch.QueryBatchWithAlignments(queries, 3, excludes);
  core::SdtwOptions path_options = opt.sdtw;
  path_options.dtw.want_path = true;
  const core::Sdtw reference(path_options);
  for (std::size_t q = 0; q < aligned.size(); ++q) {
    for (const AlignedHit& a : aligned[q]) {
      const ts::TimeSeries& target = ds[a.hit.index];
      ASSERT_FALSE(a.path.empty()) << q;
      EXPECT_TRUE(dtw::IsValidWarpPath(a.path, queries[q].size(),
                                       target.size()))
          << q;
      if (p.distance == DistanceKind::kSdtw) {
        const core::SdtwResult direct = reference.Compare(
            queries[q], reference.ExtractFeatures(queries[q]), target,
            reference.ExtractFeatures(target));
        EXPECT_EQ(direct.distance, a.hit.distance) << q;
        EXPECT_EQ(direct.path, a.path) << q;
      } else if (p.distance == DistanceKind::kFullDtw) {
        EXPECT_EQ(dtw::PathCost(queries[q], target, a.path,
                                dtw::CostKind::kAbsolute),
                  a.hit.distance)
            << q;
      }
    }
  }
}

TEST_P(RetrievalPropertyTest, FeatureStoreRoundTripKeepsDistances) {
  const EngineParam p = GetParam();
  if (p.distance != DistanceKind::kSdtw) return;
  const ts::Dataset ds = MakeSet(p.dataset);
  core::Sdtw engine;
  FeatureSets features;
  for (const auto& s : ds) features.push_back(engine.ExtractFeatures(s));
  std::ostringstream out;
  WriteFeatures(out, features);
  std::istringstream in(out.str());
  const auto back = ReadFeatures(in);
  ASSERT_TRUE(back.has_value());
  // Distances computed from restored features are identical.
  for (std::size_t j = 1; j < 4; ++j) {
    const double a =
        engine.Compare(ds[0], features[0], ds[j], features[j]).distance;
    const double b =
        engine.Compare(ds[0], (*back)[0], ds[j], (*back)[j]).distance;
    EXPECT_DOUBLE_EQ(a, b) << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, RetrievalPropertyTest,
    ::testing::Values(
        EngineParam{DistanceKind::kFullDtw, true, true, true, "gun"},
        EngineParam{DistanceKind::kFullDtw, true, false, false, "trace"},
        EngineParam{DistanceKind::kFullDtw, false, true, false, "cbf"},
        EngineParam{DistanceKind::kFullDtw, false, false, true,
                    "twopatterns"},
        EngineParam{DistanceKind::kSdtw, true, false, false, "gun"},
        EngineParam{DistanceKind::kSdtw, false, false, false, "trace"},
        EngineParam{DistanceKind::kSdtw, true, false, false, "50words"}),
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      std::string name =
          info.param.distance == DistanceKind::kFullDtw ? "dtw" : "sdtw";
      name += std::string("_") + info.param.dataset;
      if (info.param.lb_kim) name += "_kim";
      if (info.param.lb_keogh) name += "_keogh";
      if (info.param.early_abandon) name += "_ea";
      return name;
    });

// Subsequence-search property sweep over query/series lengths.
struct SubSizes {
  std::size_t query_len;
  std::size_t series_len;
  std::uint64_t seed;
};

class SubsequencePropertyTest : public ::testing::TestWithParam<SubSizes> {};

TEST_P(SubsequencePropertyTest, MatchWithinBoundsAndBelowGlobal) {
  const SubSizes p = GetParam();
  ts::Rng rng(p.seed);
  const ts::TimeSeries q =
      data::patterns::RandomSmooth(p.query_len, 4, rng);
  const ts::TimeSeries s =
      data::patterns::RandomSmooth(p.series_len, 8, rng);
  const dtw::SubsequenceMatch m = dtw::FindBestSubsequence(q, s);
  EXPECT_TRUE(std::isfinite(m.distance));
  EXPECT_LE(m.begin, m.end);
  EXPECT_LT(m.end, p.series_len);
  EXPECT_LE(m.distance, dtw::Dtw(q, s).distance + 1e-9);
  // Window distance equals the DTW of the window under matched endpoints.
  const ts::TimeSeries window = s.Slice(m.begin, m.end - m.begin + 1);
  EXPECT_LE(m.distance, dtw::Dtw(q, window).distance + 1e-9);
}

TEST_P(SubsequencePropertyTest, PathMonotoneAndAnchored) {
  const SubSizes p = GetParam();
  ts::Rng rng(p.seed + 100);
  const ts::TimeSeries q =
      data::patterns::RandomSmooth(p.query_len, 4, rng);
  const ts::TimeSeries s =
      data::patterns::RandomSmooth(p.series_len, 8, rng);
  const dtw::SubsequenceMatch m = dtw::FindBestSubsequence(q, s);
  ASSERT_FALSE(m.path.empty());
  EXPECT_EQ(m.path.front().first, 0u);
  EXPECT_EQ(m.path.back().first, p.query_len - 1);
  for (std::size_t k = 1; k < m.path.size(); ++k) {
    EXPECT_GE(m.path[k].first, m.path[k - 1].first);
    EXPECT_GE(m.path[k].second, m.path[k - 1].second);
    EXPECT_LE(m.path[k].first - m.path[k - 1].first, 1u);
    EXPECT_LE(m.path[k].second - m.path[k - 1].second, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, SubsequencePropertyTest,
    ::testing::Values(SubSizes{5, 50, 1}, SubSizes{20, 100, 2},
                      SubSizes{30, 30, 3}, SubSizes{40, 400, 4},
                      SubSizes{2, 80, 5}, SubSizes{64, 65, 6}),
    [](const ::testing::TestParamInfo<SubSizes>& info) {
      return "q" + std::to_string(info.param.query_len) + "_s" +
             std::to_string(info.param.series_len);
    });

}  // namespace
}  // namespace retrieval
}  // namespace sdtw
