// Property-based tests on the full sDTW pipeline, swept over constraint
// strategies, descriptor lengths, and data profiles.

#include <cmath>
#include <gtest/gtest.h>

#include "core/sdtw.h"
#include "data/generators.h"
#include "dtw/dtw.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace sdtw {
namespace core {
namespace {

struct PipelineParam {
  ConstraintType type;
  std::size_t descriptor_length;
  std::size_t radius;
  bool symmetric;
};

class SdtwPropertyTest : public ::testing::TestWithParam<PipelineParam> {
 protected:
  SdtwOptions MakeOptions() const {
    const PipelineParam p = GetParam();
    SdtwOptions opt;
    opt.constraint.type = p.type;
    opt.constraint.width_average_radius = p.radius;
    opt.constraint.symmetric = p.symmetric;
    opt.extractor.descriptor_length = p.descriptor_length;
    return opt;
  }
};

ts::TimeSeries Smooth(std::size_t n, std::uint64_t seed, std::size_t k = 12) {
  ts::Rng rng(seed);
  return ts::ZNormalize(data::patterns::RandomSmooth(n, k, rng));
}

TEST_P(SdtwPropertyTest, DistanceFiniteAndUpperBoundsOptimal) {
  Sdtw engine(MakeOptions());
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const ts::TimeSeries x = Smooth(120, 1000 + seed);
    const ts::TimeSeries y = Smooth(140, 2000 + seed);
    const double approx = engine.Compare(x, y).distance;
    EXPECT_TRUE(std::isfinite(approx)) << seed;
    EXPECT_GE(approx, dtw::DtwDistance(x, y) - 1e-9) << seed;
  }
}

TEST_P(SdtwPropertyTest, SelfDistanceZero) {
  Sdtw engine(MakeOptions());
  const ts::TimeSeries x = Smooth(130, 7);
  EXPECT_NEAR(engine.Compare(x, x).distance, 0.0, 1e-9);
}

TEST_P(SdtwPropertyTest, BandAlwaysFeasible) {
  Sdtw engine(MakeOptions());
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const ts::TimeSeries x = Smooth(100, 3000 + seed);
    const ts::TimeSeries y = Smooth(100 + 10 * seed, 4000 + seed);
    const SdtwResult r = engine.Compare(x, y);
    EXPECT_TRUE(r.band.IsFeasible()) << seed;
  }
}

TEST_P(SdtwPropertyTest, DeterministicAcrossRuns) {
  Sdtw engine(MakeOptions());
  const ts::TimeSeries x = Smooth(110, 8);
  const ts::TimeSeries y = Smooth(110, 9);
  EXPECT_DOUBLE_EQ(engine.Compare(x, y).distance,
                   engine.Compare(x, y).distance);
}

TEST_P(SdtwPropertyTest, RobustToConstantInput) {
  Sdtw engine(MakeOptions());
  const ts::TimeSeries flat = ts::TimeSeries::Constant(100, 0.0);
  const ts::TimeSeries x = Smooth(100, 10);
  EXPECT_TRUE(std::isfinite(engine.Compare(flat, x).distance));
  EXPECT_TRUE(std::isfinite(engine.Compare(x, flat).distance));
  EXPECT_NEAR(engine.Compare(flat, flat).distance, 0.0, 1e-12);
}

TEST_P(SdtwPropertyTest, RobustToShortInputs) {
  Sdtw engine(MakeOptions());
  const ts::TimeSeries tiny({0.1, 0.9, 0.2, 0.8});
  const ts::TimeSeries x = Smooth(90, 11);
  EXPECT_TRUE(std::isfinite(engine.Compare(tiny, x).distance));
  EXPECT_TRUE(std::isfinite(engine.Compare(tiny, tiny).distance));
}

TEST_P(SdtwPropertyTest, NoiseInjectionKeepsPipelineAlive) {
  // Failure injection: heavy noise, spikes, NaN-free but extreme values.
  Sdtw engine(MakeOptions());
  ts::Rng rng(12);
  ts::TimeSeries spiky = Smooth(120, 13);
  for (std::size_t i = 0; i < spiky.size(); i += 17) {
    spiky[i] += rng.Coin() ? 50.0 : -50.0;
  }
  const ts::TimeSeries x = Smooth(120, 14);
  const double d = engine.Compare(spiky, x).distance;
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_GE(d, 0.0);
}

TEST_P(SdtwPropertyTest, IntervalsAlwaysTileBothSeries) {
  Sdtw engine(MakeOptions());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const ts::TimeSeries x = Smooth(100, 5000 + seed);
    const ts::TimeSeries y = Smooth(130, 6000 + seed);
    const SdtwResult r = engine.Compare(x, y);
    ASSERT_FALSE(r.intervals.empty());
    EXPECT_EQ(r.intervals.front().begin_x, 0u);
    EXPECT_EQ(r.intervals.back().end_x, 99u);
    EXPECT_EQ(r.intervals.front().begin_y, 0u);
    EXPECT_EQ(r.intervals.back().end_y, 129u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategySweep, SdtwPropertyTest,
    ::testing::Values(
        PipelineParam{ConstraintType::kFixedCoreFixedWidth, 64, 0, false},
        PipelineParam{ConstraintType::kFixedCoreAdaptiveWidth, 64, 0, false},
        PipelineParam{ConstraintType::kAdaptiveCoreFixedWidth, 64, 0, false},
        PipelineParam{ConstraintType::kAdaptiveCoreAdaptiveWidth, 64, 0,
                      false},
        PipelineParam{ConstraintType::kAdaptiveCoreAdaptiveWidth, 64, 1,
                      false},
        PipelineParam{ConstraintType::kAdaptiveCoreAdaptiveWidth, 64, 2,
                      false},
        PipelineParam{ConstraintType::kAdaptiveCoreAdaptiveWidth, 4, 0,
                      false},
        PipelineParam{ConstraintType::kAdaptiveCoreAdaptiveWidth, 128, 0,
                      false},
        PipelineParam{ConstraintType::kAdaptiveCoreFixedWidth, 8, 0, false},
        PipelineParam{ConstraintType::kFixedCoreAdaptiveWidth, 16, 1, false},
        PipelineParam{ConstraintType::kAdaptiveCoreAdaptiveWidth, 64, 0,
                      true},
        PipelineParam{ConstraintType::kAdaptiveCoreFixedWidth, 32, 0, true}),
    [](const ::testing::TestParamInfo<PipelineParam>& info) {
      std::string name;
      switch (info.param.type) {
        case ConstraintType::kFixedCoreFixedWidth:
          name = "fcfw";
          break;
        case ConstraintType::kFixedCoreAdaptiveWidth:
          name = "fcaw";
          break;
        case ConstraintType::kAdaptiveCoreFixedWidth:
          name = "acfw";
          break;
        case ConstraintType::kAdaptiveCoreAdaptiveWidth:
          name = "acaw";
          break;
      }
      name += "_d" + std::to_string(info.param.descriptor_length);
      name += "_r" + std::to_string(info.param.radius);
      if (info.param.symmetric) name += "_sym";
      return name;
    });

// Descriptor-length sweep as its own parameterized suite (Figure 18's axis).
class DescriptorSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DescriptorSweepTest, ExtractionAndMatchingWork) {
  SdtwOptions opt;
  opt.extractor.descriptor_length = GetParam();
  Sdtw engine(opt);
  const ts::TimeSeries x = Smooth(150, 20);
  const auto features = engine.ExtractFeatures(x);
  ASSERT_FALSE(features.empty());
  for (const auto& kp : features) {
    EXPECT_EQ(kp.descriptor.size(), GetParam());
  }
  const ts::TimeSeries y = Smooth(150, 21);
  EXPECT_TRUE(std::isfinite(engine.Compare(x, y).distance));
}

INSTANTIATE_TEST_SUITE_P(Fig18Lengths, DescriptorSweepTest,
                         ::testing::Values(4, 8, 16, 32, 64, 128),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "len" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace core
}  // namespace sdtw
