// Bitwise-equivalence properties of the two-pass banded row kernel
// (dtw/row_kernel.h) against the retained scalar reference:
//  * FillBandRowTwoPass must reproduce FillBandRowScalar bit for bit —
//    cell values, row minimum, and cell count — across random window
//    shapes: overlapping, disjoint, shifted past the guard pads (the
//    scalar fallback), empty predecessor windows, rows narrower than one
//    SIMD vector, widths straddling the 4-lane groups and the 8-byte
//    flag-scan words, and predecessor rows containing +infinity runs
//    (infeasible-band prefixes);
//  * the rolling kernels built on it (DtwDistance, DtwBandedDistance, and
//    their early-abandon variants) must reproduce an independent
//    full-matrix DP — including the exact abandon decision for
//    thresholds straddling the true distance;
//  * both cost kinds, every trial.
// The in-TU kernel checks pin the portable two-pass kernel (this test's
// own instantiation); the library-level checks run whatever variant the
// runtime dispatch selected (or SDTW_KERNEL forces — see the
// property_forced_portable_kernel ctest registration). Per-variant pins
// across every runnable ISA live in kernel_dispatch_property_test.cc.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

#include "dtw/dtw.h"
#include "dtw/row_kernel.h"
#include "ts/random.h"

namespace sdtw {
namespace dtw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
using internal::kRowPad;

ts::TimeSeries RandomWalk(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.Gaussian(0.0, 0.5);
    v[i] = x;
  }
  return ts::TimeSeries(std::move(v));
}

// Runs one row through both kernels and pins every observable bit.
template <typename Cost>
void CheckRow(const std::vector<double>& prev_window, std::size_t plo,
              std::size_t phi, std::size_t clo, std::size_t chi, double xi,
              const ts::TimeSeries& y, Cost cost) {
  const std::size_t w = chi - clo + 1;
  const std::size_t pw = prev_window.size();

  // Scalar reference on plain buffers.
  std::vector<double> ref_cur(w, -1.0);
  std::size_t ref_cells = 0;
  const double ref_min = internal::FillBandRowScalar(
      prev_window.data(), plo, phi, ref_cur.data(), clo, chi, xi,
      y.values().data(), cost, &ref_cells);

  // Two-pass kernel on padded buffers with the pad invariant established.
  const std::size_t cap = std::max(w, pw) + 2 * kRowPad + 8;
  std::vector<double> prev_buf(cap, kInf);
  std::vector<double> cur_buf(cap, -7.0);  // poison: pads must be rewritten
  std::vector<double> cost_row(cap, -7.0);
  std::vector<unsigned char> flag_row(cap, 0xee);
  double* prev = prev_buf.data() + kRowPad;
  double* cur = cur_buf.data() + kRowPad;
  std::copy(prev_window.begin(), prev_window.end(), prev);
  std::size_t cells = 0;
  const double row_min = internal::FillBandRowTwoPass(
      prev, plo, phi, cur, clo, chi, xi, y.values().data(), cost,
      cost_row.data(), flag_row.data(), &cells);

  ASSERT_EQ(ref_cells, cells);
  // Bitwise: +inf == +inf and finite == finite both via EXPECT_EQ on
  // doubles (no tolerance anywhere).
  EXPECT_EQ(ref_min, row_min);
  for (std::size_t k = 0; k < w; ++k) {
    ASSERT_EQ(ref_cur[k], cur[k]) << "cell " << k << " of width " << w;
  }
  // The guard pads around the filled row must have been restored.
  for (std::size_t k = 1; k <= kRowPad; ++k) {
    ASSERT_EQ(cur[-static_cast<std::ptrdiff_t>(k)], kInf);
    ASSERT_EQ(cur[w + k - 1], kInf);
  }
}

TEST(RowKernelProperty, TwoPassMatchesScalarReferenceOnRandomWindows) {
  ts::Rng rng(20260730);
  const ts::TimeSeries y = RandomWalk(160, 7);
  for (int trial = 0; trial < 4000; ++trial) {
    // Window widths biased toward the vector-width edge cases.
    const std::size_t w =
        1 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * (trial % 3 == 0 ? 70 : 11));
    const std::size_t clo =
        1 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * (y.size() - w));
    const std::size_t chi = clo + w - 1;
    const double xi = rng.Gaussian(0.0, 1.0);

    std::size_t plo, phi;
    std::vector<double> prev_window;
    const double shape = rng.Uniform(0.0, 1.0);
    if (shape < 0.1) {
      // Empty predecessor window.
      plo = 1;
      phi = 0;
    } else {
      // Random predecessor window: mostly near the current one (fast
      // path), sometimes shifted beyond the pads (scalar fallback),
      // sometimes disjoint.
      const std::size_t pwidth = 1 + static_cast<std::size_t>(
                                         rng.Uniform(0.0, 1.0) * (w + 8));
      std::ptrdiff_t offset;
      if (shape < 0.7) {
        offset = static_cast<std::ptrdiff_t>(rng.Uniform(0.0, 1.0) * 7) - 3;
      } else {
        offset = static_cast<std::ptrdiff_t>(rng.Uniform(0.0, 1.0) * 60) - 30;
      }
      const std::ptrdiff_t plo_s =
          std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(clo) + offset);
      plo = static_cast<std::size_t>(plo_s);
      phi = plo + pwidth - 1;
      prev_window.resize(pwidth);
      for (double& v : prev_window) {
        v = rng.Uniform(0.0, 1.0) < 0.15 ? kInf : std::abs(rng.Gaussian(2.0, 1.5));
      }
      if (rng.Uniform(0.0, 1.0) < 0.2) {
        // Infinite prefix, as left by an infeasible band row.
        const std::size_t run =
            static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * pwidth);
        std::fill(prev_window.begin(),
                  prev_window.begin() + static_cast<std::ptrdiff_t>(run),
                  kInf);
      }
    }
    if (trial % 2 == 0) {
      CheckRow(prev_window, plo, phi, clo, chi, xi, y, AbsCost{});
    } else {
      CheckRow(prev_window, plo, phi, clo, chi, xi, y, SquaredCost{});
    }
    if (HasFatalFailure()) {
      ADD_FAILURE() << "trial " << trial;
      return;
    }
  }
}

// Independent full-matrix banded DP: the pre-rewrite semantics, never
// touching the rolling kernels.
double ReferenceBandedDistance(const ts::TimeSeries& x,
                               const ts::TimeSeries& y, const Band& band,
                               CostKind cost, std::size_t* cells_out) {
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  const std::size_t stride = m + 1;
  std::vector<double> d((n + 1) * stride, kInf);
  d[0] = 0.0;
  std::size_t cells = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const BandRow& r = band.row(i - 1);
    if (r.lo > r.hi || r.lo >= m) continue;
    const double xi = x[i - 1];
    double* row = d.data() + i * stride;
    const double* prev = d.data() + (i - 1) * stride;
    for (std::size_t j = r.lo + 1; j <= r.hi + 1 && j <= m; ++j) {
      const double best = std::min({prev[j], row[j - 1], prev[j - 1]});
      if (!std::isfinite(best)) continue;
      row[j] = best + EvalCost(cost, xi, y[j - 1]);
      ++cells;
    }
  }
  if (cells_out != nullptr) *cells_out = cells;
  return d[n * stride + m];
}

Band RandomBand(std::size_t n, std::size_t m, ts::Rng& rng,
                bool make_feasible) {
  std::vector<BandRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * m);
    const std::size_t b = static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * m);
    rows[i].lo = std::min(a, b);
    rows[i].hi = rng.Uniform(0.0, 1.0) < 0.1 ? std::min(a, b) : std::max(a, b);
    if (rng.Uniform(0.0, 1.0) < 0.08) std::swap(rows[i].lo, rows[i].hi);  // inverted
  }
  Band band = Band::FromRows(std::move(rows), m);
  if (make_feasible) band.MakeFeasible();
  return band;
}

TEST(RowKernelProperty, LibraryKernelsMatchFullMatrixReference) {
  ts::Rng rng(99);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 40);
    const std::size_t m = 1 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 40);
    const ts::TimeSeries x = RandomWalk(n, 1000 + trial);
    const ts::TimeSeries y = RandomWalk(m, 2000 + trial);
    const CostKind cost =
        trial % 2 == 0 ? CostKind::kAbsolute : CostKind::kSquared;
    const Band band = RandomBand(n, m, rng, rng.Uniform(0.0, 1.0) < 0.7);

    std::size_t ref_cells = 0;
    const double ref =
        ReferenceBandedDistance(x, y, band, cost, &ref_cells);
    EXPECT_EQ(ref, DtwBandedDistance(x, y, band, cost)) << "trial " << trial;

    // Full-grid rolling kernel against the full-band reference.
    const Band full = Band::Full(n, m);
    const double ref_full =
        ReferenceBandedDistance(x, y, full, cost, nullptr);
    EXPECT_EQ(ref_full, DtwDistance(x, y, cost)) << "trial " << trial;

    // Path-preserving fill: distance and cells from the same kernel.
    DtwOptions options;
    options.cost = cost;
    options.want_path = false;
    const DtwResult banded = DtwBanded(x, y, band, options);
    if (std::isfinite(ref)) {
      EXPECT_EQ(ref, banded.distance) << "trial " << trial;
    } else {
      EXPECT_TRUE(std::isinf(banded.distance)) << "trial " << trial;
    }
    EXPECT_EQ(ref_cells, banded.cells_filled) << "trial " << trial;
  }
}

TEST(RowKernelProperty, EarlyAbandonDecisionMatchesReferenceExactly) {
  ts::Rng rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 30);
    const std::size_t m = 2 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 30);
    const ts::TimeSeries x = RandomWalk(n, 5000 + trial);
    const ts::TimeSeries y = RandomWalk(m, 6000 + trial);
    const CostKind cost =
        trial % 2 == 0 ? CostKind::kAbsolute : CostKind::kSquared;
    Band band = RandomBand(n, m, rng, true);

    const double ref = ReferenceBandedDistance(x, y, band, cost, nullptr);
    ASSERT_TRUE(std::isfinite(ref));
    // The abandoning kernel's contract: the exact distance iff it is
    // <= threshold, +infinity otherwise — bit-identical distance when it
    // survives, for thresholds straddling the true value.
    const double nudge = ref * 1e-12;
    const double thresholds[] = {ref, ref - nudge, ref + nudge, ref * 0.5,
                                 ref * 2.0 + 1.0, 0.0};
    for (const double threshold : thresholds) {
      const double got =
          DtwBandedDistanceEarlyAbandon(x, y, band, threshold, cost);
      if (ref <= threshold) {
        EXPECT_EQ(ref, got) << "trial " << trial << " thr " << threshold;
      } else {
        EXPECT_TRUE(std::isinf(got))
            << "trial " << trial << " thr " << threshold;
      }
      const double ref_full =
          ReferenceBandedDistance(x, y, Band::Full(n, m), cost, nullptr);
      const double got_full = DtwDistanceEarlyAbandon(x, y, threshold, cost);
      if (ref_full <= threshold) {
        EXPECT_EQ(ref_full, got_full) << "trial " << trial;
      } else {
        EXPECT_TRUE(std::isinf(got_full)) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
