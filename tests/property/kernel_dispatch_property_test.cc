// Bitwise-equivalence properties of the runtime-dispatched row-kernel
// variants (dtw/kernel_dispatch.h): every variant this host can run —
// portable always, avx2/avx512 when compiled in and CPU-supported — must
// be indistinguishable from the scalar reference and from every other
// variant in everything observable:
//  * row level: each variant's dispatched fill entry points reproduce
//    FillBandRowScalar bit for bit (cell values, row minimum, cell count,
//    restored guard pads) across the same adversarial window shapes the
//    portable kernel is pinned with;
//  * library level: distances, warp paths, and cells_filled through
//    DtwOptions::kernel, and early-abandon decisions through a pinned
//    DtwScratch, identical across variants for thresholds straddling the
//    true distance;
//  * subsequence level: open-begin matches (distance, window, path)
//    through SubsequenceOptions::kernel;
//  * retrieval level: batch hit lists and alignment paths through
//    BatchOptions::kernel, multi-threaded.
// Variants absent on this host (e.g. AVX-512 on an AVX2-only machine) are
// skipped gracefully — SupportedRowKernels() simply does not list them;
// the dispatch unit tests pin the clear-error path for forcing them.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>
#include <vector>

#include "data/extra_families.h"
#include "dtw/dtw.h"
#include "dtw/kernel_dispatch.h"
#include "dtw/row_kernel.h"
#include "dtw/subsequence.h"
#include "retrieval/batch.h"
#include "retrieval/knn.h"
#include "ts/random.h"

namespace sdtw {
namespace dtw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
using internal::kRowPad;

ts::TimeSeries RandomWalk(std::size_t n, std::uint64_t seed) {
  ts::Rng rng(seed);
  std::vector<double> v(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.Gaussian(0.0, 0.5);
    v[i] = x;
  }
  return ts::TimeSeries(std::move(v));
}

// Runs one row through the scalar reference and through a dispatched
// variant's fill entry point, pinning every observable bit.
void CheckRowVariant(const RowKernelOps& ops, CostKind cost,
                     const std::vector<double>& prev_window, std::size_t plo,
                     std::size_t phi, std::size_t clo, std::size_t chi,
                     double xi, const ts::TimeSeries& y) {
  const std::size_t w = chi - clo + 1;
  const std::size_t pw = prev_window.size();

  // Scalar reference on plain buffers.
  std::vector<double> ref_cur(w, -1.0);
  std::size_t ref_cells = 0;
  const double ref_min =
      cost == CostKind::kAbsolute
          ? internal::FillBandRowScalar(prev_window.data(), plo, phi,
                                        ref_cur.data(), clo, chi, xi,
                                        y.values().data(), AbsCost{},
                                        &ref_cells)
          : internal::FillBandRowScalar(prev_window.data(), plo, phi,
                                        ref_cur.data(), clo, chi, xi,
                                        y.values().data(), SquaredCost{},
                                        &ref_cells);

  // Dispatched variant on padded buffers with the pad invariant
  // established.
  const std::size_t cap = std::max(w, pw) + 2 * kRowPad + 8;
  std::vector<double> prev_buf(cap, kInf);
  std::vector<double> cur_buf(cap, -7.0);  // poison: pads must be rewritten
  std::vector<double> cost_row(cap, -7.0);
  std::vector<unsigned char> flag_row(cap, 0xee);
  double* prev = prev_buf.data() + kRowPad;
  double* cur = cur_buf.data() + kRowPad;
  std::copy(prev_window.begin(), prev_window.end(), prev);
  std::size_t cells = 0;
  const double row_min =
      ops.fill(cost)(prev, plo, phi, cur, clo, chi, xi, y.values().data(),
                     cost_row.data(), flag_row.data(), &cells);

  ASSERT_EQ(ref_cells, cells) << ops.name;
  EXPECT_EQ(ref_min, row_min) << ops.name;
  for (std::size_t k = 0; k < w; ++k) {
    ASSERT_EQ(ref_cur[k], cur[k])
        << ops.name << " cell " << k << " of width " << w;
  }
  for (std::size_t k = 1; k <= kRowPad; ++k) {
    ASSERT_EQ(cur[-static_cast<std::ptrdiff_t>(k)], kInf) << ops.name;
    ASSERT_EQ(cur[w + k - 1], kInf) << ops.name;
  }
}

TEST(KernelDispatchProperty, EveryVariantMatchesScalarOnRandomWindows) {
  const std::vector<const RowKernelOps*> variants = SupportedRowKernels();
  ASSERT_FALSE(variants.empty());
  ts::Rng rng(20260807);
  const ts::TimeSeries y = RandomWalk(160, 7);
  for (int trial = 0; trial < 1500; ++trial) {
    // Window widths biased toward the vector-width edge cases of both the
    // 4-lane and the 8-lane pass (plus the scalar gates at width < 4 / 8).
    const std::size_t w =
        1 + static_cast<std::size_t>(
                rng.Uniform(0.0, 1.0) * (trial % 3 == 0 ? 70 : 19));
    const std::size_t clo =
        1 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * (y.size() - w));
    const std::size_t chi = clo + w - 1;
    const double xi = rng.Gaussian(0.0, 1.0);

    std::size_t plo, phi;
    std::vector<double> prev_window;
    const double shape = rng.Uniform(0.0, 1.0);
    if (shape < 0.1) {
      plo = 1;  // empty predecessor window
      phi = 0;
    } else {
      const std::size_t pwidth =
          1 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * (w + 8));
      std::ptrdiff_t offset;
      if (shape < 0.7) {
        offset = static_cast<std::ptrdiff_t>(rng.Uniform(0.0, 1.0) * 7) - 3;
      } else {
        offset = static_cast<std::ptrdiff_t>(rng.Uniform(0.0, 1.0) * 60) - 30;
      }
      const std::ptrdiff_t plo_s = std::max<std::ptrdiff_t>(
          0, static_cast<std::ptrdiff_t>(clo) + offset);
      plo = static_cast<std::size_t>(plo_s);
      phi = plo + pwidth - 1;
      prev_window.resize(pwidth);
      for (double& v : prev_window) {
        v = rng.Uniform(0.0, 1.0) < 0.15 ? kInf
                                         : std::abs(rng.Gaussian(2.0, 1.5));
      }
      if (rng.Uniform(0.0, 1.0) < 0.2) {
        const std::size_t run =
            static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * pwidth);
        std::fill(prev_window.begin(),
                  prev_window.begin() + static_cast<std::ptrdiff_t>(run),
                  kInf);
      }
    }
    const CostKind cost =
        trial % 2 == 0 ? CostKind::kAbsolute : CostKind::kSquared;
    for (const RowKernelOps* ops : variants) {
      CheckRowVariant(*ops, cost, prev_window, plo, phi, clo, chi, xi, y);
      if (HasFatalFailure()) {
        ADD_FAILURE() << "trial " << trial << " variant " << ops->name;
        return;
      }
    }
  }
}

Band RandomFeasibleBand(std::size_t n, std::size_t m, ts::Rng& rng) {
  std::vector<BandRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * m);
    const std::size_t b = static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * m);
    rows[i].lo = std::min(a, b);
    rows[i].hi = std::max(a, b);
  }
  Band band = Band::FromRows(std::move(rows), m);
  band.MakeFeasible();
  return band;
}

TEST(KernelDispatchProperty, DistancesPathsAndCellsIdenticalAcrossVariants) {
  const std::vector<const RowKernelOps*> variants = SupportedRowKernels();
  ts::Rng rng(424242);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n =
        3 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 40);
    const std::size_t m =
        3 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 40);
    const ts::TimeSeries x = RandomWalk(n, 9000 + trial);
    const ts::TimeSeries y = RandomWalk(m, 9500 + trial);
    const CostKind cost =
        trial % 2 == 0 ? CostKind::kAbsolute : CostKind::kSquared;
    const Band band = RandomFeasibleBand(n, m, rng);

    DtwOptions base;
    base.cost = cost;
    base.want_path = true;
    base.kernel = FindRowKernelOps(KernelVariant::kPortable);
    const DtwResult ref_banded = DtwBanded(x, y, band, base);
    const DtwResult ref_full = Dtw(x, y, base);

    for (const RowKernelOps* ops : variants) {
      DtwOptions options = base;
      options.kernel = ops;
      const DtwResult banded = DtwBanded(x, y, band, options);
      EXPECT_EQ(ref_banded.distance, banded.distance) << ops->name;
      EXPECT_EQ(ref_banded.cells_filled, banded.cells_filled) << ops->name;
      EXPECT_EQ(ref_banded.path, banded.path) << ops->name;
      const DtwResult full = Dtw(x, y, options);
      EXPECT_EQ(ref_full.distance, full.distance) << ops->name;
      EXPECT_EQ(ref_full.path, full.path) << ops->name;
    }
  }
}

TEST(KernelDispatchProperty, AbandonDecisionsIdenticalAcrossVariants) {
  const std::vector<const RowKernelOps*> variants = SupportedRowKernels();
  ts::Rng rng(31337);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n =
        2 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 30);
    const std::size_t m =
        2 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 30);
    const ts::TimeSeries x = RandomWalk(n, 7000 + trial);
    const ts::TimeSeries y = RandomWalk(m, 7500 + trial);
    const CostKind cost =
        trial % 2 == 0 ? CostKind::kAbsolute : CostKind::kSquared;
    const Band band = RandomFeasibleBand(n, m, rng);

    DtwScratch ref_scratch;
    ref_scratch.set_kernel(FindRowKernelOps(KernelVariant::kPortable));
    const double ref =
        DtwBandedDistance(x, y, band, cost, ref_scratch);
    ASSERT_TRUE(std::isfinite(ref));
    const double nudge = ref * 1e-12;
    const double thresholds[] = {ref, ref - nudge, ref + nudge,
                                 ref * 0.5, ref * 2.0 + 1.0, 0.0};
    for (const RowKernelOps* ops : variants) {
      DtwScratch scratch;
      scratch.set_kernel(ops);
      EXPECT_EQ(ref, DtwBandedDistance(x, y, band, cost, scratch))
          << ops->name;
      for (const double threshold : thresholds) {
        // Same decision AND same surviving bits as the portable variant.
        const double ref_ea = DtwBandedDistanceEarlyAbandon(
            x, y, band, threshold, cost, ref_scratch);
        const double got_ea = DtwBandedDistanceEarlyAbandon(
            x, y, band, threshold, cost, scratch);
        EXPECT_EQ(ref_ea, got_ea) << ops->name << " thr " << threshold;
        const double ref_full_ea = DtwDistanceEarlyAbandon(
            x, y, threshold, cost, ref_scratch);
        const double got_full_ea =
            DtwDistanceEarlyAbandon(x, y, threshold, cost, scratch);
        EXPECT_EQ(ref_full_ea, got_full_ea)
            << ops->name << " thr " << threshold;
      }
    }
  }
}

TEST(KernelDispatchProperty, SubsequenceMatchesIdenticalAcrossVariants) {
  const std::vector<const RowKernelOps*> variants = SupportedRowKernels();
  ts::Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n =
        3 + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 20);
    const std::size_t m =
        n + static_cast<std::size_t>(rng.Uniform(0.0, 1.0) * 80);
    const ts::TimeSeries query = RandomWalk(n, 3000 + trial);
    const ts::TimeSeries series = RandomWalk(m, 3500 + trial);

    SubsequenceOptions base;
    base.cost = trial % 2 == 0 ? CostKind::kAbsolute : CostKind::kSquared;
    base.want_path = true;
    base.kernel = FindRowKernelOps(KernelVariant::kPortable);
    const SubsequenceMatch ref = FindBestSubsequence(query, series, base);

    for (const RowKernelOps* ops : variants) {
      SubsequenceOptions options = base;
      options.kernel = ops;
      const SubsequenceMatch got = FindBestSubsequence(query, series, options);
      EXPECT_EQ(ref.distance, got.distance) << ops->name;
      EXPECT_EQ(ref.begin, got.begin) << ops->name;
      EXPECT_EQ(ref.end, got.end) << ops->name;
      EXPECT_EQ(ref.path, got.path) << ops->name;
    }
  }
}

TEST(KernelDispatchProperty, BatchHitsAndAlignmentsIdenticalAcrossVariants) {
  const std::vector<const RowKernelOps*> variants = SupportedRowKernels();
  data::GeneratorOptions gen;
  gen.num_series = 12;
  gen.length = 64;
  const ts::Dataset ds = data::MakeCbf(gen);
  std::vector<ts::TimeSeries> queries(ds.begin(), ds.begin() + 4);

  for (const retrieval::DistanceKind distance :
       {retrieval::DistanceKind::kSdtw, retrieval::DistanceKind::kFullDtw}) {
    retrieval::KnnOptions opt;
    opt.distance = distance;
    retrieval::KnnEngine engine(opt);
    engine.Index(ds);

    retrieval::BatchOptions ref_options;
    ref_options.num_threads = 2;
    ref_options.kernel = FindRowKernelOps(KernelVariant::kPortable);
    const retrieval::BatchKnnEngine ref_engine(engine, ref_options);
    const auto ref_hits = ref_engine.QueryBatch(queries, 3);
    const auto ref_aligned = ref_engine.QueryBatchWithAlignments(queries, 3);

    for (const RowKernelOps* ops : variants) {
      retrieval::BatchOptions options = ref_options;
      options.kernel = ops;
      const retrieval::BatchKnnEngine batch(engine, options);
      const auto hits = batch.QueryBatch(queries, 3);
      ASSERT_EQ(ref_hits.size(), hits.size()) << ops->name;
      for (std::size_t q = 0; q < hits.size(); ++q) {
        ASSERT_EQ(ref_hits[q].size(), hits[q].size()) << ops->name;
        for (std::size_t r = 0; r < hits[q].size(); ++r) {
          EXPECT_EQ(ref_hits[q][r].index, hits[q][r].index) << ops->name;
          EXPECT_EQ(ref_hits[q][r].distance, hits[q][r].distance)
              << ops->name;  // bitwise
        }
      }
      const auto aligned = batch.QueryBatchWithAlignments(queries, 3);
      ASSERT_EQ(ref_aligned.size(), aligned.size()) << ops->name;
      for (std::size_t q = 0; q < aligned.size(); ++q) {
        ASSERT_EQ(ref_aligned[q].size(), aligned[q].size()) << ops->name;
        for (std::size_t r = 0; r < aligned[q].size(); ++r) {
          EXPECT_EQ(ref_aligned[q][r].hit.distance,
                    aligned[q][r].hit.distance)
              << ops->name;
          EXPECT_EQ(ref_aligned[q][r].path, aligned[q][r].path) << ops->name;
        }
      }
    }
  }
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
