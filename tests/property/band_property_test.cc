// Property-based tests on Band construction and feasibility repair, swept
// over grid shapes and randomly corrupted bands.

#include <gtest/gtest.h>

#include "core/constraints.h"
#include "dtw/band.h"
#include "dtw/dtw.h"
#include "ts/random.h"

namespace sdtw {
namespace dtw {
namespace {

struct GridShape {
  std::size_t n;
  std::size_t m;
  std::uint64_t seed;
};

class BandPropertyTest : public ::testing::TestWithParam<GridShape> {};

Band RandomBand(std::size_t n, std::size_t m, ts::Rng& rng) {
  std::vector<BandRow> rows(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a =
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<long>(m - 1)));
    const std::size_t b =
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<long>(m - 1)));
    rows[i] = BandRow{std::min(a, b), std::max(a, b)};
  }
  return Band::FromRows(std::move(rows), m);
}

TEST_P(BandPropertyTest, MakeFeasibleAlwaysRepairsRandomBands) {
  const GridShape p = GetParam();
  ts::Rng rng(p.seed);
  for (int trial = 0; trial < 25; ++trial) {
    Band band = RandomBand(p.n, p.m, rng);
    band.MakeFeasible();
    EXPECT_TRUE(band.IsFeasible())
        << "trial " << trial << " on " << p.n << "x" << p.m;
  }
}

TEST_P(BandPropertyTest, MakeFeasibleIsIdempotent) {
  const GridShape p = GetParam();
  ts::Rng rng(p.seed + 100);
  for (int trial = 0; trial < 10; ++trial) {
    Band band = RandomBand(p.n, p.m, rng);
    band.MakeFeasible();
    Band again = band;
    again.MakeFeasible();
    EXPECT_EQ(band, again);
  }
}

TEST_P(BandPropertyTest, FeasibleBandsYieldFiniteDtw) {
  const GridShape p = GetParam();
  ts::Rng rng(p.seed + 200);
  std::vector<double> xv(p.n), yv(p.m);
  for (double& v : xv) v = rng.Gaussian();
  for (double& v : yv) v = rng.Gaussian();
  const ts::TimeSeries x(xv), y(yv);
  for (int trial = 0; trial < 10; ++trial) {
    Band band = RandomBand(p.n, p.m, rng);
    band.MakeFeasible();
    const DtwResult r = DtwBanded(x, y, band);
    EXPECT_TRUE(std::isfinite(r.distance)) << trial;
    EXPECT_TRUE(IsValidWarpPath(r.path, p.n, p.m)) << trial;
    for (const PathPoint& pt : r.path) {
      EXPECT_TRUE(band.Contains(pt.first, pt.second));
    }
  }
}

TEST_P(BandPropertyTest, UnionPreservesFeasibility) {
  const GridShape p = GetParam();
  ts::Rng rng(p.seed + 300);
  for (int trial = 0; trial < 10; ++trial) {
    Band a = RandomBand(p.n, p.m, rng);
    Band b = RandomBand(p.n, p.m, rng);
    a.MakeFeasible();
    b.MakeFeasible();
    ASSERT_TRUE(a.UnionWith(b));
    // Union of two feasible bands is feasible: both corner anchors remain
    // and row-connectivity can only improve with wider rows.
    EXPECT_TRUE(a.IsFeasible()) << trial;
  }
}

TEST_P(BandPropertyTest, TransposeInvolution) {
  const GridShape p = GetParam();
  ts::Rng rng(p.seed + 400);
  Band band = RandomBand(p.n, p.m, rng);
  band.MakeFeasible();
  const Band round_trip = band.Transpose().Transpose();
  // Transpose is lossless for bands whose rows are contiguous intervals in
  // both directions; the involution must at least contain the original.
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t j = band.row(i).lo; j <= band.row(i).hi; ++j) {
      EXPECT_TRUE(round_trip.Contains(i, j));
    }
  }
}

TEST_P(BandPropertyTest, CellCountMatchesContains) {
  const GridShape p = GetParam();
  ts::Rng rng(p.seed + 500);
  Band band = RandomBand(p.n, p.m, rng);
  std::size_t count = 0;
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t j = 0; j < p.m; ++j) {
      if (band.Contains(i, j)) ++count;
    }
  }
  EXPECT_EQ(count, band.CellCount());
}

TEST_P(BandPropertyTest, SakoeChibaContainsScaledDiagonal) {
  const GridShape p = GetParam();
  const Band band = SakoeChibaBand(p.n, p.m, 0.1);
  for (std::size_t i = 0; i < p.n; ++i) {
    const std::size_t j = p.n > 1
                              ? (i * (p.m - 1)) / (p.n - 1)
                              : 0;
    EXPECT_TRUE(band.Contains(i, j)) << i;
  }
}

TEST_P(BandPropertyTest, ConstraintBandsFeasibleUnderRandomIntervals) {
  const GridShape p = GetParam();
  ts::Rng rng(p.seed + 600);
  // Random (possibly ugly) interval partitions with matching counts.
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t cuts =
        static_cast<std::size_t>(rng.UniformInt(0, 4));
    std::vector<std::size_t> bx{0}, by{0};
    for (std::size_t c = 0; c < cuts; ++c) {
      bx.push_back(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<long>(p.n - 1))));
      by.push_back(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<long>(p.m - 1))));
    }
    std::sort(bx.begin(), bx.end());
    std::sort(by.begin(), by.end());
    bx.push_back(p.n - 1);
    by.push_back(p.m - 1);
    std::vector<align::IntervalPair> intervals;
    for (std::size_t k = 0; k + 1 < bx.size(); ++k) {
      align::IntervalPair ip;
      ip.begin_x = bx[k];
      ip.end_x = bx[k + 1];
      ip.begin_y = by[k];
      ip.end_y = by[k + 1];
      intervals.push_back(ip);
    }
    for (core::ConstraintType type :
         {core::ConstraintType::kFixedCoreAdaptiveWidth,
          core::ConstraintType::kAdaptiveCoreFixedWidth,
          core::ConstraintType::kAdaptiveCoreAdaptiveWidth}) {
      core::ConstraintOptions opt;
      opt.type = type;
      const Band band = core::BuildConstraintBand(p.n, p.m, intervals, opt);
      EXPECT_TRUE(band.IsFeasible())
          << core::ConstraintTypeName(type) << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, BandPropertyTest,
    ::testing::Values(GridShape{2, 2, 1}, GridShape{5, 9, 2},
                      GridShape{9, 5, 3}, GridShape{20, 20, 4},
                      GridShape{50, 13, 5}, GridShape{13, 50, 6},
                      GridShape{100, 100, 7}, GridShape{1, 10, 8},
                      GridShape{10, 1, 9}, GridShape{3, 200, 10}),
    [](const ::testing::TestParamInfo<GridShape>& info) {
      return "n" + std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m);
    });

}  // namespace
}  // namespace dtw
}  // namespace sdtw
