#include "align/matching.h"

#include <cmath>
#include <gtest/gtest.h>

namespace sdtw {
namespace align {
namespace {

sift::Keypoint MakeKp(double pos, double sigma, double amp,
                      std::vector<double> desc) {
  sift::Keypoint kp;
  kp.position = pos;
  kp.sigma = sigma;
  kp.amplitude = amp;
  kp.descriptor = std::move(desc);
  return kp;
}

TEST(DescriptorDistanceTest, BasicEuclidean) {
  EXPECT_DOUBLE_EQ(DescriptorDistance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(DescriptorDistance({1.0}, {1.0}), 0.0);
}

TEST(DescriptorDistanceTest, MismatchIsInfinity) {
  EXPECT_TRUE(std::isinf(DescriptorDistance({1.0}, {1.0, 2.0})));
}

TEST(MatchingTest, EmptyInputsGiveNoPairs) {
  EXPECT_TRUE(FindDominantPairs({}, {}).empty());
  std::vector<sift::Keypoint> one{MakeKp(0, 1, 0, {1.0, 0.0})};
  EXPECT_TRUE(FindDominantPairs(one, {}).empty());
  EXPECT_TRUE(FindDominantPairs({}, one).empty());
}

TEST(MatchingTest, PerfectMatchFound) {
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.5, {1.0, 0.0, 0.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(12, 2, 0.5, {1.0, 0.0, 0.0, 0.0}),
                                 MakeKp(40, 2, 0.5, {0.0, 0.0, 0.0, 1.0})};
  const auto pairs = FindDominantPairs(xs, ys);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].index_x, 0u);
  EXPECT_EQ(pairs[0].index_y, 0u);
  EXPECT_NEAR(pairs[0].descriptor_distance, 0.0, 1e-12);
}

TEST(MatchingTest, AmplitudeThresholdRejects) {
  MatchingOptions opt;
  opt.tau_amplitude = 0.1;
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(10, 2, 0.5, {1.0, 0.0})};
  EXPECT_TRUE(FindDominantPairs(xs, ys, opt).empty());
  opt.tau_amplitude = 1.0;
  EXPECT_EQ(FindDominantPairs(xs, ys, opt).size(), 1u);
}

TEST(MatchingTest, ScaleRatioThresholdRejects) {
  MatchingOptions opt;
  opt.tau_scale = 2.0;
  std::vector<sift::Keypoint> xs{MakeKp(10, 1.0, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(10, 3.0, 0.0, {1.0, 0.0})};
  EXPECT_TRUE(FindDominantPairs(xs, ys, opt).empty());
  opt.tau_scale = 4.0;
  EXPECT_EQ(FindDominantPairs(xs, ys, opt).size(), 1u);
}

TEST(MatchingTest, DistinctivenessRejectsAmbiguousMatch) {
  MatchingOptions opt;
  opt.tau_distinct = 1.5;
  // Two nearly identical candidates in Y: ambiguous, should be rejected.
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(12, 2, 0.0, {0.9, 0.1}),
                                 MakeKp(60, 2, 0.0, {0.9, 0.11})};
  EXPECT_TRUE(FindDominantPairs(xs, ys, opt).empty());
}

TEST(MatchingTest, DistinctivenessAcceptsClearWinner) {
  MatchingOptions opt;
  opt.tau_distinct = 1.5;
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(12, 2, 0.0, {1.0, 0.01}),
                                 MakeKp(60, 2, 0.0, {0.0, 1.0})};
  const auto pairs = FindDominantPairs(xs, ys, opt);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].index_y, 0u);
}

TEST(MatchingTest, SingleCandidatePassesTrivially) {
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(12, 2, 0.0, {0.8, 0.2})};
  EXPECT_EQ(FindDominantPairs(xs, ys).size(), 1u);
}

TEST(MatchingTest, CandidatesFailingThresholdsDoNotCountAsSecondBest) {
  MatchingOptions opt;
  opt.tau_distinct = 2.0;
  opt.tau_amplitude = 0.1;
  // The ambiguous second candidate has wrong amplitude, so it is excluded
  // from the distinctiveness comparison entirely.
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(12, 2, 0.0, {0.9, 0.1}),
                                 MakeKp(60, 2, 5.0, {0.9, 0.1})};
  EXPECT_EQ(FindDominantPairs(xs, ys, opt).size(), 1u);
}

TEST(MatchingTest, MutualRequirementFiltersOneSided) {
  MatchingOptions opt;
  opt.require_mutual = true;
  opt.tau_distinct = 1.0001;
  // x0 prefers y0; y0 prefers x1 (closer descriptor) -> x0's match dropped,
  // x1's match kept.
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.0, {0.8, 0.2}),
                                 MakeKp(50, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(12, 2, 0.0, {1.0, 0.0})};
  const auto pairs = FindDominantPairs(xs, ys, opt);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].index_x, 1u);
}

TEST(MatchingTest, PairsSortedByXIndex) {
  std::vector<sift::Keypoint> xs{MakeKp(10, 2, 0.0, {1.0, 0.0}),
                                 MakeKp(30, 2, 0.0, {0.0, 1.0})};
  std::vector<sift::Keypoint> ys{MakeKp(12, 2, 0.0, {1.0, 0.0}),
                                 MakeKp(33, 2, 0.0, {0.0, 1.0})};
  const auto pairs = FindDominantPairs(xs, ys);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_LT(pairs[0].index_x, pairs[1].index_x);
}


TEST(MatchingTest, PositionConstraintRejectsDistantPairs) {
  MatchingOptions opt;
  opt.tau_position = 0.2;  // max shift = 0.2 * 100 = 20 samples
  std::vector<sift::Keypoint> xs{MakeKp(80, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(10, 2, 0.0, {1.0, 0.0})};
  // Shift of 70 samples: rejected when lengths are provided.
  EXPECT_TRUE(FindDominantPairs(xs, ys, opt, 100, 100).empty());
  // Without lengths the constraint is inactive (backwards compatible).
  EXPECT_EQ(FindDominantPairs(xs, ys, opt).size(), 1u);
  // Disabled threshold admits the pair even with lengths.
  opt.tau_position = 0.0;
  EXPECT_EQ(FindDominantPairs(xs, ys, opt, 100, 100).size(), 1u);
}

TEST(MatchingTest, PositionConstraintAdmitsNearbyPairs) {
  MatchingOptions opt;
  opt.tau_position = 0.2;
  std::vector<sift::Keypoint> xs{MakeKp(50, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(62, 2, 0.0, {1.0, 0.0})};
  EXPECT_EQ(FindDominantPairs(xs, ys, opt, 100, 100).size(), 1u);
}

TEST(MatchingTest, PositionConstraintScalesWithLongerSeries) {
  MatchingOptions opt;
  opt.tau_position = 0.2;
  // Shift 30 > 0.2*100 but < 0.2*200: admitted when either series is long.
  std::vector<sift::Keypoint> xs{MakeKp(50, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(80, 2, 0.0, {1.0, 0.0})};
  EXPECT_TRUE(FindDominantPairs(xs, ys, opt, 100, 100).empty());
  EXPECT_EQ(FindDominantPairs(xs, ys, opt, 100, 200).size(), 1u);
}

TEST(MatchingTest, PositionFilteredCandidatesExcludedFromRatioTest) {
  MatchingOptions opt;
  opt.tau_position = 0.2;
  opt.tau_distinct = 2.0;
  // The ambiguous duplicate candidate sits 60 samples away: it fails the
  // position test and must not count as the second-best match.
  std::vector<sift::Keypoint> xs{MakeKp(50, 2, 0.0, {1.0, 0.0})};
  std::vector<sift::Keypoint> ys{MakeKp(55, 2, 0.0, {0.9, 0.1}),
                                 MakeKp(115, 2, 0.0, {0.9, 0.1})};
  EXPECT_EQ(FindDominantPairs(xs, ys, opt, 120, 120).size(), 1u);
}

}  // namespace
}  // namespace align
}  // namespace sdtw
