#include "align/consistency.h"

#include <cmath>
#include <gtest/gtest.h>

namespace sdtw {
namespace align {
namespace {

sift::Keypoint MakeKp(double pos, double sigma, double amp = 0.0) {
  sift::Keypoint kp;
  kp.position = pos;
  kp.sigma = sigma;
  kp.amplitude = amp;
  kp.descriptor = {1.0, 0.0};
  return kp;
}

ts::TimeSeries Ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i) * 0.01;
  return ts::TimeSeries(std::move(v));
}

TEST(ScorePairTest, AlignmentPrefersLargeCloseFeatures) {
  const ts::TimeSeries x = Ramp(100), y = Ramp(100);
  const sift::Keypoint big_near = MakeKp(50, 5);
  const sift::Keypoint big_near_y = MakeKp(52, 5);
  const sift::Keypoint small_far_y = MakeKp(90, 1);
  const PairScores close = ScorePair(x, y, big_near, big_near_y, 0.0);
  const PairScores far = ScorePair(x, y, big_near, small_far_y, 0.0);
  EXPECT_GT(close.mu_align, far.mu_align);
}

TEST(ScorePairTest, DescriptorScoreDecreasesWithDistance) {
  const ts::TimeSeries x = Ramp(100), y = Ramp(100);
  const sift::Keypoint a = MakeKp(50, 5), b = MakeKp(52, 5);
  EXPECT_GT(ScorePair(x, y, a, b, 0.0).mu_desc,
            ScorePair(x, y, a, b, 2.0).mu_desc);
}

TEST(ScorePairTest, DeltaAmpZeroForIdenticalScopes) {
  const ts::TimeSeries x = Ramp(100), y = Ramp(100);
  const sift::Keypoint a = MakeKp(50, 5), b = MakeKp(50, 5);
  EXPECT_NEAR(ScorePair(x, y, a, b, 0.0).delta_amp, 0.0, 1e-9);
}

TEST(ScorePairTest, DeltaAmpBoundedByOne) {
  const ts::TimeSeries x = Ramp(100);
  const ts::TimeSeries y = ts::TimeSeries::Zeros(100);
  const sift::Keypoint a = MakeKp(80, 5), b = MakeKp(80, 5);
  const PairScores s = ScorePair(x, y, a, b, 0.0);
  EXPECT_GE(s.delta_amp, 0.0);
  EXPECT_LE(s.delta_amp, 1.0);
}

TEST(PruneTest, EmptyPairsYieldEmptyResult) {
  const ts::TimeSeries x = Ramp(50), y = Ramp(50);
  EXPECT_TRUE(PruneInconsistent(x, y, {}, {}, {}).empty());
}

TEST(PruneTest, SinglePairAlwaysSurvives) {
  const ts::TimeSeries x = Ramp(100), y = Ramp(100);
  std::vector<sift::Keypoint> kx{MakeKp(30, 3)};
  std::vector<sift::Keypoint> ky{MakeKp(35, 3)};
  std::vector<MatchPair> pairs{{0, 0, 0.1}};
  const auto result = PruneInconsistent(x, y, kx, ky, pairs);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index_x, 0u);
  EXPECT_EQ(result[0].index_y, 0u);
}

TEST(PruneTest, ConsistentPairsAllSurvive) {
  const ts::TimeSeries x = Ramp(200), y = Ramp(200);
  std::vector<sift::Keypoint> kx{MakeKp(30, 3), MakeKp(100, 3),
                                 MakeKp(170, 3)};
  std::vector<sift::Keypoint> ky{MakeKp(35, 3), MakeKp(105, 3),
                                 MakeKp(175, 3)};
  std::vector<MatchPair> pairs{{0, 0, 0.1}, {1, 1, 0.1}, {2, 2, 0.1}};
  EXPECT_EQ(PruneInconsistent(x, y, kx, ky, pairs).size(), 3u);
}

TEST(PruneTest, CrossingPairsPruned) {
  // Features at (30 -> 150) and (150 -> 30): order is swapped across the
  // series, so only one can survive.
  const ts::TimeSeries x = Ramp(200), y = Ramp(200);
  std::vector<sift::Keypoint> kx{MakeKp(30, 3), MakeKp(150, 3)};
  std::vector<sift::Keypoint> ky{MakeKp(30, 3), MakeKp(150, 3)};
  std::vector<MatchPair> pairs{{0, 1, 0.1}, {1, 0, 0.1}};
  const auto result = PruneInconsistent(x, y, kx, ky, pairs);
  EXPECT_EQ(result.size(), 1u);
}

TEST(PruneTest, HigherCombinedScoreWinsConflict) {
  const ts::TimeSeries x = Ramp(200), y = Ramp(200);
  // Pair A: large scope, aligned (strong). Pair B: crosses A, small & far
  // (weak). A must win.
  std::vector<sift::Keypoint> kx{MakeKp(100, 8), MakeKp(40, 1)};
  std::vector<sift::Keypoint> ky{MakeKp(102, 8), MakeKp(160, 1)};
  std::vector<MatchPair> pairs{{0, 0, 0.05}, {1, 1, 0.5}};
  const auto result = PruneInconsistent(x, y, kx, ky, pairs);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].index_x, 0u);
}

TEST(PruneTest, NestedScopesAreInconsistent) {
  // Pair 1 scope in X: [70,130]; pair 2 in X: [85,115] (nested inside) but
  // in Y pair 2 sits entirely AFTER pair 1's scope -> ranks disagree.
  const ts::TimeSeries x = Ramp(300), y = Ramp(300);
  std::vector<sift::Keypoint> kx{MakeKp(100, 10), MakeKp(100, 5)};
  std::vector<sift::Keypoint> ky{MakeKp(100, 10), MakeKp(200, 5)};
  std::vector<MatchPair> pairs{{0, 0, 0.01}, {1, 1, 0.3}};
  const auto result = PruneInconsistent(x, y, kx, ky, pairs);
  EXPECT_EQ(result.size(), 1u);
}

TEST(PruneTest, UniqueFeaturesPreventsReuse) {
  const ts::TimeSeries x = Ramp(200), y = Ramp(200);
  // Two X features matched to the SAME Y feature.
  std::vector<sift::Keypoint> kx{MakeKp(50, 3), MakeKp(60, 3)};
  std::vector<sift::Keypoint> ky{MakeKp(55, 3)};
  std::vector<MatchPair> pairs{{0, 0, 0.1}, {1, 0, 0.2}};
  ConsistencyOptions opt;
  opt.unique_features = true;
  EXPECT_EQ(PruneInconsistent(x, y, kx, ky, pairs, opt).size(), 1u);
}

TEST(PruneTest, ResultsSortedByXPosition) {
  const ts::TimeSeries x = Ramp(300), y = Ramp(300);
  std::vector<sift::Keypoint> kx{MakeKp(200, 3), MakeKp(50, 3)};
  std::vector<sift::Keypoint> ky{MakeKp(210, 3), MakeKp(55, 3)};
  std::vector<MatchPair> pairs{{0, 0, 0.1}, {1, 1, 0.1}};
  const auto result = PruneInconsistent(x, y, kx, ky, pairs);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_LT(result[0].start_x, result[1].start_x);
}

TEST(PruneTest, ScopesClampedToSeries) {
  const ts::TimeSeries x = Ramp(100), y = Ramp(100);
  std::vector<sift::Keypoint> kx{MakeKp(2, 10)};
  std::vector<sift::Keypoint> ky{MakeKp(98, 10)};
  std::vector<MatchPair> pairs{{0, 0, 0.1}};
  const auto result = PruneInconsistent(x, y, kx, ky, pairs);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_GE(result[0].start_x, 0.0);
  EXPECT_LE(result[0].end_x, 99.0);
  EXPECT_GE(result[0].start_y, 0.0);
  EXPECT_LE(result[0].end_y, 99.0);
}

TEST(BuildIntervalsTest, NoPairsGivesSingleFullInterval) {
  const auto intervals = BuildIntervals(100, 80, {});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].begin_x, 0u);
  EXPECT_EQ(intervals[0].end_x, 99u);
  EXPECT_EQ(intervals[0].begin_y, 0u);
  EXPECT_EQ(intervals[0].end_y, 79u);
}

TEST(BuildIntervalsTest, OnePairGivesThreeIntervals) {
  AlignedPair p;
  p.start_x = 40;
  p.end_x = 60;
  p.start_y = 30;
  p.end_y = 50;
  const auto intervals = BuildIntervals(100, 100, {p});
  // Cuts at {0,40,60,99}: three intervals.
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0].begin_x, 0u);
  EXPECT_EQ(intervals[1].begin_x, 40u);
  EXPECT_EQ(intervals[1].end_x, 60u);
  EXPECT_EQ(intervals[1].begin_y, 30u);
  EXPECT_EQ(intervals[1].end_y, 50u);
  EXPECT_EQ(intervals[2].end_x, 99u);
  EXPECT_EQ(intervals[2].end_y, 99u);
}

TEST(BuildIntervalsTest, IntervalsAreContiguousAndMonotone) {
  AlignedPair p1;
  p1.start_x = 10;
  p1.end_x = 30;
  p1.start_y = 15;
  p1.end_y = 35;
  AlignedPair p2;
  p2.start_x = 50;
  p2.end_x = 70;
  p2.start_y = 55;
  p2.end_y = 80;
  const auto intervals = BuildIntervals(100, 100, {p1, p2});
  ASSERT_EQ(intervals.size(), 5u);
  for (std::size_t k = 1; k < intervals.size(); ++k) {
    EXPECT_GE(intervals[k].begin_x, intervals[k - 1].begin_x);
    EXPECT_GE(intervals[k].begin_y, intervals[k - 1].begin_y);
  }
  EXPECT_EQ(intervals.front().begin_x, 0u);
  EXPECT_EQ(intervals.back().end_x, 99u);
}

TEST(BuildIntervalsTest, EmptyLengthsGiveNoIntervals) {
  EXPECT_TRUE(BuildIntervals(0, 10, {}).empty());
  EXPECT_TRUE(BuildIntervals(10, 0, {}).empty());
}

TEST(BuildIntervalsTest, DegenerateBoundariesProduceEmptyIntervals) {
  // Boundaries at the same spot in X but spread in Y: X-side intervals
  // collapse but the structure stays aligned (same count both sides).
  AlignedPair p;
  p.start_x = 50;
  p.end_x = 50;
  p.start_y = 20;
  p.end_y = 70;
  const auto intervals = BuildIntervals(100, 100, {p});
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[1].begin_x, 50u);
  EXPECT_EQ(intervals[1].end_x, 50u);
  EXPECT_EQ(intervals[1].begin_y, 20u);
  EXPECT_EQ(intervals[1].end_y, 70u);
}

}  // namespace
}  // namespace align
}  // namespace sdtw
