#include "core/config.h"

#include <gtest/gtest.h>

namespace sdtw {
namespace core {
namespace {

TEST(ConfigTest, EmptySpecYieldsBase) {
  SdtwOptions base;
  base.extractor.descriptor_length = 32;
  const auto parsed = ParseOptions("", base);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->extractor.descriptor_length, 32u);
}

TEST(ConfigTest, ParsesConstraintNames) {
  for (const auto& [name, type] :
       std::vector<std::pair<std::string, ConstraintType>>{
           {"fc,fw", ConstraintType::kFixedCoreFixedWidth},
           {"fc,aw", ConstraintType::kFixedCoreAdaptiveWidth},
           {"ac,fw", ConstraintType::kAdaptiveCoreFixedWidth},
           {"ac,aw", ConstraintType::kAdaptiveCoreAdaptiveWidth}}) {
    const auto parsed = ParseOptions("constraint=" + name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(parsed->constraint.type, type) << name;
  }
}

TEST(ConfigTest, Ac2SetsRadius) {
  const auto parsed = ParseOptions("constraint=ac2,aw");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->constraint.type,
            ConstraintType::kAdaptiveCoreAdaptiveWidth);
  EXPECT_EQ(parsed->constraint.width_average_radius, 1u);
}

TEST(ConfigTest, ParsesNumericKnobs) {
  const auto parsed = ParseOptions(
      "width=0.15 min_width=0.1 max_width=0.5 radius=2 descriptor=16 "
      "epsilon=0.5 contrast=0.02 max_kp=40 kp_fraction=0.25 octaves=4 "
      "levels=3 tau_a=0.6 tau_s=3 tau_d=1.4 tau_pos=0.2");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->constraint.fixed_width_fraction, 0.15);
  EXPECT_DOUBLE_EQ(parsed->constraint.adaptive_width_min_fraction, 0.1);
  EXPECT_DOUBLE_EQ(parsed->constraint.adaptive_width_max_fraction, 0.5);
  EXPECT_EQ(parsed->constraint.width_average_radius, 2u);
  EXPECT_EQ(parsed->extractor.descriptor_length, 16u);
  EXPECT_DOUBLE_EQ(parsed->extractor.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(parsed->extractor.min_contrast, 0.02);
  EXPECT_EQ(parsed->extractor.max_keypoints, 40u);
  EXPECT_DOUBLE_EQ(parsed->extractor.max_keypoints_fraction, 0.25);
  EXPECT_EQ(parsed->extractor.scale_space.num_octaves, 4u);
  EXPECT_EQ(parsed->extractor.scale_space.levels_per_octave, 3u);
  EXPECT_DOUBLE_EQ(parsed->matching.tau_amplitude, 0.6);
  EXPECT_DOUBLE_EQ(parsed->matching.tau_scale, 3.0);
  EXPECT_DOUBLE_EQ(parsed->matching.tau_distinct, 1.4);
  EXPECT_DOUBLE_EQ(parsed->matching.tau_position, 0.2);
}

TEST(ConfigTest, ParsesBooleansAndCost) {
  auto parsed = ParseOptions("symmetric=1 mutual=true cost=squared");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->constraint.symmetric);
  EXPECT_TRUE(parsed->matching.require_mutual);
  EXPECT_EQ(parsed->dtw.cost, dtw::CostKind::kSquared);
  parsed = ParseOptions("symmetric=off cost=abs");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->constraint.symmetric);
  EXPECT_EQ(parsed->dtw.cost, dtw::CostKind::kAbsolute);
}

TEST(ConfigTest, RejectsUnknownKey) {
  std::string error;
  EXPECT_FALSE(ParseOptions("bogus=1", {}, &error).has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
}

TEST(ConfigTest, RejectsMalformedToken) {
  std::string error;
  EXPECT_FALSE(ParseOptions("width", {}, &error).has_value());
  EXPECT_FALSE(ParseOptions("=0.1", {}, &error).has_value());
  EXPECT_FALSE(ParseOptions("width=", {}, &error).has_value());
}

TEST(ConfigTest, RejectsBadValues) {
  EXPECT_FALSE(ParseOptions("width=abc").has_value());
  EXPECT_FALSE(ParseOptions("radius=-1").has_value());
  EXPECT_FALSE(ParseOptions("symmetric=maybe").has_value());
  EXPECT_FALSE(ParseOptions("cost=manhattan").has_value());
  EXPECT_FALSE(ParseOptions("constraint=zz").has_value());
}

TEST(ConfigTest, FormatParsesBackToSameOptions) {
  SdtwOptions original;
  original.constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
  original.constraint.width_average_radius = 1;
  original.constraint.symmetric = true;
  original.extractor.descriptor_length = 32;
  original.matching.tau_distinct = 1.4;
  original.dtw.cost = dtw::CostKind::kSquared;
  const std::string spec = FormatOptions(original);
  const auto parsed = ParseOptions(spec);
  ASSERT_TRUE(parsed.has_value()) << spec;
  EXPECT_EQ(parsed->constraint.type, original.constraint.type);
  EXPECT_EQ(parsed->constraint.width_average_radius,
            original.constraint.width_average_radius);
  EXPECT_EQ(parsed->constraint.symmetric, original.constraint.symmetric);
  EXPECT_EQ(parsed->extractor.descriptor_length,
            original.extractor.descriptor_length);
  EXPECT_DOUBLE_EQ(parsed->matching.tau_distinct,
                   original.matching.tau_distinct);
  EXPECT_EQ(parsed->dtw.cost, original.dtw.cost);
}

TEST(ConfigTest, LaterKeysOverrideEarlier) {
  const auto parsed = ParseOptions("width=0.1 width=0.3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_DOUBLE_EQ(parsed->constraint.fixed_width_fraction, 0.3);
}

}  // namespace
}  // namespace core
}  // namespace sdtw
