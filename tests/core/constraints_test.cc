#include "core/constraints.h"

#include <gtest/gtest.h>

namespace sdtw {
namespace core {
namespace {

using align::IntervalPair;

std::vector<IntervalPair> TwoIntervals() {
  // X: [0,49][50,99]; Y: [0,29][30,99] — second half stretched in Y.
  IntervalPair a;
  a.begin_x = 0;
  a.end_x = 49;
  a.begin_y = 0;
  a.end_y = 29;
  IntervalPair b;
  b.begin_x = 50;
  b.end_x = 99;
  b.begin_y = 30;
  b.end_y = 99;
  return {a, b};
}

TEST(ConstraintTypeNameTest, AllNamesDistinct) {
  EXPECT_STREQ(ConstraintTypeName(ConstraintType::kFixedCoreFixedWidth),
               "fc,fw");
  EXPECT_STREQ(ConstraintTypeName(ConstraintType::kFixedCoreAdaptiveWidth),
               "fc,aw");
  EXPECT_STREQ(ConstraintTypeName(ConstraintType::kAdaptiveCoreFixedWidth),
               "ac,fw");
  EXPECT_STREQ(
      ConstraintTypeName(ConstraintType::kAdaptiveCoreAdaptiveWidth),
      "ac,aw");
}

TEST(DiagonalCoreTest, EndpointsAndMidpoint) {
  const auto core = DiagonalCore(101, 51);
  ASSERT_EQ(core.size(), 101u);
  EXPECT_DOUBLE_EQ(core[0], 0.0);
  EXPECT_DOUBLE_EQ(core[100], 50.0);
  EXPECT_DOUBLE_EQ(core[50], 25.0);
}

TEST(AdaptiveCoreTest, EmptyIntervalsFallBackToDiagonal) {
  const auto core = AdaptiveCore(50, 50, {});
  const auto diag = DiagonalCore(50, 50);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(core[i], diag[i]);
}

TEST(AdaptiveCoreTest, InterpolatesInsideIntervals) {
  const auto core = AdaptiveCore(100, 100, TwoIntervals());
  // Inside interval 1: x=25 maps to y = 0 + 25/49*29 ≈ 14.8.
  EXPECT_NEAR(core[25], 25.0 / 49.0 * 29.0, 1e-9);
  // Inside interval 2: x=75 maps to y = 30 + 25/49*69 ≈ 65.2.
  EXPECT_NEAR(core[75], 30.0 + 25.0 / 49.0 * 69.0, 1e-9);
}

TEST(AdaptiveCoreTest, AnchorsCorners) {
  const auto core = AdaptiveCore(100, 100, TwoIntervals());
  EXPECT_DOUBLE_EQ(core[0], 0.0);
  EXPECT_DOUBLE_EQ(core[99], 99.0);
}

TEST(AdaptiveCoreTest, MonotoneForOrderedIntervals) {
  const auto core = AdaptiveCore(100, 100, TwoIntervals());
  for (std::size_t i = 1; i < core.size(); ++i) {
    EXPECT_GE(core[i], core[i - 1] - 1e-9);
  }
}

TEST(AdaptiveCoreTest, EmptyXIntervalMapsToMidpoint) {
  IntervalPair a;
  a.begin_x = 0;
  a.end_x = 49;
  a.begin_y = 0;
  a.end_y = 19;
  IntervalPair gap;  // single X point vs a whole Y stretch
  gap.begin_x = 49;
  gap.end_x = 49;
  gap.begin_y = 19;
  gap.end_y = 79;
  IntervalPair b;
  b.begin_x = 49;
  b.end_x = 99;
  b.begin_y = 79;
  b.end_y = 99;
  const auto core = AdaptiveCore(100, 100, {a, gap, b});
  // Core remains finite and in range everywhere.
  for (double c : core) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 99.0);
  }
}

TEST(AdaptiveWidthsTest, WidthsReflectIntervalSizes) {
  const auto intervals = TwoIntervals();
  const auto core = AdaptiveCore(100, 100, intervals);
  const auto widths = AdaptiveWidths(100, 100, intervals, core, 0, 0.0, 0.0);
  // Interval 1 in Y has width 30; interval 2 has width 70.
  EXPECT_NEAR(widths[10], 30.0, 1e-9);
  EXPECT_NEAR(widths[80], 70.0, 1e-9);
}

TEST(AdaptiveWidthsTest, MinimumFractionEnforced) {
  const auto intervals = TwoIntervals();
  const auto core = AdaptiveCore(100, 100, intervals);
  const auto widths =
      AdaptiveWidths(100, 100, intervals, core, 0, 0.50, 0.0);
  for (double w : widths) EXPECT_GE(w, 50.0 - 1e-9);
}

TEST(AdaptiveWidthsTest, MaximumFractionEnforced) {
  const auto intervals = TwoIntervals();
  const auto core = AdaptiveCore(100, 100, intervals);
  const auto widths =
      AdaptiveWidths(100, 100, intervals, core, 0, 0.0, 0.40);
  for (double w : widths) EXPECT_LE(w, 40.0 + 1e-9);
}

TEST(AdaptiveWidthsTest, RadiusAveragesNeighbours) {
  const auto intervals = TwoIntervals();
  const auto core = AdaptiveCore(100, 100, intervals);
  const auto w0 = AdaptiveWidths(100, 100, intervals, core, 0, 0.0, 0.0);
  const auto w1 = AdaptiveWidths(100, 100, intervals, core, 1, 0.0, 0.0);
  // With r=1, both intervals average to (30+70)/2 = 50.
  EXPECT_NEAR(w1[10], 50.0, 1e-9);
  EXPECT_NEAR(w1[80], 50.0, 1e-9);
  EXPECT_NE(w0[10], w1[10]);
}

TEST(AdaptiveWidthsTest, NoIntervalsGiveFullWidth) {
  const auto core = DiagonalCore(50, 60);
  const auto widths = AdaptiveWidths(50, 60, {}, core, 0, 0.0, 0.0);
  for (double w : widths) EXPECT_DOUBLE_EQ(w, 60.0);
}

TEST(BuildBandTest, AllTypesProduceFeasibleBands) {
  const auto intervals = TwoIntervals();
  for (ConstraintType type :
       {ConstraintType::kFixedCoreFixedWidth,
        ConstraintType::kFixedCoreAdaptiveWidth,
        ConstraintType::kAdaptiveCoreFixedWidth,
        ConstraintType::kAdaptiveCoreAdaptiveWidth}) {
    ConstraintOptions opt;
    opt.type = type;
    const dtw::Band band = BuildConstraintBand(100, 100, intervals, opt);
    EXPECT_TRUE(band.IsFeasible()) << ConstraintTypeName(type);
  }
}

TEST(BuildBandTest, FixedCoreFixedWidthIgnoresIntervals) {
  ConstraintOptions opt;
  opt.type = ConstraintType::kFixedCoreFixedWidth;
  opt.fixed_width_fraction = 0.1;
  const dtw::Band with = BuildConstraintBand(80, 80, TwoIntervals(), opt);
  const dtw::Band without = BuildConstraintBand(80, 80, {}, opt);
  EXPECT_EQ(with, without);
}

TEST(BuildBandTest, AdaptiveCoreFollowsSkewedAlignment) {
  ConstraintOptions opt;
  opt.type = ConstraintType::kAdaptiveCoreFixedWidth;
  opt.fixed_width_fraction = 0.06;
  const dtw::Band band = BuildConstraintBand(100, 100, TwoIntervals(), opt);
  // At x=25 the adaptive core is ~14.8, far below the diagonal 25; the band
  // should contain the skewed core and (being narrow) exclude the diagonal.
  EXPECT_TRUE(band.Contains(25, 15));
  EXPECT_FALSE(band.Contains(25, 40));
}

TEST(BuildBandTest, AdaptiveWidthNarrowerInSmallIntervals) {
  ConstraintOptions opt;
  opt.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
  const dtw::Band band = BuildConstraintBand(100, 100, TwoIntervals(), opt);
  // Interval 1 (Y width 30) rows should be narrower than interval 2 rows
  // (Y width 70).
  EXPECT_LT(band.row(25).width(), band.row(75).width());
}

TEST(BuildBandTest, SymmetricBandContainsAsymmetric) {
  ConstraintOptions opt;
  opt.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
  const dtw::Band directed = BuildConstraintBand(100, 100, TwoIntervals(),
                                                 opt);
  opt.symmetric = true;
  const dtw::Band sym = BuildConstraintBand(100, 100, TwoIntervals(), opt);
  EXPECT_GE(sym.CellCount(), directed.CellCount());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_LE(sym.row(i).lo, directed.row(i).lo);
    EXPECT_GE(sym.row(i).hi, directed.row(i).hi);
  }
  EXPECT_TRUE(sym.IsFeasible());
}

TEST(BuildBandTest, RectangularGrids) {
  IntervalPair a;
  a.begin_x = 0;
  a.end_x = 39;
  a.begin_y = 0;
  a.end_y = 59;
  IntervalPair b;
  b.begin_x = 40;
  b.end_x = 79;
  b.begin_y = 60;
  b.end_y = 119;
  for (ConstraintType type :
       {ConstraintType::kFixedCoreAdaptiveWidth,
        ConstraintType::kAdaptiveCoreFixedWidth,
        ConstraintType::kAdaptiveCoreAdaptiveWidth}) {
    ConstraintOptions opt;
    opt.type = type;
    const dtw::Band band = BuildConstraintBand(80, 120, {a, b}, opt);
    EXPECT_TRUE(band.IsFeasible()) << ConstraintTypeName(type);
    EXPECT_EQ(band.n(), 80u);
    EXPECT_EQ(band.m(), 120u);
  }
}

TEST(BuildBandTest, EmptyGridYieldsEmptyBand) {
  ConstraintOptions opt;
  EXPECT_TRUE(BuildConstraintBand(0, 10, {}, opt).empty());
  EXPECT_TRUE(BuildConstraintBand(10, 0, {}, opt).empty());
}

TEST(BuildBandTest, NoIntervalsAdaptiveDegradesGracefully) {
  // Without alignment evidence, ac,aw covers (nearly) the full grid, i.e.
  // it is conservative rather than wrong.
  ConstraintOptions opt;
  opt.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
  const dtw::Band band = BuildConstraintBand(60, 60, {}, opt);
  EXPECT_TRUE(band.IsFeasible());
  // Width degenerates to the full series length M; centred on the diagonal
  // that still clips at the corners, so coverage lands around 3/4 of the
  // grid rather than all of it.
  EXPECT_GT(band.Coverage(), 0.7);
}

}  // namespace
}  // namespace core
}  // namespace sdtw
