#include "core/status.h"

#include <gtest/gtest.h>
#include <string>
#include <utility>
#include <vector>

namespace sdtw {
namespace core {
namespace {

TEST(StatusTest, DefaultAndOkAreSuccess) {
  const Status def;
  EXPECT_TRUE(def.ok());
  EXPECT_EQ(def.code(), StatusCode::kOk);
  EXPECT_TRUE(def.message().empty());
  EXPECT_EQ(def, Status::Ok());
  EXPECT_EQ(def.ToString(), "ok");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status s(StatusCode::kDeadlineExceeded, "queued past its deadline");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "queued past its deadline");
  EXPECT_EQ(s.ToString(), "deadline_exceeded: queued past its deadline");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  const Status a(StatusCode::kWorkerFault, "boom");
  EXPECT_EQ(a, Status(StatusCode::kWorkerFault, "boom"));
  EXPECT_FALSE(a == Status(StatusCode::kWorkerFault, "bang"));
  EXPECT_FALSE(a == Status(StatusCode::kUnknown, "boom"));
}

TEST(StatusTest, EveryCodeHasAStableName) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument),
            "invalid_argument");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
  EXPECT_EQ(StatusCodeName(StatusCode::kWorkerFault), "worker_fault");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnknown), "unknown");
}

TEST(StatusOrTest, HoldsValue) {
  const StatusOr<int> sor(7);
  ASSERT_TRUE(sor.ok());
  EXPECT_TRUE(sor.status().ok());
  EXPECT_EQ(sor.value(), 7);
  EXPECT_EQ(*sor, 7);
  EXPECT_EQ(sor.value_or(-1), 7);
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> sor(Status(StatusCode::kUnavailable, "shut down"));
  ASSERT_FALSE(sor.ok());
  EXPECT_EQ(sor.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(sor.status().message(), "shut down");
  EXPECT_EQ(sor.value_or(-1), -1);
}

TEST(StatusOrTest, ImplicitConstructionFromBothSides) {
  // The whole point of implicit conversion: `return hits;` and
  // `return Status(...)` both work from a StatusOr-returning function.
  const auto make = [](bool fail) -> StatusOr<std::string> {
    if (fail) return Status(StatusCode::kWorkerFault, "injected");
    return std::string("hits");
  };
  EXPECT_TRUE(make(false).ok());
  EXPECT_EQ(*make(false), "hits");
  EXPECT_EQ(make(true).status().code(), StatusCode::kWorkerFault);
}

TEST(StatusOrTest, MoveOutDoesNotCopy) {
  StatusOr<std::vector<int>> sor(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(sor.ok());
  const int* data = sor.value().data();
  const std::vector<int> moved = std::move(sor).value();
  EXPECT_EQ(moved.data(), data) << "rvalue value() must move, not copy";
  EXPECT_EQ(moved, (std::vector<int>{1, 2, 3}));
}

TEST(StatusOrTest, ArrowReachesTheValue) {
  StatusOr<std::string> sor(std::string("abc"));
  EXPECT_EQ(sor->size(), 3u);
}

#ifdef NDEBUG
TEST(StatusOrTest, OkStatusDegradesToUnknownInsteadOfLying) {
  // Contract violation (asserted in debug builds): an OK status can never
  // represent the error alternative, so it is coerced to a real error.
  const StatusOr<int> sor(Status::Ok());
  EXPECT_FALSE(sor.ok());
  EXPECT_EQ(sor.status().code(), StatusCode::kUnknown);
}
#endif

}  // namespace
}  // namespace core
}  // namespace sdtw
