#include "core/sdtw.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"
#include "ts/random.h"
#include "ts/transforms.h"

namespace sdtw {
namespace core {
namespace {

ts::TimeSeries Smooth(std::size_t n, std::uint64_t seed, std::size_t k = 10) {
  ts::Rng rng(seed);
  return ts::ZNormalize(data::patterns::RandomSmooth(n, k, rng));
}

TEST(SdtwTest, SelfComparisonIsZero) {
  Sdtw engine;
  const ts::TimeSeries x = Smooth(150, 1);
  const SdtwResult r = engine.Compare(x, x);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
}

TEST(SdtwTest, DistanceUpperBoundsOptimalDtw) {
  Sdtw engine;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ts::TimeSeries x = Smooth(150, 100 + seed);
    const ts::TimeSeries y = Smooth(150, 200 + seed);
    const double optimal = dtw::DtwDistance(x, y);
    const double approx = engine.Compare(x, y).distance;
    EXPECT_GE(approx, optimal - 1e-9) << seed;
    EXPECT_TRUE(std::isfinite(approx)) << seed;
  }
}

TEST(SdtwTest, AlwaysFiniteThanksToBridging) {
  // Even pathological inputs must produce a finite distance: the band is
  // repaired to feasibility.
  Sdtw engine;
  const ts::TimeSeries x = Smooth(80, 3);
  const ts::TimeSeries spiky = ts::TimeSeries::Constant(120, 0.0);
  EXPECT_TRUE(std::isfinite(engine.Compare(x, spiky).distance));
}

TEST(SdtwTest, PathValidWhenRequested) {
  SdtwOptions opt;
  opt.dtw.want_path = true;
  Sdtw engine(opt);
  const ts::TimeSeries x = Smooth(100, 5);
  const ts::TimeSeries y = Smooth(120, 6);
  const SdtwResult r = engine.Compare(x, y);
  EXPECT_TRUE(dtw::IsValidWarpPath(r.path, 100, 120));
  for (const dtw::PathPoint& p : r.path) {
    EXPECT_TRUE(r.band.Contains(p.first, p.second));
  }
}

TEST(SdtwTest, BandFeasibleForAllConstraintTypes) {
  const ts::TimeSeries x = Smooth(150, 7);
  const ts::TimeSeries y = Smooth(150, 8);
  for (ConstraintType type :
       {ConstraintType::kFixedCoreFixedWidth,
        ConstraintType::kFixedCoreAdaptiveWidth,
        ConstraintType::kAdaptiveCoreFixedWidth,
        ConstraintType::kAdaptiveCoreAdaptiveWidth}) {
    SdtwOptions opt;
    opt.constraint.type = type;
    Sdtw engine(opt);
    const SdtwResult r = engine.Compare(x, y);
    EXPECT_TRUE(r.band.IsFeasible()) << ConstraintTypeName(type);
    EXPECT_TRUE(std::isfinite(r.distance)) << ConstraintTypeName(type);
  }
}

TEST(SdtwTest, CompareEarlyAbandonUnderThresholdMatchesCompare) {
  SdtwOptions opt;
  opt.dtw.want_path = true;
  Sdtw engine(opt);
  const ts::TimeSeries x = Smooth(100, 11);
  const ts::TimeSeries y = Smooth(110, 12);
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  const SdtwResult full = engine.Compare(x, fx, y, fy);
  // An inclusive threshold (the exact distance) must change nothing:
  // same distance, same alignment path, same band.
  const SdtwResult ea =
      engine.CompareEarlyAbandon(x, fx, y, fy, full.distance);
  EXPECT_EQ(ea.distance, full.distance);
  EXPECT_EQ(ea.path, full.path);
  EXPECT_EQ(ea.band, full.band);
  EXPECT_EQ(ea.cells_filled, full.cells_filled);
}

TEST(SdtwTest, CompareEarlyAbandonAbandonsBelowThreshold) {
  SdtwOptions opt;
  opt.dtw.want_path = true;
  Sdtw engine(opt);
  const ts::TimeSeries x = Smooth(100, 13);
  const ts::TimeSeries y = Smooth(110, 14);
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  const SdtwResult full = engine.Compare(x, fx, y, fy);
  ASSERT_GT(full.distance, 0.0);
  const SdtwResult ea =
      engine.CompareEarlyAbandon(x, fx, y, fy, full.distance / 2.0);
  EXPECT_TRUE(std::isinf(ea.distance));
  EXPECT_TRUE(ea.path.empty());
  EXPECT_LE(ea.cells_filled, full.cells_filled);
}

TEST(SdtwTest, PrunesWorkOnStructuredSeries) {
  // ac,aw on feature-rich series should fill fewer cells than full DTW.
  SdtwOptions opt;
  opt.constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
  Sdtw engine(opt);
  const ts::TimeSeries x = Smooth(256, 9, 14);
  const ts::TimeSeries y = Smooth(256, 10, 14);
  const SdtwResult r = engine.Compare(x, y);
  EXPECT_LT(r.cells_filled, 256u * 256u);
  EXPECT_GT(r.cells_filled, 0u);
}

TEST(SdtwTest, WarpedCopyAlignsWell) {
  // y is a warped copy of x: the adaptive band should keep the distance
  // close to optimal.
  const ts::TimeSeries x = Smooth(200, 11, 12);
  data::DeformationOptions deform;
  deform.noise_sigma = 0.0;
  deform.amplitude_jitter = 0.0;
  ts::Rng rng(99);
  const ts::TimeSeries y = data::Deform(x, deform, rng);
  const double optimal = dtw::DtwDistance(x, y);
  SdtwOptions opt;
  opt.constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
  Sdtw engine(opt);
  const double approx = engine.Compare(x, y).distance;
  EXPECT_GE(approx, optimal - 1e-9);
  // Error within 50% on a structurally-identical pair.
  if (optimal > 1e-6) {
    EXPECT_LT((approx - optimal) / optimal, 0.5);
  }
}

TEST(SdtwTest, ExtractFeaturesDeterministic) {
  Sdtw engine;
  const ts::TimeSeries x = Smooth(150, 13);
  const auto f1 = engine.ExtractFeatures(x);
  const auto f2 = engine.ExtractFeatures(x);
  ASSERT_EQ(f1.size(), f2.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_DOUBLE_EQ(f1[i].position, f2[i].position);
    EXPECT_DOUBLE_EQ(f1[i].sigma, f2[i].sigma);
  }
}

TEST(SdtwTest, PreExtractedFeaturesMatchOnTheFly) {
  Sdtw engine;
  const ts::TimeSeries x = Smooth(150, 14);
  const ts::TimeSeries y = Smooth(150, 15);
  const SdtwResult a = engine.Compare(x, y);
  const SdtwResult b =
      engine.Compare(x, engine.ExtractFeatures(x), y,
                     engine.ExtractFeatures(y));
  EXPECT_DOUBLE_EQ(a.distance, b.distance);
}

TEST(SdtwTest, TimingsPopulated) {
  Sdtw engine;
  const ts::TimeSeries x = Smooth(150, 16);
  const ts::TimeSeries y = Smooth(150, 17);
  const SdtwResult r = engine.Compare(x, y);
  EXPECT_GE(r.timing.matching_seconds, 0.0);
  EXPECT_GE(r.timing.dp_seconds, 0.0);
  EXPECT_GT(r.timing.total(), 0.0);
}

TEST(SdtwTest, DistanceHelperMatchesCompare) {
  Sdtw engine;
  const ts::TimeSeries x = Smooth(120, 18);
  const ts::TimeSeries y = Smooth(120, 19);
  EXPECT_DOUBLE_EQ(engine.Distance(x, y), engine.Compare(x, y).distance);
}

TEST(SdtwTest, BuildBandMatchesCompareBand) {
  Sdtw engine;
  const ts::TimeSeries x = Smooth(120, 20);
  const ts::TimeSeries y = Smooth(120, 21);
  const auto fx = engine.ExtractFeatures(x);
  const auto fy = engine.ExtractFeatures(y);
  const dtw::Band band = engine.BuildBand(x, fx, y, fy);
  const SdtwResult r = engine.Compare(x, fx, y, fy);
  EXPECT_EQ(band, r.band);
}

TEST(SdtwTest, SymmetricModeDistanceIsSymmetric) {
  SdtwOptions opt;
  opt.constraint.type = ConstraintType::kAdaptiveCoreAdaptiveWidth;
  opt.constraint.symmetric = true;
  Sdtw engine(opt);
  const ts::TimeSeries x = Smooth(130, 22);
  const ts::TimeSeries y = Smooth(130, 23);
  const double dxy = engine.Compare(x, y).distance;
  const double dyx = engine.Compare(y, x).distance;
  // The combined band makes the measure symmetric (paper §3.3.3).
  EXPECT_NEAR(dxy, dyx, 1e-9);
}

TEST(SdtwTest, DifferentLengthSeries) {
  Sdtw engine;
  const ts::TimeSeries x = Smooth(100, 24);
  const ts::TimeSeries y = Smooth(175, 25);
  const SdtwResult r = engine.Compare(x, y);
  EXPECT_TRUE(std::isfinite(r.distance));
  EXPECT_EQ(r.band.n(), 100u);
  EXPECT_EQ(r.band.m(), 175u);
}

TEST(PaperRosterTest, ContainsAllPaperAlgorithms) {
  const auto roster = PaperAlgorithmRoster();
  ASSERT_EQ(roster.size(), 10u);
  EXPECT_STREQ(roster[0].label, "dtw");
  EXPECT_TRUE(roster[0].full_dtw);
  EXPECT_STREQ(roster[1].label, "fc,fw 6%");
  EXPECT_STREQ(roster[4].label, "fc,aw");
  EXPECT_STREQ(roster[8].label, "ac,aw");
  EXPECT_STREQ(roster[9].label, "ac2,aw");
  EXPECT_EQ(roster[9].options.constraint.width_average_radius, 1u);
}

TEST(PaperRosterTest, DescriptorLengthPropagates) {
  const auto roster = PaperAlgorithmRoster(16);
  for (const NamedConfig& c : roster) {
    if (!c.full_dtw) {
      EXPECT_EQ(c.options.extractor.descriptor_length, 16u);
    }
  }
}

TEST(PaperRosterTest, FcAwHasTwentyPercentLowerBound) {
  const auto roster = PaperAlgorithmRoster();
  const NamedConfig& fcaw = roster[4];
  EXPECT_DOUBLE_EQ(fcaw.options.constraint.adaptive_width_min_fraction, 0.20);
}

}  // namespace
}  // namespace core
}  // namespace sdtw
