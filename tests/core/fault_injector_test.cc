#include "core/fault_injector.h"

#include <algorithm>
#include <cstddef>
#include <gtest/gtest.h>
#include <string>
#include <thread>
#include <vector>

namespace sdtw {
namespace core {
namespace {

// A decision trace: which of the next `n` calls at `site` fail.
std::vector<bool> Trace(FaultInjector& injector, std::string_view site,
                        std::size_t n) {
  std::vector<bool> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(injector.ShouldFail(site));
  return out;
}

TEST(FaultInjectorTest, DisabledFastPathNeverFails) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(injector.ShouldFail("any.site"));
  // Unarmed sites are not even counted: there is no site entry to count in.
  EXPECT_EQ(injector.counters("any.site").calls, 0u);
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameFaultPattern) {
  FaultInjector injector;
  injector.Arm("svc.worker", 0.5, 42);
  const auto first = Trace(injector, "svc.worker", 200);
  injector.Arm("svc.worker", 0.5, 42);  // re-arm: counter resets
  const auto second = Trace(injector, "svc.worker", 200);
  EXPECT_EQ(first, second);
  // Sanity: a half-rate pattern is neither all-pass nor all-fail.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 200);
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentPatterns) {
  FaultInjector injector;
  injector.Arm("svc.worker", 0.5, 1);
  const auto seed1 = Trace(injector, "svc.worker", 200);
  injector.Arm("svc.worker", 0.5, 2);
  const auto seed2 = Trace(injector, "svc.worker", 200);
  EXPECT_NE(seed1, seed2);
}

TEST(FaultInjectorTest, RateZeroAndOneAreExact) {
  FaultInjector injector;
  injector.Arm("never", 0.0, 7);
  injector.Arm("always", 1.0, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.ShouldFail("never"));
    EXPECT_TRUE(injector.ShouldFail("always"));
  }
  EXPECT_EQ(injector.counters("never").calls, 100u);
  EXPECT_EQ(injector.counters("never").failures, 0u);
  EXPECT_EQ(injector.counters("always").failures, 100u);
}

TEST(FaultInjectorTest, IntermediateRateLandsNearExpectation) {
  FaultInjector injector;
  injector.Arm("svc.worker", 0.3, 99);
  const auto trace = Trace(injector, "svc.worker", 2000);
  const auto failures = std::count(trace.begin(), trace.end(), true);
  // 0.3 * 2000 = 600 expected; +-5 sigma (~100) keeps this deterministic
  // in practice while still catching a broken mix.
  EXPECT_GT(failures, 500);
  EXPECT_LT(failures, 700);
}

TEST(FaultInjectorTest, MaxFailuresTargetsExactlyTheFirstN) {
  FaultInjector injector;
  injector.Arm("svc.worker", FaultInjector::SiteConfig{1.0, 0, 3});
  const auto trace = Trace(injector, "svc.worker", 10);
  const std::vector<bool> want{true, true, true, false, false,
                               false, false, false, false, false};
  EXPECT_EQ(trace, want);
  EXPECT_EQ(injector.counters("svc.worker").calls, 10u);
  EXPECT_EQ(injector.counters("svc.worker").failures, 3u);
}

TEST(FaultInjectorTest, SitesAreIndependent) {
  // Arming (and exercising) site B must not perturb site A's pattern.
  FaultInjector lone;
  lone.Arm("site.a", 0.5, 5);
  const auto alone = Trace(lone, "site.a", 100);

  FaultInjector crowded;
  crowded.Arm("site.a", 0.5, 5);
  crowded.Arm("site.b", 0.9, 6);
  std::vector<bool> interleaved;
  for (int i = 0; i < 100; ++i) {
    interleaved.push_back(crowded.ShouldFail("site.a"));
    crowded.ShouldFail("site.b");
  }
  EXPECT_EQ(interleaved, alone);
}

TEST(FaultInjectorTest, DisarmAndResetClear) {
  FaultInjector injector;
  injector.Arm("svc.worker", 1.0, 0);
  EXPECT_TRUE(injector.armed());
  EXPECT_TRUE(injector.ShouldFail("svc.worker"));
  injector.Disarm("svc.worker");
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFail("svc.worker"));

  injector.Arm("a", 1.0, 0);
  injector.Arm("b", 1.0, 0);
  injector.Disarm("a");
  EXPECT_TRUE(injector.armed()) << "one site still armed";
  injector.Reset();
  // Reset re-arms from SDTW_FAULT; either way our sites are gone.
  EXPECT_FALSE(injector.config("a").has_value());
  EXPECT_FALSE(injector.config("b").has_value());
}

TEST(FaultInjectorTest, ArmFromSpecParsesMultipleSites) {
  FaultInjector injector;
  ASSERT_TRUE(injector.ArmFromSpec("svc.worker:0.25:7,svc.cache:1:99"));
  const auto worker = injector.config("svc.worker");
  ASSERT_TRUE(worker.has_value());
  EXPECT_DOUBLE_EQ(worker->rate, 0.25);
  EXPECT_EQ(worker->seed, 7u);
  const auto cache = injector.config("svc.cache");
  ASSERT_TRUE(cache.has_value());
  EXPECT_DOUBLE_EQ(cache->rate, 1.0);
  EXPECT_EQ(cache->seed, 99u);
}

TEST(FaultInjectorTest, MalformedSpecArmsNothing) {
  const std::vector<std::string> bad{
      "svc.worker",          // no rate/seed
      "svc.worker:0.5",      // no seed
      "svc.worker:1.5:0",    // rate out of range
      "svc.worker:-0.1:0",   // rate out of range
      "svc.worker:abc:0",    // unparsable rate
      "svc.worker:0.5:xyz",  // unparsable seed
      ":0.5:1",              // empty site
      "ok.site:0.5:1,bad",   // one bad entry poisons the whole spec
  };
  for (const std::string& spec : bad) {
    FaultInjector injector;
    EXPECT_FALSE(injector.ArmFromSpec(spec)) << spec;
    EXPECT_FALSE(injector.armed()) << spec;
  }
}

TEST(FaultInjectorTest, ScopedFaultRestoresPreviousState) {
  FaultInjector& global = FaultInjector::Global();
  const std::string site = "test.scoped_fault_restore";
  ASSERT_FALSE(global.config(site).has_value());
  {
    ScopedFault outer(site, 0.5, 11);
    ASSERT_TRUE(global.config(site).has_value());
    EXPECT_DOUBLE_EQ(global.config(site)->rate, 0.5);
    {
      ScopedFault inner(site, FaultInjector::SiteConfig{1.0, 22, 3});
      EXPECT_DOUBLE_EQ(global.config(site)->rate, 1.0);
      EXPECT_EQ(global.config(site)->max_failures, 3u);
    }
    // Inner scope restores the outer arming, not "unarmed".
    ASSERT_TRUE(global.config(site).has_value());
    EXPECT_DOUBLE_EQ(global.config(site)->rate, 0.5);
    EXPECT_EQ(global.config(site)->seed, 11u);
  }
  EXPECT_FALSE(global.config(site).has_value())
      << "outer scope must fully disarm a previously unarmed site";
}

TEST(FaultInjectorTest, ThreadSafeCountingLosesNothing) {
  FaultInjector injector;
  injector.Arm("svc.worker", 0.5, 3);
  std::vector<std::thread> threads;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kCalls = 500;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector]() {
      for (std::size_t i = 0; i < kCalls; ++i) {
        injector.ShouldFail("svc.worker");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(injector.counters("svc.worker").calls, kThreads * kCalls);
}

}  // namespace
}  // namespace core
}  // namespace sdtw
