#include "retrieval/knn.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"
#include "dtw/dtw.h"

namespace sdtw {
namespace retrieval {
namespace {

ts::Dataset SmallGun(std::size_t n = 16, std::size_t len = 100) {
  data::GeneratorOptions opt;
  opt.num_series = n;
  opt.length = len;
  return data::MakeGunLike(opt);
}

TEST(KnnEngineTest, EmptyIndexReturnsNothing) {
  KnnEngine engine;
  EXPECT_TRUE(engine.Query(ts::TimeSeries({1.0, 2.0}), 3).empty());
  EXPECT_EQ(engine.Classify(ts::TimeSeries({1.0, 2.0}), 3), -1);
}

TEST(KnnEngineTest, SelfQueryFindsSelfFirst) {
  const ts::Dataset ds = SmallGun();
  KnnEngine engine;
  engine.Index(ds);
  const auto hits = engine.Query(ds[3], 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 3u);
  EXPECT_NEAR(hits[0].distance, 0.0, 1e-9);
}

TEST(KnnEngineTest, ExcludeSupportsLeaveOneOut) {
  const ts::Dataset ds = SmallGun();
  KnnEngine engine;
  engine.Index(ds);
  const auto hits = engine.Query(ds[3], 3, 3);
  ASSERT_EQ(hits.size(), 3u);
  for (const Hit& h : hits) EXPECT_NE(h.index, 3u);
}

TEST(KnnEngineTest, HitsSortedAscending) {
  const ts::Dataset ds = SmallGun();
  KnnEngine engine;
  engine.Index(ds);
  const auto hits = engine.Query(ds[0], 5, 0);
  ASSERT_EQ(hits.size(), 5u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].distance, hits[i - 1].distance);
  }
}

TEST(KnnEngineTest, FullDtwModeMatchesDirectComputation) {
  const ts::Dataset ds = SmallGun(10);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  opt.use_lb_kim = false;
  opt.use_lb_keogh = false;
  opt.use_early_abandon = false;
  KnnEngine engine(opt);
  engine.Index(ds);
  const auto hits = engine.Query(ds[0], 1, 0);
  ASSERT_EQ(hits.size(), 1u);
  // Verify against brute force.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t j = 1; j < ds.size(); ++j) {
    const double d = dtw::DtwDistance(ds[0], ds[j]);
    if (d < best) {
      best = d;
      best_idx = j;
    }
  }
  EXPECT_EQ(hits[0].index, best_idx);
  EXPECT_NEAR(hits[0].distance, best, 1e-9);
}

TEST(KnnEngineTest, CascadePreservesExactResults) {
  // The LB cascade and early abandoning must not change the top-k result
  // for the exact-DTW distance.
  const ts::Dataset ds = SmallGun(14);
  KnnOptions plain;
  plain.distance = DistanceKind::kFullDtw;
  plain.use_lb_kim = false;
  plain.use_lb_keogh = false;
  plain.use_early_abandon = false;
  KnnOptions cascade;
  cascade.distance = DistanceKind::kFullDtw;
  KnnEngine a(plain), b(cascade);
  a.Index(ds);
  b.Index(ds);
  for (std::size_t q = 0; q < 5; ++q) {
    const auto ha = a.Query(ds[q], 3, q);
    const auto hb = b.Query(ds[q], 3, q);
    ASSERT_EQ(ha.size(), hb.size()) << q;
    for (std::size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].index, hb[i].index) << q;
      EXPECT_NEAR(ha[i].distance, hb[i].distance, 1e-9) << q;
    }
  }
}

TEST(KnnEngineTest, CascadeActuallyPrunes) {
  const ts::Dataset ds = SmallGun(20);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  QueryStats stats;
  engine.Query(ds[0], 1, 0, &stats);
  EXPECT_EQ(stats.candidates, 19u);
  EXPECT_GT(stats.pruned_by_kim + stats.pruned_by_keogh +
                stats.pruned_by_early_abandon,
            0u);
  EXPECT_LT(stats.dp_evaluations, stats.candidates);
}

TEST(KnnEngineTest, ClassifyMajorityVote) {
  const ts::Dataset ds = SmallGun(20);
  KnnEngine engine;
  engine.Index(ds);
  // Self-classification with k=3 including self should recover the label.
  int correct = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    if (engine.Classify(ds[i], 3) == ds[i].label()) ++correct;
  }
  EXPECT_GE(correct, 5);
}

TEST(KnnEngineTest, LeaveOneOutAccuracyReasonable) {
  const ts::Dataset ds = SmallGun(20, 100);
  KnnEngine engine;
  engine.Index(ds);
  const double acc = engine.LeaveOneOutAccuracy(1);
  EXPECT_GE(acc, 0.5);  // two balanced classes; random is 0.5
  EXPECT_LE(acc, 1.0);
}

TEST(KnnEngineTest, SdtwModeUpperBoundsFullDtwDistances) {
  const ts::Dataset ds = SmallGun(10);
  KnnOptions opt;
  opt.distance = DistanceKind::kSdtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  const auto hits = engine.Query(ds[0], 3, 0);
  for (const Hit& h : hits) {
    EXPECT_GE(h.distance, dtw::DtwDistance(ds[0], ds[h.index]) - 1e-9);
  }
}

TEST(KnnEngineTest, EuclideanAndL1ArePinnedOnKnownPair) {
  // Regression: kEuclidean used to compute pointwise L1. Pin both
  // distances on a known pair — diffs (1, 2, 3):
  //   L1 = 1 + 2 + 3 = 6,  Euclidean = sqrt(1 + 4 + 9) = sqrt(14).
  ts::Dataset ds;
  ds.Add(ts::TimeSeries({1.0, 1.0, 1.0}, 0));
  const ts::TimeSeries query({2.0, 3.0, 4.0});

  KnnOptions euclid;
  euclid.distance = DistanceKind::kEuclidean;
  euclid.use_lb_kim = false;
  KnnEngine e(euclid);
  e.Index(ds);
  const auto eh = e.Query(query, 1);
  ASSERT_EQ(eh.size(), 1u);
  EXPECT_DOUBLE_EQ(eh[0].distance, std::sqrt(14.0));

  KnnOptions l1;
  l1.distance = DistanceKind::kL1;
  l1.use_lb_kim = false;
  KnnEngine l(l1);
  l.Index(ds);
  const auto lh = l.Query(query, 1);
  ASSERT_EQ(lh.size(), 1u);
  EXPECT_DOUBLE_EQ(lh[0].distance, 6.0);
}

TEST(KnnEngineTest, L1AndEuclideanRejectLengthMismatch) {
  // Both pointwise baselines are undefined across lengths and must yield
  // +inf (no hit) for a mismatched candidate.
  ts::Dataset ds;
  ds.Add(ts::TimeSeries({0.0, 0.0}, 0));  // length mismatch vs query
  const ts::TimeSeries query({1.0, 1.0, 1.0});
  for (const DistanceKind kind : {DistanceKind::kL1,
                                  DistanceKind::kEuclidean}) {
    KnnOptions opt;
    opt.distance = kind;
    opt.use_lb_kim = false;
    KnnEngine engine(opt);
    engine.Index(ds);
    EXPECT_TRUE(engine.Query(query, 1).empty());
  }
}

TEST(KnnEngineTest, L1AndEuclideanAgreeOnRankingOfOffsetSeries) {
  // Candidates at constant offsets from the query: both norms are
  // monotone in the offset, so the rankings must be identical.
  ts::Dataset ds;
  ds.Add(ts::TimeSeries({5.0, 5.0, 5.0, 5.0}, 0));
  ds.Add(ts::TimeSeries({1.0, 1.0, 1.0, 1.0}, 1));
  ds.Add(ts::TimeSeries({3.0, 3.0, 3.0, 3.0}, 2));
  const ts::TimeSeries query({0.0, 0.0, 0.0, 0.0});
  std::vector<std::vector<std::size_t>> orders;
  for (const DistanceKind kind : {DistanceKind::kL1,
                                  DistanceKind::kEuclidean}) {
    KnnOptions opt;
    opt.distance = kind;
    KnnEngine engine(opt);
    engine.Index(ds);
    const auto hits = engine.Query(query, 3);
    ASSERT_EQ(hits.size(), 3u);
    std::vector<std::size_t> order;
    for (const Hit& h : hits) order.push_back(h.index);
    orders.push_back(std::move(order));
  }
  EXPECT_EQ(orders[0], (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(orders[1], orders[0]);
}

TEST(KnnEngineTest, EuclideanModeOnEqualLengths) {
  ts::Dataset ds;
  ds.Add(ts::TimeSeries({0.0, 0.0, 0.0}, 0));
  ds.Add(ts::TimeSeries({1.0, 1.0, 1.0}, 1));
  ds.Add(ts::TimeSeries({5.0, 5.0, 5.0}, 2));
  KnnOptions opt;
  opt.distance = DistanceKind::kEuclidean;
  opt.use_lb_kim = false;
  KnnEngine engine(opt);
  engine.Index(ds);
  const auto hits = engine.Query(ts::TimeSeries({0.9, 0.9, 0.9}), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 1u);
}

TEST(KnnEngineTest, LbKimDoesNotPruneUnderSquaredCostSdtw) {
  // Regression: LB_Kim (absolute differences) is not a lower bound for
  // squared-cost distances when diffs are < 1. Candidate 1 has the
  // smaller squared-cost sDTW distance but the larger LB_Kim value; an
  // unsound prune would return candidate 0.
  // Candidate 0: diff 0.20 -> squared distance 4 * 0.04   = 0.16 (= bsf).
  // Candidate 1: diff 0.18 -> squared distance 4 * 0.0324 = 0.1296, yet
  // LB_Kim = 0.18 > 0.16 would (unsoundly) prune it.
  ts::Dataset ds;
  ds.Add(ts::TimeSeries(std::vector<double>(4, 0.20), 0));
  ds.Add(ts::TimeSeries(std::vector<double>(4, 0.18), 1));
  const ts::TimeSeries query(std::vector<double>(4, 0.0));
  KnnOptions opt;
  opt.distance = DistanceKind::kSdtw;
  opt.sdtw.dtw.cost = dtw::CostKind::kSquared;
  KnnEngine engine(opt);
  engine.Index(ds);
  const auto hits = engine.Query(query, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 1u);
  EXPECT_NEAR(hits[0].distance, 4 * 0.18 * 0.18, 1e-9);
}

TEST(KnnEngineTest, KeoghStagePreservesExactnessUnderLargeShifts) {
  // Regression: LB_Keogh used to be evaluated against 10%-radius
  // envelopes, which only lower-bound *window-constrained* DTW — on a
  // large time shift the bound exceeded the true unconstrained distance
  // and the nearest neighbour was wrongly pruned. With full-span
  // envelopes the stage is sound. Ramps shifted by 35 (index 0, DTW
  // 35*36 = 1260) and by 30 (index 1, DTW 30*31 = 930): index 0 is
  // scanned first and sets best-so-far; index 1 must still win.
  const std::size_t n = 100;
  std::vector<double> q(n), far(n), near(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = static_cast<double>(i);
    far[i] = static_cast<double>(i) - 35.0;
    near[i] = static_cast<double>(i) - 30.0;
  }
  ts::Dataset ds;
  ds.Add(ts::TimeSeries(far, 0));
  ds.Add(ts::TimeSeries(near, 1));
  const ts::TimeSeries query(q);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;  // full cascade on
  KnnEngine engine(opt);
  engine.Index(ds);
  const auto hits = engine.Query(query, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 1u);
  EXPECT_EQ(hits[0].distance, dtw::DtwDistance(query, ds[1]));
}

TEST(KnnEngineTest, KLargerThanIndexReturnsAll) {
  const ts::Dataset ds = SmallGun(5);
  KnnEngine engine;
  engine.Index(ds);
  EXPECT_EQ(engine.Query(ds[0], 100).size(), 5u);
}

}  // namespace
}  // namespace retrieval
}  // namespace sdtw
