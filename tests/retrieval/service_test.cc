#include "retrieval/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <gtest/gtest.h>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/fault_injector.h"
#include "core/status.h"
#include "data/generators.h"
#include "retrieval/batch.h"
#include "retrieval/latency.h"
#include "retrieval/query_cache.h"

namespace sdtw {
namespace retrieval {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// True when the CI fault matrix (or a stray SDTW_FAULT) armed injection
// for this whole binary. Under it a request may legitimately fail after
// exhausting its retries, so completion-mandatory assertions relax to
// "whatever completes is still bitwise correct".
bool FaultsArmed() { return core::FaultInjector::Global().armed(); }

ts::Dataset SmallGun(std::size_t n = 16, std::size_t len = 100) {
  data::GeneratorOptions opt;
  opt.num_series = n;
  opt.length = len;
  return data::MakeGunLike(opt);
}

// Bitwise hit-list equality: same indices, same exact distances, same
// labels. The service's determinism contract is bit-for-bit, so no
// tolerance anywhere.
void ExpectSameHits(const std::vector<Hit>& got, const std::vector<Hit>& want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << what << " hit " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " hit " << i;
    EXPECT_EQ(got[i].label, want[i].label) << what << " hit " << i;
  }
}

// Fetches a future that must hold hits when no faults are armed; under
// the fault matrix an injected kWorkerFault (or kUnknown) is tolerated
// and reported as empty hits so callers can skip the bitwise check.
std::optional<QueryService::Hits> GetHits(
    std::future<QueryService::Result>& future, const char* what) {
  QueryService::Result result = future.get();
  if (result.ok()) return std::move(result).value();
  EXPECT_TRUE(FaultsArmed())
      << what << ": unexpected failure with no faults armed: "
      << result.status().ToString();
  EXPECT_TRUE(result.status().code() == core::StatusCode::kWorkerFault ||
              result.status().code() == core::StatusCode::kUnknown)
      << what << ": " << result.status().ToString();
  return std::nullopt;
}

// Reference results: a direct one-shot BatchKnnEngine scan of each query
// alone, with default options (fresh threads, no executor, no cache).
std::vector<std::vector<Hit>> DirectHits(const KnnEngine& engine,
                                         const std::vector<ts::TimeSeries>& qs,
                                         std::size_t k) {
  const BatchKnnEngine direct(engine);
  std::vector<std::vector<Hit>> out;
  out.reserve(qs.size());
  for (const ts::TimeSeries& q : qs) {
    const std::vector<ts::TimeSeries> one{q};
    out.push_back(direct.QueryBatch(one, k)[0]);
  }
  return out;
}

// --------------------------------------------------------------------------
// WorkerPool

TEST(WorkerPoolTest, RunsJobOncePerWorkerAndReusesArenas) {
  // Direct Execute calls have no service-level isolation to absorb an
  // ambient SDTW_FAULT (e.g. the CI fault matrix); pin the worker sites
  // to rate 0 so this test measures pool mechanics, not fault handling.
  core::ScopedFault quiet_worker(kFaultSiteWorker, 0.0, 0);
  core::ScopedFault quiet_stall(kFaultSiteWorkerStall, 0.0, 0);
  WorkerPool pool(2);
  ASSERT_EQ(pool.num_workers(), 2u);

  std::atomic<std::size_t> slot{0};
  std::vector<const ScratchArena*> first(2, nullptr);
  std::vector<const ScratchArena*> second(2, nullptr);
  pool.Execute([&](ScratchArena& a) { first[slot++] = &a; });
  EXPECT_EQ(slot.load(), 2u) << "job must run exactly once per worker";
  slot = 0;
  pool.Execute([&](ScratchArena& a) { second[slot++] = &a; });
  EXPECT_EQ(slot.load(), 2u);

  // Persistent arenas: the second batch sees the same two arenas as the
  // first (possibly assigned to different slots).
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  EXPECT_EQ(first, second);
  EXPECT_NE(first[0], nullptr);
  EXPECT_NE(first[0], first[1]);
}

TEST(WorkerPoolTest, DefaultWidthIsAtLeastOne) {
  core::ScopedFault quiet_worker(kFaultSiteWorker, 0.0, 0);
  core::ScopedFault quiet_stall(kFaultSiteWorkerStall, 0.0, 0);
  WorkerPool pool;
  EXPECT_GE(pool.num_workers(), 1u);
  std::atomic<std::size_t> ran{0};
  pool.Execute([&](ScratchArena&) { ++ran; });
  EXPECT_EQ(ran.load(), pool.num_workers());
}

// --------------------------------------------------------------------------
// QueryDerivativeCache

std::shared_ptr<const QueryContext> DummyContext() {
  return std::make_shared<const QueryContext>();
}

TEST(QueryDerivativeCacheTest, HitMissEvictLru) {
  const ts::TimeSeries a({1.0, 2.0, 3.0}, 0);
  const ts::TimeSeries b({4.0, 5.0, 6.0}, 0);
  const ts::TimeSeries c({7.0, 8.0, 9.0}, 0);

  QueryDerivativeCache cache(2);
  ASSERT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup(a), nullptr);

  const auto ctx_a = DummyContext();
  cache.Insert(a, ctx_a);
  EXPECT_EQ(cache.Lookup(a).get(), ctx_a.get());

  cache.Insert(b, DummyContext());
  cache.Insert(c, DummyContext());  // capacity 2: evicts LRU, which is a
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 3u);
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.insertions, 3u);
  EXPECT_EQ(counters.evictions, 1u);
}

TEST(QueryDerivativeCacheTest, RecencyRefreshOnHit) {
  const ts::TimeSeries a({1.0}, 0);
  const ts::TimeSeries b({2.0}, 0);
  const ts::TimeSeries c({3.0}, 0);
  QueryDerivativeCache cache(2);
  cache.Insert(a, DummyContext());
  cache.Insert(b, DummyContext());
  ASSERT_NE(cache.Lookup(a), nullptr);  // a becomes most recent
  cache.Insert(c, DummyContext());      // evicts b, not a
  EXPECT_NE(cache.Lookup(a), nullptr);
  EXPECT_EQ(cache.Lookup(b), nullptr);
}

TEST(QueryDerivativeCacheTest, ZeroCapacityDisables) {
  QueryDerivativeCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const ts::TimeSeries a({1.0, 2.0}, 0);
  cache.Insert(a, DummyContext());
  EXPECT_EQ(cache.Lookup(a), nullptr);
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 0u);
  EXPECT_EQ(counters.insertions, 0u);
}

TEST(QueryDerivativeCacheTest, LabelDoesNotAffectIdentity) {
  // Content identity is the sample values only: the same values under a
  // different label must hit (derivatives do not depend on the label).
  QueryDerivativeCache cache(4);
  const auto ctx = DummyContext();
  cache.Insert(ts::TimeSeries({1.0, 2.0}, /*label=*/0), ctx);
  EXPECT_EQ(cache.Lookup(ts::TimeSeries({1.0, 2.0}, /*label=*/7)).get(),
            ctx.get());
}

TEST(ContentHashTest, SensitiveToValuesAndLength) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.0, 4.0};
  const std::vector<double> prefix{1.0, 2.0};
  EXPECT_EQ(ContentHash(a), ContentHash(a));
  EXPECT_NE(ContentHash(a), ContentHash(b));
  EXPECT_NE(ContentHash(a), ContentHash(prefix));
  EXPECT_NE(ContentHash({}), ContentHash(prefix));
}

// --------------------------------------------------------------------------
// LatencyRecorder

TEST(LatencyRecorderTest, NearestRankPercentiles) {
  std::vector<double> one_to_hundred;
  for (int i = 1; i <= 100; ++i) one_to_hundred.push_back(i);
  EXPECT_EQ(NearestRankPercentile(one_to_hundred, 50.0), 50.0);
  EXPECT_EQ(NearestRankPercentile(one_to_hundred, 95.0), 95.0);
  EXPECT_EQ(NearestRankPercentile(one_to_hundred, 99.0), 99.0);
  EXPECT_EQ(NearestRankPercentile(one_to_hundred, 100.0), 100.0);
  EXPECT_EQ(NearestRankPercentile(one_to_hundred, 0.0), 1.0);
  EXPECT_EQ(NearestRankPercentile({}, 50.0), 0.0);
  EXPECT_EQ(NearestRankPercentile({7.0}, 99.0), 7.0);
}

TEST(LatencyRecorderTest, SnapshotAggregatesAndWindows) {
  LatencyRecorder recorder(/*window_capacity=*/100);
  for (int i = 1; i <= 100; ++i) recorder.Record(i);
  const LatencySnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.window, 100u);
  EXPECT_EQ(snap.max_us, 100.0);
  EXPECT_DOUBLE_EQ(snap.mean_us, 50.5);
  EXPECT_EQ(snap.p50_us, 50.0);
  EXPECT_EQ(snap.p95_us, 95.0);
  EXPECT_EQ(snap.p99_us, 99.0);
}

TEST(LatencyRecorderTest, WindowBoundsPercentilesButNotTotals) {
  LatencyRecorder recorder(/*window_capacity=*/4);
  for (int i = 1; i <= 8; ++i) recorder.Record(i);
  const LatencySnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.count, 8u);   // all-time
  EXPECT_EQ(snap.window, 4u);  // percentile window: {5, 6, 7, 8}
  EXPECT_EQ(snap.max_us, 8.0);
  EXPECT_EQ(snap.p50_us, 6.0);
  EXPECT_EQ(snap.p99_us, 8.0);
  // Negative samples clamp instead of corrupting the aggregates.
  recorder.Record(-5.0);
  EXPECT_EQ(recorder.Snapshot().max_us, 8.0);
}

// --------------------------------------------------------------------------
// QueryService

// The pinned cornerstone: hits through the service — any trigger, any
// batch composition, cached or not — are bitwise identical to a direct
// BatchKnnEngine::QueryBatch of the same query.
TEST(QueryServiceTest, HitsBitwiseIdenticalToDirectBatch) {
  const ts::Dataset ds = SmallGun(18);
  KnnEngine engine;
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.begin() + 6);
  const auto expected = DirectHits(engine, queries, 3);

  struct Config {
    const char* name;
    ServiceOptions options;
  };
  std::vector<Config> configs;
  {
    ServiceOptions size_trigger;  // batch cut by size: 6 queries, batch 2
    size_trigger.max_batch = 2;
    size_trigger.max_delay = std::chrono::duration_cast<microseconds>(
        std::chrono::seconds(10));
    configs.push_back({"size-trigger", size_trigger});

    ServiceOptions deadline_trigger;  // batch cut by deadline only
    deadline_trigger.max_batch = 64;
    deadline_trigger.max_delay = microseconds(1000);
    configs.push_back({"deadline-trigger", deadline_trigger});

    ServiceOptions batch_of_one;  // no coalescing at all
    batch_of_one.max_batch = 1;
    batch_of_one.max_delay = microseconds(0);
    configs.push_back({"batch-of-1", batch_of_one});

    ServiceOptions uncached;  // cache off: derive every time
    uncached.cache_capacity = 0;
    uncached.max_batch = 4;
    uncached.max_delay = microseconds(500);
    configs.push_back({"uncached", uncached});
  }

  for (const Config& config : configs) {
    QueryService service(engine, config.options);
    std::vector<std::future<QueryService::Result>> futures;
    for (const ts::TimeSeries& q : queries) {
      auto f = service.Submit(q, 3);
      ASSERT_TRUE(f.has_value()) << config.name;
      futures.push_back(std::move(*f));
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (const auto hits = GetHits(futures[q], config.name)) {
        ExpectSameHits(*hits, expected[q], config.name);
      }
    }
    service.Shutdown();
    const ServiceMetrics m = service.metrics();
    EXPECT_EQ(m.submitted, queries.size()) << config.name;
    EXPECT_EQ(m.completed, queries.size()) << config.name;
    EXPECT_EQ(m.rejected, 0u) << config.name;
    EXPECT_GE(m.batches, 1u) << config.name;
    EXPECT_EQ(m.completed, m.ok + m.failed + m.deadline_exceeded)
        << config.name;
    if (!FaultsArmed()) {
      EXPECT_EQ(m.latency.count, queries.size()) << config.name;
    }
    EXPECT_LE(m.latency.p50_us, m.latency.p95_us) << config.name;
    EXPECT_LE(m.latency.p95_us, m.latency.p99_us) << config.name;
  }
}

TEST(QueryServiceTest, ConcurrentSubmittersGetIdenticalHits) {
  const ts::Dataset ds = SmallGun(16);
  KnnEngine engine;
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.begin() + 8);
  const auto expected = DirectHits(engine, queries, 3);

  for (const std::size_t submitters : {1u, 2u, 4u, 8u}) {
    ServiceOptions options;
    options.max_batch = 8;
    options.max_delay = microseconds(500);
    options.queue_capacity = 64;
    QueryService service(engine, options);

    std::vector<std::thread> threads;
    // char, not bool: vector<bool> packs bits into shared words, which
    // would be a real data race across submitter threads.
    std::vector<char> ok(submitters, 0);
    for (std::size_t t = 0; t < submitters; ++t) {
      threads.emplace_back([&, t]() {
        bool all_good = true;
        // Each submitter pushes every query, offset so interleavings mix
        // different queries into the same micro-batches.
        for (std::size_t i = 0; i < queries.size(); ++i) {
          const std::size_t q = (i + t) % queries.size();
          auto f = service.Submit(queries[q], 3);
          if (!f.has_value()) {
            all_good = false;
            continue;
          }
          const QueryService::Result result = f->get();
          if (!result.ok()) {
            // Only a fault-matrix run may fail a request.
            all_good = all_good && FaultsArmed();
            continue;
          }
          const auto& hits = *result;
          if (hits.size() != expected[q].size()) {
            all_good = false;
            continue;
          }
          for (std::size_t h = 0; h < hits.size(); ++h) {
            all_good = all_good && hits[h].index == expected[q][h].index &&
                       hits[h].distance == expected[q][h].distance;
          }
        }
        ok[t] = all_good;
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t t = 0; t < submitters; ++t) {
      EXPECT_TRUE(ok[t]) << submitters << " submitters, thread " << t;
    }
    service.Shutdown();
    EXPECT_EQ(service.metrics().completed, submitters * queries.size())
        << submitters;
  }
}

TEST(QueryServiceTest, CacheHitIdenticalToMiss) {
  const ts::Dataset ds = SmallGun(12);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 1;  // one query per batch: the second submit of a
  options.max_delay = microseconds(0);  // query is a guaranteed cache hit
  QueryService service(engine, options);

  const auto first = service.Query(ds[0], 4);   // derivative cache miss
  const auto second = service.Query(ds[0], 4);  // derivative cache hit
  if (!FaultsArmed()) {
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    const ServiceMetrics m = service.metrics();
    EXPECT_EQ(m.cache.misses, 1u);
    EXPECT_EQ(m.cache.hits, 1u);
    EXPECT_EQ(m.cache.insertions, 1u);
  }
  // Cached replay stays bitwise identical whenever both runs complete —
  // fault matrix or not (a faulted fill only skips the cache, never
  // corrupts it).
  if (first.ok() && second.ok()) {
    ExpectSameHits(*second, *first, "cached replay");
  }
}

TEST(QueryServiceTest, CoalescesDuplicatesWithinBatch) {
  const ts::Dataset ds = SmallGun(12);
  KnnEngine engine;
  engine.Index(ds);
  const auto expected = DirectHits(engine, {ds[1]}, 3)[0];

  ServiceOptions options;
  options.max_batch = 16;  // size trigger exactly at our submission count;
  options.max_delay = std::chrono::duration_cast<microseconds>(
      std::chrono::seconds(10));  // deadline can't fire first
  QueryService service(engine, options);

  std::vector<std::future<QueryService::Result>> futures;
  for (int i = 0; i < 16; ++i) {
    auto f = service.Submit(ds[1], 3);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) {
    if (const auto hits = GetHits(f, "duplicate")) {
      ExpectSameHits(*hits, expected, "duplicate");
    }
  }

  service.Shutdown();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.batches, 1u);
  EXPECT_EQ(m.completed, 16u);
  EXPECT_EQ(m.coalesced, 15u);  // one scan answered all 16
}

TEST(QueryServiceTest, MixedKRequestsEachGetTheirOwnK) {
  // Different k on the same and different queries in one batch: each
  // request gets exactly the first k of the full ranking (truncation
  // property), bitwise equal to a dedicated scan at that k.
  const ts::Dataset ds = SmallGun(14);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 5;
  options.max_delay = std::chrono::duration_cast<microseconds>(
      std::chrono::seconds(10));
  QueryService service(engine, options);

  struct Want {
    std::size_t query;
    std::size_t k;
  };
  const std::vector<Want> wants{{0, 1}, {0, 4}, {0, 2}, {3, 5}, {3, 1}};
  std::vector<std::future<QueryService::Result>> futures;
  for (const Want& w : wants) {
    auto f = service.Submit(ds[w.query], w.k);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (std::size_t i = 0; i < wants.size(); ++i) {
    const auto expected =
        DirectHits(engine, {ds[wants[i].query]}, wants[i].k)[0];
    if (const auto hits = GetHits(futures[i], "mixed k")) {
      ExpectSameHits(*hits, expected, "mixed k");
    }
  }
}

TEST(QueryServiceTest, ZeroKCompletesEmpty) {
  const ts::Dataset ds = SmallGun(8);
  KnnEngine engine;
  engine.Index(ds);
  QueryService service(engine);
  // k == 0 runs no scan at all, so not even a fault-matrix worker fault
  // can touch it: always ok, always empty.
  const auto result = service.Query(ds[0], 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(service.metrics().completed, 1u);
}

TEST(QueryServiceTest, ShutdownDrainsInFlightWork) {
  const ts::Dataset ds = SmallGun(12);
  KnnEngine engine;
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries(ds.begin(), ds.begin() + 5);
  const auto expected = DirectHits(engine, queries, 3);

  ServiceOptions options;
  options.max_batch = 64;  // deadline far away: requests sit queued...
  options.max_delay = std::chrono::duration_cast<microseconds>(
      std::chrono::seconds(30));
  auto service = std::make_unique<QueryService>(engine, options);

  std::vector<std::future<QueryService::Result>> futures;
  for (const ts::TimeSeries& q : queries) {
    auto f = service->Submit(q, 3);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  // ...until Shutdown, which must complete every admitted request without
  // waiting out the 30s deadline, then refuse new work.
  service->Shutdown();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ASSERT_EQ(futures[q].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << q;
    if (const auto hits = GetHits(futures[q], "drained")) {
      ExpectSameHits(*hits, expected[q], "drained");
    }
  }
  EXPECT_FALSE(service->Submit(queries[0], 3).has_value());
  const ServiceMetrics m = service->metrics();
  EXPECT_EQ(m.completed, queries.size());
  EXPECT_EQ(m.rejected, 1u);
  service.reset();  // double shutdown via destructor: must be clean
}

TEST(QueryServiceTest, RejectPolicyShedsLoadAtCapacity) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.queue_capacity = 1;
  options.admission = AdmissionPolicy::kReject;
  options.max_batch = 64;  // dispatcher holds the queued request at the
  options.max_delay = std::chrono::duration_cast<microseconds>(
      std::chrono::seconds(30));  // deadline, keeping the queue full
  QueryService service(engine, options);

  auto admitted = service.Submit(ds[0], 3);
  ASSERT_TRUE(admitted.has_value());
  // The queue is at capacity and the dispatcher is parked on the deadline:
  // the second submit must be rejected, deterministically.
  EXPECT_FALSE(service.Submit(ds[1], 3).has_value());

  service.Shutdown();  // drains the admitted request immediately
  if (const auto hits = GetHits(*admitted, "admitted")) {
    ExpectSameHits(*hits, DirectHits(engine, {ds[0]}, 3)[0], "admitted");
  }
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.submitted, 1u);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.completed, 1u);
}

TEST(QueryServiceTest, BlockPolicyAppliesBackpressureThenAdmits) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.queue_capacity = 1;
  options.admission = AdmissionPolicy::kBlock;
  options.max_batch = 64;
  options.max_delay = microseconds(20'000);  // queue drains every 20ms
  QueryService service(engine, options);

  // 6 sequential submits through a capacity-1 queue: most of them find the
  // queue full and must park until the dispatcher ships a batch. All are
  // eventually admitted and answered correctly.
  const auto expected = DirectHits(engine, {ds[2]}, 3)[0];
  std::vector<std::future<QueryService::Result>> futures;
  std::thread submitter([&]() {
    for (int i = 0; i < 6; ++i) {
      auto f = service.Submit(ds[2], 3);
      ASSERT_TRUE(f.has_value()) << i;
      futures.push_back(std::move(*f));
    }
  });
  submitter.join();
  for (auto& f : futures) {
    if (const auto hits = GetHits(f, "blocked")) {
      ExpectSameHits(*hits, expected, "blocked");
    }
  }
  service.Shutdown();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.submitted, 6u);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.completed, 6u);
}

}  // namespace
}  // namespace retrieval
}  // namespace sdtw
