#include "retrieval/parallel.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"
#include "dtw/dtw.h"
#include "eval/experiment.h"

namespace sdtw {
namespace retrieval {
namespace {

TEST(ParallelMatrixTest, TrivialSizes) {
  EXPECT_TRUE(ParallelPairwiseMatrix(0, [](std::size_t, std::size_t) {
                return 1.0;
              }).empty());
  const auto one = ParallelPairwiseMatrix(1, [](std::size_t, std::size_t) {
    return 1.0;
  });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 0.0);
}

TEST(ParallelMatrixTest, EveryPairComputedExactlyOnce) {
  const std::size_t n = 17;
  std::vector<std::atomic<int>> counts(n * n);
  const auto matrix = ParallelPairwiseMatrix(
      n,
      [&counts, n](std::size_t i, std::size_t j) {
        counts[i * n + j].fetch_add(1);
        return static_cast<double>(i + j);
      },
      4);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const int expected = (i < j) ? 1 : 0;
      EXPECT_EQ(counts[i * n + j].load(), expected) << i << "," << j;
      if (i != j) {
        EXPECT_DOUBLE_EQ(matrix[i * n + j], static_cast<double>(i + j));
      }
    }
  }
}

TEST(ParallelMatrixTest, EveryPairComputedExactlyOnceUpToN1000) {
  // Exercises the closed-form triangular-index inversion across sizes,
  // including n = 1000 (499500 pairs) under real thread contention.
  for (const std::size_t n : {2u, 3u, 5u, 17u, 100u, 1000u}) {
    std::vector<std::atomic<int>> counts(n * n);
    ParallelPairwiseMatrix(
        n,
        [&counts, n](std::size_t i, std::size_t j) {
          EXPECT_LT(i, j);
          EXPECT_LT(j, n);
          counts[i * n + j].fetch_add(1);
          return 0.0;
        },
        n >= 100 ? 8 : 2);
    std::size_t computed = 0;
    bool all_once = true;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const int expected = (i < j) ? 1 : 0;
        if (counts[i * n + j].load() != expected) all_once = false;
        computed += static_cast<std::size_t>(counts[i * n + j].load());
      }
    }
    EXPECT_TRUE(all_once) << "n=" << n;
    EXPECT_EQ(computed, n * (n - 1) / 2) << "n=" << n;
  }
}

TEST(ParallelMatrixTest, SymmetricZeroDiagonal) {
  const std::size_t n = 9;
  const auto matrix = ParallelPairwiseMatrix(
      n,
      [](std::size_t i, std::size_t j) {
        return static_cast<double>(i * 31 + j * 7);
      },
      3);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i * n + i], 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i * n + j], matrix[j * n + i]);
    }
  }
}

TEST(ParallelMatrixTest, MatchesSequentialDtwMatrix) {
  data::GeneratorOptions opt;
  opt.num_series = 10;
  opt.length = 60;
  const ts::Dataset ds = data::MakeTraceLike(opt);
  const eval::DistanceMatrix reference = eval::ComputeFullDtwMatrix(ds);
  const auto parallel = ParallelPairwiseMatrix(
      ds.size(),
      [&ds](std::size_t i, std::size_t j) {
        return dtw::DtwDistance(ds[i], ds[j]);
      },
      4);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (std::size_t j = 0; j < ds.size(); ++j) {
      EXPECT_NEAR(parallel[i * ds.size() + j], reference.At(i, j), 1e-9);
    }
  }
}

TEST(ParallelMatrixTest, SingleThreadPathWorks) {
  const auto matrix = ParallelPairwiseMatrix(
      5, [](std::size_t i, std::size_t j) { return double(i + j); }, 1);
  EXPECT_DOUBLE_EQ(matrix[0 * 5 + 4], 4.0);
}

TEST(ParallelMatrixTest, ThreadCountDoesNotChangeResult) {
  auto fn = [](std::size_t i, std::size_t j) {
    return std::sqrt(static_cast<double>(i * 1000 + j));
  };
  const auto a = ParallelPairwiseMatrix(23, fn, 1);
  const auto b = ParallelPairwiseMatrix(23, fn, 7);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace retrieval
}  // namespace sdtw
