#include "retrieval/batch.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <optional>
#include <vector>

#include "data/generators.h"
#include "dtw/dtw.h"
#include "retrieval/service.h"

namespace sdtw {
namespace retrieval {
namespace {

ts::Dataset SmallGun(std::size_t n = 16, std::size_t len = 100) {
  data::GeneratorOptions opt;
  opt.num_series = n;
  opt.length = len;
  return data::MakeGunLike(opt);
}

std::vector<ts::TimeSeries> QueriesFrom(const ts::Dataset& ds,
                                        std::size_t count) {
  return std::vector<ts::TimeSeries>(ds.begin(), ds.begin() + count);
}

// The k smallest (distance, index) pairs of a brute-force scan — what a
// sequential in-order Query produces.
std::vector<Hit> BruteForceTopK(const ts::Dataset& ds,
                                const ts::TimeSeries& query, std::size_t k,
                                std::optional<std::size_t> exclude) {
  std::vector<Hit> all;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (exclude.has_value() && *exclude == i) continue;
    const double d = dtw::DtwDistance(query, ds[i]);
    if (std::isfinite(d)) all.push_back(Hit{i, d, ds[i].label()});
  }
  std::sort(all.begin(), all.end(), [](const Hit& a, const Hit& b) {
    return a.distance < b.distance ||
           (a.distance == b.distance && a.index < b.index);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(BatchKnnEngineTest, EmptyBatchAndEmptyIndex) {
  KnnEngine empty_engine;
  const BatchKnnEngine empty(empty_engine);
  EXPECT_TRUE(empty.QueryBatch({}, 3).empty());

  const ts::Dataset ds = SmallGun(4);
  KnnEngine engine;
  engine.Index(ds);
  const BatchKnnEngine batch(engine);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 2);
  // Indexed engine, k == 0: empty hit lists, one per query.
  const auto hits = batch.QueryBatch(queries, 0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_TRUE(hits[0].empty());
  EXPECT_TRUE(hits[1].empty());
}

TEST(BatchKnnEngineTest, BatchOfOneBitwiseIdenticalToQuery) {
  const ts::Dataset ds = SmallGun(14);
  for (const DistanceKind kind :
       {DistanceKind::kFullDtw, DistanceKind::kSdtw,
        DistanceKind::kEuclidean}) {
    KnnOptions opt;
    opt.distance = kind;
    KnnEngine engine(opt);
    engine.Index(ds);
    const BatchKnnEngine batch(engine);
    for (std::size_t q = 0; q < 4; ++q) {
      const auto single = engine.Query(ds[q], 3, q);
      const std::vector<ts::TimeSeries> one{ds[q]};
      const std::vector<std::optional<std::size_t>> excludes{q};
      const auto batched = batch.QueryBatch(one, 3, excludes);
      ASSERT_EQ(batched.size(), 1u);
      ASSERT_EQ(batched[0].size(), single.size()) << q;
      for (std::size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(batched[0][i].index, single[i].index) << q;
        // Bitwise equality, not approximate: both paths must run the
        // exact same kernels in the same order.
        EXPECT_EQ(batched[0][i].distance, single[i].distance) << q;
        EXPECT_EQ(batched[0][i].label, single[i].label) << q;
      }
    }
  }
}

TEST(BatchKnnEngineTest, MultiThreadBitwiseIdenticalToBruteForce) {
  // Exact-DTW hits from the racing cascade must equal a brute-force scan
  // bit for bit, whatever the worker count and completion order.
  const ts::Dataset ds = SmallGun(20);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 6);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    bopt.chunk_size = 3;  // many chunks -> real work stealing
    const BatchKnnEngine batch(engine, bopt);
    const auto hits = batch.QueryBatch(queries, 4);
    ASSERT_EQ(hits.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto expected = BruteForceTopK(ds, queries[q], 4, std::nullopt);
      ASSERT_EQ(hits[q].size(), expected.size()) << threads << " " << q;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(hits[q][i].index, expected[i].index)
            << threads << " " << q;
        EXPECT_EQ(hits[q][i].distance, expected[i].distance)
            << threads << " " << q;
      }
    }
  }
}

TEST(BatchKnnEngineTest, DuplicateCandidatesTieBreakByIndex) {
  // Several identical candidates produce exactly equal distances; the
  // reported neighbours must be the smallest indices, independent of
  // which worker finishes first.
  ts::Dataset ds;
  const std::vector<double> base{0.0, 1.0, 0.0, -1.0};
  for (int i = 0; i < 8; ++i) ds.Add(ts::TimeSeries(base, i % 2));
  ds.Add(ts::TimeSeries({5.0, 5.0, 5.0, 5.0}, 0));
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  const ts::TimeSeries query({0.1, 1.1, 0.1, -0.9});
  const std::vector<ts::TimeSeries> queries{query};
  for (const std::size_t threads : {1u, 4u, 8u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    bopt.chunk_size = 1;
    const BatchKnnEngine batch(engine, bopt);
    const auto hits = batch.QueryBatch(queries, 3);
    ASSERT_EQ(hits[0].size(), 3u);
    EXPECT_EQ(hits[0][0].index, 0u) << threads;
    EXPECT_EQ(hits[0][1].index, 1u) << threads;
    EXPECT_EQ(hits[0][2].index, 2u) << threads;
  }
}

TEST(BatchKnnEngineTest, SdtwBatchMatchesSequentialQueries) {
  const ts::Dataset ds = SmallGun(16, 80);
  KnnOptions opt;
  opt.distance = DistanceKind::kSdtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  BatchOptions bopt;
  bopt.num_threads = 4;
  bopt.chunk_size = 2;
  const BatchKnnEngine batch(engine, bopt);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 5);
  const auto batched = batch.QueryBatch(queries, 3);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto single = engine.Query(queries[q], 3);
    ASSERT_EQ(batched[q].size(), single.size()) << q;
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].index, single[i].index) << q;
      EXPECT_EQ(batched[q][i].distance, single[i].distance) << q;
    }
  }
}

TEST(BatchKnnEngineTest, ExcludesHonoredPerQuery) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);
  BatchOptions bopt;
  bopt.num_threads = 4;
  const BatchKnnEngine batch(engine, bopt);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 3);
  std::vector<std::optional<std::size_t>> excludes{0u, 1u, std::nullopt};
  const auto hits = batch.QueryBatch(queries, 9, excludes);
  ASSERT_EQ(hits.size(), 3u);
  for (const Hit& h : hits[0]) EXPECT_NE(h.index, 0u);
  for (const Hit& h : hits[1]) EXPECT_NE(h.index, 1u);
  EXPECT_EQ(hits[0].size(), 9u);
  EXPECT_EQ(hits[1].size(), 9u);
  EXPECT_EQ(hits[2].size(), 9u);  // k == 9 < 10 candidates, none excluded
}

TEST(BatchKnnEngineTest, StatsCountersSumExactlyToCandidates) {
  // Every candidate must be accounted for by exactly one cascade outcome:
  // pruned by LB_Kim, pruned by LB_Keogh, early-abandoned, or fully
  // evaluated — across all modes, worker counts, visit orders, and both
  // the distance-only and alignment-recovering entry points. On this
  // equal-length set the Keogh stage is never skipped.
  const ts::Dataset ds = SmallGun(24);
  for (const DistanceKind kind : {DistanceKind::kFullDtw,
                                  DistanceKind::kSdtw}) {
    for (const VisitOrder order :
         {VisitOrder::kIndexOrder, VisitOrder::kLowerBound,
          VisitOrder::kGlobalLowerBound}) {
      KnnOptions opt;
      opt.distance = kind;
      opt.visit_order = order;
      KnnEngine engine(opt);
      engine.Index(ds);
      const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 6);
      std::vector<std::optional<std::size_t>> excludes;
      for (std::size_t q = 0; q < queries.size(); ++q) excludes.push_back(q);
      for (const std::size_t threads : {1u, 4u}) {
        BatchOptions bopt;
        bopt.num_threads = threads;
        bopt.chunk_size = 5;
        const BatchKnnEngine batch(engine, bopt);
        for (const bool with_alignments : {false, true}) {
          std::vector<QueryStats> stats;
          if (with_alignments) {
            batch.QueryBatchWithAlignments(queries, 3, excludes, &stats);
          } else {
            batch.QueryBatch(queries, 3, excludes, &stats);
          }
          ASSERT_EQ(stats.size(), queries.size());
          for (std::size_t q = 0; q < stats.size(); ++q) {
            EXPECT_EQ(stats[q].candidates, ds.size() - 1) << q;
            EXPECT_EQ(stats[q].pruned_by_kim + stats[q].pruned_by_keogh +
                          stats[q].pruned_by_early_abandon +
                          stats[q].dp_evaluations,
                      stats[q].candidates)
                << "mode " << static_cast<int>(kind) << " order "
                << static_cast<int>(order) << " threads " << threads
                << " alignments " << with_alignments << " query " << q;
            EXPECT_EQ(stats[q].lb_keogh_skipped, 0u) << q;
          }
        }
      }
    }
  }
}

TEST(BatchKnnEngineTest, VisitOrdersReturnBitwiseIdenticalHits) {
  // The LB_Kim schedule is pure ordering: hit lists must equal the
  // index-order scan bit for bit under every thread count, while running
  // no more DPs than it.
  const ts::Dataset ds = SmallGun(24);
  for (const DistanceKind kind : {DistanceKind::kFullDtw,
                                  DistanceKind::kSdtw}) {
    KnnOptions opt;
    opt.distance = kind;
    opt.visit_order = VisitOrder::kIndexOrder;
    KnnEngine index_engine(opt);
    index_engine.Index(ds);
    opt.visit_order = VisitOrder::kLowerBound;
    KnnEngine lb_engine(opt);
    lb_engine.Index(ds);
    opt.visit_order = VisitOrder::kGlobalLowerBound;
    KnnEngine global_engine(opt);
    global_engine.Index(ds);
    const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 6);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      BatchOptions bopt;
      bopt.num_threads = threads;
      bopt.chunk_size = 5;  // several chunks -> per-chunk sorting matters
      std::vector<QueryStats> index_stats, lb_stats, global_stats;
      const auto index_hits = BatchKnnEngine(index_engine, bopt)
                                  .QueryBatch(queries, 4, &index_stats);
      const auto lb_hits =
          BatchKnnEngine(lb_engine, bopt).QueryBatch(queries, 4, &lb_stats);
      const auto global_hits = BatchKnnEngine(global_engine, bopt)
                                   .QueryBatch(queries, 4, &global_stats);
      ASSERT_EQ(index_hits.size(), lb_hits.size());
      ASSERT_EQ(index_hits.size(), global_hits.size());
      for (std::size_t q = 0; q < index_hits.size(); ++q) {
        ASSERT_EQ(lb_hits[q].size(), index_hits[q].size())
            << threads << " " << q;
        ASSERT_EQ(global_hits[q].size(), index_hits[q].size())
            << threads << " " << q;
        for (std::size_t i = 0; i < index_hits[q].size(); ++i) {
          EXPECT_EQ(lb_hits[q][i].index, index_hits[q][i].index)
              << threads << " " << q;
          EXPECT_EQ(lb_hits[q][i].distance, index_hits[q][i].distance)
              << threads << " " << q;
          EXPECT_EQ(global_hits[q][i].index, index_hits[q][i].index)
              << threads << " " << q;
          EXPECT_EQ(global_hits[q][i].distance, index_hits[q][i].distance)
              << threads << " " << q;
        }
      }
      // Reordering moves work between the cascade outcomes (the DP saving
      // is workload-dependent and pinned by bench_batch_retrieval, not a
      // per-dataset theorem), but the outcome partition itself must stay
      // exact under every schedule.
      for (const auto* stats : {&index_stats, &lb_stats, &global_stats}) {
        for (const QueryStats& s : *stats) {
          EXPECT_EQ(s.pruned_by_kim + s.pruned_by_keogh +
                        s.pruned_by_early_abandon + s.dp_evaluations,
                    s.candidates)
              << threads;
        }
      }
    }
  }
}

TEST(BatchKnnEngineTest, GlobalLowerBoundMatchesBruteForceAcrossThreads) {
  // The whole-index presort is pure scheduling: under any thread count
  // and chunking, hits must equal the brute-force k smallest
  // (distance, index) pairs bit for bit.
  const ts::Dataset ds = SmallGun(30);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  opt.visit_order = VisitOrder::kGlobalLowerBound;
  KnnEngine engine(opt);
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 5);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    bopt.chunk_size = 4;
    std::vector<std::optional<std::size_t>> excludes;
    for (std::size_t q = 0; q < queries.size(); ++q) excludes.push_back(q);
    const auto hits = BatchKnnEngine(engine, bopt)
                          .QueryBatch(queries, 3, excludes, nullptr);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::vector<Hit> expected =
          BruteForceTopK(ds, queries[q], 3, excludes[q]);
      ASSERT_EQ(hits[q].size(), expected.size()) << threads << " " << q;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(hits[q][i].index, expected[i].index)
            << threads << " " << q;
        EXPECT_EQ(hits[q][i].distance, expected[i].distance)
            << threads << " " << q;
      }
    }
  }
}

TEST(BatchKnnEngineTest, ChunkBalanceModesReturnBitwiseIdenticalHits) {
  // LB-mass chunk balancing is pure scheduling: under the global-LB
  // schedule it only moves chunk *boundaries*, so hits must equal the
  // kCandidateCount chunking bit for bit under every thread count, and
  // the cascade outcome partition must stay exact.
  const ts::Dataset ds = SmallGun(30);
  for (const DistanceKind kind :
       {DistanceKind::kFullDtw, DistanceKind::kSdtw}) {
    KnnOptions opt;
    opt.distance = kind;
    opt.visit_order = VisitOrder::kGlobalLowerBound;
    KnnEngine engine(opt);
    engine.Index(ds);
    const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 5);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      BatchOptions count_opt;
      count_opt.num_threads = threads;
      count_opt.chunk_size = 4;  // many chunks -> boundaries really move
      count_opt.chunk_balance = ChunkBalance::kCandidateCount;
      BatchOptions mass_opt = count_opt;
      mass_opt.chunk_balance = ChunkBalance::kLbMass;
      std::vector<QueryStats> count_stats, mass_stats;
      const auto count_hits = BatchKnnEngine(engine, count_opt)
                                  .QueryBatch(queries, 4, &count_stats);
      const auto mass_hits = BatchKnnEngine(engine, mass_opt)
                                 .QueryBatch(queries, 4, &mass_stats);
      ASSERT_EQ(mass_hits.size(), count_hits.size());
      for (std::size_t q = 0; q < count_hits.size(); ++q) {
        ASSERT_EQ(mass_hits[q].size(), count_hits[q].size())
            << threads << " " << q;
        for (std::size_t i = 0; i < count_hits[q].size(); ++i) {
          EXPECT_EQ(mass_hits[q][i].index, count_hits[q][i].index)
              << threads << " " << q;
          EXPECT_EQ(mass_hits[q][i].distance, count_hits[q][i].distance)
              << threads << " " << q;
          EXPECT_EQ(mass_hits[q][i].label, count_hits[q][i].label)
              << threads << " " << q;
        }
      }
      for (const QueryStats& s : mass_stats) {
        EXPECT_EQ(s.pruned_by_kim + s.pruned_by_keogh +
                      s.pruned_by_early_abandon + s.dp_evaluations,
                  s.candidates)
            << threads;
      }
    }
  }
}

TEST(BatchKnnEngineTest, LbMassFallsBackWithoutGlobalSchedule) {
  // Orders without a precomputed whole-index schedule (per-chunk LB and
  // index order) have no mass to balance: kLbMass must degrade to the
  // count chunking, bit for bit.
  const ts::Dataset ds = SmallGun(20);
  for (const VisitOrder order :
       {VisitOrder::kIndexOrder, VisitOrder::kLowerBound}) {
    KnnOptions opt;
    opt.distance = DistanceKind::kFullDtw;
    opt.visit_order = order;
    KnnEngine engine(opt);
    engine.Index(ds);
    const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 4);
    BatchOptions bopt;
    bopt.num_threads = 4;
    bopt.chunk_size = 3;
    bopt.chunk_balance = ChunkBalance::kLbMass;
    const auto hits = BatchKnnEngine(engine, bopt).QueryBatch(queries, 4);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto expected = BruteForceTopK(ds, queries[q], 4, std::nullopt);
      ASSERT_EQ(hits[q].size(), expected.size()) << q;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(hits[q][i].index, expected[i].index) << q;
        EXPECT_EQ(hits[q][i].distance, expected[i].distance) << q;
      }
    }
  }
}

TEST(BatchKnnEngineTest, ExecutorSuppliedWorkersMatchFreshThreads) {
  // A persistent WorkerPool plugged in via BatchOptions::executor must be
  // invisible in the results: same hits bit for bit as per-call thread
  // spawning, including on a second batch that reuses the pool's arenas.
  const ts::Dataset ds = SmallGun(20);
  KnnEngine engine;
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 6);

  BatchOptions fresh_opt;
  fresh_opt.num_threads = 3;
  fresh_opt.chunk_size = 4;
  const auto expected = BatchKnnEngine(engine, fresh_opt).QueryBatch(queries, 3);

  WorkerPool pool(3);
  BatchOptions pooled_opt = fresh_opt;
  pooled_opt.executor = &pool;
  const BatchKnnEngine pooled(engine, pooled_opt);
  for (int round = 0; round < 2; ++round) {  // round 2: warm arenas
    const auto hits = pooled.QueryBatch(queries, 3);
    ASSERT_EQ(hits.size(), expected.size()) << round;
    for (std::size_t q = 0; q < expected.size(); ++q) {
      ASSERT_EQ(hits[q].size(), expected[q].size()) << round << " " << q;
      for (std::size_t i = 0; i < expected[q].size(); ++i) {
        EXPECT_EQ(hits[q][i].index, expected[q][i].index) << round << " " << q;
        EXPECT_EQ(hits[q][i].distance, expected[q][i].distance)
            << round << " " << q;
      }
    }
  }
}

TEST(BatchKnnEngineTest, PresetContextsReplayBitwiseIdentically) {
  // MakeQueryContext + QueryBatchWithContexts is the caching hook: a
  // replayed context must be indistinguishable from in-batch derivation,
  // including when only some queries have one.
  const ts::Dataset ds = SmallGun(16);
  for (const DistanceKind kind :
       {DistanceKind::kFullDtw, DistanceKind::kSdtw}) {
    KnnOptions opt;
    opt.distance = kind;
    KnnEngine engine(opt);
    engine.Index(ds);
    const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 4);
    const BatchKnnEngine batch(engine);
    const auto expected = batch.QueryBatch(queries, 3);

    std::vector<QueryContext> contexts;
    contexts.reserve(queries.size());
    for (const ts::TimeSeries& q : queries) {
      contexts.push_back(batch.MakeQueryContext(q));
    }
    std::vector<const QueryContext*> all{&contexts[0], &contexts[1],
                                         &contexts[2], &contexts[3]};
    std::vector<const QueryContext*> some{nullptr, &contexts[1], nullptr,
                                          &contexts[3]};
    for (const auto& preset : {all, some}) {
      const auto hits = batch.QueryBatchWithContexts(queries, preset, 3);
      ASSERT_EQ(hits.size(), expected.size());
      for (std::size_t q = 0; q < expected.size(); ++q) {
        ASSERT_EQ(hits[q].size(), expected[q].size()) << q;
        for (std::size_t i = 0; i < expected[q].size(); ++i) {
          EXPECT_EQ(hits[q][i].index, expected[q][i].index) << q;
          EXPECT_EQ(hits[q][i].distance, expected[q][i].distance) << q;
        }
      }
    }
  }
}

TEST(BatchKnnEngineTest, KeoghAbandoningCountsAndPreservesHits) {
  // Cumulative-bound abandoning changes how much of each LB_Keogh pass
  // runs, never its decision: hits stay brute-force exact, the outcome
  // partition stays exact, and on a workload where the Keogh stage prunes
  // at all, at least some of those bound passes must have stopped early.
  // Trace-like series have class-distinct levels, so the full-span Keogh
  // envelopes actually separate queries from far candidates (Gun-like
  // series share one value range and the full-span bound degenerates
  // toward zero).
  data::GeneratorOptions gopt;
  gopt.num_series = 32;
  gopt.length = 80;
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  opt.use_lb_kim = false;  // every candidate reaches the Keogh stage
  KnnEngine engine(opt);
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 6);
  for (const std::size_t threads : {1u, 4u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    std::vector<QueryStats> stats;
    const auto hits =
        BatchKnnEngine(engine, bopt).QueryBatch(queries, 3, &stats);
    QueryStats total;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const std::vector<Hit> expected =
          BruteForceTopK(ds, queries[q], 3, std::nullopt);
      ASSERT_EQ(hits[q].size(), expected.size()) << threads << " " << q;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(hits[q][i].index, expected[i].index) << threads << " " << q;
        EXPECT_EQ(hits[q][i].distance, expected[i].distance)
            << threads << " " << q;
      }
      EXPECT_EQ(stats[q].pruned_by_kim + stats[q].pruned_by_keogh +
                    stats[q].pruned_by_early_abandon +
                    stats[q].dp_evaluations,
                stats[q].candidates)
          << threads << " " << q;
      // At most two directed bound passes per Keogh-pruned candidate can
      // have abandoned.
      EXPECT_LE(stats[q].lb_keogh_abandoned, 2 * stats[q].pruned_by_keogh)
          << threads << " " << q;
      total.Merge(stats[q]);
    }
    EXPECT_GT(total.pruned_by_keogh, 0u) << threads;
    EXPECT_GT(total.lb_keogh_abandoned, 0u) << threads;
  }
}

TEST(BatchKnnEngineTest, MixedLengthIndexSkipsKeoghPerCandidate) {
  // Regression: LB_Keogh is undefined across lengths (LbKeogh returns the
  // trivial bound 0). Mismatched candidates must skip the stage, be
  // counted as skipped, and still reach the DP — never be silently
  // treated as Keogh-checked.
  ts::Dataset ds;
  const ts::Dataset long_set = SmallGun(8, 100);
  for (const auto& s : long_set) ds.Add(s);
  const ts::Dataset short_set = SmallGun(6, 60);
  for (const auto& s : short_set) ds.Add(s);

  for (const VisitOrder order :
       {VisitOrder::kIndexOrder, VisitOrder::kLowerBound,
        VisitOrder::kGlobalLowerBound}) {
    KnnOptions opt;
    opt.distance = DistanceKind::kFullDtw;
    opt.use_lb_kim = false;  // every candidate reaches the Keogh stage
    opt.visit_order = order;
    KnnEngine engine(opt);
    engine.Index(ds);
    // Queries of length 100 (Keogh runs against the 8 long candidates,
    // skips the 6 short ones) and of length 80 (matches nothing: the
    // stage is skipped for all 14 candidates and no query envelope is
    // ever consumed).
    std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 2);
    queries.push_back(SmallGun(1, 80)[0]);
    for (const std::size_t threads : {1u, 4u}) {
      BatchOptions bopt;
      bopt.num_threads = threads;
      bopt.chunk_size = 3;
      const BatchKnnEngine batch(engine, bopt);
      std::vector<QueryStats> stats;
      const auto hits = batch.QueryBatch(queries, 4, &stats);
      ASSERT_EQ(stats.size(), queries.size());
      EXPECT_EQ(stats[0].lb_keogh_skipped, 6u) << threads;
      EXPECT_EQ(stats[1].lb_keogh_skipped, 6u) << threads;
      EXPECT_EQ(stats[2].lb_keogh_skipped, ds.size()) << threads;
      for (std::size_t q = 0; q < stats.size(); ++q) {
        EXPECT_EQ(stats[q].candidates, ds.size()) << q;
        EXPECT_EQ(stats[q].pruned_by_kim + stats[q].pruned_by_keogh +
                      stats[q].pruned_by_early_abandon +
                      stats[q].dp_evaluations,
                  stats[q].candidates)
            << threads << " " << q;
      }
      // Hits stay exact: mismatched candidates went to the DP, not to a
      // bogus prune.
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto expected =
            BruteForceTopK(ds, queries[q], 4, std::nullopt);
        ASSERT_EQ(hits[q].size(), expected.size()) << threads << " " << q;
        for (std::size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(hits[q][i].index, expected[i].index)
              << threads << " " << q;
          EXPECT_EQ(hits[q][i].distance, expected[i].distance)
              << threads << " " << q;
        }
      }
    }
  }
}

TEST(BatchKnnEngineTest, CascadeActuallyPrunesInBatch) {
  const ts::Dataset ds = SmallGun(24);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  BatchOptions bopt;
  bopt.num_threads = 4;
  const BatchKnnEngine batch(engine, bopt);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 4);
  std::vector<QueryStats> stats;
  batch.QueryBatch(queries, 1, &stats);
  for (const QueryStats& s : stats) {
    EXPECT_LT(s.dp_evaluations, s.candidates);
  }
}

TEST(BatchKnnEngineTest, AlignmentsCarryIdenticalHitsAndOptimalPaths) {
  // QueryBatchWithAlignments must return the exact QueryBatch hits, each
  // with the optimal warp path: for exact DTW, the path's cost re-summed
  // in path order is bitwise the DP distance.
  const ts::Dataset ds = SmallGun(16);
  KnnOptions opt;
  opt.distance = DistanceKind::kFullDtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 4);
  for (const std::size_t threads : {1u, 4u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    const BatchKnnEngine batch(engine, bopt);
    const auto plain = batch.QueryBatch(queries, 3);
    const auto aligned = batch.QueryBatchWithAlignments(queries, 3);
    ASSERT_EQ(aligned.size(), plain.size());
    for (std::size_t q = 0; q < plain.size(); ++q) {
      ASSERT_EQ(aligned[q].size(), plain[q].size()) << q;
      for (std::size_t i = 0; i < plain[q].size(); ++i) {
        const AlignedHit& a = aligned[q][i];
        EXPECT_EQ(a.hit.index, plain[q][i].index) << q;
        EXPECT_EQ(a.hit.distance, plain[q][i].distance) << q;
        EXPECT_EQ(a.hit.label, plain[q][i].label) << q;
        const ts::TimeSeries& target = ds[a.hit.index];
        EXPECT_TRUE(dtw::IsValidWarpPath(a.path, queries[q].size(),
                                         target.size()))
            << q << " " << i;
        EXPECT_EQ(dtw::PathCost(queries[q], target, a.path,
                                dtw::CostKind::kAbsolute),
                  a.hit.distance)
            << q << " " << i;
      }
    }
  }
}

TEST(BatchKnnEngineTest, SdtwAlignmentsNeverAbandonAndMatchDistances) {
  // The sDTW alignment re-run abandons at the already-known distance, so
  // it can never actually abandon: every winner keeps a non-empty path
  // whose banded DP distance equals the hit distance bitwise.
  const ts::Dataset ds = SmallGun(14, 80);
  KnnOptions opt;
  opt.distance = DistanceKind::kSdtw;
  KnnEngine engine(opt);
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 4);
  BatchOptions bopt;
  bopt.num_threads = 4;
  const BatchKnnEngine batch(engine, bopt);
  std::vector<std::optional<std::size_t>> excludes{0u, 1u, 2u, 3u};
  const auto aligned = batch.QueryBatchWithAlignments(queries, 3, excludes);
  core::SdtwOptions path_options = opt.sdtw;
  path_options.dtw.want_path = true;
  const core::Sdtw reference(path_options);
  for (std::size_t q = 0; q < aligned.size(); ++q) {
    ASSERT_EQ(aligned[q].size(), 3u);
    for (const AlignedHit& a : aligned[q]) {
      EXPECT_NE(a.hit.index, q);
      ASSERT_FALSE(a.path.empty()) << q;
      const ts::TimeSeries& target = ds[a.hit.index];
      EXPECT_TRUE(dtw::IsValidWarpPath(a.path, queries[q].size(),
                                       target.size()))
          << q;
      // The full (non-abandoning) path-mode comparison agrees on both
      // distance and path.
      const core::SdtwResult direct = reference.Compare(
          queries[q], reference.ExtractFeatures(queries[q]), target,
          reference.ExtractFeatures(target));
      EXPECT_EQ(direct.distance, a.hit.distance) << q;
      EXPECT_EQ(direct.path, a.path) << q;
    }
  }
}

TEST(BatchKnnEngineTest, PointwiseAlignmentsAreDiagonal) {
  const ts::Dataset ds = SmallGun(8, 20);
  KnnOptions opt;
  opt.distance = DistanceKind::kEuclidean;
  KnnEngine engine(opt);
  engine.Index(ds);
  const BatchKnnEngine batch(engine);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 2);
  const auto aligned = batch.QueryBatchWithAlignments(queries, 2);
  for (const auto& per_query : aligned) {
    for (const AlignedHit& a : per_query) {
      ASSERT_EQ(a.path.size(), 20u);
      for (std::size_t i = 0; i < a.path.size(); ++i) {
        EXPECT_EQ(a.path[i], (dtw::PathPoint{i, i}));
      }
    }
  }
}

TEST(BatchKnnEngineTest, ClassifyBatchMatchesSequentialClassify) {
  const ts::Dataset ds = SmallGun(20);
  KnnEngine engine;
  engine.Index(ds);
  BatchOptions bopt;
  bopt.num_threads = 4;
  const BatchKnnEngine batch(engine, bopt);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 8);
  const std::vector<int> labels = batch.ClassifyBatch(queries, 3);
  ASSERT_EQ(labels.size(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(labels[q], engine.Classify(queries[q], 3)) << q;
  }
}

TEST(BatchKnnEngineTest, ClassifyTieBreaksBySummedDistanceDeterministically) {
  // Two classes with equal votes at k = 4. Class 1's two hits sum to the
  // smaller total distance, so it must win under every worker count and
  // completion order. Constant series under Euclidean give exact control:
  // distance = 2 * |offset| at length 4.
  ts::Dataset ds;
  ds.Add(ts::TimeSeries(std::vector<double>(4, 0.5), 0));   // d = 1.0
  ds.Add(ts::TimeSeries(std::vector<double>(4, 2.0), 0));   // d = 4.0
  ds.Add(ts::TimeSeries(std::vector<double>(4, 1.0), 1));   // d = 2.0
  ds.Add(ts::TimeSeries(std::vector<double>(4, 1.25), 1));  // d = 2.5
  ds.Add(ts::TimeSeries(std::vector<double>(4, 9.0), 2));   // never in top-4
  KnnOptions opt;
  opt.distance = DistanceKind::kEuclidean;
  opt.use_lb_kim = false;
  KnnEngine engine(opt);
  engine.Index(ds);
  const std::vector<ts::TimeSeries> queries{
      ts::TimeSeries(std::vector<double>(4, 0.0))};
  for (const std::size_t threads : {1u, 2u, 8u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    bopt.chunk_size = 1;
    const BatchKnnEngine batch(engine, bopt);
    for (int rep = 0; rep < 10; ++rep) {
      // Class 0 sums to 5.0, class 1 to 4.5: class 1 wins the vote tie.
      EXPECT_EQ(batch.ClassifyBatch(queries, 4)[0], 1)
          << threads << " rep " << rep;
    }
  }
  EXPECT_EQ(engine.Classify(queries[0], 4), 1);
}

TEST(BatchKnnEngineTest, LeaveOneOutAccuracyMatchesSequentialLoop) {
  const ts::Dataset ds = SmallGun(20);
  KnnEngine engine;
  engine.Index(ds);
  // Reference: the classic serial loop.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (engine.Classify(ds[i], 1, i) == ds[i].label()) ++correct;
  }
  const double expected =
      static_cast<double>(correct) / static_cast<double>(ds.size());
  for (const std::size_t threads : {1u, 4u}) {
    BatchOptions bopt;
    bopt.num_threads = threads;
    const BatchKnnEngine batch(engine, bopt);
    EXPECT_DOUBLE_EQ(batch.LeaveOneOutAccuracy(1), expected) << threads;
    EXPECT_DOUBLE_EQ(engine.LeaveOneOutAccuracy(1, threads), expected)
        << threads;
  }
}

TEST(BatchKnnEngineTest, KLargerThanIndexReturnsAllSorted) {
  const ts::Dataset ds = SmallGun(5);
  KnnEngine engine;
  engine.Index(ds);
  BatchOptions bopt;
  bopt.num_threads = 4;
  const BatchKnnEngine batch(engine, bopt);
  const std::vector<ts::TimeSeries> queries = QueriesFrom(ds, 2);
  const auto hits = batch.QueryBatch(queries, 100);
  for (const auto& h : hits) {
    ASSERT_EQ(h.size(), 5u);
    for (std::size_t i = 1; i < h.size(); ++i) {
      EXPECT_GE(h[i].distance, h[i - 1].distance);
    }
  }
}

TEST(ScratchArenaTest, SizingIsMonotone) {
  ScratchArena arena;
  EXPECT_EQ(arena.dp_width(), 0u);
  arena.SizeForTargets(10);
  EXPECT_EQ(arena.dp_width(), 11u);
  arena.SizeForTargets(5);  // never shrinks
  EXPECT_EQ(arena.dp_width(), 11u);
}

TEST(ScratchArenaTest, VisitOrderBufferKeepsCapacityAcrossChunks) {
  ScratchArena arena;
  auto& order = arena.visit_order();
  for (std::size_t i = 0; i < 64; ++i) order.emplace_back(0.0, i);
  const std::size_t capacity = order.capacity();
  order.clear();  // what the chunk loop does between chunks
  EXPECT_EQ(arena.visit_order().capacity(), capacity);
  EXPECT_TRUE(arena.visit_order().empty());
}

TEST(VoteLabelTest, EmptyAndMajorityAndTies) {
  EXPECT_EQ(VoteLabel({}), -1);
  EXPECT_EQ(VoteLabel({{0, 1.0, 7}}), 7);
  // Clear majority.
  EXPECT_EQ(VoteLabel({{0, 1.0, 2}, {1, 2.0, 2}, {2, 0.5, 3}}), 2);
  // Vote tie -> smaller summed distance.
  EXPECT_EQ(VoteLabel({{0, 1.0, 5}, {1, 4.0, 5}, {2, 2.0, 6}, {3, 2.5, 6}}),
            6);
  // Full tie (votes and sums) -> smaller label.
  EXPECT_EQ(VoteLabel({{0, 2.0, 9}, {1, 2.0, 4}}), 4);
}

}  // namespace
}  // namespace retrieval
}  // namespace sdtw
