#include "retrieval/feature_store.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generators.h"
#include "sift/extractor.h"

namespace sdtw {
namespace retrieval {
namespace {

FeatureSets ExtractSome() {
  data::GeneratorOptions opt;
  opt.num_series = 4;
  opt.length = 100;
  const ts::Dataset ds = data::MakeGunLike(opt);
  sift::SalientExtractor extractor;
  FeatureSets features;
  for (const auto& s : ds) features.push_back(extractor.Extract(s));
  return features;
}

TEST(FeatureStoreTest, RoundTripPreservesEverything) {
  const FeatureSets original = ExtractSome();
  std::ostringstream out;
  WriteFeatures(out, original);
  std::istringstream in(out.str());
  const auto back = ReadFeatures(in);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ((*back)[i].size(), original[i].size()) << i;
    for (std::size_t k = 0; k < original[i].size(); ++k) {
      const sift::Keypoint& a = original[i][k];
      const sift::Keypoint& b = (*back)[i][k];
      EXPECT_DOUBLE_EQ(a.position, b.position);
      EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
      EXPECT_EQ(a.octave, b.octave);
      EXPECT_EQ(a.level, b.level);
      EXPECT_DOUBLE_EQ(a.response, b.response);
      EXPECT_DOUBLE_EQ(a.amplitude, b.amplitude);
      ASSERT_EQ(a.descriptor.size(), b.descriptor.size());
      for (std::size_t d = 0; d < a.descriptor.size(); ++d) {
        EXPECT_DOUBLE_EQ(a.descriptor[d], b.descriptor[d]);
      }
    }
  }
}

TEST(FeatureStoreTest, EmptySetsRoundTrip) {
  FeatureSets empty;
  std::ostringstream out;
  WriteFeatures(out, empty);
  std::istringstream in(out.str());
  const auto back = ReadFeatures(in);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(FeatureStoreTest, SeriesWithNoKeypointsRoundTrip) {
  FeatureSets sets(3);  // three series, all featureless
  std::ostringstream out;
  WriteFeatures(out, sets);
  std::istringstream in(out.str());
  const auto back = ReadFeatures(in);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 3u);
  for (const auto& f : *back) EXPECT_TRUE(f.empty());
}

TEST(FeatureStoreTest, RejectsBadHeader) {
  std::istringstream in("not-a-feature-file\nseries 0 0\nend\n");
  EXPECT_FALSE(ReadFeatures(in).has_value());
}

TEST(FeatureStoreTest, RejectsTruncatedSeries) {
  std::istringstream in(
      "sdtw-features v1\nseries 0 2\nkp 1 1 0 1 0.5 0.1 1 0\nend\n");
  EXPECT_FALSE(ReadFeatures(in).has_value());
}

TEST(FeatureStoreTest, RejectsMissingEnd) {
  std::istringstream in("sdtw-features v1\nseries 0 0\n");
  EXPECT_FALSE(ReadFeatures(in).has_value());
}

TEST(FeatureStoreTest, RejectsOutOfOrderSeries) {
  std::istringstream in("sdtw-features v1\nseries 1 0\nend\n");
  EXPECT_FALSE(ReadFeatures(in).has_value());
}

TEST(FeatureStoreTest, RejectsMalformedKeypoint) {
  std::istringstream in(
      "sdtw-features v1\nseries 0 1\nkp 1 abc 0 1 0.5 0.1\nend\n");
  EXPECT_FALSE(ReadFeatures(in).has_value());
}

TEST(FeatureStoreTest, RejectsUnknownTag) {
  std::istringstream in("sdtw-features v1\nbogus\nend\n");
  EXPECT_FALSE(ReadFeatures(in).has_value());
}

TEST(FeatureStoreTest, FileRoundTrip) {
  const FeatureSets original = ExtractSome();
  const std::string path = ::testing::TempDir() + "/features_test.txt";
  ASSERT_TRUE(WriteFeaturesFile(path, original));
  const auto back = ReadFeaturesFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), original.size());
}

TEST(FeatureStoreTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadFeaturesFile("/nonexistent/dir/features.txt").has_value());
}

TEST(FeatureStoreTest, UnwritableFileReturnsFalse) {
  EXPECT_FALSE(WriteFeaturesFile("/nonexistent/dir/features.txt", {}));
}

}  // namespace
}  // namespace retrieval
}  // namespace sdtw
