/// \file fault_test.cc
/// \brief Deterministic failure-path coverage for the retrieval service:
/// injected worker faults, cache-fill faults, admission faults, deadline
/// shedding, EDF ordering, the dispatcher watchdog, and the hardened
/// QueryService edge cases.
///
/// Every test pins its own fault configuration with core::ScopedFault,
/// including an explicit rate-0 baseline for all four service sites (the
/// fixture below) — so these tests are deterministic even when the CI
/// fault matrix arms SDTW_FAULT for the whole binary.

#include <atomic>
#include <chrono>
#include <future>
#include <gtest/gtest.h>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injector.h"
#include "core/status.h"
#include "data/generators.h"
#include "retrieval/batch.h"
#include "retrieval/service.h"

namespace sdtw {
namespace retrieval {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using Clock = std::chrono::steady_clock;

ts::Dataset SmallGun(std::size_t n = 16, std::size_t len = 100) {
  data::GeneratorOptions opt;
  opt.num_series = n;
  opt.length = len;
  return data::MakeGunLike(opt);
}

// Bitwise hit-list equality: the service's determinism contract is
// bit-for-bit even across faults and retries, so no tolerance anywhere.
void ExpectSameHits(const std::vector<Hit>& got, const std::vector<Hit>& want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << what << " hit " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << what << " hit " << i;
    EXPECT_EQ(got[i].label, want[i].label) << what << " hit " << i;
  }
}

std::vector<Hit> DirectHits(const KnnEngine& engine, const ts::TimeSeries& q,
                            std::size_t k) {
  const BatchKnnEngine direct(engine);
  const std::vector<ts::TimeSeries> one{q};
  return direct.QueryBatch(one, k)[0];
}

/// Pins all four service injection sites to rate 0 for the test's
/// lifetime, neutralizing any environment-armed fault matrix; individual
/// tests layer their own ScopedFaults on top (restored to this baseline
/// on their scope exit).
class FaultFixture : public ::testing::Test {
 protected:
  core::ScopedFault quiet_worker_{kFaultSiteWorker, 0.0, 0};
  core::ScopedFault quiet_stall_{kFaultSiteWorkerStall, 0.0, 0};
  core::ScopedFault quiet_fill_{kFaultSiteCacheFill, 0.0, 0};
  core::ScopedFault quiet_admission_{kFaultSiteAdmission, 0.0, 0};
};

using QueryServiceFaultTest = FaultFixture;
using QueryServiceDeadlineTest = FaultFixture;
using QueryServiceEdgeTest = FaultFixture;
using WatchdogTest = FaultFixture;
using LatencyRecorderFaultTest = FaultFixture;
using QueryDerivativeCacheFaultTest = FaultFixture;

// --------------------------------------------------------------------------
// Worker faults: isolation, retry, permanent failure

TEST_F(QueryServiceFaultTest, TransientWorkerFaultRetriesAndRecovers) {
  const ts::Dataset ds = SmallGun(14);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 3;  // all three queries in one poisoned batch
  options.max_delay =
      std::chrono::duration_cast<microseconds>(std::chrono::seconds(10));
  options.num_workers = 1;  // one draw per execution: fully predictable
  options.max_retries = 2;
  QueryService service(engine, options);

  // Exactly one failure: the batch scan is poisoned once, every isolated
  // re-run succeeds on its first attempt.
  core::ScopedFault fault(kFaultSiteWorker,
                          core::FaultInjector::SiteConfig{1.0, 0, 1});

  std::vector<std::future<QueryService::Result>> futures;
  for (std::size_t q = 0; q < 3; ++q) {
    auto f = service.Submit(ds[q], 3);
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (std::size_t q = 0; q < 3; ++q) {
    QueryService::Result result = futures[q].get();
    ASSERT_TRUE(result.ok())
        << "recovered request must succeed: " << result.status().ToString();
    ExpectSameHits(*result, DirectHits(engine, ds[q], 3), "recovered");
  }
  service.Shutdown();

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.worker_faults, 1u);  // the one poisoned batch
  EXPECT_EQ(m.retries, 3u);        // one isolated re-run per group
  EXPECT_EQ(m.ok, 3u);
  EXPECT_EQ(m.failed, 0u);
  EXPECT_EQ(m.completed, 3u);
}

TEST_F(QueryServiceFaultTest, PermanentWorkerFaultFailsOnlyTargetedRequest) {
  const ts::Dataset ds = SmallGun(14);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 1;  // one request per batch: precise targeting
  options.max_delay = microseconds(0);
  options.num_workers = 1;
  options.max_retries = 2;

  // Calibrate: how many failure draws does one fully-failing request
  // consume? (1 batch attempt + 1 + max_retries isolated attempts, one
  // worker draw each — but measured, not assumed, so the test survives
  // retry-policy changes.)
  std::size_t draws_per_failed_request = 0;
  {
    core::ScopedFault fault(kFaultSiteWorker, 1.0, 0);
    QueryService calibration(engine, options);
    const auto result = calibration.Query(ds[0], 3);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), core::StatusCode::kWorkerFault);
    calibration.Shutdown();
    draws_per_failed_request =
        core::FaultInjector::Global().counters(kFaultSiteWorker).failures;
    ASSERT_GT(draws_per_failed_request, 0u);
  }

  // Target: exactly the first request's draws fail; every draw after that
  // passes, so the second request must complete bitwise identically.
  core::ScopedFault fault(
      kFaultSiteWorker,
      core::FaultInjector::SiteConfig{1.0, 0, draws_per_failed_request});
  QueryService service(engine, options);

  const auto victim = service.Query(ds[0], 3);
  ASSERT_FALSE(victim.ok()) << "targeted request must fail permanently";
  EXPECT_EQ(victim.status().code(), core::StatusCode::kWorkerFault);
  EXPECT_NE(victim.status().message().find("retries exhausted"),
            std::string::npos)
      << victim.status().ToString();

  const auto survivor = service.Query(ds[1], 3);
  ASSERT_TRUE(survivor.ok())
      << "non-targeted request must survive: "
      << survivor.status().ToString();
  ExpectSameHits(*survivor, DirectHits(engine, ds[1], 3), "survivor");

  service.Shutdown();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.ok, 1u);
  EXPECT_EQ(m.retries, 1u + options.max_retries);
  EXPECT_EQ(m.worker_faults, draws_per_failed_request);
  EXPECT_EQ(m.latency.count, 1u) << "failed requests leave no latency sample";
}

TEST_F(QueryServiceFaultTest, AdmissionFaultRejectsWithoutSideEffects) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);
  QueryService service(engine);

  {
    core::ScopedFault fault(kFaultSiteAdmission,
                            core::FaultInjector::SiteConfig{1.0, 0, 1});
    EXPECT_FALSE(service.Submit(ds[0], 3).has_value())
        << "faulted admission must refuse";
    // The one-failure budget is spent: the very next submit is admitted.
    const auto ok = service.Query(ds[0], 3);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    ExpectSameHits(*ok, DirectHits(engine, ds[0], 3), "after admission fault");
  }

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.submitted, 1u);
  EXPECT_EQ(m.completed, 1u);
}

// --------------------------------------------------------------------------
// Cache-fill faults

TEST_F(QueryDerivativeCacheFaultTest, FaultedFillDegradesButNeverPoisons) {
  const ts::Dataset ds = SmallGun(12);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(0);
  QueryService service(engine, options);
  const auto expected = DirectHits(engine, ds[0], 4);

  {
    core::ScopedFault fault(kFaultSiteCacheFill, 1.0, 0);
    // Every fill faults: the request still completes — the engine derives
    // the context internally — and nothing enters the cache.
    const auto degraded = service.Query(ds[0], 4);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    ExpectSameHits(*degraded, expected, "degraded fill");
    const ServiceMetrics during = service.metrics();
    EXPECT_EQ(during.cache.insertions, 0u)
        << "a faulted fill must never insert";
    EXPECT_EQ(during.cache.hits, 0u);
  }

  // Fill healthy again: the same query is still a miss (nothing was
  // cached above), fills now, and then hits — all three runs bitwise
  // identical. The cache can never serve a context from a faulted fill,
  // because a faulted fill stores nothing to serve.
  const auto filled = service.Query(ds[0], 4);
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  ExpectSameHits(*filled, expected, "first healthy fill");
  const auto cached = service.Query(ds[0], 4);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ExpectSameHits(*cached, expected, "cache hit");

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.cache.insertions, 1u);
  EXPECT_EQ(m.cache.hits, 1u);
  EXPECT_EQ(
      core::FaultInjector::Global().counters(kFaultSiteCacheFill).failures, 0u)
      << "back at the rate-0 baseline, fills never fault";
}

// --------------------------------------------------------------------------
// Deadlines + EDF

TEST_F(QueryServiceDeadlineTest, ExpiredDeadlineShedWithoutEvaluation) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 64;
  options.max_delay =
      std::chrono::duration_cast<microseconds>(std::chrono::seconds(10));
  QueryService service(engine, options);

  RequestOptions expired;
  expired.deadline = Clock::now() - milliseconds(1);
  auto f = service.Submit(ds[0], 3, expired);
  ASSERT_TRUE(f.has_value()) << "admission does not check the deadline";

  const QueryService::Result result = f->get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kDeadlineExceeded);

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.shed, 1u);
  EXPECT_EQ(m.deadline_exceeded, 1u);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.batches, 0u) << "shed before any batch was cut";
  EXPECT_EQ(m.cache.misses, 0u) << "no derivative work for a shed request";
  EXPECT_EQ(m.latency.count, 0u) << "shed requests leave no latency sample";

  // The service is fully live afterwards. (The 5s deadline doubles as the
  // early-cut trigger; without it this request would sit out the 10s age
  // trigger configured above.)
  const auto healthy =
      service.Query(ds[1], 3, RequestOptions::WithTimeout(std::chrono::seconds(5)));
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  ExpectSameHits(*healthy, DirectHits(engine, ds[1], 3), "after shed");
}

TEST_F(QueryServiceDeadlineTest, ImminentDeadlineCutsTheBatchEarly) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 64;  // size trigger unreachable
  options.max_delay =
      std::chrono::duration_cast<microseconds>(std::chrono::seconds(30));
  QueryService service(engine, options);

  // Without a deadline this request would sit the full 30s age trigger
  // (Shutdown would drain it, but we never get there): a deadline 50ms
  // out must cut the batch early instead — within deadline - max_delay,
  // i.e. immediately here. Generous wait bound; the pass criterion is
  // completing at all before the age trigger, not a latency target.
  auto f = service.Submit(ds[0], 3, RequestOptions::WithTimeout(milliseconds(50)));
  ASSERT_TRUE(f.has_value());
  ASSERT_EQ(f->wait_for(std::chrono::seconds(10)), std::future_status::ready)
      << "imminent deadline must pre-empt the 30s age trigger";
  const QueryService::Result result = f->get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameHits(*result, DirectHits(engine, ds[0], 3), "deadline cut");
}

TEST_F(QueryServiceDeadlineTest, EdfServesUrgentBeforeEarlier) {
  const ts::Dataset ds = SmallGun(12);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 1;  // one request per batch: queue order observable
  options.max_delay = microseconds(0);
  options.num_workers = 1;
  options.watchdog_interval = microseconds(0);  // not under test here
  QueryService service(engine, options);

  // Every worker execution sleeps 25ms (2 executions per batch), so after
  // the decoy is picked up the queue holds the three probes long enough
  // for EDF ordering — not submission order — to decide dispatch.
  core::ScopedFault stall(kFaultSiteWorkerStall, 1.0, 0);

  auto decoy = service.Submit(ds[0], 3);  // occupies the dispatcher
  ASSERT_TRUE(decoy.has_value());
  const auto base = Clock::now();
  auto relaxed = service.Submit(ds[1], 3);  // FIFO seq 1, no deadline
  auto dated = service.Submit(ds[2], 3,
                              RequestOptions{base + std::chrono::hours(2)});
  auto urgent = service.Submit(ds[3], 3,
                               RequestOptions{base + std::chrono::hours(1)});
  ASSERT_TRUE(relaxed.has_value());
  ASSERT_TRUE(dated.has_value());
  ASSERT_TRUE(urgent.has_value());

  // Completion order must be: urgent (nearest deadline), dated, relaxed
  // (dateless requests sort last). Each batch takes >= 50ms of injected
  // stall, so "not ready yet" checks have a wide deterministic margin.
  urgent->wait();
  EXPECT_NE(dated->wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "EDF: the 2h deadline must not be served before the 1h one";
  EXPECT_NE(relaxed->wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "EDF: a dateless request must not be served before dated ones";
  dated->wait();
  EXPECT_NE(relaxed->wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  relaxed->wait();

  for (auto* f : {&*decoy, &*urgent, &*dated, &*relaxed}) {
    QueryService::Result result = f->get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  service.Shutdown();
  EXPECT_EQ(service.metrics().completed, 4u);
}

TEST_F(QueryServiceDeadlineTest, PriorityBreaksDeadlineTies) {
  const ts::Dataset ds = SmallGun(12);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(0);
  options.num_workers = 1;
  options.watchdog_interval = microseconds(0);
  QueryService service(engine, options);

  core::ScopedFault stall(kFaultSiteWorkerStall, 1.0, 0);

  auto decoy = service.Submit(ds[0], 3);
  ASSERT_TRUE(decoy.has_value());
  const auto deadline = Clock::now() + std::chrono::hours(1);
  auto low = service.Submit(ds[1], 3, RequestOptions{deadline, /*priority=*/1});
  auto high = service.Submit(ds[2], 3, RequestOptions{deadline, /*priority=*/5});
  ASSERT_TRUE(low.has_value());
  ASSERT_TRUE(high.has_value());

  high->wait();
  EXPECT_NE(low->wait_for(std::chrono::seconds(0)), std::future_status::ready)
      << "equal deadlines: higher priority must be served first";
  low->wait();
  service.Shutdown();
}

// --------------------------------------------------------------------------
// Watchdog

TEST_F(WatchdogTest, CountsAStalledBatchExactlyOnce) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(0);
  options.num_workers = 1;
  options.watchdog_interval = milliseconds(2);
  options.watchdog_stall = milliseconds(10);
  QueryService service(engine, options);

  // 2 worker executions x 25ms injected stall >> the 10ms threshold; the
  // 2ms scan interval observes the stalled batch several times but must
  // count it once.
  core::ScopedFault stall(kFaultSiteWorkerStall, 1.0, 0);
  const auto result = service.Query(ds[0], 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  service.Shutdown();

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.watchdog_stalls, 1u);
}

TEST_F(WatchdogTest, HealthyBatchesRaiseNoStalls) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.watchdog_interval = milliseconds(1);
  options.watchdog_stall =
      std::chrono::duration_cast<microseconds>(std::chrono::seconds(10));
  QueryService service(engine, options);
  for (std::size_t q = 0; q < 4; ++q) {
    const auto result = service.Query(ds[q], 3);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  service.Shutdown();
  EXPECT_EQ(service.metrics().watchdog_stalls, 0u);
}

// --------------------------------------------------------------------------
// Hardened edge cases

TEST_F(QueryServiceEdgeTest, InvalidOptionsRefuseServiceWithClearErrors) {
  const ts::Dataset ds = SmallGun(8);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions no_queue;
  no_queue.queue_capacity = 0;
  QueryService dead_queue(engine, no_queue);
  EXPECT_FALSE(dead_queue.init_status().ok());
  EXPECT_EQ(dead_queue.init_status().code(),
            core::StatusCode::kInvalidArgument);
  EXPECT_NE(dead_queue.init_status().message().find("queue_capacity"),
            std::string::npos);
  EXPECT_FALSE(dead_queue.Submit(ds[0], 3).has_value());
  const auto result = dead_queue.Query(ds[0], 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kInvalidArgument);
  dead_queue.Shutdown();  // clean teardown despite never serving

  ServiceOptions no_batch;
  no_batch.max_batch = 0;
  QueryService dead_batch(engine, no_batch);
  EXPECT_FALSE(dead_batch.init_status().ok());
  EXPECT_NE(dead_batch.init_status().message().find("max_batch"),
            std::string::npos);
  EXPECT_FALSE(dead_batch.Submit(ds[0], 3).has_value());

  // ValidateOptions is also directly callable (pre-flight checks).
  EXPECT_TRUE(QueryService::ValidateOptions(ServiceOptions{}).ok());
  EXPECT_FALSE(QueryService::ValidateOptions(no_queue).ok());
}

TEST_F(QueryServiceEdgeTest, DoubleShutdownIsIdempotent) {
  const ts::Dataset ds = SmallGun(8);
  KnnEngine engine;
  engine.Index(ds);
  auto service = std::make_unique<QueryService>(engine);
  const auto result = service->Query(ds[0], 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  service->Shutdown();
  service->Shutdown();  // explicit double shutdown
  EXPECT_FALSE(service->Submit(ds[0], 3).has_value());
  service.reset();  // and a third via the destructor
}

TEST_F(QueryServiceEdgeTest, SubmitRacingShutdownNeverWedgesOrLies) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  // Many submitters race one Shutdown. Contract: every Submit either
  // returns nullopt (not admitted) or a future that resolves — admitted
  // work is never dropped, and nothing hangs.
  for (int round = 0; round < 4; ++round) {
    ServiceOptions options;
    options.max_batch = 4;
    options.max_delay = microseconds(200);
    QueryService service(engine, options);

    std::atomic<bool> go{false};
    std::atomic<std::size_t> admitted{0};
    std::atomic<std::size_t> resolved{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&, t]() {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 8; ++i) {
          auto f = service.Submit(ds[(t + i) % 10], 2);
          if (!f.has_value()) continue;
          ++admitted;
          f->wait();  // must resolve: Shutdown drains admitted work
          ++resolved;
        }
      });
    }
    go = true;
    service.Shutdown();
    for (std::thread& t : submitters) t.join();
    EXPECT_EQ(admitted.load(), resolved.load()) << "round " << round;
    const ServiceMetrics m = service.metrics();
    EXPECT_EQ(m.completed, admitted.load()) << "round " << round;
  }
}

TEST_F(QueryServiceEdgeTest, AbandonedFutureDoesNotWedgeTheDispatcher) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);
  QueryService service(engine);

  // Submit and immediately drop the future: the dispatcher still executes
  // and fulfils the promise into the dead shared state, with no error and
  // no wedge — proven by the next request completing normally.
  { auto abandoned = service.Submit(ds[0], 3); }
  const auto after = service.Query(ds[1], 3);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ExpectSameHits(*after, DirectHits(engine, ds[1], 3), "after abandonment");
  service.Shutdown();
  EXPECT_EQ(service.metrics().completed, 2u);
}

TEST_F(QueryServiceEdgeTest, ParkTimeoutBoundsBlockingSubmits) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.queue_capacity = 1;
  options.admission = AdmissionPolicy::kBlock;
  options.park_timeout = milliseconds(20);
  options.max_batch = 64;  // dispatcher coalesces at the far age trigger,
  options.max_delay =      // keeping the queue full for the second submit
      std::chrono::duration_cast<microseconds>(std::chrono::seconds(30));
  QueryService service(engine, options);

  auto admitted = service.Submit(ds[0], 3);
  ASSERT_TRUE(admitted.has_value());

  const auto start = Clock::now();
  EXPECT_FALSE(service.Submit(ds[1], 3).has_value())
      << "bounded park must give up, not wait forever";
  const auto waited = Clock::now() - start;
  EXPECT_GE(waited, milliseconds(20) - milliseconds(1));
  EXPECT_LT(waited, std::chrono::seconds(10))
      << "the park must be bounded by park_timeout, not the age trigger";

  service.Shutdown();  // drains the admitted request
  QueryService::Result result = admitted->get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.park_timeouts, 1u);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.submitted, 1u);
}

// --------------------------------------------------------------------------
// LatencyRecorder under failure: samples only successful completions

TEST_F(LatencyRecorderFaultTest, FailedAndShedRequestsLeaveNoSamples) {
  const ts::Dataset ds = SmallGun(10);
  KnnEngine engine;
  engine.Index(ds);

  ServiceOptions options;
  options.max_batch = 1;
  options.max_delay = microseconds(0);
  options.num_workers = 1;
  options.max_retries = 0;  // fail fast: 1 batch + 1 isolated attempt
  QueryService service(engine, options);

  core::ScopedFault fault(kFaultSiteWorker, 1.0, 0);
  const auto failed = service.Query(ds[0], 3);
  ASSERT_FALSE(failed.ok());

  RequestOptions long_gone;
  long_gone.deadline = Clock::now() - milliseconds(5);
  auto shed = service.Submit(ds[1], 3, long_gone);
  ASSERT_TRUE(shed.has_value());
  EXPECT_FALSE(shed->get().ok());

  const ServiceMetrics m = service.metrics();
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.ok, 0u);
  EXPECT_EQ(m.latency.count, 0u)
      << "failure-path timing must never contaminate serving latency";

  // Mixed outcomes: the recorder window counts exactly the successes.
  core::ScopedFault healthy(kFaultSiteWorker, 0.0, 0);
  const auto ok1 = service.Query(ds[2], 3);
  const auto ok2 = service.Query(ds[3], 3);
  ASSERT_TRUE(ok1.ok() && ok2.ok());
  EXPECT_EQ(service.metrics().latency.count, 2u);
}

}  // namespace
}  // namespace retrieval
}  // namespace sdtw
