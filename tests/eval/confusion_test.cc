#include "eval/confusion.h"

#include <gtest/gtest.h>

namespace sdtw {
namespace eval {
namespace {

TEST(ConfusionMatrixTest, EmptyMatrix) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.total(), 0u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.MacroRecall(), 0.0);
  EXPECT_TRUE(cm.Labels().empty());
}

TEST(ConfusionMatrixTest, PerfectPredictions) {
  ConfusionMatrix cm;
  cm.Add(0, 0);
  cm.Add(1, 1);
  cm.Add(1, 1);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.MacroRecall(), 1.0);
  EXPECT_EQ(cm.total(), 3u);
}

TEST(ConfusionMatrixTest, CountsCells) {
  ConfusionMatrix cm;
  cm.Add(0, 1);
  cm.Add(0, 1);
  cm.Add(0, 0);
  EXPECT_EQ(cm.Count(0, 1), 2u);
  EXPECT_EQ(cm.Count(0, 0), 1u);
  EXPECT_EQ(cm.Count(1, 0), 0u);
}

TEST(ConfusionMatrixTest, AccuracyMixed) {
  ConfusionMatrix cm;
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(1, 1);
  cm.Add(1, 0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.5);
}

TEST(ConfusionMatrixTest, RecallPerClass) {
  ConfusionMatrix cm;
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 1);  // class 0: 2/3 recall
  cm.Add(1, 1);  // class 1: 1/1
  EXPECT_NEAR(cm.Recall(0), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.Recall(99), 0.0);
  EXPECT_NEAR(cm.MacroRecall(), (2.0 / 3.0 + 1.0) / 2.0, 1e-12);
}

TEST(ConfusionMatrixTest, PrecisionPerClass) {
  ConfusionMatrix cm;
  cm.Add(0, 0);
  cm.Add(1, 0);  // predicted 0 twice, one correct
  cm.Add(1, 1);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.Precision(42), 0.0);
}

TEST(ConfusionMatrixTest, LabelsUnionOfTruthAndPredicted) {
  ConfusionMatrix cm;
  cm.Add(0, 5);
  const auto labels = cm.Labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 5);
}

TEST(ConfusionMatrixTest, ToStringContainsCells) {
  ConfusionMatrix cm;
  cm.Add(0, 0);
  cm.Add(0, 1);
  const std::string s = cm.ToString();
  EXPECT_NE(s.find("truth"), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace sdtw
