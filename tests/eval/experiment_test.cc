#include "eval/experiment.h"

#include <cmath>
#include <gtest/gtest.h>

#include "data/generators.h"

namespace sdtw {
namespace eval {
namespace {

ts::Dataset SmallGun() {
  data::GeneratorOptions opt;
  opt.num_series = 12;
  opt.length = 80;
  return data::MakeGunLike(opt);
}

TEST(DistanceMatrixTest, FullDtwSymmetricZeroDiagonal) {
  const ts::Dataset ds = SmallGun();
  const DistanceMatrix m = ComputeFullDtwMatrix(ds);
  ASSERT_EQ(m.n, ds.size());
  for (std::size_t i = 0; i < m.n; ++i) {
    EXPECT_DOUBLE_EQ(m.At(i, i), 0.0);
    for (std::size_t j = 0; j < m.n; ++j) {
      EXPECT_DOUBLE_EQ(m.At(i, j), m.At(j, i));
    }
  }
  EXPECT_GT(m.dp_seconds, 0.0);
}

TEST(DistanceMatrixTest, SdtwMatrixUpperBoundsReference) {
  const ts::Dataset ds = SmallGun();
  const DistanceMatrix ref = ComputeFullDtwMatrix(ds);
  core::SdtwOptions opt;
  const DistanceMatrix approx = ComputeSdtwMatrix(ds, opt);
  for (std::size_t i = 0; i < ref.n; ++i) {
    for (std::size_t j = 0; j < ref.n; ++j) {
      EXPECT_GE(approx.At(i, j), ref.At(i, j) - 1e-9);
      EXPECT_TRUE(std::isfinite(approx.At(i, j)));
    }
  }
}

TEST(DistanceMatrixTest, SdtwFillsFewerCells) {
  const ts::Dataset ds = SmallGun();
  const DistanceMatrix ref = ComputeFullDtwMatrix(ds);
  core::SdtwOptions opt;
  opt.constraint.type = core::ConstraintType::kFixedCoreFixedWidth;
  opt.constraint.fixed_width_fraction = 0.1;
  const DistanceMatrix approx = ComputeSdtwMatrix(ds, opt);
  EXPECT_LT(approx.cells_filled, ref.cells_filled);
}

TEST(ComputeMetricsTest, SelfComparisonIsPerfect) {
  const ts::Dataset ds = SmallGun();
  const DistanceMatrix ref = ComputeFullDtwMatrix(ds);
  const AlgorithmMetrics m = ComputeMetrics("self", ds, ref, ref);
  EXPECT_DOUBLE_EQ(m.retrieval_accuracy_top5, 1.0);
  EXPECT_DOUBLE_EQ(m.retrieval_accuracy_top10, 1.0);
  EXPECT_DOUBLE_EQ(m.distance_error, 0.0);
  EXPECT_DOUBLE_EQ(m.classification_accuracy_top5, 1.0);
  EXPECT_DOUBLE_EQ(m.classification_accuracy_top10, 1.0);
}

TEST(ComputeMetricsTest, DistanceErrorNonNegativeForBands) {
  const ts::Dataset ds = SmallGun();
  const DistanceMatrix ref = ComputeFullDtwMatrix(ds);
  core::SdtwOptions opt;
  opt.constraint.type = core::ConstraintType::kFixedCoreFixedWidth;
  opt.constraint.fixed_width_fraction = 0.06;
  const DistanceMatrix approx = ComputeSdtwMatrix(ds, opt);
  const AlgorithmMetrics m = ComputeMetrics("fc", ds, ref, approx);
  EXPECT_GE(m.distance_error, 0.0);
  EXPECT_GE(m.intra_class_distance_error, 0.0);
}

TEST(ComputeMetricsTest, MismatchedShapesGiveDefault) {
  const ts::Dataset ds = SmallGun();
  const DistanceMatrix ref = ComputeFullDtwMatrix(ds);
  DistanceMatrix wrong;
  wrong.n = 2;
  wrong.distance.assign(4, 0.0);
  const AlgorithmMetrics m = ComputeMetrics("bad", ds, ref, wrong);
  EXPECT_DOUBLE_EQ(m.retrieval_accuracy_top5, 0.0);
}

TEST(RunExperimentTest, FullRosterProducesMetrics) {
  data::GeneratorOptions gopt;
  gopt.num_series = 10;
  gopt.length = 60;
  const ts::Dataset ds = data::MakeGunLike(gopt);
  const auto roster = core::PaperAlgorithmRoster(16);
  const ExperimentResult result = RunExperiment(ds, roster);
  ASSERT_EQ(result.algorithms.size(), roster.size());
  // The dtw row is the reference itself: perfect accuracy, zero error.
  EXPECT_DOUBLE_EQ(result.algorithms[0].retrieval_accuracy_top5, 1.0);
  EXPECT_DOUBLE_EQ(result.algorithms[0].distance_error, 0.0);
  for (const AlgorithmMetrics& a : result.algorithms) {
    EXPECT_GE(a.retrieval_accuracy_top5, 0.0);
    EXPECT_LE(a.retrieval_accuracy_top5, 1.0);
    EXPECT_GE(a.distance_error, -1e-9);
    EXPECT_GE(a.loo_accuracy_1nn, 0.0);
    EXPECT_LE(a.loo_accuracy_1nn, 1.0);
  }
  // The served metric equals the batch-engine run it is defined as.
  EXPECT_DOUBLE_EQ(result.algorithms[0].loo_accuracy_1nn,
                   BatchLooAccuracy(ds, roster[0]));
}

TEST(RunExperimentTest, WiderSakoeBandIsMoreAccurate) {
  data::GeneratorOptions gopt;
  gopt.num_series = 14;
  gopt.length = 100;
  gopt.deform.shift_fraction = 0.10;  // force visible shifts
  const ts::Dataset ds = data::MakeTraceLike(gopt);
  std::vector<core::NamedConfig> roster;
  for (double w : {0.06, 0.20}) {
    core::NamedConfig c;
    c.label = w < 0.1 ? "narrow" : "wide";
    c.options.constraint.type = core::ConstraintType::kFixedCoreFixedWidth;
    c.options.constraint.fixed_width_fraction = w;
    roster.push_back(c);
  }
  const ExperimentResult result = RunExperiment(ds, roster);
  // Paper Fig 13(a): larger w => more accurate fc,fw.
  EXPECT_LE(result.algorithms[1].distance_error,
            result.algorithms[0].distance_error + 1e-9);
}

}  // namespace
}  // namespace eval
}  // namespace sdtw
