#include "eval/metrics.h"

#include <cmath>
#include <gtest/gtest.h>

namespace sdtw {
namespace eval {
namespace {

TEST(TopKTest, ReturnsSmallestDistances) {
  const std::vector<double> d{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto top = TopK(d, 2, 99);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(TopKTest, ExcludesSelf) {
  const std::vector<double> d{0.0, 1.0, 2.0};
  const auto top = TopK(d, 2, 0);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

TEST(TopKTest, KLargerThanCandidates) {
  const std::vector<double> d{1.0, 2.0};
  const auto top = TopK(d, 10, 0);
  EXPECT_EQ(top.size(), 1u);
}

TEST(TopKTest, TiesBrokenByIndex) {
  const std::vector<double> d{1.0, 1.0, 1.0};
  const auto top = TopK(d, 2, 2);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(TopKOverlapTest, FullOverlap) {
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2, 3}, {3, 2, 1}, 3), 1.0);
}

TEST(TopKOverlapTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2, 3, 4}, {3, 4, 5, 6}, 4), 0.5);
}

TEST(TopKOverlapTest, NoOverlap) {
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2}, {3, 4}, 2), 0.0);
}

TEST(TopKOverlapTest, ZeroKIsZero) {
  EXPECT_DOUBLE_EQ(TopKOverlap({}, {}, 0), 0.0);
}

TEST(DistanceErrorTest, ExactMatchIsZero) {
  EXPECT_DOUBLE_EQ(DistanceError(2.0, 2.0), 0.0);
}

TEST(DistanceErrorTest, OverestimateIsPositive) {
  EXPECT_DOUBLE_EQ(DistanceError(2.0, 3.0), 0.5);
}

TEST(DistanceErrorTest, ZeroReferenceZeroApprox) {
  EXPECT_DOUBLE_EQ(DistanceError(0.0, 0.0), 0.0);
}

TEST(DistanceErrorTest, ZeroReferenceNonzeroApproxIsInf) {
  EXPECT_TRUE(std::isinf(DistanceError(0.0, 1.0)));
}

TEST(KnnLabelSetTest, SingleMajorityLabel) {
  const std::vector<int> labels{0, 1, 1, 2};
  const auto set = KnnLabelSet({1, 2, 3}, labels);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 1);
}

TEST(KnnLabelSetTest, TieReturnsAllMaxLabels) {
  const std::vector<int> labels{0, 1, 0, 1};
  const auto set = KnnLabelSet({0, 1, 2, 3}, labels);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], 0);
  EXPECT_EQ(set[1], 1);
}

TEST(KnnLabelSetTest, EmptyNeighboursGiveEmptySet) {
  EXPECT_TRUE(KnnLabelSet({}, {0, 1}).empty());
}

TEST(KnnLabelSetTest, OutOfRangeIndicesIgnored) {
  const std::vector<int> labels{7};
  const auto set = KnnLabelSet({0, 5}, labels);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 7);
}

TEST(LabelSetJaccardTest, IdenticalSetsAreOne) {
  EXPECT_DOUBLE_EQ(LabelSetJaccard({1, 2}, {2, 1}), 1.0);
}

TEST(LabelSetJaccardTest, DisjointSetsAreZero) {
  EXPECT_DOUBLE_EQ(LabelSetJaccard({1}, {2}), 0.0);
}

TEST(LabelSetJaccardTest, PartialOverlap) {
  EXPECT_DOUBLE_EQ(LabelSetJaccard({1, 2}, {2, 3}), 1.0 / 3.0);
}

TEST(LabelSetJaccardTest, BothEmptyIsOne) {
  EXPECT_DOUBLE_EQ(LabelSetJaccard({}, {}), 1.0);
}

TEST(LabelSetJaccardTest, DuplicatesDeduplicated) {
  EXPECT_DOUBLE_EQ(LabelSetJaccard({1, 1, 1}, {1}), 1.0);
}

TEST(MeanAccumulatorTest, EmptyMeanIsZero) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.count(), 0u);
}

TEST(MeanAccumulatorTest, RunningMean) {
  MeanAccumulator acc;
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_EQ(acc.count(), 3u);
}

TEST(TimeGainTest, HalfTimeIsHalfGain) {
  EXPECT_DOUBLE_EQ(TimeGain(2.0, 1.0), 0.5);
}

TEST(TimeGainTest, SlowerIsNegative) {
  EXPECT_LT(TimeGain(1.0, 2.0), 0.0);
}

TEST(TimeGainTest, ZeroReferenceIsZero) {
  EXPECT_DOUBLE_EQ(TimeGain(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace sdtw
