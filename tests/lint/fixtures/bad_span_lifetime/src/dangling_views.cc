// Deliberately-violating fixture for sdtw_lint rule `span-lifetime`:
// std::span / std::string_view views derived from storage that dies.

namespace std {
using size_t = unsigned long;

template <typename T>
class vector {
 public:
  vector();
  T* data();
  size_t size() const;
};

template <typename T>
class span {
 public:
  span();
  explicit span(vector<T>& owner);
  span(T* data, size_t count);
  span(const span& other);
  span& operator=(const span& other);
};

class string {
 public:
  string();
  const char* data() const;
  size_t size() const;
};

class string_view {
 public:
  string_view();
  string_view(const string& owner);
};
}  // namespace std

namespace app {

std::vector<int> MakeScratch();

std::span<int> ReturnsLocal() {
  std::vector<int> scratch;
  return std::span<int>(scratch);  // VIOLATION: view over a dying local
}

std::string_view ReturnsLocalString() {
  std::string name;
  return std::string_view(name);  // VIOLATION: view over a dying local
}

std::span<int> ReturnsTemporary() {
  return std::span<int>(MakeScratch());  // VIOLATION: view over a temporary
}

std::span<int> ReturnsByValueParam(std::vector<int> rows) {
  return std::span<int>(rows);  // VIOLATION: view over a by-value param
}

class Holder {
 public:
  void Rebind() {
    std::vector<int> staging;
    view_ = std::span<int>(staging);  // VIOLATION: member outlives local
  }

  std::span<int> View() {
    return std::span<int>(storage_);  // ok: member storage owns the data
  }

  std::span<int> Alias(std::vector<int>& rows) {
    return std::span<int>(rows);  // ok: the caller owns the storage
  }

 private:
  std::vector<int> storage_;
  std::span<int> view_;
};

std::span<int> Tolerated() {
  std::vector<int> scratch;
  // lint:allow(span-lifetime: fixture demonstrates suppression)
  return std::span<int>(scratch);
}

}  // namespace app
