// Lint fixture: deliberately violates naked-new.
#include <cstdlib>

// A comment saying new things happen here must not be flagged, and
// neither must the string literal below.

int* MakeBuffer() {
  const char* msg = "allocating new buffer with malloc()";
  (void)msg;
  return new int[3];  // VIOLATION: naked new expression
}

void* MakeRaw() {
  return std::malloc(64);  // VIOLATION: C allocation call
}

int* MakeAllowed() {
  // Suppressed with rationale: fixture exercises the allow marker.
  return new int(7);  // lint:allow(naked-new) fixture tests the marker
}
