// Deliberately-violating fixture for sdtw_lint rule
// `raw-sync-primitives`: bare std:: synchronization primitives outside
// core/mutex.h, invisible to clang's thread-safety analysis.

namespace std {
class mutex {
 public:
  void lock();
  void unlock();
};
template <typename M>
class lock_guard {
 public:
  explicit lock_guard(M& mu);
};
template <typename M>
class unique_lock {
 public:
  explicit unique_lock(M& mu);
};
class condition_variable {
 public:
  void notify_one();
};
}  // namespace std

namespace app {

std::mutex g_registry_mu;  // VIOLATION: raw mutex at namespace scope

class Queue {
 public:
  void Push(int value);

 private:
  std::mutex mu_;               // VIOLATION: raw mutex member
  std::condition_variable cv_;  // VIOLATION: raw condvar member
};

void Critical() {
  std::mutex local_mu;                          // VIOLATION: raw local
  std::lock_guard<std::mutex> guard(local_mu);  // VIOLATION: raw guard
}

using RegistryLock = std::unique_lock<std::mutex>;  // VIOLATION: alias

std::mutex g_tolerated;  // lint:allow(raw-sync: fixture demonstrates suppression)

}  // namespace app
