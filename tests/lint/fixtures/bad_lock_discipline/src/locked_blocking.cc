// Deliberately-violating fixture for sdtw_lint rule `lock-discipline`.
// Minimal stand-ins for the real types: the rule matches on qualified
// names (sdtw::core::MutexLock, std::this_thread::sleep_for, ...), so the
// fixture re-declares exactly those shapes without any #include.

namespace sdtw {
namespace core {
class Mutex {
 public:
  void lock();
  void unlock();
};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
  ~MutexLock();
};
class UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu);
  ~UniqueLock();
};
class CondVar {
 public:
  void Wait(UniqueLock& lock);
};
}  // namespace core
namespace retrieval {
class Service {
 public:
  bool Submit(int query, int k);
};
}  // namespace retrieval
}  // namespace sdtw

namespace std {
namespace this_thread {
void sleep_for(long long us);
}  // namespace this_thread
class condition_variable {
 public:
  void wait(int& lock);
};
template <typename C>
class basic_ostream {
 public:
  basic_ostream& operator<<(const char* text);
};
using ostream = basic_ostream<char>;
extern ostream cout;
}  // namespace std

namespace app {

sdtw::core::Mutex g_mu;
sdtw::core::CondVar g_cv;
std::condition_variable g_raw_cv;
sdtw::retrieval::Service g_service;

void SleepUnderLock() {
  sdtw::core::MutexLock lock(g_mu);
  std::this_thread::sleep_for(100);  // VIOLATION: sleeping under the lock
}

void RawWaitUnderLock(int& token) {
  sdtw::core::UniqueLock lock(g_mu);
  g_raw_cv.wait(token);  // VIOLATION: raw condvar wait under the lock
}

void StreamUnderLock() {
  sdtw::core::MutexLock lock(g_mu);
  std::cout << "holding the lock";  // VIOLATION: stream I/O under the lock
}

void SubmitUnderLock() {
  sdtw::core::MutexLock lock(g_mu);
  g_service.Submit(1, 2);  // VIOLATION: blocking service call under the lock
}

void RetryBackoffUnderLock() {
  // Models the poisoned-batch isolation retry done wrong: the decorrelated
  // backoff sleep must run with no lock held, or every submitter stalls
  // behind the retry loop.
  sdtw::core::MutexLock lock(g_mu);
  long long backoff = 100;
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::this_thread::sleep_for(backoff);  // VIOLATION: backoff under the lock
    backoff *= 3;
  }
}

void BlessedWaitUnderLock() {
  sdtw::core::UniqueLock lock(g_mu);
  g_cv.Wait(lock);  // ok: core::CondVar is the blessed wait path
}

void SleepOutsideLock() {
  {
    sdtw::core::MutexLock lock(g_mu);
  }
  std::this_thread::sleep_for(100);  // ok: the lock scope already ended
}

void SuppressedSleep() {
  sdtw::core::MutexLock lock(g_mu);
  // lint:allow(lock-discipline: fixture demonstrates suppression)
  std::this_thread::sleep_for(100);
}

}  // namespace app
