// Lint fixture: deliberately violates kernel-internal-linkage.
//
// This TU models a kernel file whose author forgot `static` (or the
// anonymous namespace) on a helper: the function below gets external
// linkage and, because the file name says avx2, the linter compiles it
// with -mavx2 and must flag the leaked symbol. The ops-table export is
// included too, to prove the allowlist still admits it.

namespace sdtw {
namespace dtw {
namespace internal {

struct FixtureRowKernelOpsShape {
  double (*helper)(double);
};

// Allowed: matches the k*RowKernelOps allowlist.
extern const FixtureRowKernelOpsShape kFixtureRowKernelOps;

// VIOLATION: external linkage in an arch-flagged TU.
double LeakyHelper(double x) { return x * 0.5 + 1.0; }

const FixtureRowKernelOpsShape kFixtureRowKernelOps = {&LeakyHelper};

}  // namespace internal
}  // namespace dtw
}  // namespace sdtw
