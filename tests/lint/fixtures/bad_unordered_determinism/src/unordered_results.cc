// Deliberately-violating fixture for sdtw_lint rule `determinism`:
// result-feeding iteration and floating-point reduction over unordered
// containers (ordering-dependent accumulation breaks bitwise identity).

namespace std {
using size_t = unsigned long;

template <typename K, typename V>
class unordered_map {
 public:
  struct value_type {
    K first;
    V second;
  };
  class iterator {
   public:
    value_type& operator*();
    iterator& operator++();
    bool operator!=(const iterator& other) const;
  };
  iterator begin();
  iterator end();
  size_t count(const K& key) const;
};

template <typename K>
class unordered_set {
 public:
  class iterator {
   public:
    const K& operator*();
    iterator& operator++();
    bool operator!=(const iterator& other) const;
  };
  iterator begin();
  iterator end();
};

template <typename T>
class vector {
 public:
  T* begin();
  T* end();
  void push_back(const T& value);
};
}  // namespace std

namespace app {

double SumWeights(std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (auto& entry : weights) {  // VIOLATION: FP reduction, hash order
    total += entry.second;
  }
  return total;
}

void CollectKeys(std::unordered_set<int>& keys, std::vector<int>& out) {
  for (const int& key : keys) {  // VIOLATION: result feeds from hash order
    out.push_back(key);
  }
}

void ExplicitWalk(std::unordered_map<int, double>& weights,
                  std::vector<double>& out) {
  for (auto it = weights.begin(); it != weights.end(); ++it) {  // VIOLATION
    out.push_back((*it).second);
  }
}

double SumVector(std::vector<double>& values) {
  double total = 0.0;
  for (double value : values) {  // ok: deterministic order
    total += value;
  }
  return total;
}

bool Contains(std::unordered_map<int, double>& weights, int key) {
  return weights.count(key) > 0;  // ok: point query, no iteration
}

double ToleratedSum(std::unordered_map<int, double>& weights) {
  double total = 0.0;
  // lint:allow(determinism: fixture demonstrates suppression)
  for (auto& entry : weights) {
    total += entry.second;
  }
  return total;
}

}  // namespace app
