// Lint fixture: fp-contract violation via pragma rather than a flag.
// The comment mention of -ffast-math above must NOT be flagged; the
// pragma below MUST be.

#pragma STDC FP_CONTRACT ON

double Fma(double a, double b, double c) { return a * b + c; }
