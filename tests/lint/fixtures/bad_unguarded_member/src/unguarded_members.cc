// Deliberately-violating fixture for sdtw_lint rule
// `guarded-member-coverage`. The macros expand to the real clang
// attributes so the annotated members read exactly like production code.

#define SDTW_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define SDTW_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))

namespace sdtw {
namespace core {
class Mutex {};
class CondVar {};
}  // namespace core
}  // namespace sdtw

namespace std {
template <typename T>
class atomic {
 public:
  T value;
};
template <typename T>
class vector {
 public:
  T* data();
};
}  // namespace std

namespace app {

class Tracker {
 public:
  int unguarded_counter;                // VIOLATION: no annotation
  double unguarded_total;               // VIOLATION: no annotation
  std::vector<int>* unguarded_samples;  // VIOLATION: no annotation

  int guarded_counter SDTW_GUARDED_BY(mu_);
  int* guarded_samples SDTW_PT_GUARDED_BY(mu_);
  const int capacity = 4;      // ok: immutable
  std::atomic<int> ticks;      // ok: the type is the synchronization
  sdtw::core::CondVar cv;      // ok: internally synchronized by contract
  int documented_free;  // lint:allow(unguarded: written before threads start)

 private:
  sdtw::core::Mutex mu_;
};

struct NoMutexHere {
  int free_member;  // ok: the class owns no mutex
};

}  // namespace app
