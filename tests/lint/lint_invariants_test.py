#!/usr/bin/env python3
"""Tests for scripts/lint_invariants.py.

Each fixture under tests/lint/fixtures/ violates exactly one rule; the
tests assert the linter fires on it (exit 1, rule id in the output, the
expected finding count) and that the real tree passes clean. Run directly
or via ctest (registered in tests/lint/CMakeLists.txt)."""

import os
import subprocess
import sys
import unittest

REPO_ROOT = os.environ.get(
    "SDTW_REPO_ROOT",
    os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
LINTER = os.path.join(REPO_ROOT, "scripts", "lint_invariants.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint", "fixtures")


def run_linter(*argv):
    return subprocess.run(
        [sys.executable, LINTER, *argv],
        capture_output=True, text=True, check=False)


class FixtureTest(unittest.TestCase):
    def assert_fires(self, fixture, rule, expect_findings):
        r = run_linter("--root", os.path.join(FIXTURES, fixture),
                       "--only", rule)
        self.assertEqual(
            r.returncode, 1,
            f"{fixture} should fail rule {rule}; stdout:\n{r.stdout}\n"
            f"stderr:\n{r.stderr}")
        findings = [line for line in r.stdout.splitlines()
                    if f"[{rule}]" in line]
        self.assertEqual(
            len(findings), expect_findings,
            f"unexpected finding set for {fixture}:\n{r.stdout}")
        return r.stdout

    def test_kernel_internal_linkage_fires(self):
        out = self.assert_fires("bad_linkage", "kernel-internal-linkage", 1)
        # The leaked helper is named; the allowlisted ops table is not.
        self.assertIn("LeakyHelper", out)
        self.assertNotIn("kFixtureRowKernelOps", out)

    def test_fp_contract_fires(self):
        out = self.assert_fires("bad_fp_contract", "fp-contract", 3)
        self.assertIn("CMakeLists.txt:6", out)   # -ffast-math
        self.assertIn("CMakeLists.txt:8", out)   # -ffp-contract=fast
        self.assertIn("pragma_smuggle.cc:5", out)
        # -ffp-contract=off and comment mentions stay legal.
        self.assertNotIn("CMakeLists.txt:12", out)

    def test_naked_new_fires(self):
        out = self.assert_fires("bad_naked_new", "naked-new", 2)
        self.assertIn("leaky_buffer.cc:10", out)  # new int[3]
        self.assertIn("leaky_buffer.cc:14", out)  # std::malloc
        # lint:allow(naked-new) suppresses line 19.
        self.assertNotIn("leaky_buffer.cc:19", out)


class CleanTreeTest(unittest.TestCase):
    def test_real_tree_is_clean(self):
        r = run_linter("--root", REPO_ROOT)
        self.assertEqual(
            r.returncode, 0,
            f"real tree should lint clean; stdout:\n{r.stdout}\n"
            f"stderr:\n{r.stderr}")
        self.assertIn("clean", r.stdout)

    def test_jobs_output_matches_serial(self):
        serial = run_linter("--root", REPO_ROOT)
        parallel = run_linter("--root", REPO_ROOT, "--jobs", "4")
        self.assertEqual(parallel.returncode, serial.returncode)
        self.assertEqual(
            parallel.stdout, serial.stdout,
            "--jobs must not change the findings or their order")

    def test_jobs_zero_is_usage_error(self):
        r = run_linter("--jobs", "0")
        self.assertEqual(r.returncode, 2)

    def test_missing_compiler_is_unavailable(self):
        # EX_UNAVAILABLE (69): the probe tool is absent, every rule that
        # could run was clean — callers skip instead of failing.
        r = run_linter("--root", REPO_ROOT,
                       "--only", "kernel-internal-linkage",
                       "--compiler", "/nonexistent/sdtw-cxx")
        self.assertEqual(
            r.returncode, 69,
            f"stdout:\n{r.stdout}\nstderr:\n{r.stderr}")
        self.assertIn("skipping", r.stderr)

    def test_findings_beat_unavailable(self):
        # A tree with real findings exits 1 even when the linkage probe
        # tool is missing: a verdict in hand outranks a skipped probe.
        r = run_linter("--root", os.path.join(FIXTURES, "bad_naked_new"),
                       "--compiler", "/nonexistent/sdtw-cxx")
        self.assertEqual(
            r.returncode, 1,
            f"stdout:\n{r.stdout}\nstderr:\n{r.stderr}")

    def test_list_rules(self):
        r = run_linter("--list-rules")
        self.assertEqual(r.returncode, 0)
        rules = r.stdout.split()
        self.assertEqual(
            rules, ["kernel-internal-linkage", "fp-contract", "naked-new"])

    def test_bad_root_is_usage_error(self):
        r = run_linter("--root", os.path.join(FIXTURES, "does_not_exist"))
        self.assertEqual(r.returncode, 2)


if __name__ == "__main__":
    unittest.main()
