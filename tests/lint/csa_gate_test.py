#!/usr/bin/env python3
"""Tests for scripts/csa_gate.py (the Clang Static Analyzer report gate).

scan-build itself is not needed: the gate consumes plist files, so the
tests synthesize miniature analyzer reports and drive every exit path —
unsuppressed findings, suppression matching (with the mandatory
rationale), cross-TU dedupe, and the clean/no-report cases.
"""

import os
import plistlib
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.environ.get(
    "SDTW_REPO_ROOT",
    os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
GATE = os.path.join(REPO_ROOT, "scripts", "csa_gate.py")


def diag(description, checker, file_index, line, col=1):
    return {
        "description": description,
        "category": "Logic error",
        "type": "synthetic",
        "check_name": checker,
        "location": {"line": line, "col": col, "file": file_index},
    }


def write_plist(path, files, diagnostics):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as f:
        plistlib.dump({"files": files, "diagnostics": diagnostics}, f)


def run_gate(*argv):
    return subprocess.run([sys.executable, GATE, *argv],
                          capture_output=True, text=True, check=False)


class CsaGateTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory(prefix="sdtw_csa_test_")
        self.addCleanup(self.tmp.cleanup)
        self.root = self.tmp.name
        self.report = os.path.join(self.root, "report")

    def path_in_root(self, rel):
        return os.path.join(self.root, rel)

    def write_suppressions(self, text):
        path = os.path.join(self.root, "suppressions.txt")
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def test_unsuppressed_findings_fail(self):
        write_plist(
            os.path.join(self.report, "run", "a.plist"),
            [self.path_in_root("src/dtw/kernel.cc")],
            [diag("Dereference of null pointer",
                  "core.NullDereference", 0, 42, 7)])
        r = run_gate("--report-dir", self.report, "--root", self.root)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn(
            "src/dtw/kernel.cc:42:7: [core.NullDereference]", r.stdout)

    def test_suppression_with_rationale_passes(self):
        write_plist(
            os.path.join(self.report, "run", "a.plist"),
            [self.path_in_root("src/dtw/kernel.cc")],
            [diag("Value stored to 'x' is never read",
                  "deadcode.DeadStores", 0, 10)])
        sup = self.write_suppressions(
            "deadcode.* src/dtw/*  # sentinel writes keep the probe honest\n")
        r = run_gate("--report-dir", self.report, "--root", self.root,
                     "--suppressions", sup)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("1 suppressed", r.stdout)

    def test_suppression_without_rationale_is_usage_error(self):
        sup = self.write_suppressions("deadcode.* src/dtw/*\n")
        r = run_gate("--report-dir", self.report, "--root", self.root,
                     "--suppressions", sup)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("rationale", r.stderr)

    def test_suppression_is_scoped_not_global(self):
        # The same checker outside the suppressed path still fails.
        write_plist(
            os.path.join(self.report, "run", "a.plist"),
            [self.path_in_root("src/retrieval/batch.cc")],
            [diag("Value stored to 'x' is never read",
                  "deadcode.DeadStores", 0, 5)])
        sup = self.write_suppressions(
            "deadcode.* src/dtw/*  # only the kernels keep sentinel writes\n")
        r = run_gate("--report-dir", self.report, "--root", self.root,
                     "--suppressions", sup)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("unused suppression", r.stderr)

    def test_cross_tu_duplicates_collapse(self):
        # The same header diagnostic lands in two TUs' plists; the gate
        # must report it once.
        files = [self.path_in_root("src/core/config.h")]
        d = diag("Garbage value", "core.UndefinedBinaryOperatorResult",
                 0, 7, 3)
        write_plist(os.path.join(self.report, "run", "tu1.plist"), files, [d])
        write_plist(os.path.join(self.report, "run", "tu2.plist"), files, [d])
        r = run_gate("--report-dir", self.report, "--root", self.root)
        self.assertEqual(r.returncode, 1)
        self.assertEqual(
            r.stdout.count("src/core/config.h:7:3"), 1, r.stdout)
        self.assertIn("1 unsuppressed finding(s) of 1 total", r.stderr)

    def test_empty_report_dir_is_clean(self):
        os.makedirs(self.report, exist_ok=True)
        r = run_gate("--report-dir", self.report, "--root", self.root)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_missing_report_dir_is_clean(self):
        # scan-build deletes the run directory when it found nothing.
        r = run_gate("--report-dir", os.path.join(self.root, "gone"),
                     "--root", self.root)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("treating as clean", r.stdout)

    def test_real_suppressions_file_parses(self):
        # The checked-in file must always stay loadable.
        write_plist(
            os.path.join(self.report, "run", "a.plist"),
            [self.path_in_root("src/ok.cc")], [])
        r = run_gate("--report-dir", self.report, "--root", self.root,
                     "--suppressions",
                     os.path.join(REPO_ROOT, "scripts",
                                  "csa_suppressions.txt"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
