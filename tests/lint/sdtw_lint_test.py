#!/usr/bin/env python3
"""Tests for scripts/sdtw_lint — the libclang semantic AST linter.

Each deliberately-violating fixture tree under tests/lint/fixtures/ must
make exactly one rule fire (exit 1) at the expected file:line set, the
suppressed sites must stay silent, and the real tree must come back clean.

When the libclang Python bindings are unavailable (the common case on dev
boxes without python3-clang) the whole module exits 77, which ctest maps
to SKIP via SKIP_RETURN_CODE.
"""

import os
import re
import subprocess
import sys
import unittest

REPO_ROOT = os.environ.get(
    "SDTW_REPO_ROOT",
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
LINTER = os.path.join(REPO_ROOT, "scripts", "sdtw_lint")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint", "fixtures")
SKIP_RC = 77

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):\d+: "
                        r"\[(?P<rule>[a-z-]+)\] (?P<msg>.*)$")


def run_lint(*args):
    return subprocess.run([sys.executable, LINTER, *args],
                          capture_output=True, text=True, cwd=REPO_ROOT)


def parse_findings(stdout):
    """Returns a list of (relpath, line, rule) triples from linter stdout."""
    out = []
    for raw in stdout.splitlines():
        m = FINDING_RE.match(raw.strip())
        if m:
            out.append((m.group("path").replace(os.sep, "/"),
                        int(m.group("line")), m.group("rule")))
    return out


_probe = run_lint("--probe")
if _probe.returncode == 69:
    sys.stderr.write("SKIP: %s\n" % _probe.stderr.strip())
    sys.exit(SKIP_RC)


class FixtureRuleTests(unittest.TestCase):
    """Every rule fires on its fixture at exactly the expected lines."""

    def assert_fixture(self, fixture, rule, source, lines,
                       suppressed_lines=()):
        root = os.path.join(FIXTURES, fixture)
        proc = run_lint("--root", root, "--only", rule)
        self.assertEqual(
            proc.returncode, 1,
            f"{fixture}: expected exit 1 (findings), got "
            f"{proc.returncode}\nstdout:\n{proc.stdout}\n"
            f"stderr:\n{proc.stderr}")
        found = parse_findings(proc.stdout)
        expected = [(f"src/{source}", line, rule) for line in lines]
        self.assertEqual(
            sorted(found), sorted(expected),
            f"{fixture}: finding set mismatch\nstdout:\n{proc.stdout}")
        for line in suppressed_lines:
            self.assertNotIn(
                (f"src/{source}", line, rule), found,
                f"{fixture}: lint:allow site at line {line} still fired")

    def test_lock_discipline(self):
        self.assert_fixture(
            "bad_lock_discipline", "lock-discipline", "locked_blocking.cc",
            lines=[62, 67, 72, 77, 87], suppressed_lines=[107])

    def test_guarded_member_coverage(self):
        self.assert_fixture(
            "bad_unguarded_member", "guarded-member-coverage",
            "unguarded_members.cc",
            lines=[32, 33, 34], suppressed_lines=[41])

    def test_raw_sync_primitives(self):
        self.assert_fixture(
            "bad_raw_sync", "raw-sync-primitives", "raw_primitives.cc",
            lines=[29, 36, 37, 41, 42, 45], suppressed_lines=[47])

    def test_span_lifetime(self):
        self.assert_fixture(
            "bad_span_lifetime", "span-lifetime", "dangling_views.cc",
            lines=[45, 50, 54, 58, 65], suppressed_lines=[84])

    def test_determinism(self):
        self.assert_fixture(
            "bad_unordered_determinism", "determinism",
            "unordered_results.cc",
            lines=[52, 59, 66], suppressed_lines=[86])


class CleanTreeTest(unittest.TestCase):
    """The real tree passes every rule (true positives were swept;
    intentional exceptions carry rationale'd lint:allow markers)."""

    def test_real_tree_is_clean(self):
        args = ["--root", REPO_ROOT]
        build_dir = os.environ.get("SDTW_BUILD_DIR")
        if build_dir and os.path.isfile(
                os.path.join(build_dir, "compile_commands.json")):
            args += ["--build-dir", build_dir]
        proc = run_lint(*args)
        if proc.returncode == 2:
            # Environment problem (e.g. no TU parsed with this toolchain
            # mix), not a lint verdict — don't fail the suite over it.
            self.skipTest(f"linter unusable here: {proc.stderr.strip()}")
        self.assertEqual(
            proc.returncode, 0,
            f"real tree not clean\nstdout:\n{proc.stdout}\n"
            f"stderr:\n{proc.stderr}")


class CliTests(unittest.TestCase):
    def test_list_rules(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        rules = [line.split("\t", 1)[0]
                 for line in proc.stdout.splitlines() if line.strip()]
        self.assertEqual(rules, ["lock-discipline",
                                 "guarded-member-coverage",
                                 "raw-sync-primitives",
                                 "span-lifetime",
                                 "determinism"])

    def test_bad_build_dir_is_usage_error(self):
        proc = run_lint("--build-dir", "/nonexistent/sdtw-build")
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
