#include "dtw/band.h"

#include <gtest/gtest.h>

namespace sdtw {
namespace dtw {
namespace {

TEST(BandTest, FullBandCoversEverything) {
  const Band b = Band::Full(4, 6);
  EXPECT_EQ(b.n(), 4u);
  EXPECT_EQ(b.m(), 6u);
  EXPECT_EQ(b.CellCount(), 24u);
  EXPECT_DOUBLE_EQ(b.Coverage(), 1.0);
  EXPECT_TRUE(b.IsFeasible());
}

TEST(BandTest, EmptyGridYieldsEmptyBand) {
  EXPECT_TRUE(Band::Full(0, 5).empty());
  EXPECT_TRUE(Band::Full(5, 0).empty());
}

TEST(BandTest, ContainsChecksRowsAndColumns) {
  const Band b = Band::FromRows({{1, 2}, {2, 3}}, 4);
  EXPECT_TRUE(b.Contains(0, 1));
  EXPECT_TRUE(b.Contains(0, 2));
  EXPECT_FALSE(b.Contains(0, 0));
  EXPECT_FALSE(b.Contains(0, 3));
  EXPECT_FALSE(b.Contains(2, 2));  // out-of-range row
}

TEST(BandTest, FromRowsClampsColumns) {
  const Band b = Band::FromRows({{0, 99}}, 4);
  EXPECT_EQ(b.row(0).hi, 3u);
}

TEST(BandTest, MakeFeasibleAnchorsCorners) {
  Band b = Band::FromRows({{2, 3}, {2, 3}, {0, 1}}, 5);
  b.MakeFeasible();
  EXPECT_EQ(b.row(0).lo, 0u);
  EXPECT_EQ(b.row(2).hi, 4u);
  EXPECT_TRUE(b.IsFeasible());
}

TEST(BandTest, MakeFeasibleBridgesForwardGap) {
  // Row 1 starts far beyond row 0's reach.
  Band b = Band::FromRows({{0, 1}, {5, 6}, {6, 7}}, 8);
  b.MakeFeasible();
  EXPECT_TRUE(b.IsFeasible());
  EXPECT_LE(b.row(1).lo, b.row(0).hi + 1);
}

TEST(BandTest, MakeFeasibleBridgesBackwardGap) {
  // Row 0 ends before row 1 begins by more than a step.
  Band b = Band::FromRows({{0, 0}, {4, 7}}, 8);
  b.MakeFeasible();
  EXPECT_TRUE(b.IsFeasible());
}

TEST(BandTest, MakeFeasibleIdempotent) {
  Band b = Band::FromRows({{0, 1}, {6, 7}, {2, 3}}, 8);
  b.MakeFeasible();
  Band twice = b;
  twice.MakeFeasible();
  EXPECT_EQ(b, twice);
}

TEST(BandTest, MakeFeasibleHandlesSingleRow) {
  Band b = Band::FromRows({{2, 2}}, 5);
  b.MakeFeasible();
  EXPECT_TRUE(b.IsFeasible());
  EXPECT_EQ(b.row(0).lo, 0u);
  EXPECT_EQ(b.row(0).hi, 4u);
}

TEST(BandTest, WidenExpandsAndClamps) {
  Band b = Band::FromRows({{2, 2}, {3, 3}}, 6);
  b.Widen(2);
  EXPECT_EQ(b.row(0).lo, 0u);
  EXPECT_EQ(b.row(0).hi, 4u);
  EXPECT_EQ(b.row(1).lo, 1u);
  EXPECT_EQ(b.row(1).hi, 5u);
}

TEST(BandTest, IntersectAndUnion) {
  Band a = Band::FromRows({{0, 3}, {1, 4}}, 6);
  Band b = Band::FromRows({{2, 5}, {0, 2}}, 6);
  Band u = a;
  ASSERT_TRUE(u.UnionWith(b));
  EXPECT_EQ(u.row(0).lo, 0u);
  EXPECT_EQ(u.row(0).hi, 5u);
  EXPECT_EQ(u.row(1).lo, 0u);
  EXPECT_EQ(u.row(1).hi, 4u);
  Band i = a;
  ASSERT_TRUE(i.IntersectWith(b));
  EXPECT_EQ(i.row(0).lo, 2u);
  EXPECT_EQ(i.row(0).hi, 3u);
}

TEST(BandTest, IntersectShapeMismatchFails) {
  Band a = Band::Full(3, 3);
  Band b = Band::Full(4, 3);
  EXPECT_FALSE(a.IntersectWith(b));
  EXPECT_FALSE(a.UnionWith(b));
}

TEST(BandTest, TransposeRoundTripOnFullBand) {
  const Band b = Band::Full(3, 5);
  const Band t = b.Transpose();
  EXPECT_EQ(t.n(), 5u);
  EXPECT_EQ(t.m(), 3u);
  EXPECT_EQ(t.CellCount(), b.CellCount());
  EXPECT_EQ(t.Transpose(), b);
}

TEST(BandTest, TransposePreservesMembership) {
  const Band b = Band::FromRows({{0, 1}, {1, 2}, {2, 3}}, 4);
  const Band t = b.Transpose();
  for (std::size_t i = 0; i < b.n(); ++i) {
    for (std::size_t j = 0; j < b.m(); ++j) {
      EXPECT_EQ(b.Contains(i, j), t.Contains(j, i)) << i << "," << j;
    }
  }
}

TEST(BandTest, ToAsciiShape) {
  const Band b = Band::FromRows({{0, 0}, {1, 1}}, 2);
  // Top line is the last row.
  EXPECT_EQ(b.ToAscii(), ".#\n#.\n");
}

TEST(SakoeChibaTest, ZeroWidthDegeneratesToDiagonal) {
  const Band b = SakoeChibaBand(5, 5, 0.0);
  EXPECT_TRUE(b.IsFeasible());
  // The diagonal must be inside.
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(b.Contains(i, i));
}

TEST(SakoeChibaTest, DoubleWidthCoversGrid) {
  // The half-width is w*M/2 around the diagonal, so w = 2 guarantees every
  // row spans all of [0, M-1] (w = 1 clips at the corners).
  const Band b = SakoeChibaBand(6, 8, 2.0);
  EXPECT_DOUBLE_EQ(b.Coverage(), 1.0);
  EXPECT_LT(SakoeChibaBand(6, 8, 1.0).Coverage(), 1.0);
}

TEST(SakoeChibaTest, WidthMonotoneInCoverage) {
  const Band narrow = SakoeChibaBand(50, 50, 0.06);
  const Band mid = SakoeChibaBand(50, 50, 0.10);
  const Band wide = SakoeChibaBand(50, 50, 0.20);
  EXPECT_LT(narrow.CellCount(), mid.CellCount());
  EXPECT_LT(mid.CellCount(), wide.CellCount());
}

TEST(SakoeChibaTest, RectangularGridsFeasible) {
  for (const auto& [n, m] : {std::pair<std::size_t, std::size_t>{10, 50},
                             {50, 10},
                             {1, 10},
                             {10, 1}}) {
    const Band b = SakoeChibaBand(n, m, 0.1);
    EXPECT_TRUE(b.IsFeasible()) << n << "x" << m;
  }
}

TEST(ItakuraTest, FeasibleAndContainsCorners) {
  const Band b = ItakuraBand(40, 40, 2.0);
  EXPECT_TRUE(b.IsFeasible());
  EXPECT_TRUE(b.Contains(0, 0));
  EXPECT_TRUE(b.Contains(39, 39));
}

TEST(ItakuraTest, NarrowerThanFullGrid) {
  const Band b = ItakuraBand(40, 40, 2.0);
  EXPECT_LT(b.Coverage(), 1.0);
  EXPECT_GT(b.Coverage(), 0.1);
}

TEST(ItakuraTest, ParallelogramPinchedAtCorners) {
  const Band b = ItakuraBand(60, 60, 2.0);
  // Rows near the corners are much narrower than the middle.
  EXPECT_LT(b.row(1).width(), b.row(30).width());
  EXPECT_LT(b.row(58).width(), b.row(30).width());
}

TEST(ItakuraTest, SlopeOneIsDiagonalOnly) {
  const Band b = ItakuraBand(10, 10, 1.0);
  EXPECT_TRUE(b.IsFeasible());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(b.Contains(i, i));
  }
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
