// Unit tests of the runtime kernel-dispatch surface (dtw/kernel_dispatch.h):
// variant naming and parsing, the compiled-in/CPU-supported distinction,
// the override resolution used by SDTW_KERNEL — including the two failure
// modes (unknown name, unsupported variant), which must produce clear
// errors instead of a silent fallback — and the coherence of the active
// selection. Per-variant bitwise-equivalence pins live in the property
// suite (tests/property/kernel_dispatch_property_test.cc).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "dtw/kernel_dispatch.h"

namespace sdtw {
namespace dtw {
namespace {

TEST(KernelDispatch, VariantNamesRoundTripThroughParse) {
  for (const KernelVariant v : {KernelVariant::kPortable, KernelVariant::kAvx2,
                                KernelVariant::kAvx512}) {
    const std::optional<KernelVariant> parsed =
        ParseKernelVariant(KernelVariantName(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

TEST(KernelDispatch, ParseRejectsUnknownAndNonCanonicalNames) {
  EXPECT_FALSE(ParseKernelVariant("").has_value());
  EXPECT_FALSE(ParseKernelVariant("bogus").has_value());
  EXPECT_FALSE(ParseKernelVariant("AVX2").has_value());
  EXPECT_FALSE(ParseKernelVariant("avx512f").has_value());
  EXPECT_FALSE(ParseKernelVariant("native").has_value());
}

TEST(KernelDispatch, PortableIsAlwaysCompiledInAndSupported) {
  const RowKernelOps* ops = FindRowKernelOps(KernelVariant::kPortable);
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops->variant, KernelVariant::kPortable);
  EXPECT_STREQ(ops->name, "portable");
  EXPECT_TRUE(KernelVariantSupported(KernelVariant::kPortable));
}

TEST(KernelDispatch, OpsTablesAreCompleteAndSelfConsistent) {
  for (const KernelVariant v : {KernelVariant::kPortable, KernelVariant::kAvx2,
                                KernelVariant::kAvx512}) {
    const RowKernelOps* ops = FindRowKernelOps(v);
    if (ops == nullptr) continue;  // variant not compiled into this binary
    EXPECT_EQ(ops->variant, v);
    EXPECT_STREQ(ops->name, KernelVariantName(v));
    EXPECT_NE(ops->fill_abs, nullptr);
    EXPECT_NE(ops->fill_squared, nullptr);
    EXPECT_EQ(ops->fill(CostKind::kAbsolute), ops->fill_abs);
    EXPECT_EQ(ops->fill(CostKind::kSquared), ops->fill_squared);
  }
}

TEST(KernelDispatch, SupportedKernelsArePreferenceOrderedAndSupported) {
  const std::vector<const RowKernelOps*> supported = SupportedRowKernels();
  ASSERT_FALSE(supported.empty());  // portable at minimum
  EXPECT_EQ(supported.front()->variant, KernelVariant::kPortable);
  for (std::size_t i = 0; i < supported.size(); ++i) {
    EXPECT_TRUE(KernelVariantSupported(supported[i]->variant));
    if (i > 0) {
      EXPECT_LT(static_cast<int>(supported[i - 1]->variant),
                static_cast<int>(supported[i]->variant));
    }
  }
}

TEST(KernelDispatch, ActiveKernelHonoursOverrideOrPicksBestSupported) {
  const RowKernelOps& active = ActiveRowKernelOps();
  EXPECT_TRUE(KernelVariantSupported(active.variant));
  const char* env = std::getenv("SDTW_KERNEL");
  if (env != nullptr && *env != '\0') {
    // Forced-variant run (e.g. the ctest registrations with SDTW_KERNEL
    // set): the override decides, whatever the CPU prefers.
    const std::optional<KernelVariant> forced = ParseKernelVariant(env);
    ASSERT_TRUE(forced.has_value());  // the process would have aborted
    EXPECT_EQ(active.variant, *forced);
  } else {
    // Default selection: the last (most preferred) supported variant.
    EXPECT_EQ(active.variant, SupportedRowKernels().back()->variant);
  }
}

TEST(KernelDispatch, ResolveOverrideAcceptsEverySupportedVariant) {
  for (const RowKernelOps* ops : SupportedRowKernels()) {
    const KernelResolution r = ResolveKernelOverride(ops->name);
    EXPECT_EQ(r.ops, ops) << ops->name;
    EXPECT_TRUE(r.error.empty()) << r.error;
  }
}

TEST(KernelDispatch, ResolveOverrideRejectsUnknownNameWithClearError) {
  const KernelResolution r = ResolveKernelOverride("bogus");
  EXPECT_EQ(r.ops, nullptr);
  EXPECT_NE(r.error.find("unknown kernel variant 'bogus'"), std::string::npos)
      << r.error;
  // The error must teach the valid spellings.
  EXPECT_NE(r.error.find("portable, avx2, avx512"), std::string::npos)
      << r.error;
}

TEST(KernelDispatch, ResolveOverrideRejectsUnrunnableVariantWithClearError) {
  // Every variant that is compiled in but not runnable here (CPU too old),
  // or not compiled in at all (non-x86 build), must resolve to a clear
  // error naming the variant. On a machine that can run everything this
  // loop checks nothing — the graceful-absence path is covered on the
  // hosts where it matters.
  for (const KernelVariant v :
       {KernelVariant::kAvx2, KernelVariant::kAvx512}) {
    if (KernelVariantSupported(v)) continue;
    const KernelResolution r = ResolveKernelOverride(KernelVariantName(v));
    EXPECT_EQ(r.ops, nullptr);
    EXPECT_NE(r.error.find(KernelVariantName(v)), std::string::npos)
        << r.error;
    const bool compiled = FindRowKernelOps(v) != nullptr;
    EXPECT_NE(r.error.find(compiled ? "not supported by this CPU"
                                    : "not compiled into this binary"),
              std::string::npos)
        << r.error;
  }
}

TEST(KernelDispatch, DetectedCpuFeaturesIsNonEmptyAndConsistent) {
  const std::string features = DetectedCpuFeatures();
  EXPECT_FALSE(features.empty());
  // Whenever the AVX2 variant is runnable the feature string must say so
  // (it is what the bench baseline records for like-for-like comparison).
  if (KernelVariantSupported(KernelVariant::kAvx2)) {
    EXPECT_NE(features.find("avx2"), std::string::npos) << features;
  }
  if (KernelVariantSupported(KernelVariant::kAvx512)) {
    EXPECT_NE(features.find("avx512f"), std::string::npos) << features;
  }
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
