#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "dtw/band_matrix.h"

namespace sdtw {
namespace dtw {
namespace {

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  const ts::TimeSeries x({1.0, 2.0, 3.0, 2.0});
  const DtwResult r = Dtw(x, x);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_TRUE(IsValidWarpPath(r.path, 4, 4));
}

TEST(DtwTest, SinglePointSeries) {
  const ts::TimeSeries x({2.0});
  const ts::TimeSeries y({5.0});
  const DtwResult r = Dtw(x, y);
  EXPECT_DOUBLE_EQ(r.distance, 3.0);
  ASSERT_EQ(r.path.size(), 1u);
  EXPECT_EQ(r.path[0], PathPoint(0, 0));
}

TEST(DtwTest, EmptySeriesGivesInfinity) {
  const ts::TimeSeries x;
  const ts::TimeSeries y({1.0});
  EXPECT_TRUE(std::isinf(Dtw(x, y).distance));
  EXPECT_TRUE(std::isinf(DtwDistance(x, y)));
}

TEST(DtwTest, KnownSmallExample) {
  // x = (0, 1), y = (0, 0, 1): DTW can match x0 to both zeros and x1 to
  // the one, giving 0.
  const ts::TimeSeries x({0.0, 1.0});
  const ts::TimeSeries y({0.0, 0.0, 1.0});
  const DtwResult r = Dtw(x, y);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_TRUE(IsValidWarpPath(r.path, 2, 3));
}

TEST(DtwTest, ShiftedStepAlignsCheaply) {
  // A step at t=3 vs the same step at t=5: DTW absorbs the shift.
  std::vector<double> a(10, 0.0), b(10, 0.0);
  for (std::size_t i = 3; i < 10; ++i) a[i] = 1.0;
  for (std::size_t i = 5; i < 10; ++i) b[i] = 1.0;
  const ts::TimeSeries x(a), y(b);
  const double euclid_like = DtwDistance(x, y);
  EXPECT_DOUBLE_EQ(euclid_like, 0.0);
}

TEST(DtwTest, DistanceSymmetric) {
  const ts::TimeSeries x({0.0, 1.0, 0.5, -0.5});
  const ts::TimeSeries y({0.2, 0.9, -0.2});
  EXPECT_DOUBLE_EQ(DtwDistance(x, y), DtwDistance(y, x));
}

TEST(DtwTest, SquaredCostDiffersFromAbsolute) {
  const ts::TimeSeries x({0.0, 3.0});
  const ts::TimeSeries y({0.0, 1.0});
  EXPECT_DOUBLE_EQ(DtwDistance(x, y, CostKind::kAbsolute), 2.0);
  EXPECT_DOUBLE_EQ(DtwDistance(x, y, CostKind::kSquared), 4.0);
}

TEST(DtwTest, PathCostMatchesReportedDistance) {
  const ts::TimeSeries x({0.1, 0.9, 0.4, 0.7, 0.2});
  const ts::TimeSeries y({0.0, 1.0, 0.5, 0.1});
  const DtwResult r = Dtw(x, y);
  EXPECT_NEAR(PathCost(x, y, r.path), r.distance, 1e-9);
}

TEST(DtwTest, RollingDistanceMatchesFullGrid) {
  const ts::TimeSeries x({0.3, 1.2, -0.5, 0.8, 0.0, 2.0});
  const ts::TimeSeries y({0.1, 1.0, -0.2, 0.6, 0.4});
  EXPECT_NEAR(Dtw(x, y).distance, DtwDistance(x, y), 1e-12);
}

TEST(DtwTest, CellsFilledIsFullGrid) {
  const ts::TimeSeries x({1.0, 2.0, 3.0});
  const ts::TimeSeries y({1.0, 2.0});
  EXPECT_EQ(Dtw(x, y).cells_filled, 6u);
}

TEST(DtwTest, WantPathFalseSkipsPath) {
  DtwOptions opt;
  opt.want_path = false;
  const ts::TimeSeries x({1.0, 2.0});
  const DtwResult r = Dtw(x, x, opt);
  EXPECT_TRUE(r.path.empty());
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(DtwBandedTest, FullBandMatchesUnconstrained) {
  const ts::TimeSeries x({0.3, 1.2, -0.5, 0.8, 0.0});
  const ts::TimeSeries y({0.1, 1.0, -0.2, 0.6});
  const Band band = Band::Full(x.size(), y.size());
  EXPECT_NEAR(DtwBanded(x, y, band).distance, Dtw(x, y).distance, 1e-12);
}

TEST(DtwBandedTest, BandedDistanceNeverBelowOptimal) {
  const ts::TimeSeries x({0.0, 1.0, 0.0, -1.0, 0.0, 1.0});
  const ts::TimeSeries y({0.0, 0.0, 1.0, 0.0, -1.0, 0.0});
  const double opt = Dtw(x, y).distance;
  for (double w : {0.0, 0.2, 0.5, 1.0}) {
    const Band band = SakoeChibaBand(x.size(), y.size(), w);
    EXPECT_GE(DtwBanded(x, y, band).distance, opt - 1e-12) << "w=" << w;
  }
}

TEST(DtwBandedTest, PathStaysInsideBand) {
  const ts::TimeSeries x({0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  const ts::TimeSeries y({0.0, 2.0, 4.0, 6.0, 8.0, 10.0});
  const Band band = SakoeChibaBand(6, 6, 0.3);
  const DtwResult r = DtwBanded(x, y, band);
  ASSERT_FALSE(r.path.empty());
  for (const PathPoint& p : r.path) {
    EXPECT_TRUE(band.Contains(p.first, p.second))
        << p.first << "," << p.second;
  }
}

TEST(DtwBandedTest, BandShapeMismatchGivesInfinity) {
  const ts::TimeSeries x({1.0, 2.0, 3.0});
  const ts::TimeSeries y({1.0, 2.0});
  const Band band = Band::Full(2, 2);
  EXPECT_TRUE(std::isinf(DtwBanded(x, y, band).distance));
}

TEST(DtwBandedTest, CellsFilledReflectsBandSize) {
  const ts::TimeSeries x = ts::TimeSeries::Zeros(50);
  const ts::TimeSeries y = ts::TimeSeries::Zeros(50);
  const Band band = SakoeChibaBand(50, 50, 0.1);
  const DtwResult r = DtwBanded(x, y, band);
  EXPECT_EQ(r.cells_filled, band.CellCount());
  EXPECT_LT(r.cells_filled, 2500u);
}

TEST(DtwBandedTest, RollingBandedMatchesMaterialised) {
  const ts::TimeSeries x({0.3, 1.2, -0.5, 0.8, 0.0, 0.4, 1.3});
  const ts::TimeSeries y({0.1, 1.0, -0.2, 0.6, 0.2, 0.9});
  const Band band = SakoeChibaBand(x.size(), y.size(), 0.4);
  EXPECT_NEAR(DtwBandedDistance(x, y, band),
              DtwBanded(x, y, band).distance, 1e-12);
}

TEST(DtwBandedTest, DiagonalOnlyBandOnEqualLengthsIsEuclideanL1) {
  const ts::TimeSeries x({0.0, 2.0, 4.0});
  const ts::TimeSeries y({1.0, 1.0, 5.0});
  const Band band = SakoeChibaBand(3, 3, 0.0);
  // Only diagonal cells: |0-1| + |2-1| + |4-5| = 3.
  EXPECT_DOUBLE_EQ(DtwBanded(x, y, band).distance, 3.0);
}

TEST(DtwBandedTest, DistanceOnlyAllocationIsBandRowBounded) {
  // The distance-only banded DP must allocate two rolling rows sized to
  // the widest band row — not an (n+1) x (m+1) buffer.
  const std::size_t n = 200;
  const ts::TimeSeries x = ts::TimeSeries::Zeros(n);
  const ts::TimeSeries y = ts::TimeSeries::Zeros(n);
  const Band band = SakoeChibaBand(n, n, 0.05);
  std::size_t max_width = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_width = std::max(max_width, band.row(i).width());
  }
  DtwOptions opt;
  opt.want_path = false;
  const DtwResult r = DtwBanded(x, y, band, opt);
  EXPECT_LE(r.cells_allocated, 2 * max_width);
  EXPECT_LT(r.cells_allocated, (n + 1) * (n + 1) / 100);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(DtwBandedTest, PathAllocationIsBandCellsOnly) {
  const std::size_t n = 120;
  const ts::TimeSeries x = ts::TimeSeries::Zeros(n);
  const ts::TimeSeries y = ts::TimeSeries::Zeros(n);
  const Band band = SakoeChibaBand(n, n, 0.1);
  const DtwResult r = DtwBanded(x, y, band);
  // Exactly the in-band cells plus the origin — Σ(hi−lo+1) storage.
  EXPECT_EQ(r.cells_allocated, band.CellCount() + 1);
  EXPECT_LT(r.cells_allocated, (n + 1) * (n + 1));
  EXPECT_TRUE(IsValidWarpPath(r.path, n, n));
}

TEST(DtwTest, FullKernelReportsFullGridAllocation) {
  const ts::TimeSeries x({1.0, 2.0, 3.0});
  const ts::TimeSeries y({1.0, 2.0});
  EXPECT_EQ(Dtw(x, y).cells_allocated, 4u * 3u);
}

TEST(EarlyAbandonTest, ReturnsDistanceWhenUnderThreshold) {
  const ts::TimeSeries x({0.0, 1.0, 2.0});
  const ts::TimeSeries y({0.0, 1.1, 2.2});
  const double d = DtwDistance(x, y);
  EXPECT_NEAR(DtwDistanceEarlyAbandon(x, y, d + 1.0), d, 1e-12);
}

TEST(EarlyAbandonTest, AbandonsWhenOverThreshold) {
  const ts::TimeSeries x = ts::TimeSeries::Constant(20, 0.0);
  const ts::TimeSeries y = ts::TimeSeries::Constant(20, 10.0);
  EXPECT_TRUE(std::isinf(DtwDistanceEarlyAbandon(x, y, 1.0)));
}

TEST(WarpPathTest, ValidatorAcceptsCanonicalPath) {
  const std::vector<PathPoint> p{{0, 0}, {1, 1}, {2, 1}, {2, 2}};
  EXPECT_TRUE(IsValidWarpPath(p, 3, 3));
}

TEST(WarpPathTest, ValidatorRejectsBadStart) {
  const std::vector<PathPoint> p{{1, 0}, {2, 1}};
  EXPECT_FALSE(IsValidWarpPath(p, 3, 2));
}

TEST(WarpPathTest, ValidatorRejectsBadEnd) {
  const std::vector<PathPoint> p{{0, 0}, {1, 1}};
  EXPECT_FALSE(IsValidWarpPath(p, 3, 2));
}

TEST(WarpPathTest, ValidatorRejectsJumps) {
  const std::vector<PathPoint> p{{0, 0}, {2, 2}};
  EXPECT_FALSE(IsValidWarpPath(p, 3, 3));
}

TEST(WarpPathTest, ValidatorRejectsNonMonotone) {
  const std::vector<PathPoint> p{{0, 0}, {1, 1}, {0, 2}, {1, 2}, {2, 2}};
  EXPECT_FALSE(IsValidWarpPath(p, 3, 3));
}

TEST(WarpPathTest, ValidatorRejectsStall) {
  const std::vector<PathPoint> p{{0, 0}, {0, 0}, {1, 1}};
  EXPECT_FALSE(IsValidWarpPath(p, 2, 2));
}

TEST(WarpPathTest, PathLengthWithinBounds) {
  const ts::TimeSeries x({0.0, 5.0, 1.0, 4.0, 2.0, 3.0});
  const ts::TimeSeries y({1.0, 3.0, 2.0});
  const DtwResult r = Dtw(x, y);
  EXPECT_GE(r.path.size(), std::max(x.size(), y.size()));
  EXPECT_LE(r.path.size(), x.size() + y.size());
}


TEST(BandedEarlyAbandonTest, AgreesWhenUnderThreshold) {
  const ts::TimeSeries x({0.0, 1.0, 2.0, 1.0, 0.5});
  const ts::TimeSeries y({0.1, 0.9, 2.1, 1.2, 0.4});
  const Band band = SakoeChibaBand(5, 5, 0.4);
  const double d = DtwBandedDistance(x, y, band);
  EXPECT_NEAR(DtwBandedDistanceEarlyAbandon(x, y, band, d + 1.0), d, 1e-12);
}

TEST(BandedEarlyAbandonTest, AbandonsWhenOverThreshold) {
  const ts::TimeSeries x = ts::TimeSeries::Constant(30, 0.0);
  const ts::TimeSeries y = ts::TimeSeries::Constant(30, 5.0);
  const Band band = SakoeChibaBand(30, 30, 0.2);
  EXPECT_TRUE(
      std::isinf(DtwBandedDistanceEarlyAbandon(x, y, band, 1.0)));
}

TEST(BandedEarlyAbandonTest, ThresholdIsInclusive) {
  const ts::TimeSeries x({0.0, 0.0});
  const ts::TimeSeries y({1.0, 1.0});
  const Band band = Band::Full(2, 2);
  const double d = DtwBandedDistance(x, y, band);  // = 2.0
  EXPECT_NEAR(DtwBandedDistanceEarlyAbandon(x, y, band, d), d, 1e-12);
  EXPECT_TRUE(
      std::isinf(DtwBandedDistanceEarlyAbandon(x, y, band, d - 0.5)));
}

TEST(BandedEarlyAbandonTest, ShapeMismatchGivesInfinity) {
  const ts::TimeSeries x({1.0, 2.0, 3.0});
  const ts::TimeSeries y({1.0, 2.0});
  EXPECT_TRUE(std::isinf(
      DtwBandedDistanceEarlyAbandon(x, y, Band::Full(2, 2), 100.0)));
}

TEST(DtwScratchTest, ReusedScratchMatchesFreshAllocationsBitwise) {
  // One scratch driven through every rolling kernel, against differently
  // sized inputs, in interleaved order — each result must equal the
  // allocation-owning kernel bit for bit (stale buffer contents must
  // never leak into a later call).
  const ts::TimeSeries a({0.3, 1.2, -0.5, 0.8, 0.0, 2.0, -1.1});
  const ts::TimeSeries b({0.1, 1.0, -0.2, 0.6, 0.4});
  const ts::TimeSeries c({2.0, -2.0, 2.0});
  const Band band_ab = SakoeChibaBand(a.size(), b.size(), 0.5);
  const Band band_ac = SakoeChibaBand(a.size(), c.size(), 0.8);
  DtwScratch scratch;
  EXPECT_EQ(DtwDistance(a, b, CostKind::kAbsolute, scratch),
            DtwDistance(a, b));
  EXPECT_EQ(DtwBandedDistance(a, c, band_ac, CostKind::kAbsolute, scratch),
            DtwBandedDistance(a, c, band_ac));
  EXPECT_EQ(DtwBandedDistance(a, b, band_ab, CostKind::kAbsolute, scratch),
            DtwBandedDistance(a, b, band_ab));
  EXPECT_EQ(DtwDistance(a, c, CostKind::kSquared, scratch),
            DtwDistance(a, c, CostKind::kSquared));
  const double d_ab = DtwDistance(a, b);
  EXPECT_EQ(
      DtwDistanceEarlyAbandon(a, b, d_ab, CostKind::kAbsolute, scratch),
      d_ab);
  EXPECT_TRUE(std::isinf(DtwDistanceEarlyAbandon(
      a, b, d_ab - 0.125, CostKind::kAbsolute, scratch)));
  const double banded_ab = DtwBandedDistance(a, b, band_ab);
  EXPECT_EQ(DtwBandedDistanceEarlyAbandon(a, b, band_ab, banded_ab,
                                          CostKind::kAbsolute, scratch),
            banded_ab);
}

TEST(DtwScratchTest, GrowsOnDemandAndNeverShrinks) {
  DtwScratch scratch;
  EXPECT_EQ(scratch.width(), 0u);
  scratch.EnsureWidth(8);
  EXPECT_EQ(scratch.width(), 8u);
  scratch.EnsureWidth(4);
  EXPECT_EQ(scratch.width(), 8u);
  const ts::TimeSeries x({1.0, 2.0, 3.0});
  EXPECT_EQ(DtwDistance(x, x, CostKind::kAbsolute, scratch), 0.0);
}

TEST(MaxDpRowWidthTest, MatchesBandShape) {
  EXPECT_EQ(MaxDpRowWidth(Band::Full(4, 6)), 6u);
  // An empty band still needs the origin cell.
  std::vector<BandRow> rows(3, BandRow{2, 1});  // inverted = empty rows
  EXPECT_EQ(MaxDpRowWidth(Band::FromRows(rows, 5)), 1u);
  const Band sakoe = SakoeChibaBand(10, 10, 0.3);
  std::size_t expected = 1;
  for (std::size_t i = 0; i < sakoe.n(); ++i) {
    expected = std::max(expected, sakoe.row(i).width());
  }
  EXPECT_EQ(MaxDpRowWidth(sakoe), expected);
}

TEST(BandedPathEarlyAbandonTest, UnderThresholdIdenticalToDtwBanded) {
  const ts::TimeSeries x({0.3, 1.2, -0.5, 0.8, 0.0, 0.4, 1.3});
  const ts::TimeSeries y({0.1, 1.0, -0.2, 0.6, 0.2, 0.9});
  const Band band = SakoeChibaBand(x.size(), y.size(), 0.5);
  const DtwResult full = DtwBanded(x, y, band);
  const DtwResult ea =
      DtwBandedEarlyAbandon(x, y, band, full.distance + 1.0);
  EXPECT_EQ(ea.distance, full.distance);
  EXPECT_EQ(ea.path, full.path);
  EXPECT_EQ(ea.cells_filled, full.cells_filled);
  // Inclusive threshold: exactly the distance still returns it.
  const DtwResult at = DtwBandedEarlyAbandon(x, y, band, full.distance);
  EXPECT_EQ(at.distance, full.distance);
  EXPECT_EQ(at.path, full.path);
}

TEST(BandedPathEarlyAbandonTest, AbandonsWithEmptyPathAndFewerCells) {
  const ts::TimeSeries x({0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  const ts::TimeSeries y({5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0});
  const Band band = Band::Full(x.size(), y.size());
  const DtwResult full = DtwBanded(x, y, band);
  // Threshold below the first row's minimum (5.0): gives up immediately.
  const DtwResult ea = DtwBandedEarlyAbandon(x, y, band, 1.0);
  EXPECT_TRUE(std::isinf(ea.distance));
  EXPECT_TRUE(ea.path.empty());
  EXPECT_LT(ea.cells_filled, full.cells_filled);
}

TEST(BandedPathEarlyAbandonTest, FinalDistanceOverThresholdIsAbandoned) {
  // No single row exceeds the threshold early, but the final distance
  // does: the result must still be +infinity with no path.
  const ts::TimeSeries x({0.0, 1.0, 2.0, 3.0});
  const ts::TimeSeries y({0.0, 1.0, 2.0, 4.0});
  const Band band = Band::Full(4, 4);
  const double d = DtwBanded(x, y, band).distance;  // = 1.0
  const DtwResult ea = DtwBandedEarlyAbandon(x, y, band, d * 0.5);
  EXPECT_TRUE(std::isinf(ea.distance));
  EXPECT_TRUE(ea.path.empty());
}

TEST(BandedPathEarlyAbandonTest, DistanceOnlyModeMatchesRollingKernel) {
  DtwOptions opt;
  opt.want_path = false;
  const ts::TimeSeries x({0.3, 1.2, -0.5, 0.8});
  const ts::TimeSeries y({0.1, 1.0, -0.2, 0.6});
  const Band band = Band::Full(4, 4);
  const double d = DtwBandedDistance(x, y, band);
  const DtwResult under = DtwBandedEarlyAbandon(x, y, band, d, opt);
  EXPECT_EQ(under.distance, d);
  EXPECT_TRUE(under.path.empty());
  EXPECT_TRUE(std::isinf(
      DtwBandedEarlyAbandon(x, y, band, d - 0.25, opt).distance));
}

}  // namespace
}  // namespace dtw
}  // namespace sdtw
